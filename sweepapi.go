package edattack

import (
	"github.com/edsec/edattack/internal/scada"
	"github.com/edsec/edattack/internal/sweep"
)

// Re-exported scenario-sweep types: the batched evaluation engine behind
// Monte-Carlo attack-success studies (see internal/sweep).
type (
	// SweepPrecomp is the per-topology PTDF/LODF bundle scenario
	// evaluation runs on.
	SweepPrecomp = sweep.Precomp
	// SweepCache memoizes precomputation bundles by topology.
	SweepCache = sweep.Cache
	// SweepScenario is one (demand, dispatch, true ratings, seen ratings)
	// operating point.
	SweepScenario = sweep.Scenario
	// SweepOutcome is one evaluated scenario.
	SweepOutcome = sweep.Outcome
	// SweepOptions tunes batch size, workers, and telemetry sinks.
	SweepOptions = sweep.Options
	// SweepSurfaceConfig parameterizes an attack-success-probability
	// surface; SweepSurface is the result.
	SweepSurfaceConfig = sweep.SurfaceConfig
	// SweepSurface is a completed (hour × magnitude) surface.
	SweepSurface = sweep.Surface
	// MonteCarloConfig seeds the scada operating-point draw stream that
	// feeds sweeps.
	MonteCarloConfig = scada.MonteCarloConfig
	// MonteCarlo is the seeded draw stream itself.
	MonteCarlo = scada.MonteCarlo
)

// SweepPrecompute builds the shift-factor bundle (PTDF, LODF, generator
// map) the batched evaluator needs, factoring the network exactly once.
func SweepPrecompute(net *Network) (*SweepPrecomp, error) {
	return sweep.Precompute(net)
}

// SweepPrecomputeFromPTDF is SweepPrecompute for callers that already hold
// the network's PTDF (for example from a DispatchModel).
func SweepPrecomputeFromPTDF(net *Network, ptdf *Matrix) (*SweepPrecomp, error) {
	return sweep.PrecomputeFromPTDF(net, ptdf)
}

// NewSweepCache returns an empty topology-keyed precomputation cache.
func NewSweepCache() *SweepCache {
	return sweep.NewCache()
}

// SweepEval evaluates scenarios through the batched engine (or the
// sequential oracle when o.Sequential is set). Outcomes are bit-identical
// for any batch size and worker count.
func SweepEval(pc *SweepPrecomp, scs []SweepScenario, o SweepOptions) ([]SweepOutcome, error) {
	return sweep.Eval(pc, scs, o)
}

// RunSweepSurface sweeps an (hour × attack magnitude) grid of seeded
// Monte-Carlo cells and returns the attack-success-probability surface.
func RunSweepSurface(pc *SweepPrecomp, cfg SweepSurfaceConfig) (*SweepSurface, error) {
	return sweep.RunSurface(pc, cfg)
}

// NewMonteCarlo builds the seeded (demand, rating) draw stream used by
// sweeps and scenario studies.
func NewMonteCarlo(net *Network, cfg MonteCarloConfig) (*MonteCarlo, error) {
	return scada.NewMonteCarlo(net, cfg)
}
