package edattack_test

import (
	"testing"

	edattack "github.com/edsec/edattack"
	"github.com/edsec/edattack/internal/dlr"
)

// TestRunTimeSeriesWorkers checks the parallel per-step sweep returns the
// same study as the sequential one: same rows in hour order with matching
// feasibility, costs, and attack identities.
func TestRunTimeSeriesWorkers(t *testing.T) {
	net, err := edattack.LoadCase("case3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := edattack.TimeSeriesConfig{
		Net:         net,
		DemandScale: dlr.TwoPeakDemand(0.58, 0.72, 0.78),
		RatingPatterns: map[int]edattack.Pattern{
			1: dlr.Sinusoidal(100, 200, 2),
			2: dlr.Sinusoidal(100, 200, 9),
		},
		StepMinutes: 120,
		Attacker:    edattack.AttackerOptimal,
		ACEvaluate:  true,
	}
	seq, err := edattack.RunTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parl, err := edattack.RunTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(parl) != len(seq) {
		t.Fatalf("parallel run has %d steps, sequential %d", len(parl), len(seq))
	}
	const tol = 1e-9
	close := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= tol*(1+max(abs(a), abs(b)))
	}
	for i := range seq {
		s, p := seq[i], parl[i]
		if s.Hour != p.Hour || s.Feasible != p.Feasible {
			t.Fatalf("step %d: (hour %v feasible %v) vs sequential (hour %v feasible %v)",
				i, p.Hour, p.Feasible, s.Hour, s.Feasible)
		}
		if !close(s.DemandMW, p.DemandMW) || !close(s.NoAttackCost, p.NoAttackCost) {
			t.Fatalf("step %d: demand/cost (%v, %v) vs sequential (%v, %v)",
				i, p.DemandMW, p.NoAttackCost, s.DemandMW, s.NoAttackCost)
		}
		if (s.Attack == nil) != (p.Attack == nil) {
			t.Fatalf("step %d: attack presence mismatch", i)
		}
		if s.Attack == nil {
			continue
		}
		if s.Attack.TargetLine != p.Attack.TargetLine || s.Attack.Direction != p.Attack.Direction {
			t.Fatalf("step %d: attack (%d, %+d) vs sequential (%d, %+d)",
				i, p.Attack.TargetLine, p.Attack.Direction, s.Attack.TargetLine, s.Attack.Direction)
		}
		if !close(s.GainDCPct, p.GainDCPct) || !close(s.CostDC, p.CostDC) {
			t.Fatalf("step %d: gain/cost (%v, %v) vs sequential (%v, %v)",
				i, p.GainDCPct, p.CostDC, s.GainDCPct, s.CostDC)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
