package edattack

import (
	"github.com/edsec/edattack/internal/cascade"
	"github.com/edsec/edattack/internal/contingency"
	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/grid/matpower"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/stateest"
)

// Re-exported extension types: contingency screening, cascading-failure
// simulation, state estimation, and the demand-forecast attack variant.
type (
	// LODF holds line-outage distribution factors for N−1 screening.
	LODF = contingency.LODF
	// N1Report summarizes an N−1 screen.
	N1Report = contingency.Report
	// CascadeOptions and CascadeResult drive the cascading-failure
	// simulator.
	CascadeOptions = cascade.Options
	// CascadeResult summarizes a cascade run.
	CascadeResult = cascade.Result
	// StateEstimator is the DC WLS estimator with bad-data detection.
	StateEstimator = stateest.Estimator
	// StateMeasurement is one telemetered value.
	StateMeasurement = stateest.Measurement
	// DemandAttack is the load-forecast manipulation variant.
	DemandAttack = core.DemandAttack
	// DemandAttackOptions tunes the forecast-attack search.
	DemandAttackOptions = core.DemandAttackOptions
	// Matrix is the dense matrix type shared by the shift-factor APIs
	// (DispatchModel.PTDF, ComputeLODFFromPTDF, sweep precomputation).
	Matrix = mat.Matrix
)

// ComputeLODF builds line-outage distribution factors for a network.
func ComputeLODF(net *Network) (*LODF, error) {
	return contingency.ComputeLODF(net)
}

// ComputeLODFFromPTDF builds line-outage distribution factors from an
// already computed PTDF, skipping the second (redundant) shift-factor
// factorization for callers that hold one — dispatch models, the sweep
// engine, repeated N−1 screens on one topology.
func ComputeLODFFromPTDF(net *Network, ptdf *Matrix) (*LODF, error) {
	return contingency.ComputeLODFFromPTDF(net, ptdf)
}

// ScreenN1 runs the full N−1 contingency sweep for an operating point
// against the given (true) ratings — the quantitative form of the paper's
// cascading-risk claim.
func ScreenN1(d *LODF, preFlows, ratings []float64) (*N1Report, error) {
	return contingency.Screen(d, preFlows, ratings)
}

// ScreenN1Parallel is ScreenN1 with the per-outage sweep spread over a
// worker pool (workers <= 0 means one per CPU); the report is identical to
// ScreenN1's for any worker count.
func ScreenN1Parallel(d *LODF, preFlows, ratings []float64, workers int) (*N1Report, error) {
	return contingency.ScreenParallel(d, preFlows, ratings, workers)
}

// SimulateCascade runs the thermal cascading-failure simulation from an
// operating point.
func SimulateCascade(net *Network, dispatchP, trueRatings []float64, o CascadeOptions) (*CascadeResult, error) {
	return cascade.Simulate(net, dispatchP, trueRatings, o)
}

// NewStateEstimator builds a DC WLS state estimator for the network.
func NewStateEstimator(net *Network) (*StateEstimator, error) {
	return stateest.NewEstimator(net)
}

// ParseMATPOWER reads a MATPOWER case file into a Network.
func ParseMATPOWER(src string) (*Network, error) {
	return matpower.Parse(src)
}

// FormatMATPOWER renders a Network as MATPOWER case text.
func FormatMATPOWER(net *Network) string {
	return matpower.Format(net)
}

// FindDemandAttack searches for the load-forecast manipulation variant of
// the attack (Section II's "other parameters" remark).
func FindDemandAttack(k *Knowledge, o DemandAttackOptions) (*DemandAttack, error) {
	return core.FindDemandAttack(k, o)
}
