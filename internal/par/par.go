// Package par provides the small worker-pool primitive shared by the
// parallel solver paths: Algorithm 1's bilevel subproblem fan-out, the
// heuristic attacker candidate sweeps, N−1 contingency screening, and
// per-step time-series runs. It deliberately has no knowledge of the work
// being done — callers own result slots indexed by task, which keeps every
// parallel pipeline deterministic: workers race on *scheduling* only, never
// on result placement.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count knob: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)), and the count is capped at the
// task count so small fan-outs do not spawn idle goroutines.
func Resolve(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Each invokes fn(i) for every i in [0, n), spreading calls over
// Resolve(workers, n) goroutines and returning once all calls complete.
// Tasks are claimed dynamically (an atomic cursor), so long tasks do not
// leave workers idle behind a static partition. With workers <= 1 (or n <=
// 1) the calls run inline on the caller's goroutine in index order, which
// gives a strictly sequential reference schedule for determinism tests.
//
// fn must write results only to per-index storage (or otherwise
// synchronize); Each itself provides the completion barrier.
func Each(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
