package par_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/edsec/edattack/internal/par"
)

func TestResolve(t *testing.T) {
	ncpu := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, tasks, want int
	}{
		{0, 100, min(ncpu, 100)},
		{-3, 100, min(ncpu, 100)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 10, 1},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := par.Resolve(c.workers, c.tasks); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.tasks, got, c.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEachCoversEveryIndexOnce checks the dynamic-claim pool visits each
// index exactly once for worker counts spanning inline and parallel paths.
func TestEachCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, w := range []int{1, 2, 4, 0} {
		counts := make([]atomic.Int32, n)
		par.Each(w, n, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, got)
			}
		}
	}
}

// TestEachSequentialOrder checks the workers=1 path runs inline in index
// order — the reference schedule determinism tests compare against.
func TestEachSequentialOrder(t *testing.T) {
	var order []int
	par.Each(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline schedule out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("expected 5 calls, got %d", len(order))
	}
}

func TestEachZeroTasks(t *testing.T) {
	called := false
	par.Each(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}
