package mat

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int, zeroFrac float64) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < zeroFrac {
				continue
			}
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// TestMulBlockedMatchesMulVec pins the batched GEMM's contract: column j of
// MulBlocked(a, b) is bit-identical to a.MulVec(column j of b), for shapes
// that straddle the panel width and for sparse a (zero skipping).
func TestMulBlockedMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {7, 5, 3}, {20, 30, 1}, {13, 17, 255}, {9, 40, 256}, {5, 8, 300},
	}
	for _, sh := range shapes {
		for _, zf := range []float64{0, 0.6} {
			a := randomMatrix(rng, sh.m, sh.k, zf)
			b := randomMatrix(rng, sh.k, sh.n, 0)
			got, err := MulBlocked(a, b)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, sh.k)
			for j := 0; j < sh.n; j++ {
				for i := 0; i < sh.k; i++ {
					x[i] = b.At(i, j)
				}
				want, err := a.MulVec(x)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < sh.m; i++ {
					if got.At(i, j) != want[i] {
						t.Fatalf("shape %dx%dx%d zf=%g: (%d,%d) = %v, MulVec %v",
							sh.m, sh.k, sh.n, zf, i, j, got.At(i, j), want[i])
					}
				}
			}
			// Cross-check against the unblocked Mul too.
			ref, err := a.Mul(b)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < sh.m; i++ {
				for j := 0; j < sh.n; j++ {
					if got.At(i, j) != ref.At(i, j) {
						t.Fatalf("blocked vs Mul mismatch at (%d,%d)", i, j)
					}
				}
			}
		}
	}
}

// TestMulBlockedBatchSizeIndependent pins that slicing the same columns into
// different batch widths cannot change any output bit.
func TestMulBlockedBatchSizeIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 31, 23, 0.3)
	b := randomMatrix(rng, 23, 130, 0)
	full, err := MulBlocked(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, 7, 64} {
		for jb := 0; jb < b.Cols(); jb += width {
			je := jb + width
			if je > b.Cols() {
				je = b.Cols()
			}
			sub := New(b.Rows(), je-jb)
			for i := 0; i < b.Rows(); i++ {
				for j := jb; j < je; j++ {
					sub.Set(i, j-jb, b.At(i, j))
				}
			}
			got, err := MulBlocked(a, sub)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < a.Rows(); i++ {
				for j := jb; j < je; j++ {
					if got.At(i, j-jb) != full.At(i, j) {
						t.Fatalf("width %d: (%d,%d) differs across batch slicing", width, i, j)
					}
				}
			}
		}
	}
}

func TestMulBlockedShapeErrors(t *testing.T) {
	a, b := New(2, 3), New(4, 5)
	if _, err := MulBlocked(a, b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	dst := New(9, 9)
	if err := MulBlockedInto(dst, New(2, 3), New(3, 4)); err == nil {
		t.Fatal("bad dst shape accepted")
	}
}
