package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AxPlusY returns a·x + y element-wise as a new vector.
func AxPlusY(a float64, x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a*x[i] + y[i]
	}
	return out
}

// Sub returns a - b element-wise as a new vector.
func Sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// NormInf returns the maximum absolute entry of v (0 for an empty vector).
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// CloneVec returns a copy of v. A nil input yields a nil output.
func CloneVec(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Fill sets every entry of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// CMatrix is a dense, row-major matrix of complex128 values, used for bus
// admittance matrices in AC power flow.
type CMatrix struct {
	rows, cols int
	data       []complex128
}

// NewC returns a zero-valued rows×cols complex matrix.
func NewC(rows, cols int) *CMatrix {
	return &CMatrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// Rows returns the number of rows.
func (m *CMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CMatrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.data[i*m.cols+j] = v }

// Add accumulates v into the element at (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.data[i*m.cols+j] += v }

// MulVec returns m·x for a complex vector x.
func (m *CMatrix) MulVec(x []complex128) ([]complex128, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("CMatrix.MulVec: vector length %d, want %d: %w", len(x), m.cols, ErrShape)
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}
