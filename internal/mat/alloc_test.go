package mat

import (
	"math/rand"
	"testing"
)

// TestMulBlockedIntoZeroAlloc pins the blocked GEMM at zero steady-state
// allocations when the caller owns the destination: the packing-free kernel
// must touch only the three operands.
func TestMulBlockedIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := New(37, 53), New(53, 41)
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < b.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	dst := New(37, 41)
	allocs := testing.AllocsPerRun(50, func() {
		if err := MulBlockedInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MulBlockedInto allocates %.1f objects per call, want 0", allocs)
	}
}
