// Package mat provides the dense linear-algebra kernels used by the power
// flow, dispatch, and optimization packages. It is deliberately small: dense
// row-major matrices, LU and Cholesky factorizations, and a complex matrix
// type for bus admittance work. The networks in this repository (up to the
// IEEE 118-bus case) are small enough that dense factorizations are both
// simpler and fast enough.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-valued rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		rows, cols = 0, 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equally sized rows.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(r), cols, ErrShape)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Wrap views an existing row-major flat slice as a rows×cols matrix
// without copying; the matrix and the slice share storage. Batch kernels
// use this to run matrix ops over externally packed buffers.
func Wrap(rows, cols int, data []float64) (*Matrix, error) {
	if rows < 0 || cols < 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("Wrap: %d values for %dx%d: %w", len(data), rows, cols, ErrShape)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into the element at (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i backed by the matrix storage. Mutations to the
// returned slice mutate the matrix.
func (m *Matrix) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("MulVec: vector length %d, want %d: %w", len(x), m.cols, ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("Mul: %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LU is an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorization of a square matrix.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("Factor: %dx%d not square: %w", a.rows, a.cols, ErrShape)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude in column k at or below row k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs, p = v, i
			}
		}
		if maxAbs < 1e-13 {
			return nil, fmt.Errorf("pivot %d is %g: %w", k, maxAbs, ErrSingular)
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("LU.Solve: rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b for a square A.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Cholesky is the lower-triangular factor of a symmetric positive-definite
// matrix: A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric
// positive-definite matrix.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("FactorCholesky: %dx%d not square: %w", a.rows, a.cols, ErrShape)
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 1e-13 {
			return nil, fmt.Errorf("leading minor %d not positive (%g): %w", j, d, ErrSingular)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the Cholesky factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("Cholesky.Solve: rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	x := make([]float64, n)
	copy(x, b)
	// L·y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	// Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}
