package mat

import "fmt"

// gemmPanel is the column-panel width of the blocked GEMM: output and
// right-hand-side rows are processed in panels of this many columns so the
// active output row slice and streamed B row slice stay L1-resident even
// when B carries thousands of scenario columns.
const gemmPanel = 256

// MulBlocked returns a·b computed with the blocked kernel. It is the
// batched counterpart of MulVec: column j of the result equals
// a.MulVec(column j of b) bit-for-bit, because every output element
// accumulates its k-terms in the same ascending order regardless of panel
// boundaries. This determinism is load-bearing: the scenario-sweep engine
// relies on batch-size-independent results.
func MulBlocked(a, b *Matrix) (*Matrix, error) {
	out := New(a.rows, b.cols)
	if err := MulBlockedInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulBlockedInto computes dst = a·b without allocating, overwriting dst.
// dst must be a.Rows()×b.Cols() and must not alias a or b.
//
// The kernel blocks over output column panels only; the k (inner-product)
// loop always runs 0..a.Cols()-1 in order, skipping exact zeros of a. Since
// x + 0·y == x for every finite x, skipping zero terms leaves each
// accumulator bit-identical to the dense ordered sum, so results match the
// unblocked Mul/MulVec paths exactly for any panel width.
func MulBlockedInto(dst, a, b *Matrix) error {
	if a.cols != b.rows {
		return fmt.Errorf("MulBlockedInto: %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("MulBlockedInto: dst %dx%d, want %dx%d: %w", dst.rows, dst.cols, a.rows, b.cols, ErrShape)
	}
	n := b.cols
	for jb := 0; jb < n; jb += gemmPanel {
		je := jb + gemmPanel
		if je > n {
			je = n
		}
		for i := 0; i < a.rows; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			orow := dst.data[i*n+jb : i*n+je]
			for j := range orow {
				orow[j] = 0
			}
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.data[k*n+jb : k*n+je]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	return nil
}
