package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewFromRows: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected matrix: %v", m)
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestNewFromRowsEmpty(t *testing.T) {
	m, err := NewFromRows(nil)
	if err != nil || m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty: %v %v", m, err)
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(4)
	x := []float64{1, -2, 3, 0.5}
	y, err := id.MulVec(x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if !vecAlmostEq(x, y, 0) {
		t.Fatalf("identity changed vector: %v", y)
	}
}

func TestMulVecShapeError(t *testing.T) {
	m := New(2, 3)
	if _, err := m.MulVec([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMul(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want, _ := NewFromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("got %v want %v", c, want)
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", at)
	}
}

func TestLUSolve(t *testing.T) {
	a, _ := NewFromRows([][]float64{
		{4, -2, 1},
		{-2, 4, -2},
		{1, -2, 4},
	})
	b := []float64{11, -16, 17}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ax, _ := a.MulVec(x)
	if !vecAlmostEq(ax, b, 1e-10) {
		t.Fatalf("residual too large: Ax=%v b=%v", ax, b)
	}
}

func TestLUSolveSingular(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewFromRows([][]float64{{2, 0}, {0, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if !almostEq(f.Det(), 6, 1e-12) {
		t.Fatalf("det = %v, want 6", f.Det())
	}
}

func TestLUDetPermutationSign(t *testing.T) {
	// Swapping rows of the identity gives determinant -1.
	a, _ := NewFromRows([][]float64{{0, 1}, {1, 0}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if !almostEq(f.Det(), -1, 1e-12) {
		t.Fatalf("det = %v, want -1", f.Det())
	}
}

func TestInverse(t *testing.T) {
	a, _ := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	prod, _ := a.Mul(inv)
	id := Identity(2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(prod.At(i, j), id.At(i, j), 1e-12) {
				t.Fatalf("A·A⁻¹ != I: %v", prod)
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	a, _ := NewFromRows([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
	b := []float64{2, -1, 4}
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	x, err := ch.Solve(b)
	if err != nil {
		t.Fatalf("Cholesky.Solve: %v", err)
	}
	ax, _ := a.MulVec(x)
	if !vecAlmostEq(ax, b, 1e-10) {
		t.Fatalf("residual too large: Ax=%v b=%v", ax, b)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := FactorCholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestCholeskyNotSquare(t *testing.T) {
	if _, err := FactorCholesky(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

// Property: for random well-conditioned systems, Solve returns x with
// A·x ≈ b.
func TestLUSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance → well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		return vecAlmostEq(ax, b, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve of A = MᵀM + n·I reproduces the rhs.
func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
		}
		mt := m.T()
		a, _ := mt.Mul(m)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		ch, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		x, err := ch.Solve(b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		return vecAlmostEq(ax, b, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if got := AxPlusY(2, a, b); !vecAlmostEq(got, []float64{6, 9, 12}, 0) {
		t.Fatalf("AxPlusY = %v", got)
	}
	if got := Sub(b, a); !vecAlmostEq(got, []float64{3, 3, 3}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if NormInf([]float64{-5, 2}) != 5 {
		t.Fatal("NormInf")
	}
	if NormInf(nil) != 0 {
		t.Fatal("NormInf nil")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2")
	}
	if Sum(a) != 6 {
		t.Fatal("Sum")
	}
	c := CloneVec(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("CloneVec did not copy")
	}
	if CloneVec(nil) != nil {
		t.Fatal("CloneVec nil")
	}
	v := make([]float64, 3)
	Fill(v, 7)
	if !vecAlmostEq(v, []float64{7, 7, 7}, 0) {
		t.Fatal("Fill")
	}
}

func TestCMatrix(t *testing.T) {
	m := NewC(2, 2)
	m.Set(0, 0, 1+2i)
	m.Add(0, 0, 1)
	m.Set(0, 1, 3i)
	m.Set(1, 0, 1)
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("dims")
	}
	if m.At(0, 0) != 2+2i {
		t.Fatalf("At = %v", m.At(0, 0))
	}
	y, err := m.MulVec([]complex128{1, 1i})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != (2+2i)+(3i*1i) || y[1] != 1 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]complex128{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}})
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestScaleAndRow(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale: %v", m)
	}
	r := m.Row(0)
	r[0] = 42
	if m.At(0, 0) != 2 {
		t.Fatal("Row must copy")
	}
	rr := m.RawRow(0)
	rr[0] = 42
	if m.At(0, 0) != 42 {
		t.Fatal("RawRow must alias")
	}
}
