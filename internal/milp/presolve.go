package milp

import (
	"math"

	"github.com/edsec/edattack/internal/lp"
)

// Presolve tuning knobs. The pass is feasibility-based throughout — every
// tightening preserves the full set of mixed-integer feasible points — so
// these only trade work against tightening strength, never correctness.
const (
	// maxPresolveRounds caps the outer propagate→shrink-big-M iterations.
	maxPresolveRounds = 4
	// propagationRounds caps one propagation pass's sweeps to a fixpoint.
	propagationRounds = 10
	// probePropagationRounds caps the shallow propagation inside a probe.
	probePropagationRounds = 3
	// maxProbeBinaries disables probing on problems with more binaries than
	// this (probing is quadratic-ish in the binary count).
	maxProbeBinaries = 256
	// presolveFeasTol is the relative slack below which a row proves
	// infeasible under the current bounds.
	presolveFeasTol = 1e-9
	// presolveTightenTol is the minimum relative improvement worth keeping.
	presolveTightenTol = 1e-7
	// presolveMargin relaxes every accepted bound outward, so accumulated
	// floating-point error in activity sums can never cut off a feasible
	// vertex.
	presolveMargin = 1e-9
	// bigMPatternTol recognizes the rhs patterns of big-M indicator rows.
	bigMPatternTol = 1e-9
)

// coeffPatch/rhsPatch record a big-M shrink applied to the live problem so
// unpatch can restore the caller's coefficients exactly.
type coeffPatch struct {
	row, col int
	old      float64
}

type rhsPatch struct {
	row int
	old float64
}

// presolveResult carries everything the search needs from the tightening
// pass: the propagated variable bounds (globally valid, read by the cutter),
// probing-discovered binary conflict cliques, an infeasibility proof if one
// surfaced, and the patch log for restoring the problem on exit.
type presolveResult struct {
	stats      PresolveStats
	infeasible bool
	lo, hi     []float64
	cliques    [][2]int
	coeffs     []coeffPatch
	rhss       []rhsPatch
}

// unpatch restores every big-M coefficient and rhs shrink, newest first.
func (pr *presolveResult) unpatch(base *lp.Problem) {
	for i := len(pr.coeffs) - 1; i >= 0; i-- {
		c := pr.coeffs[i]
		_ = base.SetConstraintCoeff(c.row, c.col, c.old)
	}
	for i := len(pr.rhss) - 1; i >= 0; i-- {
		r := pr.rhss[i]
		_ = base.SetConstraintRHS(r.row, r.old)
	}
}

// prow is a presolve-local snapshot of one constraint row.
type prow struct {
	rel lp.Relation
	rhs float64
	ind []int
	val []float64
}

func snapshotRows(base *lp.Problem) []prow {
	rows := make([]prow, base.NumConstraints())
	for i := range rows {
		rel, rhs, nnz := base.RowInfo(i)
		r := prow{rel: rel, rhs: rhs, ind: make([]int, 0, nnz), val: make([]float64, 0, nnz)}
		base.VisitRow(i, func(j int, v float64) {
			r.ind = append(r.ind, j)
			r.val = append(r.val, v)
		})
		rows[i] = r
	}
	return rows
}

// runPresolve tightens the live problem before the search:
//
//  1. interval bound propagation over all rows (equalities propagate in
//     both directions), with binaries clamped to integrality;
//  2. per-row big-M coefficient reduction — indicator rows of the forms
//     c·x − M·μ ≤ 0 (x ≤ (M/c)·μ) and c·x + M·μ ≤ M (x ≤ (M/c)(1−μ))
//     shrink M to c·U once propagation proves x ≤ U < M/c, which is what
//     keeps the big-M route away from the saturation watchdog;
//  3. binary probing: each side of every binary is tentatively fixed and
//     shallowly propagated — an infeasible side fixes the binary the other
//     way, two infeasible sides prove the problem infeasible, and a probe
//     that forces another binary to zero records a conflict clique for the
//     cut generator.
//
// Variable-bound tightenings are applied to the live problem through the
// caller's touch hook (restored by the caller's bound-restore defer);
// coefficient and rhs patches restore through unpatch.
func runPresolve(p *Problem, o *Options, touch func(int)) *presolveResult {
	base := p.Base
	n := base.NumVars()
	pr := &presolveResult{lo: make([]float64, n), hi: make([]float64, n)}
	for j := 0; j < n; j++ {
		pr.lo[j], pr.hi[j] = base.Bounds(j)
	}
	binSet := make([]bool, n)
	for _, j := range p.binaries {
		binSet[j] = true
	}
	rows := snapshotRows(base)

	for round := 0; round < maxPresolveRounds; round++ {
		pr.stats.Rounds++
		t, infeas := propagate(rows, pr.lo, pr.hi, binSet, propagationRounds)
		pr.stats.BoundsTightened += t
		if infeas {
			pr.infeasible = true
			return pr
		}
		patched := tightenBigM(base, rows, pr, binSet)
		pr.stats.BigMTightened += patched
		if patched == 0 {
			break
		}
	}

	probeBinaries(p, rows, pr, binSet)
	if pr.infeasible {
		return pr
	}
	if pr.stats.BinariesFixed > 0 {
		t, infeas := propagate(rows, pr.lo, pr.hi, binSet, propagationRounds)
		pr.stats.BoundsTightened += t
		if infeas {
			pr.infeasible = true
			return pr
		}
	}

	for j := 0; j < n; j++ {
		lo0, hi0 := base.Bounds(j)
		if pr.lo[j] > pr.hi[j] {
			// Crossed within tolerance (a larger crossing would have
			// reported infeasible): collapse to a point.
			pr.lo[j] = pr.hi[j]
		}
		if pr.lo[j] > lo0 || pr.hi[j] < hi0 {
			touch(j)
			_ = base.SetBounds(j, pr.lo[j], pr.hi[j])
		}
	}
	return pr
}

// propagate sweeps interval bound propagation over the rows until a fixpoint
// or maxRounds, tightening lo/hi in place. Returns the number of bound
// improvements and whether some row proved infeasible under current bounds.
func propagate(rows []prow, lo, hi []float64, binSet []bool, maxRounds int) (int, bool) {
	tightened := 0
	for round := 0; round < maxRounds; round++ {
		changed := false
		for i := range rows {
			r := &rows[i]
			// Activity bounds with infinity counting: minAct/maxAct sum
			// the finite contributions; the counters track how many
			// entries contribute ±Inf and where the single one sits.
			var minAct, maxAct float64
			nMinInf, nMaxInf := 0, 0
			minInfAt, maxInfAt := -1, -1
			for k, j := range r.ind {
				v := r.val[k]
				cmin, cmax := v*lo[j], v*hi[j]
				if v < 0 {
					cmin, cmax = cmax, cmin
				}
				if math.IsInf(cmin, -1) {
					nMinInf++
					minInfAt = k
				} else {
					minAct += cmin
				}
				if math.IsInf(cmax, 1) {
					nMaxInf++
					maxInfAt = k
				} else {
					maxAct += cmax
				}
			}
			if r.rel == lp.LE || r.rel == lp.EQ { // ax ≤ rhs direction
				if nMinInf == 0 && minAct > r.rhs+presolveFeasTol*(1+math.Abs(r.rhs)) {
					return tightened, true
				}
				for k, j := range r.ind {
					v := r.val[k]
					var others float64
					switch nMinInf {
					case 0:
						cmin := v * lo[j]
						if v < 0 {
							cmin = v * hi[j]
						}
						others = minAct - cmin
					case 1:
						if minInfAt != k {
							continue
						}
						others = minAct
					default:
						continue
					}
					b := (r.rhs - others) / v
					var ch, inf bool
					if v > 0 {
						ch, inf = tightenHi(j, b, lo, hi, binSet)
					} else {
						ch, inf = tightenLo(j, b, lo, hi, binSet)
					}
					if inf {
						return tightened, true
					}
					if ch {
						tightened++
						changed = true
					}
				}
			}
			if r.rel == lp.GE || r.rel == lp.EQ { // ax ≥ rhs direction
				if nMaxInf == 0 && maxAct < r.rhs-presolveFeasTol*(1+math.Abs(r.rhs)) {
					return tightened, true
				}
				for k, j := range r.ind {
					v := r.val[k]
					var others float64
					switch nMaxInf {
					case 0:
						cmax := v * hi[j]
						if v < 0 {
							cmax = v * lo[j]
						}
						others = maxAct - cmax
					case 1:
						if maxInfAt != k {
							continue
						}
						others = maxAct
					default:
						continue
					}
					b := (r.rhs - others) / v
					var ch, inf bool
					if v > 0 {
						ch, inf = tightenLo(j, b, lo, hi, binSet)
					} else {
						ch, inf = tightenHi(j, b, lo, hi, binSet)
					}
					if inf {
						return tightened, true
					}
					if ch {
						tightened++
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return tightened, false
}

// tightenHi lowers hi[j] to b when that is a meaningful improvement,
// clamping binaries to integrality and relaxing continuous bounds outward by
// presolveMargin. Reports (improved, infeasible-crossing).
func tightenHi(j int, b float64, lo, hi []float64, binSet []bool) (bool, bool) {
	if math.IsInf(b, 1) || math.IsNaN(b) {
		return false, false
	}
	if binSet[j] {
		if b >= 1-1e-6 || hi[j] < 0.5 {
			return false, false
		}
		if b < -1e-6 {
			return false, true
		}
		hi[j] = 0
		return true, false
	}
	b += presolveMargin * (1 + math.Abs(b))
	if b >= hi[j]-presolveTightenTol*(1+math.Abs(hi[j])) {
		return false, false
	}
	if b < lo[j]-presolveFeasTol*(1+math.Abs(lo[j])) {
		return false, true
	}
	if b < lo[j] {
		b = lo[j]
	}
	hi[j] = b
	return true, false
}

// tightenLo raises lo[j] to b; mirror of tightenHi.
func tightenLo(j int, b float64, lo, hi []float64, binSet []bool) (bool, bool) {
	if math.IsInf(b, -1) || math.IsNaN(b) {
		return false, false
	}
	if binSet[j] {
		if b <= 1e-6 || lo[j] > 0.5 {
			return false, false
		}
		if b > 1+1e-6 {
			return false, true
		}
		lo[j] = 1
		return true, false
	}
	b -= presolveMargin * (1 + math.Abs(b))
	if b <= lo[j]+presolveTightenTol*(1+math.Abs(lo[j])) {
		return false, false
	}
	if b > hi[j]+presolveFeasTol*(1+math.Abs(hi[j])) {
		return false, true
	}
	if b > hi[j] {
		b = hi[j]
	}
	lo[j] = b
	return true, false
}

// tightenBigM shrinks big-M indicator coefficients to the propagated
// variable bounds, patching both the local row snapshot and the live
// problem. Two-nonzero LE rows coupling one continuous variable x (coeff
// c > 0) with one binary μ match either
//
//	c·x − M·μ ≤ 0   (x ≤ (M/c)·μ)      → M shrinks to c·U, or
//	c·x + M·μ ≤ M   (x ≤ (M/c)(1−μ))   → M and rhs shrink to c·U,
//
// where U is x's propagated upper bound. Both rewrites keep the exact same
// mixed-integer feasible set: at μ = 1 (resp. μ = 0) the row relaxes to
// x ≤ U, already implied by the variable bound, and on the other side it is
// unchanged.
func tightenBigM(base *lp.Problem, rows []prow, pr *presolveResult, binSet []bool) int {
	patched := 0
	for i := range rows {
		r := &rows[i]
		if r.rel != lp.LE || len(r.ind) != 2 {
			continue
		}
		xi, bi := -1, -1
		for k, j := range r.ind {
			if binSet[j] {
				bi = k
			} else {
				xi = k
			}
		}
		if xi < 0 || bi < 0 {
			continue
		}
		c, d := r.val[xi], r.val[bi]
		x, b := r.ind[xi], r.ind[bi]
		if c <= 0 {
			continue
		}
		U := pr.hi[x]
		if math.IsInf(U, 1) || U < 0 {
			continue
		}
		const shrink = 1 - 1e-9
		switch {
		case d < 0 && math.Abs(r.rhs) <= bigMPatternTol:
			if c*U >= -d*shrink {
				continue
			}
			if base.SetConstraintCoeff(i, b, -c*U) != nil {
				continue
			}
			pr.coeffs = append(pr.coeffs, coeffPatch{i, b, d})
			r.val[bi] = -c * U
			patched++
		case d > 0 && math.Abs(r.rhs-d) <= bigMPatternTol*(1+math.Abs(d)):
			if c*U >= d*shrink {
				continue
			}
			if base.SetConstraintCoeff(i, b, c*U) != nil {
				continue
			}
			pr.coeffs = append(pr.coeffs, coeffPatch{i, b, d})
			pr.rhss = append(pr.rhss, rhsPatch{i, r.rhs})
			_ = base.SetConstraintRHS(i, c*U)
			r.val[bi] = c * U
			r.rhs = c * U
			patched++
		}
	}
	return patched
}

// probeBinaries tentatively fixes each side of every unfixed binary and
// propagates shallowly. An infeasible side fixes the binary the other way;
// two infeasible sides prove the problem infeasible; a 1-probe that forces
// another binary to zero records a conflict clique (μ_a + μ_b ≤ 1) for the
// cut generator.
func probeBinaries(p *Problem, rows []prow, pr *presolveResult, binSet []bool) {
	if len(p.binaries) == 0 || len(p.binaries) > maxProbeBinaries {
		return
	}
	n := len(pr.lo)
	sLo, sHi := make([]float64, n), make([]float64, n)
	probe := func(j int, v float64) (bool, []int) {
		copy(sLo, pr.lo)
		copy(sHi, pr.hi)
		sLo[j], sHi[j] = v, v
		if _, infeas := propagate(rows, sLo, sHi, binSet, probePropagationRounds); infeas {
			return true, nil
		}
		var forcedZero []int
		if v == 1 {
			for _, ob := range p.binaries {
				if ob != j && sHi[ob] < 0.5 && pr.hi[ob] >= 0.5 {
					forcedZero = append(forcedZero, ob)
				}
			}
		}
		return false, forcedZero
	}
	seen := make(map[[2]int]bool)
	for _, j := range p.binaries {
		if pr.lo[j] >= pr.hi[j] {
			continue // already fixed
		}
		inf0, _ := probe(j, 0)
		inf1, forced := probe(j, 1)
		switch {
		case inf0 && inf1:
			pr.infeasible = true
			return
		case inf0:
			pr.lo[j], pr.hi[j] = 1, 1
			pr.stats.BinariesFixed++
		case inf1:
			pr.lo[j], pr.hi[j] = 0, 0
			pr.stats.BinariesFixed++
		default:
			for _, ob := range forced {
				a, b := j, ob
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if !seen[key] {
					seen[key] = true
					pr.cliques = append(pr.cliques, key)
				}
			}
		}
	}
}
