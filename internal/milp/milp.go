// Package milp implements a branch-and-bound solver on top of the lp
// package. It supports two kinds of combinatorial structure, both needed by
// the bilevel attack generator:
//
//   - binary variables — used for the paper's big-M MILP reformulation of
//     the KKT complementary-slackness conditions (Section III, eq. 16–17);
//   - complementarity pairs (x_a · x_b = 0 with x_a, x_b ≥ 0) — used for
//     direct complementarity branching, which avoids big-M constants and
//     their numeric pitfalls.
//
// The search explores a frontier of open nodes under a pluggable selection
// strategy (Options.NodeOrder): depth-first (default), best-first on the
// inherited relaxation bound, or a hybrid that plunges depth-first and
// restarts from the best bound. Branching picks the most fractional binary
// or the most violated complementarity pair, optionally weighted by learned
// pseudo-costs. A presolve pass (Options.Presolve) propagates bounds over
// the rows, shrinks big-M coefficients to the implied variable bounds, and
// fixes binaries by probing; a cut pass (Options.Cuts) appends
// complementarity bound cuts at the root and at plunge leaves.
package milp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/telemetry"
)

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	NodeLimit // search truncated; Solution carries the best incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrBadPair is returned when a complementarity pair references variables
// that may go negative.
var ErrBadPair = errors.New("milp: complementarity pair variables must have non-negative lower bounds")

// BoundSource supplies an externally proven incumbent objective to a running
// search (see Options.Bound). Bound reports the current external objective
// and whether one exists; it is called on the searching goroutine but may be
// updated from others, so implementations must synchronize internally.
type BoundSource interface {
	Bound() (obj float64, ok bool)
}

// Problem couples an LP relaxation with integrality/complementarity
// structure.
type Problem struct {
	// Base is the LP relaxation. The solver temporarily mutates variable
	// bounds during the search and restores them afterwards; the problem
	// must not be shared concurrently.
	Base *lp.Problem

	binaries []int
	pairs    [][2]int
}

// NewProblem wraps an LP relaxation.
func NewProblem(base *lp.Problem) *Problem {
	return &Problem{Base: base}
}

// SetBinary declares variable j binary (bounds forced to [0, 1]).
func (p *Problem) SetBinary(j int) error {
	if err := p.Base.SetBounds(j, 0, 1); err != nil {
		return fmt.Errorf("milp: %w", err)
	}
	p.binaries = append(p.binaries, j)
	return nil
}

// AddComplementarityPair requires x_a · x_b = 0. Both variables must have
// non-negative lower bounds.
func (p *Problem) AddComplementarityPair(a, b int) error {
	for _, j := range [2]int{a, b} {
		lo, _ := p.Base.Bounds(j)
		if lo < 0 {
			return fmt.Errorf("variable %d has lower bound %g: %w", j, lo, ErrBadPair)
		}
	}
	p.pairs = append(p.pairs, [2]int{a, b})
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports optimality, infeasibility, unboundedness, or a
	// truncated search.
	Status Status
	// X is the best integral/complementary point found (nil if none).
	X []float64
	// Objective is the objective at X in the problem's own sense.
	Objective float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// LPIterations is the total simplex pivot count across all node
	// relaxations — the search's real unit of work.
	LPIterations int
	// Incumbents counts incumbent improvements (first solution included).
	Incumbents int
	// Pruned counts nodes cut by the incumbent bound.
	Pruned int
	// HeuristicHits counts rounding-heuristic calls that produced an
	// improving incumbent.
	HeuristicHits int
	// WarmNodes counts node relaxations solved by the warm-started dual
	// simplex path; WarmFallbacks counts nodes where a warm basis was
	// offered but the LP fell back to a cold solve. Nodes − WarmNodes −
	// WarmFallbacks is the count of nodes solved cold with no basis to
	// reuse (the root, and every node after a structural reset).
	WarmNodes     int
	WarmFallbacks int
	// RootBasis is the optimal basis of the root relaxation, captured when
	// warm starts are enabled. Row-generation callers remap it onto the
	// next round's grown problem to keep basis reuse flowing across rounds.
	// It is captured before any cut rows are appended, so its shape always
	// matches the caller's problem layout.
	RootBasis *lp.Basis
	// BestBound is the proven bound on the optimum in the problem's own
	// sense: equal to Objective when Status is Optimal, the best inherited
	// relaxation bound over the surviving frontier when a node limit
	// truncated the search, and the pruning seed when a seeded search
	// proved nothing beats it (Status Infeasible with Options.Incumbent
	// set). A truncated search that never solved the root reports ±Inf.
	BestBound float64
	// Gap is the relative distance between BestBound and the incumbent,
	// normalized as |BestBound − Objective| / (1 + |Objective|): zero for
	// proven-optimal results, +Inf when truncation left no incumbent.
	Gap float64
	// Cuts is the number of cut rows appended during the solve (all are
	// removed from the problem before returning).
	Cuts int
	// Presolve summarizes the tightening pass (zero when disabled).
	Presolve PresolveStats
}

// PresolveStats tallies the work of the presolve/tightening pass.
type PresolveStats struct {
	// Rounds is the number of outer propagate/tighten iterations run.
	Rounds int
	// BoundsTightened counts variable-bound improvements applied.
	BoundsTightened int
	// BigMTightened counts big-M row coefficients shrunk to implied
	// variable bounds.
	BigMTightened int
	// BinariesFixed counts binaries fixed by propagation or probing.
	BinariesFixed int
}

// Options tune the search.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (default 200000).
	MaxNodes int
	// IntTol is the integrality/complementarity tolerance (default 1e-6).
	IntTol float64
	// Gap is the relative optimality gap at which a node is pruned
	// against the incumbent (default 1e-9).
	Gap float64
	// Incumbent, when non-nil, seeds the search with a known feasible
	// objective value for pruning (e.g. from a heuristic attack).
	Incumbent *float64
	// Bound, when non-nil, supplies an external incumbent objective proven
	// elsewhere while this search runs (e.g. by a concurrent sibling
	// subproblem). It is polled once per node; the search prunes against
	// the tighter of the local incumbent and this bound, so a bound that
	// improves mid-solve immediately tightens all remaining nodes.
	// Implementations must be safe for concurrent use and monotone in the
	// problem's own sense (only ever tightening); the searched problem's
	// returned solution may still be worse than the final bound — callers
	// arbitrate across searches themselves.
	Bound BoundSource
	// Heuristic, when non-nil, is invoked with the root relaxation's point
	// (after any root cut rounds) and may return a feasible objective and
	// point to update the incumbent even though the relaxation point
	// itself is fractional or non-complementary. The returned point is
	// trusted to be feasible for the caller's problem semantics. The root
	// point is a pure function of the instance, so the offer — unlike a
	// per-node sweep — is identical under every NodeOrder and worker
	// schedule, which keeps exact solves bit-identical across strategies.
	Heuristic func(relaxX []float64) (obj float64, point []float64, ok bool)
	// NodeOrder selects the node-selection strategy (default OrderDFS).
	// Exact results are identical under every strategy; node counts, work,
	// and which of several equal-quality optima is reported first differ.
	NodeOrder NodeOrder
	// PseudoCost enables pseudo-cost branching: entities are scored by
	// fractionality/violation weighted with the average relaxation-bound
	// degradation observed when branching them, seeded at the root from
	// complementarity-violation magnitudes.
	PseudoCost bool
	// Presolve enables the tightening pass before the search: interval
	// bound propagation over the rows, per-row big-M coefficient reduction
	// to the propagated variable bounds, and binary probing/fixing. All
	// mutations are restored on return.
	Presolve bool
	// Cuts enables complementarity bound cuts (x_a/U_a + x_b/U_b ≤ 1 for
	// pairs with finite upper bounds, plus binary clique cuts discovered by
	// probing) at the root and at plunge leaves. Cut rows are appended to
	// the problem during the search and truncated away before returning.
	Cuts bool
	// MaxCutRounds caps root cut-generation rounds (default 4).
	MaxCutRounds int
	// MaxCuts caps total cut rows per solve (default 200).
	MaxCuts int
	// LP are the options for each relaxation solve.
	LP lp.Options
	// WarmBasis, when non-nil, seeds the root relaxation with a basis from
	// an earlier solve of the same LP shape (e.g. the previous row-
	// generation round's root, remapped onto the grown problem).
	WarmBasis *lp.Basis
	// DisableWarmStart turns off basis reuse across nodes, cold-solving
	// every relaxation as the solver did before warm starts existed.
	DisableWarmStart bool
	// Metrics, when non-nil, receives milp_* search counters; it is also
	// forwarded to the relaxation LPs unless LP.Metrics is already set.
	Metrics *telemetry.Registry
	// Span, when non-nil, parents a per-solve trace span carrying node,
	// prune, and incumbent counts.
	Span *telemetry.Span
	// Flight, when non-nil, records one FlightNode event per B&B node
	// (disposition, depth, bound, pivots, warm/cold) and a FlightIncumbent
	// event per incumbent update. It is also forwarded to the relaxation
	// LPs unless LP.Flight is already set. Recording is observational only
	// and never alters the search.
	Flight *telemetry.Flight
	// FlightTemplate pre-fills identity fields (Target, Dir, Round) on
	// every event this solve records, so a caller running many MILPs can
	// attribute nodes to its own work items.
	FlightTemplate telemetry.FlightEvent
	// Ctx, when non-nil, is polled once per branch-and-bound node (before
	// the node's LP solve) and forwarded to the relaxation LPs unless
	// LP.Ctx is already set. A canceled or expired context aborts the
	// search with the context's error (wrapped, errors.Is-compatible);
	// no partial Solution is returned, since a schedule-dependent
	// truncation point would break the solver's determinism contract.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if o.Gap <= 0 {
		o.Gap = 1e-9
	}
	if o.MaxCutRounds <= 0 {
		o.MaxCutRounds = 4
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 200
	}
	return o
}

// Solve runs branch and bound with default options.
func Solve(p *Problem) (*Solution, error) {
	return SolveWith(p, Options{})
}

// boundFix is one temporary variable-bound restriction along a branch.
type boundFix struct {
	j      int
	lo, hi float64
}

// node is one open branch-and-bound node: the list of bound fixes from the
// root, plus the parent relaxation's optimal basis. The basis is shared
// read-only between siblings (lp.Basis is immutable), so each child's
// relaxation warm-starts from the parent — the bound fix leaves that basis
// dual-feasible, which is what makes the dual simplex re-solve cheap. When
// cut rows were appended after the basis was captured, the pop path extends
// it onto the grown problem with Basis.Extend.
type node struct {
	fixes []boundFix
	basis *lp.Basis
	// parent is the 1-based id of the node that branched into this one
	// (0 for the root), recorded for the flight recorder's search-tree
	// export. Ids are assigned in pop order, matching the node count.
	parent int
	// score is the parent relaxation's objective — a proven bound on this
	// subtree (±Inf for the root). Best-first ordering, frontier pruning,
	// the truncated-search BestBound, and pseudo-cost degradations all read
	// it.
	score float64
	// seq is the frontier push sequence number, the deterministic heap
	// tie-break.
	seq int
	// entity is the branching entity that created this node (binary
	// position, or binary count + pair position; −1 for the root) and up
	// its branch side, feeding pseudo-cost observations.
	entity int
	up     bool
}

// SolveWith runs branch and bound with explicit options.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	o := opts.withDefaults()
	if o.LP.Metrics == nil {
		o.LP.Metrics = o.Metrics
	}
	if o.LP.Flight == nil {
		o.LP.Flight = o.Flight
	}
	if o.LP.Ctx == nil {
		o.LP.Ctx = o.Ctx
	}
	maximize := p.isMaximize()
	warm := !o.DisableWarmStart
	if warm {
		// Capture every node's optimal basis (for its children) and let the
		// problem retain the final tableau between node solves.
		o.LP.CaptureBasis = true
		defer p.Base.ReleaseSolverCache()
	}

	var lpIters, incumbents, pruned, heurHits int
	var warmNodes, warmFallbacks int
	var cutsAdded int
	var preStats PresolveStats
	var rootBasis *lp.Basis
	span := telemetry.StartSpan(nil, o.Span, "milp.solve")
	finish := func(sol *Solution, err error) (*Solution, error) {
		if sol != nil {
			sol.LPIterations = lpIters
			sol.Incumbents = incumbents
			sol.Pruned = pruned
			sol.HeuristicHits = heurHits
			sol.WarmNodes = warmNodes
			sol.WarmFallbacks = warmFallbacks
			sol.RootBasis = rootBasis
			sol.Cuts = cutsAdded
			sol.Presolve = preStats
		}
		if m := o.Metrics; m != nil {
			m.Counter("milp_solves_total").Inc()
			m.Counter("milp_lp_iterations_total").Add(int64(lpIters))
			m.Counter("milp_incumbents_total").Add(int64(incumbents))
			m.Counter("milp_pruned_total").Add(int64(pruned))
			m.Counter("milp_heuristic_hits_total").Add(int64(heurHits))
			m.Counter("milp_cuts_total").Add(int64(cutsAdded))
			m.Counter("milp_presolve_bounds_total").Add(int64(preStats.BoundsTightened))
			m.Counter("milp_presolve_bigm_total").Add(int64(preStats.BigMTightened))
			m.Counter("milp_presolve_fixed_total").Add(int64(preStats.BinariesFixed))
			if sol != nil {
				m.Counter("milp_nodes_total").Add(int64(sol.Nodes))
				m.Histogram("milp_nodes", telemetry.NodeBuckets).Observe(float64(sol.Nodes))
			}
			if err != nil {
				m.Counter("milp_errors_total").Inc()
			}
		}
		if span != nil {
			if sol != nil {
				span.SetAttr("status", sol.Status.String())
				span.SetAttr("nodes", sol.Nodes)
				span.SetAttr("lp_iterations", lpIters)
				span.SetAttr("incumbents", incumbents)
				span.SetAttr("pruned", pruned)
				span.SetAttr("warm_nodes", warmNodes)
				span.SetAttr("cold_nodes", sol.Nodes-warmNodes)
			}
			if err != nil {
				span.SetAttr("error", err.Error())
			}
			span.End()
		}
		return sol, err
	}

	// Save original bounds of every variable we may touch, to restore on
	// exit. The restore list is an ordered slice (not a map) so restores
	// happen in one fixed order.
	type saved struct{ lo, hi float64 }
	touched := make(map[int]saved)
	var touchOrder []int
	touch := func(j int) {
		if _, ok := touched[j]; !ok {
			lo, hi := p.Base.Bounds(j)
			touched[j] = saved{lo, hi}
			touchOrder = append(touchOrder, j)
		}
	}
	for _, j := range p.binaries {
		touch(j)
	}
	for _, pr := range p.pairs {
		touch(pr[0])
		touch(pr[1])
	}
	defer func() {
		for _, j := range touchOrder {
			s := touched[j]
			_ = p.Base.SetBounds(j, s.lo, s.hi)
		}
	}()

	better := func(a, b float64) bool {
		if maximize {
			return a > b
		}
		return a < b
	}

	var incumbent []float64
	incObj := math.Inf(1)
	if maximize {
		incObj = math.Inf(-1)
	}
	if o.Incumbent != nil {
		incObj = *o.Incumbent
	}

	// Presolve: bound propagation, big-M reduction, and binary probing on
	// the live problem. Variable-bound tightenings restore through the
	// touched map above; coefficient/RHS patches restore through their own
	// deferred unpatch, so the caller's problem survives unchanged.
	var pre *presolveResult
	if o.Presolve {
		pre = runPresolve(p, &o, touch)
		preStats = pre.stats
		defer pre.unpatch(p.Base)
		if pre.infeasible {
			sol := &Solution{Status: Infeasible}
			if o.Incumbent != nil {
				sol.BestBound = incObj
			}
			return finish(sol, nil)
		}
	}

	// Cut state: candidate complementarity pairs with their post-presolve
	// bound snapshot plus probing-discovered binary cliques. Appended cut
	// rows are truncated away on every return path.
	var ct *cutter
	if o.Cuts {
		ct = newCutter(p, pre, o.MaxCuts)
		defer ct.restore(p.Base)
	}

	var pcosts *pseudoCosts
	if o.PseudoCost {
		pcosts = newPseudoCosts(len(p.binaries) + len(p.pairs))
	}

	rootScore := math.Inf(1)
	if !maximize {
		rootScore = math.Inf(-1)
	}
	f := newFrontier(o.NodeOrder, maximize)
	f.push(node{basis: o.WarmBasis, score: rootScore, entity: -1})
	strategy := o.NodeOrder.String()
	nodes := 0
	// Per-node flight/timing state. finishNode is called at every exit
	// point of a node's iteration with the node's disposition; when both
	// recorder and metrics are off it reduces to one branch per node.
	fl := o.Flight
	timedNodes := fl != nil || o.Metrics != nil
	var nodeStart time.Time
	var nodeID, nodeParent, nodeDepth int
	finishNode := func(label string, rel *lp.Solution) {
		if !timedNodes {
			return
		}
		dur := time.Since(nodeStart)
		if o.Metrics != nil {
			o.Metrics.Histogram("milp_node_seconds", telemetry.SecondsBuckets).Observe(dur.Seconds())
		}
		if fl == nil {
			return
		}
		ev := o.FlightTemplate
		ev.Kind = telemetry.FlightNode
		ev.Node = nodeID
		ev.Parent = nodeParent
		ev.Depth = nodeDepth
		ev.Label = label
		ev.Strategy = strategy
		ev.Frontier = f.len()
		ev.DurUS = dur.Microseconds()
		if rel != nil {
			ev.Bound = rel.Objective
			ev.Pivots = rel.Iterations
			ev.Warm = rel.Warm
			ev.Sparse = rel.Sparse
		}
		if incumbent != nil || o.Incumbent != nil {
			ev.Incumbent = incObj
		}
		fl.Record(ev)
	}
	recordIncumbent := func(obj float64, source string) {
		if fl == nil {
			return
		}
		ev := o.FlightTemplate
		ev.Kind = telemetry.FlightIncumbent
		ev.Node = nodeID
		ev.Incumbent = obj
		ev.Label = source
		fl.Record(ev)
	}
	// Fixes applied for the node currently reflected in p.Base's bounds;
	// undoing exactly these (in order) returns every bound to its original,
	// so each node restores O(|prev fixes|) bounds instead of rewriting the
	// whole touched set from a map in nondeterministic order.
	var applied []boundFix
	undoApplied := func() error {
		for _, fx := range applied {
			s := touched[fx.j]
			if err := p.Base.SetBounds(fx.j, s.lo, s.hi); err != nil {
				return fmt.Errorf("milp: restoring bounds: %w", err)
			}
		}
		applied = applied[:0]
		return nil
	}
	// pruneRef is the tighter of the local incumbent and the shared
	// external bound; relGapTo normalizes a proven bound against the
	// incumbent the way prune tolerances are normalized.
	pruneRef := func() (float64, bool) {
		ref, have := incObj, incumbent != nil || o.Incumbent != nil
		if o.Bound != nil {
			if b, ok := o.Bound.Bound(); ok && (!have || better(b, ref)) {
				ref, have = b, true
			}
		}
		return ref, have
	}
	relGapTo := func(bound float64) float64 {
		if incumbent == nil && o.Incumbent == nil {
			return math.Inf(1)
		}
		g := bound - incObj
		if !maximize {
			g = incObj - bound
		}
		if g < 0 {
			g = 0
		}
		return g / (1 + math.Abs(incObj))
	}
	for f.len() > 0 {
		if o.Ctx != nil {
			if err := o.Ctx.Err(); err != nil {
				return finish(nil, fmt.Errorf("milp: search aborted after %d nodes: %w", nodes, err))
			}
		}
		if nodes >= o.MaxNodes {
			bound := f.bestBound()
			if (incumbent != nil || o.Incumbent != nil) && better(incObj, bound) {
				bound = incObj
			}
			sol := &Solution{Status: NodeLimit, Nodes: nodes, BestBound: bound, Gap: relGapTo(bound)}
			if incumbent != nil {
				sol.X = incumbent
				sol.Objective = incObj
			}
			return finish(sol, nil)
		}
		cur, _ := f.pop()
		nodes++
		nodeID, nodeParent, nodeDepth = nodes, cur.parent, len(cur.fixes)
		if timedNodes {
			nodeStart = time.Now()
		}

		// Frontier prune: under bound-aware orders a popped node whose
		// inherited bound cannot beat the incumbent (or the shared
		// external bound) is discarded before any LP work. DFS keeps the
		// historical solve-then-prune accounting.
		if o.NodeOrder != OrderDFS {
			if ref, have := pruneRef(); have {
				gapTol := o.Gap * (1 + math.Abs(ref))
				if maximize && cur.score <= ref+gapTol || !maximize && cur.score >= ref-gapTol {
					pruned++
					finishNode("pruned", nil)
					continue
				}
			}
		}

		// Undo the previous node's fixes, then apply this node's.
		if err := undoApplied(); err != nil {
			return finish(nil, err)
		}
		applyOK := true
		for _, f := range cur.fixes {
			if err := p.Base.SetBounds(f.j, f.lo, f.hi); err != nil {
				applyOK = false // conflicting fixes → infeasible branch
				break
			}
			applied = append(applied, f)
		}
		if !applyOK {
			if err := undoApplied(); err != nil {
				return finish(nil, err)
			}
			finishNode("conflict", nil)
			continue
		}
		nodeLP := o.LP
		if warm {
			basis := cur.basis
			if basis != nil && ct != nil {
				// Cut rows may have been appended after this basis was
				// captured; extend it onto the grown problem (nil on a
				// shape mismatch → cold solve).
				basis = basis.Extend(p.Base)
			}
			nodeLP.WarmBasis = basis
		}
		rel, err := lp.SolveWith(p.Base, nodeLP)
		if rel != nil {
			lpIters += rel.Iterations
			if rel.Warm {
				warmNodes++
			} else if warm && cur.basis != nil {
				warmFallbacks++
			}
			if nodes == 1 {
				rootBasis = rel.Basis
			}
		}
		if err != nil {
			return finish(nil, fmt.Errorf("milp: node %d relaxation: %w", nodes, err))
		}
		switch rel.Status {
		case lp.Infeasible:
			finishNode("infeasible", rel)
			continue
		case lp.Unbounded:
			if nodes == 1 && len(p.binaries) == 0 && len(p.pairs) == 0 {
				return finish(&Solution{Status: Unbounded, Nodes: nodes}, nil)
			}
			// An unbounded relaxation cannot be pruned by bound;
			// treat as an error since our problems are always
			// bounded.
			return finish(nil, fmt.Errorf("milp: node %d relaxation unbounded", nodes))
		}

		// Pseudo-cost learning: record the realized bound degradation
		// from the parent relaxation to this one.
		if pcosts != nil && cur.entity >= 0 && !math.IsInf(cur.score, 0) {
			degr := cur.score - rel.Objective
			if !maximize {
				degr = -degr
			}
			if degr < 0 {
				degr = 0
			}
			pcosts.observe(cur.entity, cur.up, degr)
		}

		if nodes == 1 {
			// Root work: seed pair pseudo-costs from the root relaxation's
			// complementarity-violation magnitudes, then run the root cut
			// loop — generate violated cuts, re-solve the strengthened
			// relaxation warm-started from the previous root basis, repeat
			// until no cut fires or the round cap hits.
			if pcosts != nil {
				for pi, pr := range p.pairs {
					if v := math.Min(rel.X[pr[0]], rel.X[pr[1]]); v > o.IntTol {
						pcosts.seed(len(p.binaries)+pi, v)
					}
				}
			}
			if ct != nil {
				infeasibleRoot := false
				for r := 0; r < o.MaxCutRounds; r++ {
					added := ct.generate(p.Base, rel.X)
					if added == 0 {
						break
					}
					cutsAdded += added
					cutLP := o.LP
					if warm {
						cutLP.WarmBasis = rel.Basis.Extend(p.Base)
					}
					crel, cerr := lp.SolveWith(p.Base, cutLP)
					if crel != nil {
						lpIters += crel.Iterations
					}
					if cerr != nil {
						return finish(nil, fmt.Errorf("milp: root cut round %d: %w", r+1, cerr))
					}
					if crel.Status == lp.Infeasible {
						// Cuts hold for every feasible point, so a cut
						// round proving infeasibility is conclusive.
						infeasibleRoot = true
						rel = crel
						break
					}
					if crel.Status == lp.Unbounded {
						return finish(nil, errors.New("milp: root relaxation unbounded after cuts"))
					}
					rel = crel
				}
				if infeasibleRoot {
					finishNode("infeasible", rel)
					continue
				}
			}

			// Root primal heuristic: let the caller round the (cut-
			// strengthened) root relaxation point into a known-feasible
			// incumbent. Root-only on purpose: a per-node sweep would make
			// the best offer depend on which nodes the chosen NodeOrder
			// happens to visit before pruning, and with it the returned
			// solution — the root point is the same under every strategy.
			if o.Heuristic != nil {
				if hObj, hPoint, ok := o.Heuristic(rel.X); ok {
					if incumbent == nil && o.Incumbent == nil || better(hObj, incObj) {
						incObj = hObj
						incumbent = append([]float64(nil), hPoint...)
						incumbents++
						heurHits++
						recordIncumbent(hObj, "heuristic")
					}
				}
			}
		}

		// Bound pruning against the tighter of the local incumbent and
		// the external shared bound (if any).
		if ref, have := pruneRef(); have {
			gapTol := o.Gap * (1 + math.Abs(ref))
			if maximize && rel.Objective <= ref+gapTol || !maximize && rel.Objective >= ref-gapTol {
				pruned++
				// A pruned node under DFS/hybrid ends a plunge on a
				// fractional point — the cutter's second harvest site
				// after the root.
				if ct != nil && o.NodeOrder != OrderBestFirst && nodes > 1 {
					cutsAdded += ct.generate(p.Base, rel.X)
				}
				finishNode("pruned", rel)
				continue
			}
		}

		// Pick a branching entity: the most fractional binary first, else
		// the most violated complementarity pair; pseudo-cost branching
		// weights both by learned bound degradations.
		be, bkind := p.selectBranch(rel.X, o.IntTol, pcosts)
		switch bkind {
		case branchBinary:
			// Branch on the binary: floor child and ceil child, each
			// warm-started from this node's optimal basis. The child that
			// rounds toward the relaxation value is preferred (explored
			// first under DFS, continues the plunge under hybrid).
			bj := p.binaries[be]
			lo := cur.child(nodeID, rel.Basis, boundFix{bj, 0, 0}, rel.Objective, be, false)
			hi := cur.child(nodeID, rel.Basis, boundFix{bj, 1, 1}, rel.Objective, be, true)
			if rel.X[bj] >= 0.5 {
				f.pushChildren(hi, lo)
			} else {
				f.pushChildren(lo, hi)
			}
			finishNode("branch", rel)
		case branchPair:
			// Branch on the complementarity pair: fix one side to zero,
			// preferring the child that zeroes the smaller value.
			pr := p.pairs[be-len(p.binaries)]
			ca := cur.child(nodeID, rel.Basis, boundFix{pr[0], 0, 0}, rel.Objective, be, false)
			cb := cur.child(nodeID, rel.Basis, boundFix{pr[1], 0, 0}, rel.Objective, be, true)
			if rel.X[pr[0]] <= rel.X[pr[1]] {
				f.pushChildren(ca, cb)
			} else {
				f.pushChildren(cb, ca)
			}
			finishNode("branch", rel)
		default:
			// Integral and complementary: candidate incumbent.
			if incumbent == nil || better(rel.Objective, incObj) {
				incumbent = append([]float64(nil), rel.X...)
				incObj = rel.Objective
				incumbents++
				recordIncumbent(rel.Objective, "integral")
				finishNode("incumbent", rel)
			} else {
				finishNode("integral", rel)
			}
		}
	}
	if incumbent == nil {
		// Exhausted frontier with no incumbent: with a pruning seed that is
		// a proof that nothing beats the seed, and the seed itself is the
		// proven bound.
		sol := &Solution{Status: Infeasible, Nodes: nodes}
		if o.Incumbent != nil {
			sol.BestBound = incObj
		}
		return finish(sol, nil)
	}
	return finish(&Solution{
		Status: Optimal, X: incumbent, Objective: incObj, Nodes: nodes,
		BestBound: incObj, Gap: 0,
	}, nil)
}

// child extends the fix list functionally (copy-on-write so siblings don't
// alias), records the parent relaxation's basis as the child's warm seed, and
// inherits the parent relaxation objective as the child's proven bound.
func (n node) child(parent int, basis *lp.Basis, f boundFix, score float64, entity int, up bool) node {
	fixes := make([]boundFix, len(n.fixes)+1)
	copy(fixes, n.fixes)
	fixes[len(n.fixes)] = f
	return node{fixes: fixes, basis: basis, parent: parent, score: score, entity: entity, up: up}
}

// Branch entity kinds returned by selectBranch.
const (
	branchNone = iota
	branchBinary
	branchPair
)

// selectBranch picks the branching entity for a relaxation point: binaries
// (most fractional) take precedence over complementarity pairs (most
// violated); with pseudo-costs the raw fractionality/violation is weighted by
// the entity's learned degradation averages. Returns the entity index
// (binary position, or binary count + pair position) and its kind, or
// (-1, branchNone) when the point is integral and complementary.
func (p *Problem) selectBranch(x []float64, tol float64, pc *pseudoCosts) (int, int) {
	best, bestScore := -1, tol
	for bi, j := range p.binaries {
		frac := math.Abs(x[j] - math.Round(x[j]))
		if frac <= tol {
			continue
		}
		score := frac
		if pc != nil {
			score = pc.score(bi, frac)
		}
		if score > bestScore {
			best, bestScore = bi, score
		}
	}
	if best >= 0 {
		return best, branchBinary
	}
	bestScore = tol
	for pi, pr := range p.pairs {
		v := math.Min(x[pr[0]], x[pr[1]])
		if v <= tol {
			continue
		}
		e := len(p.binaries) + pi
		score := v
		if pc != nil {
			score = pc.score(e, v)
		}
		if score > bestScore {
			best, bestScore = e, score
		}
	}
	if best >= 0 {
		return best, branchPair
	}
	return -1, branchNone
}

func (p *Problem) isMaximize() bool {
	return p.Base.IsMaximize()
}
