// Package milp implements a branch-and-bound solver on top of the lp
// package. It supports two kinds of combinatorial structure, both needed by
// the bilevel attack generator:
//
//   - binary variables — used for the paper's big-M MILP reformulation of
//     the KKT complementary-slackness conditions (Section III, eq. 16–17);
//   - complementarity pairs (x_a · x_b = 0 with x_a, x_b ≥ 0) — used for
//     direct complementarity branching, which avoids big-M constants and
//     their numeric pitfalls.
//
// The search is depth-first with best-incumbent pruning; branching picks the
// most fractional binary or the most violated complementarity pair.
package milp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/telemetry"
)

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	NodeLimit // search truncated; Solution carries the best incumbent
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrBadPair is returned when a complementarity pair references variables
// that may go negative.
var ErrBadPair = errors.New("milp: complementarity pair variables must have non-negative lower bounds")

// BoundSource supplies an externally proven incumbent objective to a running
// search (see Options.Bound). Bound reports the current external objective
// and whether one exists; it is called on the searching goroutine but may be
// updated from others, so implementations must synchronize internally.
type BoundSource interface {
	Bound() (obj float64, ok bool)
}

// Problem couples an LP relaxation with integrality/complementarity
// structure.
type Problem struct {
	// Base is the LP relaxation. The solver temporarily mutates variable
	// bounds during the search and restores them afterwards; the problem
	// must not be shared concurrently.
	Base *lp.Problem

	binaries []int
	pairs    [][2]int
}

// NewProblem wraps an LP relaxation.
func NewProblem(base *lp.Problem) *Problem {
	return &Problem{Base: base}
}

// SetBinary declares variable j binary (bounds forced to [0, 1]).
func (p *Problem) SetBinary(j int) error {
	if err := p.Base.SetBounds(j, 0, 1); err != nil {
		return fmt.Errorf("milp: %w", err)
	}
	p.binaries = append(p.binaries, j)
	return nil
}

// AddComplementarityPair requires x_a · x_b = 0. Both variables must have
// non-negative lower bounds.
func (p *Problem) AddComplementarityPair(a, b int) error {
	for _, j := range [2]int{a, b} {
		lo, _ := p.Base.Bounds(j)
		if lo < 0 {
			return fmt.Errorf("variable %d has lower bound %g: %w", j, lo, ErrBadPair)
		}
	}
	p.pairs = append(p.pairs, [2]int{a, b})
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports optimality, infeasibility, unboundedness, or a
	// truncated search.
	Status Status
	// X is the best integral/complementary point found (nil if none).
	X []float64
	// Objective is the objective at X in the problem's own sense.
	Objective float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// LPIterations is the total simplex pivot count across all node
	// relaxations — the search's real unit of work.
	LPIterations int
	// Incumbents counts incumbent improvements (first solution included).
	Incumbents int
	// Pruned counts nodes cut by the incumbent bound.
	Pruned int
	// HeuristicHits counts rounding-heuristic calls that produced an
	// improving incumbent.
	HeuristicHits int
	// WarmNodes counts node relaxations solved by the warm-started dual
	// simplex path; WarmFallbacks counts nodes where a warm basis was
	// offered but the LP fell back to a cold solve. Nodes − WarmNodes −
	// WarmFallbacks is the count of nodes solved cold with no basis to
	// reuse (the root, and every node after a structural reset).
	WarmNodes     int
	WarmFallbacks int
	// RootBasis is the optimal basis of the root relaxation, captured when
	// warm starts are enabled. Row-generation callers remap it onto the
	// next round's grown problem to keep basis reuse flowing across rounds.
	RootBasis *lp.Basis
}

// Options tune the search.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (default 200000).
	MaxNodes int
	// IntTol is the integrality/complementarity tolerance (default 1e-6).
	IntTol float64
	// Gap is the relative optimality gap at which a node is pruned
	// against the incumbent (default 1e-9).
	Gap float64
	// Incumbent, when non-nil, seeds the search with a known feasible
	// objective value for pruning (e.g. from a heuristic attack).
	Incumbent *float64
	// Bound, when non-nil, supplies an external incumbent objective proven
	// elsewhere while this search runs (e.g. by a concurrent sibling
	// subproblem). It is polled once per node; the search prunes against
	// the tighter of the local incumbent and this bound, so a bound that
	// improves mid-solve immediately tightens all remaining nodes.
	// Implementations must be safe for concurrent use and monotone in the
	// problem's own sense (only ever tightening); the searched problem's
	// returned solution may still be worse than the final bound — callers
	// arbitrate across searches themselves.
	Bound BoundSource
	// Heuristic, when non-nil, is invoked with each node relaxation's
	// point and may return a feasible objective and point to update the
	// incumbent even though the relaxation point itself is fractional or
	// non-complementary. The returned point is trusted to be feasible
	// for the caller's problem semantics.
	Heuristic func(relaxX []float64) (obj float64, point []float64, ok bool)
	// LP are the options for each relaxation solve.
	LP lp.Options
	// WarmBasis, when non-nil, seeds the root relaxation with a basis from
	// an earlier solve of the same LP shape (e.g. the previous row-
	// generation round's root, remapped onto the grown problem).
	WarmBasis *lp.Basis
	// DisableWarmStart turns off basis reuse across nodes, cold-solving
	// every relaxation as the solver did before warm starts existed.
	DisableWarmStart bool
	// Metrics, when non-nil, receives milp_* search counters; it is also
	// forwarded to the relaxation LPs unless LP.Metrics is already set.
	Metrics *telemetry.Registry
	// Span, when non-nil, parents a per-solve trace span carrying node,
	// prune, and incumbent counts.
	Span *telemetry.Span
	// Flight, when non-nil, records one FlightNode event per B&B node
	// (disposition, depth, bound, pivots, warm/cold) and a FlightIncumbent
	// event per incumbent update. It is also forwarded to the relaxation
	// LPs unless LP.Flight is already set. Recording is observational only
	// and never alters the search.
	Flight *telemetry.Flight
	// FlightTemplate pre-fills identity fields (Target, Dir, Round) on
	// every event this solve records, so a caller running many MILPs can
	// attribute nodes to its own work items.
	FlightTemplate telemetry.FlightEvent
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if o.Gap <= 0 {
		o.Gap = 1e-9
	}
	return o
}

// Solve runs branch and bound with default options.
func Solve(p *Problem) (*Solution, error) {
	return SolveWith(p, Options{})
}

// boundFix is one temporary variable-bound restriction along a branch.
type boundFix struct {
	j      int
	lo, hi float64
}

// node is one open branch-and-bound node: the list of bound fixes from the
// root, plus the parent relaxation's optimal basis. The basis is shared
// read-only between siblings (lp.Basis is immutable), so each child's
// relaxation warm-starts from the parent — the bound fix leaves that basis
// dual-feasible, which is what makes the dual simplex re-solve cheap.
type node struct {
	fixes []boundFix
	basis *lp.Basis
	// parent is the 1-based id of the node that branched into this one
	// (0 for the root), recorded for the flight recorder's search-tree
	// export. Ids are assigned in pop order, matching the node count.
	parent int
}

// SolveWith runs branch and bound with explicit options.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	o := opts.withDefaults()
	if o.LP.Metrics == nil {
		o.LP.Metrics = o.Metrics
	}
	if o.LP.Flight == nil {
		o.LP.Flight = o.Flight
	}
	maximize := p.isMaximize()
	warm := !o.DisableWarmStart
	if warm {
		// Capture every node's optimal basis (for its children) and let the
		// problem retain the final tableau between node solves.
		o.LP.CaptureBasis = true
		defer p.Base.ReleaseSolverCache()
	}

	var lpIters, incumbents, pruned, heurHits int
	var warmNodes, warmFallbacks int
	var rootBasis *lp.Basis
	span := telemetry.StartSpan(nil, o.Span, "milp.solve")
	finish := func(sol *Solution, err error) (*Solution, error) {
		if sol != nil {
			sol.LPIterations = lpIters
			sol.Incumbents = incumbents
			sol.Pruned = pruned
			sol.HeuristicHits = heurHits
			sol.WarmNodes = warmNodes
			sol.WarmFallbacks = warmFallbacks
			sol.RootBasis = rootBasis
		}
		if m := o.Metrics; m != nil {
			m.Counter("milp_solves_total").Inc()
			m.Counter("milp_lp_iterations_total").Add(int64(lpIters))
			m.Counter("milp_incumbents_total").Add(int64(incumbents))
			m.Counter("milp_pruned_total").Add(int64(pruned))
			m.Counter("milp_heuristic_hits_total").Add(int64(heurHits))
			if sol != nil {
				m.Counter("milp_nodes_total").Add(int64(sol.Nodes))
				m.Histogram("milp_nodes", telemetry.NodeBuckets).Observe(float64(sol.Nodes))
			}
			if err != nil {
				m.Counter("milp_errors_total").Inc()
			}
		}
		if span != nil {
			if sol != nil {
				span.SetAttr("status", sol.Status.String())
				span.SetAttr("nodes", sol.Nodes)
				span.SetAttr("lp_iterations", lpIters)
				span.SetAttr("incumbents", incumbents)
				span.SetAttr("pruned", pruned)
				span.SetAttr("warm_nodes", warmNodes)
				span.SetAttr("cold_nodes", sol.Nodes-warmNodes)
			}
			if err != nil {
				span.SetAttr("error", err.Error())
			}
			span.End()
		}
		return sol, err
	}

	// Save original bounds of every variable we may touch, to restore on
	// exit. The restore list is an ordered slice (not a map) so restores
	// happen in one fixed order.
	type saved struct{ lo, hi float64 }
	touched := make(map[int]saved)
	var touchOrder []int
	touch := func(j int) {
		if _, ok := touched[j]; !ok {
			lo, hi := p.Base.Bounds(j)
			touched[j] = saved{lo, hi}
			touchOrder = append(touchOrder, j)
		}
	}
	for _, j := range p.binaries {
		touch(j)
	}
	for _, pr := range p.pairs {
		touch(pr[0])
		touch(pr[1])
	}
	defer func() {
		for _, j := range touchOrder {
			s := touched[j]
			_ = p.Base.SetBounds(j, s.lo, s.hi)
		}
	}()

	better := func(a, b float64) bool {
		if maximize {
			return a > b
		}
		return a < b
	}

	var incumbent []float64
	incObj := math.Inf(1)
	if maximize {
		incObj = math.Inf(-1)
	}
	if o.Incumbent != nil {
		incObj = *o.Incumbent
	}

	stack := []node{{basis: o.WarmBasis}}
	nodes := 0
	// Per-node flight/timing state. finishNode is called at every exit
	// point of a node's iteration with the node's disposition; when both
	// recorder and metrics are off it reduces to one branch per node.
	fl := o.Flight
	timedNodes := fl != nil || o.Metrics != nil
	var nodeStart time.Time
	var nodeID, nodeParent, nodeDepth int
	finishNode := func(label string, rel *lp.Solution) {
		if !timedNodes {
			return
		}
		dur := time.Since(nodeStart)
		if o.Metrics != nil {
			o.Metrics.Histogram("milp_node_seconds", telemetry.SecondsBuckets).Observe(dur.Seconds())
		}
		if fl == nil {
			return
		}
		ev := o.FlightTemplate
		ev.Kind = telemetry.FlightNode
		ev.Node = nodeID
		ev.Parent = nodeParent
		ev.Depth = nodeDepth
		ev.Label = label
		ev.DurUS = dur.Microseconds()
		if rel != nil {
			ev.Bound = rel.Objective
			ev.Pivots = rel.Iterations
			ev.Warm = rel.Warm
			ev.Sparse = rel.Sparse
		}
		if incumbent != nil || o.Incumbent != nil {
			ev.Incumbent = incObj
		}
		fl.Record(ev)
	}
	recordIncumbent := func(obj float64, source string) {
		if fl == nil {
			return
		}
		ev := o.FlightTemplate
		ev.Kind = telemetry.FlightIncumbent
		ev.Node = nodeID
		ev.Incumbent = obj
		ev.Label = source
		fl.Record(ev)
	}
	// Fixes applied for the node currently reflected in p.Base's bounds;
	// undoing exactly these (in order) returns every bound to its original,
	// so each node restores O(|prev fixes|) bounds instead of rewriting the
	// whole touched set from a map in nondeterministic order.
	var applied []boundFix
	undoApplied := func() error {
		for _, f := range applied {
			s := touched[f.j]
			if err := p.Base.SetBounds(f.j, s.lo, s.hi); err != nil {
				return fmt.Errorf("milp: restoring bounds: %w", err)
			}
		}
		applied = applied[:0]
		return nil
	}
	for len(stack) > 0 {
		if nodes >= o.MaxNodes {
			return finish(truncated(incumbent, incObj, nodes), nil)
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		nodeID, nodeParent, nodeDepth = nodes, cur.parent, len(cur.fixes)
		if timedNodes {
			nodeStart = time.Now()
		}

		// Undo the previous node's fixes, then apply this node's.
		if err := undoApplied(); err != nil {
			return finish(nil, err)
		}
		applyOK := true
		for _, f := range cur.fixes {
			if err := p.Base.SetBounds(f.j, f.lo, f.hi); err != nil {
				applyOK = false // conflicting fixes → infeasible branch
				break
			}
			applied = append(applied, f)
		}
		if !applyOK {
			if err := undoApplied(); err != nil {
				return finish(nil, err)
			}
			finishNode("conflict", nil)
			continue
		}
		nodeLP := o.LP
		if warm {
			nodeLP.WarmBasis = cur.basis
		}
		rel, err := lp.SolveWith(p.Base, nodeLP)
		if rel != nil {
			lpIters += rel.Iterations
			if rel.Warm {
				warmNodes++
			} else if warm && cur.basis != nil {
				warmFallbacks++
			}
			if nodes == 1 {
				rootBasis = rel.Basis
			}
		}
		if err != nil {
			return finish(nil, fmt.Errorf("milp: node %d relaxation: %w", nodes, err))
		}
		switch rel.Status {
		case lp.Infeasible:
			finishNode("infeasible", rel)
			continue
		case lp.Unbounded:
			if nodes == 1 && len(p.binaries) == 0 && len(p.pairs) == 0 {
				return finish(&Solution{Status: Unbounded, Nodes: nodes}, nil)
			}
			// An unbounded relaxation cannot be pruned by bound;
			// treat as an error since our problems are always
			// bounded.
			return finish(nil, fmt.Errorf("milp: node %d relaxation unbounded", nodes))
		}
		// Primal heuristic: let the caller round the relaxation point
		// into a known-feasible incumbent.
		if o.Heuristic != nil {
			if hObj, hPoint, ok := o.Heuristic(rel.X); ok {
				if incumbent == nil && o.Incumbent == nil || better(hObj, incObj) {
					incObj = hObj
					incumbent = append([]float64(nil), hPoint...)
					incumbents++
					heurHits++
					recordIncumbent(hObj, "heuristic")
				}
			}
		}

		// Bound pruning against the tighter of the local incumbent and
		// the external shared bound (if any).
		pruneRef, havePrune := incObj, incumbent != nil || o.Incumbent != nil
		if o.Bound != nil {
			if b, ok := o.Bound.Bound(); ok && (!havePrune || better(b, pruneRef)) {
				pruneRef, havePrune = b, true
			}
		}
		if havePrune {
			gapTol := o.Gap * (1 + math.Abs(pruneRef))
			if maximize && rel.Objective <= pruneRef+gapTol {
				pruned++
				finishNode("pruned", rel)
				continue
			}
			if !maximize && rel.Objective >= pruneRef-gapTol {
				pruned++
				finishNode("pruned", rel)
				continue
			}
		}

		// Pick a branching target.
		bj := p.mostFractionalBinary(rel.X, o.IntTol)
		pa, pb := p.mostViolatedPair(rel.X, o.IntTol)
		switch {
		case bj >= 0:
			// Branch on the binary: floor child and ceil child, each
			// warm-started from this node's optimal basis.
			// Push the "round toward relaxation value" child last so
			// DFS explores it first.
			lo := cur.child(nodeID, rel.Basis, boundFix{bj, 0, 0})
			hi := cur.child(nodeID, rel.Basis, boundFix{bj, 1, 1})
			if rel.X[bj] >= 0.5 {
				stack = append(stack, lo, hi)
			} else {
				stack = append(stack, hi, lo)
			}
			finishNode("branch", rel)
		case pa >= 0:
			// Branch on the complementarity pair: fix one side to
			// zero. Explore first the child that zeroes the smaller
			// value.
			ca := cur.child(nodeID, rel.Basis, boundFix{pa, 0, 0})
			cb := cur.child(nodeID, rel.Basis, boundFix{pb, 0, 0})
			if rel.X[pa] <= rel.X[pb] {
				stack = append(stack, cb, ca)
			} else {
				stack = append(stack, ca, cb)
			}
			finishNode("branch", rel)
		default:
			// Integral and complementary: candidate incumbent.
			if incumbent == nil || better(rel.Objective, incObj) {
				incumbent = append([]float64(nil), rel.X...)
				incObj = rel.Objective
				incumbents++
				recordIncumbent(rel.Objective, "integral")
				finishNode("incumbent", rel)
			} else {
				finishNode("integral", rel)
			}
		}
	}
	if incumbent == nil {
		return finish(&Solution{Status: Infeasible, Nodes: nodes}, nil)
	}
	return finish(&Solution{Status: Optimal, X: incumbent, Objective: incObj, Nodes: nodes}, nil)
}

// truncated builds the node-limit result.
func truncated(x []float64, obj float64, nodes int) *Solution {
	s := &Solution{Status: NodeLimit, Nodes: nodes}
	if x != nil {
		s.X = x
		s.Objective = obj
	}
	return s
}

// child extends the fix list functionally (copy-on-write so siblings don't
// alias) and records the parent relaxation's basis as the child's warm seed.
func (n node) child(parent int, basis *lp.Basis, f boundFix) node {
	fixes := make([]boundFix, len(n.fixes)+1)
	copy(fixes, n.fixes)
	fixes[len(n.fixes)] = f
	return node{fixes: fixes, basis: basis, parent: parent}
}

// mostFractionalBinary returns the binary variable farthest from
// integrality, or -1 when all are integral.
func (p *Problem) mostFractionalBinary(x []float64, tol float64) int {
	best, bestFrac := -1, tol
	for _, j := range p.binaries {
		frac := math.Abs(x[j] - math.Round(x[j]))
		if frac > bestFrac {
			best, bestFrac = j, frac
		}
	}
	return best
}

// mostViolatedPair returns the complementarity pair with the largest
// violation x_a·x_b, or (-1, -1) when all pairs are complementary.
func (p *Problem) mostViolatedPair(x []float64, tol float64) (int, int) {
	bestA, bestB := -1, -1
	bestViol := tol
	for _, pr := range p.pairs {
		v := math.Min(x[pr[0]], x[pr[1]])
		if v > bestViol {
			bestA, bestB, bestViol = pr[0], pr[1], v
		}
	}
	return bestA, bestB
}

func (p *Problem) isMaximize() bool {
	return p.Base.IsMaximize()
}
