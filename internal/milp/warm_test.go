package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/lp"
)

// randomBinaryProblem builds a random feasible 0/1 program: maximize a random
// positive objective over knapsack-style ≤ rows with non-negative RHS, so the
// all-zero point is always feasible.
func randomBinaryProblem(r *rand.Rand) *Problem {
	n := 3 + r.Intn(6)
	m := 1 + r.Intn(4)
	base := lp.NewProblem(n)
	c := make([]float64, n)
	for j := range c {
		c[j] = 1 + 9*r.Float64()
	}
	_ = base.SetObjective(c, true)
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = r.Float64() * 4
		}
		_, _ = base.AddConstraint(row, lp.LE, 1+r.Float64()*float64(n))
	}
	p := NewProblem(base)
	for j := 0; j < n; j++ {
		_ = p.SetBinary(j)
	}
	return p
}

// Property: warm-started branch and bound proves the same optimum as the
// cold search on random binary programs. The two may branch differently at
// degenerate relaxations, so node counts and alternate optimal points can
// differ — the optimal objective cannot.
func TestWarmSearchMatchesCold(t *testing.T) {
	var warmPivots, coldPivots, warmNodesTotal int
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		warmSol, err := SolveWith(randomBinaryProblem(r), Options{})
		if err != nil {
			return false
		}
		r = rand.New(rand.NewSource(seed))
		coldSol, err := SolveWith(randomBinaryProblem(r), Options{DisableWarmStart: true})
		if err != nil {
			return false
		}
		if warmSol.Status != coldSol.Status {
			t.Logf("seed %d: warm %v, cold %v", seed, warmSol.Status, coldSol.Status)
			return false
		}
		if coldSol.Status == Optimal &&
			math.Abs(warmSol.Objective-coldSol.Objective) > 1e-6*(1+math.Abs(coldSol.Objective)) {
			t.Logf("seed %d: warm obj %v, cold obj %v", seed, warmSol.Objective, coldSol.Objective)
			return false
		}
		if coldSol.WarmNodes != 0 || coldSol.WarmFallbacks != 0 {
			t.Logf("seed %d: DisableWarmStart still reported warm nodes", seed)
			return false
		}
		warmPivots += warmSol.LPIterations
		coldPivots += coldSol.LPIterations
		warmNodesTotal += warmSol.WarmNodes
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if warmNodesTotal == 0 {
		t.Fatal("warm-started searches never engaged the dual simplex path")
	}
	// The point of basis reuse: aggregate pivot work must not regress.
	if float64(warmPivots) > 1.05*float64(coldPivots) {
		t.Fatalf("warm search spent %d pivots vs %d cold — reuse is hurting", warmPivots, coldPivots)
	}
	t.Logf("aggregate pivots: %d warm vs %d cold (%d warm nodes)", warmPivots, coldPivots, warmNodesTotal)
}

// The root relaxation's basis must be captured for row-generation callers,
// and a remapped root basis passed back in must be accepted at the root.
func TestRootBasisRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := randomBinaryProblem(r)
	sol, err := SolveWith(p, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("first solve: %v (%v)", err, sol)
	}
	if sol.RootBasis == nil {
		t.Fatal("RootBasis not captured on a warm-enabled solve")
	}
	// Re-solve the same problem seeding the root with its own basis: the
	// root should now be a warm node too.
	sol2, err := SolveWith(p, Options{WarmBasis: sol.RootBasis})
	if err != nil || sol2.Status != Optimal {
		t.Fatalf("seeded solve: %v", err)
	}
	if math.Abs(sol.Objective-sol2.Objective) > tol {
		t.Fatalf("seeded objective %v != %v", sol2.Objective, sol.Objective)
	}
	if sol2.WarmNodes <= sol.WarmNodes-1 {
		t.Fatalf("seeded solve warm nodes %d, unseeded %d: root seed not used",
			sol2.WarmNodes, sol.WarmNodes)
	}
}
