package milp

import (
	"math"

	"github.com/edsec/edattack/internal/lp"
)

// cutViolTol is the minimum violation at which a cut is worth appending.
const cutViolTol = 1e-4

// cutter generates globally valid cut rows and appends them to the live
// problem through the ordinary row path:
//
//   - complementarity bound cuts x_a/U_a + x_b/U_b ≤ 1 for pairs whose
//     upper bounds are finite and positive — a feasible point has one side
//     at zero and the other at most its bound, so the sum never exceeds 1.
//     In the big-M reformulation presolve derives U_λ from the indicator
//     rows, which is what makes these cuts fire there;
//   - binary clique cuts μ_a + μ_b ≤ 1 from probing-discovered conflicts.
//
// Pair bounds are snapshotted at construction (after presolve, before any
// branch fix touches the problem), so every generated row is valid for the
// whole tree even when it is separated at a plunge leaf deep in the search.
// restore truncates all appended rows, returning the caller's problem to its
// original shape.
type cutter struct {
	baseRows  int
	pairs     [][2]int
	ua, ub    []float64
	pairCut   []bool
	cliques   [][2]int
	cliqueCut []bool
	added     int
	maxCuts   int
}

func newCutter(p *Problem, pre *presolveResult, maxCuts int) *cutter {
	ct := &cutter{baseRows: p.Base.NumConstraints(), maxCuts: maxCuts}
	for _, pr := range p.pairs {
		a, b := pr[0], pr[1]
		var ua, ub float64
		if pre != nil {
			ua, ub = pre.hi[a], pre.hi[b]
		} else {
			_, ua = p.Base.Bounds(a)
			_, ub = p.Base.Bounds(b)
		}
		if math.IsInf(ua, 1) || math.IsInf(ub, 1) || ua <= cutViolTol || ub <= cutViolTol {
			continue
		}
		ct.pairs = append(ct.pairs, pr)
		ct.ua = append(ct.ua, ua)
		ct.ub = append(ct.ub, ub)
	}
	ct.pairCut = make([]bool, len(ct.pairs))
	if pre != nil {
		ct.cliques = pre.cliques
	}
	ct.cliqueCut = make([]bool, len(ct.cliques))
	return ct
}

// generate appends every not-yet-added cut violated at x, up to the cut
// budget, and returns how many rows it appended.
func (ct *cutter) generate(base *lp.Problem, x []float64) int {
	added := 0
	for i, pr := range ct.pairs {
		if ct.added+added >= ct.maxCuts {
			break
		}
		if ct.pairCut[i] || x[pr[0]]/ct.ua[i]+x[pr[1]]/ct.ub[i] <= 1+cutViolTol {
			continue
		}
		if _, err := base.AddSparseConstraint(
			[]int{pr[0], pr[1]}, []float64{1 / ct.ua[i], 1 / ct.ub[i]}, lp.LE, 1); err != nil {
			continue
		}
		ct.pairCut[i] = true
		added++
	}
	for i, cl := range ct.cliques {
		if ct.added+added >= ct.maxCuts {
			break
		}
		if ct.cliqueCut[i] || x[cl[0]]+x[cl[1]] <= 1+cutViolTol {
			continue
		}
		if _, err := base.AddSparseConstraint(
			[]int{cl[0], cl[1]}, []float64{1, 1}, lp.LE, 1); err != nil {
			continue
		}
		ct.cliqueCut[i] = true
		added++
	}
	ct.added += added
	return added
}

// restore truncates every appended cut row.
func (ct *cutter) restore(base *lp.Problem) {
	_ = base.TruncateRows(ct.baseRows)
}
