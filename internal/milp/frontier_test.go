package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/lp"
)

// randKnapsack builds a random binary knapsack and its brute-force optimum.
func randKnapsack(r *rand.Rand) (*Problem, float64) {
	n := 4 + r.Intn(7)
	c := make([]float64, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = 1 + 9*r.Float64()
		w[j] = 1 + 9*r.Float64()
	}
	capacity := 0.4 * float64(n) * 5
	base := lp.NewProblem(n)
	_ = base.SetObjective(c, true)
	_, _ = base.AddConstraint(w, lp.LE, capacity)
	p := NewProblem(base)
	for j := 0; j < n; j++ {
		_ = p.SetBinary(j)
	}
	return p, bruteKnapsack(c, w, capacity)
}

// TestNodeOrderEquivalence is the strategy-independence contract: an exact
// solve must reach the same optimal objective under every node-selection
// order, with and without the presolve/cut/pseudo-cost machinery.
func TestNodeOrderEquivalence(t *testing.T) {
	orders := []NodeOrder{OrderDFS, OrderBestFirst, OrderHybrid}
	r := rand.New(rand.NewSource(7))
	for inst := 0; inst < 25; inst++ {
		seed := r.Int63()
		for _, order := range orders {
			for _, full := range []bool{false, true} {
				p, want := randKnapsack(rand.New(rand.NewSource(seed)))
				o := Options{NodeOrder: order, Presolve: full, Cuts: full, PseudoCost: full}
				sol, err := SolveWith(p, o)
				if err != nil {
					t.Fatalf("inst %d order %v full=%v: %v", inst, order, full, err)
				}
				if sol.Status != Optimal {
					t.Fatalf("inst %d order %v full=%v: status %v", inst, order, full, sol.Status)
				}
				if math.Abs(sol.Objective-want) > 1e-5*(1+want) {
					t.Fatalf("inst %d order %v full=%v: objective %v, want %v",
						inst, order, full, sol.Objective, want)
				}
				if sol.Status == Optimal && (sol.Gap != 0 || sol.BestBound != sol.Objective) {
					t.Fatalf("inst %d order %v: optimal solve reports bound %v gap %v",
						inst, order, sol.BestBound, sol.Gap)
				}
			}
		}
	}
}

// randKKTBigM builds a random big-M instance shaped like the bilevel KKT
// reformulation: per pair i, a dual λ_i ≥ 0 and a slack s_i ∈ [0, U_i] with
// indicator rows λ_i ≤ M·μ_i and s_i ≤ M·(1 − μ_i) for binary μ_i, plus a
// stationarity-style equality coupling the duals. M is deliberately huge so
// presolve has real coefficients to shrink.
func randKKTBigM(r *rand.Rand) (*Problem, int) {
	n := 2 + r.Intn(5)
	const M = 1e5
	// Vars: λ_0..λ_{n-1}, s_0..s_{n-1}, μ_0..μ_{n-1}.
	base := lp.NewProblem(3 * n)
	obj := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		obj[i] = 1 + 4*r.Float64()     // reward λ
		obj[n+i] = 0.5 + 2*r.Float64() // reward s
		_ = base.SetBounds(i, 0, math.Inf(1))
		_ = base.SetBounds(n+i, 0, 2+6*r.Float64())
	}
	_ = base.SetObjective(obj, true)
	// Stationarity-style coupling: Σ a_i λ_i = b bounds every λ.
	av := make([]float64, n)
	ai := make([]int, n)
	var amin float64 = math.Inf(1)
	for i := 0; i < n; i++ {
		av[i] = 0.5 + r.Float64()
		ai[i] = i
		amin = math.Min(amin, av[i])
	}
	b := (1 + 3*r.Float64()) * amin
	_, _ = base.AddSparseConstraint(ai, av, lp.EQ, b)
	for i := 0; i < n; i++ {
		// λ_i − M μ_i ≤ 0 and s_i + M μ_i ≤ M.
		_, _ = base.AddSparseConstraint([]int{i, 2*n + i}, []float64{1, -M}, lp.LE, 0)
		_, _ = base.AddSparseConstraint([]int{n + i, 2*n + i}, []float64{1, M}, lp.LE, M)
	}
	p := NewProblem(base)
	for i := 0; i < n; i++ {
		_ = p.SetBinary(2*n + i)
	}
	return p, n
}

// TestPropertyPresolveBigMEquivalence: on random KKT-shaped big-M instances,
// the presolve-tightened solve must reach the same optimum as the untouched
// one, and the caller's problem must come back bit-identical (coefficients,
// RHS, bounds) so row-generation reuse stays sound.
func TestPropertyPresolveBigMEquivalence(t *testing.T) {
	sawTightening := false
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		plain, _ := randKKTBigM(rand.New(rand.NewSource(seed)))
		tight, _ := randKKTBigM(rand.New(rand.NewSource(seed)))
		_ = r
		ps, err := Solve(plain)
		if err != nil {
			return false
		}
		ts, err := SolveWith(tight, Options{Presolve: true, Cuts: true, PseudoCost: true})
		if err != nil {
			return false
		}
		if ps.Status != ts.Status {
			return false
		}
		if ts.Presolve.BigMTightened > 0 {
			sawTightening = true
		}
		if ps.Status != Optimal {
			return true
		}
		if math.Abs(ps.Objective-ts.Objective) > 1e-5*(1+math.Abs(ps.Objective)) {
			return false
		}
		// The tightened problem must be restored: re-solving it plain must
		// reproduce the plain optimum.
		rs, err := Solve(tight)
		if err != nil || rs.Status != Optimal {
			return false
		}
		return math.Abs(rs.Objective-ps.Objective) <= 1e-5*(1+math.Abs(ps.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if !sawTightening {
		t.Fatal("no instance exercised big-M tightening — the presolve pattern matcher is dead")
	}
}

// TestPresolveRestoresProblem checks the restore path directly on one
// instance: row count, coefficients, RHS, and bounds all return to their
// pre-solve values even when presolve patched them and cuts appended rows.
func TestPresolveRestoresProblem(t *testing.T) {
	p, _ := randKKTBigM(rand.New(rand.NewSource(42)))
	type rowSnap struct {
		rel lp.Relation
		rhs float64
		ind []int
		val []float64
	}
	snap := func() (int, []rowSnap, [][2]float64) {
		m := p.Base.NumConstraints()
		rows := make([]rowSnap, m)
		for i := 0; i < m; i++ {
			rel, rhs, _ := p.Base.RowInfo(i)
			rs := rowSnap{rel: rel, rhs: rhs}
			p.Base.VisitRow(i, func(j int, v float64) {
				rs.ind = append(rs.ind, j)
				rs.val = append(rs.val, v)
			})
			rows[i] = rs
		}
		nb := p.Base.NumVars()
		bounds := make([][2]float64, nb)
		for j := 0; j < nb; j++ {
			lo, hi := p.Base.Bounds(j)
			bounds[j] = [2]float64{lo, hi}
		}
		return m, rows, bounds
	}
	m0, rows0, bounds0 := snap()
	if _, err := SolveWith(p, Options{Presolve: true, Cuts: true}); err != nil {
		t.Fatal(err)
	}
	m1, rows1, bounds1 := snap()
	if m0 != m1 {
		t.Fatalf("row count %d → %d: cut rows leaked", m0, m1)
	}
	for i := range rows0 {
		a, b := rows0[i], rows1[i]
		if a.rel != b.rel || a.rhs != b.rhs || len(a.ind) != len(b.ind) {
			t.Fatalf("row %d changed: %+v vs %+v", i, a, b)
		}
		for k := range a.ind {
			if a.ind[k] != b.ind[k] || a.val[k] != b.val[k] {
				t.Fatalf("row %d entry %d changed: (%d,%g) vs (%d,%g)",
					i, k, a.ind[k], a.val[k], b.ind[k], b.val[k])
			}
		}
	}
	for j := range bounds0 {
		if bounds0[j] != bounds1[j] {
			t.Fatalf("bounds of var %d changed: %v vs %v", j, bounds0[j], bounds1[j])
		}
	}
}

// TestFrontierBestFirstOrder pins the heap discipline: best-first pops the
// highest inherited bound first in a maximization, breaking ties by push
// order.
func TestFrontierBestFirstOrder(t *testing.T) {
	f := newFrontier(OrderBestFirst, true)
	f.push(node{score: 1})
	f.push(node{score: 5})
	f.push(node{score: 3})
	f.push(node{score: 5})
	want := []float64{5, 5, 3, 1}
	var prevSeq int
	for i, w := range want {
		n, ok := f.pop()
		if !ok || n.score != w {
			t.Fatalf("pop %d: got %v ok=%v, want %v", i, n.score, ok, w)
		}
		if n.score == 5 {
			if prevSeq != 0 && n.seq < prevSeq {
				t.Fatalf("tie broken against push order: seq %d after %d", n.seq, prevSeq)
			}
			prevSeq = n.seq
		}
	}
	if _, ok := f.pop(); ok {
		t.Fatal("pop on empty frontier returned a node")
	}
}

// TestFrontierHybridPlunges pins the hybrid discipline: the preferred child
// goes to the dive stack and pops before anything on the heap; when the
// stack drains, the search restarts from the best heap bound.
func TestFrontierHybridPlunges(t *testing.T) {
	f := newFrontier(OrderHybrid, true)
	f.push(node{score: 10}) // root
	root, _ := f.pop()
	_ = root
	f.pushChildren(node{score: 4}, node{score: 9})
	// Preferred child (score 4) must pop before the better-bound sibling.
	n, _ := f.pop()
	if n.score != 4 {
		t.Fatalf("hybrid popped %v first, want the plunge child 4", n.score)
	}
	f.pushChildren(node{score: 2}, node{score: 8})
	if n, _ = f.pop(); n.score != 2 {
		t.Fatalf("hybrid popped %v, want plunge continuation 2", n.score)
	}
	// Plunge ends (no children pushed): next pops come best-first.
	if n, _ = f.pop(); n.score != 9 {
		t.Fatalf("hybrid popped %v after plunge, want best sibling 9", n.score)
	}
	if n, _ = f.pop(); n.score != 8 {
		t.Fatalf("hybrid popped %v, want 8", n.score)
	}
}

// TestFrontierBestBound checks the truncation bound over a mixed frontier.
func TestFrontierBestBound(t *testing.T) {
	f := newFrontier(OrderHybrid, true)
	f.pushChildren(node{score: 3}, node{score: 7})
	if b := f.bestBound(); b != 7 {
		t.Fatalf("bestBound = %v, want 7", b)
	}
	fmin := newFrontier(OrderBestFirst, false)
	fmin.push(node{score: 3})
	fmin.push(node{score: -2})
	if b := fmin.bestBound(); b != -2 {
		t.Fatalf("min-sense bestBound = %v, want -2", b)
	}
}

// TestNodeLimitBestBound: a truncated knapsack must report a finite bound at
// least as good as the true optimum and a non-negative gap.
func TestNodeLimitBestBound(t *testing.T) {
	p, want := randKnapsack(rand.New(rand.NewSource(99)))
	sol, err := SolveWith(p, Options{MaxNodes: 2, NodeOrder: OrderBestFirst})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != NodeLimit {
		t.Fatalf("status %v, want node-limit", sol.Status)
	}
	if math.IsInf(sol.BestBound, 0) || sol.BestBound < want-1e-9 {
		t.Fatalf("BestBound %v does not dominate the optimum %v", sol.BestBound, want)
	}
	if sol.Gap < 0 {
		t.Fatalf("negative gap %v", sol.Gap)
	}
}

// TestPseudoCostKnapsack: pseudo-cost branching must preserve exactness.
func TestPseudoCostKnapsack(t *testing.T) {
	base := lp.NewProblem(3)
	_ = base.SetObjective([]float64{10, 13, 7}, true)
	_, _ = base.AddConstraint([]float64{3, 4, 2}, lp.LE, 6)
	p := NewProblem(base)
	for j := 0; j < 3; j++ {
		_ = p.SetBinary(j)
	}
	sol, err := SolveWith(p, Options{PseudoCost: true, NodeOrder: OrderHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-20) > tol {
		t.Fatalf("got %v / %v, want optimal 20", sol.Status, sol.Objective)
	}
}
