package milp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/lp"
)

const tol = 1e-6

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6, binary → a=c=1 (obj 17)
	// beats b+c (20... check: b+c weight 6 ≤ 6, obj 20). So optimum is
	// b=1, c=1 → 20.
	base := lp.NewProblem(3)
	_ = base.SetObjective([]float64{10, 13, 7}, true)
	_, _ = base.AddConstraint([]float64{3, 4, 2}, lp.LE, 6)
	p := NewProblem(base)
	for j := 0; j < 3; j++ {
		if err := p.SetBinary(j); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-20) > tol {
		t.Fatalf("objective = %v, want 20", sol.Objective)
	}
	if math.Abs(sol.X[1]-1) > tol || math.Abs(sol.X[2]-1) > tol || math.Abs(sol.X[0]) > tol {
		t.Fatalf("x = %v, want [0 1 1]", sol.X)
	}
}

func TestBinaryInfeasible(t *testing.T) {
	// a + b = 1.5 with a, b binary has fractional-only solutions... no:
	// 1.5 cannot be hit by {0,1}+{0,1}. Infeasible.
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{1, 1}, true)
	_, _ = base.AddConstraint([]float64{1, 1}, lp.EQ, 1.5)
	p := NewProblem(base)
	_ = p.SetBinary(0)
	_ = p.SetBinary(1)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestComplementarityPair(t *testing.T) {
	// max x + y s.t. x ≤ 3, y ≤ 5, x·y = 0 → pick y=5, x=0.
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{1, 1}, true)
	_ = base.SetBounds(0, 0, 3)
	_ = base.SetBounds(1, 0, 5)
	p := NewProblem(base)
	if err := p.AddComplementarityPair(0, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > tol {
		t.Fatalf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
	if sol.X[0]*sol.X[1] > tol {
		t.Fatalf("complementarity violated: %v", sol.X)
	}
}

func TestComplementarityPairRejectsNegative(t *testing.T) {
	base := lp.NewProblem(2)
	_ = base.SetBounds(0, -1, 1)
	_ = base.SetBounds(1, 0, 1)
	p := NewProblem(base)
	if err := p.AddComplementarityPair(0, 1); !errors.Is(err, ErrBadPair) {
		t.Fatalf("want ErrBadPair, got %v", err)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{1, 1}, true)
	_ = base.SetBounds(0, 0, 7)
	_ = base.SetBounds(1, 0, 9)
	_, _ = base.AddConstraint([]float64{1, 1}, lp.LE, 10)
	p := NewProblem(base)
	_ = p.AddComplementarityPair(0, 1)
	if _, err := Solve(p); err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := base.Bounds(0)
	lo1, hi1 := base.Bounds(1)
	if lo0 != 0 || hi0 != 7 || lo1 != 0 || hi1 != 9 {
		t.Fatalf("bounds not restored: [%v %v] [%v %v]", lo0, hi0, lo1, hi1)
	}
}

func TestNodeLimit(t *testing.T) {
	// A 12-variable knapsack with MaxNodes 1 must truncate.
	n := 12
	base := lp.NewProblem(n)
	c := make([]float64, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = float64(j + 1)
		w[j] = float64(n - j)
	}
	_ = base.SetObjective(c, true)
	_, _ = base.AddConstraint(w, lp.LE, 20)
	p := NewProblem(base)
	for j := 0; j < n; j++ {
		_ = p.SetBinary(j)
	}
	sol, err := SolveWith(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
}

func TestIncumbentSeedPrunes(t *testing.T) {
	// Seeding with the known optimum must prune aggressively but still
	// return a correct (possibly equal) result.
	base := lp.NewProblem(3)
	_ = base.SetObjective([]float64{10, 13, 7}, true)
	_, _ = base.AddConstraint([]float64{3, 4, 2}, lp.LE, 6)
	p := NewProblem(base)
	for j := 0; j < 3; j++ {
		_ = p.SetBinary(j)
	}
	seed := 19.5 // just below the optimum 20
	sol, err := SolveWith(p, Options{Incumbent: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-20) > tol {
		t.Fatalf("got %v / %v, want optimal 20", sol.Status, sol.Objective)
	}
}

func TestMinimizationSense(t *testing.T) {
	// min 3a + 2b s.t. a + b ≥ 1, binary → b=1, obj 2.
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{3, 2}, false)
	_, _ = base.AddConstraint([]float64{1, 1}, lp.GE, 1)
	p := NewProblem(base)
	_ = p.SetBinary(0)
	_ = p.SetBinary(1)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > tol {
		t.Fatalf("got %v / %v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestPureLPPassThrough(t *testing.T) {
	// No binaries, no pairs: B&B reduces to one LP solve.
	base := lp.NewProblem(1)
	_ = base.SetObjective([]float64{1}, true)
	_ = base.SetBounds(0, 0, 4)
	p := NewProblem(base)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Nodes != 1 || math.Abs(sol.Objective-4) > tol {
		t.Fatalf("got %+v", sol)
	}
}

func TestUnboundedRoot(t *testing.T) {
	base := lp.NewProblem(1)
	_ = base.SetObjective([]float64{1}, true)
	_ = base.SetBounds(0, 0, math.Inf(1))
	p := NewProblem(base)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, NodeLimit, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

// bruteKnapsack enumerates all binary points for the reference optimum.
func bruteKnapsack(c, w []float64, cap float64) float64 {
	n := len(c)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var obj, wt float64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				obj += c[j]
				wt += w[j]
			}
		}
		if wt <= cap && obj > best {
			best = obj
		}
	}
	return best
}

// Property: B&B matches brute-force enumeration on random small knapsacks.
func TestPropertyKnapsackAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		c := make([]float64, n)
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = 1 + 9*r.Float64()
			w[j] = 1 + 9*r.Float64()
		}
		cap := 0.4 * float64(n) * 5
		base := lp.NewProblem(n)
		_ = base.SetObjective(c, true)
		_, _ = base.AddConstraint(w, lp.LE, cap)
		p := NewProblem(base)
		for j := 0; j < n; j++ {
			_ = p.SetBinary(j)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		want := bruteKnapsack(c, w, cap)
		return math.Abs(sol.Objective-want) < 1e-5*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: complementarity branching yields points with x_a·x_b ≈ 0 and an
// objective no worse than either single-sided restriction.
func TestPropertyComplementarity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// max c1 x + c2 y s.t. x + y ≤ k, x·y = 0 → optimum is
		// max(c1, c2)·min(k, ub) when coefficients positive.
		c1, c2 := 1+4*r.Float64(), 1+4*r.Float64()
		k := 1 + 9*r.Float64()
		base := lp.NewProblem(2)
		_ = base.SetObjective([]float64{c1, c2}, true)
		_ = base.SetBounds(0, 0, 8)
		_ = base.SetBounds(1, 0, 8)
		_, _ = base.AddConstraint([]float64{1, 1}, lp.LE, k)
		p := NewProblem(base)
		_ = p.AddComplementarityPair(0, 1)
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		if sol.X[0]*sol.X[1] > 1e-5 {
			return false
		}
		want := math.Max(c1, c2) * math.Min(k, 8)
		return math.Abs(sol.Objective-want) < 1e-5*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
