package milp

import "math"

// NodeOrder selects the branch-and-bound node-selection discipline.
type NodeOrder int

// Node-selection strategies.
const (
	// OrderDFS pops the most recently pushed node (default; minimal
	// frontier memory and maximal warm-basis locality).
	OrderDFS NodeOrder = iota
	// OrderBestFirst pops the open node with the best inherited relaxation
	// bound, closing the proven gap as fast as possible at the price of
	// basis locality.
	OrderBestFirst
	// OrderHybrid plunges depth-first along the preferred child until the
	// dive ends (leaf, prune, or infeasibility), then restarts from the
	// best-bound open node — incumbents early, bound progress afterwards.
	OrderHybrid
)

func (o NodeOrder) String() string {
	switch o {
	case OrderDFS:
		return "dfs"
	case OrderBestFirst:
		return "best-first"
	case OrderHybrid:
		return "hybrid"
	default:
		return "NodeOrder(?)"
	}
}

// frontier holds the open nodes of a search under one NodeOrder. DFS keeps
// everything on a stack; best-first keeps everything on a bound-ordered
// heap; hybrid keeps the current dive child on the stack and parks every
// sibling on the heap. Heap ties break on push sequence (earlier first), so
// pop order is a pure function of the push history.
type frontier struct {
	order    NodeOrder
	maximize bool
	seq      int
	stack    []node
	heap     []node
}

func newFrontier(order NodeOrder, maximize bool) *frontier {
	return &frontier{order: order, maximize: maximize}
}

func (f *frontier) len() int { return len(f.stack) + len(f.heap) }

// better reports whether bound a should be explored before bound b.
func (f *frontier) better(a, b float64) bool {
	if f.maximize {
		return a > b
	}
	return a < b
}

// before is the heap order: better bound first, earlier push on ties.
func (f *frontier) before(a, b *node) bool {
	if a.score != b.score {
		return f.better(a.score, b.score)
	}
	return a.seq < b.seq
}

// push adds one node (the root, or a generic reinsertion).
func (f *frontier) push(n node) {
	n.seq = f.seq
	f.seq++
	if f.order == OrderBestFirst {
		f.heapPush(n)
		return
	}
	f.stack = append(f.stack, n)
}

// pushChildren adds a branch's two children. preferred is the child DFS
// would explore first (rounding toward the relaxation point); under
// best-first both children queue on bound, and under hybrid the preferred
// child continues the plunge while its sibling parks on the heap.
func (f *frontier) pushChildren(preferred, sibling node) {
	switch f.order {
	case OrderBestFirst:
		f.push(preferred)
		f.push(sibling)
	case OrderHybrid:
		sibling.seq = f.seq
		f.seq++
		f.heapPush(sibling) // parked for the best-first restart
		preferred.seq = f.seq
		f.seq++
		f.stack = append(f.stack, preferred) // continues the plunge
	default: // OrderDFS: LIFO, preferred on top
		f.push(sibling)
		f.push(preferred)
	}
}

// pop removes the next node to explore.
func (f *frontier) pop() (node, bool) {
	if f.order != OrderBestFirst && len(f.stack) > 0 {
		n := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return n, true
	}
	if len(f.heap) > 0 {
		return f.heapPop(), true
	}
	return node{}, false
}

// bestBound returns the best inherited relaxation bound among all open
// nodes — the proven bound on everything not yet explored. Returns the
// sense's worst value when the frontier is empty.
func (f *frontier) bestBound() float64 {
	best := math.Inf(-1)
	if !f.maximize {
		best = math.Inf(1)
	}
	have := false
	for i := range f.stack {
		if !have || f.better(f.stack[i].score, best) {
			best, have = f.stack[i].score, true
		}
	}
	if len(f.heap) > 0 && (!have || f.better(f.heap[0].score, best)) {
		best = f.heap[0].score
	}
	return best
}

func (f *frontier) heapPush(n node) {
	f.heap = append(f.heap, n)
	i := len(f.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.before(&f.heap[i], &f.heap[parent]) {
			break
		}
		f.heap[i], f.heap[parent] = f.heap[parent], f.heap[i]
		i = parent
	}
}

func (f *frontier) heapPop() node {
	top := f.heap[0]
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && f.before(&f.heap[l], &f.heap[best]) {
			best = l
		}
		if r < last && f.before(&f.heap[r], &f.heap[best]) {
			best = r
		}
		if best == i {
			break
		}
		f.heap[i], f.heap[best] = f.heap[best], f.heap[i]
		i = best
	}
	return top
}

// pseudoCosts tracks, per branching entity and branch side, the average
// relaxation-bound degradation observed when branching that way. Entities
// are binaries first (index into Problem.binaries), then complementarity
// pairs (offset by the binary count). Pair estimates are seeded from the
// root relaxation's complementarity-violation magnitudes, so the first
// branching decisions already prefer pairs whose violation is structurally
// large — the signal the seeding heuristic in the attack generator exploits.
type pseudoCosts struct {
	downSum, upSum []float64
	downN, upN     []int
}

func newPseudoCosts(entities int) *pseudoCosts {
	return &pseudoCosts{
		downSum: make([]float64, entities),
		upSum:   make([]float64, entities),
		downN:   make([]int, entities),
		upN:     make([]int, entities),
	}
}

// seed installs an initial one-observation estimate on both sides of an
// entity, unless real observations exist.
func (pc *pseudoCosts) seed(e int, degradation float64) {
	if pc.downN[e] == 0 {
		pc.downSum[e], pc.downN[e] = degradation, 1
	}
	if pc.upN[e] == 0 {
		pc.upSum[e], pc.upN[e] = degradation, 1
	}
}

// observe records a realized bound degradation for one branch side.
func (pc *pseudoCosts) observe(e int, up bool, degradation float64) {
	if up {
		pc.upSum[e] += degradation
		pc.upN[e]++
	} else {
		pc.downSum[e] += degradation
		pc.downN[e]++
	}
}

// score combines a fractionality/violation magnitude with the entity's
// learned degradation averages; larger means branch here.
func (pc *pseudoCosts) score(e int, viol float64) float64 {
	avg := func(sum float64, n int) float64 {
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	return viol * (1 + avg(pc.downSum[e], pc.downN[e]) + avg(pc.upSum[e], pc.upN[e]))
}
