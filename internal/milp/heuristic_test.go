package milp

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/lp"
)

// TestHeuristicSeedsIncumbent: a heuristic that returns a known feasible
// point must become the incumbent when the tree search is truncated
// immediately.
func TestHeuristicSeedsIncumbent(t *testing.T) {
	// Root relaxation is fractional (a=1, b=0.5), so MaxNodes=1 truncates
	// before any integral leaf is reached.
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{3, 2}, true)
	_, _ = base.AddConstraint([]float64{2, 2}, lp.LE, 3)
	p := NewProblem(base)
	_ = p.SetBinary(0)
	_ = p.SetBinary(1)
	called := 0
	sol, err := SolveWith(p, Options{
		MaxNodes: 1,
		Heuristic: func(x []float64) (float64, []float64, bool) {
			called++
			// Offer the feasible rounding (1, 0) with objective 3.
			return 3, []float64{1, 0}, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Fatal("heuristic never invoked")
	}
	if sol.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", sol.Status)
	}
	if sol.X == nil || math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("incumbent not adopted: %+v", sol)
	}
	if sol.X[0] != 1 || sol.X[1] != 0 {
		t.Fatalf("incumbent point = %v", sol.X)
	}
}

// TestHeuristicDoesNotDegradeOptimum: a weak heuristic must not displace
// the true optimum found by the search.
func TestHeuristicDoesNotDegradeOptimum(t *testing.T) {
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{3, 2}, true)
	_, _ = base.AddConstraint([]float64{1, 1}, lp.LE, 2)
	p := NewProblem(base)
	_ = p.SetBinary(0)
	_ = p.SetBinary(1)
	sol, err := SolveWith(p, Options{
		Heuristic: func(x []float64) (float64, []float64, bool) {
			return 2, []float64{0, 1}, true // feasible but suboptimal
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("got %v / %v, want optimal 5", sol.Status, sol.Objective)
	}
}

// TestHeuristicDeclines: a heuristic returning ok=false leaves the search
// unchanged.
func TestHeuristicDeclines(t *testing.T) {
	base := lp.NewProblem(1)
	_ = base.SetObjective([]float64{1}, true)
	p := NewProblem(base)
	_ = p.SetBinary(0)
	sol, err := SolveWith(p, Options{
		Heuristic: func(x []float64) (float64, []float64, bool) { return 0, nil, false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-9 {
		t.Fatalf("got %v / %v", sol.Status, sol.Objective)
	}
}

// TestMinimizationHeuristic: incumbent comparison respects the sense.
func TestMinimizationHeuristic(t *testing.T) {
	base := lp.NewProblem(2)
	_ = base.SetObjective([]float64{3, 2}, false)
	_, _ = base.AddConstraint([]float64{1, 1}, lp.GE, 1)
	p := NewProblem(base)
	_ = p.SetBinary(0)
	_ = p.SetBinary(1)
	sol, err := SolveWith(p, Options{
		Heuristic: func(x []float64) (float64, []float64, bool) {
			return 3, []float64{1, 0}, true // worse than the optimum 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("got %v / %v, want optimal 2", sol.Status, sol.Objective)
	}
}
