// Package contingency implements N−1 line-outage screening via line outage
// distribution factors (LODFs). The paper argues that dispatching against
// manipulated ratings "significantly increases the possibility of cascading
// failures and the risk of subsequent emergency actions" (Section I) and
// cites multiple-element contingency screening as the operator's standard
// risk lens (Section VIII); this package quantifies that claim: it measures
// how many single-line outages push some other line past its true rating,
// before and after an attack.
package contingency

import (
	"errors"
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/par"
)

// ErrIslanding is returned when outaging a line would disconnect the
// network (LODF undefined).
var ErrIslanding = errors.New("contingency: outage islands the network")

// LODF holds the line-outage distribution factors of a network: entry
// (l, k) is the fraction of line k's pre-outage flow that shifts onto line
// l when k trips.
type LODF struct {
	net    *grid.Network
	factor *mat.Matrix // lines × lines; diagonal set to -1
	// islanding[k] marks outages that would split the network.
	islanding []bool
}

// ComputeLODF builds the factor matrix from the network's PTDF.
func ComputeLODF(n *grid.Network) (*LODF, error) {
	ptdf, err := dcflow.PTDF(n)
	if err != nil {
		return nil, fmt.Errorf("contingency: %w", err)
	}
	return ComputeLODFFromPTDF(n, ptdf)
}

// ComputeLODFFromPTDF builds the factor matrix from a PTDF the caller
// already holds (lines×buses, as returned by dcflow.PTDF), so callers that
// have paid for the shift factors — the scenario-sweep engine, a dispatch
// model — do not refactor the B matrix a second time. Each line's endpoint
// bus indices are resolved once up front rather than inside the O(lines²)
// factor loop.
func ComputeLODFFromPTDF(n *grid.Network, ptdf *mat.Matrix) (*LODF, error) {
	nl := len(n.Lines)
	if ptdf.Rows() != nl || ptdf.Cols() != len(n.Buses) {
		return nil, fmt.Errorf("contingency: PTDF is %dx%d, want %dx%d",
			ptdf.Rows(), ptdf.Cols(), nl, len(n.Buses))
	}
	from := make([]int, nl)
	to := make([]int, nl)
	for li := range n.Lines {
		fi, err := n.BusIndex(n.Lines[li].From)
		if err != nil {
			return nil, fmt.Errorf("contingency: %w", err)
		}
		ti, err := n.BusIndex(n.Lines[li].To)
		if err != nil {
			return nil, fmt.Errorf("contingency: %w", err)
		}
		from[li], to[li] = fi, ti
	}
	// ptdfLine(l, k): flow change on l per MW injected at k's From bus
	// and withdrawn at k's To bus.
	ptdfLine := func(l, k int) float64 {
		return ptdf.At(l, from[k]) - ptdf.At(l, to[k])
	}
	out := &LODF{
		net:       n,
		factor:    mat.New(nl, nl),
		islanding: make([]bool, nl),
	}
	for k := 0; k < nl; k++ {
		denom := 1 - ptdfLine(k, k)
		if math.Abs(denom) < 1e-8 {
			// A self-PTDF of 1 means the line is a cut edge: its
			// outage islands the network.
			out.islanding[k] = true
			continue
		}
		for l := 0; l < nl; l++ {
			if l == k {
				out.factor.Set(l, k, -1) // the tripped line carries nothing
				continue
			}
			out.factor.Set(l, k, ptdfLine(l, k)/denom)
		}
	}
	return out, nil
}

// Islanding reports whether outaging line k would split the network.
func (d *LODF) Islanding(k int) bool { return d.islanding[k] }

// Factor returns the LODF entry (l, k).
func (d *LODF) Factor(l, k int) float64 { return d.factor.At(l, k) }

// FactorRow returns monitored line l's distribution-factor row backed by
// the LODF storage (index k = outage). Batch screens iterate rows
// contiguously instead of striding columns; callers must not mutate it.
func (d *LODF) FactorRow(l int) []float64 { return d.factor.RawRow(l) }

// PostOutageFlows returns the flows after line k trips, given the
// pre-outage flows: f'_l = f_l + LODF_{l,k}·f_k.
func (d *LODF) PostOutageFlows(preFlows []float64, k int) ([]float64, error) {
	if len(preFlows) != len(d.net.Lines) {
		return nil, fmt.Errorf("contingency: %d flows for %d lines", len(preFlows), len(d.net.Lines))
	}
	if k < 0 || k >= len(d.net.Lines) {
		return nil, fmt.Errorf("contingency: line index %d out of range", k)
	}
	if d.islanding[k] {
		return nil, fmt.Errorf("line %d: %w", k, ErrIslanding)
	}
	out := make([]float64, len(preFlows))
	fk := preFlows[k]
	for l := range preFlows {
		out[l] = preFlows[l] + d.factor.At(l, k)*fk
	}
	out[k] = 0
	return out, nil
}

// Overload is one post-contingency limit violation.
type Overload struct {
	// Outage is the tripped line; Line is the line that overloads.
	Outage, Line int
	// FlowMW and RatingMW quantify the violation.
	FlowMW, RatingMW float64
	// Pct is 100·(|flow|/rating − 1).
	Pct float64
}

// Report summarizes an N−1 screen.
type Report struct {
	// Overloads lists every (outage, overloaded line) pair.
	Overloads []Overload
	// InsecureOutages is the number of distinct outages causing at least
	// one overload — the operator's headline N−1 security metric.
	InsecureOutages int
	// WorstPct is the largest post-contingency percentage overload.
	WorstPct float64
	// IslandingOutages counts outages skipped because they island the
	// network.
	IslandingOutages int
}

// Screen runs the full N−1 sweep: for every non-islanding line outage,
// compute post-outage flows from the given operating point and compare
// them against the ratings (entries ≤ 0 unlimited).
func Screen(d *LODF, preFlows, ratings []float64) (*Report, error) {
	return ScreenParallel(d, preFlows, ratings, 1)
}

// outageResult is one outage's contribution to a Report.
type outageResult struct {
	overloads []Overload
	worstPct  float64
	islanding bool
	err       error
}

// ScreenParallel is Screen with the per-outage loop spread over a worker
// pool (workers <= 0 means one per CPU). Outages are independent reads of
// the LODF matrix; per-outage results merge in outage order, so the report
// is identical to the sequential sweep for any worker count.
func ScreenParallel(d *LODF, preFlows, ratings []float64, workers int) (*Report, error) {
	n := d.net
	if len(ratings) != len(n.Lines) {
		return nil, fmt.Errorf("contingency: %d ratings for %d lines", len(ratings), len(n.Lines))
	}
	results := make([]outageResult, len(n.Lines))
	par.Each(workers, len(n.Lines), func(k int) {
		r := &results[k]
		if d.islanding[k] {
			r.islanding = true
			return
		}
		post, err := d.PostOutageFlows(preFlows, k)
		if err != nil {
			r.err = err
			return
		}
		for l := range n.Lines {
			if l == k {
				continue
			}
			u := ratings[l]
			if u <= 0 {
				continue
			}
			if a := math.Abs(post[l]); a > u*(1+1e-9) {
				pct := 100 * (a/u - 1)
				r.overloads = append(r.overloads, Overload{
					Outage: k, Line: l, FlowMW: post[l], RatingMW: u, Pct: pct,
				})
				if pct > r.worstPct {
					r.worstPct = pct
				}
			}
		}
	})
	rep := &Report{}
	for k := range results {
		r := &results[k]
		if r.err != nil {
			return nil, r.err
		}
		if r.islanding {
			rep.IslandingOutages++
			continue
		}
		if len(r.overloads) > 0 {
			rep.Overloads = append(rep.Overloads, r.overloads...)
			rep.InsecureOutages++
			if r.worstPct > rep.WorstPct {
				rep.WorstPct = r.worstPct
			}
		}
	}
	return rep, nil
}
