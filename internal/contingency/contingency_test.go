package contingency_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/contingency"
	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
)

func lodf3(t *testing.T) (*grid.Network, *contingency.LODF) {
	t.Helper()
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := contingency.ComputeLODF(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, d
}

func TestLODFTriangle(t *testing.T) {
	// In the symmetric 3-bus triangle, tripping one line shifts 100% of
	// its flow onto the two-hop parallel path.
	n, d := lodf3(t)
	inj, _ := dcflow.InjectionsFromDispatch(n, []float64{120, 180})
	res, err := dcflow.Solve(n, inj)
	if err != nil {
		t.Fatal(err)
	}
	post, err := d.PostOutageFlows(res.Flows, 1) // trip line {1,3}
	if err != nil {
		t.Fatal(err)
	}
	// All 300 MW now reach bus 3 over line {2,3}; line {1,2} carries
	// generator 1's full output toward bus 2.
	if math.Abs(post[2]-300) > 1e-6 {
		t.Fatalf("post-outage f23 = %v, want 300", post[2])
	}
	if math.Abs(post[0]-120) > 1e-6 {
		t.Fatalf("post-outage f12 = %v, want 120", post[0])
	}
	if post[1] != 0 {
		t.Fatalf("tripped line carries %v", post[1])
	}
}

// TestPostOutageConservation: post-outage flows still satisfy nodal
// balance on the reduced network.
func TestPostOutageConservation(t *testing.T) {
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	d, err := contingency.ComputeLODF(n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := dcflow.InjectionsFromDispatch(n, res.P)
	slack, _ := n.SlackIndex()
	for _, k := range []int{0, 7, 40} {
		if d.Islanding(k) {
			continue
		}
		post, err := d.PostOutageFlows(res.Flows, k)
		if err != nil {
			t.Fatal(err)
		}
		net := make([]float64, len(n.Buses))
		for li := range n.Lines {
			if li == k {
				continue
			}
			fi, _ := n.BusIndex(n.Lines[li].From)
			ti, _ := n.BusIndex(n.Lines[li].To)
			net[fi] += post[li]
			net[ti] -= post[li]
		}
		for bi := range n.Buses {
			if bi == slack {
				continue
			}
			if math.Abs(net[bi]-inj[bi]) > 1e-5 {
				t.Fatalf("outage %d: bus %d imbalance %v", k, bi, net[bi]-inj[bi])
			}
		}
	}
}

// TestLODFMatchesResolve: the factor-based post-outage flows agree with
// solving the reduced network directly.
func TestLODFMatchesResolve(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	d, err := contingency.ComputeLODF(n)
	if err != nil {
		t.Fatal(err)
	}
	dispatchP := []float64{67, 163, 85}
	inj, _ := dcflow.InjectionsFromDispatch(n, dispatchP)
	pre, err := dcflow.Solve(n, inj)
	if err != nil {
		t.Fatal(err)
	}
	for k := range n.Lines {
		if d.Islanding(k) {
			continue
		}
		post, err := d.PostOutageFlows(pre.Flows, k)
		if err != nil {
			t.Fatal(err)
		}
		// Direct resolve on the reduced network.
		reduced := n.Clone()
		reduced.Lines = append(reduced.Lines[:k:k], reduced.Lines[k+1:]...)
		if err := reduced.Validate(); err != nil {
			continue // outage disconnects: skip (Islanding should catch)
		}
		injR := make([]float64, len(inj))
		copy(injR, inj)
		resR, err := dcflow.Solve(reduced, injR)
		if err != nil {
			t.Fatal(err)
		}
		ri := 0
		for li := range n.Lines {
			if li == k {
				continue
			}
			if math.Abs(post[li]-resR.Flows[ri]) > 1e-6*(1+math.Abs(resR.Flows[ri])) {
				t.Fatalf("outage %d line %d: LODF %v vs resolve %v", k, li, post[li], resR.Flows[ri])
			}
			ri++
		}
	}
}

func TestIslandingDetected(t *testing.T) {
	// A radial spur must be flagged as islanding.
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	n.Buses = append(n.Buses, grid.Bus{ID: 4, Type: grid.PQ, Pd: 10, VnomKV: 230, Vmin: 0.9, Vmax: 1.1})
	n.Lines = append(n.Lines, grid.Line{ID: 4, From: 3, To: 4, X: 0.05, RateMVA: 100})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := contingency.ComputeLODF(n)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Islanding(3) {
		t.Fatal("radial line outage not flagged as islanding")
	}
	if _, err := d.PostOutageFlows([]float64{0, 0, 0, 10}, 3); !errors.Is(err, contingency.ErrIslanding) {
		t.Fatalf("want ErrIslanding, got %v", err)
	}
}

func TestScreenErrorsAndBounds(t *testing.T) {
	n, d := lodf3(t)
	if _, err := contingency.Screen(d, []float64{1, 2, 3}, []float64{1}); err == nil {
		t.Fatal("want ratings length error")
	}
	if _, err := d.PostOutageFlows([]float64{1}, 0); err == nil {
		t.Fatal("want flows length error")
	}
	if _, err := d.PostOutageFlows([]float64{1, 2, 3}, 9); err == nil {
		t.Fatal("want index error")
	}
	_ = n
}

// TestAttackDegradesN1Security is the paper's cascading-risk claim made
// quantitative: the attacked operating point fails more N−1 contingencies
// than the honest one.
func TestAttackDegradesN1Security(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	d, err := contingency.ComputeLODF(n)
	if err != nil {
		t.Fatal(err)
	}
	// Table I row 3: true ratings (160, 150), attack (100, 200).
	trueRatings := []float64{160, 160, 150}

	honest, err := m.Solve(trueRatings)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := m.Solve([]float64{160, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	repHonest, err := contingency.Screen(d, honest.Flows, trueRatings)
	if err != nil {
		t.Fatal(err)
	}
	repAttacked, err := contingency.Screen(d, attacked.Flows, trueRatings)
	if err != nil {
		t.Fatal(err)
	}
	// The attacked point fails strictly more single contingencies: the
	// skewed dispatch (all generation at the cheap unit) removes the
	// redundancy the honest split dispatch provides.
	if repAttacked.InsecureOutages <= repHonest.InsecureOutages {
		t.Fatalf("attack did not worsen N−1 exposure: %d vs %d insecure outages",
			repAttacked.InsecureOutages, repHonest.InsecureOutages)
	}
}

// Property: LODF columns are dimensionless redistribution factors; for
// random dispatches the post-outage flow of the tripped line is always
// zero and total bus-3 delivery is conserved on the triangle.
func TestPropertyLODFRedistribution(t *testing.T) {
	n, d := lodf3(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1 := 300 * r.Float64()
		inj, _ := dcflow.InjectionsFromDispatch(n, []float64{p1, 300 - p1})
		res, err := dcflow.Solve(n, inj)
		if err != nil {
			return false
		}
		for k := 0; k < 3; k++ {
			post, err := d.PostOutageFlows(res.Flows, k)
			if err != nil {
				return false
			}
			if post[k] != 0 {
				return false
			}
			// Delivery into bus 3 (lines 1: 1→3 and 2: 2→3) must stay
			// 300 MW whenever neither delivery line is the outage...
			// and when one is, the other carries everything.
			delivered := post[1] + post[2]
			if math.Abs(delivered-300) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScreenParallelMatchesSequential pins the parallel sweep's contract:
// for any worker count the report is identical to the sequential one —
// same overloads in the same (outage-major) order, same aggregates.
func TestScreenParallelMatchesSequential(t *testing.T) {
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	// Screen a deliberately stressed point: dispatch against slightly
	// derated lines, then screen against the true ratings to surface
	// post-contingency overloads.
	ratings := n.Ratings(nil)
	res, err := m.Solve(ratings)
	if err != nil {
		t.Fatal(err)
	}
	d, err := contingency.ComputeLODF(n)
	if err != nil {
		t.Fatal(err)
	}
	tight := make([]float64, len(ratings))
	for i, u := range ratings {
		tight[i] = u * 0.9
	}
	want, err := contingency.Screen(d, res.Flows, tight)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		got, err := contingency.ScreenParallel(d, res.Flows, tight, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.InsecureOutages != want.InsecureOutages ||
			got.WorstPct != want.WorstPct ||
			got.IslandingOutages != want.IslandingOutages {
			t.Fatalf("workers=%d: aggregates (%d, %v, %d) != sequential (%d, %v, %d)",
				w, got.InsecureOutages, got.WorstPct, got.IslandingOutages,
				want.InsecureOutages, want.WorstPct, want.IslandingOutages)
		}
		if len(got.Overloads) != len(want.Overloads) {
			t.Fatalf("workers=%d: %d overloads, want %d", w, len(got.Overloads), len(want.Overloads))
		}
		for i := range want.Overloads {
			if got.Overloads[i] != want.Overloads[i] {
				t.Fatalf("workers=%d: overload %d = %+v, want %+v", w, i, got.Overloads[i], want.Overloads[i])
			}
		}
	}
}
