package stateest_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/stateest"
)

// measureSystem telemeters every line flow and bus injection of an
// operating point, with optional Gaussian noise.
func measureSystem(t testing.TB, n *grid.Network, dispatchP []float64, sigma float64, seed int64) *stateest.Estimator {
	t.Helper()
	est, err := stateest.NewEstimator(n)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := dcflow.InjectionsFromDispatch(n, dispatchP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dcflow.Solve(n, inj)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	noise := func() float64 {
		if sigma == 0 {
			return 0
		}
		return sigma * rng.NormFloat64()
	}
	slack, _ := n.SlackIndex()
	for li := range n.Lines {
		if err := est.Add(stateest.Measurement{
			Kind: stateest.MeasFlow, Index: li,
			ValueMW: res.Flows[li] + noise(), SigmaMW: math.Max(sigma, 0.5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for bi := range n.Buses {
		v := inj[bi]
		if bi == slack {
			v = res.SlackInjection
		}
		if err := est.Add(stateest.Measurement{
			Kind: stateest.MeasInjection, Index: bi,
			ValueMW: v + noise(), SigmaMW: math.Max(sigma, 0.5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return est
}

func TestPerfectMeasurementsRecoverState(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	est := measureSystem(t, n, []float64{67, 163, 85}, 0, 1)
	sol, err := est.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.J > 1e-12 {
		t.Fatalf("perfect measurements must have zero residual, J = %v", sol.J)
	}
	inj, _ := dcflow.InjectionsFromDispatch(n, []float64{67, 163, 85})
	truth, _ := dcflow.Solve(n, inj)
	for li := range n.Lines {
		if math.Abs(sol.Flows[li]-truth.Flows[li]) > 1e-8 {
			t.Fatalf("flow[%d] = %v, want %v", li, sol.Flows[li], truth.Flows[li])
		}
	}
}

func TestNoisyMeasurementsPassChiSquare(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	est := measureSystem(t, n, []float64{67, 163, 85}, 1.0, 7)
	sol, err := est.Solve()
	if err != nil {
		t.Fatal(err)
	}
	suspected, _ := sol.BadData(0.99)
	if suspected {
		t.Fatalf("clean noisy measurements flagged: J = %v, dof = %d", sol.J, sol.DOF)
	}
}

func TestFDIDetected(t *testing.T) {
	// A crude single-measurement FDI attack is caught by the chi-square
	// test, and the largest normalized residual points at it — the
	// classical defense the paper's attack sidesteps entirely.
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	est, err := stateest.NewEstimator(n)
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := dcflow.InjectionsFromDispatch(n, []float64{67, 163, 85})
	res, _ := dcflow.Solve(n, inj)
	corrupted := 3
	for li := range n.Lines {
		v := res.Flows[li]
		if li == corrupted {
			v += 60 // the injected lie
		}
		_ = est.Add(stateest.Measurement{Kind: stateest.MeasFlow, Index: li, ValueMW: v, SigmaMW: 1})
	}
	slack, _ := n.SlackIndex()
	for bi := range n.Buses {
		v := inj[bi]
		if bi == slack {
			v = res.SlackInjection
		}
		_ = est.Add(stateest.Measurement{Kind: stateest.MeasInjection, Index: bi, ValueMW: v, SigmaMW: 1})
	}
	sol, err := est.Solve()
	if err != nil {
		t.Fatal(err)
	}
	suspected, worst := sol.BadData(0.99)
	if !suspected {
		t.Fatalf("FDI not detected: J = %v vs crit %v", sol.J, stateest.ChiSquareCritical(sol.DOF, 0.99))
	}
	if worst != corrupted {
		t.Fatalf("largest residual at %d, want %d", worst, corrupted)
	}
}

// TestRatingAttackInvisibleToStateEstimation is the paper's core contrast:
// after the memory attack, the *dispatch* is unsafe, but every measurement
// is consistent with the true physical state — state estimation and bad
// data detection see a perfectly healthy system.
func TestRatingAttackInvisibleToStateEstimation(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	// The Table I row 1 attack: dispatch under manipulated ratings.
	attacked, err := m.Solve([]float64{160, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	// The physical system realizes this dispatch; line {2,3} carries
	// 200 MW against a true 120 MW rating — an unsafe state.
	if math.Abs(attacked.Flows[2]-200) > 1e-6 {
		t.Fatalf("setup: f23 = %v", attacked.Flows[2])
	}
	// SCADA measures the real system faithfully (small sensor noise).
	est := measureSystem(t, n, attacked.P, 0.5, 3)
	sol, err := est.Solve()
	if err != nil {
		t.Fatal(err)
	}
	suspected, _ := sol.BadData(0.99)
	if suspected {
		t.Fatalf("state estimation flagged the rating attack (J = %v) — it should not", sol.J)
	}
	// The estimator even confirms the overload is real — the data is
	// consistent; the *parameters* were the lie.
	if sol.Flows[2] < 190 {
		t.Fatalf("estimated f23 = %v, want ≈ 200", sol.Flows[2])
	}
}

func TestUnobservable(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	est, err := stateest.NewEstimator(n)
	if err != nil {
		t.Fatal(err)
	}
	// A single measurement cannot determine 8 angles.
	_ = est.Add(stateest.Measurement{Kind: stateest.MeasFlow, Index: 0, ValueMW: 10, SigmaMW: 1})
	if _, err := est.Solve(); !errors.Is(err, stateest.ErrUnobservable) {
		t.Fatalf("want ErrUnobservable, got %v", err)
	}
}

func TestAddValidation(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	est, err := stateest.NewEstimator(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Add(stateest.Measurement{Kind: stateest.MeasFlow, Index: 99, ValueMW: 1, SigmaMW: 1}); err == nil {
		t.Fatal("want line range error")
	}
	if err := est.Add(stateest.Measurement{Kind: stateest.MeasInjection, Index: 99, ValueMW: 1, SigmaMW: 1}); err == nil {
		t.Fatal("want bus range error")
	}
	if err := est.Add(stateest.Measurement{Kind: stateest.MeasFlow, Index: 0, ValueMW: 1, SigmaMW: 0}); err == nil {
		t.Fatal("want sigma error")
	}
	if err := est.Add(stateest.Measurement{Kind: stateest.MeasKind(9), Index: 0, ValueMW: 1, SigmaMW: 1}); err == nil {
		t.Fatal("want kind error")
	}
	_ = est.Add(stateest.Measurement{Kind: stateest.MeasFlow, Index: 0, ValueMW: 1, SigmaMW: 1})
	if est.Count() != 1 {
		t.Fatal("Count")
	}
	est.Reset()
	if est.Count() != 0 {
		t.Fatal("Reset")
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Spot-check against table values: χ²(10, 0.99) ≈ 23.2,
	// χ²(1, 0.95) ≈ 3.84.
	if v := stateest.ChiSquareCritical(10, 0.99); math.Abs(v-23.2) > 0.8 {
		t.Fatalf("χ²(10, .99) ≈ %v, want ≈ 23.2", v)
	}
	if v := stateest.ChiSquareCritical(1, 0.95); math.Abs(v-3.84) > 0.4 {
		t.Fatalf("χ²(1, .95) ≈ %v, want ≈ 3.84", v)
	}
	if stateest.ChiSquareCritical(0, 0.99) != 0 {
		t.Fatal("dof 0")
	}
}

func TestMeasKindString(t *testing.T) {
	for _, k := range []stateest.MeasKind{stateest.MeasFlow, stateest.MeasInjection, stateest.MeasKind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

// Property: for random dispatches with full telemetry and no noise, the
// estimator reproduces the exact flows on case9.
func TestPropertyExactRecovery(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := []float64{0, 80 + 150*r.Float64(), 50 + 150*r.Float64()}
		inj, err := dcflow.InjectionsFromDispatch(n, d)
		if err != nil {
			return false
		}
		truth, err := dcflow.Solve(n, inj)
		if err != nil {
			return false
		}
		est, err := stateest.NewEstimator(n)
		if err != nil {
			return false
		}
		for li := range n.Lines {
			_ = est.Add(stateest.Measurement{
				Kind: stateest.MeasFlow, Index: li, ValueMW: truth.Flows[li], SigmaMW: 1,
			})
		}
		sol, err := est.Solve()
		if err != nil {
			return false
		}
		for li := range n.Lines {
			if math.Abs(sol.Flows[li]-truth.Flows[li]) > 1e-7*(1+math.Abs(truth.Flows[li])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
