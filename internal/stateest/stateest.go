// Package stateest implements DC weighted-least-squares state estimation
// with chi-square and largest-normalized-residual bad-data detection — the
// defense layer that false-data-injection (FDI) attacks must evade. The
// paper positions its attack against exactly this backdrop (Sections I and
// VIII): FDI attacks corrupt *measurements* and must beat these detectors,
// whereas the memory attack corrupts *parameters* (line ratings) inside the
// EMS. The measurements then remain perfectly consistent with the physical
// state, so state estimation sees nothing wrong even while the dispatch it
// supports drives the system into an unsafe region. The tests make both
// halves of that contrast concrete.
package stateest

import (
	"errors"
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/mat"
)

// MeasKind is the type of one telemetered quantity.
type MeasKind int

// Measurement kinds.
const (
	// MeasFlow is a line real-power flow (From→To, MW).
	MeasFlow MeasKind = iota + 1
	// MeasInjection is a bus net real-power injection (MW).
	MeasInjection
)

func (k MeasKind) String() string {
	switch k {
	case MeasFlow:
		return "flow"
	case MeasInjection:
		return "injection"
	default:
		return fmt.Sprintf("MeasKind(%d)", int(k))
	}
}

// Measurement is one telemetered value.
type Measurement struct {
	// Kind selects the measurement function.
	Kind MeasKind
	// Index is the line index (MeasFlow) or bus index (MeasInjection).
	Index int
	// ValueMW is the telemetered value.
	ValueMW float64
	// SigmaMW is the 1-σ accuracy (must be positive).
	SigmaMW float64
}

// Estimator accumulates measurements over a network.
type Estimator struct {
	net   *grid.Network
	meas  []Measurement
	slack int
}

// ErrUnobservable is returned when the measurement set cannot determine the
// state.
var ErrUnobservable = errors.New("stateest: system unobservable with given measurements")

// NewEstimator builds an estimator for a validated network.
func NewEstimator(n *grid.Network) (*Estimator, error) {
	slack, err := n.SlackIndex()
	if err != nil {
		return nil, fmt.Errorf("stateest: %w", err)
	}
	return &Estimator{net: n, slack: slack}, nil
}

// Add appends a measurement.
func (e *Estimator) Add(m Measurement) error {
	switch m.Kind {
	case MeasFlow:
		if m.Index < 0 || m.Index >= len(e.net.Lines) {
			return fmt.Errorf("stateest: flow measurement for unknown line %d", m.Index)
		}
	case MeasInjection:
		if m.Index < 0 || m.Index >= len(e.net.Buses) {
			return fmt.Errorf("stateest: injection measurement for unknown bus %d", m.Index)
		}
	default:
		return fmt.Errorf("stateest: unknown measurement kind %v", m.Kind)
	}
	if m.SigmaMW <= 0 {
		return fmt.Errorf("stateest: non-positive sigma %g", m.SigmaMW)
	}
	e.meas = append(e.meas, m)
	return nil
}

// Reset clears accumulated measurements.
func (e *Estimator) Reset() { e.meas = e.meas[:0] }

// Count returns the number of accumulated measurements.
func (e *Estimator) Count() int { return len(e.meas) }

// Estimate is a solved state estimation.
type Estimate struct {
	// Theta is the estimated bus-angle state (radians, slack = 0).
	Theta []float64
	// Flows is the estimated MW flow on every line.
	Flows []float64
	// Residuals holds z − h(x̂) per measurement.
	Residuals []float64
	// Normalized holds |residual|/σ per measurement.
	Normalized []float64
	// J is the weighted residual sum of squares Σ (r/σ)².
	J float64
	// DOF is the redundancy m − (n − 1).
	DOF int
}

// rowFor builds one Jacobian row over the reduced angle state.
func (e *Estimator) rowFor(m Measurement, colOf []int, ncols int) ([]float64, error) {
	row := make([]float64, ncols)
	n := e.net
	addLine := func(li int, sign float64) error {
		l := &n.Lines[li]
		fi, err := n.BusIndex(l.From)
		if err != nil {
			return err
		}
		ti, err := n.BusIndex(l.To)
		if err != nil {
			return err
		}
		beta := n.BaseMVA * l.Susceptance() * sign
		if colOf[fi] >= 0 {
			row[colOf[fi]] += beta
		}
		if colOf[ti] >= 0 {
			row[colOf[ti]] -= beta
		}
		return nil
	}
	switch m.Kind {
	case MeasFlow:
		if err := addLine(m.Index, 1); err != nil {
			return nil, err
		}
	case MeasInjection:
		for li := range n.Lines {
			fi, _ := n.BusIndex(n.Lines[li].From)
			ti, _ := n.BusIndex(n.Lines[li].To)
			busIdx := m.Index
			if fi == busIdx {
				if err := addLine(li, 1); err != nil {
					return nil, err
				}
			} else if ti == busIdx {
				if err := addLine(li, -1); err != nil {
					return nil, err
				}
			}
		}
	}
	return row, nil
}

// Solve runs the WLS estimation: x̂ = argmin Σ ((z_i − h_i(x))/σ_i)².
func (e *Estimator) Solve() (*Estimate, error) {
	n := e.net
	nb := len(n.Buses)
	ncols := nb - 1
	colOf := make([]int, nb)
	c := 0
	for i := 0; i < nb; i++ {
		if i == e.slack {
			colOf[i] = -1
			continue
		}
		colOf[i] = c
		c++
	}
	m := len(e.meas)
	if m < ncols {
		return nil, fmt.Errorf("%w: %d measurements for %d states", ErrUnobservable, m, ncols)
	}
	// Normal equations: (Hᵀ W H) x = Hᵀ W z with W = diag(1/σ²).
	h := mat.New(m, ncols)
	z := make([]float64, m)
	w := make([]float64, m)
	for i, ms := range e.meas {
		row, err := e.rowFor(ms, colOf, ncols)
		if err != nil {
			return nil, fmt.Errorf("stateest: %w", err)
		}
		copy(h.RawRow(i), row)
		z[i] = ms.ValueMW
		w[i] = 1 / (ms.SigmaMW * ms.SigmaMW)
	}
	gain := mat.New(ncols, ncols)
	rhs := make([]float64, ncols)
	for i := 0; i < m; i++ {
		hi := h.RawRow(i)
		for a := 0; a < ncols; a++ {
			if hi[a] == 0 {
				continue
			}
			rhs[a] += w[i] * hi[a] * z[i]
			for b := 0; b < ncols; b++ {
				if hi[b] != 0 {
					gain.Add(a, b, w[i]*hi[a]*hi[b])
				}
			}
		}
	}
	xhat, err := mat.Solve(gain, rhs)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return nil, ErrUnobservable
		}
		return nil, fmt.Errorf("stateest: %w", err)
	}
	theta := make([]float64, nb)
	for i := 0; i < nb; i++ {
		if colOf[i] >= 0 {
			theta[i] = xhat[colOf[i]]
		}
	}
	est := &Estimate{
		Theta:      theta,
		Residuals:  make([]float64, m),
		Normalized: make([]float64, m),
		DOF:        m - ncols,
	}
	for i := 0; i < m; i++ {
		pred := mat.Dot(h.RawRow(i), xhat)
		r := z[i] - pred
		est.Residuals[i] = r
		est.Normalized[i] = math.Abs(r) / e.meas[i].SigmaMW
		est.J += r * r * w[i]
	}
	flows := make([]float64, len(n.Lines))
	for li := range n.Lines {
		l := &n.Lines[li]
		fi, _ := n.BusIndex(l.From)
		ti, _ := n.BusIndex(l.To)
		flows[li] = n.BaseMVA * l.Susceptance() * (theta[fi] - theta[ti])
	}
	est.Flows = flows
	return est, nil
}

// ChiSquareCritical approximates the χ²(k) critical value at the given
// one-sided confidence (e.g. 0.99) via the Wilson–Hilferty transform.
func ChiSquareCritical(dof int, confidence float64) float64 {
	if dof <= 0 {
		return 0
	}
	z := normalQuantile(confidence)
	k := float64(dof)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// normalQuantile approximates Φ⁻¹ (Beasley–Springer/Moro-lite, adequate for
// detector thresholds).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	// Rational approximation (Odeh–Evans).
	y := math.Sqrt(-2 * math.Log(1-p))
	return y - (2.515517+0.802853*y+0.010328*y*y)/
		(1+1.432788*y+0.189269*y*y+0.001308*y*y*y)
}

// BadData reports whether the chi-square test flags the estimate at the
// given confidence, and the index of the largest normalized residual (the
// classical identification step; -1 when no measurements).
func (est *Estimate) BadData(confidence float64) (suspected bool, worstIdx int) {
	worstIdx = -1
	worst := -1.0
	for i, v := range est.Normalized {
		if v > worst {
			worst, worstIdx = v, i
		}
	}
	return est.J > ChiSquareCritical(est.DOF, confidence), worstIdx
}
