package sweep

import (
	"fmt"
	"time"

	"github.com/edsec/edattack/internal/scada"
	"github.com/edsec/edattack/internal/telemetry"
)

// DispatchFn maps an operating point the operator believes in — a demand
// draw and the ratings the EMS displays — to a per-generator dispatch in
// MW. The surface runner calls it once per scenario, with the *seen*
// ratings, so a falsified DLR feed steers the dispatch exactly as it
// would steer the real economic-dispatch loop.
type DispatchFn func(demand, seenRatings []float64) ([]float64, error)

// SurfaceConfig parameterizes an attack-success-probability surface: a
// grid of (hour of day × attack magnitude) cells, each estimated from a
// seeded Monte-Carlo sample of operating points.
type SurfaceConfig struct {
	// Hours are the hour-of-day sample points (e.g. 0, 3, …, 21).
	Hours []float64
	// Magnitudes are the fractional rating inflations the attacker
	// applies to the seen DLR feed (0.2 = report 120% of the true
	// rating). Magnitude 0 is the no-attack baseline column. Falsified
	// values are clamped into each line's plausibility band, exactly what
	// a bound-checking EMS ingest would admit.
	Magnitudes []float64
	// Draws is the Monte-Carlo sample size per cell (≤ 0 → 64).
	Draws int
	// Seed roots the per-cell draw streams. Each cell derives its own
	// deterministic sub-seed, so the surface is reproducible and
	// independent of cell evaluation order.
	Seed int64
	// DemandNoisePct and RatingNoisePct forward to
	// scada.MonteCarloConfig (0 → its defaults, negative disables).
	DemandNoisePct float64
	RatingNoisePct float64
	// AttackLines are the line indices whose seen ratings the attacker
	// controls; nil means every DLR-instrumented line.
	AttackLines []int
	// Dispatch supplies the operator's dispatch for each scenario. Nil
	// falls back to scaling every generator proportionally to capacity,
	// which keeps the runner self-contained for tests; the CLI wires in
	// the real economic-dispatch model.
	Dispatch DispatchFn
	// BatchSize, Workers, Sequential, Metrics, and Flight forward to
	// Eval via Options.
	BatchSize  int
	Workers    int
	Sequential bool
	Metrics    *telemetry.Registry
	Flight     *telemetry.Flight
}

// SurfaceCell aggregates one (hour, magnitude) cell of the surface.
type SurfaceCell struct {
	Hour      float64 `json:"hour"`
	Magnitude float64 `json:"magnitude"`
	Draws     int     `json:"draws"`
	// Dangerous counts physically insecure draws, Detected counts draws
	// the operator's screens flag, Success counts dangerous-but-unseen
	// draws — the attacker's win condition.
	Dangerous int `json:"dangerous"`
	Detected  int `json:"detected"`
	Success   int `json:"success"`
	// SuccessRate is Success/Draws, the cell's estimated attack-success
	// probability.
	SuccessRate float64 `json:"success_rate"`
	// MeanCost is the average dispatch cost over the cell's draws.
	MeanCost float64 `json:"mean_cost"`
}

// Surface is a completed attack-success-probability surface.
type Surface struct {
	// Cells is hour-major: all magnitudes of Hours[0], then Hours[1], …
	Cells []SurfaceCell `json:"cells"`
	// Scenarios is the total number of evaluated draws.
	Scenarios int `json:"scenarios"`
	// EvalSeconds is the wall time spent in the batched evaluator, and
	// ScenariosPerSec the resulting throughput.
	EvalSeconds     float64 `json:"eval_seconds"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
}

// cellSeed derives a deterministic per-cell seed from the root seed via a
// splitmix64 step, so cells have independent streams regardless of how
// many hours or magnitudes surround them.
func cellSeed(root int64, hi, mi int) int64 {
	z := uint64(root) ^ (uint64(hi)+1)*0x9e3779b97f4a7c15 ^ (uint64(mi)+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// defaultDispatch scales every generator proportionally to its capacity
// to cover the total demand, clamped to unit limits.
func defaultDispatch(pc *Precomp) DispatchFn {
	var capacity float64
	for gi := range pc.Net.Gens {
		capacity += pc.Net.Gens[gi].Pmax
	}
	return func(demand, _ []float64) ([]float64, error) {
		var total float64
		for _, d := range demand {
			total += d
		}
		frac := 0.0
		if capacity > 0 {
			frac = total / capacity
		}
		out := make([]float64, len(pc.Net.Gens))
		for gi := range pc.Net.Gens {
			g := &pc.Net.Gens[gi]
			p := g.Pmax * frac
			if p < g.Pmin {
				p = g.Pmin
			}
			if p > g.Pmax {
				p = g.Pmax
			}
			out[gi] = p
		}
		return out, nil
	}
}

// GenScenarios materializes the surface's seeded scenario set without
// evaluating it. Generation is sequential and a pure function of (network,
// config) — the same scenarios regenerate exactly for any consumer. The
// returned cells carry the (hour, magnitude, draws) labels in generation
// order; scenarios are cell-major, Draws per cell. RunSurface is
// GenScenarios + one batched Eval; the serving layer calls GenScenarios
// directly so it can concatenate several requests' scenarios into a single
// Eval pass over the shared Precomp.
func GenScenarios(pc *Precomp, cfg SurfaceConfig) ([]Scenario, []SurfaceCell, error) {
	if len(cfg.Hours) == 0 || len(cfg.Magnitudes) == 0 {
		return nil, nil, fmt.Errorf("sweep: surface needs hours and magnitudes")
	}
	draws := cfg.Draws
	if draws <= 0 {
		draws = 64
	}
	attack := cfg.AttackLines
	if attack == nil {
		attack = pc.Net.DLRLines()
	}
	for _, li := range attack {
		if li < 0 || li >= len(pc.Net.Lines) {
			return nil, nil, fmt.Errorf("sweep: attack line %d out of range", li)
		}
		if !pc.Net.Lines[li].HasDLR {
			return nil, nil, fmt.Errorf("sweep: attack line %d has no DLR feed to falsify", li)
		}
	}
	dispatch := cfg.Dispatch
	if dispatch == nil {
		dispatch = defaultDispatch(pc)
	}

	nCells := len(cfg.Hours) * len(cfg.Magnitudes)
	scenarios := make([]Scenario, 0, nCells*draws)
	cells := make([]SurfaceCell, 0, nCells)
	for hi, hour := range cfg.Hours {
		for mi, mag := range cfg.Magnitudes {
			mc, err := scada.NewMonteCarlo(pc.Net, scada.MonteCarloConfig{
				Seed:           cellSeed(cfg.Seed, hi, mi),
				DemandNoisePct: cfg.DemandNoisePct,
				RatingNoisePct: cfg.RatingNoisePct,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("sweep: %w", err)
			}
			for d := 0; d < draws; d++ {
				demand, trueR := mc.Draw(hour)
				seenR := make([]float64, len(trueR))
				copy(seenR, trueR)
				for _, li := range attack {
					l := &pc.Net.Lines[li]
					v := trueR[li] * (1 + mag)
					if v < l.DLRMin {
						v = l.DLRMin
					}
					if v > l.DLRMax {
						v = l.DLRMax
					}
					seenR[li] = v
				}
				disp, err := dispatch(demand, seenR)
				if err != nil {
					return nil, nil, fmt.Errorf("sweep: dispatch at hour %g mag %g: %w", hour, mag, err)
				}
				scenarios = append(scenarios, Scenario{
					Demand: demand, Dispatch: disp,
					TrueRatings: trueR, SeenRatings: seenR,
				})
			}
			cells = append(cells, SurfaceCell{Hour: hour, Magnitude: mag, Draws: draws})
		}
	}
	return scenarios, cells, nil
}

// RunSurface sweeps the (hour × magnitude) grid. Scenario generation is
// sequential and seeded — a pure function of (network, config) — then the
// whole surface's scenarios go through one batched Eval call, so results
// are independent of batch size and worker count.
func RunSurface(pc *Precomp, cfg SurfaceConfig) (*Surface, error) {
	scenarios, cells, err := GenScenarios(pc, cfg)
	if err != nil {
		return nil, err
	}
	draws := cfg.Draws
	if draws <= 0 {
		draws = 64
	}

	start := time.Now()
	outcomes, err := Eval(pc, scenarios, Options{
		BatchSize: cfg.BatchSize, Workers: cfg.Workers,
		Sequential: cfg.Sequential, Metrics: cfg.Metrics, Flight: cfg.Flight,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()

	for ci := range cells {
		c := &cells[ci]
		var cost float64
		for d := 0; d < draws; d++ {
			out := &outcomes[ci*draws+d]
			if out.Dangerous {
				c.Dangerous++
			}
			if out.Detected {
				c.Detected++
			}
			if out.Success {
				c.Success++
			}
			cost += out.Cost
		}
		c.SuccessRate = float64(c.Success) / float64(draws)
		c.MeanCost = cost / float64(draws)
	}
	s := &Surface{Cells: cells, Scenarios: len(scenarios), EvalSeconds: elapsed}
	if elapsed > 0 {
		s.ScenariosPerSec = float64(len(scenarios)) / elapsed
	}
	return s, nil
}
