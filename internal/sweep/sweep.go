// Package sweep is the batched scenario-evaluation engine behind
// Monte-Carlo attack-success studies: thousands of (demand draw, rating
// draw, attack vector) operating points, each base-case checked and N−1
// screened, at a throughput one full power-flow per scenario could never
// reach.
//
// The engine is PTDF-compact. Per topology it precomputes the shift-factor
// matrix once (flows = PTDF·injections, eliminating the per-scenario B·θ
// factorization) and derives the LODF from the same PTDF. Scenarios are
// packed into scenario-per-column injection batches so a whole batch's
// flows fall out of one blocked matrix–matrix product, violations and
// post-contingency screening vectorize over the batch, and batches fan out
// over the internal/par worker pool.
//
// Determinism is part of the contract: after the repository's 1e-6 MVA
// flow quantization, every outcome is bit-identical to the per-scenario
// dcflow.Solve + contingency.Screen oracle for any batch size and worker
// count. The slow path stays available (Options.Sequential) as the
// differential-testing reference.
package sweep

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"github.com/edsec/edattack/internal/contingency"
	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/sparse"
	"github.com/edsec/edattack/internal/telemetry"
)

// FlowQuantum is the MVA grid flows are rounded onto before any limit
// comparison — the same micro-MVA resolution the attack generator uses for
// reported ratings. Shift-factor flows and B·θ flows agree to far below
// this quantum, so quantized outcomes are engine-independent.
const FlowQuantum = 1e-6

// quantizeFlow rounds a MW flow onto the FlowQuantum grid.
func quantizeFlow(v float64) float64 {
	return math.Round(v/FlowQuantum) * FlowQuantum
}

// sparseDensityCutoff routes the flow product: when the PTDF (zeros
// dropped) is at most this dense, the CSR·dense-batch kernel wins; above
// it the blocked dense GEMM does. Both produce bit-identical flows, so the
// cutover is a pure performance knob (mirroring the LP engine selection).
const sparseDensityCutoff = 0.5

// Precomp is the per-topology shift-factor bundle: everything scenario
// evaluation needs that does not depend on the operating point. Build one
// per network (or let a Cache key them by topology) and share it freely —
// all fields are immutable after Precompute.
type Precomp struct {
	Net *grid.Network
	// PTDF is the lines×buses shift-factor matrix.
	PTDF *mat.Matrix
	// PTDFSparse is the compressed form of PTDF, non-nil when its density
	// (exact zeros dropped) is at most sparseDensityCutoff; the engine
	// then routes flow products through the CSR·dense kernel.
	PTDFSparse *sparse.CSR
	// LODF holds the line-outage distribution factors derived from PTDF.
	LODF *contingency.LODF
	// GenBus maps generator index → dense bus index.
	GenBus []int
	// Islanding counts outages skipped because they split the network —
	// constant across scenarios of one topology.
	Islanding int

	// lodfT is the LODF transposed into outage-major layout (row k holds
	// LODF(·,k)): the batched screen walks outages outermost, and the
	// row-major original would stride a full column per factor there.
	lodfT []float64
	// islanding[k] caches LODF.Islanding(k) as a flat slice for the
	// screen's inner loops.
	islanding []bool
}

// Precompute builds the shift-factor bundle for a validated network. The
// PTDF is factored exactly once; the LODF reuses it via
// contingency.ComputeLODFFromPTDF.
func Precompute(net *grid.Network) (*Precomp, error) {
	ptdf, err := dcflow.PTDF(net)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return PrecomputeFromPTDF(net, ptdf)
}

// PrecomputeFromPTDF is Precompute for callers that already hold the
// network's PTDF (for example from a dispatch model).
func PrecomputeFromPTDF(net *grid.Network, ptdf *mat.Matrix) (*Precomp, error) {
	lodf, err := contingency.ComputeLODFFromPTDF(net, ptdf)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	pc := &Precomp{Net: net, PTDF: ptdf, LODF: lodf}
	pc.GenBus = make([]int, len(net.Gens))
	for gi := range net.Gens {
		bi, err := net.BusIndex(net.Gens[gi].Bus)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		pc.GenBus[gi] = bi
	}
	nl := len(net.Lines)
	pc.islanding = make([]bool, nl)
	for k := range net.Lines {
		if lodf.Islanding(k) {
			pc.islanding[k] = true
			pc.Islanding++
		}
	}
	pc.lodfT = make([]float64, nl*nl)
	for l := 0; l < nl; l++ {
		row := lodf.FactorRow(l)
		for k, c := range row {
			pc.lodfT[k*nl+l] = c
		}
	}
	b := sparse.NewBuilder(ptdf.Rows(), ptdf.Cols())
	for i := 0; i < ptdf.Rows(); i++ {
		row := ptdf.RawRow(i)
		for j, v := range row {
			b.Add(i, j, v) // Add drops exact zeros
		}
	}
	if csr := b.CSR(); csr.Density() <= sparseDensityCutoff {
		pc.PTDFSparse = csr
	}
	return pc, nil
}

// injections fills dst (len buses) with the nodal injection vector of one
// scenario: generation minus demand, in MW. Both the batched engine and
// the sequential oracle assemble injections through this one function, so
// the two paths hand bit-identical right-hand sides to their respective
// flow solvers.
func (pc *Precomp) injections(s *Scenario, dst []float64) {
	for i := range dst {
		dst[i] = -s.Demand[i]
	}
	for gi, bi := range pc.GenBus {
		dst[bi] += s.Dispatch[gi]
	}
}

// TopologyKey hashes the fields PTDF and LODF actually depend on — the
// power base, bus count, slack position, and each line's endpoint indices
// and reactance. Demand, ratings, generator limits, and costs do not
// perturb the key: two operating points on the same wires share one
// precomputation.
func TopologyKey(net *grid.Network) (uint64, error) {
	slack, err := net.SlackIndex()
	if err != nil {
		return 0, fmt.Errorf("sweep: %w", err)
	}
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(math.Float64bits(net.BaseMVA))
	w(uint64(len(net.Buses)))
	w(uint64(slack))
	w(uint64(len(net.Lines)))
	for li := range net.Lines {
		l := &net.Lines[li]
		fi, err := net.BusIndex(l.From)
		if err != nil {
			return 0, fmt.Errorf("sweep: %w", err)
		}
		ti, err := net.BusIndex(l.To)
		if err != nil {
			return 0, fmt.Errorf("sweep: %w", err)
		}
		w(uint64(fi))
		w(uint64(ti))
		w(math.Float64bits(l.X))
	}
	return h.Sum64(), nil
}

// DefaultCacheCap is the topology capacity of a NewCache. A Precomp holds
// dense PTDF/LODF matrices — O(lines × buses) each — so an unbounded cache
// in a long-running daemon is a slow memory leak under topology churn; 64
// grids is far above any workload we serve while keeping the worst case
// bounded.
const DefaultCacheCap = 64

// Cache memoizes Precomp bundles by topology key, so repeated sweeps over
// the same wires — and a long-running service handling many requests per
// grid — pay for PTDF/LODF construction once. Capacity is bounded: when a
// store would exceed the cap, the least-recently-used topology is evicted
// (Get counts as use). Safe for concurrent use.
type Cache struct {
	// Metrics, when set, receives sweep_cache_hits_total,
	// sweep_cache_misses_total, and sweep_cache_evictions_total counters.
	Metrics *telemetry.Registry

	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[uint64]*list.Element
}

// cacheEntry is one resident topology, stored in the recency list.
type cacheEntry struct {
	key uint64
	pc  *Precomp
}

// NewCache returns an empty topology-keyed cache holding at most
// DefaultCacheCap topologies.
func NewCache() *Cache {
	return NewCacheCap(DefaultCacheCap)
}

// NewCacheCap returns an empty cache holding at most capacity topologies
// (values < 1 are clamped to 1 — a cache that can hold nothing would turn
// every Get into a recompute, silently).
func NewCacheCap(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[uint64]*list.Element),
	}
}

// Cap reports the cache's topology capacity.
func (c *Cache) Cap() int { return c.cap }

// Get returns the cached Precomp for the network's topology, computing and
// storing it on first sight. Networks that share a topology key share the
// returned bundle; callers must not mutate it. Note the key deliberately
// ignores generator placement, so a cached bundle's GenBus is only valid
// for networks with the same generator set — Get rebuilds GenBus when the
// generator layout differs.
func (c *Cache) Get(net *grid.Network) (*Precomp, error) {
	key, err := TopologyKey(net)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	var pc *Precomp
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
		pc = el.Value.(*cacheEntry).pc
	}
	c.mu.Unlock()
	if ok && pc.sameGens(net) {
		c.Metrics.Counter("sweep_cache_hits_total").Inc()
		return pc, nil
	}
	if ok {
		// Same wires, different generator layout: reuse the expensive
		// PTDF, rebuild the cheap bundle around it.
		fresh, err := PrecomputeFromPTDF(net, pc.PTDF)
		if err != nil {
			return nil, err
		}
		c.Metrics.Counter("sweep_cache_hits_total").Inc()
		c.put(key, fresh)
		return fresh, nil
	}
	c.Metrics.Counter("sweep_cache_misses_total").Inc()
	fresh, err := Precompute(net)
	if err != nil {
		return nil, err
	}
	c.put(key, fresh)
	return fresh, nil
}

// put stores (or refreshes) one topology at the recency front, evicting
// from the back past the cap. The precompute runs outside the lock, so two
// goroutines can race the same first-sight key; the second put refreshes
// the entry in place rather than double-inserting.
func (c *Cache) put(key uint64, pc *Precomp) {
	evicted := 0
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).pc = pc
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, pc: pc})
		for len(c.entries) > c.cap {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*cacheEntry).key)
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.Metrics.Counter("sweep_cache_evictions_total").Add(int64(evicted))
	}
}

// sameGens reports whether the network's generator-to-bus layout matches
// the bundle's.
func (pc *Precomp) sameGens(net *grid.Network) bool {
	if pc.Net == net {
		return true
	}
	if len(net.Gens) != len(pc.GenBus) {
		return false
	}
	for gi := range net.Gens {
		bi, err := net.BusIndex(net.Gens[gi].Bus)
		if err != nil || bi != pc.GenBus[gi] {
			return false
		}
	}
	return true
}

// Len reports how many topologies the cache holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the resident topology keys from most to least recently
// used — test and debug introspection for the eviction order.
func (c *Cache) Keys() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}
