package sweep

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/edsec/edattack/internal/contingency"
	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/par"
	"github.com/edsec/edattack/internal/telemetry"
)

// Scenario is one Monte-Carlo operating point: a demand draw, the dispatch
// serving it, the true line ratings, and the ratings the operator sees
// (identical to the true ones unless an attack is in flight).
type Scenario struct {
	// Demand is the per-bus real demand in MW (indexed like Buses).
	Demand []float64
	// Dispatch is the per-generator output in MW (indexed like Gens).
	Dispatch []float64
	// TrueRatings is the physical per-line limit in MW (≤ 0 unlimited).
	TrueRatings []float64
	// SeenRatings is the operator-visible per-line limit in MW — the
	// attacked DLR values during an attack (≤ 0 unlimited).
	SeenRatings []float64
}

// Violation is one base-case line overload.
type Violation struct {
	// Line is the overloaded line; FlowMW and RatingMW quantify it.
	Line             int
	FlowMW, RatingMW float64
	// Pct is 100·(|flow|/rating − 1).
	Pct float64
}

// RatingView is a scenario evaluated against one rating vector: the
// base-case overloads and the N−1 screen.
type RatingView struct {
	// Violations lists base-case overloads in line order.
	Violations []Violation
	// WorstPct is the largest base-case percentage overload.
	WorstPct float64
	// N1 is the full N−1 screening report against the same ratings.
	N1 contingency.Report
}

// Outcome is one evaluated scenario.
type Outcome struct {
	// Cost is the generation cost of the scenario's dispatch in $/h.
	Cost float64
	// Flows holds the base-case MW flows, quantized onto the FlowQuantum
	// grid (indexed like Lines).
	Flows []float64
	// True evaluates the scenario against the physical ratings; Seen
	// against the operator-visible ones.
	True, Seen RatingView
	// Dangerous marks a physically insecure scenario (a true base-case
	// overload or a true N−1 insecurity). Detected marks one the
	// operator's screens would flag. Success — the attacker's metric —
	// is a dangerous scenario the operator cannot see.
	Dangerous, Detected, Success bool
}

// Options tunes a batched evaluation.
type Options struct {
	// BatchSize is the number of scenarios per packed batch (≤ 0 → 64).
	BatchSize int
	// Workers spreads batches over the worker pool (≤ 0 → one per CPU).
	Workers int
	// Sequential routes every scenario through the per-scenario
	// dcflow.Solve + contingency.Screen oracle instead of the batched
	// shift-factor path — the differential-testing reference.
	Sequential bool
	// Metrics, when set, receives sweep_* counters and histograms.
	Metrics *telemetry.Registry
	// Flight, when set, records one event per batch plus a summary.
	Flight *telemetry.Flight
	// Ctx, when non-nil, is checked once per batch; a canceled or expired
	// context makes Eval return the context's error (wrapped,
	// errors.Is-compatible) instead of a partial outcome slice.
	Ctx context.Context
}

// DefaultBatchSize is the packed-batch width when Options.BatchSize is
// unset: wide enough to amortize per-batch setup, narrow enough that the
// flow block and both rating blocks stay cache-resident on case118.
const DefaultBatchSize = 64

// Eval evaluates every scenario and returns outcomes in scenario order.
// Results are bit-identical for any BatchSize and Workers setting, and —
// after flow quantization — to the Sequential oracle.
func Eval(pc *Precomp, scs []Scenario, o Options) ([]Outcome, error) {
	nb, ng, nl := len(pc.Net.Buses), len(pc.Net.Gens), len(pc.Net.Lines)
	for i := range scs {
		s := &scs[i]
		if len(s.Demand) != nb || len(s.Dispatch) != ng ||
			len(s.TrueRatings) != nl || len(s.SeenRatings) != nl {
			return nil, fmt.Errorf("sweep: scenario %d shaped (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				i, len(s.Demand), len(s.Dispatch), len(s.TrueRatings), len(s.SeenRatings), nb, ng, nl, nl)
		}
	}
	timed := o.Metrics != nil || o.Flight != nil
	var start time.Time
	if timed {
		start = time.Now()
	}
	outcomes := make([]Outcome, len(scs))
	bs := o.BatchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	nBatches := (len(scs) + bs - 1) / bs
	errs := make([]error, nBatches)
	par.Each(o.Workers, nBatches, func(bi int) {
		if o.Ctx != nil {
			if err := o.Ctx.Err(); err != nil {
				errs[bi] = fmt.Errorf("sweep: batch %d aborted: %w", bi, err)
				return
			}
		}
		lo := bi * bs
		hi := lo + bs
		if hi > len(scs) {
			hi = len(scs)
		}
		var batchStart time.Time
		if timed {
			batchStart = time.Now()
		}
		if o.Sequential {
			for i := lo; i < hi; i++ {
				out, err := EvalOne(pc, &scs[i])
				if err != nil {
					errs[bi] = err
					return
				}
				outcomes[i] = out
			}
		} else if err := evalBatch(pc, scs[lo:hi], outcomes[lo:hi]); err != nil {
			errs[bi] = err
			return
		}
		if timed {
			dur := time.Since(batchStart)
			o.Metrics.Histogram("sweep_batch_seconds", nil).Observe(dur.Seconds())
			o.Metrics.Counter("sweep_batches_total").Inc()
			o.Metrics.Counter("sweep_scenarios_total").Add(int64(hi - lo))
			successes := 0
			for i := lo; i < hi; i++ {
				if outcomes[i].Success {
					successes++
				}
			}
			o.Flight.Record(telemetry.FlightEvent{
				Kind: telemetry.FlightSweep, Label: "batch", Round: bi + 1,
				Monitored: hi - lo, Violated: successes, DurUS: dur.Microseconds(),
			})
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if timed {
		successes := 0
		for i := range outcomes {
			if outcomes[i].Success {
				successes++
			}
		}
		o.Flight.Record(telemetry.FlightEvent{
			Kind: telemetry.FlightSweep, Label: "eval",
			Monitored: len(scs), Violated: successes,
			DurUS: time.Since(start).Microseconds(),
		})
	}
	return outcomes, nil
}

// EvalOne is the per-scenario oracle: one full dcflow.Solve for the flows
// and one contingency.Screen per rating vector. It is the slow path the
// batched engine must agree with bit-for-bit after flow quantization.
func EvalOne(pc *Precomp, s *Scenario) (Outcome, error) {
	inj := make([]float64, len(pc.Net.Buses))
	pc.injections(s, inj)
	res, err := dcflow.Solve(pc.Net, inj)
	if err != nil {
		return Outcome{}, fmt.Errorf("sweep: %w", err)
	}
	flows := make([]float64, len(res.Flows))
	for l, f := range res.Flows {
		flows[l] = quantizeFlow(f)
	}
	out := Outcome{Cost: scenarioCost(pc, s), Flows: flows}
	if err := oracleView(pc, flows, s.TrueRatings, &out.True); err != nil {
		return Outcome{}, err
	}
	if err := oracleView(pc, flows, s.SeenRatings, &out.Seen); err != nil {
		return Outcome{}, err
	}
	finishOutcome(&out)
	return out, nil
}

// oracleView fills one RatingView via the existing sequential primitives.
func oracleView(pc *Precomp, flows, ratings []float64, v *RatingView) error {
	v.Violations, v.WorstPct = baseViolations(flows, ratings)
	rep, err := contingency.Screen(pc.LODF, flows, ratings)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	v.N1 = *rep
	return nil
}

// baseViolations scans quantized flows against one rating vector using the
// repository's overload convention (|f| > u·(1+1e-9)).
func baseViolations(flows, ratings []float64) ([]Violation, float64) {
	var out []Violation
	worst := 0.0
	for l, f := range flows {
		u := ratings[l]
		if u <= 0 {
			continue
		}
		if a := math.Abs(f); a > u*(1+1e-9) {
			pct := 100 * (a/u - 1)
			out = append(out, Violation{Line: l, FlowMW: f, RatingMW: u, Pct: pct})
			if pct > worst {
				worst = pct
			}
		}
	}
	return out, worst
}

// scenarioCost is the generation cost of the scenario's dispatch.
func scenarioCost(pc *Precomp, s *Scenario) float64 {
	var c float64
	for gi := range pc.Net.Gens {
		c += pc.Net.Gens[gi].Cost(s.Dispatch[gi])
	}
	return c
}

// finishOutcome derives the attack-success verdict from the two views.
func finishOutcome(out *Outcome) {
	out.Dangerous = len(out.True.Violations) > 0 || out.True.N1.InsecureOutages > 0
	out.Detected = len(out.Seen.Violations) > 0 || out.Seen.N1.InsecureOutages > 0
	out.Success = out.Dangerous && !out.Detected
}

// batchScratch holds one batch's packed blocks — injections, flows, ratings,
// extrema, view pointers — recycled through batchPool so a steady-state sweep
// allocates only the per-scenario Outcome vectors it hands to the caller.
// Every block is fully overwritten before use, so no clearing is needed on
// checkout; view pointers are dropped on release so the pool never pins a
// finished batch's outcomes.
type batchScratch struct {
	inj        []float64
	col        []float64
	flows      []float64
	ratings    []float64
	maxAbs     []float64
	minU       []float64
	views      []*RatingView
	lastOutage []int
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) release() {
	for i := range sc.views {
		sc.views[i] = nil
	}
	batchPool.Put(sc)
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// evalBatch evaluates one packed batch of scenarios in place.
//
// The batch pipeline: scatter per-scenario injections into a buses×S
// scenario-per-column block, compute all flows with one shift-factor
// product (dense blocked GEMM or CSR·dense, bit-identical), quantize,
// then run the vectorized base-case check and batched N−1 screen against
// both rating sets.
func evalBatch(pc *Precomp, scs []Scenario, outcomes []Outcome) error {
	nb, nl, S := len(pc.Net.Buses), len(pc.Net.Lines), len(scs)
	sc := batchPool.Get().(*batchScratch)
	defer sc.release()
	sc.inj = growFloat(sc.inj, nb*S)
	sc.col = growFloat(sc.col, nb)
	inj := sc.inj
	col := sc.col
	for j := range scs {
		pc.injections(&scs[j], col)
		for i, v := range col {
			inj[i*S+j] = v
		}
	}
	sc.flows = growFloat(sc.flows, nl*S)
	flows := sc.flows
	if pc.PTDFSparse != nil {
		if err := pc.PTDFSparse.MulDenseInto(flows, inj, S); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	} else {
		injM, err := mat.Wrap(nb, S, inj)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		flowsM, err := mat.Wrap(nl, S, flows)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if err := mat.MulBlockedInto(flowsM, pc.PTDF, injM); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for i, f := range flows {
		flows[i] = quantizeFlow(f)
	}
	// Per-scenario outcomes: transpose flows out of the block, then the
	// base-case scan reuses the oracle's own helper on each column.
	for j := range scs {
		out := &outcomes[j]
		out.Cost = scenarioCost(pc, &scs[j])
		f := make([]float64, nl)
		for l := 0; l < nl; l++ {
			f[l] = flows[l*S+j]
		}
		out.Flows = f
		out.True.Violations, out.True.WorstPct = baseViolations(f, scs[j].TrueRatings)
		out.Seen.Violations, out.Seen.WorstPct = baseViolations(f, scs[j].SeenRatings)
	}
	screenBatch(pc, sc, flows, scs, outcomes, true)
	screenBatch(pc, sc, flows, scs, outcomes, false)
	for j := range outcomes {
		finishOutcome(&outcomes[j])
	}
	return nil
}

// screenBatch runs the batched N−1 screen for one rating set (true or
// seen) over a whole flow block, writing per-scenario reports.
//
// For every (monitored line l, outage k) pair the LODF factor is applied
// to the entire batch — post[l][j] = f[l][j] + LODF(l,k)·f[k][j], the
// exact expression contingency.Screen evaluates per scenario — so reports
// match the oracle bit-for-bit. A conservative per-(l,k) bound
// (max|f_l| + |LODF|·max|f_k| ≤ min rating) skips batch columns that
// cannot possibly overload; the 1e-9 relative slack in the overload
// threshold dwarfs the bound's rounding, so skipping never changes a
// report, only the work.
//
// The scan runs k-outer / l-inner — the oracle's own order, so overloads
// append directly in (outage, line) order with no re-sort — and reads the
// factors from the precomputed outage-major LODF transpose, so the
// bound-scan over l streams contiguous memory instead of striding a
// column per factor.
func screenBatch(pc *Precomp, sc *batchScratch, flows []float64, scs []Scenario, outcomes []Outcome, trueView bool) {
	nl, S := len(pc.Net.Lines), len(scs)

	// Pack the per-scenario rating vectors into a line-major block and
	// fold per-line batch extrema.
	sc.ratings = growFloat(sc.ratings, nl*S)
	ratings := sc.ratings
	for j := range scs {
		r := scs[j].TrueRatings
		if !trueView {
			r = scs[j].SeenRatings
		}
		for l := 0; l < nl; l++ {
			ratings[l*S+j] = r[l]
		}
	}
	sc.maxAbs = growFloat(sc.maxAbs, nl)
	sc.minU = growFloat(sc.minU, nl)
	maxAbs := sc.maxAbs
	minU := sc.minU
	for l := 0; l < nl; l++ {
		row := flows[l*S : (l+1)*S]
		m := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		maxAbs[l] = m
		mu := math.Inf(1)
		for _, u := range ratings[l*S : (l+1)*S] {
			if u > 0 && u < mu {
				mu = u
			}
		}
		minU[l] = mu
	}

	if cap(sc.views) < S {
		sc.views = make([]*RatingView, S)
	}
	sc.views = sc.views[:S]
	views := sc.views
	for j := range outcomes {
		if trueView {
			views[j] = &outcomes[j].True
		} else {
			views[j] = &outcomes[j].Seen
		}
		views[j].N1.IslandingOutages = pc.Islanding
	}
	sc.lastOutage = growInt(sc.lastOutage, S)
	lastOutage := sc.lastOutage
	for j := range lastOutage {
		lastOutage[j] = -1
	}

	for k := 0; k < nl; k++ {
		if pc.islanding[k] {
			continue
		}
		factors := pc.lodfT[k*nl : (k+1)*nl]
		fk := flows[k*S : (k+1)*S]
		mk := maxAbs[k]
		for l := 0; l < nl; l++ {
			if l == k {
				continue
			}
			c := factors[l]
			if maxAbs[l]+math.Abs(c)*mk <= minU[l] {
				continue
			}
			fl := flows[l*S : (l+1)*S]
			rl := ratings[l*S : (l+1)*S]
			for j := 0; j < S; j++ {
				u := rl[j]
				if u <= 0 {
					continue
				}
				post := fl[j] + c*fk[j]
				a := math.Abs(post)
				if a > u*(1+1e-9) {
					pct := 100 * (a/u - 1)
					v := views[j]
					if lastOutage[j] != k {
						v.N1.InsecureOutages++
						lastOutage[j] = k
					}
					v.N1.Overloads = append(v.N1.Overloads, contingency.Overload{
						Outage: k, Line: l, FlowMW: post, RatingMW: u, Pct: pct,
					})
					if pct > v.N1.WorstPct {
						v.N1.WorstPct = pct
					}
				}
			}
		}
	}
}
