package sweep

import (
	"sync"
	"testing"

	"github.com/edsec/edattack/internal/grid/cases"
)

// TestCacheConcurrentGet hammers one Cache from many goroutines — repeated
// Gets on two topologies plus cold-start races on first sight — and is the
// concurrency witness the race detector runs in CI (make parallel / the
// race job). After the dust settles every Get of a warm topology must hand
// back the one resident bundle, and hits+misses must account for every
// call.
func TestCacheConcurrentGet(t *testing.T) {
	net9, err := cases.Load("case9")
	if err != nil {
		t.Fatalf("case9: %v", err)
	}
	net30, err := cases.Load("case30")
	if err != nil {
		t.Fatalf("case30: %v", err)
	}

	c := NewCacheCap(4)

	// Phase 1: cold-start race — every goroutine sees first sight of both
	// topologies at once. Losers recompute, put refreshes in place; the
	// only requirement here is no data race and no error.
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := c.Get(net9); err != nil {
					errs[w] = err
					return
				}
				if _, err := c.Get(net30); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d topologies, want 2", c.Len())
	}

	// Phase 2: warm reads — every concurrent Get must return the exact
	// resident bundle the serial warm-up sees.
	want9, err := c.Get(net9)
	if err != nil {
		t.Fatalf("warm get case9: %v", err)
	}
	want30, err := c.Get(net30)
	if err != nil {
		t.Fatalf("warm get case30: %v", err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				pc, err := c.Get(net9)
				if err != nil {
					errs[w] = err
					return
				}
				if pc != want9 {
					errs[w] = errStaleBundle
					return
				}
				pc, err = c.Get(net30)
				if err != nil {
					errs[w] = err
					return
				}
				if pc != want30 {
					errs[w] = errStaleBundle
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("warm worker %d: %v", w, err)
		}
	}
}

// errStaleBundle marks a concurrent Get that returned a non-resident
// Precomp after warm-up.
var errStaleBundle = &staleBundleError{}

type staleBundleError struct{}

func (*staleBundleError) Error() string { return "Get returned a non-resident bundle" }
