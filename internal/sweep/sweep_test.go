package sweep

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/scada"
	"github.com/edsec/edattack/internal/telemetry"
)

// testNetworks returns the differential-test fleet: the standard cases plus
// deterministic synthetic networks of varying size and meshing (the sparser
// ones route through the CSR kernel, the denser through the blocked GEMM).
func testNetworks(t *testing.T) map[string]*grid.Network {
	t.Helper()
	nets := make(map[string]*grid.Network)
	add := func(name string, n *grid.Network, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nets[name] = n
	}
	n, err := cases.Case9()
	add("case9", n, err)
	n, err = cases.Case30()
	add("case30", n, err)
	n, err = cases.Case57()
	add("case57", n, err)
	n, err = cases.Case118()
	add("case118", n, err)
	n, err = cases.Synthetic(cases.SyntheticOptions{
		Name: "rand24", Buses: 24, Gens: 6, ExtraLines: 10, DLRLines: 3, Seed: 901,
	})
	add("rand24", n, err)
	n, err = cases.Synthetic(cases.SyntheticOptions{
		Name: "rand40sparse", Buses: 40, Gens: 8, ExtraLines: 2, DLRLines: 4, Seed: 77,
	})
	add("rand40sparse", n, err)
	return nets
}

// testScenarios draws a seeded scenario set designed to exercise every
// branch: plausible operating points, tightened true ratings that force
// base-case and N−1 violations, attack-inflated seen ratings that mask
// them, and an unlimited (rating ≤ 0) line.
func testScenarios(t *testing.T, pc *Precomp, count int, seed int64) []Scenario {
	t.Helper()
	mc, err := scada.NewMonteCarlo(pc.Net, scada.MonteCarloConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	dispatch := defaultDispatch(pc)
	attack := pc.Net.DLRLines()
	scs := make([]Scenario, 0, count)
	for i := 0; i < count; i++ {
		hour := float64(i%24) + 0.25
		demand, trueR := mc.Draw(hour)
		if i%3 == 1 {
			// Tighten the physical ratings so real overloads appear.
			for l := range trueR {
				trueR[l] *= 0.55
			}
		}
		seenR := make([]float64, len(trueR))
		copy(seenR, trueR)
		if i%2 == 0 {
			// The attacker inflates the DLR feed to hide congestion.
			for _, li := range attack {
				seenR[li] = trueR[li] * 1.5
			}
		}
		if i%5 == 4 && len(trueR) > 0 {
			trueR[0] = 0 // unlimited line: the u ≤ 0 branch
		}
		disp, err := dispatch(demand, seenR)
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, Scenario{
			Demand: demand, Dispatch: disp, TrueRatings: trueR, SeenRatings: seenR,
		})
	}
	return scs
}

// TestEvalMatchesOracle is the differential property test: for every
// network, the batched engine must reproduce the sequential
// dcflow.Solve + contingency.Screen oracle bit-for-bit — flows,
// violations, N−1 reports, verdicts — across batch sizes and worker
// counts.
func TestEvalMatchesOracle(t *testing.T) {
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			pc, err := Precompute(net)
			if err != nil {
				t.Fatal(err)
			}
			count := 30
			if len(net.Buses) > 60 {
				count = 12 // the oracle is the slow part at 118 buses
			}
			scs := testScenarios(t, pc, count, 1000+int64(len(net.Buses)))
			oracle, err := Eval(pc, scs, Options{Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			interesting := false
			for i := range oracle {
				if oracle[i].Dangerous || oracle[i].Detected {
					interesting = true
				}
			}
			if !interesting {
				t.Fatalf("oracle produced no violations at all — test exercises nothing")
			}
			for _, batch := range []int{1, 7, 64} {
				for _, workers := range []int{1, 4} {
					got, err := Eval(pc, scs, Options{BatchSize: batch, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					for i := range got {
						if !reflect.DeepEqual(got[i], oracle[i]) {
							t.Fatalf("batch=%d workers=%d scenario %d diverges from oracle:\n got  %+v\nwant %+v",
								batch, workers, i, got[i], oracle[i])
						}
					}
				}
			}
		})
	}
}

// TestEvalShapeValidation: malformed scenarios are rejected up front.
func TestEvalShapeValidation(t *testing.T) {
	net, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Precompute(net)
	if err != nil {
		t.Fatal(err)
	}
	bad := Scenario{
		Demand:      make([]float64, 2), // want 9
		Dispatch:    make([]float64, len(net.Gens)),
		TrueRatings: make([]float64, len(net.Lines)),
		SeenRatings: make([]float64, len(net.Lines)),
	}
	if _, err := Eval(pc, []Scenario{bad}, Options{}); err == nil {
		t.Fatal("expected shape error")
	}
}

// TestTopologyKey: ratings and costs do not perturb the key; wires do.
func TestTopologyKey(t *testing.T) {
	a, err := cases.Case30()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cases.Case30()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := TopologyKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := TopologyKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("identical networks hash differently")
	}
	b.Lines[0].RateMVA *= 2
	b.Gens[0].CostB += 5
	if kb2, _ := TopologyKey(b); kb2 != ka {
		t.Fatal("ratings/costs should not perturb the topology key")
	}
	b.Lines[0].X *= 1.01
	if kb3, _ := TopologyKey(b); kb3 == ka {
		t.Fatal("reactance change should perturb the topology key")
	}
}

// TestCache: one miss then hits for same-topology networks, counted in
// metrics; a wire change misses again.
func TestCache(t *testing.T) {
	c := NewCache()
	c.Metrics = telemetry.NewRegistry()
	a, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	b.Lines[1].RateMVA *= 3 // operating-point change, same wires
	pa, err := c.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.Get(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("same topology should share one Precomp")
	}
	b.Lines[1].X *= 2
	if _, err := c.Get(b); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("cache holds %d topologies, want 2", got)
	}
	snap := c.Metrics.Snapshot()
	if hits := snap.Counters["sweep_cache_hits_total"]; hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if misses := snap.Counters["sweep_cache_misses_total"]; misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}

// TestCacheEviction: the LRU bound — Get refreshes recency, overflow
// evicts the least-recently-used topology (counted), and an evicted
// topology misses again on re-entry.
func TestCacheEviction(t *testing.T) {
	c := NewCacheCap(2)
	c.Metrics = telemetry.NewRegistry()
	mk := func(scale float64) *grid.Network {
		n, err := cases.Case9()
		if err != nil {
			t.Fatal(err)
		}
		n.Lines[0].X *= scale // distinct reactance → distinct topology key
		return n
	}
	a, b, d := mk(1), mk(2), mk(3)
	keyOf := func(n *grid.Network) uint64 {
		k, err := TopologyKey(n)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	get := func(n *grid.Network) {
		if _, err := c.Get(n); err != nil {
			t.Fatal(err)
		}
	}

	get(a) // miss: [a]
	get(b) // miss: [b a]
	get(a) // hit, refreshes a: [a b]
	get(d) // miss, evicts b (LRU): [d a]
	if got, want := c.Keys(), []uint64{keyOf(d), keyOf(a)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recency order %v, want %v", got, want)
	}
	get(b) // miss again (was evicted), evicts a: [b d]
	if got, want := c.Keys(), []uint64{keyOf(b), keyOf(d)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recency order after re-entry %v, want %v", got, want)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("cache holds %d topologies, want cap 2", got)
	}

	snap := c.Metrics.Snapshot()
	if hits := snap.Counters["sweep_cache_hits_total"]; hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if misses := snap.Counters["sweep_cache_misses_total"]; misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
	if ev := snap.Counters["sweep_cache_evictions_total"]; ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

// TestEvalContextCanceled: a done context aborts Eval with a wrapped
// context error instead of a partial outcome slice.
func TestEvalContextCanceled(t *testing.T) {
	net, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Precompute(net)
	if err != nil {
		t.Fatal(err)
	}
	scs := testScenarios(t, pc, 8, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Eval(pc, scs, Options{Workers: 1, Ctx: ctx})
	if out != nil {
		t.Fatal("canceled Eval returned outcomes")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}

	// An open context must not perturb results.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	got, err := Eval(pc, scs, Options{Workers: 1, Ctx: ctx2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Eval(pc, scs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("open context changed Eval outcomes")
	}
}

// TestSurface: the surface is reproducible, batched and sequential agree,
// and the no-attack column can never report attack success.
func TestSurface(t *testing.T) {
	net, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Precompute(net)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SurfaceConfig{
		Hours:      []float64{2, 18.5},
		Magnitudes: []float64{0, 0.35},
		Draws:      16,
		Seed:       99,
	}
	s1, err := RunSurface(pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunSurface(pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Cells, s2.Cells) {
		t.Fatal("same config and seed produced different surfaces")
	}
	seq := cfg
	seq.Sequential = true
	s3, err := RunSurface(pc, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Cells, s3.Cells) {
		t.Fatal("batched and sequential surfaces disagree")
	}
	if len(s1.Cells) != 4 || s1.Scenarios != 64 {
		t.Fatalf("surface shape: %d cells, %d scenarios", len(s1.Cells), s1.Scenarios)
	}
	for _, c := range s1.Cells {
		if c.Magnitude == 0 && c.Success != 0 {
			t.Fatalf("no-attack cell at hour %g reports %d successes", c.Hour, c.Success)
		}
		if c.Success > c.Dangerous {
			t.Fatalf("cell %+v: successes exceed dangerous draws", c)
		}
	}
}

// TestEvalTelemetry: batches and scenarios are counted and flight events
// recorded when sinks are attached.
func TestEvalTelemetry(t *testing.T) {
	net, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Precompute(net)
	if err != nil {
		t.Fatal(err)
	}
	scs := testScenarios(t, pc, 10, 5)
	reg := telemetry.NewRegistry()
	fl := telemetry.NewFlight(64)
	if _, err := Eval(pc, scs, Options{BatchSize: 4, Metrics: reg, Flight: fl}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sweep_scenarios_total"]; got != 10 {
		t.Fatalf("sweep_scenarios_total = %d, want 10", got)
	}
	if got := snap.Counters["sweep_batches_total"]; got != 3 {
		t.Fatalf("sweep_batches_total = %d, want 3", got)
	}
	if fl.Len() != 4 { // 3 batch events + 1 summary
		t.Fatalf("flight recorded %d events, want 4", fl.Len())
	}
}
