package dcflow_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/mat"
)

func case3(t *testing.T) *grid.Network {
	t.Helper()
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatalf("Case3: %v", err)
	}
	return n
}

func TestSolveTwoBus(t *testing.T) {
	n := &grid.Network{
		BaseMVA: 100,
		Buses: []grid.Bus{
			{ID: 1, Type: grid.Slack},
			{ID: 2, Type: grid.PQ, Pd: 50},
		},
		Lines: []grid.Line{{ID: 1, From: 1, To: 2, X: 0.1}},
		Gens:  []grid.Generator{{ID: 1, Bus: 1, Pmax: 100}},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := dcflow.Solve(n, []float64{0, -50})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// All load must flow over the single line from bus 1 to bus 2.
	if math.Abs(res.Flows[0]-50) > 1e-9 {
		t.Fatalf("flow = %v, want 50", res.Flows[0])
	}
	if math.Abs(res.SlackInjection-50) > 1e-9 {
		t.Fatalf("slack injection = %v, want 50", res.SlackInjection)
	}
}

func TestSolveCase3MatchesPaper(t *testing.T) {
	// Paper Section IV-A: with (p1, p2) = (120, 180) and d = 300, the
	// flows are f12 = -20, f13 = 140, f23 = 160.
	n := case3(t)
	inj, err := dcflow.InjectionsFromDispatch(n, []float64{120, 180})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dcflow.Solve(n, inj)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{-20, 140, 160}
	for i, w := range want {
		if math.Abs(res.Flows[i]-w) > 1e-6 {
			t.Fatalf("flow[%d] = %v, want %v (all %v)", i, res.Flows[i], w, res.Flows)
		}
	}
}

func TestFlowConservation(t *testing.T) {
	// Net flow out of every non-slack bus equals its injection.
	n := case3(t)
	inj, _ := dcflow.InjectionsFromDispatch(n, []float64{100, 200})
	res, err := dcflow.Solve(n, inj)
	if err != nil {
		t.Fatal(err)
	}
	nb := len(n.Buses)
	net := make([]float64, nb)
	for li := range n.Lines {
		fi, _ := n.BusIndex(n.Lines[li].From)
		ti, _ := n.BusIndex(n.Lines[li].To)
		net[fi] += res.Flows[li]
		net[ti] -= res.Flows[li]
	}
	slack, _ := n.SlackIndex()
	for i := 0; i < nb; i++ {
		if i == slack {
			continue
		}
		if math.Abs(net[i]-inj[i]) > 1e-7 {
			t.Fatalf("bus %d: net outflow %v != injection %v", i, net[i], inj[i])
		}
	}
}

func TestSolveErrors(t *testing.T) {
	n := case3(t)
	if _, err := dcflow.Solve(n, []float64{1}); err == nil {
		t.Fatal("want injection length error")
	}
	if _, err := dcflow.Flows(n, []float64{0}); err == nil {
		t.Fatal("want angle length error")
	}
	if _, err := dcflow.InjectionsFromDispatch(n, []float64{1}); err == nil {
		t.Fatal("want dispatch length error")
	}
}

func TestPTDFReproducesFlows(t *testing.T) {
	n := case3(t)
	ptdf, err := dcflow.PTDF(n)
	if err != nil {
		t.Fatalf("PTDF: %v", err)
	}
	inj, _ := dcflow.InjectionsFromDispatch(n, []float64{120, 180})
	res, _ := dcflow.Solve(n, inj)
	got, err := ptdf.MulVec(inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-res.Flows[i]) > 1e-7 {
			t.Fatalf("PTDF flow[%d] = %v, want %v", i, got[i], res.Flows[i])
		}
	}
}

func TestPTDFSlackColumnZero(t *testing.T) {
	n := case3(t)
	ptdf, err := dcflow.PTDF(n)
	if err != nil {
		t.Fatal(err)
	}
	slack, _ := n.SlackIndex()
	for li := 0; li < ptdf.Rows(); li++ {
		if ptdf.At(li, slack) != 0 {
			t.Fatalf("PTDF slack column not zero at line %d", li)
		}
	}
}

// Property: on random synthetic networks, PTDF×injections equals the solved
// flows, and flow conservation holds.
func TestPropertyPTDFConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, err := cases.Synthetic(cases.SyntheticOptions{
			Buses: 6 + r.Intn(20), Gens: 2 + r.Intn(4),
			ExtraLines: 3 + r.Intn(8), DLRLines: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		dispatch := make([]float64, len(n.Gens))
		for i := range dispatch {
			dispatch[i] = n.Gens[i].Pmax * r.Float64()
		}
		inj, err := dcflow.InjectionsFromDispatch(n, dispatch)
		if err != nil {
			return false
		}
		res, err := dcflow.Solve(n, inj)
		if err != nil {
			return false
		}
		ptdf, err := dcflow.PTDF(n)
		if err != nil {
			return false
		}
		viaPTDF, err := ptdf.MulVec(inj)
		if err != nil {
			return false
		}
		scale := 1 + mat.NormInf(res.Flows)
		for i := range viaPTDF {
			if math.Abs(viaPTDF[i]-res.Flows[i]) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: DC flow is linear — scaling all injections scales all flows.
func TestPropertyLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, err := cases.Case3(cases.Case3Options{})
		if err != nil {
			return false
		}
		p1 := 300 * r.Float64()
		inj, _ := dcflow.InjectionsFromDispatch(n, []float64{p1, 300 - p1})
		res1, err := dcflow.Solve(n, inj)
		if err != nil {
			return false
		}
		inj2 := make([]float64, len(inj))
		for i := range inj {
			inj2[i] = 2 * inj[i]
		}
		res2, err := dcflow.Solve(n, inj2)
		if err != nil {
			return false
		}
		for i := range res1.Flows {
			if math.Abs(res2.Flows[i]-2*res1.Flows[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
