// Package dcflow implements the DC (linearized) power-flow model used both
// by the operator's economic dispatch and by the paper's attacker:
//
//	f_ij = β_ij (θ_i − θ_j),   injections = B·θ
//
// with β = 1/x, angles in radians, and powers in MW (per-unit susceptances
// scaled by the network MVA base). The slack bus angle is fixed at zero.
// The package also computes power-transfer distribution factors (PTDFs),
// which the dispatch and attack packages use to express line flows directly
// in terms of nodal injections.
package dcflow

import (
	"fmt"

	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/mat"
)

// Result is a solved DC power flow.
type Result struct {
	// Theta holds the bus voltage angles in radians (slack = 0), indexed
	// like Network.Buses.
	Theta []float64
	// Flows holds the real-power flow in MW on each line, positive in the
	// From→To direction, indexed like Network.Lines.
	Flows []float64
	// SlackInjection is the implied net injection at the slack bus in MW.
	SlackInjection float64
}

// Solve computes the DC power flow for the given nodal injections
// (generation minus demand, in MW, indexed like Network.Buses). The slack
// bus entry is ignored and implied by balance. The network must have been
// validated.
func Solve(n *grid.Network, injections []float64) (*Result, error) {
	nb := len(n.Buses)
	if len(injections) != nb {
		return nil, fmt.Errorf("dcflow: %d injections for %d buses", len(injections), nb)
	}
	slack, err := n.SlackIndex()
	if err != nil {
		return nil, fmt.Errorf("dcflow: %w", err)
	}
	b, err := reducedB(n, slack)
	if err != nil {
		return nil, err
	}
	rhs := make([]float64, 0, nb-1)
	for i := 0; i < nb; i++ {
		if i != slack {
			rhs = append(rhs, injections[i])
		}
	}
	thetaRed, err := mat.Solve(b, rhs)
	if err != nil {
		return nil, fmt.Errorf("dcflow: B-matrix solve: %w", err)
	}
	theta := make([]float64, nb)
	k := 0
	for i := 0; i < nb; i++ {
		if i == slack {
			continue
		}
		theta[i] = thetaRed[k]
		k++
	}
	flows, err := Flows(n, theta)
	if err != nil {
		return nil, err
	}
	// The slack injection balances the (lossless) system.
	var total float64
	for i, p := range injections {
		if i != slack {
			total += p
		}
	}
	return &Result{Theta: theta, Flows: flows, SlackInjection: -total}, nil
}

// Flows evaluates the MW flow on every line for the given bus angles.
func Flows(n *grid.Network, theta []float64) ([]float64, error) {
	if len(theta) != len(n.Buses) {
		return nil, fmt.Errorf("dcflow: %d angles for %d buses", len(theta), len(n.Buses))
	}
	out := make([]float64, len(n.Lines))
	for li := range n.Lines {
		l := &n.Lines[li]
		fi, err := n.BusIndex(l.From)
		if err != nil {
			return nil, fmt.Errorf("dcflow: %w", err)
		}
		ti, err := n.BusIndex(l.To)
		if err != nil {
			return nil, fmt.Errorf("dcflow: %w", err)
		}
		out[li] = n.BaseMVA * l.Susceptance() * (theta[fi] - theta[ti])
	}
	return out, nil
}

// reducedB builds the slack-reduced nodal susceptance matrix scaled so that
// B·θ yields MW.
func reducedB(n *grid.Network, slack int) (*mat.Matrix, error) {
	nb := len(n.Buses)
	idx := make([]int, nb) // bus index → reduced index (-1 for slack)
	k := 0
	for i := 0; i < nb; i++ {
		if i == slack {
			idx[i] = -1
			continue
		}
		idx[i] = k
		k++
	}
	b := mat.New(nb-1, nb-1)
	for li := range n.Lines {
		l := &n.Lines[li]
		fi, err := n.BusIndex(l.From)
		if err != nil {
			return nil, fmt.Errorf("dcflow: %w", err)
		}
		ti, err := n.BusIndex(l.To)
		if err != nil {
			return nil, fmt.Errorf("dcflow: %w", err)
		}
		beta := n.BaseMVA * l.Susceptance()
		if idx[fi] >= 0 {
			b.Add(idx[fi], idx[fi], beta)
		}
		if idx[ti] >= 0 {
			b.Add(idx[ti], idx[ti], beta)
		}
		if idx[fi] >= 0 && idx[ti] >= 0 {
			b.Add(idx[fi], idx[ti], -beta)
			b.Add(idx[ti], idx[fi], -beta)
		}
	}
	return b, nil
}

// PTDF computes the lines×buses power-transfer distribution factor matrix:
// entry (l, i) is the MW flow change on line l per MW injected at bus i and
// withdrawn at the slack. The slack column is zero.
func PTDF(n *grid.Network) (*mat.Matrix, error) {
	nb := len(n.Buses)
	slack, err := n.SlackIndex()
	if err != nil {
		return nil, fmt.Errorf("dcflow: %w", err)
	}
	b, err := reducedB(n, slack)
	if err != nil {
		return nil, err
	}
	f, err := mat.Factor(b)
	if err != nil {
		return nil, fmt.Errorf("dcflow: B-matrix factorization: %w", err)
	}
	// Solve for the angle response to a unit injection at each non-slack
	// bus, then map through the flow equations.
	idx := make([]int, nb)
	k := 0
	for i := 0; i < nb; i++ {
		if i == slack {
			idx[i] = -1
			continue
		}
		idx[i] = k
		k++
	}
	// thetaResp[j] = angles (reduced) for injection at reduced bus j.
	thetaResp := make([][]float64, nb-1)
	e := make([]float64, nb-1)
	for j := 0; j < nb-1; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, fmt.Errorf("dcflow: PTDF solve: %w", err)
		}
		thetaResp[j] = col
	}
	ptdf := mat.New(len(n.Lines), nb)
	for li := range n.Lines {
		l := &n.Lines[li]
		fi, _ := n.BusIndex(l.From)
		ti, _ := n.BusIndex(l.To)
		beta := n.BaseMVA * l.Susceptance()
		for busI := 0; busI < nb; busI++ {
			if busI == slack {
				continue
			}
			j := idx[busI]
			var thF, thT float64
			if idx[fi] >= 0 {
				thF = thetaResp[j][idx[fi]]
			}
			if idx[ti] >= 0 {
				thT = thetaResp[j][idx[ti]]
			}
			ptdf.Set(li, busI, beta*(thF-thT))
		}
	}
	return ptdf, nil
}

// InjectionsFromDispatch assembles the nodal injection vector (MW) from a
// per-generator dispatch and the network demand. dispatch is indexed like
// Network.Gens.
func InjectionsFromDispatch(n *grid.Network, dispatch []float64) ([]float64, error) {
	if len(dispatch) != len(n.Gens) {
		return nil, fmt.Errorf("dcflow: %d dispatch values for %d generators", len(dispatch), len(n.Gens))
	}
	inj := make([]float64, len(n.Buses))
	for i := range n.Buses {
		inj[i] = -n.Buses[i].Pd
	}
	for gi := range n.Gens {
		bi, err := n.BusIndex(n.Gens[gi].Bus)
		if err != nil {
			return nil, fmt.Errorf("dcflow: %w", err)
		}
		inj[bi] += dispatch[gi]
	}
	return inj, nil
}
