package serve

import (
	"fmt"
	"time"

	"github.com/edsec/edattack/internal/sweep"
	"github.com/edsec/edattack/internal/telemetry"
)

// batchLoop moves admitted jobs onto the run channel. Attack and evaluation
// jobs forward immediately. Sweep jobs are held open for BatchWindow and
// coalesced by case name: every sweep request on the same topology that
// arrives inside the window rides one sweepBatch runnable, whose scenarios
// go through a single combined sweep.Eval pass over the shared Precomp.
// On shutdown the batcher fails everything still queued — accepted but not
// yet running — and closes the run channel so workers drain and exit.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.run)

	pending := make(map[string]*sweepBatch)
	porder := []string{} // flush in arrival order, deterministically
	var flushC <-chan time.Time

	flush := func() {
		for _, name := range porder {
			b := pending[name]
			s.observeBatch(len(b.jobs))
			s.run <- b
		}
		pending = make(map[string]*sweepBatch)
		porder = porder[:0]
		flushC = nil
	}

	for {
		select {
		case <-s.closed:
			for _, name := range porder {
				for _, j := range pending[name].jobs {
					j.fail(0, "unavailable", "server shutting down")
				}
			}
		drain:
			for {
				select {
				case j := <-s.admit:
					j.fail(0, "unavailable", "server shutting down")
				default:
					break drain
				}
			}
			return
		case <-flushC:
			flush()
		case j := <-s.admit:
			s.queueGauge()
			if j.kind != kindSweep {
				s.run <- j
				continue
			}
			if s.cfg.BatchWindow < 0 {
				s.observeBatch(1)
				s.run <- &sweepBatch{jobs: []*job{j}}
				continue
			}
			b, ok := pending[j.req.Case]
			if !ok {
				b = &sweepBatch{}
				pending[j.req.Case] = b
				porder = append(porder, j.req.Case)
			}
			b.jobs = append(b.jobs, j)
			if flushC == nil {
				flushC = time.After(s.cfg.BatchWindow)
			}
		}
	}
}

func (s *Server) observeBatch(size int) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter("serve_batches_total").Inc()
		s.cfg.Metrics.Histogram("serve_batch_size", telemetry.IterBuckets).Observe(float64(size))
		if size > 1 {
			s.cfg.Metrics.Counter("serve_batches_merged_total").Inc()
		}
	}
}

// sweepBatch is a coalesced group of same-topology sweep jobs executed as
// one combined Eval pass.
type sweepBatch struct {
	jobs []*job
}

// execute generates each job's seeded scenario set, concatenates them, and
// runs one sweep.Eval over the shared Precomp, scattering per-job
// aggregates back to each stream. Per-job results are bit-identical to an
// unbatched run: scenario generation is a pure function of (case, request)
// and Eval outcomes are independent of how scenarios are batched.
//
// Deadlines: jobs already expired are failed before generation; the
// combined pass runs under the batch's latest deadline so one short-fused
// job cannot starve its batchmates, and each job re-checks its own context
// at delivery.
func (b *sweepBatch) execute(s *Server) {
	live := make([]*job, 0, len(b.jobs))
	for _, j := range b.jobs {
		if err := j.ctx.Err(); err != nil {
			j.failErr(fmt.Errorf("expired in queue: %w", err))
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	// All jobs in a batch share a case name, hence a topology bundle.
	entry, err := s.topos.get(live[0].req.Case)
	if err != nil {
		for _, j := range live {
			j.fail(0, "bad_request", err.Error())
		}
		return
	}
	pc, err := s.sweepCache.Get(entry.net)
	if err != nil {
		for _, j := range live {
			j.fail(0, "internal", err.Error())
		}
		return
	}

	scenarios := []sweep.Scenario{}
	offsets := make([]int, 0, len(live)+1)
	gen := make([]*job, 0, len(live))
	for _, j := range live {
		scs, _, err := sweep.GenScenarios(pc, j.sweepConfig())
		if err != nil {
			j.fail(0, "bad_request", err.Error())
			continue
		}
		offsets = append(offsets, len(scenarios))
		scenarios = append(scenarios, scs...)
		gen = append(gen, j)
	}
	if len(gen) == 0 {
		return
	}
	offsets = append(offsets, len(scenarios))

	// Latest deadline in the batch bounds the combined pass.
	evalCtx := gen[0].ctx
	latest, _ := evalCtx.Deadline()
	for _, j := range gen[1:] {
		if d, ok := j.ctx.Deadline(); ok && d.After(latest) {
			evalCtx, latest = j.ctx, d
		}
	}
	evalStart := time.Now()
	outcomes, err := sweep.Eval(pc, scenarios, sweep.Options{
		Metrics: s.cfg.Metrics,
		Flight:  s.cfg.Flight,
		Ctx:     evalCtx,
	})
	evalMS := time.Since(evalStart).Seconds() * 1e3
	if err != nil {
		for _, j := range gen {
			j.failErr(err)
		}
		return
	}

	for ji, j := range gen {
		if cerr := j.ctx.Err(); cerr != nil {
			j.failErr(fmt.Errorf("expired during combined eval: %w", cerr))
			continue
		}
		res := &sweepResult{MergedJobs: len(gen), EvalMS: evalMS}
		var cost float64
		for _, out := range outcomes[offsets[ji]:offsets[ji+1]] {
			res.Scenarios++
			if out.Dangerous {
				res.Dangerous++
			}
			if out.Detected {
				res.Detected++
			}
			if out.Success {
				res.Success++
			}
			cost += out.Cost
		}
		if res.Scenarios > 0 {
			res.Rate = float64(res.Success) / float64(res.Scenarios)
			res.MeanCost = cost / float64(res.Scenarios)
		}
		j.out <- streamEvent{
			Event:   "result",
			Sweep:   res,
			QueueMS: float64(evalStart.Sub(j.accepted).Milliseconds()),
			SolveMS: evalMS,
		}
		close(j.out)
	}
}

// sweepConfig maps a sweep request onto the surface generator's config.
// Defaults keep a bare {"case": ...} request meaningful: one mid-day hour,
// one moderate attack magnitude, 64 draws.
func (j *job) sweepConfig() sweep.SurfaceConfig {
	hours := j.req.Hours
	if len(hours) == 0 {
		hours = []float64{12}
	}
	mags := j.req.Magnitudes
	if len(mags) == 0 {
		mags = []float64{0.15}
	}
	return sweep.SurfaceConfig{
		Hours:      hours,
		Magnitudes: mags,
		Draws:      j.req.Draws,
		Seed:       j.req.Seed,
	}
}
