// Package serve is the attack-as-a-service layer: a persistent HTTP daemon
// that accepts attack, evaluation, and sweep-screening requests against the
// benchmark grids and streams results as NDJSON. It is the serving shape
// the paper's threat model implies — an EMS re-runs economic dispatch every
// few minutes against the same wires, so the expensive state (parsed case,
// PTDF/LODF precomputation, dispatch model, simplex root bases) is reused
// across requests instead of being rebuilt per invocation.
//
// The pipeline is: HTTP handler → bounded admission queue → batcher →
// worker pool. Admission is non-blocking (a full queue answers 429), every
// job carries a context with a deadline (default or per-request), and the
// batcher coalesces same-topology sweep jobs arriving within a short window
// into one combined sweep.Eval pass over the shared Precomp. Attack jobs
// reuse a per-topology core.WarmCache, so a repeat attack on the same grid
// seeds every round-1 simplex from the prior run's root basis instead of
// phase I. All reuse is certified: results are bit-identical to a one-shot
// cold run by the solver stack's warm-start contract.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/edsec/edattack/internal/sweep"
	"github.com/edsec/edattack/internal/telemetry"
)

// lineBufPool recycles the NDJSON line-encoding buffers across requests, so
// a saturated stream of small responses does not allocate a fresh buffer
// (and encoder backing) per request.
var lineBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Config tunes a Server. The zero value serves with the defaults below.
type Config struct {
	// Workers is the number of job-execution goroutines (default
	// GOMAXPROCS). Jobs on distinct topologies run concurrently; attack
	// and evaluation jobs on the same topology serialize on the
	// topology's dispatch model.
	Workers int
	// QueueDepth caps the admission queue; a request arriving with the
	// queue full is answered 429 immediately (default 64).
	QueueDepth int
	// BatchWindow is how long the batcher holds a sweep job open to
	// coalesce same-topology sweeps behind it (default 2ms; negative
	// disables coalescing). Attack and evaluation jobs are never held.
	BatchWindow time.Duration
	// DefaultDeadline bounds jobs that do not carry their own deadline_ms
	// (default 60s).
	DefaultDeadline time.Duration
	// MaxTopologies caps the resident per-case state bundles — dispatch
	// model, knowledge, warm-basis cache — evicting least-recently-used
	// (default 8). The sweep Precomp cache is bounded separately at the
	// same cap.
	MaxTopologies int
	// AttackWorkers is core.Options.Workers for attack jobs (default 1:
	// budgeted runs are only reproducible sequentially, and the serving
	// contract is bit-identical answers).
	AttackWorkers int
	// Metrics, when non-nil, receives serve_* counters/gauges/histograms
	// and is forwarded to every solver layer. Flight likewise.
	Metrics *telemetry.Registry
	Flight  *telemetry.Flight
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxTopologies <= 0 {
		c.MaxTopologies = 8
	}
	if c.AttackWorkers <= 0 {
		c.AttackWorkers = 1
	}
	return c
}

// Server is the daemon: handlers, queue, batcher, workers, caches. Create
// with New, expose via Handler, stop with Close.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	admit chan *job
	run   chan runnable
	wg    sync.WaitGroup

	sweepCache *sweep.Cache
	topos      *topoCache

	start     time.Time
	closed    chan struct{}
	closeOnce sync.Once

	mu  sync.Mutex
	seq int64
}

// New builds a Server and starts its batcher and worker goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	sc := sweep.NewCacheCap(cfg.MaxTopologies)
	sc.Metrics = cfg.Metrics
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		admit:      make(chan *job, cfg.QueueDepth),
		run:        make(chan runnable, cfg.QueueDepth),
		sweepCache: sc,
		topos:      newTopoCache(cfg.MaxTopologies, cfg.Metrics),
		start:      time.Now(),
		closed:     make(chan struct{}),
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/attack", s.handleJob(kindAttack))
	s.mux.HandleFunc("/v1/evaluate", s.handleJob(kindEvaluate))
	s.mux.HandleFunc("/v1/sweep", s.handleJob(kindSweep))
	telemetry.MountDebug(s.mux, cfg.Metrics, cfg.Flight)
	s.wg.Add(1)
	go s.batchLoop()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s
}

// Handler returns the HTTP surface: the three /v1 job endpoints, /healthz,
// /v1/stats, and the telemetry debug/metrics endpoints, all on one mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops admission (new requests answer 503), fails queued jobs,
// waits for in-flight jobs to finish, and joins every goroutine the Server
// started. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
	// Stragglers that raced past the closed check into the admission
	// queue after the batcher drained it: fail them so their handlers
	// unblock.
	for {
		select {
		case j := <-s.admit:
			j.fail(http.StatusServiceUnavailable, "unavailable", "server shutting down")
		default:
			return
		}
	}
}

// nextID mints a process-unique job id.
func (s *Server) nextID() string {
	s.mu.Lock()
	s.seq++
	id := s.seq
	s.mu.Unlock()
	return fmt.Sprintf("j%d", id)
}

func (s *Server) counter(name string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(name).Inc()
	}
}

func (s *Server) queueGauge() {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("serve_queue_depth").Set(float64(len(s.admit)))
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// statsDoc is the /v1/stats response. Mem is a fresh runtime.MemStats
// reading (heap live, GC pause p99, GC cycles), also published as mem_*
// gauges on the metrics export.
type statsDoc struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Workers       int                   `json:"workers"`
	QueueDepth    int                   `json:"queue_depth"`
	QueueCap      int                   `json:"queue_cap"`
	Topologies    int                   `json:"topologies"`
	SweepCacheLen int                   `json:"sweep_cache_len"`
	SweepCacheCap int                   `json:"sweep_cache_cap"`
	WarmBases     int                   `json:"warm_bases"`
	Mem           telemetry.MemSnapshot `json:"mem"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	doc := statsDoc{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.admit),
		QueueCap:      cap(s.admit),
		Topologies:    s.topos.len(),
		SweepCacheLen: s.sweepCache.Len(),
		SweepCacheCap: s.sweepCache.Cap(),
		WarmBases:     s.topos.warmBases(),
		Mem:           telemetry.CaptureMemStats(s.cfg.Metrics),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleJob is the shared admission + streaming path for the three job
// endpoints. The handler parses the request, admits the job (or answers
// 429/503), then streams the job's events as NDJSON until the executor
// closes the stream, flushing per line so a slow solve still delivers its
// accepted line immediately.
func (s *Server) handleJob(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		select {
		case <-s.closed:
			s.counter("serve_unavailable_total")
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		default:
		}
		j, status, err := s.newJob(kind, r)
		if err != nil {
			s.counter("serve_bad_request_total")
			http.Error(w, err.Error(), status)
			return
		}
		defer j.cancel()
		// LIFO with the cancel above: the job recycles first, then the
		// captured cancel func (which outlives the struct) fires.
		defer putJob(j)
		select {
		case s.admit <- j:
			s.counter("serve_requests_total")
			s.counter("serve_requests_" + string(kind) + "_total")
			s.queueGauge()
		default:
			s.counter("serve_rejected_total")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		buf := lineBufPool.Get().(*bytes.Buffer)
		defer lineBufPool.Put(buf)
		enc := json.NewEncoder(buf)
		flusher, _ := w.(http.Flusher)
		write := func(ev streamEvent) {
			ev.Job = j.id
			buf.Reset()
			_ = enc.Encode(ev)
			_, _ = w.Write(buf.Bytes())
			if flusher != nil {
				flusher.Flush()
			}
		}
		write(streamEvent{Event: "accepted", Kind: string(kind)})
		for ev := range j.out {
			write(ev)
		}
		wall := time.Since(j.accepted)
		write(streamEvent{Event: "done", WallMS: wall.Seconds() * 1e3})
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Histogram("serve_request_seconds", telemetry.SecondsBuckets).Observe(wall.Seconds())
			s.cfg.Metrics.Histogram("serve_"+string(kind)+"_seconds", telemetry.SecondsBuckets).Observe(wall.Seconds())
		}
	}
}
