package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/telemetry"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJob posts one request body and decodes the NDJSON stream.
func postJob(t *testing.T, url, path string, body any) []streamEvent {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	return events
}

// resultOf asserts the stream is accepted → result → done and returns the
// result event.
func resultOf(t *testing.T, events []streamEvent) streamEvent {
	t.Helper()
	if len(events) != 3 {
		t.Fatalf("got %d events %+v, want accepted/result/done", len(events), events)
	}
	if events[0].Event != "accepted" || events[1].Event != "result" || events[2].Event != "done" {
		t.Fatalf("event sequence %q %q %q, want accepted result done",
			events[0].Event, events[1].Event, events[2].Event)
	}
	return events[1]
}

// errorOf asserts the stream is accepted → error → done and returns the
// error event.
func errorOf(t *testing.T, events []streamEvent) streamEvent {
	t.Helper()
	if len(events) != 3 || events[1].Event != "error" {
		t.Fatalf("got events %+v, want accepted/error/done", events)
	}
	return events[1]
}

func TestEvaluateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	res := resultOf(t, postJob(t, ts.URL, "/v1/evaluate", map[string]any{
		"case": "case9",
		"dlr":  map[string]float64{"1": 260, "7": 240},
	}))
	if res.Evaluation == nil {
		t.Fatalf("result carries no evaluation: %+v", res)
	}

	// The service answer must match the library called directly.
	net, err := cases.Load("case9")
	if err != nil {
		t.Fatal(err)
	}
	model, err := dispatch.BuildModel(net)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range net.DLRLines() {
		ud[li] = net.Lines[li].RateMVA
	}
	k, err := core.NewKnowledge(model, ud)
	if err != nil {
		t.Fatal(err)
	}
	want, err := k.EvaluateAttack(map[int]float64{1: 260, 7: 240})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation.Feasible != want.Feasible || res.Evaluation.GainPct != want.GainPct ||
		res.Evaluation.WorstLine != want.WorstLine {
		t.Errorf("served evaluation %+v, want feasible=%v gain=%v worst=%v",
			res.Evaluation, want.Feasible, want.GainPct, want.WorstLine)
	}
}

func TestAttackBitIdenticalAndWarm(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, Config{Metrics: reg})

	req := map[string]any{"case": "case9"}
	first := resultOf(t, postJob(t, ts.URL, "/v1/attack", req))
	if first.Attack == nil {
		t.Fatalf("no attack in result: %+v", first)
	}
	if first.Attack.WarmBases == 0 {
		t.Errorf("first attack stored no warm bases")
	}
	second := resultOf(t, postJob(t, ts.URL, "/v1/attack", req))

	// Bit-identical across cold and warm-cache-seeded requests, and to a
	// direct library run.
	if !reflect.DeepEqual(first.Attack.DLR, second.Attack.DLR) ||
		first.Attack.GainPct != second.Attack.GainPct ||
		first.Attack.TargetLine != second.Attack.TargetLine {
		t.Errorf("warm repeat diverged: first %+v second %+v", first.Attack, second.Attack)
	}
	entry, err := s.topos.get("case9")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.FindOptimalAttack(entry.statics, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if first.Attack.GainPct != want.GainPct || !reflect.DeepEqual(first.Attack.DLR, want.DLR) {
		t.Errorf("served attack gain %v dlr %v, want %v %v",
			first.Attack.GainPct, first.Attack.DLR, want.GainPct, want.DLR)
	}
	if hits := reg.Counter("core_warmcache_hits_total").Value(); hits == 0 {
		t.Errorf("second attack hit no warm bases")
	}
}

func TestSweepCoalescing(t *testing.T) {
	// Reference: a no-batching server answering the same request.
	_, solo := newTestServer(t, Config{BatchWindow: -1})
	req := map[string]any{
		"case": "case9", "hours": []float64{0, 12}, "magnitudes": []float64{0, 0.2},
		"draws": 16, "seed": 7,
	}
	want := resultOf(t, postJob(t, solo.URL, "/v1/sweep", req))
	if want.Sweep == nil || want.Sweep.MergedJobs != 1 {
		t.Fatalf("unbatched sweep result %+v, want merged_jobs=1", want.Sweep)
	}

	// A wide window so two concurrent requests coalesce.
	_, ts := newTestServer(t, Config{BatchWindow: 300 * time.Millisecond})
	results := make([]streamEvent, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = resultOf(t, postJob(t, ts.URL, "/v1/sweep", req))
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Sweep == nil {
			t.Fatalf("request %d: no sweep result", i)
		}
		if res.Sweep.MergedJobs != 2 {
			t.Errorf("request %d: merged_jobs = %d, want 2", i, res.Sweep.MergedJobs)
		}
		// Batched results are bit-identical to the unbatched pass.
		if res.Sweep.Scenarios != want.Sweep.Scenarios ||
			res.Sweep.Dangerous != want.Sweep.Dangerous ||
			res.Sweep.Detected != want.Sweep.Detected ||
			res.Sweep.Success != want.Sweep.Success ||
			res.Sweep.MeanCost != want.Sweep.MeanCost {
			t.Errorf("request %d: batched %+v diverges from unbatched %+v", i, res.Sweep, want.Sweep)
		}
	}
}

func TestDeadlineExpiredJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ev := errorOf(t, postJob(t, ts.URL, "/v1/attack", map[string]any{
		"case": "case118", "deadline_ms": 1,
	}))
	if ev.Code != "deadline_exceeded" {
		t.Errorf("error code %q (%s), want deadline_exceeded", ev.Code, ev.Error)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		path string
		body string
		want int
	}{
		{"/v1/attack", `{`, http.StatusBadRequest},
		{"/v1/attack", `{}`, http.StatusBadRequest},
		{"/v1/evaluate", `{"case":"case9"}`, http.StatusBadRequest},
		{"/v1/attack", `{"case":"case9","bogus":1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s %q: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/attack")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET job endpoint: status %d, want 405", resp.StatusCode)
	}

	// An unknown case is a stream-level error: the job parses fine and
	// fails at topology build.
	ev := errorOf(t, postJob(t, ts.URL, "/v1/evaluate", map[string]any{
		"case": "case999", "dlr": map[string]float64{"0": 1},
	}))
	if ev.Code != "bad_request" {
		t.Errorf("unknown case: code %q, want bad_request", ev.Code)
	}
}

// blocker occupies a worker until released.
type blocker struct{ release chan struct{} }

func (b blocker) execute(*Server) { <-b.release }

func TestQueueFullAnswers429(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg})

	// Occupy the single worker and fill the run buffer.
	release := make(chan struct{})
	s.run <- blocker{release}
	s.run <- blocker{release}
	defer close(release)

	// Top up the admission queue until it stays full: the batcher can
	// drain at most one job before blocking on the full run channel.
	dummy := func() *job {
		ctx, cancel := context.WithCancel(context.Background())
		return &job{id: "test", kind: kindAttack, ctx: ctx, cancel: cancel,
			out: make(chan streamEvent, 4)}
	}
	deadlineAt := time.Now().Add(5 * time.Second)
	for filled := 0; filled < 2; {
		select {
		case s.admit <- dummy():
			filled = 0
		default:
			filled++
			time.Sleep(time.Millisecond)
		}
		if time.Now().After(deadlineAt) {
			t.Fatal("could not saturate admission queue")
		}
	}

	resp, err := http.Post(ts.URL+"/v1/attack", "application/json",
		strings.NewReader(`{"case":"case9"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if v := reg.Counter("serve_rejected_total").Value(); v != 1 {
		t.Errorf("serve_rejected_total = %d, want 1", v)
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	resultOf(t, postJob(t, ts.URL, "/v1/evaluate", map[string]any{
		"case": "case9", "dlr": map[string]float64{"1": 260},
	}))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Workers != 2 || doc.QueueCap != 8 || doc.Topologies != 1 {
		t.Errorf("stats %+v, want workers=2 queue_cap=8 topologies=1", doc)
	}

	// The debug/metrics surface is mounted on the same listener.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics status %d", resp.StatusCode)
	}
}

func TestCloseAnswers503(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, err := http.Post(ts.URL+"/v1/attack", "application/json",
		strings.NewReader(`{"case":"case9"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status after Close = %d, want 503", resp.StatusCode)
	}
	// Idempotent.
	s.Close()
}

func TestTopoCacheEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	tc := newTopoCache(2, reg)
	for _, name := range []string{"case3", "case9", "case3", "case30"} {
		if _, err := tc.get(name); err != nil {
			t.Fatal(err)
		}
	}
	// case9 was least recently used at capacity overflow.
	if tc.len() != 2 {
		t.Fatalf("len = %d, want 2", tc.len())
	}
	if _, ok := tc.entries["case9"]; ok {
		t.Errorf("case9 survived eviction; resident: %v", keysOf(tc))
	}
	if v := reg.Counter("serve_topo_evictions_total").Value(); v != 1 {
		t.Errorf("evictions = %d, want 1", v)
	}
	if v := reg.Counter("serve_topo_hits_total").Value(); v != 1 {
		t.Errorf("hits = %d, want 1", v)
	}
}

func keysOf(tc *topoCache) []string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var out []string
	for name := range tc.entries {
		out = append(out, name)
	}
	return out
}

func TestSweepDefaultsAndStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	res := resultOf(t, postJob(t, ts.URL, "/v1/sweep", map[string]any{"case": "case9", "draws": 8}))
	if res.Sweep == nil || res.Sweep.Scenarios != 8 {
		t.Fatalf("sweep result %+v, want 8 scenarios", res.Sweep)
	}
	if res.Sweep.MergedJobs != 1 {
		t.Errorf("merged_jobs = %d, want 1", res.Sweep.MergedJobs)
	}
}

func TestJobIDsUnique(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := s.nextID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if fmt.Sprintf("j%d", 101) != s.nextID() {
		t.Errorf("ids not sequential")
	}
}
