package serve

import (
	"container/list"
	"sync"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/sweep"
	"github.com/edsec/edattack/internal/telemetry"
)

// topoEntry bundles the expensive per-topology state the daemon keeps warm
// across requests: the parsed network, its dispatch model, the attacker
// knowledge built from the static-rating convention, and the warm-basis
// cache seeding repeat attacks. The dispatch model warm-starts in place and
// is not safe for concurrent solves, so attack and evaluation jobs on one
// entry serialize on mu; sweep jobs never touch the model (they use the
// lock-free proportional dispatch) and only read net.
type topoEntry struct {
	name string
	net  *grid.Network
	key  uint64

	mu      sync.Mutex
	model   *dispatch.Model
	statics *core.Knowledge
	warm    *core.WarmCache
}

// knowledge returns the entry's attacker knowledge: the cached
// static-rating bundle when the request carries no true_dlr, else an
// ephemeral Knowledge over the same model. Callers hold entry.mu.
func (e *topoEntry) knowledge(trueDLR map[int]float64) (*core.Knowledge, error) {
	if len(trueDLR) == 0 {
		return e.statics, nil
	}
	return core.NewKnowledge(e.model, trueDLR)
}

// topoCache is the LRU of resident topoEntry bundles, keyed by case name.
type topoCache struct {
	metrics *telemetry.Registry

	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

func newTopoCache(cap int, metrics *telemetry.Registry) *topoCache {
	if cap < 1 {
		cap = 1
	}
	return &topoCache{
		metrics: metrics,
		cap:     cap,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the resident bundle for the named case, building (and, at
// capacity, evicting least-recently-used) as needed. The build runs outside
// the cache lock — two first-sight requests may both build; the loser's
// bundle is dropped and the winner's kept, so later requests share one
// warm-basis cache.
func (tc *topoCache) get(name string) (*topoEntry, error) {
	tc.mu.Lock()
	if el, ok := tc.entries[name]; ok {
		tc.order.MoveToFront(el)
		tc.mu.Unlock()
		tc.counter("serve_topo_hits_total")
		return el.Value.(*topoEntry), nil
	}
	tc.mu.Unlock()
	tc.counter("serve_topo_misses_total")

	entry, err := buildTopoEntry(name, tc.metrics)
	if err != nil {
		return nil, err
	}

	tc.mu.Lock()
	defer tc.mu.Unlock()
	if el, ok := tc.entries[name]; ok {
		// Lost the build race; use the resident bundle.
		tc.order.MoveToFront(el)
		return el.Value.(*topoEntry), nil
	}
	tc.entries[name] = tc.order.PushFront(entry)
	for tc.order.Len() > tc.cap {
		back := tc.order.Back()
		tc.order.Remove(back)
		delete(tc.entries, back.Value.(*topoEntry).name)
		tc.counter("serve_topo_evictions_total")
	}
	tc.gauge()
	return entry, nil
}

// buildTopoEntry does the cold-start work: parse the case, build the
// dispatch model, and seed attacker knowledge with the static ratings of
// every DLR line (the paper's convention and the CLI default).
func buildTopoEntry(name string, metrics *telemetry.Registry) (*topoEntry, error) {
	net, err := cases.Load(name)
	if err != nil {
		return nil, err
	}
	key, err := sweep.TopologyKey(net)
	if err != nil {
		return nil, err
	}
	model, err := dispatch.BuildModel(net)
	if err != nil {
		return nil, err
	}
	// Pin a workspace to the resident model for its whole cache lifetime:
	// evaluation jobs (and the sequential phases of attack jobs) then reuse
	// one set of solver buffers across every request that hits this
	// topology. The entry lock already serializes model-touching solves, so
	// single-owner workspace discipline holds; core's per-task checkouts
	// save and restore this workspace around their own.
	model.Workspace = lp.NewWorkspace()
	ud := map[int]float64{}
	for _, li := range net.DLRLines() {
		ud[li] = net.Lines[li].RateMVA
	}
	statics, err := core.NewKnowledge(model, ud)
	if err != nil {
		return nil, err
	}
	warm := core.NewWarmCache()
	warm.Metrics = metrics
	return &topoEntry{
		name:    name,
		net:     net,
		key:     key,
		model:   model,
		statics: statics,
		warm:    warm,
	}, nil
}

func (tc *topoCache) len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.order.Len()
}

// warmBases sums the stored root bases across resident topologies.
func (tc *topoCache) warmBases() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	total := 0
	for el := tc.order.Front(); el != nil; el = el.Next() {
		total += el.Value.(*topoEntry).warm.Len()
	}
	return total
}

func (tc *topoCache) counter(name string) {
	if tc.metrics != nil {
		tc.metrics.Counter(name).Inc()
	}
}

func (tc *topoCache) gauge() {
	if tc.metrics != nil {
		tc.metrics.Gauge("serve_topologies").Set(float64(tc.order.Len()))
	}
}
