package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// postJobErr is the goroutine-safe postJob: it returns errors instead of
// failing the test, so concurrent clients can report through a channel.
func postJobErr(url, path string, body any) ([]streamEvent, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// resultOfErr is resultOf without the testing.T dependency.
func resultOfErr(events []streamEvent) (streamEvent, error) {
	if len(events) != 3 || events[0].Event != "accepted" || events[1].Event != "result" || events[2].Event != "done" {
		return streamEvent{}, fmt.Errorf("got events %+v, want accepted/result/done", events)
	}
	return events[1], nil
}

// TestServeConcurrentSameTopology fires a burst of mixed evaluate and sweep
// requests at one server, all on case9, from many goroutines at once — the
// concurrency witness the race detector runs in CI. Every request must
// succeed, every evaluate must report the identical verdict, and every
// same-seed sweep must report the identical aggregate: concurrency over a
// shared topology bundle must not perturb results.
func TestServeConcurrentSameTopology(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	evalBody := map[string]any{
		"case": "case9",
		"dlr":  map[string]float64{"1": 260, "7": 240},
	}
	sweepBody := map[string]any{
		"case":  "case9",
		"draws": 8,
		"seed":  7,
	}

	// Serial references: the verdicts every concurrent request must match.
	wantEval, err := resultOfErr(mustPost(t, ts.URL, "/v1/evaluate", evalBody))
	if err != nil {
		t.Fatal(err)
	}
	wantSweep, err := resultOfErr(mustPost(t, ts.URL, "/v1/sweep", sweepBody))
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				events, err := postJobErr(ts.URL, "/v1/evaluate", evalBody)
				if err == nil {
					var res streamEvent
					if res, err = resultOfErr(events); err == nil {
						if *res.Evaluation != *wantEval.Evaluation {
							err = fmt.Errorf("evaluate diverged: %+v vs %+v", res.Evaluation, wantEval.Evaluation)
						}
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("client %d evaluate %d: %w", c, i, err)
					return
				}
				events, err = postJobErr(ts.URL, "/v1/sweep", sweepBody)
				if err == nil {
					var res streamEvent
					if res, err = resultOfErr(events); err == nil {
						got, want := *res.Sweep, *wantSweep.Sweep
						// Batching is load-dependent; everything else is not.
						got.MergedJobs, want.MergedJobs = 0, 0
						got.EvalMS, want.EvalMS = 0, 0
						if got != want {
							err = fmt.Errorf("sweep diverged: %+v vs %+v", res.Sweep, wantSweep.Sweep)
						}
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("client %d sweep %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// mustPost adapts postJob for use before the concurrent phase (still on the
// test goroutine, so t.Fatalf is fine).
func mustPost(t *testing.T, url, path string, body any) []streamEvent {
	t.Helper()
	return postJob(t, url, path, body)
}
