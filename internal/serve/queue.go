package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/edsec/edattack/internal/core"
)

// jobKind tags the three request families.
type jobKind string

const (
	kindAttack   jobKind = "attack"
	kindEvaluate jobKind = "evaluate"
	kindSweep    jobKind = "sweep"
)

// jobRequest is the union request body. Fields are per kind:
//
//	attack:   case, max_nodes, max_rounds, rel_gap, true_dlr, deadline_ms
//	evaluate: case, dlr, true_dlr, deadline_ms
//	sweep:    case, hours, magnitudes, draws, seed, deadline_ms
//
// true_dlr defaults to the static ratings of the case's DLR lines (the
// paper's convention); dlr is the manipulated-rating vector to evaluate.
type jobRequest struct {
	Case       string          `json:"case"`
	DeadlineMS int64           `json:"deadline_ms"`
	MaxNodes   int             `json:"max_nodes"`
	MaxRounds  int             `json:"max_rounds"`
	RelGap     float64         `json:"rel_gap"`
	TrueDLR    map[int]float64 `json:"true_dlr"`
	DLR        map[int]float64 `json:"dlr"`
	Hours      []float64       `json:"hours"`
	Magnitudes []float64       `json:"magnitudes"`
	Draws      int             `json:"draws"`
	Seed       int64           `json:"seed"`
}

// streamEvent is one NDJSON response line.
type streamEvent struct {
	Event      string        `json:"event"`
	Job        string        `json:"job"`
	Kind       string        `json:"kind,omitempty"`
	Error      string        `json:"error,omitempty"`
	Code       string        `json:"code,omitempty"`
	Attack     *attackResult `json:"attack,omitempty"`
	Evaluation *evalResult   `json:"evaluation,omitempty"`
	Sweep      *sweepResult  `json:"sweep,omitempty"`
	WallMS     float64       `json:"wall_ms,omitempty"`
	QueueMS    float64       `json:"queue_ms,omitempty"`
	SolveMS    float64       `json:"solve_ms,omitempty"`
}

// attackResult is the attack endpoint's result payload.
type attackResult struct {
	TargetLine    int             `json:"target_line"`
	Direction     int             `json:"direction"`
	GainPct       float64         `json:"gain_pct"`
	DLR           map[int]float64 `json:"dlr"`
	Exact         bool            `json:"exact"`
	Nodes         int             `json:"nodes"`
	Rounds        int             `json:"rounds"`
	PredictedCost float64         `json:"predicted_cost"`
	WarmBases     int             `json:"warm_bases"`
}

// evalResult is the evaluate endpoint's result payload.
type evalResult struct {
	Feasible  bool    `json:"feasible"`
	GainPct   float64 `json:"gain_pct"`
	WorstLine int     `json:"worst_line"`
	Direction int     `json:"direction"`
	Cost      float64 `json:"cost,omitempty"`
}

// sweepResult is the sweep endpoint's result payload. MergedJobs reports
// how many requests shared the combined Eval pass this job rode in (1 =
// unbatched).
type sweepResult struct {
	Scenarios  int     `json:"scenarios"`
	Dangerous  int     `json:"dangerous"`
	Detected   int     `json:"detected"`
	Success    int     `json:"success"`
	Rate       float64 `json:"success_rate"`
	MeanCost   float64 `json:"mean_cost"`
	MergedJobs int     `json:"merged_jobs"`
	EvalMS     float64 `json:"eval_ms"`
}

// job is one admitted request flowing through the pipeline. The executor
// (worker or batcher) sends at most a handful of events into out and closes
// it exactly once; the handler drains until close.
type job struct {
	id       string
	kind     jobKind
	req      jobRequest
	ctx      context.Context
	cancel   context.CancelFunc
	accepted time.Time
	out      chan streamEvent
}

// jobPool recycles job structs across requests. The out channel is the one
// field that cannot be reused (it is closed per job), so each checkout gets
// a fresh channel; putJob zeroes the struct so a pooled job never pins a
// finished request's maps or context.
var jobPool = sync.Pool{New: func() any { return new(job) }}

// putJob returns a drained job to the pool. Callers must be past the
// executor's close(j.out): the handler only calls this after the range over
// out ends, at which point no other goroutine holds the job.
func putJob(j *job) {
	*j = job{}
	jobPool.Put(j)
}

// newJob parses and validates a request body into an admitted-ready job.
// The returned int is the HTTP status for a rejection.
func (s *Server) newJob(kind jobKind, r *http.Request) (*job, int, error) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	// Canonicalize so "Case118" and "case118" share one topology bundle
	// (cases.Load is itself case-insensitive).
	req.Case = strings.ToLower(strings.TrimSpace(req.Case))
	if req.Case == "" {
		return nil, http.StatusBadRequest, errors.New("missing required field: case")
	}
	if kind == kindEvaluate && len(req.DLR) == 0 {
		return nil, http.StatusBadRequest, errors.New("evaluate needs a dlr rating map")
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	j := jobPool.Get().(*job)
	*j = job{
		id:       s.nextID(),
		kind:     kind,
		req:      req,
		ctx:      ctx,
		cancel:   cancel,
		accepted: time.Now(),
		out:      make(chan streamEvent, 4),
	}
	return j, 0, nil
}

// fail emits one error event and closes the job's stream.
func (j *job) fail(status int, code, msg string) {
	j.out <- streamEvent{Event: "error", Code: code, Error: msg}
	close(j.out)
}

// failErr maps solver errors onto stream error codes; context errors keep
// their identity so clients can tell a deadline from a crash.
func (j *job) failErr(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		j.fail(0, "deadline_exceeded", err.Error())
	case errors.Is(err, context.Canceled):
		j.fail(0, "canceled", err.Error())
	case errors.Is(err, core.ErrNoFeasibleAttack):
		j.fail(0, "no_feasible_attack", err.Error())
	default:
		j.fail(0, "internal", err.Error())
	}
}

// runnable is one unit the worker pool executes: a single attack/evaluate
// job, or a coalesced batch of same-topology sweep jobs.
type runnable interface {
	execute(s *Server)
}

// workerLoop drains the run channel until the batcher closes it.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for r := range s.run {
		r.execute(s)
	}
}

// execute runs a single attack or evaluation job against its topology's
// shared state. The topology lock serializes model-touching solves — the
// dispatch model is warm-started and not safe for concurrent use — while
// jobs on other topologies proceed on other workers.
func (j *job) execute(s *Server) {
	queued := time.Since(j.accepted)
	if err := j.ctx.Err(); err != nil {
		j.failErr(fmt.Errorf("expired in queue after %s: %w", queued.Round(time.Millisecond), err))
		return
	}
	entry, err := s.topos.get(j.req.Case)
	if err != nil {
		j.fail(0, "bad_request", err.Error())
		return
	}
	entry.mu.Lock()
	defer entry.mu.Unlock()
	solveStart := time.Now()
	switch j.kind {
	case kindAttack:
		j.executeAttack(s, entry, queued, solveStart)
	case kindEvaluate:
		j.executeEvaluate(s, entry, queued, solveStart)
	default:
		j.fail(0, "internal", fmt.Sprintf("unexpected job kind %q", j.kind))
	}
}

func (j *job) executeAttack(s *Server, entry *topoEntry, queued time.Duration, solveStart time.Time) {
	k, err := entry.knowledge(j.req.TrueDLR)
	if err != nil {
		j.fail(0, "bad_request", err.Error())
		return
	}
	att, err := core.FindOptimalAttack(k, core.Options{
		MaxNodes:  j.req.MaxNodes,
		MaxRounds: j.req.MaxRounds,
		RelGap:    j.req.RelGap,
		Workers:   s.cfg.AttackWorkers,
		Ctx:       j.ctx,
		Warm:      entry.warm,
		Metrics:   s.cfg.Metrics,
		Flight:    s.cfg.Flight,
	})
	if err != nil {
		j.failErr(err)
		return
	}
	j.out <- streamEvent{
		Event: "result",
		Attack: &attackResult{
			TargetLine:    att.TargetLine,
			Direction:     att.Direction,
			GainPct:       att.GainPct,
			DLR:           att.DLR,
			Exact:         att.Exact,
			Nodes:         att.Nodes,
			Rounds:        att.Rounds,
			PredictedCost: att.PredictedCost,
			WarmBases:     entry.warm.Len(),
		},
		QueueMS: queued.Seconds() * 1e3,
		SolveMS: time.Since(solveStart).Seconds() * 1e3,
	}
	close(j.out)
}

func (j *job) executeEvaluate(s *Server, entry *topoEntry, queued time.Duration, solveStart time.Time) {
	k, err := entry.knowledge(j.req.TrueDLR)
	if err != nil {
		j.fail(0, "bad_request", err.Error())
		return
	}
	ev, err := k.EvaluateAttack(j.req.DLR)
	if err != nil {
		j.failErr(err)
		return
	}
	res := &evalResult{
		Feasible:  ev.Feasible,
		GainPct:   ev.GainPct,
		WorstLine: ev.WorstLine,
		Direction: ev.Direction,
	}
	if ev.Dispatch != nil {
		res.Cost = ev.Dispatch.Cost
	}
	j.out <- streamEvent{
		Event:      "result",
		Evaluation: res,
		QueueMS:    queued.Seconds() * 1e3,
		SolveMS:    time.Since(solveStart).Seconds() * 1e3,
	}
	close(j.out)
}
