// Package cliobs wires the telemetry layer into command-line flags shared by
// the cmd/ binaries: -trace (JSONL span log), -metrics (JSON snapshot on
// exit), -debug (pprof/expvar/metrics/flight HTTP listener), -flight (flight
// recorder dump on exit), and -journal (hash-chained event log). All fields
// are nil when the corresponding flag is absent, so passing them straight
// into solver options keeps the zero-cost-when-off contract.
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/edsec/edattack/internal/telemetry"
)

// WorkersFlag registers the -workers flag shared by the cmd/ binaries and
// returns the destination. 0 (the default) means one worker per CPU; 1
// forces the sequential reference schedule.
func WorkersFlag() *int {
	return flag.Int("workers", 0,
		"solver worker goroutines (0 = one per CPU, 1 = sequential)")
}

// Flags holds the destinations of the shared observability flags.
type Flags struct {
	Trace, Metrics, Debug, Flight, Journal *string
}

// RegisterFlags registers the shared observability flags (-trace, -metrics,
// -debug, -flight, -journal) on the default flag set. Call before
// flag.Parse; pass the parsed values to Flags.Init.
func RegisterFlags() *Flags {
	return &Flags{
		Trace:   flag.String("trace", "", "write a JSONL span trace to this file"),
		Metrics: flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit"),
		Debug:   flag.String("debug", "", "serve pprof/expvar/metrics/flight on this address (e.g. localhost:6060)"),
		Flight:  flag.String("flight", "", "record solver flight data and dump it as JSON to this file on exit"),
		Journal: flag.String("journal", "", "append a hash-chained JSONL journal of run events to this file"),
	}
}

// Init opens the sinks selected by the parsed flags.
func (f *Flags) Init() (*Setup, error) {
	return InitConfig(Config{
		Trace:   *f.Trace,
		Metrics: *f.Metrics,
		Debug:   *f.Debug,
		Flight:  *f.Flight,
		Journal: *f.Journal,
	})
}

// Config selects which observability sinks to open; empty strings disable
// each one.
type Config struct {
	// Trace is a JSONL span log path; Metrics a JSON snapshot path
	// (written on Close); Debug a listen address for the debug HTTP
	// server; Flight a flight-recorder dump path (written on Close);
	// Journal a hash-chained JSONL event log path (appended to, with the
	// existing chain verified first).
	Trace, Metrics, Debug, Flight, Journal string
}

// Setup holds the observability sinks selected on the command line.
type Setup struct {
	// Metrics is non-nil when a -metrics file or -debug listener was
	// requested.
	Metrics *telemetry.Registry
	// Tracer is non-nil when a -trace file was requested.
	Tracer *telemetry.Tracer
	// Flight is non-nil when a -flight file or -debug listener was
	// requested.
	Flight *telemetry.Flight
	// Journal is non-nil when a -journal file was requested. It continues
	// the file's existing hash chain; a journal failing verification is
	// refused rather than extended.
	Journal *telemetry.Journal

	metricsPath string
	flightPath  string
	traceFile   *os.File
	journalFile *os.File
	debugClose  func() error
}

// Init opens the requested sinks. Empty strings disable each one. The
// returned Setup must be Closed to flush the metrics snapshot, the flight
// dump, and the trace stream. Kept as a three-argument form for callers
// predating the flight/journal flags.
func Init(tracePath, metricsPath, debugAddr string) (*Setup, error) {
	return InitConfig(Config{Trace: tracePath, Metrics: metricsPath, Debug: debugAddr})
}

// InitConfig opens the sinks selected by cfg.
func InitConfig(cfg Config) (*Setup, error) {
	s := &Setup{metricsPath: cfg.Metrics, flightPath: cfg.Flight}
	if cfg.Metrics != "" || cfg.Debug != "" {
		s.Metrics = telemetry.NewRegistry()
	}
	if cfg.Flight != "" || cfg.Debug != "" {
		s.Flight = telemetry.NewFlight(0)
	}
	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return nil, fmt.Errorf("cliobs: trace file: %w", err)
		}
		s.traceFile = f
		s.Tracer = telemetry.NewTracer(f)
	}
	if cfg.Journal != "" {
		f, err := os.OpenFile(cfg.Journal, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("cliobs: journal file: %w", err)
		}
		// Continue the existing hash chain rather than overwriting the
		// log; a journal that fails verification must not be extended, or
		// the tamper evidence would be buried under valid records.
		seq, last, err := telemetry.VerifyJournalTail(f)
		if err != nil {
			_ = f.Close()
			s.closeFiles()
			return nil, fmt.Errorf("cliobs: existing journal %s fails verification (refusing to append): %w", cfg.Journal, err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			_ = f.Close()
			s.closeFiles()
			return nil, fmt.Errorf("cliobs: journal file: %w", err)
		}
		s.journalFile = f
		s.Journal = telemetry.ResumeJournal(f, uint64(seq), last)
	}
	if cfg.Debug != "" {
		bound, closeFn, err := telemetry.ServeDebug(cfg.Debug, s.Metrics, s.Flight)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("cliobs: debug listener: %w", err)
		}
		s.debugClose = closeFn
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/pprof/ (metrics at /metrics, flight at /debug/flight)\n", bound)
	}
	return s, nil
}

// Close writes the metrics snapshot and the flight dump and releases every
// sink. Safe on a nil receiver and safe to call once after partial
// initialization.
func (s *Setup) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	writeDump := func(path, what string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cliobs: %s file: %w", what, err)
			}
			return
		}
		if err := write(f); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cliobs: %s write: %w", what, err)
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.Metrics != nil {
		writeDump(s.metricsPath, "metrics", s.Metrics.WriteJSON)
	}
	if s.Flight != nil {
		writeDump(s.flightPath, "flight", s.Flight.WriteJSON)
	}
	if err := s.closeFiles(); err != nil && firstErr == nil {
		firstErr = err
	}
	if s.debugClose != nil {
		if err := s.debugClose(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Setup) closeFiles() error {
	var firstErr error
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil {
			firstErr = err
		}
		s.traceFile = nil
	}
	if s.journalFile != nil {
		if err := s.journalFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.journalFile = nil
	}
	return firstErr
}
