// Package cliobs wires the telemetry layer into command-line flags shared by
// the cmd/ binaries: -trace (JSONL span log), -metrics (JSON snapshot on
// exit), and -debug (pprof/expvar/metrics HTTP listener). All fields are nil
// when the corresponding flag is absent, so passing them straight into
// solver options keeps the zero-cost-when-off contract.
package cliobs

import (
	"flag"
	"fmt"
	"os"

	"github.com/edsec/edattack/internal/telemetry"
)

// WorkersFlag registers the -workers flag shared by the cmd/ binaries and
// returns the destination. 0 (the default) means one worker per CPU; 1
// forces the sequential reference schedule.
func WorkersFlag() *int {
	return flag.Int("workers", 0,
		"solver worker goroutines (0 = one per CPU, 1 = sequential)")
}

// Setup holds the observability sinks selected on the command line.
type Setup struct {
	// Metrics is non-nil when a -metrics file or -debug listener was
	// requested.
	Metrics *telemetry.Registry
	// Tracer is non-nil when a -trace file was requested.
	Tracer *telemetry.Tracer

	metricsPath string
	traceFile   *os.File
	debugClose  func() error
}

// Init opens the requested sinks. Empty strings disable each one. The
// returned Setup must be Closed to flush the metrics snapshot and the trace
// stream.
func Init(tracePath, metricsPath, debugAddr string) (*Setup, error) {
	s := &Setup{metricsPath: metricsPath}
	if metricsPath != "" || debugAddr != "" {
		s.Metrics = telemetry.NewRegistry()
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("cliobs: trace file: %w", err)
		}
		s.traceFile = f
		s.Tracer = telemetry.NewTracer(f)
	}
	if debugAddr != "" {
		bound, closeFn, err := telemetry.ServeDebug(debugAddr, s.Metrics)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("cliobs: debug listener: %w", err)
		}
		s.debugClose = closeFn
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/debug/pprof/ (metrics at /metrics)\n", bound)
	}
	return s, nil
}

// Close writes the metrics snapshot and releases every sink. Safe on a nil
// receiver and safe to call once after partial initialization.
func (s *Setup) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	if s.metricsPath != "" && s.Metrics != nil {
		f, err := os.Create(s.metricsPath)
		if err != nil {
			firstErr = fmt.Errorf("cliobs: metrics file: %w", err)
		} else {
			if err := s.Metrics.WriteJSON(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cliobs: metrics write: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := s.closeFiles(); err != nil && firstErr == nil {
		firstErr = err
	}
	if s.debugClose != nil {
		if err := s.debugClose(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Setup) closeFiles() error {
	if s.traceFile == nil {
		return nil
	}
	err := s.traceFile.Close()
	s.traceFile = nil
	return err
}
