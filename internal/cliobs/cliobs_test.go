package cliobs

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/edsec/edattack/internal/telemetry"
)

// TestInitConfigEmpty: no sinks requested means every field stays nil —
// the zero-cost-when-off contract the solvers rely on.
func TestInitConfigEmpty(t *testing.T) {
	s, err := InitConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics != nil || s.Tracer != nil || s.Flight != nil || s.Journal != nil {
		t.Errorf("empty config opened sinks: %+v", s)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := (*Setup)(nil).Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
}

// TestInitConfigFileSinks opens metrics, flight, and trace sinks, records
// through them, and checks Close flushes parseable dumps.
func TestInitConfigFileSinks(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Trace:   filepath.Join(dir, "trace.jsonl"),
		Metrics: filepath.Join(dir, "metrics.json"),
		Flight:  filepath.Join(dir, "flight.json"),
	}
	s, err := InitConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics == nil || s.Tracer == nil || s.Flight == nil {
		t.Fatalf("sinks not opened: metrics=%v tracer=%v flight=%v", s.Metrics, s.Tracer, s.Flight)
	}
	s.Metrics.Counter("lp_solves_total").Add(3)
	s.Flight.Record(telemetry.FlightEvent{Kind: telemetry.FlightLP, Pivots: 7})
	sp := s.Tracer.Start("test.span")
	sp.End()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	mf, err := os.Open(cfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	data, _ := io.ReadAll(mf)
	if !strings.Contains(string(data), `"lp_solves_total": 3`) {
		t.Errorf("metrics dump missing counter:\n%s", data)
	}

	ff, err := os.Open(cfg.Flight)
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Close()
	rec, err := telemetry.ReadFlight(ff)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total != 1 || rec.Events[0].Pivots != 7 {
		t.Errorf("flight dump: %+v", rec)
	}

	tf, err := os.Open(cfg.Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	spans, err := telemetry.ReadSpans(tf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "test.span" {
		t.Errorf("trace: %+v", spans)
	}
}

// TestInitConfigDebug: a -debug listener forces both the registry and the
// flight recorder on and serves them over HTTP.
func TestInitConfigDebug(t *testing.T) {
	s, err := InitConfig(Config{Debug: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Metrics == nil || s.Flight == nil {
		t.Fatal("debug listener did not force metrics/flight on")
	}
	s.Metrics.Counter("probe_total").Inc()
	s.Flight.Record(telemetry.FlightEvent{Kind: telemetry.FlightNode, Target: 2, Dir: 1, Node: 1, Label: "integral"})

	// InitConfig only reports its bound address on stderr, so the HTTP
	// endpoints are probed through a second listener sharing the same
	// registry and recorder.
	bound, closeFn, err := telemetry.ServeDebug("127.0.0.1:0", s.Metrics, s.Flight)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "probe_total 1") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/debug/flight"); code != 200 || !strings.Contains(body, `"kind": "node"`) {
		t.Errorf("/debug/flight: %d\n%s", code, body)
	}
	if code, body := get("/debug/tree.dot"); code != 200 || !strings.Contains(body, "digraph bnb") {
		t.Errorf("/debug/tree.dot: %d\n%s", code, body)
	}
}

// TestJournalAppendAndResume: a second Init continues the hash chain, and a
// tampered journal is refused.
func TestJournalAppendAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")

	s1, err := InitConfig(Config{Journal: path})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Journal == nil {
		t.Fatal("journal sink not opened")
	}
	if err := s1.Journal.Append("run.start", map[string]any{"case": "case9"}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := InitConfig(Config{Journal: path})
	if err != nil {
		t.Fatalf("reopen verified journal: %v", err)
	}
	if err := s2.Journal.Append("run.start", map[string]any{"case": "case30"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.VerifyJournal(f)
	f.Close()
	if err != nil || n != 2 {
		t.Fatalf("chained journal: %d records, err %v", n, err)
	}

	// Flip one byte in the first record: Init must refuse to extend it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "case9", "caseX", 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := InitConfig(Config{Journal: path}); err == nil {
		t.Fatal("tampered journal accepted for append")
	}
}

// TestInitCompat covers the legacy three-argument Init.
func TestInitCompat(t *testing.T) {
	dir := t.TempDir()
	s, err := Init("", filepath.Join(dir, "m.json"), "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics == nil || s.Flight != nil {
		t.Errorf("compat init: metrics=%v flight=%v", s.Metrics, s.Flight)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "m.json")); err != nil {
		t.Errorf("metrics snapshot not written: %v", err)
	}
}
