package sparse

import (
	"math/rand"
	"testing"
)

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.CSR()
}

// TestMulDenseMatchesMulVec pins the CSR·dense-batch kernel column-by-column
// against MulVec, across shapes straddling the panel width.
func TestMulDenseMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {6, 9, 5}, {12, 7, 255}, {4, 30, 256}, {8, 16, 300},
	}
	for _, sh := range shapes {
		for _, density := range []float64{0.05, 0.4, 1.0} {
			a := randomCSR(rng, sh.m, sh.k, density)
			x := make([]float64, sh.k*sh.n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y, err := a.MulDense(x, sh.n)
			if err != nil {
				t.Fatal(err)
			}
			col := make([]float64, sh.k)
			for j := 0; j < sh.n; j++ {
				for i := 0; i < sh.k; i++ {
					col[i] = x[i*sh.n+j]
				}
				want, err := a.MulVec(col)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < sh.m; i++ {
					if y[i*sh.n+j] != want[i] {
						t.Fatalf("shape %v density %g: (%d,%d) = %v, MulVec %v",
							sh, density, i, j, y[i*sh.n+j], want[i])
					}
				}
			}
		}
	}
}

func TestMulDenseShapeErrors(t *testing.T) {
	a := randomCSR(rand.New(rand.NewSource(1)), 3, 4, 0.5)
	if _, err := a.MulDense(make([]float64, 5), 2); err == nil {
		t.Fatal("bad operand size accepted")
	}
	if err := a.MulDenseInto(make([]float64, 5), make([]float64, 8), 2); err == nil {
		t.Fatal("bad dst size accepted")
	}
}
