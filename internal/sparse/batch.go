package sparse

import "fmt"

// batchPanel is the column-panel width of the CSR·dense kernel, matching
// the blocked dense GEMM in internal/mat so both engines exhibit the same
// cache behavior on wide scenario batches.
const batchPanel = 256

// MulDense computes Y = A·X where X is a dense a.Cols×xcols matrix in
// row-major storage (row i at x[i*xcols:(i+1)*xcols]). The result Y is
// returned row-major with the same column count.
//
// Column j of the result is bit-identical to MulVec(column j of X): within
// a row, stored entries are visited in ascending column order — the same
// order the dense kernels use — and entries absent from the CSR are exact
// zeros whose terms cannot change a float64 accumulator. The scenario-sweep
// engine exploits this to switch between dense and sparse shift-factor
// products without perturbing a single output bit.
func (a *CSR) MulDense(x []float64, xcols int) ([]float64, error) {
	if xcols < 0 || len(x) != a.Cols*xcols {
		return nil, fmt.Errorf("MulDense: %d values for %dx%d operand: %w", len(x), a.Cols, xcols, ErrShape)
	}
	y := make([]float64, a.Rows*xcols)
	if err := a.MulDenseInto(y, x, xcols); err != nil {
		return nil, err
	}
	return y, nil
}

// MulDenseInto is MulDense writing into caller storage: y must hold
// a.Rows·xcols values and must not alias x. y is overwritten.
func (a *CSR) MulDenseInto(y, x []float64, xcols int) error {
	if xcols < 0 || len(x) != a.Cols*xcols {
		return fmt.Errorf("MulDenseInto: %d values for %dx%d operand: %w", len(x), a.Cols, xcols, ErrShape)
	}
	if len(y) != a.Rows*xcols {
		return fmt.Errorf("MulDenseInto: dst %d values, want %d: %w", len(y), a.Rows*xcols, ErrShape)
	}
	for jb := 0; jb < xcols; jb += batchPanel {
		je := jb + batchPanel
		if je > xcols {
			je = xcols
		}
		for i := 0; i < a.Rows; i++ {
			orow := y[i*xcols+jb : i*xcols+je]
			for j := range orow {
				orow[j] = 0
			}
			lo, hi := a.RowPtr[i], a.RowPtr[i+1]
			for k := lo; k < hi; k++ {
				av := a.Val[k]
				if av == 0 {
					continue
				}
				xrow := x[a.Col[k]*xcols+jb : a.Col[k]*xcols+je]
				for j, xv := range xrow {
					orow[j] += av * xv
				}
			}
		}
	}
	return nil
}
