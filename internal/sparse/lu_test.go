package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/edsec/edattack/internal/mat"
)

// randomSparseCols draws an n×n matrix with the given fill probability and a
// guaranteed-nonzero diagonal (so it is almost surely nonsingular), returned
// both as column lists and as a dense matrix for the oracle.
func randomSparseCols(rng *rand.Rand, n int, fill float64) (ind [][]int, val [][]float64, d *mat.Matrix) {
	ind = make([][]int, n)
	val = make([][]float64, n)
	d = mat.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := 0.0
			if i == j {
				v = 1 + rng.Float64() // diagonal dominance keeps it well-conditioned
				if rng.Intn(2) == 0 {
					v = -v
				}
			} else if rng.Float64() < fill {
				v = rng.NormFloat64()
			}
			if v != 0 {
				ind[j] = append(ind[j], i)
				val[j] = append(val[j], v)
				d.Set(i, j, v)
			}
		}
	}
	return ind, val, d
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestLUSolveAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		fill := []float64{0.05, 0.15, 0.4}[trial%3]
		ind, val, d := randomSparseCols(rng, n, fill)

		lu, err := FactorColumns(n, ind, val)
		if err != nil {
			t.Fatalf("trial %d (n=%d): sparse factor failed: %v", trial, n, err)
		}
		oracle, err := mat.Factor(d)
		if err != nil {
			t.Fatalf("trial %d: dense factor failed: %v", trial, err)
		}

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		// FTRAN: B x = b.
		x := append([]float64(nil), b...)
		lu.Solve(x)
		want, err := oracle.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(x, want); diff > 1e-8 {
			t.Fatalf("trial %d (n=%d): FTRAN diverges from dense oracle by %g", trial, n, diff)
		}
		// Residual check directly against B.
		res, err := d.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(res, b); diff > 1e-8 {
			t.Fatalf("trial %d: FTRAN residual %g", trial, diff)
		}

		// BTRAN: Bᵀ y = b.
		y := append([]float64(nil), b...)
		lu.SolveT(y)
		wantT, err := mat.Solve(d.T(), b)
		if err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(y, wantT); diff > 1e-8 {
			t.Fatalf("trial %d (n=%d): BTRAN diverges from dense oracle by %g", trial, n, diff)
		}
	}
}

func TestLUPermutedIdentity(t *testing.T) {
	// A permutation matrix exercises the pivot bookkeeping with no fill.
	n := 9
	perm := []int{3, 1, 4, 0, 8, 6, 2, 7, 5}
	ind := make([][]int, n)
	val := make([][]float64, n)
	for j := 0; j < n; j++ {
		ind[j] = []int{perm[j]}
		val[j] = []float64{2}
	}
	lu, err := FactorColumns(n, ind, val)
	if err != nil {
		t.Fatal(err)
	}
	if lu.LNNZ() != 0 {
		t.Fatalf("permutation matrix produced %d L entries, want 0", lu.LNNZ())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := append([]float64(nil), b...)
	lu.Solve(x)
	for j := 0; j < n; j++ {
		if want := b[perm[j]] / 2; x[j] != want {
			t.Fatalf("x[%d] = %g, want %g", j, x[j], want)
		}
	}
}

func TestLUSingularStructural(t *testing.T) {
	// Column 2 is entirely zero.
	ind := [][]int{{0, 1}, {0, 2}, {}}
	val := [][]float64{{1, 2}, {3, 1}, {}}
	if _, err := FactorColumns(3, ind, val); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero column: got %v, want ErrSingular", err)
	}
	// Two identical rows.
	b := NewBuilder(3, 3)
	for j, v := range []float64{1, 2, 3} {
		b.Add(0, j, v)
		b.Add(1, j, v)
	}
	b.Add(2, 0, 5)
	b.Add(2, 2, -1)
	ind2, val2 := colsFromCSR(b.CSR())
	if _, err := FactorColumns(3, ind2, val2); !errors.Is(err, ErrSingular) {
		t.Fatalf("duplicate rows: got %v, want ErrSingular", err)
	}
}

func TestLUSingularNumerical(t *testing.T) {
	// Rank-deficient by cancellation: row2 = row0 + row1.
	rows := [][]float64{
		{2, 1, 0, 1},
		{0, 3, 1, 0},
		{2, 4, 1, 1},
		{1, 0, 0, 2},
	}
	b := NewBuilder(4, 4)
	for i, r := range rows {
		for j, v := range r {
			b.Add(i, j, v)
		}
	}
	ind, val := colsFromCSR(b.CSR())
	if _, err := FactorColumns(4, ind, val); !errors.Is(err, ErrSingular) {
		t.Fatalf("rank-deficient: got %v, want ErrSingular", err)
	}
}

func TestLUDegenerateTiny(t *testing.T) {
	// 1x1, including singular.
	lu, err := FactorColumns(1, [][]int{{0}}, [][]float64{{-4}})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{8}
	lu.Solve(x)
	if x[0] != -2 {
		t.Fatalf("1x1 solve: %g, want -2", x[0])
	}
	if _, err := FactorColumns(1, [][]int{{}}, [][]float64{{}}); !errors.Is(err, ErrSingular) {
		t.Fatalf("1x1 zero: got %v, want ErrSingular", err)
	}
	// 0x0 is trivially factorable.
	if _, err := FactorColumns(0, nil, nil); err != nil {
		t.Fatalf("0x0: %v", err)
	}
}

func TestLUDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ind, val, _ := randomSparseCols(rng, 25, 0.2)
	a, err := FactorColumns(25, ind, val)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := FactorColumns(25, ind, val)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 25; k++ {
		if a.rowOfStep[k] != bf.rowOfStep[k] || a.colOfStep[k] != bf.colOfStep[k] || a.piv[k] != bf.piv[k] {
			t.Fatalf("step %d differs between identical factorizations", k)
		}
	}
	b := make([]float64, 25)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	a.Solve(x1)
	bf.Solve(x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solve not bit-identical at %d", i)
		}
	}
}

func TestLUFillStaysSparse(t *testing.T) {
	// Arrow matrix: dense last row/column plus diagonal. Natural-order
	// elimination of the dense corner first would produce O(n²) fill;
	// Markowitz ordering must keep fill near zero.
	n := 60
	bld := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bld.Add(i, i, 4)
	}
	for i := 0; i < n-1; i++ {
		bld.Add(n-1, i, 1)
		bld.Add(i, n-1, 1)
	}
	ind, val := colsFromCSR(bld.CSR())
	lu, err := FactorColumns(n, ind, val)
	if err != nil {
		t.Fatal(err)
	}
	if lu.LNNZ() > 2*n {
		t.Fatalf("arrow matrix L fill %d exceeds %d — Markowitz ordering is not working", lu.LNNZ(), 2*n)
	}
}

// colsFromCSR converts a square CSR into the column-list form Factor wants.
func colsFromCSR(a *CSR) ([][]int, [][]float64) {
	ind := make([][]int, a.Cols)
	val := make([][]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			ind[j] = append(ind[j], i)
			val[j] = append(val[j], vals[k])
		}
	}
	return ind, val
}
