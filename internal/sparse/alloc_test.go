package sparse

import (
	"math/rand"
	"testing"
)

// TestMulDenseIntoZeroAlloc pins the CSR·dense-batch kernel at zero
// steady-state allocations: every buffer is caller-owned, so a sweep engine
// calling it per batch must not grow the heap.
func TestMulDenseIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 40, 60, 0.2)
	const xcols = 300
	x := make([]float64, a.Cols*xcols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows*xcols)
	allocs := testing.AllocsPerRun(50, func() {
		if err := a.MulDenseInto(y, x, xcols); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MulDenseInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestLUSolveZeroAlloc pins the factorization's FTRAN/BTRAN primitives —
// LU.Solve and LU.SolveT operate strictly in place on the caller's vector.
func TestLUSolveZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	ind := make([][]int, n)
	val := make([][]float64, n)
	for j := 0; j < n; j++ {
		ind[j] = append(ind[j], j)
		val[j] = append(val[j], 2+rng.Float64())
		for i := 0; i < n; i++ {
			if i != j && rng.Float64() < 0.1 {
				ind[j] = append(ind[j], i)
				val[j] = append(val[j], rng.NormFloat64()*0.1)
			}
		}
	}
	lu, err := FactorColumns(n, ind, val)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	allocs := testing.AllocsPerRun(50, func() {
		lu.Solve(b)
		lu.SolveT(b)
	})
	if allocs != 0 {
		t.Fatalf("LU Solve+SolveT allocate %.1f objects per call, want 0", allocs)
	}
}
