package sparse

import (
	"fmt"
	"math"
	"sort"
)

// markowitzTau is the threshold-pivoting parameter: a candidate pivot must
// satisfy |a| ≥ tau·(max |a| in its row). Smaller values favour sparsity,
// larger values favour stability; 0.1 is the classical compromise.
const markowitzTau = 0.1

// LU is a sparse LU factorization P·B·Q = L·U with Markowitz-style pivot
// selection. It solves both B·x = v (FTRAN) and Bᵀ·y = w (BTRAN); the
// revised simplex keeps one per basis and layers product-form eta updates
// on top between refactorizations.
//
// An LU carries solve scratch and is therefore not safe for concurrent use.
type LU struct {
	n int

	// rowOfStep[k] / colOfStep[k] are the original row/column eliminated at
	// step k; stepOfRow / stepOfCol are the inverse permutations.
	rowOfStep []int
	colOfStep []int
	stepOfRow []int
	stepOfCol []int

	// L is unit lower triangular in step space, stored column-wise per step:
	// entries p in [lptr[k], lptr[k+1]) hold the multiplier lval[p] applied
	// to original row lrow[p] (a row eliminated at a later step).
	lptr []int
	lrow []int
	lval []float64

	// U is upper triangular in step space: piv[k] is the diagonal, and
	// entries p in [uptr[k], uptr[k+1]) hold off-diagonal uval[p] in original
	// column ucol[p] (a column eliminated at a later step).
	uptr []int
	ucol []int
	uval []float64
	piv  []float64

	work []float64
}

// N returns the dimension of the factored matrix.
func (lu *LU) N() int { return lu.n }

// LNNZ returns the number of stored off-diagonal L entries (fill metric).
func (lu *LU) LNNZ() int { return len(lu.lrow) }

// UNNZ returns the number of stored U entries including the diagonal.
func (lu *LU) UNNZ() int { return len(lu.ucol) + lu.n }

type luEnt struct {
	col int
	val float64
}

// FactorColumns factors the n×n matrix whose j-th column has entries
// val[j][k] in rows ind[j][k]. Row indices within a column need not be
// sorted; duplicates are summed. Returns ErrSingular when no numerically
// acceptable pivot exists at some elimination step.
func FactorColumns(n int, ind [][]int, val [][]float64) (*LU, error) {
	if len(ind) != n || len(val) != n {
		return nil, fmt.Errorf("FactorColumns: %d columns, want %d: %w", len(ind), n, ErrShape)
	}
	lu := &LU{
		n:         n,
		rowOfStep: make([]int, n),
		colOfStep: make([]int, n),
		stepOfRow: make([]int, n),
		stepOfCol: make([]int, n),
		lptr:      make([]int, 1, n+1),
		uptr:      make([]int, 1, n+1),
		piv:       make([]float64, 0, n),
		work:      make([]float64, n),
	}
	if n == 0 {
		return lu, nil
	}

	// Active submatrix, row-major with sorted column indices. Rows only ever
	// hold active columns: every elimination step strips the pivot column
	// from all rows that touch it.
	rows := make([][]luEnt, n)
	colCount := make([]int, n)  // exact active-entry count per column
	colRows := make([][]int, n) // rows touching each column; entries may be stale
	maxAbs := 0.0
	for j := 0; j < n; j++ {
		if len(ind[j]) != len(val[j]) {
			return nil, fmt.Errorf("FactorColumns: column %d has %d indices but %d values: %w",
				j, len(ind[j]), len(val[j]), ErrShape)
		}
		for k, i := range ind[j] {
			v := val[j][k]
			if v == 0 {
				continue
			}
			if i < 0 || i >= n {
				return nil, fmt.Errorf("FactorColumns: column %d row index %d out of range [0,%d)", j, i, n)
			}
			rows[i] = append(rows[i], luEnt{col: j, val: v})
		}
	}
	for i := 0; i < n; i++ {
		r := rows[i]
		sort.Slice(r, func(a, b int) bool { return r[a].col < r[b].col })
		// Sum duplicates in place.
		w := 0
		for k := 0; k < len(r); k++ {
			if w > 0 && r[w-1].col == r[k].col {
				r[w-1].val += r[k].val
				continue
			}
			r[w] = r[k]
			w++
		}
		rows[i] = r[:w]
		for _, e := range rows[i] {
			colCount[e.col]++
			colRows[e.col] = append(colRows[e.col], i)
			if a := math.Abs(e.val); a > maxAbs {
				maxAbs = a
			}
		}
	}
	singTol := 1e-13 * math.Max(1, maxAbs)

	rowActive := make([]bool, n)
	for i := range rowActive {
		rowActive[i] = true
	}
	spa := make([]float64, n)
	inSpa := make([]bool, n)
	pattern := make([]int, 0, n)

	for step := 0; step < n; step++ {
		// Markowitz pivot search: minimize (rowCount−1)(colCount−1) over
		// active entries passing the row threshold, breaking ties by larger
		// |value|, then smaller row, then smaller column — a total order, so
		// the factorization is deterministic.
		bestMerit, bestAbs := math.MaxInt64, 0.0
		pr, pc := -1, -1
		var pv float64
		for r := 0; r < n; r++ {
			if !rowActive[r] {
				continue
			}
			re := rows[r]
			if len(re) == 0 {
				return nil, fmt.Errorf("row %d empty at step %d: %w", r, step, ErrSingular)
			}
			rmax := 0.0
			for _, e := range re {
				if a := math.Abs(e.val); a > rmax {
					rmax = a
				}
			}
			if rmax <= singTol {
				return nil, fmt.Errorf("row %d numerically zero at step %d: %w", r, step, ErrSingular)
			}
			thresh := markowitzTau * rmax
			rm := len(re) - 1
			for _, e := range re {
				a := math.Abs(e.val)
				if a < thresh || a <= singTol {
					continue
				}
				merit := rm * (colCount[e.col] - 1)
				if merit > bestMerit {
					continue
				}
				if merit == bestMerit && pr >= 0 {
					if a < bestAbs {
						continue
					}
					if a == bestAbs && (r > pr || (r == pr && e.col > pc)) {
						continue
					}
				}
				bestMerit, bestAbs = merit, a
				pr, pc, pv = r, e.col, e.val
			}
		}
		if pr < 0 {
			return nil, fmt.Errorf("no acceptable pivot at step %d: %w", step, ErrSingular)
		}

		lu.rowOfStep[step] = pr
		lu.colOfStep[step] = pc
		lu.piv = append(lu.piv, pv)

		// Retire the pivot row: record its off-pivot entries as the U row.
		rowActive[pr] = false
		pivRow := rows[pr]
		for _, e := range pivRow {
			colCount[e.col]--
			if e.col != pc {
				lu.ucol = append(lu.ucol, e.col)
				lu.uval = append(lu.uval, e.val)
			}
		}
		lu.uptr = append(lu.uptr, len(lu.ucol))

		// Eliminate the pivot column from every other active row touching it.
		for _, r := range colRows[pc] {
			if !rowActive[r] {
				continue
			}
			re := rows[r]
			k := sort.Search(len(re), func(i int) bool { return re[i].col >= pc })
			if k >= len(re) || re[k].col != pc {
				continue // stale occupancy entry
			}
			f := re[k].val / pv
			lu.lrow = append(lu.lrow, r)
			lu.lval = append(lu.lval, f)

			// Sparse row update r ← r − f·pivRow via scatter/gather; the
			// pivot column itself is dropped from the result.
			pattern = pattern[:0]
			for _, e := range re {
				if e.col == pc {
					continue
				}
				spa[e.col] = e.val
				inSpa[e.col] = true
				pattern = append(pattern, e.col)
			}
			for _, e := range pivRow {
				if e.col == pc {
					continue
				}
				if !inSpa[e.col] {
					inSpa[e.col] = true
					pattern = append(pattern, e.col)
					spa[e.col] = 0
					colCount[e.col]++
					colRows[e.col] = append(colRows[e.col], r)
				}
				spa[e.col] -= f * e.val
			}
			sort.Ints(pattern)
			nr := re[:0]
			for _, c := range pattern {
				if v := spa[c]; v != 0 {
					nr = append(nr, luEnt{col: c, val: v})
				} else {
					colCount[c]--
				}
				inSpa[c] = false
			}
			rows[r] = nr
			colCount[pc]--
		}
		lu.lptr = append(lu.lptr, len(lu.lrow))
		colRows[pc] = nil
	}

	for k := 0; k < n; k++ {
		lu.stepOfRow[lu.rowOfStep[k]] = k
		lu.stepOfCol[lu.colOfStep[k]] = k
	}
	return lu, nil
}

// Solve overwrites b (length n, indexed by original row) with the solution x
// of B·x = b, indexed by original column. This is the simplex FTRAN.
func (lu *LU) Solve(b []float64) {
	n, w := lu.n, lu.work
	for k := 0; k < n; k++ {
		w[k] = b[lu.rowOfStep[k]]
	}
	// L forward substitution (unit diagonal), scattering down the column.
	for j := 0; j < n; j++ {
		t := w[j]
		if t == 0 {
			continue
		}
		for p := lu.lptr[j]; p < lu.lptr[j+1]; p++ {
			w[lu.stepOfRow[lu.lrow[p]]] -= lu.lval[p] * t
		}
	}
	// U back substitution, gathering from later steps.
	for k := n - 1; k >= 0; k-- {
		s := w[k]
		for p := lu.uptr[k]; p < lu.uptr[k+1]; p++ {
			s -= lu.uval[p] * w[lu.stepOfCol[lu.ucol[p]]]
		}
		w[k] = s / lu.piv[k]
	}
	for k := 0; k < n; k++ {
		b[lu.colOfStep[k]] = w[k]
	}
}

// SolveT overwrites b (length n, indexed by original column) with the
// solution y of Bᵀ·y = b, indexed by original row. This is the simplex BTRAN.
func (lu *LU) SolveT(b []float64) {
	n, g := lu.n, lu.work
	for k := 0; k < n; k++ {
		g[k] = b[lu.colOfStep[k]]
	}
	// Uᵀ forward substitution, scattering each resolved step downward.
	for j := 0; j < n; j++ {
		z := g[j] / lu.piv[j]
		g[j] = z
		if z == 0 {
			continue
		}
		for p := lu.uptr[j]; p < lu.uptr[j+1]; p++ {
			g[lu.stepOfCol[lu.ucol[p]]] -= lu.uval[p] * z
		}
	}
	// Lᵀ back substitution (unit diagonal), gathering from later steps.
	for j := n - 1; j >= 0; j-- {
		s := g[j]
		for p := lu.lptr[j]; p < lu.lptr[j+1]; p++ {
			s -= lu.lval[p] * g[lu.stepOfRow[lu.lrow[p]]]
		}
		g[j] = s
	}
	for k := 0; k < n; k++ {
		b[lu.rowOfStep[k]] = g[k]
	}
}
