package sparse

import (
	"fmt"
	"math"
	"sort"
)

// markowitzTau is the threshold-pivoting parameter: a candidate pivot must
// satisfy |a| ≥ tau·(max |a| in its row). Smaller values favour sparsity,
// larger values favour stability; 0.1 is the classical compromise.
const markowitzTau = 0.1

// LU is a sparse LU factorization P·B·Q = L·U with Markowitz-style pivot
// selection. It solves both B·x = v (FTRAN) and Bᵀ·y = w (BTRAN); the
// revised simplex keeps one per basis and layers product-form eta updates
// on top between refactorizations.
//
// An LU carries solve scratch and is therefore not safe for concurrent use.
type LU struct {
	n int

	// rowOfStep[k] / colOfStep[k] are the original row/column eliminated at
	// step k; stepOfRow / stepOfCol are the inverse permutations.
	rowOfStep []int
	colOfStep []int
	stepOfRow []int
	stepOfCol []int

	// L is unit lower triangular in step space, stored column-wise per step:
	// entries p in [lptr[k], lptr[k+1]) hold the multiplier lval[p] applied
	// to original row lrow[p] (a row eliminated at a later step).
	lptr []int
	lrow []int
	lval []float64

	// U is upper triangular in step space: piv[k] is the diagonal, and
	// entries p in [uptr[k], uptr[k+1]) hold off-diagonal uval[p] in original
	// column ucol[p] (a column eliminated at a later step).
	uptr []int
	ucol []int
	uval []float64
	piv  []float64

	work []float64
}

// N returns the dimension of the factored matrix.
func (lu *LU) N() int { return lu.n }

// LNNZ returns the number of stored off-diagonal L entries (fill metric).
func (lu *LU) LNNZ() int { return len(lu.lrow) }

// UNNZ returns the number of stored U entries including the diagonal.
func (lu *LU) UNNZ() int { return len(lu.ucol) + lu.n }

type luEnt struct {
	col int
	val float64
}

// entSorter orders one row's entries by column. A pointer receiver keeps
// sort.Sort allocation-free (the interface value wraps the existing pointer),
// and pdqsort under sort.Sort visits the same comparison/swap sequence as the
// sort.Slice it replaces, so the summation order of duplicates — and with it
// the factorization — is bit-identical.
type entSorter struct{ r []luEnt }

func (s *entSorter) Len() int           { return len(s.r) }
func (s *entSorter) Less(a, b int) bool { return s.r[a].col < s.r[b].col }
func (s *entSorter) Swap(a, b int)      { s.r[a], s.r[b] = s.r[b], s.r[a] }

// FactorScratch pools every working array a Markowitz factorization needs —
// the active-submatrix rows, column occupancy lists, scatter/gather SPA, and
// a recycled spare LU whose backing arrays the next factorization reuses.
// A scratch belongs to exactly one solver engine at a time (it is not safe
// for concurrent use); a nil *FactorScratch is valid everywhere and means
// "allocate fresh", so pooled and unpooled callers share one code path.
type FactorScratch struct {
	rows      [][]luEnt
	colCount  []int
	colRows   [][]int
	rowActive []bool
	spa       []float64
	inSpa     []bool
	pattern   []int
	sorter    entSorter
	spare     *LU
}

// Recycle hands a dead factorization's backing arrays to the next
// FactorColumnsWith call on this scratch. Only recycle an LU nothing else
// retains (the lp engine's previous basis factorization qualifies; a
// factorization cached across solves, like the QP KKT base, does not).
func (s *FactorScratch) Recycle(lu *LU) {
	if s != nil && lu != nil {
		s.spare = lu
	}
}

// takeLU returns an LU sized for n, reusing the recycled spare's arrays when
// present. Valid on a nil receiver (always allocates fresh).
func (s *FactorScratch) takeLU(n int) *LU {
	if s == nil || s.spare == nil {
		return &LU{
			n:         n,
			rowOfStep: make([]int, n),
			colOfStep: make([]int, n),
			stepOfRow: make([]int, n),
			stepOfCol: make([]int, n),
			lptr:      make([]int, 1, n+1),
			uptr:      make([]int, 1, n+1),
			piv:       make([]float64, 0, n),
			work:      make([]float64, n),
		}
	}
	lu := s.spare
	s.spare = nil
	lu.n = n
	lu.rowOfStep = growInts(lu.rowOfStep, n)
	lu.colOfStep = growInts(lu.colOfStep, n)
	lu.stepOfRow = growInts(lu.stepOfRow, n)
	lu.stepOfCol = growInts(lu.stepOfCol, n)
	lu.lptr = append(lu.lptr[:0], 0)
	lu.lrow = lu.lrow[:0]
	lu.lval = lu.lval[:0]
	lu.uptr = append(lu.uptr[:0], 0)
	lu.ucol = lu.ucol[:0]
	lu.uval = lu.uval[:0]
	lu.piv = lu.piv[:0]
	lu.work = growFloats(lu.work, n)
	return lu
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// FactorColumns factors the n×n matrix whose j-th column has entries
// val[j][k] in rows ind[j][k]. Row indices within a column need not be
// sorted; duplicates are summed. Returns ErrSingular when no numerically
// acceptable pivot exists at some elimination step.
func FactorColumns(n int, ind [][]int, val [][]float64) (*LU, error) {
	return FactorColumnsWith(n, ind, val, nil)
}

// FactorColumnsWith is FactorColumns drawing all working storage — and the
// returned LU's arrays, when a spare was recycled — from s. A nil s allocates
// everything fresh; both paths run the identical elimination, so the computed
// factorization does not depend on pooling.
func FactorColumnsWith(n int, ind [][]int, val [][]float64, s *FactorScratch) (*LU, error) {
	if len(ind) != n || len(val) != n {
		return nil, fmt.Errorf("FactorColumns: %d columns, want %d: %w", len(ind), n, ErrShape)
	}
	lu := s.takeLU(n)
	if n == 0 {
		return lu, nil
	}

	// Active submatrix, row-major with sorted column indices. Rows only ever
	// hold active columns: every elimination step strips the pivot column
	// from all rows that touch it.
	var (
		rows     [][]luEnt
		colCount []int
		colRows  [][]int // rows touching each column; entries may be stale
		srt      *entSorter
	)
	if s != nil {
		if cap(s.rows) < n {
			s.rows = make([][]luEnt, n)
		}
		if cap(s.colRows) < n {
			s.colRows = make([][]int, n)
		}
		rows, colRows = s.rows[:n], s.colRows[:n]
		for i := 0; i < n; i++ {
			rows[i] = rows[i][:0]
			colRows[i] = colRows[i][:0]
		}
		s.colCount = growInts(s.colCount, n)
		colCount = s.colCount
		for i := range colCount {
			colCount[i] = 0
		}
		srt = &s.sorter
	} else {
		rows = make([][]luEnt, n)
		colRows = make([][]int, n)
		colCount = make([]int, n) // exact active-entry count per column
		srt = &entSorter{}
	}
	maxAbs := 0.0
	for j := 0; j < n; j++ {
		if len(ind[j]) != len(val[j]) {
			return nil, fmt.Errorf("FactorColumns: column %d has %d indices but %d values: %w",
				j, len(ind[j]), len(val[j]), ErrShape)
		}
		for k, i := range ind[j] {
			v := val[j][k]
			if v == 0 {
				continue
			}
			if i < 0 || i >= n {
				return nil, fmt.Errorf("FactorColumns: column %d row index %d out of range [0,%d)", j, i, n)
			}
			rows[i] = append(rows[i], luEnt{col: j, val: v})
		}
	}
	for i := 0; i < n; i++ {
		r := rows[i]
		srt.r = r
		sort.Sort(srt)
		// Sum duplicates in place.
		w := 0
		for k := 0; k < len(r); k++ {
			if w > 0 && r[w-1].col == r[k].col {
				r[w-1].val += r[k].val
				continue
			}
			r[w] = r[k]
			w++
		}
		rows[i] = r[:w]
		for _, e := range rows[i] {
			colCount[e.col]++
			colRows[e.col] = append(colRows[e.col], i)
			if a := math.Abs(e.val); a > maxAbs {
				maxAbs = a
			}
		}
	}
	singTol := 1e-13 * math.Max(1, maxAbs)

	var (
		rowActive []bool
		spa       []float64
		inSpa     []bool
		pattern   []int
	)
	if s != nil {
		s.rowActive = growBools(s.rowActive, n)
		s.spa = growFloats(s.spa, n)
		s.inSpa = growBools(s.inSpa, n)
		rowActive, spa, inSpa = s.rowActive, s.spa, s.inSpa
		for i := 0; i < n; i++ {
			spa[i] = 0
			inSpa[i] = false
		}
		if cap(s.pattern) < n {
			s.pattern = make([]int, 0, n)
		}
		pattern = s.pattern[:0]
	} else {
		rowActive = make([]bool, n)
		spa = make([]float64, n)
		inSpa = make([]bool, n)
		pattern = make([]int, 0, n)
	}
	for i := range rowActive {
		rowActive[i] = true
	}

	for step := 0; step < n; step++ {
		// Markowitz pivot search: minimize (rowCount−1)(colCount−1) over
		// active entries passing the row threshold, breaking ties by larger
		// |value|, then smaller row, then smaller column — a total order, so
		// the factorization is deterministic.
		bestMerit, bestAbs := math.MaxInt64, 0.0
		pr, pc := -1, -1
		var pv float64
		for r := 0; r < n; r++ {
			if !rowActive[r] {
				continue
			}
			re := rows[r]
			if len(re) == 0 {
				return nil, fmt.Errorf("row %d empty at step %d: %w", r, step, ErrSingular)
			}
			rmax := 0.0
			for _, e := range re {
				if a := math.Abs(e.val); a > rmax {
					rmax = a
				}
			}
			if rmax <= singTol {
				return nil, fmt.Errorf("row %d numerically zero at step %d: %w", r, step, ErrSingular)
			}
			thresh := markowitzTau * rmax
			rm := len(re) - 1
			for _, e := range re {
				a := math.Abs(e.val)
				if a < thresh || a <= singTol {
					continue
				}
				merit := rm * (colCount[e.col] - 1)
				if merit > bestMerit {
					continue
				}
				if merit == bestMerit && pr >= 0 {
					if a < bestAbs {
						continue
					}
					if a == bestAbs && (r > pr || (r == pr && e.col > pc)) {
						continue
					}
				}
				bestMerit, bestAbs = merit, a
				pr, pc, pv = r, e.col, e.val
			}
		}
		if pr < 0 {
			return nil, fmt.Errorf("no acceptable pivot at step %d: %w", step, ErrSingular)
		}

		lu.rowOfStep[step] = pr
		lu.colOfStep[step] = pc
		lu.piv = append(lu.piv, pv)

		// Retire the pivot row: record its off-pivot entries as the U row.
		rowActive[pr] = false
		pivRow := rows[pr]
		for _, e := range pivRow {
			colCount[e.col]--
			if e.col != pc {
				lu.ucol = append(lu.ucol, e.col)
				lu.uval = append(lu.uval, e.val)
			}
		}
		lu.uptr = append(lu.uptr, len(lu.ucol))

		// Eliminate the pivot column from every other active row touching it.
		for _, r := range colRows[pc] {
			if !rowActive[r] {
				continue
			}
			re := rows[r]
			k := sort.Search(len(re), func(i int) bool { return re[i].col >= pc })
			if k >= len(re) || re[k].col != pc {
				continue // stale occupancy entry
			}
			f := re[k].val / pv
			lu.lrow = append(lu.lrow, r)
			lu.lval = append(lu.lval, f)

			// Sparse row update r ← r − f·pivRow via scatter/gather; the
			// pivot column itself is dropped from the result.
			pattern = pattern[:0]
			for _, e := range re {
				if e.col == pc {
					continue
				}
				spa[e.col] = e.val
				inSpa[e.col] = true
				pattern = append(pattern, e.col)
			}
			for _, e := range pivRow {
				if e.col == pc {
					continue
				}
				if !inSpa[e.col] {
					inSpa[e.col] = true
					pattern = append(pattern, e.col)
					spa[e.col] = 0
					colCount[e.col]++
					colRows[e.col] = append(colRows[e.col], r)
				}
				spa[e.col] -= f * e.val
			}
			sort.Ints(pattern)
			nr := re[:0]
			for _, c := range pattern {
				if v := spa[c]; v != 0 {
					nr = append(nr, luEnt{col: c, val: v})
				} else {
					colCount[c]--
				}
				inSpa[c] = false
			}
			rows[r] = nr
			colCount[pc]--
		}
		lu.lptr = append(lu.lptr, len(lu.lrow))
		colRows[pc] = colRows[pc][:0]
	}

	for k := 0; k < n; k++ {
		lu.stepOfRow[lu.rowOfStep[k]] = k
		lu.stepOfCol[lu.colOfStep[k]] = k
	}
	if s != nil {
		s.pattern = pattern[:0]
		s.sorter.r = nil
	}
	return lu, nil
}

// Solve overwrites b (length n, indexed by original row) with the solution x
// of B·x = b, indexed by original column. This is the simplex FTRAN.
func (lu *LU) Solve(b []float64) {
	n, w := lu.n, lu.work
	for k := 0; k < n; k++ {
		w[k] = b[lu.rowOfStep[k]]
	}
	// L forward substitution (unit diagonal), scattering down the column.
	for j := 0; j < n; j++ {
		t := w[j]
		if t == 0 {
			continue
		}
		for p := lu.lptr[j]; p < lu.lptr[j+1]; p++ {
			w[lu.stepOfRow[lu.lrow[p]]] -= lu.lval[p] * t
		}
	}
	// U back substitution, gathering from later steps.
	for k := n - 1; k >= 0; k-- {
		s := w[k]
		for p := lu.uptr[k]; p < lu.uptr[k+1]; p++ {
			s -= lu.uval[p] * w[lu.stepOfCol[lu.ucol[p]]]
		}
		w[k] = s / lu.piv[k]
	}
	for k := 0; k < n; k++ {
		b[lu.colOfStep[k]] = w[k]
	}
}

// SolveT overwrites b (length n, indexed by original column) with the
// solution y of Bᵀ·y = b, indexed by original row. This is the simplex BTRAN.
func (lu *LU) SolveT(b []float64) {
	n, g := lu.n, lu.work
	for k := 0; k < n; k++ {
		g[k] = b[lu.colOfStep[k]]
	}
	// Uᵀ forward substitution, scattering each resolved step downward.
	for j := 0; j < n; j++ {
		z := g[j] / lu.piv[j]
		g[j] = z
		if z == 0 {
			continue
		}
		for p := lu.uptr[j]; p < lu.uptr[j+1]; p++ {
			g[lu.stepOfCol[lu.ucol[p]]] -= lu.uval[p] * z
		}
	}
	// Lᵀ back substitution (unit diagonal), gathering from later steps.
	for j := n - 1; j >= 0; j-- {
		s := g[j]
		for p := lu.lptr[j]; p < lu.lptr[j+1]; p++ {
			s -= lu.lval[p] * g[lu.stepOfRow[lu.lrow[p]]]
		}
		g[j] = s
	}
	for k := 0; k < n; k++ {
		b[lu.rowOfStep[k]] = g[k]
	}
}
