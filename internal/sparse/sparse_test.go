package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuilderCSRBasics(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(1, 2, 3.0)
	b.Add(0, 0, 1.0)
	b.Add(1, 0, -2.0)
	b.Add(1, 2, 1.5) // duplicate, summed
	b.Add(2, 3, 4.0)
	b.Add(0, 1, 0) // dropped
	a := b.CSR()
	if a.Rows != 3 || a.Cols != 4 {
		t.Fatalf("shape %dx%d, want 3x4", a.Rows, a.Cols)
	}
	if a.NNZ() != 4 {
		t.Fatalf("nnz %d, want 4", a.NNZ())
	}
	want := [][]float64{
		{1, 0, 0, 0},
		{-2, 0, 4.5, 0},
		{0, 0, 0, 4},
	}
	got := a.Dense()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("entry (%d,%d) = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Rows must be sorted by column.
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				t.Fatalf("row %d columns not strictly increasing: %v", i, cols)
			}
		}
	}
	if d := a.Density(); math.Abs(d-4.0/12.0) > 1e-15 {
		t.Fatalf("density %g, want %g", d, 4.0/12.0)
	}
}

func TestBuilderCSCIsTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(5, 8)
	type trip struct {
		i, j int
		v    float64
	}
	var trips []trip
	for k := 0; k < 20; k++ {
		tr := trip{i: rng.Intn(5), j: rng.Intn(8), v: rng.NormFloat64()}
		trips = append(trips, tr)
		b.Add(tr.i, tr.j, tr.v)
	}
	csr, csc := b.CSR(), b.CSC()
	if csc.Rows != 8 || csc.Cols != 5 {
		t.Fatalf("CSC shape %dx%d, want 8x5", csc.Rows, csc.Cols)
	}
	dr, dc := csr.Dense(), csc.Dense()
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			if dr[i][j] != dc[j][i] {
				t.Fatalf("CSC not transpose at (%d,%d): %g vs %g", i, j, dr[i][j], dc[j][i])
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		b := NewBuilder(rows, cols)
		dense := make([][]float64, rows)
		for i := range dense {
			dense[i] = make([]float64, cols)
		}
		nnz := rng.Intn(rows * cols)
		for k := 0; k < nnz; k++ {
			i, j, v := rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()
			b.Add(i, j, v)
			dense[i][j] += v
		}
		a := b.CSR()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += dense[i][j] * x[j]
			}
			if math.Abs(y[i]-s) > 1e-12 {
				t.Fatalf("trial %d: MulVec row %d = %g, dense %g", trial, i, y[i], s)
			}
		}
		xt := make([]float64, rows)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		yt, err := a.MulVecT(xt)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < cols; j++ {
			var s float64
			for i := 0; i < rows; i++ {
				s += dense[i][j] * xt[i]
			}
			if math.Abs(yt[j]-s) > 1e-12 {
				t.Fatalf("trial %d: MulVecT col %d = %g, dense %g", trial, j, yt[j], s)
			}
		}
	}
}

func TestMulVecShapeErrors(t *testing.T) {
	a := NewBuilder(2, 3).CSR()
	if _, err := a.MulVec(make([]float64, 2)); err == nil {
		t.Fatal("MulVec accepted wrong-length vector")
	}
	if _, err := a.MulVecT(make([]float64, 3)); err == nil {
		t.Fatal("MulVecT accepted wrong-length vector")
	}
}
