// Package sparse provides the compressed sparse linear-algebra kernels
// under the revised simplex in internal/lp: CSR/CSC matrix storage, sparse
// matrix–vector products, and a sparse LU factorization with Markowitz-style
// pivot selection backing the basis FTRAN/BTRAN solves. The KKT systems the
// bilevel attack generator assembles over power networks are overwhelmingly
// zero (a few percent dense on case118), which is exactly the regime where
// compressed storage beats the dense kernels in internal/mat.
//
// Everything in this package is deterministic: construction sorts column
// indices, the factorization breaks pivot ties by a fixed rule, and no map
// iteration touches a numeric path — bit-identical runs are part of the
// solver's contract.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("sparse: matrix is singular")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("sparse: dimension mismatch")

// CSR is a compressed sparse row matrix: row i's entries live in
// Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with column
// indices strictly increasing within a row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	Col        []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Col) }

// Density returns NNZ / (Rows·Cols), or 0 for an empty shape.
func (a *CSR) Density() float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.Rows) * float64(a.Cols))
}

// Row returns row i's column indices and values, backed by the matrix
// storage (callers must not mutate).
func (a *CSR) Row(i int) ([]int, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// Builder accumulates triplets and assembles CSR/CSC forms. Duplicate
// (row, col) entries are summed; exact zeros that result are kept (a stored
// zero is harmless to every kernel here).
type Builder struct {
	rows, cols int
	r, c       []int
	v          []float64
}

// NewBuilder returns a builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (i, j). Zero values are skipped.
func (b *Builder) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", i, j, b.rows, b.cols))
	}
	b.r = append(b.r, i)
	b.c = append(b.c, j)
	b.v = append(b.v, v)
}

// CSR assembles the compressed-row form.
func (b *Builder) CSR() *CSR {
	return compress(b.rows, b.cols, b.r, b.c, b.v)
}

// CSC assembles the compressed-column form, represented as the CSR of the
// transpose: row i of the result is column i of the logical matrix.
func (b *Builder) CSC() *CSR {
	return compress(b.cols, b.rows, b.c, b.r, b.v)
}

// compress sorts triplets into CSR, summing duplicates.
func compress(rows, cols int, ri, ci []int, v []float64) *CSR {
	n := len(ri)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if ri[ia] != ri[ib] {
			return ri[ia] < ri[ib]
		}
		return ci[ia] < ci[ib]
	})
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		Col:    make([]int, 0, n),
		Val:    make([]float64, 0, n),
	}
	prevR, prevC := -1, -1
	for _, k := range order {
		i, j, x := ri[k], ci[k], v[k]
		if i == prevR && j == prevC {
			m.Val[len(m.Val)-1] += x
			continue
		}
		for r := prevR + 1; r <= i; r++ {
			m.RowPtr[r] = len(m.Col)
		}
		m.Col = append(m.Col, j)
		m.Val = append(m.Val, x)
		prevR, prevC = i, j
	}
	for r := prevR + 1; r <= rows; r++ {
		m.RowPtr[r] = len(m.Col)
	}
	return m
}

// MulVec computes y = A·x.
func (a *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != a.Cols {
		return nil, fmt.Errorf("MulVec: vector length %d, want %d: %w", len(x), a.Cols, ErrShape)
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
	return y, nil
}

// MulVecT computes y = Aᵀ·x.
func (a *CSR) MulVecT(x []float64) ([]float64, error) {
	if len(x) != a.Rows {
		return nil, fmt.Errorf("MulVecT: vector length %d, want %d: %w", len(x), a.Rows, ErrShape)
	}
	y := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			y[a.Col[k]] += a.Val[k] * xi
		}
	}
	return y, nil
}

// Dense expands the matrix into row-major dense storage (testing helper).
func (a *CSR) Dense() [][]float64 {
	out := make([][]float64, a.Rows)
	for i := range out {
		out[i] = make([]float64, a.Cols)
		cols, vals := a.Row(i)
		for k, j := range cols {
			out[i][j] += vals[k]
		}
	}
	return out
}
