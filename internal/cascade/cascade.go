// Package cascade simulates thermal cascading failures under the DC model:
// overloaded lines trip, flows redistribute, islands are balanced by
// generation scaling and load shedding, and the process repeats until the
// system stabilizes. The paper's central safety claim is that dispatching
// against manipulated ratings "can cause the lines to rapidly deteriorate
// or degrade, increasing their likelihood of tripping. The sudden
// disconnection of power lines can cause an outage." (Section II); this
// package turns that into a measurable: load lost when the overloads the
// attack induced are allowed to trip.
package cascade

import (
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid"
)

// Options tune the simulation.
type Options struct {
	// TripThreshold is the loading fraction above which a line trips
	// (default 1.0 = trip anything over its rating; protection curves in
	// practice allow brief excursions, so 1.05–1.25 are also realistic).
	TripThreshold float64
	// MaxRounds caps redistribution rounds (default 50).
	MaxRounds int
}

func (o Options) withDefaults() Options {
	if o.TripThreshold <= 0 {
		o.TripThreshold = 1.0
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 50
	}
	return o
}

// TripEvent is one line disconnection.
type TripEvent struct {
	// Round is the cascade round (1-based).
	Round int
	// Line indexes the original network's Lines.
	Line int
	// FlowMW and RatingMW record the overload that tripped it.
	FlowMW, RatingMW float64
}

// Result summarizes a cascade.
type Result struct {
	// Events lists trips in order.
	Events []TripEvent
	// Rounds is the number of redistribution rounds until stability.
	Rounds int
	// ShedMW is the total load disconnected to rebalance islands.
	ShedMW float64
	// ServedMW is the demand still served at the end.
	ServedMW float64
	// Islands is the number of connected components at the end.
	Islands int
	// LinesOut is the total number of tripped lines.
	LinesOut int
}

// Simulate runs the cascade from an operating point: a per-generator
// dispatch and the true ratings (entries ≤ 0 never trip).
func Simulate(n *grid.Network, dispatch []float64, ratings []float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if len(dispatch) != len(n.Gens) {
		return nil, fmt.Errorf("cascade: %d dispatch values for %d generators", len(dispatch), len(n.Gens))
	}
	if len(ratings) != len(n.Lines) {
		return nil, fmt.Errorf("cascade: %d ratings for %d lines", len(n.Lines), len(ratings))
	}

	alive := make([]bool, len(n.Lines))
	for i := range alive {
		alive[i] = true
	}
	gen := make([]float64, len(n.Gens))
	copy(gen, dispatch)
	load := make([]float64, len(n.Buses))
	for i := range n.Buses {
		load[i] = n.Buses[i].Pd
	}
	res := &Result{}

	for round := 1; round <= o.MaxRounds; round++ {
		flows, islands, shed, err := solveState(n, alive, gen, load)
		if err != nil {
			return nil, err
		}
		res.ShedMW += shed
		res.Islands = islands
		tripped := false
		for li := range n.Lines {
			if !alive[li] {
				continue
			}
			u := ratings[li]
			if u <= 0 {
				continue
			}
			if math.Abs(flows[li]) > o.TripThreshold*u*(1+1e-9) {
				alive[li] = false
				tripped = true
				res.Events = append(res.Events, TripEvent{
					Round: round, Line: li, FlowMW: flows[li], RatingMW: u,
				})
			}
		}
		res.Rounds = round
		if !tripped {
			break
		}
	}
	res.LinesOut = len(res.Events)
	for i := range load {
		res.ServedMW += load[i]
	}
	return res, nil
}

// solveState computes the DC flows over the surviving lines, balancing each
// island by scaling generation down or shedding load (mutating gen/load),
// and returns flows indexed like the original lines, the island count, and
// the load shed this round.
func solveState(n *grid.Network, alive []bool, gen, load []float64) (flows []float64, islands int, shed float64, err error) {
	nb := len(n.Buses)
	// Union-find over surviving lines.
	parent := make([]int, nb)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for li := range n.Lines {
		if !alive[li] {
			continue
		}
		fi, e1 := n.BusIndex(n.Lines[li].From)
		ti, e2 := n.BusIndex(n.Lines[li].To)
		if e1 != nil || e2 != nil {
			return nil, 0, 0, fmt.Errorf("cascade: %v %v", e1, e2)
		}
		parent[find(fi)] = find(ti)
	}
	comps := make(map[int][]int)
	for i := 0; i < nb; i++ {
		r := find(i)
		comps[r] = append(comps[r], i)
	}
	islands = len(comps)

	flows = make([]float64, len(n.Lines))
	for _, buses := range comps {
		s, err := balanceIsland(n, alive, buses, gen, load)
		shed += s
		if err != nil {
			return nil, 0, 0, err
		}
		f, err := islandFlows(n, alive, buses, gen, load)
		if err != nil {
			return nil, 0, 0, err
		}
		for li, v := range f {
			flows[li] = v
		}
	}
	return flows, islands, shed, nil
}

// balanceIsland equalizes generation and load within one component by
// scaling generation (down when surplus, up to Pmax when deficient) and
// shedding any remaining unserved load proportionally. It returns the MW
// shed.
func balanceIsland(n *grid.Network, alive []bool, buses []int, gen, load []float64) (float64, error) {
	inIsland := make(map[int]bool, len(buses))
	for _, b := range buses {
		inIsland[b] = true
	}
	var totalGen, totalLoad, capMax float64
	var genIdx []int
	for gi := range n.Gens {
		bi, err := n.BusIndex(n.Gens[gi].Bus)
		if err != nil {
			return 0, fmt.Errorf("cascade: %w", err)
		}
		if inIsland[bi] {
			genIdx = append(genIdx, gi)
			totalGen += gen[gi]
			capMax += n.Gens[gi].Pmax
		}
	}
	var loadIdx []int
	for _, b := range buses {
		if load[b] > 0 {
			loadIdx = append(loadIdx, b)
			totalLoad += load[b]
		}
	}
	tol := 1e-6 * (1 + totalLoad)
	switch {
	case totalGen > totalLoad+tol:
		// Surplus: scale generation down (governors back off).
		scale := 0.0
		if totalGen > 0 {
			scale = totalLoad / totalGen
		}
		for _, gi := range genIdx {
			gen[gi] *= scale
		}
		return 0, nil
	case totalGen < totalLoad-tol:
		// Deficit: ramp running units up proportionally, clamping at
		// Pmax (primary frequency response), then shed what remains.
		remaining := totalLoad
		cur := totalGen
		for iter := 0; iter < 8 && cur < remaining-tol && cur > 0; iter++ {
			scale := remaining / cur
			cur = 0
			for _, gi := range genIdx {
				gen[gi] = math.Min(gen[gi]*scale, n.Gens[gi].Pmax)
				cur += gen[gi]
			}
		}
		if cur >= remaining-tol {
			return 0, nil
		}
		// All clamped units cannot cover the load (or no unit was
		// running): shed the deficit proportionally.
		deficit := remaining - cur
		if capMax > cur && cur < remaining {
			// Units at zero output but with capacity start up last.
			extra := math.Min(capMax-cur, deficit)
			if extra > tol {
				for _, gi := range genIdx {
					headroom := n.Gens[gi].Pmax - gen[gi]
					if headroom > 0 && capMax-cur > 0 {
						gen[gi] += extra * headroom / (capMax - cur)
					}
				}
				deficit -= extra
			}
		}
		if deficit <= tol {
			return 0, nil
		}
		if totalLoad > 0 {
			scale := (totalLoad - deficit) / totalLoad
			for _, b := range loadIdx {
				load[b] *= scale
			}
		}
		return deficit, nil
	default:
		return 0, nil
	}
}

// islandFlows solves the island's DC power flow and scatters the flows back
// to original line indices.
func islandFlows(n *grid.Network, alive []bool, buses []int, gen, load []float64) (map[int]float64, error) {
	if len(buses) == 1 {
		return map[int]float64{}, nil
	}
	inIsland := make(map[int]bool, len(buses))
	for _, b := range buses {
		inIsland[b] = true
	}
	sub := &grid.Network{Name: "island", BaseMVA: n.BaseMVA}
	busMap := map[int]int{} // original index → sub external ID
	for _, b := range buses {
		id := len(sub.Buses) + 1
		busMap[b] = id
		typ := grid.PQ
		if len(sub.Buses) == 0 {
			typ = grid.Slack
		}
		sub.Buses = append(sub.Buses, grid.Bus{ID: id, Type: typ, VnomKV: 100, Vmin: 0.9, Vmax: 1.1})
	}
	var lineIdx []int
	for li := range n.Lines {
		if !alive[li] {
			continue
		}
		fi, _ := n.BusIndex(n.Lines[li].From)
		ti, _ := n.BusIndex(n.Lines[li].To)
		if !inIsland[fi] || !inIsland[ti] {
			continue
		}
		sub.Lines = append(sub.Lines, grid.Line{
			ID: len(sub.Lines) + 1, From: busMap[fi], To: busMap[ti], X: n.Lines[li].X,
		})
		lineIdx = append(lineIdx, li)
	}
	// A generator placeholder satisfies validation; injections are passed
	// explicitly.
	sub.Gens = []grid.Generator{{ID: 1, Bus: 1, Pmax: 1}}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("cascade: island model: %w", err)
	}
	inj := make([]float64, len(sub.Buses))
	for _, b := range buses {
		inj[busMap[b]-1] = -load[b]
	}
	for gi := range n.Gens {
		bi, _ := n.BusIndex(n.Gens[gi].Bus)
		if inIsland[bi] {
			inj[busMap[bi]-1] += gen[gi]
		}
	}
	res, err := dcflow.Solve(sub, inj)
	if err != nil {
		return nil, fmt.Errorf("cascade: island flow: %w", err)
	}
	out := make(map[int]float64, len(lineIdx))
	for si, li := range lineIdx {
		out[li] = res.Flows[si]
	}
	return out, nil
}
