package cascade_test

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/cascade"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
)

func TestNoCascadeAtSafePoint(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil) // respects the 160 MW ratings
	if err != nil {
		t.Fatal(err)
	}
	ratings := []float64{160, 160, 160}
	sim, err := cascade.Simulate(n, res.P, ratings, cascade.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.LinesOut != 0 || sim.ShedMW != 0 {
		t.Fatalf("safe point cascaded: %+v", sim)
	}
	if math.Abs(sim.ServedMW-300) > 1e-6 {
		t.Fatalf("served = %v, want 300", sim.ServedMW)
	}
	if sim.Islands != 1 {
		t.Fatalf("islands = %d", sim.Islands)
	}
}

func TestAttackTriggersCascade(t *testing.T) {
	// Table I row 1: the attacked dispatch pushes 200 MW down line {2,3}
	// whose true rating is 120 → it trips; the redistribution overloads
	// line {1,3} (300 MW vs 130) → it trips; bus 3 islands and its whole
	// 300 MW load is lost. The paper's outage scenario, end to end.
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := m.Solve([]float64{160, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	trueRatings := []float64{160, 130, 120}
	sim, err := cascade.Simulate(n, attacked.P, trueRatings, cascade.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.LinesOut < 2 {
		t.Fatalf("expected a multi-line cascade, got %+v", sim)
	}
	if sim.ShedMW < 250 {
		t.Fatalf("expected a major outage, shed only %v MW", sim.ShedMW)
	}
	if sim.Islands < 2 {
		t.Fatalf("expected islanding, got %d component(s)", sim.Islands)
	}
	// Events are ordered by round.
	for i := 1; i < len(sim.Events); i++ {
		if sim.Events[i].Round < sim.Events[i-1].Round {
			t.Fatal("events out of order")
		}
	}
}

func TestTripThresholdTolerance(t *testing.T) {
	// With a 1.25 protection threshold, a 15% overload survives.
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil) // flows (−20, 140, 160)
	if err != nil {
		t.Fatal(err)
	}
	trueRatings := []float64{160, 130, 145} // f23=160 is ~10% over 145
	relaxed, err := cascade.Simulate(n, res.P, trueRatings, cascade.Options{TripThreshold: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.LinesOut != 0 {
		t.Fatalf("protection tolerance ignored: %+v", relaxed)
	}
	strict, err := cascade.Simulate(n, res.P, trueRatings, cascade.Options{TripThreshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if strict.LinesOut == 0 {
		t.Fatal("strict protection should have tripped the overload")
	}
}

func TestInputValidation(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cascade.Simulate(n, []float64{1}, []float64{1, 2, 3}, cascade.Options{}); err == nil {
		t.Fatal("want dispatch length error")
	}
	if _, err := cascade.Simulate(n, []float64{1, 2}, []float64{1}, cascade.Options{}); err == nil {
		t.Fatal("want ratings length error")
	}
}

func TestCascadeOn118BusAttack(t *testing.T) {
	// On the 118-bus system, compare cascade impact of the honest vs a
	// manipulated operating point under tight true ratings.
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// True ratings: DLR lines run 15% below static today.
	trueRatings := n.Ratings(nil)
	for _, li := range n.DLRLines() {
		trueRatings[li] *= 0.85
	}
	// The honest operator would dispatch against the true ratings.
	honestTight, err := m.Solve(trueRatings)
	if err != nil {
		t.Fatal(err)
	}
	simHonest, err := cascade.Simulate(n, honestTight.P, trueRatings, cascade.Options{TripThreshold: 1.02})
	if err != nil {
		t.Fatal(err)
	}
	if simHonest.LinesOut != 0 {
		t.Fatalf("honest point must not cascade: %+v", simHonest)
	}
	// The deceived operator dispatches against inflated ratings.
	inflated := n.Ratings(nil)
	for _, li := range n.DLRLines() {
		inflated[li] = n.Lines[li].DLRMax
	}
	deceived := honest
	if res, err := m.Solve(inflated); err == nil {
		deceived = res
	}
	simAttacked, err := cascade.Simulate(n, deceived.P, trueRatings, cascade.Options{TripThreshold: 1.02})
	if err != nil {
		t.Fatal(err)
	}
	if simAttacked.LinesOut < simHonest.LinesOut {
		t.Fatalf("attacked cascade smaller than honest: %d vs %d", simAttacked.LinesOut, simHonest.LinesOut)
	}
	t.Logf("118-bus cascade under attack: %d trips, %.1f MW shed, %d islands",
		simAttacked.LinesOut, simAttacked.ShedMW, simAttacked.Islands)
}
