package core_test

import (
	"testing"
	"time"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
)

// knowledge118 builds attacker knowledge for the 118-bus case with true
// dynamic ratings at the static values.
func knowledge118(t testing.TB) *core.Knowledge {
	t.Helper()
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range n.DLRLines() {
		ud[li] = n.Lines[li].RateMVA
	}
	k, err := core.NewKnowledge(m, ud)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestScalability118 mirrors Section IV-B: budgeted Algorithm 1 on the
// 118-bus case with quadratic costs completes and finds a positive-gain
// attack that weakly dominates the greedy baseline.
func TestScalability118(t *testing.T) {
	if testing.Short() {
		t.Skip("118-bus bilevel sweep skipped in -short mode")
	}
	k := knowledge118(t)
	start := time.Now()
	att, err := core.FindOptimalAttack(k, core.Options{MaxNodes: 150, RelGap: 1e-3})
	if err != nil {
		t.Fatalf("FindOptimalAttack: %v", err)
	}
	t.Logf("118-bus attack: target line %d dir %+d gain %.2f%% nodes %d exact %v in %v",
		att.TargetLine, att.Direction, att.GainPct, att.Nodes, att.Exact, time.Since(start))
	if att.GainPct <= 0 {
		t.Fatalf("expected positive gain on congested synthetic 118-bus case, got %v", att.GainPct)
	}
	grd, err := core.GreedyVertexAttack(k)
	if err == nil && att.GainPct < grd.GainPct-1e-4 {
		t.Fatalf("budgeted optimal %v%% below greedy %v%%", att.GainPct, grd.GainPct)
	}
	// Every reported gain must replay exactly through the operator's ED.
	ev, err := k.EvaluateAttack(att.DLR)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("118-bus attack infeasible when replayed")
	}
}

// TestCoordinateAscent118 checks the sweep-scale approximate attacker.
func TestCoordinateAscent118(t *testing.T) {
	if testing.Short() {
		t.Skip("118-bus coordinate ascent skipped in -short mode")
	}
	k := knowledge118(t)
	start := time.Now()
	att, err := core.CoordinateAscentAttack(k, core.CoordinateOptions{GridPoints: 5, MaxSweeps: 3})
	if err != nil {
		t.Fatalf("CoordinateAscentAttack: %v", err)
	}
	t.Logf("118-bus coordinate ascent: gain %.2f%% in %v", att.GainPct, time.Since(start))
	grd, err := core.GreedyVertexAttack(k)
	if err != nil {
		t.Fatal(err)
	}
	if att.GainPct < grd.GainPct-1e-6 {
		t.Fatalf("coordinate ascent %v%% below its own greedy start %v%%", att.GainPct, grd.GainPct)
	}
}
