package core

import (
	"fmt"
	"math/rand"

	"github.com/edsec/edattack/internal/dispatch"
)

// The paper's threat model assumes "an informed attacker" but stresses that
// the broader setting is "a resource-constrained adversary with only
// partial (or possibly full) knowledge of [the] system" (Section I-B). This
// file quantifies that axis: the attacker plans with a *perturbed* model —
// noisy demand and cost estimates — and the attack is then scored against
// the true system.

// PartialKnowledgeOptions control the perturbation.
type PartialKnowledgeOptions struct {
	// DemandErrPct is the 1-σ relative error on each bus demand estimate
	// (e.g. 0.05 = 5%).
	DemandErrPct float64
	// CostErrPct is the 1-σ relative error on each generator's cost
	// coefficients.
	CostErrPct float64
	// Seed makes the perturbation deterministic.
	Seed int64
}

// PerturbedKnowledge builds the attacker's flawed world model: a clone of
// the true network with noisy demands and costs, sharing the true DLR
// values (the attacker reads those out of the SCADA feed directly).
func PerturbedKnowledge(k *Knowledge, o PartialKnowledgeOptions) (*Knowledge, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	net := k.Model.Net.Clone()
	for i := range net.Buses {
		if net.Buses[i].Pd > 0 && o.DemandErrPct > 0 {
			net.Buses[i].Pd *= 1 + o.DemandErrPct*rng.NormFloat64()
			if net.Buses[i].Pd < 0 {
				net.Buses[i].Pd = 0
			}
		}
	}
	for i := range net.Gens {
		if o.CostErrPct > 0 {
			net.Gens[i].CostA *= 1 + o.CostErrPct*rng.NormFloat64()
			net.Gens[i].CostB *= 1 + o.CostErrPct*rng.NormFloat64()
			if net.Gens[i].CostA < 0 {
				net.Gens[i].CostA = 0
			}
			if net.Gens[i].CostB < 0 {
				net.Gens[i].CostB = 0
			}
		}
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("core: perturbed network invalid: %w", err)
	}
	model, err := dispatch.BuildModel(net)
	if err != nil {
		return nil, fmt.Errorf("core: perturbed model: %w", err)
	}
	return NewKnowledge(model, k.TrueDLR)
}

// PartialKnowledgeResult reports one sensitivity sample.
type PartialKnowledgeResult struct {
	// PlannedGainPct is what the attacker's flawed model predicted.
	PlannedGainPct float64
	// RealizedGainPct is what the manipulation achieves against the true
	// system (0 when the true operator's ED rejects/absorbs it).
	RealizedGainPct float64
	// Feasible reports whether the true operator's ED stayed feasible
	// under the manipulation (false would mean an alarm — a blown cover).
	Feasible bool
}

// AttackWithPartialKnowledge plans the optimal attack on the perturbed
// model and replays it against the true system.
func AttackWithPartialKnowledge(trueK *Knowledge, o PartialKnowledgeOptions, ao Options) (*PartialKnowledgeResult, error) {
	fake, err := PerturbedKnowledge(trueK, o)
	if err != nil {
		return nil, err
	}
	att, err := FindOptimalAttack(fake, ao)
	if err == ErrNoFeasibleAttack {
		return &PartialKnowledgeResult{Feasible: true}, nil
	}
	if err != nil {
		return nil, err
	}
	ev, err := trueK.EvaluateAttack(att.DLR)
	if err != nil {
		return nil, err
	}
	out := &PartialKnowledgeResult{
		PlannedGainPct: att.GainPct,
		Feasible:       ev.Feasible,
	}
	if ev.Feasible {
		out.RealizedGainPct = ev.GainPct
	}
	return out, nil
}
