package core_test

import (
	"testing"

	"github.com/edsec/edattack/internal/core"
)

func TestPerturbedKnowledgeIsDifferentButValid(t *testing.T) {
	k := knowledge3(t, 130, 120)
	fake, err := core.PerturbedKnowledge(k, core.PartialKnowledgeOptions{
		DemandErrPct: 0.1, CostErrPct: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fake.Model.Net.TotalDemand() == k.Model.Net.TotalDemand() {
		t.Fatal("perturbation changed nothing")
	}
	// The true network must be untouched.
	if k.Model.Net.TotalDemand() != 300 {
		t.Fatalf("true network mutated: %v", k.Model.Net.TotalDemand())
	}
	// True DLR values carry over (they come from the SCADA feed).
	if fake.TrueDLR[1] != 130 || fake.TrueDLR[2] != 120 {
		t.Fatalf("DLR knowledge lost: %v", fake.TrueDLR)
	}
}

func TestPartialKnowledgeZeroErrorMatchesFull(t *testing.T) {
	k := knowledge3(t, 130, 120)
	res, err := core.AttackWithPartialKnowledge(k,
		core.PartialKnowledgeOptions{Seed: 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (200.0/120 - 1)
	if !res.Feasible || res.RealizedGainPct < want-1e-3 {
		t.Fatalf("zero-error attack degraded: %+v (want ≈ %v)", res, want)
	}
}

// TestPartialKnowledgeDegradation is the sensitivity shape: on the 3-bus
// case the optimal strategy is a coarse band vertex, so it is remarkably
// robust to model error — the realized gain stays positive even with 20%
// demand/cost noise, supporting the paper's claim that approximate (DC,
// estimated) knowledge suffices for damaging attacks.
func TestPartialKnowledgeDegradation(t *testing.T) {
	k := knowledge3(t, 130, 120)
	for _, errPct := range []float64{0.05, 0.1, 0.2} {
		positives := 0
		samples := 5
		for s := 0; s < samples; s++ {
			res, err := core.AttackWithPartialKnowledge(k, core.PartialKnowledgeOptions{
				DemandErrPct: errPct, CostErrPct: errPct, Seed: int64(100*errPct) + int64(s),
			}, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Feasible && res.RealizedGainPct > 0 {
				positives++
			}
		}
		if positives == 0 {
			t.Fatalf("no attack survived %.0f%% model error", 100*errPct)
		}
	}
}
