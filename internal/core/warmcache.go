package core

import (
	"sync"

	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/telemetry"
)

// WarmCache carries round-1 root-relaxation bases across FindOptimalAttack
// runs on the same grid. A one-shot run pays a cold phase-I simplex for the
// first row-generation round of every subproblem; a repeat run on the same
// topology re-solves the exact same KKT systems, so seeding each round-1
// search from the previous run's root basis skips phase I the same way
// later rounds already skip it via remapRootBasis. The basis is a hint, not
// an assumption: the warm-started dual simplex certifies every result and
// falls back to the cold two-phase solve whenever it cannot, so attacks are
// bit-identical with the cache hot, cold, or absent.
//
// Entries are keyed by (target line, direction) — one per subproblem of
// Algorithm 1's fan-out — and validated against the requesting subproblem's
// exact shape (method, variable counts, inequality-row layout) before use;
// any mismatch is a miss. lp.Basis values are immutable, so one entry may
// seed concurrent runs. A WarmCache is safe for concurrent use; the
// zero-value-with-nil-receiver pattern is supported (a nil *WarmCache never
// hits and never stores), so callers thread it unconditionally.
type WarmCache struct {
	// Metrics, when non-nil, receives core_warmcache_hits_total,
	// core_warmcache_misses_total, and core_warmcache_stores_total, plus
	// the core_warmcache_entries gauge.
	Metrics *telemetry.Registry

	mu      sync.Mutex
	entries map[warmKey]*warmEntry
}

type warmKey struct {
	target int
	dir    int
}

// warmEntry snapshots one subproblem's solved round-1 root basis together
// with the shape it was captured on. The shape fields mirror what
// remapRootBasis validates between row-generation rounds; here the layouts
// must match exactly (no extension), since the basis crosses runs rather
// than rounds.
type warmEntry struct {
	basis      *lp.Basis
	method     Method
	np, nx, ni int
	rows       []ineqRow
}

// NewWarmCache returns an empty cache.
func NewWarmCache() *WarmCache {
	return &WarmCache{entries: make(map[warmKey]*warmEntry)}
}

// Len reports the number of stored bases.
func (w *WarmCache) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

func (w *WarmCache) count(name string) {
	if w.Metrics != nil {
		w.Metrics.Counter(name).Inc()
	}
}

// lookup returns the stored basis for (target, dir) when its captured shape
// matches sp exactly, nil otherwise. Shape can drift between requests — a
// different initial monitored set (demand-dependent) changes the row layout
// — so every field remapRootBasis would check across rounds is checked here
// across runs, plus ni equality since no extension is possible.
func (w *WarmCache) lookup(target, dir int, sp *subproblem) *lp.Basis {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	e := w.entries[warmKey{target, dir}]
	w.mu.Unlock()
	if e == nil {
		w.count("core_warmcache_misses_total")
		return nil
	}
	if e.method != sp.method || e.np != sp.np || e.nx != sp.nx || e.ni != sp.ni {
		w.count("core_warmcache_misses_total")
		return nil
	}
	for j := range e.rows {
		if e.rows[j] != sp.rows[j] {
			w.count("core_warmcache_misses_total")
			return nil
		}
	}
	w.count("core_warmcache_hits_total")
	return e.basis
}

// store records sp's solved round-1 root basis, replacing any previous
// entry for (target, dir). Later runs overwrite earlier ones — the most
// recent basis reflects the most recent demand profile, which is the best
// guess for the next request.
func (w *WarmCache) store(target, dir int, sp *subproblem) {
	if w == nil || sp.solvedRootBasis == nil {
		return
	}
	e := &warmEntry{
		basis:  sp.solvedRootBasis,
		method: sp.method,
		np:     sp.np,
		nx:     sp.nx,
		ni:     sp.ni,
		rows:   append([]ineqRow(nil), sp.rows...),
	}
	w.mu.Lock()
	if w.entries == nil {
		w.entries = make(map[warmKey]*warmEntry)
	}
	w.entries[warmKey{target, dir}] = e
	n := len(w.entries)
	w.mu.Unlock()
	w.count("core_warmcache_stores_total")
	if w.Metrics != nil {
		w.Metrics.Gauge("core_warmcache_entries").Set(float64(n))
	}
}
