package core

import (
	"fmt"
	"math"
)

// CoordinateOptions tune the guided-search attacker.
type CoordinateOptions struct {
	// GridPoints is the number of trial values per DLR line per sweep
	// (default 7).
	GridPoints int
	// MaxSweeps caps full coordinate sweeps per start point (default 6).
	MaxSweeps int
}

func (o CoordinateOptions) withDefaults() CoordinateOptions {
	if o.GridPoints < 2 {
		o.GridPoints = 7
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 6
	}
	return o
}

// CoordinateAscentAttack is the scalable approximate attacker used for long
// parameter sweeps (e.g. the 24-hour studies of Figs. 4–5): it evaluates the
// operator's actual dispatch — the exact realized U_cap — under candidate
// manipulations and performs coordinate ascent over the |E_D|-dimensional
// plausibility box, starting from the greedy vertices and the identity.
//
// Every reported gain is realized (achievable by construction); the method
// trades the branch-and-bound optimality certificate for speed. On the
// paper's 3-bus example it recovers the exact optimum; see the ablation
// benchmarks for the gap on larger cases.
func CoordinateAscentAttack(k *Knowledge, o CoordinateOptions) (*Attack, error) {
	o = o.withDefaults()
	net := k.Model.Net
	dlrLines := net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}

	// Candidate starts: true ratings (identity) and each greedy vertex.
	starts := make([]map[int]float64, 0, len(dlrLines)+1)
	identity := make(map[int]float64, len(dlrLines))
	for _, li := range dlrLines {
		identity[li] = clampToBand(&net.Lines[li], k.TrueDLR[li])
	}
	starts = append(starts, identity)
	for _, target := range dlrLines {
		v := make(map[int]float64, len(dlrLines))
		for _, li := range dlrLines {
			if li == target {
				v[li] = net.Lines[li].DLRMax
			} else {
				v[li] = net.Lines[li].DLRMin
			}
		}
		starts = append(starts, v)
	}

	type scored struct {
		dlr  map[int]float64
		ev   *Evaluation
		gain float64
	}
	evaluate := func(dlr map[int]float64) (*scored, error) {
		ev, err := k.EvaluateAttack(dlr)
		if err != nil {
			return nil, err
		}
		if !ev.Feasible {
			return nil, nil
		}
		return &scored{dlr: dlr, ev: ev, gain: ev.GainPct}, nil
	}

	var best *scored
	for si, start := range starts {
		cur, err := evaluate(start)
		if err != nil {
			return nil, fmt.Errorf("core: coordinate start %d: %w", si, err)
		}
		if cur == nil {
			continue
		}
		for sweep := 0; sweep < o.MaxSweeps; sweep++ {
			improved := false
			for _, li := range dlrLines {
				l := &net.Lines[li]
				bestVal := cur.dlr[li]
				for g := 0; g < o.GridPoints; g++ {
					v := l.DLRMin + (l.DLRMax-l.DLRMin)*float64(g)/float64(o.GridPoints-1)
					if math.Abs(v-bestVal) < 1e-9 {
						continue
					}
					trial := cloneDLR(cur.dlr)
					trial[li] = v
					cand, err := evaluate(trial)
					if err != nil {
						return nil, fmt.Errorf("core: coordinate trial: %w", err)
					}
					if cand != nil && cand.gain > cur.gain+1e-9 {
						cur = cand
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		if best == nil || cur.gain > best.gain {
			best = cur
		}
	}
	if best == nil {
		return nil, ErrNoFeasibleAttack
	}
	return &Attack{
		DLR:            best.dlr,
		TargetLine:     best.ev.WorstLine,
		Direction:      best.ev.Direction,
		GainPct:        best.gain,
		PredictedP:     best.ev.Dispatch.P,
		PredictedFlows: best.ev.Dispatch.Flows,
		PredictedCost:  best.ev.Dispatch.Cost,
		Exact:          false,
	}, nil
}

func cloneDLR(in map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
