package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/telemetry"
)

// TestWarmCacheBitIdentical pins the cross-run warm-basis cache's soundness
// contract: a run seeded from a prior run's root bases returns the exact
// attack a cacheless run does, and repeat runs actually hit the cache.
func TestWarmCacheBitIdentical(t *testing.T) {
	ref, err := core.FindOptimalAttack(knowledgeFor(t, cases.Case9), core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	warm := core.NewWarmCache()
	warm.Metrics = reg
	k := knowledgeFor(t, cases.Case9)
	first, err := core.FindOptimalAttack(k, core.Options{Workers: 1, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	sameAttack(t, "cold run with empty cache", ref, first)
	if warm.Len() == 0 {
		t.Fatal("warm cache empty after a completed run")
	}
	stores := reg.Counter("core_warmcache_stores_total").Value()
	if stores == 0 {
		t.Fatal("no stores counted after a completed run")
	}

	second, err := core.FindOptimalAttack(k, core.Options{Workers: 1, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	sameAttack(t, "repeat run with hot cache", ref, second)
	if hits := reg.Counter("core_warmcache_hits_total").Value(); hits == 0 {
		t.Fatal("repeat run on an identical grid never hit the warm cache")
	}
}

// TestWarmCacheIgnoredUnderNoWarmStart: NoWarmStart must keep the cache
// untouched — no stores, no lookups.
func TestWarmCacheIgnoredUnderNoWarmStart(t *testing.T) {
	reg := telemetry.NewRegistry()
	warm := core.NewWarmCache()
	warm.Metrics = reg
	k := knowledgeFor(t, cases.Case9)
	if _, err := core.FindOptimalAttack(k, core.Options{Workers: 1, Warm: warm, NoWarmStart: true}); err != nil {
		t.Fatal(err)
	}
	if warm.Len() != 0 {
		t.Fatalf("NoWarmStart run stored %d bases", warm.Len())
	}
	total := reg.Counter("core_warmcache_hits_total").Value() +
		reg.Counter("core_warmcache_misses_total").Value() +
		reg.Counter("core_warmcache_stores_total").Value()
	if total != 0 {
		t.Fatalf("NoWarmStart run touched the warm cache %d times", total)
	}
}

// TestContextCancelAborts: a context canceled before the run starts must
// surface as a wrapped context.Canceled, never as an attack.
func TestContextCancelAborts(t *testing.T) {
	k := knowledgeFor(t, cases.Case9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	att, err := core.FindOptimalAttack(k, core.Options{Workers: 1, Ctx: ctx})
	if att != nil {
		t.Fatal("canceled run returned an attack")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}

// TestContextDeadlineAborts: an already-expired deadline must surface as
// context.DeadlineExceeded quickly, and a generous deadline must not change
// the result.
func TestContextDeadlineAborts(t *testing.T) {
	k := knowledgeFor(t, cases.Case9)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := core.FindOptimalAttack(k, core.Options{Workers: 1, Ctx: ctx}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}

	ref, err := core.FindOptimalAttack(k, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	att, err := core.FindOptimalAttack(k, core.Options{Workers: 1, Ctx: ctx2})
	if err != nil {
		t.Fatal(err)
	}
	sameAttack(t, "run under a generous deadline", ref, att)
}
