package core_test

import (
	"math"
	"runtime"
	"testing"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
)

// knowledgeFor builds attacker knowledge with true dynamic ratings at the
// static values for an arbitrary benchmark case.
func knowledgeFor(t testing.TB, build func() (*grid.Network, error)) *core.Knowledge {
	t.Helper()
	n, err := build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range n.DLRLines() {
		ud[li] = n.Lines[li].RateMVA
	}
	k, err := core.NewKnowledge(m, ud)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// sameAttack asserts the attack-identity fields — gain, target, direction
// and the full DLR manipulation vector — are bit-identical.
func sameAttack(t *testing.T, label string, want, got *core.Attack) {
	t.Helper()
	if got.GainPct != want.GainPct {
		t.Errorf("%s: gain %v, want %v", label, got.GainPct, want.GainPct)
	}
	if got.TargetLine != want.TargetLine {
		t.Errorf("%s: target line %d, want %d", label, got.TargetLine, want.TargetLine)
	}
	if got.Direction != want.Direction {
		t.Errorf("%s: direction %d, want %d", label, got.Direction, want.Direction)
	}
	if len(got.DLR) != len(want.DLR) {
		t.Fatalf("%s: DLR vector has %d entries, want %d", label, len(got.DLR), len(want.DLR))
	}
	for li, v := range want.DLR {
		gv, ok := got.DLR[li]
		if !ok {
			t.Errorf("%s: DLR vector missing line %d", label, li)
			continue
		}
		if gv != v {
			t.Errorf("%s: DLR[%d] = %v, want %v", label, li, gv, v)
		}
	}
}

// TestFindOptimalAttackDeterministicAcrossWorkers is the worker-count
// independence contract: with exact (non-truncating) solves, Algorithm 1
// must return the identical attack for every worker count, even though the
// shared incumbent bound makes pruning schedule-dependent.
func TestFindOptimalAttackDeterministicAcrossWorkers(t *testing.T) {
	// Exactly solvable cases only: case118's subproblems cannot close the
	// branch-and-bound gap in test-scale time, and under a truncating node
	// budget the worker schedule may legitimately affect the reported
	// incumbent (see Options.Workers) — so it cannot pin this contract.
	builds := []struct {
		name  string
		build func() (*grid.Network, error)
	}{
		{"case9", cases.Case9},
		{"case30", cases.Case30},
		{"case57", cases.Case57},
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			k := knowledgeFor(t, b.build)
			// Exact solves only: the determinism guarantee requires every
			// subproblem to prove its optimum (see Options.Workers).
			o := core.Options{RelGap: 1e-6}
			var ref *core.Attack
			for _, w := range workerCounts {
				o.Workers = w
				att, err := core.FindOptimalAttack(k, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !att.Exact {
					t.Fatalf("workers=%d: solve truncated; determinism contract needs exact solves", w)
				}
				if ref == nil {
					ref = att
					if math.IsNaN(att.GainPct) {
						t.Fatalf("NaN gain at workers=%d", w)
					}
					continue
				}
				sameAttack(t, b.name+"/workers="+itoa(w), ref, att)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestGreedyAndRandomDeterministicAcrossWorkers pins the baseline
// attackers' worker-count independence: candidate generation is sequential
// and merging is index-ordered, so the parallel sweeps must reproduce the
// sequential result exactly.
func TestGreedyAndRandomDeterministicAcrossWorkers(t *testing.T) {
	k := knowledgeFor(t, cases.Case9)
	grdSeq, err := core.GreedyVertexAttackWorkers(k, 1)
	if err != nil {
		t.Fatalf("greedy sequential: %v", err)
	}
	rndSeq, err := core.RandomAttackWorkers(k, 64, 7, 1)
	if err != nil {
		t.Fatalf("random sequential: %v", err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		grd, err := core.GreedyVertexAttackWorkers(k, w)
		if err != nil {
			t.Fatalf("greedy workers=%d: %v", w, err)
		}
		sameAttack(t, "greedy/workers="+itoa(w), grdSeq, grd)
		rnd, err := core.RandomAttackWorkers(k, 64, 7, w)
		if err != nil {
			t.Fatalf("random workers=%d: %v", w, err)
		}
		sameAttack(t, "random/workers="+itoa(w), rndSeq, rnd)
	}
}
