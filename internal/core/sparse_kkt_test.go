package core

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/lp"
)

// kktKnowledge builds attacker knowledge with true ratings at the static
// values for a named benchmark case.
func kktKnowledge(t *testing.T, build func() (*grid.Network, error)) *Knowledge {
	t.Helper()
	n, err := build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range n.DLRLines() {
		ud[li] = n.Lines[li].RateMVA
	}
	k, err := NewKnowledge(m, ud)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestSparseVsDenseRealKKT is the real-system differential gate: the bilevel
// single-level reformulations (stationarity, complementarity, and big-M rows
// over the inner dispatch KKT conditions) of the benchmark cases are exactly
// the sparse systems the revised simplex was built for. For each case the LP
// relaxation of the first few (target, direction) subproblems must come out
// of both engines with the same status, objectives within 1e-9, and the same
// warm verdict for a shared captured basis.
func TestSparseVsDenseRealKKT(t *testing.T) {
	casesUnderTest := []struct {
		name  string
		build func() (*grid.Network, error)
	}{
		{"case9", cases.Case9},
		{"case30", cases.Case30},
		{"case57", cases.Case57},
		{"case118", cases.Case118},
	}
	for _, tc := range casesUnderTest {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			k := kktKnowledge(t, tc.build)
			o := Options{}.withDefaults()
			dlr := k.Model.Net.DLRLines()
			if len(dlr) == 0 {
				t.Fatal("case has no DLR lines")
			}
			// Two targets × both directions bounds runtime on case118 while
			// still exercising distinct KKT right-hand sides and flip
			// patterns.
			targets := dlr
			if len(targets) > 2 {
				targets = targets[:2]
			}
			monitored := initialMonitoredSet(k, o)
			solved := 0
			for _, target := range targets {
				for _, dir := range []float64{1, -1} {
					s := newSubproblem(k, target, dir, monitored, o, nil)
					mp, err := s.build()
					if err != nil {
						t.Fatalf("target %d dir %+d: build: %v", target, int(dir), err)
					}
					base := mp.Base
					dense, derr := lp.SolveWith(base, lp.Options{DenseSolver: true, CaptureBasis: true})
					sparse, serr := lp.SolveWith(base, lp.Options{ForceSparse: true, CaptureBasis: true})
					if (derr == nil) != (serr == nil) {
						t.Fatalf("target %d dir %+d: dense err %v vs sparse err %v", target, int(dir), derr, serr)
					}
					if derr != nil {
						continue
					}
					if dense.Status != sparse.Status {
						t.Fatalf("target %d dir %+d: status %v vs %v", target, int(dir), dense.Status, sparse.Status)
					}
					if dense.Status != lp.Optimal {
						continue
					}
					solved++
					if d := math.Abs(dense.Objective - sparse.Objective); d > 1e-9*(1+math.Abs(dense.Objective)) {
						t.Fatalf("target %d dir %+d: objective gap %g (dense %.15g sparse %.15g)",
							target, int(dir), d, dense.Objective, sparse.Objective)
					}
					dw, err := lp.SolveWith(base, lp.Options{DenseSolver: true, WarmBasis: dense.Basis})
					if err != nil {
						t.Fatalf("target %d dir %+d: dense warm: %v", target, int(dir), err)
					}
					sw, err := lp.SolveWith(base, lp.Options{ForceSparse: true, WarmBasis: dense.Basis})
					if err != nil {
						t.Fatalf("target %d dir %+d: sparse warm: %v", target, int(dir), err)
					}
					if dw.Warm != sw.Warm {
						t.Fatalf("target %d dir %+d: warm verdict dense=%v sparse=%v",
							target, int(dir), dw.Warm, sw.Warm)
					}
					if d := math.Abs(dw.Objective - sw.Objective); d > 1e-9*(1+math.Abs(dense.Objective)) {
						t.Fatalf("target %d dir %+d: warm objective gap %g", target, int(dir), d)
					}
					if nnzD := base.Density(); nnzD > 0.3 {
						t.Errorf("target %d dir %+d: KKT relaxation density %.3f — not a sparse system, heuristic would go dense",
							target, int(dir), nnzD)
					}
				}
			}
			if solved == 0 {
				t.Fatal("no subproblem LP reached Optimal; differential never engaged")
			}
			t.Logf("%s: %d KKT relaxations differentially verified", tc.name, solved)
		})
	}
}
