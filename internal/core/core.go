// Package core implements the paper's primary contribution: optimal
// generation of dynamic-line-rating (DLR) manipulations against economic
// dispatch (Sections II–III of "Compromising Security of Economic Dispatch
// in Power System Operations", DSN 2017).
//
// The attacker (leader) picks manipulated ratings uᵃ within the EMS
// plausibility band [u_min, u_max] for the DLR line set E_D; the operator
// (follower) then solves DC economic dispatch against the manipulated
// ratings. The attacker maximizes the worst percentage violation of the
// *true* dynamic ratings u^d by the resulting flows:
//
//	U_cap(f; u^d) = max 100·( max_{l ∈ E_D, dir} dir·f_l / u^d_l − 1 )⁺
//
// Following Section III, the bilevel program is split into 2·|E_D|
// subproblems (one per DLR line and flow direction), each reformulated as a
// single-level program via the inner problem's KKT conditions. Two
// reformulations are provided: the paper's big-M MILP and direct
// complementarity branching (the default, which avoids big-M numerics).
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/milp"
	"github.com/edsec/edattack/internal/telemetry"
)

// wsPool recycles solver workspaces (internal/lp.Workspace) across tasks,
// runs, and callers. A workspace only moves where the solver's arrays live —
// never what they compute — so sharing one pool process-wide is safe; each
// Get hands a workspace to exactly one goroutine until the matching release.
var wsPool = sync.Pool{New: func() any { return lp.NewWorkspace() }}

// checkoutModelWorkspace attaches a pooled workspace to the model's LP/QP
// solver stack and returns the release function that restores the model's
// prior workspace and recycles the pooled one. No-op when disabled.
func checkoutModelWorkspace(m *dispatch.Model, disable bool) func() {
	if disable {
		return func() {}
	}
	prior := m.Workspace
	ws := wsPool.Get().(*lp.Workspace)
	ws.Reset()
	m.Workspace = ws
	return func() {
		m.Workspace = prior
		wsPool.Put(ws)
	}
}

// checkoutWorkspaces equips one bilevel task: a pooled workspace on the
// model (dispatch and QP solves) and a second on o.ws (the inner MILP's LP
// relaxations, threaded to milp.Options.LP). The two are deliberately
// distinct — the MILP's dive/polish heuristics run dispatch solves
// mid-search, and sharing one workspace would evict the branch-and-bound
// engine's retained factorization between nodes, demoting warm node solves
// to cold ones. The receiver must be a per-task copy of the caller's
// Options (o.ws is written). Sequential (Workers==1) runs share the
// caller's model across tasks; saving and restoring the model's prior
// workspace keeps that path on the identical checkout discipline as the
// clone-per-task one. No-op under DisablePooling.
func (o *Options) checkoutWorkspaces(m *dispatch.Model) func() {
	if o.DisablePooling {
		return func() {}
	}
	releaseModel := checkoutModelWorkspace(m, false)
	ws := wsPool.Get().(*lp.Workspace)
	ws.Reset()
	o.ws = ws
	return func() {
		o.ws = nil
		releaseModel()
		wsPool.Put(ws)
	}
}

// ErrNoDLRLines is returned when the network has no DLR-equipped lines to
// attack.
var ErrNoDLRLines = errors.New("core: network has no DLR lines")

// ErrNoFeasibleAttack is returned when no stealthy manipulation admits a
// feasible dispatch (the operator would alarm for every choice).
var ErrNoFeasibleAttack = errors.New("core: no feasible stealthy attack")

// Knowledge is the attacker's model of the system (Section II-A): network
// topology, susceptances, generator data and costs, nominal demand — all of
// which the paper argues are realistically obtainable — plus the current
// true dynamic ratings u^d of the DLR lines.
type Knowledge struct {
	// Model is the attacker's copy of the operator's DC-ED model.
	Model *dispatch.Model
	// TrueDLR maps DLR line index → the actual dynamic rating u^d the
	// attacker will overwrite (and against which violations are scored).
	TrueDLR map[int]float64
	// memo caches dive/polish dispatch evaluations keyed by the manipulated
	// rating vector. The dispatch solution is a unique pure function of the
	// ratings (the QP is strictly convex, and results are warm-state- and
	// engine-schedule-independent by the repo's determinism invariant), so
	// the cache changes speed only, never results. Shared across workers;
	// cached Results are treated as immutable.
	memo *edMemo
}

// NewKnowledge validates and bundles attacker knowledge. TrueDLR must have
// an entry for every DLR line; values must lie inside the line's
// plausibility band.
func NewKnowledge(m *dispatch.Model, trueDLR map[int]float64) (*Knowledge, error) {
	dlr := m.Net.DLRLines()
	if len(dlr) == 0 {
		return nil, ErrNoDLRLines
	}
	for _, li := range dlr {
		v, ok := trueDLR[li]
		if !ok {
			return nil, fmt.Errorf("core: missing true DLR value for line %d", li)
		}
		l := &m.Net.Lines[li]
		if v <= 0 || v < l.DLRMin-1e-9 || v > l.DLRMax+1e-9 {
			return nil, fmt.Errorf("core: true DLR %g for line %d outside plausibility band [%g, %g]",
				v, li, l.DLRMin, l.DLRMax)
		}
	}
	for li := range trueDLR {
		if li < 0 || li >= len(m.Net.Lines) || !m.Net.Lines[li].HasDLR {
			return nil, fmt.Errorf("core: TrueDLR entry for non-DLR line %d", li)
		}
	}
	return &Knowledge{Model: m, TrueDLR: trueDLR, memo: newEDMemo()}, nil
}

// edMemoCap bounds the dispatch memo: past this many entries lookups still
// hit but new results are no longer inserted, so a long scenario sweep
// cannot grow the cache without bound.
const edMemoCap = 1 << 17

// edMemo is a concurrency-safe memo of dispatch solves keyed by the packed
// manipulated-rating vector; a nil stored Result records infeasibility.
type edMemo struct {
	mu sync.Mutex
	m  map[string]*dispatch.Result
}

func newEDMemo() *edMemo {
	return &edMemo{m: make(map[string]*dispatch.Result)}
}

// memoKey packs the manipulated ratings (in the fixed DLR-line order) into
// a byte string; float bits keep the key exact.
func memoKey(order []int, dlr map[int]float64) string {
	b := make([]byte, 8*len(order))
	for i, li := range order {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(dlr[li]))
	}
	return string(b)
}

// solveMemo runs (or recalls) the operator's dispatch under a manipulation.
// The boolean reports feasibility; the returned Result must not be mutated.
func (k *Knowledge) solveMemo(order []int, dlr map[int]float64) (*dispatch.Result, bool) {
	if k.memo == nil {
		res, err := k.Model.Solve(k.ratingsUnder(dlr))
		return res, err == nil
	}
	key := memoKey(order, dlr)
	k.memo.mu.Lock()
	res, hit := k.memo.m[key]
	k.memo.mu.Unlock()
	if hit {
		return res, res != nil
	}
	res, err := k.Model.Solve(k.ratingsUnder(dlr))
	if err != nil {
		res = nil
	}
	k.memo.mu.Lock()
	if len(k.memo.m) < edMemoCap {
		k.memo.m[key] = res
	}
	k.memo.mu.Unlock()
	return res, res != nil
}

// trueRatings returns the rating vector with DLR lines at their true
// dynamic values — the yardstick violations are measured against.
func (k *Knowledge) trueRatings() []float64 {
	return k.Model.Net.Ratings(k.TrueDLR)
}

// Attack is one manipulated-rating vector with its predicted consequences.
type Attack struct {
	// DLR maps DLR line index → manipulated rating uᵃ.
	DLR map[int]float64
	// rawDLR preserves the pre-canonicalization manipulated ratings; the
	// winner's final rich polish restarts from these (the choked-canonical
	// DLR can be dispatch-infeasible as a starting point).
	rawDLR map[int]float64
	// TargetLine and Direction identify the subproblem that produced the
	// attack: the DLR line whose capacity violation is maximized, and the
	// flow direction (+1 From→To, −1 To→From).
	TargetLine int
	Direction  int
	// GainPct is the predicted attacker utility U_cap: the percentage by
	// which the target line's DC flow exceeds its true rating (clamped at
	// zero).
	GainPct float64
	// PredictedP and PredictedFlows are the dispatch and DC flows the
	// bilevel model predicts the operator will implement.
	PredictedP, PredictedFlows []float64
	// PredictedCost is the operator's generation cost under the attack as
	// estimated by the DC model.
	PredictedCost float64
	// Nodes is the total branch-and-bound node count spent.
	Nodes int
	// Rounds is the number of row-generation refinements performed.
	Rounds int
	// Exact reports whether the branch-and-bound search completed; false
	// means a node budget truncated it and GainPct is a (realized,
	// achievable) lower bound on the optimum.
	Exact bool
	// Stats summarizes the solver work spent producing this attack (nil
	// for heuristic attackers that run no bilevel search).
	Stats *SolverStats
}

// SolverStats aggregates the optimization work behind an Attack or
// Evaluation, for capacity planning and regression tracking.
type SolverStats struct {
	// Subproblems is the number of (target, direction) bilevel subproblems
	// solved to completion; Pruned counts those cut off by the seed bound
	// without yielding an improving attack.
	Subproblems, Pruned int
	// Nodes is the total branch-and-bound node count.
	Nodes int
	// SimplexIterations is the total simplex pivot count across every LP
	// relaxation and dispatch solve attributed to this result.
	SimplexIterations int
	// Rounds is the total number of row-generation refinements.
	Rounds int
	// WarmNodes counts branch-and-bound node relaxations solved by the
	// warm-started dual simplex (basis reused from the parent node or, at
	// round roots, remapped from the previous row-generation round);
	// WarmFallbacks counts nodes where the warm path handed off to a cold
	// solve. WarmNodes/Nodes is the warm-start hit rate.
	WarmNodes, WarmFallbacks int
	// Truncated counts branch-and-bound searches cut off by the node
	// budget before proving their verdict — including searches that found
	// no incumbent at all, which earlier versions silently folded into
	// Pruned. Zero means every verdict in this result is proven.
	Truncated int
	// BestBoundPct is the proven dual bound on the attack gain, in the
	// same percentage units as Attack.GainPct: for exact results it equals
	// the gain; for truncated results it is the largest surviving
	// relaxation bound across subproblems (at their final row-generation
	// round). +Inf means a search was truncated before proving any bound.
	BestBoundPct float64
	// Gap is the relative distance (BestBoundPct − gain)/(1 + gain)
	// between the proven bound and the best found gain: zero for exact
	// results.
	Gap float64
	// WallTime is the elapsed time of the producing call.
	WallTime time.Duration
}

// add accumulates another stats block (nil-safe on the argument). Counters
// sum; the bound fields merge by worst case (largest bound, largest gap), so
// an aggregate's BestBoundPct/Gap stay valid proofs for the merged whole.
func (s *SolverStats) add(o *SolverStats) {
	if o == nil {
		return
	}
	s.Subproblems += o.Subproblems
	s.Pruned += o.Pruned
	s.Nodes += o.Nodes
	s.SimplexIterations += o.SimplexIterations
	s.Rounds += o.Rounds
	s.WarmNodes += o.WarmNodes
	s.WarmFallbacks += o.WarmFallbacks
	s.Truncated += o.Truncated
	if o.BestBoundPct > s.BestBoundPct {
		s.BestBoundPct = o.BestBoundPct
	}
	if o.Gap > s.Gap {
		s.Gap = o.Gap
	}
}

// Method selects the single-level reformulation.
type Method int

// Reformulation methods.
const (
	// MethodComplementarity branches directly on KKT complementarity
	// pairs (default; no big-M constants).
	MethodComplementarity Method = iota + 1
	// MethodBigM is the paper's reformulation: binary μ with
	// λ ≤ M·μ, slack ≤ M·(1−μ).
	MethodBigM
)

func (m Method) String() string {
	switch m {
	case MethodComplementarity:
		return "complementarity"
	case MethodBigM:
		return "big-M"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tune attack generation.
type Options struct {
	// Method selects the KKT reformulation (default
	// MethodComplementarity).
	Method Method
	// BigM is the big-M constant for MethodBigM (default 1e5, mirroring
	// the paper's "M is infinity (chosen as a significantly large
	// number)").
	BigM float64
	// MonitorAll includes every rated line's constraints in the inner
	// problem up front instead of growing the set by row generation.
	MonitorAll bool
	// MaxRounds caps row-generation refinements (default 12).
	MaxRounds int
	// MaxNodes caps branch-and-bound nodes per subproblem (default
	// 50000).
	MaxNodes int
	// RelGap is the relative optimality gap for pruning (default the
	// milp package's 1e-9); larger values (e.g. 1e-4) speed up large
	// cases at a bounded optimality sacrifice.
	RelGap float64
	// NoSeed disables warm-starting Algorithm 1's pruning bound with the
	// greedy vertex attack (seeding is on by default).
	NoSeed bool
	// NoWarmStart disables simplex basis reuse across branch-and-bound
	// nodes and row-generation rounds, cold-solving every LP relaxation.
	// Results are certified-identical either way; this exists for A/B
	// measurement and as an escape hatch.
	NoWarmStart bool
	// NoDive disables the deterministic discovery layer around the KKT
	// search: the per-subproblem dives (coordinate-ascent attacks polished
	// on the true ED before branch-and-bound), the converged-attack polish,
	// and the winner's rich refinement. Attacks then come from the reduced
	// search alone — machinery gates and search benchmarks use this to
	// exercise branch-and-bound directly; production runs leave it off.
	NoDive bool
	// DenseSolver forces every LP relaxation onto the dense tableau engine
	// instead of letting the solver pick the sparse revised simplex by
	// problem size and density. Verdicts are certified either way; this
	// exists for A/B measurement against recorded dense baselines and as an
	// escape hatch.
	DenseSolver bool
	// ForceSparse forces every LP relaxation onto the sparse revised
	// simplex even below the size cutover where the selection heuristic
	// prefers the dense tableau. Ignored when DenseSolver is set. Like
	// DenseSolver, this is an A/B hook: the engine gates compare the two
	// engines' attacks on cases small enough to route dense by default.
	ForceSparse bool
	// NodeOrder selects the branch-and-bound node-selection strategy for
	// every inner MILP search (default milp.OrderDFS). Exact attacks are
	// identical under every strategy; node counts and wall time differ —
	// best-first and hybrid close the proven gap faster on hard cases at
	// the price of warm-basis locality.
	NodeOrder milp.NodeOrder
	// Presolve enables the MILP tightening pass before each search: bound
	// propagation over the KKT rows, per-row big-M coefficient reduction
	// to the propagated multiplier bounds (which keeps MethodBigM away
	// from the saturation watchdog), and binary probing/fixing.
	Presolve bool
	// Cuts enables complementarity bound cuts and probing clique cuts,
	// generated at the root and at plunge leaves of each search. Under
	// MethodBigM this also registers the λ/s complementarity pairs with
	// the MILP (for cut generation only — binaries still drive all
	// branching, so the explored tree is unchanged when no cut fires).
	Cuts bool
	// PseudoCost enables pseudo-cost branching, seeded at each root from
	// complementarity-violation magnitudes.
	PseudoCost bool
	// Workers is the number of goroutines solving bilevel subproblems
	// concurrently (0 = one per CPU core, 1 = sequential). The attack
	// returned is identical for every worker count when subproblems solve
	// to completion: workers share an atomic incumbent bound that only
	// tightens pruning, and the winner is selected by a deterministic
	// (gain, target line, direction) tie-break after all subproblems
	// finish. Under a truncating MaxNodes budget the schedule can affect
	// which incumbent a cut-off search reports, so budgeted runs are only
	// reproducible at Workers = 1.
	Workers int
	// Metrics, when non-nil, receives core_*, milp_*, and lp_* counters
	// from the whole attack-generation stack. Nil costs ~nothing.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, emits one span per bilevel subproblem (with
	// target/dir/gain/status attributes) and per inner MILP solve.
	Tracer *telemetry.Tracer
	// Flight, when non-nil, records the run's solver flight data — every
	// B&B node, LP solve, row-generation round, incumbent update, and
	// subproblem outcome — into a bounded in-memory ring for post-run
	// reports (gridtool report / tree). Recording is purely
	// observational: the computed attack is bit-identical with the
	// recorder on or off.
	Flight *telemetry.Flight
	// Ctx, when non-nil, bounds the attack search: it is checked at run
	// entry, per fanned-out subproblem, per row-generation round, per
	// branch-and-bound node (via milp.Options.Ctx), and per dive/polish
	// candidate evaluation. A canceled or expired context makes the run
	// return the context's error (wrapped, errors.Is-compatible) — never a
	// partial attack, since which incumbent a cut-off search holds is
	// schedule-dependent and would break the determinism contract. The
	// check cadence bounds cancellation latency by one LP solve.
	Ctx context.Context
	// Warm, when non-nil, carries round-1 root-relaxation bases across
	// runs on the same grid (see WarmCache). Results are bit-identical
	// with or without it — the warm path certifies or falls back cold —
	// so it is purely a latency lever for repeat attacks. Ignored under
	// NoWarmStart.
	Warm *WarmCache
	// DisablePooling turns off the per-task solver-workspace checkout, so
	// every LP/QP solve allocates its working storage fresh, as the code
	// did before workspaces existed. Attacks are bit-identical either way
	// (pooling only moves where arrays live); this is the A/B hook the
	// identity gates and allocation benchmarks compare against.
	DisablePooling bool

	// ws is the pooled workspace for this task's inner-MILP LP relaxations,
	// set per fan-out task by checkoutWorkspaces (never by callers). The
	// dispatch model carries its own workspace separately.
	ws *lp.Workspace
}

func (o Options) withDefaults() Options {
	if o.Method == 0 {
		o.Method = MethodComplementarity
	}
	if o.BigM == 0 {
		o.BigM = 1e5
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 12
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 50000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// forWorker returns a Knowledge whose Model is a shallow clone of k's —
// sharing the immutable network, sensitivity matrix, and PTDF, with its own
// warm-start memory — so a solver worker can run dispatches without racing
// its siblings. TrueDLR is shared: it is read-only throughout the solve.
func (k *Knowledge) forWorker() *Knowledge {
	return &Knowledge{Model: k.Model.ShallowClone(), TrueDLR: k.TrueDLR, memo: k.memo}
}

// ratingsUnder builds the full effective rating vector for a manipulation.
func (k *Knowledge) ratingsUnder(dlr map[int]float64) []float64 {
	return k.Model.Net.Ratings(dlr)
}

// violationGain computes the paper's U_cap for a flow vector: the largest
// percentage violation of true DLR ratings in either direction, clamped at
// zero.
func (k *Knowledge) violationGain(flows []float64) (float64, int, int) {
	g, line, dir := k.violationMargin(flows)
	if g <= 0 {
		return 0, -1, 0
	}
	return g, line, dir
}

// violationMargin is the unclamped variant of violationGain: negative
// values measure how far the most-loaded DLR line is from violation, which
// gives search heuristics a gradient inside the safe region.
func (k *Knowledge) violationMargin(flows []float64) (float64, int, int) {
	bestGain, bestLine, bestDir := math.Inf(-1), -1, 0
	for li, ud := range k.TrueDLR {
		for _, dir := range [2]float64{1, -1} {
			g := 100 * (dir*flows[li]/ud - 1)
			if g > bestGain {
				bestGain, bestLine, bestDir = g, li, int(dir)
			}
		}
	}
	return bestGain, bestLine, bestDir
}

// Evaluation is the outcome of running the operator's ED under a specific
// manipulation — the ground truth the bilevel model predicts.
type Evaluation struct {
	// Feasible reports whether the operator's ED admitted the ratings
	// (false means the manipulation would trip an alarm — not stealthy).
	Feasible bool
	// GainPct is U_cap realized under the DC model.
	GainPct float64
	// WorstLine and Direction locate the worst violation (-1 when none).
	WorstLine, Direction int
	// Dispatch is the operator's resulting ED solution (nil when
	// infeasible).
	Dispatch *dispatch.Result
	// Stats summarizes the dispatch solver work behind the evaluation.
	// A value (not a pointer): evaluations run on heuristic hot paths
	// where an extra allocation per call is measurable.
	Stats SolverStats
}

// EvaluateAttack runs the operator's dispatch under manipulated ratings and
// scores the realized violation of true ratings. It is used to verify
// bilevel predictions and to score baseline attackers.
func (k *Knowledge) EvaluateAttack(dlr map[int]float64) (*Evaluation, error) {
	if bad := k.Model.Net.CheckDLRBounds(dlr); len(bad) > 0 {
		return nil, fmt.Errorf("core: manipulation rejected by EMS bound check on lines %v", bad)
	}
	start := time.Now()
	res, err := k.Model.Solve(k.ratingsUnder(dlr))
	if errors.Is(err, dispatch.ErrInfeasible) {
		return &Evaluation{
			Feasible: false, WorstLine: -1,
			Stats: SolverStats{WallTime: time.Since(start)},
		}, nil
	}
	if err != nil {
		return nil, err
	}
	gain, line, dir := k.violationGain(res.Flows)
	return &Evaluation{
		Feasible: true, GainPct: quantize(gain, gainQuantum), WorstLine: line, Direction: dir,
		Dispatch: res,
		Stats: SolverStats{
			SimplexIterations: res.Iterations,
			Rounds:            res.Rounds,
			WallTime:          time.Since(start),
		},
	}, nil
}

// clampToBand snaps a rating into a line's plausibility band.
func clampToBand(l *grid.Line, v float64) float64 {
	return math.Max(l.DLRMin, math.Min(l.DLRMax, v))
}

// Reporting quanta. Extracted manipulated ratings and reported gains are
// rounded onto fixed grids before leaving the solver: cross-engine roundoff
// (dense tableau vs sparse revised simplex, dense KKT vs Schur complement)
// perturbs the same optimum's coordinates by a few ulps, and snapping to a
// grid far coarser than that — yet far finer than solver tolerance — makes
// reported attacks bit-identical regardless of which engine produced them.
const (
	ratingQuantum = 1e-6 // MVA: micro-MVA resolution on manipulated ratings
	gainQuantum   = 1e-9 // percentage points on reported U_cap gains
)

// quantize rounds v onto the grid with spacing q.
func quantize(v, q float64) float64 {
	return math.Round(v/q) * q
}
