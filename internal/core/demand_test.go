package core_test

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
)

// knowledge9 builds attacker knowledge on the quadratic 9-bus case with
// true DLR ratings at a fraction of static.
func knowledge9(t *testing.T, frac float64) *core.Knowledge {
	t.Helper()
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range n.DLRLines() {
		ud[li] = n.Lines[li].RateMVA * frac
	}
	k, err := core.NewKnowledge(m, ud)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEvaluateDemandAttackIdentityIsHarmless(t *testing.T) {
	k := knowledge9(t, 0.8)
	n := k.Model.Net
	truth := make([]float64, len(n.Buses))
	for i := range n.Buses {
		truth[i] = n.Buses[i].Pd
	}
	ev, err := k.EvaluateDemandAttack(truth)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("honest forecast infeasible")
	}
	if ev.GainPct != 0 {
		t.Fatalf("honest forecast yields gain %v", ev.GainPct)
	}
}

func TestEvaluateDemandAttackValidation(t *testing.T) {
	k := knowledge9(t, 0.8)
	if _, err := k.EvaluateDemandAttack([]float64{1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestEvaluateDemandAttackRestoresModel(t *testing.T) {
	k := knowledge9(t, 0.8)
	before := k.Model.Demand
	fake := make([]float64, len(k.Model.Net.Buses))
	for i := range k.Model.Net.Buses {
		fake[i] = k.Model.Net.Buses[i].Pd * 1.05
	}
	if _, err := k.EvaluateDemandAttack(fake); err != nil {
		t.Fatal(err)
	}
	if math.Abs(k.Model.Demand-before) > 1e-9 {
		t.Fatalf("model demand not restored: %v vs %v", k.Model.Demand, before)
	}
}

func TestFindDemandAttackGainsOnCongested118(t *testing.T) {
	// Demand-forecast corruption needs binding DLR constraints to bite:
	// on a congested day (true ratings at 94% of static) the PTDF-guided
	// forecast shift produces a real violation. The gain is far smaller
	// than the rating attack's — demand is the weaker lever, which is
	// why the paper's attacker targets the ratings.
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range n.DLRLines() {
		ud[li] = n.Lines[li].RateMVA * 0.94
	}
	k, err := core.NewKnowledge(m, ud)
	if err != nil {
		t.Fatal(err)
	}
	att, err := core.FindDemandAttack(k, core.DemandAttackOptions{GammaPct: 0.2})
	if err != nil {
		t.Fatalf("FindDemandAttack: %v", err)
	}
	if att.GainPct <= 0 {
		t.Fatalf("expected a violation on the congested 118-bus day, got %v", att.GainPct)
	}
	// Stealth: total preserved, per-bus within band.
	var totalFake, totalTrue float64
	for i := range n.Buses {
		totalFake += att.Demands[i]
		totalTrue += n.Buses[i].Pd
		if n.Buses[i].Pd > 0 {
			lo := n.Buses[i].Pd * 0.8
			hi := n.Buses[i].Pd * 1.2
			if att.Demands[i] < lo-1e-6 || att.Demands[i] > hi+1e-6 {
				t.Fatalf("bus %d forecast %v outside stealth band [%v, %v]",
					i, att.Demands[i], lo, hi)
			}
		}
	}
	if math.Abs(totalFake-totalTrue) > 1e-6 {
		t.Fatalf("total demand changed: %v vs %v", totalFake, totalTrue)
	}
	// The realized violation is on a DLR line.
	if _, ok := k.TrueDLR[att.WorstLine]; !ok {
		t.Fatalf("violation on non-DLR line %d", att.WorstLine)
	}
}

func TestFindDemandAttackNeedsLoads(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	k, err := core.NewKnowledge(m, map[int]float64{1: 150, 2: 150})
	if err != nil {
		t.Fatal(err)
	}
	// case3 has a single load bus: pairwise transfer impossible.
	if _, err := core.FindDemandAttack(k, core.DemandAttackOptions{}); err == nil {
		t.Fatal("want too-few-load-buses error")
	}
}
