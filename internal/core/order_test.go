package core_test

import (
	"testing"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/milp"
)

// TestNodeOrderDeterministicAttacks is the strategy-independence contract at
// the Algorithm 1 level: on exactly solvable cases, every node-selection
// strategy — with and without the presolve/cut/pseudo-cost machinery — must
// report the identical attack at one worker and at four. The full
// manipulated-rating vector is compared across every configuration: exact
// solves all land on the same quantized optimum, and the choked-canonical
// attack construction makes the reported vector a function of that optimum
// alone, not of the search trajectory.
func TestNodeOrderDeterministicAttacks(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*grid.Network, error)
	}{
		{"case9", cases.Case9},
		{"case30", cases.Case30},
		{"case57", cases.Case57},
	}
	orders := []milp.NodeOrder{milp.OrderDFS, milp.OrderBestFirst, milp.OrderHybrid}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			k := knowledgeFor(t, b.build)
			var ref *core.Attack
			for _, order := range orders {
				for _, full := range []bool{false, true} {
					for _, w := range []int{1, 4} {
						o := core.Options{
							RelGap:    1e-6,
							Workers:   w,
							NodeOrder: order,
							Presolve:  full, Cuts: full, PseudoCost: full,
						}
						att, err := core.FindOptimalAttack(k, o)
						if err != nil {
							t.Fatalf("order=%v full=%v workers=%d: %v", order, full, w, err)
						}
						if !att.Exact {
							t.Fatalf("order=%v full=%v workers=%d: solve truncated", order, full, w)
						}
						if att.Stats == nil || att.Stats.Gap != 0 || att.Stats.BestBoundPct != att.GainPct {
							t.Fatalf("order=%v full=%v workers=%d: exact attack carries bound %v gap %v",
								order, full, w, att.Stats.BestBoundPct, att.Stats.Gap)
						}
						if ref == nil {
							ref = att
							continue
						}
						label := b.name + "/order=" + order.String() + "/workers=" + itoa(w)
						if full {
							label += "/full"
						}
						sameAttack(t, label, ref, att)
					}
				}
			}
		})
	}
}
