package core

import (
	"math"
	"sync/atomic"

	"github.com/edsec/edattack/internal/milp"
)

// seedSlackFactor scales the pruning slack applied when a realized attacker
// gain is turned into a branch-and-bound pruning seed. The slack must be
// STRICTLY wider than the MILP's own prune tolerance Gap·(1+|obj|), and here
// is why: Algorithm 1's subproblems are independent, so two of them can
// attain exactly the same optimal gain (equal-quality optima). If the seed
// derived from one sat within the prune tolerance of the other's optimum,
// the other subproblem would be pruned in schedules where the seed arrived
// early and proven in schedules where it arrived late — the winning
// (gain, target, direction) triple would then depend on worker timing.
// Backing the seed off by twice the prune tolerance guarantees every
// subproblem whose optimum ties or beats the eventual best gain survives
// pruning and proves its optimum under ANY schedule, which is what makes
// FindOptimalAttack's output worker-count-independent. (The historical
// sequential back-off, 1e-9·(1+gain), equaled the default tolerance exactly
// and sat on this knife's edge.)
const seedSlackFactor = 2

// pruneSeed converts an objective value proven feasible elsewhere into a
// pruning bound for a search whose relative gap is relGap: strictly below
// the objective by seedSlackFactor × the search's own prune tolerance.
func pruneSeed(obj, relGap float64) float64 {
	if relGap <= 0 {
		relGap = 1e-9 // the milp package's default Gap
	}
	return obj - seedSlackFactor*relGap*(1+math.Abs(obj))
}

// incumbentBound is the shared, monotonically increasing record of the best
// realized attacker gain across Algorithm 1's concurrent subproblems. Any
// worker that proves a better gain publishes it here; every in-flight MILP
// search polls it per node (via a subproblemBound adapter), so a discovery
// on one worker immediately tightens pruning on all others. Lock-free: a
// single atomic word holding the float64 bits of the best gain.
//
// Gains are attacker utilities (non-negative percentages), so the raw bit
// pattern of a float64 compares monotonically with the value and a plain
// CAS-max loop suffices. The word stores Float64bits(gain)+1, with 0 as the
// "no bound yet" sentinel — a single word, so publish and read are each one
// atomic operation with no torn has/value pairing.
type incumbentBound struct {
	v atomic.Uint64
	// seq, set before any subproblem runs, marks a sequential fan-out:
	// every Offer and Best happens on the caller's goroutine, so the bound
	// lives in a plain word and the CAS loop is bypassed. The MILP node
	// loop polls the bound once per node, so this is a per-node saving.
	seq  bool
	seqV uint64
}

// Offer publishes a realized gain; the bound only ever tightens.
func (b *incumbentBound) Offer(gain float64) {
	if gain < 0 || math.IsNaN(gain) {
		return
	}
	nv := math.Float64bits(gain) + 1
	if b.seq {
		if nv > b.seqV {
			b.seqV = nv
		}
		return
	}
	for {
		old := b.v.Load()
		if old >= nv {
			return
		}
		if b.v.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Best returns the best gain published so far, if any.
func (b *incumbentBound) Best() (float64, bool) {
	if b == nil {
		return 0, false
	}
	var v uint64
	if b.seq {
		v = b.seqV
	} else {
		v = b.v.Load()
	}
	if v == 0 {
		return 0, false
	}
	return math.Float64frombits(v - 1), true
}

// subproblemBound adapts the shared gain bound to one subproblem's MILP
// objective scale. masterObj is affine in the gain with unit slope, so the
// conversion is a constant offset; the adapter also applies the pruneSeed
// slack and records whether a bound was ever observed, which is how the
// caller distinguishes "pruned against a sibling's bound" from "provably no
// feasible attack here".
type subproblemBound struct {
	inc    *incumbentBound
	offset float64 // masterObj(g) = g + offset for this (target, dir)
	relGap float64
	saw    atomic.Bool
}

var _ milp.BoundSource = (*subproblemBound)(nil)

// Bound implements milp.BoundSource.
func (sb *subproblemBound) Bound() (float64, bool) {
	if sb == nil || sb.inc == nil {
		return 0, false
	}
	g, ok := sb.inc.Best()
	if !ok {
		return 0, false
	}
	sb.saw.Store(true)
	return pruneSeed(g+sb.offset, sb.relGap), true
}

// sawBound reports whether any poll observed a published bound.
func (sb *subproblemBound) sawBound() bool {
	return sb != nil && sb.saw.Load()
}
