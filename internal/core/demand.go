package core

import (
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/mat"
)

// The paper notes (Section II, threat model) that the same semantic memory
// attack generalizes beyond line ratings: "other variations of attack
// generation are possible, for e.g. manipulation of other parameters such
// as generator/loads/voltage bounds". This file implements the load
// variation: the attacker corrupts the EMS's in-memory bus demand forecast
// within a per-bus stealth band while preserving the total (so AGC and
// frequency monitoring see nothing), the operator dispatches for the fake
// demand, and the realized flows — driven by the *true* demand — violate
// true line ratings.

// DemandAttack is a manipulated demand vector with its predicted impact.
type DemandAttack struct {
	// Demands is the corrupted per-bus forecast (MW).
	Demands []float64
	// GainPct is the realized U_cap against true DLR ratings.
	GainPct float64
	// WorstLine and Direction locate the violation.
	WorstLine, Direction int
	// Dispatch is the operator's dispatch under the fake forecast.
	Dispatch []float64
	// RealizedFlows are the DC flows under the true demand.
	RealizedFlows []float64

	// margin is the unclamped violation score used to guide the search.
	margin float64
}

// DemandAttackOptions tune the search.
type DemandAttackOptions struct {
	// GammaPct is the per-bus stealth band (e.g. 0.1 = ±10% of each
	// bus's true demand). Default 0.1.
	GammaPct float64
	// GridPoints and MaxSweeps control the coordinate search (defaults 5
	// and 4).
	GridPoints, MaxSweeps int
}

func (o DemandAttackOptions) withDefaults() DemandAttackOptions {
	if o.GammaPct <= 0 {
		o.GammaPct = 0.1
	}
	if o.GridPoints < 2 {
		o.GridPoints = 5
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 4
	}
	return o
}

// EvaluateDemandAttack replays one corrupted forecast: the operator solves
// ED for it (against the true DLR ratings it believes are current), then
// the realized flows are computed under the true demand. Returns nil if
// the fake forecast makes the ED infeasible (an alarm, not an attack).
func (k *Knowledge) EvaluateDemandAttack(fake []float64) (*DemandAttack, error) {
	net := k.Model.Net
	if len(fake) != len(net.Buses) {
		return nil, fmt.Errorf("core: %d demands for %d buses", len(fake), len(net.Buses))
	}
	trueDemands := make([]float64, len(net.Buses))
	for i := range net.Buses {
		trueDemands[i] = net.Buses[i].Pd
	}
	defer func() {
		// Always restore the model to the true demand.
		_ = k.Model.SetDemands(nil)
	}()
	if err := k.Model.SetDemands(fake); err != nil {
		return nil, err
	}
	res, err := k.Model.Solve(k.trueRatings())
	if err != nil {
		return nil, nil // infeasible forecast → operator alarms
	}
	// Realized flows under the true demand.
	if err := k.Model.SetDemands(nil); err != nil {
		return nil, err
	}
	flows, err := k.Model.FlowsFor(res.P)
	if err != nil {
		return nil, err
	}
	gain, line, dir := k.violationGain(flows)
	margin, _, _ := k.violationMargin(flows)
	return &DemandAttack{
		Demands:       mat.CloneVec(fake),
		GainPct:       gain,
		WorstLine:     line,
		Direction:     dir,
		Dispatch:      res.P,
		RealizedFlows: flows,
		margin:        margin,
	}, nil
}

// FindDemandAttack searches for a total-preserving forecast corruption.
// For each DLR line and direction it builds the PTDF-guided extreme
// candidate — raise the forecast at buses whose injection *unloads* the
// target line (so the operator under-protects it) and lower it where it
// loads the line, rescaled to preserve the total — and keeps the best
// realized violation, refined by shrinking the corruption amplitude.
func FindDemandAttack(k *Knowledge, o DemandAttackOptions) (*DemandAttack, error) {
	o = o.withDefaults()
	net := k.Model.Net
	nb := len(net.Buses)
	trueD := make([]float64, nb)
	var loadBuses []int
	var total float64
	for i := range net.Buses {
		trueD[i] = net.Buses[i].Pd
		total += trueD[i]
		if trueD[i] > 0 {
			loadBuses = append(loadBuses, i)
		}
	}
	if len(loadBuses) < 2 {
		return nil, fmt.Errorf("core: demand attack needs ≥ 2 load buses, have %d", len(loadBuses))
	}
	ptdf, err := dcflow.PTDF(net)
	if err != nil {
		return nil, err
	}

	best, err := k.EvaluateDemandAttack(trueD)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoFeasibleAttack
	}

	// Candidate builder: amplitude a ∈ (0, γ], signs from dir·PTDF on the
	// target line. The realized flow exceeds the believed flow by
	// dir·ptdf_t·(d̃ − d), so the forecast is raised exactly at the buses
	// whose (phantom) demand would relieve the target in the operator's
	// model — the real system never sees that relief.
	candidate := func(target int, dir float64, amp float64) []float64 {
		d := mat.CloneVec(trueD)
		var plus, minus float64
		for _, b := range loadBuses {
			s := dir * ptdf.At(target, b)
			if s > 0 {
				d[b] = trueD[b] * (1 + amp)
				plus += d[b] - trueD[b]
			} else if s < 0 {
				d[b] = trueD[b] * (1 - amp)
				minus += trueD[b] - d[b]
			}
		}
		// Rebalance to preserve the total within the stealth band.
		diff := plus - minus // surplus to remove (or deficit to add)
		if math.Abs(diff) < 1e-12 {
			return d
		}
		// Scale the larger side down toward truth.
		if diff > 0 {
			scale := (plus - diff) / plus
			for _, b := range loadBuses {
				if d[b] > trueD[b] {
					d[b] = trueD[b] + (d[b]-trueD[b])*scale
				}
			}
		} else {
			scale := (minus + diff) / minus
			for _, b := range loadBuses {
				if d[b] < trueD[b] {
					d[b] = trueD[b] - (trueD[b]-d[b])*scale
				}
			}
		}
		return d
	}

	for li := range k.TrueDLR {
		for _, dir := range [2]float64{1, -1} {
			for g := 1; g <= o.GridPoints; g++ {
				amp := o.GammaPct * float64(g) / float64(o.GridPoints)
				ev, err := k.EvaluateDemandAttack(candidate(li, dir, amp))
				if err != nil {
					return nil, err
				}
				if ev != nil && ev.margin > best.margin+1e-9 {
					best = ev
				}
			}
		}
	}
	return best, nil
}
