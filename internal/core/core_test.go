package core_test

import (
	"errors"
	"math"
	"testing"

	"github.com/edsec/edattack/internal/core"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
)

// knowledge3 builds attacker knowledge for the paper's 3-bus case with
// given true DLR values on lines {1,3} (index 1) and {2,3} (index 2).
func knowledge3(t *testing.T, ud13, ud23 float64) *core.Knowledge {
	t.Helper()
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	k, err := core.NewKnowledge(m, map[int]float64{1: ud13, 2: ud23})
	if err != nil {
		t.Fatalf("NewKnowledge: %v", err)
	}
	return k
}

func TestNewKnowledgeValidation(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewKnowledge(m, map[int]float64{1: 160}); err == nil {
		t.Fatal("want missing-DLR-entry error")
	}
	if _, err := core.NewKnowledge(m, map[int]float64{1: 160, 2: 999}); err == nil {
		t.Fatal("want out-of-band error")
	}
	if _, err := core.NewKnowledge(m, map[int]float64{0: 160, 1: 160, 2: 160}); err == nil {
		t.Fatal("want non-DLR-line error")
	}
}

func TestNewKnowledgeNoDLR(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Lines {
		n.Lines[i].HasDLR = false
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewKnowledge(m, nil); !errors.Is(err, core.ErrNoDLRLines) {
		t.Fatalf("want ErrNoDLRLines, got %v", err)
	}
}

// TestTableIRow1 reproduces Table I row 1: true DLRs (130, 120) → optimal
// strategy A with uᵃ = (100, 200), flows (100, 200), violating line {2,3}
// by 80 MW (66.7%).
func TestTableIRow1(t *testing.T) {
	k := knowledge3(t, 130, 120)
	att, err := core.FindOptimalAttack(k, core.Options{})
	if err != nil {
		t.Fatalf("FindOptimalAttack: %v", err)
	}
	if math.Abs(att.DLR[1]-100) > 1e-4 || math.Abs(att.DLR[2]-200) > 1e-4 {
		t.Fatalf("uᵃ = (%v, %v), want (100, 200)", att.DLR[1], att.DLR[2])
	}
	if att.TargetLine != 2 || att.Direction != 1 {
		t.Fatalf("target = line %d dir %d, want line 2 dir +1", att.TargetLine, att.Direction)
	}
	wantGain := 100 * (200.0/120.0 - 1)
	if math.Abs(att.GainPct-wantGain) > 1e-3 {
		t.Fatalf("gain = %v%%, want %v%%", att.GainPct, wantGain)
	}
	if math.Abs(att.PredictedFlows[1]-100) > 1e-4 || math.Abs(att.PredictedFlows[2]-200) > 1e-4 {
		t.Fatalf("flows = %v, want f13=100 f23=200", att.PredictedFlows)
	}
}

// TestTableIAllRows checks the optimal strategy for all four Table I rows:
// the winning strategy and the resulting flows and MW violations.
func TestTableIAllRows(t *testing.T) {
	rows := []struct {
		ud13, ud23 float64
		wantUA13   float64
		wantUA23   float64
		wantViolMW float64 // paper's U_cap column (absolute MW over true)
	}{
		{130, 120, 100, 200, 80},
		{130, 150, 200, 100, 70},
		{160, 150, 100, 200, 50},
		{160, 180, 200, 100, 40},
	}
	for _, row := range rows {
		k := knowledge3(t, row.ud13, row.ud23)
		att, err := core.FindOptimalAttack(k, core.Options{})
		if err != nil {
			t.Fatalf("(%v,%v): %v", row.ud13, row.ud23, err)
		}
		if math.Abs(att.DLR[1]-row.wantUA13) > 1e-4 || math.Abs(att.DLR[2]-row.wantUA23) > 1e-4 {
			t.Fatalf("(%v,%v): uᵃ = (%v, %v), want (%v, %v)",
				row.ud13, row.ud23, att.DLR[1], att.DLR[2], row.wantUA13, row.wantUA23)
		}
		ud := k.TrueDLR[att.TargetLine]
		violMW := att.GainPct / 100 * ud
		if math.Abs(violMW-row.wantViolMW) > 1e-2 {
			t.Fatalf("(%v,%v): violation = %v MW, want %v", row.ud13, row.ud23, violMW, row.wantViolMW)
		}
	}
}

// TestAttackRespectsStealthBounds: every manipulated rating stays inside
// the EMS plausibility band.
func TestAttackRespectsStealthBounds(t *testing.T) {
	k := knowledge3(t, 130, 120)
	att, err := core.FindOptimalAttack(k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bad := k.Model.Net.CheckDLRBounds(att.DLR); len(bad) != 0 {
		t.Fatalf("attack fails EMS bound check on lines %v", bad)
	}
}

// TestPredictionMatchesOperatorED: replaying the attack through the
// operator's actual dispatch reproduces the predicted gain (optimistic
// bilevel consistency).
func TestPredictionMatchesOperatorED(t *testing.T) {
	k := knowledge3(t, 130, 120)
	att, err := core.FindOptimalAttack(k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := k.EvaluateAttack(att.DLR)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("optimal attack must keep the operator's ED feasible")
	}
	if math.Abs(ev.GainPct-att.GainPct) > 1e-3 {
		t.Fatalf("realized gain %v%% != predicted %v%%", ev.GainPct, att.GainPct)
	}
}

// TestNoAttackNoViolation: leaving ratings at their true values yields zero
// gain — ED respects the ratings it is given.
func TestNoAttackNoViolation(t *testing.T) {
	k := knowledge3(t, 160, 160)
	ev, err := k.EvaluateAttack(map[int]float64{1: 160, 2: 160})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible || ev.GainPct != 0 {
		t.Fatalf("no-attack evaluation: feasible=%v gain=%v", ev.Feasible, ev.GainPct)
	}
}

func TestBigMMatchesComplementarity(t *testing.T) {
	for _, ud := range [][2]float64{{130, 120}, {130, 150}, {160, 150}, {160, 180}, {145, 145}} {
		k := knowledge3(t, ud[0], ud[1])
		a1, err := core.FindOptimalAttack(k, core.Options{Method: core.MethodComplementarity})
		if err != nil {
			t.Fatalf("complementarity (%v): %v", ud, err)
		}
		a2, err := core.FindOptimalAttack(k, core.Options{Method: core.MethodBigM})
		if err != nil {
			t.Fatalf("big-M (%v): %v", ud, err)
		}
		if math.Abs(a1.GainPct-a2.GainPct) > 1e-3 {
			t.Fatalf("(%v): complementarity gain %v != big-M gain %v", ud, a1.GainPct, a2.GainPct)
		}
	}
}

func TestMonitorAllMatchesRowGeneration(t *testing.T) {
	k := knowledge3(t, 130, 120)
	a1, err := core.FindOptimalAttack(k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.FindOptimalAttack(k, core.Options{MonitorAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.GainPct-a2.GainPct) > 1e-4 {
		t.Fatalf("row-generation gain %v != monitor-all gain %v", a1.GainPct, a2.GainPct)
	}
}

func TestSolveSubproblemInputValidation(t *testing.T) {
	k := knowledge3(t, 130, 120)
	if _, err := core.SolveSubproblem(k, 1, 3, core.Options{}); err == nil {
		t.Fatal("want direction error")
	}
	if _, err := core.SolveSubproblem(k, 0, 1, core.Options{}); err == nil {
		t.Fatal("want non-DLR target error")
	}
}

func TestGreedyVertexAttack(t *testing.T) {
	k := knowledge3(t, 130, 120)
	att, err := core.GreedyVertexAttack(k)
	if err != nil {
		t.Fatalf("GreedyVertexAttack: %v", err)
	}
	// On the 3-bus case the greedy vertex IS the optimum (Table I).
	if math.Abs(att.GainPct-100*(200.0/120.0-1)) > 1e-3 {
		t.Fatalf("greedy gain = %v", att.GainPct)
	}
}

func TestRandomAttackWeaker(t *testing.T) {
	k := knowledge3(t, 130, 120)
	opt, err := core.FindOptimalAttack(k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := core.RandomAttack(k, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.GainPct > opt.GainPct+1e-6 {
		t.Fatalf("random attack gain %v exceeds optimal %v", rnd.GainPct, opt.GainPct)
	}
}

func TestEvaluateAttackRejectsOutOfBand(t *testing.T) {
	k := knowledge3(t, 130, 120)
	if _, err := k.EvaluateAttack(map[int]float64{1: 5000, 2: 160}); err == nil {
		t.Fatal("want EMS bound-check rejection")
	}
}

func TestSortedDLRLines(t *testing.T) {
	k := knowledge3(t, 150, 120)
	got := core.SortedDLRLines(k)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("SortedDLRLines = %v, want [2 1] (ascending true rating)", got)
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []core.Method{core.MethodComplementarity, core.MethodBigM, core.Method(9)} {
		if m.String() == "" {
			t.Fatal("empty method string")
		}
	}
}

// TestOptimalBeatsGreedyOnCase9 uses the quadratic-cost 9-bus system where
// vertex attacks are not guaranteed optimal; the bilevel optimum must
// weakly dominate.
func TestOptimalBeatsGreedyOnCase9(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range n.DLRLines() {
		ud[li] = n.Lines[li].RateMVA * 0.7 // warm day: true ratings below static
	}
	k, err := core.NewKnowledge(m, ud)
	if err != nil {
		t.Fatal(err)
	}
	opt, optErr := core.FindOptimalAttack(k, core.Options{})
	grd, grdErr := core.GreedyVertexAttack(k)
	if optErr != nil && !errors.Is(optErr, core.ErrNoFeasibleAttack) {
		t.Fatalf("optimal: %v", optErr)
	}
	if grdErr != nil && !errors.Is(grdErr, core.ErrNoFeasibleAttack) {
		t.Fatalf("greedy: %v", grdErr)
	}
	if optErr == nil && grdErr == nil && opt.GainPct < grd.GainPct-1e-4 {
		t.Fatalf("optimal gain %v below greedy %v", opt.GainPct, grd.GainPct)
	}
	if optErr == nil {
		// The prediction must replay consistently.
		ev, err := k.EvaluateAttack(opt.DLR)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.Feasible {
			t.Fatal("optimal attack infeasible when replayed")
		}
	}
}
