package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/edsec/edattack/internal/telemetry"
)

// FindOptimalAttack implements Algorithm 1 (GetOptimalAttack): it solves the
// 2·|E_D| bilevel subproblems — one per DLR line and flow direction — and
// returns the attack with the largest non-negative percentage capacity
// violation. When no subproblem admits a stealthy feasible manipulation it
// returns ErrNoFeasibleAttack.
func FindOptimalAttack(k *Knowledge, o Options) (*Attack, error) {
	o = o.withDefaults()
	dlrLines := k.Model.Net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}
	start := time.Now()
	stats := &SolverStats{}
	root := telemetry.StartSpan(o.Tracer, nil, "core.find_optimal_attack")
	root.SetAttr("dlr_lines", len(dlrLines))
	root.SetAttr("subproblems", 2*len(dlrLines))
	defer root.End()

	// Warm start: the greedy vertex attack gives a realized, achievable
	// gain that prunes every subproblem that cannot beat it.
	var best *Attack
	if !o.NoSeed {
		seedSpan := telemetry.StartSpan(nil, root, "core.greedy_seed")
		grd, err := GreedyVertexAttack(k)
		if err == nil {
			grd.Exact = false // a seed, not a proven optimum
			best = grd
			seedSpan.SetAttr("gain_pct", grd.GainPct)
		} else if !errors.Is(err, ErrNoFeasibleAttack) {
			seedSpan.End()
			return nil, fmt.Errorf("core: greedy seeding: %w", err)
		}
		seedSpan.End()
	}
	var anyFeasible = best != nil
	totalNodes := 0
	exact := true
	for _, li := range dlrLines {
		for _, dir := range [2]int{1, -1} {
			var seed *float64
			if best != nil {
				// Back off slightly so equal-quality optima are not
				// pruned away before proving optimality.
				v := best.GainPct - 1e-9*(1+best.GainPct)
				seed = &v
			}
			att, err := solveSubproblemSeeded(k, li, dir, o, seed, root)
			if errors.Is(err, ErrNoFeasibleAttack) {
				stats.Subproblems++
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("core: Algorithm 1 at line %d dir %+d: %w", li, dir, err)
			}
			if att == nil {
				stats.Subproblems++
				stats.Pruned++
				continue // pruned: nothing here beats the current best
			}
			anyFeasible = true
			totalNodes += att.Nodes
			exact = exact && att.Exact
			stats.add(att.Stats)
			if best == nil || att.GainPct > best.GainPct {
				best = att
			}
		}
	}
	if !anyFeasible || best == nil {
		return nil, ErrNoFeasibleAttack
	}
	best.Nodes = totalNodes
	best.Exact = exact
	stats.WallTime = time.Since(start)
	best.Stats = stats
	root.SetAttr("gain_pct", best.GainPct)
	root.SetAttr("target", best.TargetLine)
	root.SetAttr("nodes", stats.Nodes)
	return best, nil
}

// GreedyVertexAttack is the heuristic baseline suggested by the structure of
// the paper's Table I optimum: to overload a target DLR line, raise its
// manipulated rating to the band maximum and choke every other DLR line to
// the band minimum, forcing flow onto the target. It evaluates all 2·|E_D|
// vertex candidates through the operator's actual dispatch and keeps the
// best stealthy-feasible one.
func GreedyVertexAttack(k *Knowledge) (*Attack, error) {
	net := k.Model.Net
	dlrLines := net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}
	var best *Attack
	for _, target := range dlrLines {
		dlr := make(map[int]float64, len(dlrLines))
		for _, li := range dlrLines {
			if li == target {
				dlr[li] = net.Lines[li].DLRMax
			} else {
				dlr[li] = net.Lines[li].DLRMin
			}
		}
		ev, err := k.EvaluateAttack(dlr)
		if err != nil {
			return nil, fmt.Errorf("core: greedy candidate for line %d: %w", target, err)
		}
		if !ev.Feasible {
			continue
		}
		if best == nil || ev.GainPct > best.GainPct {
			best = &Attack{
				DLR:            dlr,
				TargetLine:     ev.WorstLine,
				Direction:      ev.Direction,
				GainPct:        ev.GainPct,
				PredictedP:     ev.Dispatch.P,
				PredictedFlows: ev.Dispatch.Flows,
				PredictedCost:  ev.Dispatch.Cost,
			}
		}
	}
	if best == nil {
		return nil, ErrNoFeasibleAttack
	}
	return best, nil
}

// RandomAttack samples manipulations uniformly from the plausibility box and
// keeps the best stealthy-feasible one — the weakest baseline, quantifying
// how much the physics-aware optimization buys the attacker.
func RandomAttack(k *Knowledge, samples int, seed int64) (*Attack, error) {
	net := k.Model.Net
	dlrLines := net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}
	if samples <= 0 {
		samples = 50
	}
	rng := rand.New(rand.NewSource(seed))
	var best *Attack
	for s := 0; s < samples; s++ {
		dlr := make(map[int]float64, len(dlrLines))
		for _, li := range dlrLines {
			l := &net.Lines[li]
			dlr[li] = l.DLRMin + (l.DLRMax-l.DLRMin)*rng.Float64()
		}
		ev, err := k.EvaluateAttack(dlr)
		if err != nil {
			return nil, fmt.Errorf("core: random candidate %d: %w", s, err)
		}
		if !ev.Feasible {
			continue
		}
		if best == nil || ev.GainPct > best.GainPct {
			best = &Attack{
				DLR:            dlr,
				TargetLine:     ev.WorstLine,
				Direction:      ev.Direction,
				GainPct:        ev.GainPct,
				PredictedP:     ev.Dispatch.P,
				PredictedFlows: ev.Dispatch.Flows,
				PredictedCost:  ev.Dispatch.Cost,
			}
		}
	}
	if best == nil {
		return nil, ErrNoFeasibleAttack
	}
	return best, nil
}

// SortedDLRLines returns the DLR line indices sorted by true rating, a
// convenience for deterministic reporting.
func SortedDLRLines(k *Knowledge) []int {
	out := k.Model.Net.DLRLines()
	sort.Slice(out, func(a, b int) bool { return k.TrueDLR[out[a]] < k.TrueDLR[out[b]] })
	return out
}
