package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/edsec/edattack/internal/par"
	"github.com/edsec/edattack/internal/telemetry"
)

// ctxErr reports a wrapped context error when ctx is non-nil and done, nil
// otherwise. Every cancellation exit in this package funnels through it so
// errors.Is(err, context.Canceled/DeadlineExceeded) works uniformly.
func ctxErr(ctx context.Context, what string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s aborted: %w", what, err)
	}
	return nil
}

// betterAttack reports whether a should replace b as the incumbent winner:
// larger gain first, then lower target line, then positive before negative
// direction. The ordering is a total order over distinct (target, dir)
// subproblems, which makes the Algorithm 1 winner independent of the order
// results arrive in.
func betterAttack(a, b *Attack) bool {
	if a.GainPct != b.GainPct {
		return a.GainPct > b.GainPct
	}
	if a.TargetLine != b.TargetLine {
		return a.TargetLine < b.TargetLine
	}
	return a.Direction > b.Direction
}

// FindOptimalAttack implements Algorithm 1 (GetOptimalAttack): it solves the
// 2·|E_D| bilevel subproblems — one per DLR line and flow direction — and
// returns the attack with the largest non-negative percentage capacity
// violation. When no subproblem admits a stealthy feasible manipulation it
// returns ErrNoFeasibleAttack.
//
// The subproblems are independent (the paper's decomposition argument) and
// are fanned over o.Workers goroutines. Every worker publishes realized
// gains to a shared incumbent bound that tightens pruning for all in-flight
// and queued subproblems; the returned attack is nevertheless identical for
// every worker count — see Options.Workers for the contract and
// seedSlackFactor for the argument.
func FindOptimalAttack(k *Knowledge, o Options) (*Attack, error) {
	o = o.withDefaults()
	if err := ctxErr(o.Ctx, "run"); err != nil {
		return nil, err
	}
	if o.DenseSolver && !k.Model.DenseSolver {
		// Run the whole attack — dispatch evaluations included — on the
		// dense engines, without mutating the caller's model.
		// Fresh memo: cached sparse-engine results must not leak into a
		// dense run (the engines agree on attacks, not on every last bit).
		k = &Knowledge{Model: k.Model.ShallowClone(), TrueDLR: k.TrueDLR, memo: newEDMemo()}
		k.Model.DenseSolver = true
	}
	dlrLines := k.Model.Net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}
	start := time.Now()
	stats := &SolverStats{}
	root := telemetry.StartSpan(o.Tracer, nil, "core.find_optimal_attack")
	root.SetAttr("dlr_lines", len(dlrLines))
	root.SetAttr("subproblems", 2*len(dlrLines))
	root.SetAttr("workers", o.Workers)
	defer root.End()

	// A sequential fan-out (one resolved worker) runs inline on this
	// goroutine, so the parallel machinery is bypassed: the incumbent bound
	// drops its atomics, and tasks share the caller's model — with the
	// warm-start memory reset per task to the state a fresh clone would
	// start in — instead of paying a ShallowClone each. Results are
	// bit-identical either way; only the overhead differs.
	seq := par.Resolve(o.Workers, 2*len(dlrLines)) == 1
	inc := &incumbentBound{seq: seq}

	// Warm start (before the fan-out): the greedy vertex attack gives a
	// realized, achievable gain that prunes every subproblem that cannot
	// beat it.
	var best *Attack
	if !o.NoSeed {
		seedSpan := telemetry.StartSpan(nil, root, "core.greedy_seed")
		grd, err := greedyVertexAttack(k, o.Workers, o.Ctx, o.DisablePooling)
		if err == nil {
			grd.Exact = false // a seed, not a proven optimum
			best = grd
			inc.Offer(grd.GainPct)
			o.Flight.Record(telemetry.FlightEvent{
				Kind:      telemetry.FlightIncumbent,
				Target:    grd.TargetLine,
				Dir:       grd.Direction,
				Incumbent: grd.GainPct,
				Label:     "seed",
			})
			seedSpan.SetAttr("gain_pct", grd.GainPct)
		} else if !errors.Is(err, ErrNoFeasibleAttack) {
			seedSpan.End()
			return nil, fmt.Errorf("core: greedy seeding: %w", err)
		}
		seedSpan.End()
	}

	// Shared solve-invariant scaffolding, built once on the caller's model
	// (its dispatch warm start is the one mutation, and it happens before
	// any worker exists).
	pre := precompute(k, o)

	// Fan out. Each task gets its own shallow model clone so its solve
	// trajectory never depends on which goroutine (or predecessor task)
	// touched the warm-start state — a precondition for worker-count
	// independence. Results land in per-task slots; the merge below runs
	// in fixed task order.
	type task struct{ line, dir int }
	tasks := make([]task, 0, 2*len(dlrLines))
	for _, li := range dlrLines {
		tasks = append(tasks, task{li, 1}, task{li, -1})
	}
	atts := make([]*Attack, len(tasks))
	substats := make([]*SolverStats, len(tasks))
	errs := make([]error, len(tasks))
	var saved []int
	if seq {
		saved = k.Model.WarmStartState()
	}
	par.Each(o.Workers, len(tasks), func(i int) {
		if err := ctxErr(o.Ctx, "subproblem fan-out"); err != nil {
			errs[i] = err
			return
		}
		kw := k
		if seq {
			kw.Model.ResetWarmStart()
		} else {
			kw = k.forWorker()
		}
		ot := o
		release := ot.checkoutWorkspaces(kw.Model)
		att, st, err := solveSubproblemSeeded(kw, tasks[i].line, tasks[i].dir, ot, inc, pre, root)
		release()
		// Publish only positive gains. A zero-gain result (a clamped
		// non-violating optimum) prunes nothing a sibling could not already
		// rule out, but publishing it mid-flight would SET an otherwise
		// empty bound at a schedule-dependent instant — and a node-budget-
		// truncated sibling search would then freeze different equal-gain
		// incumbents under different worker timings. Pre-fan-out offers
		// (the greedy seed) are deterministic and stay unconditional.
		if err == nil && att != nil && att.GainPct > 0 {
			inc.Offer(att.GainPct)
			o.Flight.Record(telemetry.FlightEvent{
				Kind:      telemetry.FlightIncumbent,
				Target:    tasks[i].line,
				Dir:       tasks[i].dir,
				Incumbent: att.GainPct,
				Label:     "shared",
			})
		}
		atts[i], substats[i], errs[i] = att, st, err
	})
	if seq {
		// Leave the caller's model exactly as the parallel path would: the
		// clone-per-task schedule never touches it after precompute.
		k.Model.RestoreWarmStart(saved)
	}

	anyFeasible := best != nil
	totalNodes := 0
	exact := true
	for i, t := range tasks {
		att, err := atts[i], errs[i]
		if errors.Is(err, ErrNoFeasibleAttack) {
			stats.add(substats[i])
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("core: Algorithm 1 at line %d dir %+d: %w", t.line, t.dir, err)
		}
		if att == nil {
			// No attack from this subproblem: a pruning proof (counted in
			// the stats block), or a truncated empty search — which proved
			// nothing, so the winner's optimality claim must not survive it.
			stats.add(substats[i])
			if st := substats[i]; st != nil && st.Truncated > 0 {
				exact = false
			}
			continue
		}
		anyFeasible = true
		totalNodes += att.Nodes
		exact = exact && att.Exact
		stats.add(att.Stats)
		if best == nil || betterAttack(att, best) {
			best = att
		}
	}
	if !anyFeasible || best == nil {
		return nil, ErrNoFeasibleAttack
	}
	// A context that expires anywhere in the run must surface as an error,
	// never as a result: the rich polish below stops early under a done
	// context, and a half-polished winner would differ from the canonical
	// attack. (Mid-fan-out cancellations were already caught per task.)
	if err := ctxErr(o.Ctx, "run"); err != nil {
		return nil, err
	}
	// Rich refinement: one deeper deterministic polish of the single winner
	// (wider candidate set than the per-subproblem dives — paying it 2·|E_D|
	// times would dominate the run). The winner and its raw ratings are
	// already schedule-independent, so the refined attack is too. A fresh
	// worker clone keeps the caller's model untouched; strict improvement
	// only, so a no-op polish leaves the merge result bit-identical.
	if !o.NoDive && best.GainPct > 0 {
		raw := best.rawDLR
		if raw == nil {
			raw = best.DLR
		}
		kw := k.forWorker()
		ot := o
		release := ot.checkoutWorkspaces(kw.Model)
		defer release()
		sp := newSubproblem(kw, best.TargetLine, float64(best.Direction), pre.monitored, ot, pre)
		if rg, rdlr, rres, ok := sp.polish(raw, true); ok {
			if rg = quantize(rg, gainQuantum); rg > best.GainPct {
				nb := *best
				nb.GainPct = rg
				nb.DLR = canonicalDLR(kw, rdlr, rres.Flows)
				nb.rawDLR = rdlr
				nb.PredictedP = rres.P
				nb.PredictedFlows = rres.Flows
				nb.PredictedCost = kw.Model.Cost(rres.P)
				best = &nb
			}
		}
	}
	best.Nodes = totalNodes
	best.Exact = exact
	stats.WallTime = time.Since(start)
	// Settle the aggregate bound against the winner: exact runs are their
	// own bound; truncated runs report the worst surviving subproblem bound
	// and the gap it leaves above the winning gain.
	if exact {
		stats.BestBoundPct = best.GainPct
		stats.Gap = 0
	} else if !math.IsInf(stats.BestBoundPct, 1) {
		if stats.BestBoundPct < best.GainPct {
			stats.BestBoundPct = best.GainPct
		}
		stats.Gap = (stats.BestBoundPct - best.GainPct) / (1 + best.GainPct)
	}
	best.Stats = stats
	root.SetAttr("gain_pct", best.GainPct)
	root.SetAttr("target", best.TargetLine)
	root.SetAttr("nodes", stats.Nodes)
	resultLabel := "optimal"
	if !best.Exact {
		resultLabel = "truncated"
	}
	o.Flight.Record(telemetry.FlightEvent{
		Kind:      telemetry.FlightAttack,
		Target:    best.TargetLine,
		Dir:       best.Direction,
		Incumbent: best.GainPct,
		DurUS:     stats.WallTime.Microseconds(),
		Label:     resultLabel,
	})
	if err := ctxErr(o.Ctx, "run"); err != nil {
		// The context fired during the winner's rich polish: the polish
		// stopped at an arbitrary candidate, so the refined attack is not
		// the canonical one. Error out rather than return it.
		return nil, err
	}
	return best, nil
}

// GreedyVertexAttack is the heuristic baseline suggested by the structure of
// the paper's Table I optimum: to overload a target DLR line, raise its
// manipulated rating to the band maximum and choke every other DLR line to
// the band minimum, forcing flow onto the target. It evaluates all 2·|E_D|
// vertex candidates through the operator's actual dispatch and keeps the
// best stealthy-feasible one.
func GreedyVertexAttack(k *Knowledge) (*Attack, error) {
	return greedyVertexAttack(k, 0, nil, false)
}

// greedyVertexAttack evaluates the vertex candidates over a worker pool.
// Candidates are independent dispatch solves; each runs against its own
// shallow model clone and results merge in candidate order (strict
// improvement), so the outcome matches the sequential sweep exactly.
// A non-nil ctx is checked per candidate; a done context errors the sweep.
func greedyVertexAttack(k *Knowledge, workers int, ctx context.Context, noPool bool) (*Attack, error) {
	net := k.Model.Net
	dlrLines := net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}
	seq := par.Resolve(workers, len(dlrLines)) == 1
	var saved []int
	if seq {
		saved = k.Model.WarmStartState()
	}
	cands := make([]*Attack, len(dlrLines))
	errs := make([]error, len(dlrLines))
	par.Each(workers, len(dlrLines), func(i int) {
		if err := ctxErr(ctx, "greedy candidate"); err != nil {
			errs[i] = err
			return
		}
		target := dlrLines[i]
		dlr := make(map[int]float64, len(dlrLines))
		for _, li := range dlrLines {
			if li == target {
				dlr[li] = net.Lines[li].DLRMax
			} else {
				dlr[li] = net.Lines[li].DLRMin
			}
		}
		kw := k
		if seq {
			kw.Model.ResetWarmStart()
		} else {
			kw = k.forWorker()
		}
		release := checkoutModelWorkspace(kw.Model, noPool)
		ev, err := kw.EvaluateAttack(dlr)
		release()
		if err != nil {
			errs[i] = fmt.Errorf("core: greedy candidate for line %d: %w", target, err)
			return
		}
		if !ev.Feasible {
			return
		}
		cands[i] = &Attack{
			DLR:            dlr,
			TargetLine:     ev.WorstLine,
			Direction:      ev.Direction,
			GainPct:        ev.GainPct,
			PredictedP:     ev.Dispatch.P,
			PredictedFlows: ev.Dispatch.Flows,
			PredictedCost:  ev.Dispatch.Cost,
		}
	})
	if seq {
		k.Model.RestoreWarmStart(saved)
	}
	var best *Attack
	for i := range cands {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if cands[i] == nil {
			continue
		}
		if best == nil || cands[i].GainPct > best.GainPct {
			best = cands[i]
		}
	}
	if best == nil {
		return nil, ErrNoFeasibleAttack
	}
	return best, nil
}

// RandomAttack samples manipulations uniformly from the plausibility box and
// keeps the best stealthy-feasible one — the weakest baseline, quantifying
// how much the physics-aware optimization buys the attacker.
func RandomAttack(k *Knowledge, samples int, seed int64) (*Attack, error) {
	return randomAttack(k, samples, seed, 0, false)
}

// randomAttack draws every sample from the seeded rng sequentially — so the
// sample sequence is a pure function of the seed regardless of worker count
// — then evaluates the candidates over a worker pool and merges in sample
// order.
func randomAttack(k *Knowledge, samples int, seed int64, workers int, noPool bool) (*Attack, error) {
	net := k.Model.Net
	dlrLines := net.DLRLines()
	if len(dlrLines) == 0 {
		return nil, ErrNoDLRLines
	}
	if samples <= 0 {
		samples = 50
	}
	rng := rand.New(rand.NewSource(seed))
	dlrs := make([]map[int]float64, samples)
	for s := 0; s < samples; s++ {
		dlr := make(map[int]float64, len(dlrLines))
		for _, li := range dlrLines {
			l := &net.Lines[li]
			dlr[li] = l.DLRMin + (l.DLRMax-l.DLRMin)*rng.Float64()
		}
		dlrs[s] = dlr
	}
	seq := par.Resolve(workers, samples) == 1
	var saved []int
	if seq {
		saved = k.Model.WarmStartState()
	}
	cands := make([]*Attack, samples)
	errs := make([]error, samples)
	par.Each(workers, samples, func(s int) {
		kw := k
		if seq {
			kw.Model.ResetWarmStart()
		} else {
			kw = k.forWorker()
		}
		release := checkoutModelWorkspace(kw.Model, noPool)
		ev, err := kw.EvaluateAttack(dlrs[s])
		release()
		if err != nil {
			errs[s] = fmt.Errorf("core: random candidate %d: %w", s, err)
			return
		}
		if !ev.Feasible {
			return
		}
		cands[s] = &Attack{
			DLR:            dlrs[s],
			TargetLine:     ev.WorstLine,
			Direction:      ev.Direction,
			GainPct:        ev.GainPct,
			PredictedP:     ev.Dispatch.P,
			PredictedFlows: ev.Dispatch.Flows,
			PredictedCost:  ev.Dispatch.Cost,
		}
	})
	if seq {
		k.Model.RestoreWarmStart(saved)
	}
	var best *Attack
	for s := range cands {
		if errs[s] != nil {
			return nil, errs[s]
		}
		if cands[s] == nil {
			continue
		}
		if best == nil || cands[s].GainPct > best.GainPct {
			best = cands[s]
		}
	}
	if best == nil {
		return nil, ErrNoFeasibleAttack
	}
	return best, nil
}

// SortedDLRLines returns the DLR line indices sorted by true rating, a
// convenience for deterministic reporting.
func SortedDLRLines(k *Knowledge) []int {
	out := k.Model.Net.DLRLines()
	sort.Slice(out, func(a, b int) bool { return k.TrueDLR[out[a]] < k.TrueDLR[out[b]] })
	return out
}
