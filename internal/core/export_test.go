package core

// Test-only exports of the worker-parameterized baseline attackers, so the
// external test package can pin their worker-count independence.

func GreedyVertexAttackWorkers(k *Knowledge, workers int) (*Attack, error) {
	return greedyVertexAttack(k, workers, nil, false)
}

func RandomAttackWorkers(k *Knowledge, samples int, seed int64, workers int) (*Attack, error) {
	return randomAttack(k, samples, seed, workers, false)
}
