package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/milp"
	"github.com/edsec/edattack/internal/telemetry"
)

// ineqKind labels one inner-problem inequality row.
type ineqKind int

const (
	genUpper ineqKind = iota + 1 // p_i ≤ Pmax_i
	genLower                     // −p_i ≤ −Pmin_i
	flowPos                      // M_l·p + f0_l ≤ u_l
	flowNeg                      // −M_l·p − f0_l ≤ u_l
)

// ineqRow describes one inner inequality in the KKT system.
type ineqRow struct {
	kind ineqKind
	gen  int // for gen rows
	line int // for flow rows
}

// precomp caches the solve-invariant scaffolding every one of Algorithm 1's
// 2·|E_D| subproblems shares: the DLR variable order, the initial monitored
// line set (whose computation costs a full dispatch solve — previously paid
// once per subproblem), and the KKT inequality-row layout for that set. It
// is built once before the fan-out and read concurrently by all workers, so
// nothing in it may be mutated after construction.
type precomp struct {
	dlrOrder  []int
	monitored []int
	rows      []ineqRow // row layout for the initial monitored set
}

// precompute builds the shared scaffolding on the caller's model (the one
// model mutation — the dispatch warm start inside initialMonitoredSet —
// happens here, before any worker exists).
func precompute(k *Knowledge, o Options) *precomp {
	p := &precomp{
		dlrOrder:  k.Model.Net.DLRLines(),
		monitored: initialMonitoredSet(k, o),
	}
	p.rows = buildRows(len(k.Model.Net.Gens), p.monitored)
	return p
}

// buildRows lays out the inner problem's inequality rows for a monitored
// line set: generator upper bounds, generator lower bounds, then a ± flow
// pair per monitored line.
func buildRows(ng int, monitored []int) []ineqRow {
	rows := make([]ineqRow, 0, 2*ng+2*len(monitored))
	for i := 0; i < ng; i++ {
		rows = append(rows, ineqRow{kind: genUpper, gen: i})
	}
	for i := 0; i < ng; i++ {
		rows = append(rows, ineqRow{kind: genLower, gen: i})
	}
	for _, li := range monitored {
		rows = append(rows, ineqRow{kind: flowPos, line: li})
		rows = append(rows, ineqRow{kind: flowNeg, line: li})
	}
	return rows
}

// subproblem is one (target line, direction) instance of the paper's
// decomposition: maximize 100·(dir·f_t/u^d_t − 1) subject to the operator's
// KKT conditions under manipulated DLR ratings.
type subproblem struct {
	k         *Knowledge
	target    int
	dir       float64
	monitored []int // line indices whose flow constraints the inner ED sees
	dlrOrder  []int // DLR line indices in variable order
	method    Method
	bigM      float64
	cuts      bool // register λ/s pairs under big-M for cut generation

	// variable offsets in the master LP
	nx, np, ni           int
	xOff, pOff, sOff     int
	lamOff, nuIdx, muOff int
	rows                 []ineqRow
	lastX                []float64 // heuristic memoization of the last attack vector

	metrics *telemetry.Registry
	ctx     context.Context // bounds dive/polish candidate evaluation
	span    *telemetry.Span // parents the inner MILP solve spans
	// round is the 1-based row-generation round this instance solves,
	// stamped onto flight events so search trees attribute to the right
	// solve.
	round int

	// solvedNodes and solvedLPIters record the last solveOnce's work even
	// when it yields no usable attack (pruned or infeasible); the warm
	// counters split the nodes into basis-reuse hits and fallbacks.
	// solvedTruncated marks a search the node budget cut off before it
	// proved its verdict; solvedBound is that search's proven bound in the
	// LP objective scale (equal to the objective for proven results).
	solvedNodes, solvedLPIters         int
	solvedWarmNodes, solvedWarmFwdFall int
	solvedTruncated                    bool
	solvedBound                        float64

	// solvedBase and solvedRootBasis carry the solved LP and its root
	// relaxation basis to the next row-generation round, where the basis is
	// remapped onto the grown problem (old rows are a prefix of new rows).
	solvedBase      *lp.Problem
	solvedRootBasis *lp.Basis

	// warmSeed, when non-nil, seeds the first round's root relaxation from
	// a prior run's basis (WarmCache); later rounds warm-start from the
	// previous round instead.
	warmSeed *lp.Basis
}

// newSubproblem assembles the index bookkeeping for a monitored line set.
// When pre is non-nil and the monitored set is still the initial one, the
// hoisted row layout and DLR order are shared (read-only) instead of
// rebuilt.
func newSubproblem(k *Knowledge, target int, dir float64, monitored []int, o Options, pre *precomp) *subproblem {
	s := &subproblem{
		k: k, target: target, dir: dir,
		monitored: append([]int(nil), monitored...),
		method:    o.Method,
		bigM:      o.BigM,
		cuts:      o.Cuts,
		metrics:   o.Metrics,
		ctx:       o.Ctx,
	}
	ng := len(k.Model.Net.Gens)
	if pre != nil {
		s.dlrOrder = pre.dlrOrder
		if len(monitored) == len(pre.monitored) {
			s.rows = pre.rows
		}
	} else {
		s.dlrOrder = k.Model.Net.DLRLines()
	}
	if s.rows == nil {
		s.rows = buildRows(ng, s.monitored)
	}
	s.nx = len(s.dlrOrder)
	s.np = ng
	s.ni = len(s.rows)
	s.xOff = 0
	s.pOff = s.nx
	s.sOff = s.pOff + s.np
	s.lamOff = s.sOff + s.ni
	s.nuIdx = s.lamOff + s.ni
	s.muOff = s.nuIdx + 1 // big-M binaries (if used)
	return s
}

// dlrVar returns the master variable index of line li's manipulated rating,
// or -1 if li is not a DLR line.
func (s *subproblem) dlrVar(li int) int {
	for k, l := range s.dlrOrder {
		if l == li {
			return s.xOff + k
		}
	}
	return -1
}

// build constructs the single-level program.
func (s *subproblem) build() (*milp.Problem, error) {
	k := s.k
	net := k.Model.Net
	gens := net.Gens
	nvars := s.muOff
	if s.method == MethodBigM {
		nvars += s.ni
	}
	base := lp.NewProblem(nvars)

	// Variable bounds.
	for idx, li := range s.dlrOrder {
		l := &net.Lines[li]
		if err := base.SetBounds(s.xOff+idx, l.DLRMin, l.DLRMax); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	for i := range gens {
		if err := base.SetBounds(s.pOff+i, gens[i].Pmin, gens[i].Pmax); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	for j := 0; j < s.ni; j++ {
		if err := base.SetBounds(s.sOff+j, 0, math.Inf(1)); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := base.SetBounds(s.lamOff+j, 0, math.Inf(1)); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	// ν free (default bounds).

	// Objective: maximize 100·dir·f_t/u^d_t (constant −100 added by the
	// caller). f_t = M_t·p + f0_t.
	ud := k.TrueDLR[s.target]
	obj := make([]float64, nvars)
	mt := k.Model.M.RawRow(s.target)
	for i := range gens {
		obj[s.pOff+i] = 100 * s.dir * mt[i] / ud
	}
	if err := base.SetObjective(obj, true); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Supply-demand balance: Σ p_i = D (eq. 6).
	idx := make([]int, len(gens))
	ones := make([]float64, len(gens))
	for i := range gens {
		idx[i] = s.pOff + i
		ones[i] = 1
	}
	if _, err := base.AddSparseConstraint(idx, ones, lp.EQ, k.Model.Demand); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Primal feasibility with explicit slacks: g_j(p) − h_j(x) + s_j = 0.
	for j, row := range s.rows {
		switch row.kind {
		case genUpper:
			if _, err := base.AddSparseConstraint(
				[]int{s.pOff + row.gen, s.sOff + j}, []float64{1, 1},
				lp.EQ, gens[row.gen].Pmax); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		case genLower:
			if _, err := base.AddSparseConstraint(
				[]int{s.pOff + row.gen, s.sOff + j}, []float64{-1, 1},
				lp.EQ, -gens[row.gen].Pmin); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		case flowPos, flowNeg:
			sign := 1.0
			if row.kind == flowNeg {
				sign = -1
			}
			li := row.line
			mrow := k.Model.M.RawRow(li)
			cidx := make([]int, 0, len(gens)+2)
			cval := make([]float64, 0, len(gens)+2)
			for i := range gens {
				if mrow[i] != 0 {
					cidx = append(cidx, s.pOff+i)
					cval = append(cval, sign*mrow[i])
				}
			}
			cidx = append(cidx, s.sOff+j)
			cval = append(cval, 1)
			rhs := -sign * k.Model.Base[li]
			if xv := s.dlrVar(li); xv >= 0 {
				cidx = append(cidx, xv)
				cval = append(cval, -1)
			} else {
				rhs += net.Lines[li].RateMVA
			}
			if _, err := base.AddSparseConstraint(cidx, cval, lp.EQ, rhs); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}

	// Stationarity (eq. 16c): 2a_i·p_i + b_i + ν + λᵀ(∂g/∂p_i) = 0.
	for i := range gens {
		cidx := []int{s.pOff + i, s.nuIdx}
		cval := []float64{2 * gens[i].CostA, 1}
		for j, row := range s.rows {
			var coeff float64
			switch row.kind {
			case genUpper:
				if row.gen == i {
					coeff = 1
				}
			case genLower:
				if row.gen == i {
					coeff = -1
				}
			case flowPos:
				coeff = k.Model.M.At(row.line, i)
			case flowNeg:
				coeff = -k.Model.M.At(row.line, i)
			}
			if coeff != 0 {
				cidx = append(cidx, s.lamOff+j)
				cval = append(cval, coeff)
			}
		}
		if _, err := base.AddSparseConstraint(cidx, cval, lp.EQ, -gens[i].CostB); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	prob := milp.NewProblem(base)
	switch s.method {
	case MethodComplementarity:
		for j := 0; j < s.ni; j++ {
			if err := prob.AddComplementarityPair(s.lamOff+j, s.sOff+j); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	case MethodBigM:
		// λ_j ≤ M·μ_j and s_j ≤ M·(1−μ_j) with binary μ_j (eq. 16d).
		for j := 0; j < s.ni; j++ {
			mu := s.muOff + j
			if err := prob.SetBinary(mu); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			if _, err := base.AddSparseConstraint(
				[]int{s.lamOff + j, mu}, []float64{1, -s.bigM}, lp.LE, 0); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			if _, err := base.AddSparseConstraint(
				[]int{s.sOff + j, mu}, []float64{1, s.bigM}, lp.LE, s.bigM); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		if s.cuts {
			// Register the λ/s pairs for cut generation only. Branching is
			// unaffected: binaries take precedence, and at any integral μ
			// the indicator rows already force one side of every pair to
			// zero, so pair branching never fires.
			for j := 0; j < s.ni; j++ {
				if err := prob.AddComplementarityPair(s.lamOff+j, s.sOff+j); err != nil {
					return nil, fmt.Errorf("core: %w", err)
				}
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown method %v", s.method)
	}
	return prob, nil
}

// remapRootBasis translates the previous round's root-relaxation basis onto
// the next round's grown problem. Row generation only ever appends monitored
// lines, so the old inequality rows are a prefix of the new ones; every old
// variable and constraint has a computable new index, and the rows added for
// fresh flow pairs keep their artificial basic (zero cost, so the remapped
// basis stays dual-feasible in the old columns). Returns nil — meaning "cold
// solve the new root" — whenever the layouts are not a clean extension.
func (s *subproblem) remapRootBasis(next *subproblem, nextBase *lp.Problem) *lp.Basis {
	if s.solvedRootBasis == nil || s.solvedBase == nil {
		return nil
	}
	if s.method != next.method || s.np != next.np || s.nx != next.nx || s.ni > next.ni {
		return nil
	}
	for j := 0; j < s.ni; j++ {
		if s.rows[j] != next.rows[j] {
			return nil
		}
	}
	ng := s.np
	oldNvars := s.muOff
	if s.method == MethodBigM {
		oldNvars += s.ni
	}
	varMap := make([]int, oldNvars)
	for j := 0; j < s.nx+s.np; j++ { // x and p blocks are identical
		varMap[j] = j
	}
	for j := 0; j < s.ni; j++ {
		varMap[s.sOff+j] = next.sOff + j
		varMap[s.lamOff+j] = next.lamOff + j
	}
	varMap[s.nuIdx] = next.nuIdx
	if s.method == MethodBigM {
		for j := 0; j < s.ni; j++ {
			varMap[s.muOff+j] = next.muOff + j
		}
	}
	// Constraint rows in build() order: balance, one primal-feasibility row
	// per inequality, ng stationarity rows, then (big-M only) two LE rows
	// per inequality.
	oldRows := 1 + s.ni + ng
	if s.method == MethodBigM {
		oldRows += 2 * s.ni
	}
	rowMap := make([]int, oldRows)
	rowMap[0] = 0
	for j := 0; j < s.ni; j++ {
		rowMap[1+j] = 1 + j
	}
	for i := 0; i < ng; i++ {
		rowMap[1+s.ni+i] = 1 + next.ni + i
	}
	if s.method == MethodBigM {
		for r := 0; r < 2*s.ni; r++ {
			rowMap[1+s.ni+ng+r] = 1 + next.ni + ng + r
		}
	}
	return s.solvedRootBasis.Remap(s.solvedBase, nextBase, varMap, rowMap)
}

// subResult is a solved subproblem before row-generation verification.
type subResult struct {
	gain    float64 // objective including the −100 constant
	dlr     map[int]float64
	p       []float64
	nodes   int
	lpIters int
	exact   bool
}

// masterObj converts a realized attacker gain (U_cap percentage on the
// target) into this subproblem's LP objective scale.
func (s *subproblem) masterObj(gain float64) float64 {
	ud := s.k.TrueDLR[s.target]
	return gain + 100 - 100*s.dir*s.k.Model.Base[s.target]/ud
}

// heuristic rounds a node relaxation point into a true feasible incumbent:
// it clamps the relaxation's DLR variables into the plausibility band, runs
// the operator's actual ED under them, and scores the realized flow on the
// target line. The resulting (x, p) pair is feasible for the master by
// construction (the ED solution satisfies its own KKT conditions).
func (s *subproblem) heuristic(relaxX []float64) (float64, []float64, bool) {
	net := s.k.Model.Net
	dlr := make(map[int]float64, s.nx)
	for idx, li := range s.dlrOrder {
		dlr[li] = clampToBand(&net.Lines[li], relaxX[s.xOff+idx])
	}
	// Relaxations at adjacent nodes usually keep the same attack vector;
	// skip the (relatively expensive) ED re-solve when x is unchanged.
	if s.lastX != nil {
		same := true
		for idx, li := range s.dlrOrder {
			if math.Abs(dlr[li]-s.lastX[idx]) > 1e-7 {
				same = false
				break
			}
		}
		if same {
			return 0, nil, false
		}
	}
	s.lastX = make([]float64, s.nx)
	for idx, li := range s.dlrOrder {
		s.lastX[idx] = dlr[li]
	}
	res, err := s.k.Model.Solve(s.k.ratingsUnder(dlr))
	if err != nil {
		return 0, nil, false
	}
	ud := s.k.TrueDLR[s.target]
	obj := 100 * s.dir * (res.Flows[s.target] - s.k.Model.Base[s.target]) / ud
	point := make([]float64, len(relaxX))
	for idx, li := range s.dlrOrder {
		point[s.xOff+idx] = dlr[li]
	}
	copy(point[s.pOff:s.pOff+s.np], res.P)
	return obj, point, true
}

// polishPasses caps the coordinate-ascent rounds of the post-convergence
// polish; each pass scans every manipulated line's candidate set once.
const polishPasses = 6

// diveWideThreshold splits instances into the IEEE sizes (case118 has
// eight DLR lines) and the wide synthetic interconnections above it. On
// wide instances every candidate evaluation is a several-hundred-bus
// dispatch QP and the dives dominate the whole attack wall, so the
// non-rich polish screens with a leaner candidate set, fewer passes, and
// a single dive start; the winner's rich refinement then restores
// precision on the one subproblem where it matters. The cut is a pure
// function of the instance, so determinism across node orders and worker
// schedules is unaffected.
const diveWideThreshold = 8

// polish runs a deterministic coordinate ascent over the manipulated-rating
// space around a converged attack: per line, a fixed candidate set (band
// edges, a coarse grid across the plausibility band, and relative steps off
// the current value) is scored by the operator's actual ED, and the best
// strict improvement is kept; passes repeat until a full scan finds nothing.
// Every candidate the ED accepts is a genuine attack — the dispatch honors
// all manipulated ratings, so no unmonitored line is violated — which makes
// the polished result valid without another row-generation round. The scan
// order, candidate set, and tie-breaks are pure functions of the instance,
// so the polish preserves bit-identical results across node orders and
// worker schedules. rich widens the candidate set (a finer band grid and
// extra relative steps): ~2× the dispatch solves for a deeper ascent, used
// to refine a single winner rather than every dive.
func (s *subproblem) polish(dlr map[int]float64, rich bool) (float64, map[int]float64, *dispatch.Result, bool) {
	net := s.k.Model.Net
	ud := s.k.TrueDLR[s.target]
	eval := func(cand map[int]float64) (float64, *dispatch.Result, bool) {
		// A canceled context stops the coordinate ascent at the next
		// candidate — the surrounding round/run checks then surface the
		// context error, so a cut-short polish never escapes as a result.
		if s.ctx != nil && s.ctx.Err() != nil {
			return 0, nil, false
		}
		res, ok := s.k.solveMemo(s.dlrOrder, cand)
		if !ok {
			return 0, nil, false
		}
		return 100*s.dir*res.Flows[s.target]/ud - 100, res, true
	}
	cur := make(map[int]float64, len(dlr))
	for li, v := range dlr {
		cur[li] = v
	}
	// A choked starting point (ratings pinned to exact flows) can make the
	// ED infeasible; start from -Inf and let the scan find feasible ground.
	bestGain, bestRes := math.Inf(-1), (*dispatch.Result)(nil)
	if g, res, ok := eval(cur); ok {
		bestGain, bestRes = g, res
	}
	wide := !rich && len(s.dlrOrder) > diveWideThreshold
	passes := polishPasses
	if wide {
		passes = 3
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		for _, li := range s.dlrOrder {
			l := &net.Lines[li]
			width := l.DLRMax - l.DLRMin
			orig := cur[li]
			var cands []float64
			if wide {
				cands = []float64{
					l.DLRMin, l.DLRMax,
					orig - 0.08*width, orig + 0.08*width,
					l.DLRMin + 0.5*width,
				}
			} else {
				cands = []float64{
					l.DLRMin, l.DLRMax,
					orig - 0.08*width, orig - 0.02*width,
					orig + 0.02*width, orig + 0.08*width,
				}
				grid := 4
				if rich {
					grid = 8
					cands = append(cands, orig-0.005*width, orig+0.005*width)
				}
				for f := 1; f < grid; f++ {
					cands = append(cands, l.DLRMin+float64(f)/float64(grid)*width)
				}
			}
			bestV, found := orig, false
			for _, c := range cands {
				v := clampToBand(l, quantize(c, ratingQuantum))
				if v == orig || (found && v == bestV) {
					continue
				}
				cur[li] = v
				if g, res, ok := eval(cur); ok && g > bestGain+1e-9 {
					bestGain, bestRes, bestV, found = g, res, v, true
				}
			}
			cur[li] = bestV
			if found {
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	if bestRes == nil {
		return 0, nil, nil, false
	}
	return bestGain, cur, bestRes, true
}

// dive builds a deterministic incumbent for this subproblem before any
// branch-and-bound work: it polishes a fixed set of starting rating vectors
// — the no-attack statics and the band floor — toward the target and keeps
// the best result (first start wins ties). The starts and the polish are
// pure functions of the instance, so the dive is identical under every node
// order and worker schedule, and its attack is genuinely feasible — the ED
// it scores honors all manipulated ratings.
func (s *subproblem) dive() (float64, map[int]float64, *dispatch.Result, bool) {
	net := s.k.Model.Net
	starts := make([]map[int]float64, 2)
	for i := range starts {
		starts[i] = make(map[int]float64, len(s.dlrOrder))
	}
	for _, li := range s.dlrOrder {
		l := &net.Lines[li]
		starts[0][li] = clampToBand(l, l.RateMVA)
		starts[1][li] = l.DLRMin
	}
	if len(s.dlrOrder) > diveWideThreshold {
		// Wide instances: the no-attack statics are the one start worth a
		// full screen (see diveWideThreshold).
		starts = starts[:1]
	}
	bestGain, haveBest := 0.0, false
	var bestDLR map[int]float64
	var bestRes *dispatch.Result
	for _, start := range starts {
		if g, dlr, res, ok := s.polish(start, false); ok && (!haveBest || g > bestGain+gainQuantum/2) {
			bestGain, bestDLR, bestRes, haveBest = g, dlr, res, true
		}
	}
	return bestGain, bestDLR, bestRes, haveBest
}

// solveOnce builds and solves the subproblem for the current monitored set.
// incumbent is a static pruning seed in the LP objective scale; bound, when
// non-nil, is the live shared incumbent bound polled per branch-and-bound
// node. prev, when non-nil, is the previous row-generation round's
// subproblem: its root basis is remapped onto this round's grown problem so
// the re-solve warm-starts instead of repeating phase I from scratch.
func (s *subproblem) solveOnce(o Options, incumbent *float64, bound milp.BoundSource, prev *subproblem) (*subResult, error) {
	prob, err := s.build()
	if err != nil {
		return nil, err
	}
	s.solvedBase = prob.Base
	var warmRoot *lp.Basis
	if prev != nil && !o.NoWarmStart {
		warmRoot = prev.remapRootBasis(s, prob.Base)
	} else if s.warmSeed != nil && !o.NoWarmStart {
		warmRoot = s.warmSeed
	}
	sol, err := milp.SolveWith(prob, milp.Options{
		MaxNodes:         o.MaxNodes,
		Incumbent:        incumbent,
		Bound:            bound,
		Gap:              o.RelGap,
		Heuristic:        s.heuristic,
		NodeOrder:        o.NodeOrder,
		PseudoCost:       o.PseudoCost,
		Presolve:         o.Presolve,
		Cuts:             o.Cuts,
		WarmBasis:        warmRoot,
		DisableWarmStart: o.NoWarmStart,
		LP:               lp.Options{DenseSolver: o.DenseSolver, ForceSparse: o.ForceSparse, Workspace: o.ws},
		Ctx:              o.Ctx,
		Metrics:          s.metrics,
		Span:             s.span,
		Flight:           o.Flight,
		FlightTemplate:   telemetry.FlightEvent{Target: s.target, Dir: int(s.dir), Round: s.round},
	})
	if sol != nil {
		s.solvedNodes = sol.Nodes
		s.solvedLPIters = sol.LPIterations
		s.solvedWarmNodes = sol.WarmNodes
		s.solvedWarmFwdFall = sol.WarmFallbacks
		s.solvedRootBasis = sol.RootBasis
		s.solvedTruncated = sol.Status == milp.NodeLimit
		s.solvedBound = sol.BestBound
	}
	if err != nil {
		return nil, fmt.Errorf("core: subproblem line %d dir %+g: %w", s.target, s.dir, err)
	}
	// Big-M reformulations go numerically wrong exactly when multipliers
	// approach the constant; record how close this solve came.
	if s.method == MethodBigM && sol.X != nil && s.metrics != nil && s.bigM > 0 {
		maxMult := 0.0
		for j := 0; j < s.ni; j++ {
			if v := sol.X[s.lamOff+j]; v > maxMult {
				maxMult = v
			}
			if v := sol.X[s.sOff+j]; v > maxMult {
				maxMult = v
			}
		}
		ratio := maxMult / s.bigM
		s.metrics.Gauge("core_bigm_max_ratio").SetMax(ratio)
		if ratio > 0.99 {
			s.metrics.Counter("core_bigm_saturated_total").Inc()
		}
	}
	exact := true
	switch sol.Status {
	case milp.Optimal:
	case milp.Infeasible:
		return nil, nil // no stealthy manipulation admits a feasible ED here
	case milp.NodeLimit:
		if sol.X == nil {
			return nil, nil // truncated without beating the seed: no improvement found
		}
		exact = false
	default:
		return nil, fmt.Errorf("core: subproblem line %d dir %+g: unexpected status %v", s.target, s.dir, sol.Status)
	}
	dlr := make(map[int]float64, s.nx)
	for idx, li := range s.dlrOrder {
		// Quantize-then-clamp: interior ratings land on the reporting grid,
		// ratings at a band edge stay exactly on the edge.
		dlr[li] = clampToBand(&s.k.Model.Net.Lines[li], quantize(sol.X[s.xOff+idx], ratingQuantum))
	}
	p := make([]float64, s.np)
	copy(p, sol.X[s.pOff:s.pOff+s.np])
	// The LP objective covers only the variable part 100·dir·(M_t·p)/u^d;
	// restore the affine constant 100·dir·f0_t/u^d − 100.
	ud := s.k.TrueDLR[s.target]
	gain := sol.Objective + 100*s.dir*s.k.Model.Base[s.target]/ud - 100
	return &subResult{
		gain:    gain,
		dlr:     dlr,
		p:       p,
		nodes:   sol.Nodes,
		lpIters: sol.LPIterations,
		exact:   exact,
	}, nil
}

// SolveSubproblem solves one (target, direction) bilevel subproblem,
// growing the monitored line set by row generation until the predicted
// dispatch is feasible for the operator's full constraint set.
func SolveSubproblem(k *Knowledge, target int, dir int, o Options) (*Attack, error) {
	release := o.checkoutWorkspaces(k.Model)
	att, _, err := solveSubproblemSeeded(k, target, dir, o, nil, nil, nil)
	release()
	return att, err
}

// solveSubproblemSeeded additionally accepts the shared incumbent bound of a
// surrounding Algorithm 1 run; a nil inc disables pruning. Gains already
// proven by sibling subproblems seed the branch-and-bound search statically
// (per row-generation round) and dynamically (polled per node), both backed
// off by pruneSeed so equal-quality optima survive under any schedule. When
// nothing here beats the shared bound the function returns a nil attack.
// The stats block is returned even when no attack is — a pruned, truncated,
// or infeasible subproblem still reports its work, its Truncated count, and
// its proven bound, so the surrounding run can aggregate honest totals. pre,
// when non-nil, supplies the hoisted solve-invariant scaffolding. A non-nil
// parent span (or o.Tracer) yields one "core.subproblem" span per call.
func solveSubproblemSeeded(k *Knowledge, target int, dir int, o Options, inc *incumbentBound, pre *precomp, parent *telemetry.Span) (*Attack, *SolverStats, error) {
	o = o.withDefaults()
	if dir != 1 && dir != -1 {
		return nil, nil, fmt.Errorf("core: direction must be ±1, got %d", dir)
	}
	if _, ok := k.TrueDLR[target]; !ok {
		return nil, nil, fmt.Errorf("core: target line %d is not a DLR line", target)
	}
	net := k.Model.Net

	start := time.Now()
	span := telemetry.StartSpan(o.Tracer, parent, "core.subproblem")
	span.SetAttr("target", target)
	span.SetAttr("dir", dir)
	outcome := "error"
	if o.Metrics != nil {
		o.Metrics.Counter("core_subproblems_total").Inc()
	}
	if span != nil {
		defer func() {
			span.SetAttr("status", outcome)
			span.End()
		}()
	}

	var monitored []int
	if pre != nil {
		monitored = append([]int(nil), pre.monitored...)
	} else {
		monitored = initialMonitoredSet(k, o)
	}
	inSet := make(map[int]bool, len(monitored))
	for _, li := range monitored {
		inSet[li] = true
	}

	// One live-bound adapter per call: masterObj is affine in the gain with
	// unit slope, so the conversion to this subproblem's LP objective scale
	// is the constant offset masterObj(0).
	var sb *subproblemBound
	if inc != nil {
		ud := k.TrueDLR[target]
		sb = &subproblemBound{
			inc:    inc,
			offset: 100 - 100*float64(dir)*k.Model.Base[target]/ud,
			relGap: o.RelGap,
		}
	}

	// Deterministic dive: before any branch-and-bound work, polish the
	// no-attack rating vector toward this target on the true ED. The start
	// point and the coordinate ascent are pure functions of the instance, so
	// the dive gain is identical under every node order and worker schedule;
	// offering it tightens pruning for every sibling, and the dive attack is
	// what this subproblem returns when the search itself proves nothing
	// better (pruned or truncated) — the reduced KKT encoding cannot certify
	// attacks whose binding lines sit outside the monitored set, but the
	// dive's dispatch honors all manipulated ratings, so it is genuinely
	// feasible as-is.
	var (
		diveGain float64
		diveDLR  map[int]float64
		diveRes  *dispatch.Result
		haveDive bool
	)
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: subproblem line %d dir %+d aborted: %w", target, dir, err)
		}
	}
	if !o.NoDive {
		diveSP := newSubproblem(k, target, float64(dir), monitored, o, pre)
		diveGain, diveDLR, diveRes, haveDive = diveSP.dive()
	}
	if haveDive {
		diveGain = quantize(diveGain, gainQuantum)
		if diveGain <= 0 {
			haveDive = false
		}
	}
	if haveDive && inc != nil {
		inc.Offer(diveGain)
		if o.Flight != nil {
			o.Flight.Record(telemetry.FlightEvent{
				Kind:      telemetry.FlightIncumbent,
				Target:    target,
				Dir:       dir,
				Incumbent: diveGain,
				Label:     "dive",
			})
		}
	}

	var totalNodes, totalIters, rounds int
	var totalWarm, totalFallbacks, totalTrunc int
	var prevRound *subproblem
	hadSeed := false
	exact := true

	// boundGain/gapRel track the latest round's proven dual bound in gain
	// percentage units. Intermediate rounds' reduced problems bound their
	// own optimum; the converged (or final truncated) round's bound is the
	// one reported. gapRel normalizes against the best gain known here
	// (found or seeded), +Inf when a truncated search proved nothing.
	boundGain, gapRel := 0.0, 0.0
	noteBound := func(sp *subproblem, ref float64, haveRef bool) {
		boundGain = sp.solvedBound - sp.masterObj(0)
		if boundGain < 0 {
			boundGain = 0
		}
		switch {
		case !sp.solvedTruncated:
			gapRel = 0
		case haveRef:
			gapRel = (boundGain - ref) / (1 + math.Abs(ref))
			if gapRel < 0 {
				gapRel = 0
			}
		default:
			boundGain, gapRel = math.Inf(1), math.Inf(1)
		}
	}
	mkStats := func() *SolverStats {
		return &SolverStats{
			Subproblems:       1,
			Nodes:             totalNodes,
			SimplexIterations: totalIters,
			Rounds:            rounds,
			WarmNodes:         totalWarm,
			WarmFallbacks:     totalFallbacks,
			Truncated:         totalTrunc,
			BestBoundPct:      boundGain,
			Gap:               gapRel,
			WallTime:          time.Since(start),
		}
	}
	// mkAttack reports an attack in choked-canonical form; see canonicalDLR
	// for the canonicalization argument. rawDLR keeps the pre-canonical
	// ratings for the winner's final rich polish (the choked form can be
	// dispatch-infeasible as a polish starting point).
	mkAttack := func(dlr map[int]float64, gain float64, p, flows []float64, isExact bool) *Attack {
		return &Attack{
			DLR:            canonicalDLR(k, dlr, flows),
			rawDLR:         dlr,
			TargetLine:     target,
			Direction:      dir,
			GainPct:        gain,
			PredictedP:     p,
			PredictedFlows: flows,
			PredictedCost:  k.Model.Cost(p),
			Nodes:          totalNodes,
			Rounds:         rounds,
			Exact:          isExact,
			Stats:          mkStats(),
		}
	}

	// Flight recording and round latency. finishRound closes out one
	// row-generation round; the deferred FlightSubproblem event captures
	// the outcome whichever return path is taken.
	fl := o.Flight
	roundTimed := fl != nil || o.Metrics != nil
	var roundStart time.Time
	var finalGain float64
	finishRound := func(sp *subproblem, violated int, label string) {
		if !roundTimed {
			return
		}
		dur := time.Since(roundStart)
		if o.Metrics != nil {
			o.Metrics.Histogram("core_rowgen_round_seconds", telemetry.SecondsBuckets).Observe(dur.Seconds())
		}
		if fl == nil {
			return
		}
		fl.Record(telemetry.FlightEvent{
			Kind:      telemetry.FlightRound,
			Target:    target,
			Dir:       dir,
			Round:     rounds,
			Monitored: len(monitored),
			Violated:  violated,
			Pivots:    sp.solvedLPIters,
			DurUS:     dur.Microseconds(),
			Label:     label,
		})
	}
	if fl != nil {
		defer func() {
			fl.Record(telemetry.FlightEvent{
				Kind:      telemetry.FlightSubproblem,
				Target:    target,
				Dir:       dir,
				Round:     rounds,
				Monitored: len(monitored),
				Pivots:    totalIters,
				Bound:     finalGain,
				DurUS:     time.Since(start).Microseconds(),
				Label:     outcome,
			})
		}()
	}

	for round := 0; round < o.MaxRounds; round++ {
		if o.Ctx != nil {
			if err := o.Ctx.Err(); err != nil {
				return nil, mkStats(), fmt.Errorf("core: subproblem line %d dir %+d aborted: %w", target, dir, err)
			}
		}
		rounds = round + 1
		if roundTimed {
			roundStart = time.Now()
		}
		sp := newSubproblem(k, target, float64(dir), monitored, o, pre)
		sp.span = span
		sp.round = rounds
		if round == 0 && o.Warm != nil && !o.NoWarmStart {
			sp.warmSeed = o.Warm.lookup(target, dir, sp)
		}
		var seed *float64
		if g, ok := inc.Best(); ok {
			v := pruneSeed(sp.masterObj(g), o.RelGap)
			seed = &v
			hadSeed = true
		}
		var bound milp.BoundSource
		if sb != nil {
			bound = sb
		}
		res, err := sp.solveOnce(o, seed, bound, prevRound)
		if round == 0 && o.Warm != nil && !o.NoWarmStart {
			o.Warm.store(target, dir, sp)
		}
		totalNodes += sp.solvedNodes
		totalIters += sp.solvedLPIters
		totalWarm += sp.solvedWarmNodes
		totalFallbacks += sp.solvedWarmFwdFall
		if sp.solvedTruncated {
			totalTrunc++
		}
		prevRound = sp
		if err != nil {
			finishRound(sp, 0, "error")
			return nil, mkStats(), err
		}
		if res == nil {
			if sp.solvedTruncated {
				// The node budget ran out before the search found anything
				// or proved anything: not a pruning proof, so the caller's
				// result must not read as exact. The dive attack — when it
				// found one — is still a realized feasible gain, so return
				// it rather than nothing.
				refGain, haveRef := inc.Best()
				if haveDive && (!haveRef || diveGain > refGain) {
					refGain, haveRef = diveGain, true
				}
				noteBound(sp, refGain, haveRef)
				outcome = "truncated"
				if o.Metrics != nil {
					o.Metrics.Counter("core_subproblems_truncated_total").Inc()
				}
				finishRound(sp, 0, "truncated")
				if haveDive {
					if boundGain < diveGain {
						boundGain = diveGain
					}
					finalGain = diveGain
					att := mkAttack(diveDLR, diveGain, diveRes.P, diveRes.Flows, false)
					return att, att.Stats, nil
				}
				return nil, mkStats(), nil
			}
			noteBound(sp, 0, false)
			if hadSeed || sb.sawBound() {
				// Pruned: the reduced search proved nothing here beats the
				// shared bound. The dive attack is this subproblem's best
				// realized gain regardless — return it so the surrounding
				// merge can still pick it up (offers into the shared bound
				// carry gains, not attacks).
				outcome = "pruned"
				if o.Metrics != nil {
					o.Metrics.Counter("core_subproblems_pruned_total").Inc()
				}
				finishRound(sp, 0, "pruned")
				if haveDive {
					if boundGain < diveGain {
						boundGain = diveGain
					}
					finalGain = diveGain
					att := mkAttack(diveDLR, diveGain, diveRes.P, diveRes.Flows, true)
					att.Stats.Pruned = 1
					return att, att.Stats, nil
				}
				st := mkStats()
				st.Pruned = 1
				return nil, st, nil // pruned: nothing beats the shared bound here
			}
			if haveDive {
				// The reduced KKT problem is infeasible, but the dive still
				// realized a positive gain on the true ED.
				outcome = "optimal"
				finishRound(sp, 0, "dive")
				if boundGain < diveGain {
					boundGain = diveGain
				}
				finalGain = diveGain
				return mkAttack(diveDLR, diveGain, diveRes.P, diveRes.Flows, true), mkStats(), nil
			}
			outcome = "infeasible"
			finishRound(sp, 0, "infeasible")
			return nil, mkStats(), ErrNoFeasibleAttack
		}
		exact = exact && res.exact

		// Verify the predicted dispatch against every rated line the
		// reduced inner problem did not see; add violated rows and
		// repeat (the master's optimum is then exact for the full ED).
		flows, err := k.Model.FlowsFor(res.p)
		if err != nil {
			return nil, mkStats(), err
		}
		ratings := k.ratingsUnder(res.dlr)
		var violated []int
		for li := range net.Lines {
			if inSet[li] {
				continue
			}
			u := ratings[li]
			if u > 0 && math.Abs(flows[li]) > u+1e-6*(1+u) {
				violated = append(violated, li)
			}
		}
		if len(violated) == 0 {
			// Converged: polish the accepted attack with a deterministic
			// coordinate ascent on the true ED. The reduced problem only
			// models attacks whose binding lines are monitored; the polish
			// explores the quantized rating band directly and routinely
			// recovers gains the KKT encoding cannot certify.
			if !o.NoDive {
				if pg, pdlr, pres, ok := sp.polish(res.dlr, false); ok && pg > res.gain+gainQuantum/2 {
					res.gain = pg
					res.dlr = pdlr
					res.p = pres.P
					flows = pres.Flows
				}
			}
			gain := quantize(res.gain, gainQuantum)
			if gain < 0 {
				gain = 0
			}
			// Prefer the dive on ties: its attack vector is a pure function
			// of the instance, while an alternate optimum surfaced by the
			// search can differ per trajectory at equal gain.
			if haveDive && diveGain >= gain {
				gain = diveGain
				res.dlr = diveDLR
				res.p = diveRes.P
				flows = diveRes.Flows
			}
			noteBound(sp, gain, true)
			if boundGain < gain {
				// A polished incumbent can exceed the reduced problem's
				// certified bound (its KKT certificate may need lines the
				// monitored set never grew to include); the attained gain
				// is itself a proof, so the reported bound rises with it.
				boundGain = gain
			}
			outcome = "optimal"
			if !exact {
				outcome = "truncated"
			}
			finalGain = gain
			finishRound(sp, 0, "converged")
			span.SetAttr("gain_pct", gain)
			span.SetAttr("nodes", totalNodes)
			span.SetAttr("rounds", rounds)
			if o.Metrics != nil {
				o.Metrics.Counter("core_rowgen_rounds_total").Add(int64(rounds))
			}
			att := mkAttack(res.dlr, gain, res.p, flows, exact)
			return att, att.Stats, nil
		}
		finishRound(sp, len(violated), "grow")
		for _, li := range violated {
			inSet[li] = true
			monitored = append(monitored, li)
		}
	}
	return nil, mkStats(), fmt.Errorf("core: row generation did not converge after %d rounds for line %d dir %+d",
		o.MaxRounds, target, dir)
}

// canonicalDLR reports an attack's manipulated ratings in choked-canonical
// form: each rating is lowered to the smallest band value consistent with
// the dispatch it induces, so it either rests on the band floor or sits
// exactly on the line's flow (the paper's Table I vectors have exactly this
// shape). Ratings the solver left slack are trajectory freedom — alternate
// optima and truncated searches place them differently per engine and
// schedule. The canonical flows come from a forward dispatch under the raw
// manipulated ratings (not from an incumbent's KKT-encoded p, whose slack
// coordinates carry the same trajectory freedom): the dispatch QP is
// strictly convex, so its flows are a unique function of the ratings and
// every engine and worker schedule reports the same vector for the same
// optimum.
func canonicalDLR(k *Knowledge, dlr map[int]float64, flows []float64) map[int]float64 {
	net := k.Model.Net
	canonFlows := flows
	if ev, err := k.EvaluateAttack(dlr); err == nil && ev.Feasible {
		canonFlows = ev.Dispatch.Flows
	}
	canon := make(map[int]float64, len(dlr))
	for li := range dlr {
		l := &net.Lines[li]
		canon[li] = clampToBand(l, math.Max(l.DLRMin, quantize(math.Abs(canonFlows[li]), ratingQuantum)))
	}
	return canon
}

// initialMonitoredSet seeds row generation: all DLR lines plus any line
// binding in the no-attack dispatch (or every rated line when MonitorAll).
func initialMonitoredSet(k *Knowledge, o Options) []int {
	net := k.Model.Net
	if o.MonitorAll {
		all := make([]int, 0, len(net.Lines))
		for li := range net.Lines {
			if net.Ratings(k.TrueDLR)[li] > 0 {
				all = append(all, li)
			}
		}
		return all
	}
	seen := make(map[int]bool)
	var out []int
	add := func(li int) {
		if !seen[li] {
			seen[li] = true
			out = append(out, li)
		}
	}
	for _, li := range net.DLRLines() {
		add(li)
	}
	if res, err := k.Model.Solve(k.trueRatings()); err == nil {
		for _, li := range res.Binding {
			add(li)
		}
	} else if !errors.Is(err, dispatch.ErrInfeasible) {
		// Solver trouble at seeding time is non-fatal: row generation
		// will discover any missing constraints.
		_ = err
	}
	return out
}
