package telemetry

import (
	"math"
	"testing"
)

// TestQuantileEmpty: an empty histogram has no defensible point estimate.
func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Errorf("empty snapshot quantile = %g, want NaN", s.Quantile(0.5))
	}
	var h *Histogram
	if !math.IsNaN(h.Quantile(0.99)) {
		t.Error("nil histogram quantile is not NaN")
	}
	// Empty but registered: the JSON snapshot must stay encodable, so the
	// exported fields are zero rather than NaN.
	hs := NewRegistry().Histogram("empty", SecondsBuckets).snapshot()
	if hs.P50 != 0 || hs.P95 != 0 || hs.P99 != 0 {
		t.Errorf("empty snapshot exports P50=%g P95=%g P99=%g, want zeros", hs.P50, hs.P95, hs.P99)
	}
}

// TestQuantileSingleBucket: all mass in one bucket interpolates linearly
// across that bucket's span.
func TestQuantileSingleBucket(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{10}, Counts: []int64{4, 0}, Count: 4}
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 2.5}, {0.5, 5}, {0.75, 7.5}, {1, 10},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("q=%g: got %g, want %g", tc.q, got, tc.want)
		}
	}
}

// TestQuantileOverflowBucket: a rank landing in the +Inf bucket reports the
// largest finite bound instead of inventing a value.
func TestQuantileOverflowBucket(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{1, 1, 3}, Count: 5}
	if got := s.Quantile(0.99); got != 2 {
		t.Errorf("overflow-bucket quantile = %g, want last finite bound 2", got)
	}
	if got := s.Quantile(1); got != 2 {
		t.Errorf("q=1 with overflow mass = %g, want 2", got)
	}
	// Low quantiles still interpolate inside the finite buckets.
	if got := s.Quantile(0.2); math.Abs(got-1) > 1e-12 {
		t.Errorf("q=0.2 = %g, want 1", got)
	}
}

// TestQuantileZeroCountBucket: a rank resolving to an empty bucket returns
// that bucket's bound (no division by a zero count).
func TestQuantileZeroCountBucket(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 4, 0}, Count: 4}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q=0 in empty first bucket = %g, want its bound 1", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("q=0.5 = %g, want 1.5", got)
	}
}

// TestQuantileClamp: out-of-range and NaN q values.
func TestQuantileClamp(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{8}, Counts: []int64{2, 0}, Count: 2}
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Errorf("q<0 not clamped: %g vs %g", got, s.Quantile(0))
	}
	if got := s.Quantile(7); got != s.Quantile(1) {
		t.Errorf("q>1 not clamped: %g vs %g", got, s.Quantile(1))
	}
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Error("NaN q did not return NaN")
	}
}

// TestQuantileLiveHistogram drives the estimator through a registry-backed
// histogram with a known uniform sample and checks the snapshot's exported
// quantiles agree with direct calls.
func TestQuantileLiveHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency", []float64{1, 2, 5, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 10.0, uniform
	}
	// 10 samples land in (0,1], 10 in (1,2], 30 in (2,5], 50 in (5,10].
	p50 := h.Quantile(0.5)
	if math.Abs(p50-5) > 1e-9 {
		t.Errorf("p50 = %g, want 5 (rank 50 closes the (2,5] bucket)", p50)
	}
	p99 := h.Quantile(0.99)
	if math.Abs(p99-9.9) > 1e-9 {
		t.Errorf("p99 = %g, want 9.9", p99)
	}
	hs := reg.Snapshot().Histograms["latency"]
	if hs.P50 != p50 || hs.P99 != p99 {
		t.Errorf("snapshot quantiles (%g, %g) disagree with direct calls (%g, %g)",
			hs.P50, hs.P99, p50, p99)
	}
	if hs.P95 != h.Quantile(0.95) {
		t.Errorf("snapshot P95 %g != direct %g", hs.P95, h.Quantile(0.95))
	}
}
