package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is the JSONL wire form of one completed span.
type SpanEvent struct {
	// ID and Parent link spans into a tree; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation (e.g. "core.subproblem").
	Name string `json:"name"`
	// Start is the wall-clock start time in RFC3339Nano.
	Start string `json:"start"`
	// DurUS is the span duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Attrs carries the span's key/value attributes.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer emits completed spans as JSON lines to a writer. The zero value is
// not usable; create tracers with NewTracer. A nil *Tracer is a valid
// "tracing off" value: Start returns a nil span whose methods are no-ops.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	nextID atomic.Uint64
	now    func() time.Time // test seam
}

// NewTracer returns a tracer writing JSONL span events to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, now: time.Now}
}

// Start begins a root span. Returns nil (a no-op span) on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	return t.start(name, 0)
}

func (t *Tracer) start(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:      t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		begin:  t.now(),
	}
}

func (t *Tracer) emit(ev *SpanEvent) {
	line, err := json.Marshal(ev)
	if err != nil {
		return // attribute values are caller-controlled; drop, don't fail
	}
	line = append(line, '\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	_, _ = t.w.Write(line)
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver, so instrumented code can run with tracing disabled at the cost
// of a nil check.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	begin  time.Time

	mu    sync.Mutex
	attrs map[string]any
	done  bool
}

// Child begins a span parented to s (nil-safe: a nil parent yields nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id)
}

// StartSpan begins a span under parent when parent is non-nil, otherwise a
// root span on t. Either or both may be nil; the result is then nil. This
// is the standard entry point for instrumented library code that may be
// called both from a traced parent operation and standalone.
func StartSpan(t *Tracer, parent *Span, name string) *Span {
	if parent != nil {
		return parent.Child(name)
	}
	return t.Start(name)
}

// SetAttr records a key/value attribute on the span. Attributes set after
// End are dropped: End hands the attrs map to the emitter outside the span
// lock, so a post-End write would race with serialization. Spans are safe
// for concurrent use — workers may set attributes on (and create children
// of) a shared parent span freely.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 8)
	}
	s.attrs[key] = value
}

// End completes the span and emits its event. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.t.emit(&SpanEvent{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.begin.UTC().Format(time.RFC3339Nano),
		DurUS:  s.t.now().Sub(s.begin).Microseconds(),
		Attrs:  attrs,
	})
}
