package telemetry

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// JournalRecord is one hash-chained entry of the append-only event journal.
// Hash covers (Seq, Time, Type, Attrs, Prev), so any retroactive edit of a
// record — or removal/reordering of earlier records — breaks verification
// of every later entry.
type JournalRecord struct {
	// Seq is the 1-based position in the journal.
	Seq uint64 `json:"seq"`
	// Time is the append wall-clock time in RFC3339Nano.
	Time string `json:"time"`
	// Type names the event (e.g. "exploit.rating_overwritten").
	Type string `json:"type"`
	// Attrs carries event details. Use strings for values whose exact
	// bytes matter (e.g. addresses), since verification round-trips
	// through JSON numbers.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Prev is the hex SHA-256 of the previous record's payload (the
	// genesis constant for the first record).
	Prev string `json:"prev"`
	// Hash is the hex SHA-256 of this record's payload.
	Hash string `json:"hash"`
}

// journalGenesis anchors the chain: the Prev of record 1.
var journalGenesis = func() string {
	sum := sha256.Sum256([]byte("edattack-journal-v1"))
	return hex.EncodeToString(sum[:])
}()

// hashPayload is the canonical byte form the chain hash covers.
func (r *JournalRecord) hashPayload() ([]byte, error) {
	return json.Marshal(struct {
		Seq   uint64         `json:"seq"`
		Time  string         `json:"time"`
		Type  string         `json:"type"`
		Attrs map[string]any `json:"attrs,omitempty"`
		Prev  string         `json:"prev"`
	}{r.Seq, r.Time, r.Type, r.Attrs, r.Prev})
}

// Journal is an append-only, hash-chained event log written as JSONL. The
// zero value is not usable; create journals with NewJournal. A nil *Journal
// is a valid "journalling off" value: Append is a no-op.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	prev string
	seq  uint64
	now  func() time.Time // test seam
}

// NewJournal returns a journal writing chained records to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, prev: journalGenesis, now: time.Now}
}

// ResumeJournal returns a journal that appends to w as a continuation of an
// existing chain whose last valid record has sequence seq and hash prev —
// typically recovered with VerifyJournalTail. An empty prev (or seq 0)
// starts a fresh chain, making ResumeJournal on an empty file equivalent to
// NewJournal.
func ResumeJournal(w io.Writer, seq uint64, prev string) *Journal {
	if prev == "" {
		prev = journalGenesis
	}
	return &Journal{w: w, prev: prev, seq: seq, now: time.Now}
}

// Append adds one event to the journal. It is a no-op (returning nil) on a
// nil journal, so event sources need no configuration checks.
func (j *Journal) Append(eventType string, attrs map[string]any) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := JournalRecord{
		Seq:   j.seq + 1,
		Time:  j.now().UTC().Format(time.RFC3339Nano),
		Type:  eventType,
		Attrs: attrs,
		Prev:  j.prev,
	}
	payload, err := rec.hashPayload()
	if err != nil {
		return fmt.Errorf("telemetry: journal marshal: %w", err)
	}
	sum := sha256.Sum256(payload)
	rec.Hash = hex.EncodeToString(sum[:])
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("telemetry: journal marshal: %w", err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("telemetry: journal write: %w", err)
	}
	j.seq = rec.Seq
	j.prev = rec.Hash
	return nil
}

// ErrJournalTampered reports a broken hash chain during verification.
var ErrJournalTampered = errors.New("telemetry: journal hash chain broken")

// VerifyJournal re-derives the hash chain of a JSONL journal stream and
// returns the number of valid records. Any record whose hash, back link, or
// sequence number does not match fails the whole verification — an
// append-only log can only be trusted as a prefix.
func VerifyJournal(r io.Reader) (int, error) {
	n, _, err := VerifyJournalTail(r)
	return n, err
}

// VerifyJournalTail is VerifyJournal, additionally returning the hash of
// the last valid record (empty for an empty journal) so a later process can
// extend the chain with ResumeJournal instead of overwriting the log.
func VerifyJournalTail(r io.Reader) (int, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	prev := journalGenesis
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, "", fmt.Errorf("telemetry: journal record %d: %w", n+1, err)
		}
		if rec.Seq != uint64(n+1) {
			return n, "", fmt.Errorf("%w: record %d has seq %d", ErrJournalTampered, n+1, rec.Seq)
		}
		if rec.Prev != prev {
			return n, "", fmt.Errorf("%w: record %d back link mismatch", ErrJournalTampered, rec.Seq)
		}
		payload, err := rec.hashPayload()
		if err != nil {
			return n, "", fmt.Errorf("telemetry: journal record %d: %w", rec.Seq, err)
		}
		sum := sha256.Sum256(payload)
		if hex.EncodeToString(sum[:]) != rec.Hash {
			return n, "", fmt.Errorf("%w: record %d content hash mismatch", ErrJournalTampered, rec.Seq)
		}
		prev = rec.Hash
		n++
	}
	if err := sc.Err(); err != nil {
		return n, "", fmt.Errorf("telemetry: journal read: %w", err)
	}
	if n == 0 {
		return 0, "", nil
	}
	return n, prev, nil
}
