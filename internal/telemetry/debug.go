package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var expvarOnce sync.Once

// ServeDebug starts an HTTP listener exposing runtime profiling, the
// registry, and the flight recorder, for the commands' opt-in -debug flag:
//
//	/debug/pprof/    — net/http/pprof profiles
//	/debug/vars      — expvar (includes the registry under "edattack_metrics")
//	/metrics         — Prometheus text format (with _quantiles summaries)
//	/metrics.json    — JSON snapshot (with p50/p95/p99 per histogram)
//	/debug/flight    — flight-recorder dump as JSON
//	/debug/tree.dot  — largest recorded B&B search tree in Graphviz DOT
//
// It returns the bound address (useful with ":0") and a shutdown func. The
// registry and flight recorder may be nil; the endpoints then export empty
// data (tree.dot answers 404 until a tree has been recorded).
func ServeDebug(addr string, reg *Registry, flight *Flight) (string, func() error, error) {
	mux := http.NewServeMux()
	MountDebug(mux, reg, flight)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// MountDebug registers the debug/metrics endpoints on an existing mux, so a
// server with its own listener (edserve) exposes the same ops surface as
// the standalone debug listener. The registry and flight recorder may be
// nil, with the same empty-data semantics as ServeDebug.
func MountDebug(mux *http.ServeMux, reg *Registry, flight *Flight) {
	expvarOnce.Do(func() {
		expvar.Publish("edattack_metrics", expvar.Func(func() any {
			return reg.Snapshot()
		}))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = flight.WriteJSON(w)
	})
	mux.HandleFunc("/debug/tree.dot", func(w http.ResponseWriter, _ *http.Request) {
		trees := FlightTrees(flight.Events())
		if len(trees) == 0 {
			http.Error(w, "no search tree recorded", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		_ = trees[0].WriteDOT(w)
	})
}
