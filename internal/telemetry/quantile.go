package telemetry

import "math"

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the bucket containing the
// target rank — the same estimator as Prometheus's histogram_quantile, so
// dashboards built on either surface agree. The estimate assumes
// non-negative observations (the first bucket interpolates from 0), which
// holds for every histogram in this codebase (pivot counts, node counts,
// seconds).
//
// Edge cases: an empty histogram returns NaN; a rank landing in the +Inf
// overflow bucket returns the largest finite bound, the only defensible
// point estimate for an unbounded bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, b := range s.Bounds {
		n := s.Counts[i]
		cum += n
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if n == 0 {
			return b
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lower + (b-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates the q-quantile from the histogram's live counts. See
// HistogramSnapshot.Quantile for semantics. Returns NaN on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	return h.snapshot().Quantile(q)
}

// snapshot copies the histogram's current state. Buckets are read without a
// global lock, so a snapshot taken concurrently with Observe may be off by
// the in-flight sample — acceptable for monitoring reads.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	if hs.Count > 0 {
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
	}
	return hs
}
