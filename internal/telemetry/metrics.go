package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver or n ≤ 0).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax stores v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. The bucket layout is
// chosen at registration time and never changes, so observation is a single
// binary search plus two atomic adds.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Default bucket layouts for the solver metrics.
var (
	// IterBuckets covers simplex pivots and Newton iterations.
	IterBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	// NodeBuckets covers branch-and-bound node counts.
	NodeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 20000}
	// SecondsBuckets covers wall-clock timings.
	SecondsBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}
)

// Registry is a concurrency-safe collection of named metrics. The zero
// value is not usable; create registries with NewRegistry. A nil *Registry
// is a valid "telemetry off" value: every lookup returns a nil metric whose
// methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (bounds must be sorted
// ascending; later calls reuse the first layout). A nil or empty bounds
// slice falls back to IterBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = IterBuckets
		}
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// P50/P95/P99 are interpolated quantile estimates (see Quantile).
	// They are zero, not NaN, on an empty histogram so the snapshot stays
	// JSON-encodable.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry state. Safe on a nil registry (returns an
// empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-labelled buckets plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("# TYPE %s counter\n%s %s\n", name, name, strconv.FormatInt(s.Counters[name], 10))
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p("# TYPE %s histogram\n", name)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		p("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		p("%s_sum %s\n", name, formatFloat(h.Sum))
		p("%s_count %d\n", name, h.Count)
	}
	// Quantile estimates go out as a parallel summary family: the text
	// format forbids a second TYPE for the histogram name, and scrapers
	// expect quantile labels only on summaries.
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		p("# TYPE %s_quantiles summary\n", name)
		p("%s_quantiles{quantile=\"0.5\"} %s\n", name, formatFloat(h.P50))
		p("%s_quantiles{quantile=\"0.95\"} %s\n", name, formatFloat(h.P95))
		p("%s_quantiles{quantile=\"0.99\"} %s\n", name, formatFloat(h.P99))
		p("%s_quantiles_sum %s\n", name, formatFloat(h.Sum))
		p("%s_quantiles_count %d\n", name, h.Count)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
