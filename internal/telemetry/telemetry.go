// Package telemetry is the zero-dependency observability layer under the
// edattack stack. It has three independent parts, all safe for concurrent
// use and all nil-safe — every method on a nil receiver is a cheap no-op,
// so instrumented code pays essentially nothing unless a caller opts in:
//
//   - a metrics Registry of named counters, gauges, and fixed-bucket
//     histograms, exportable as JSON or Prometheus text format. The
//     solvers (lp, qp, milp), the dispatch engine, and the AC evaluator
//     report iteration, pivot, node, and solve counts into it;
//
//   - a span Tracer emitting a JSONL event log. The bilevel attack
//     generator traces FindOptimalAttack → per-subproblem (target line,
//     direction, gain, status) → inner MILP solves, which is how the cost
//     of Algorithm 1 on large cases is explained;
//
//   - a bounded ring-buffer Flight recorder capturing per-node B&B
//     events, LP solves, row-generation rounds, and incumbent updates,
//     plus a Report renderer that fuses flight record + metrics + trace
//     into a Markdown/HTML run report with a DOT search-tree export;
//
//   - an append-only, hash-chained event Journal for the EMS/SCADA
//     substrate (exploit scan started, candidate disambiguated, rating
//     overwritten, operator re-dispatch), in the style of ledger-backed
//     audit logs: each record carries the SHA-256 of its predecessor, so
//     any retroactive edit breaks the chain and is detected by Verify.
package telemetry
