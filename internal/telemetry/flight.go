package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightKind classifies a flight-recorder event. Kinds serialize as short
// strings so flight dumps stay greppable.
type FlightKind int

const (
	// FlightNode is one branch-and-bound node: opened, solved, and then
	// fathomed, pruned, or branched (see FlightEvent.Label).
	FlightNode FlightKind = iota
	// FlightIncumbent is an incumbent update — a new best integral
	// solution inside a MILP, or a new best attack gain in Algorithm 1.
	FlightIncumbent
	// FlightRound is one row-generation round of a bilevel subproblem.
	FlightRound
	// FlightSubproblem is the completion of one (target, direction)
	// subproblem with its outcome.
	FlightSubproblem
	// FlightLP is one LP solve, with the engine that ran it.
	FlightLP
	// FlightAttack is the completion of a full FindOptimalAttack run.
	FlightAttack
	// FlightSweep is one batch (or the summary) of a scenario-sweep
	// evaluation: Monitored carries the scenario count, Violated the
	// number of successful (masked-violation) scenarios.
	FlightSweep
)

var flightKindNames = [...]string{"node", "incumbent", "round", "subproblem", "lp", "attack", "sweep"}

// String returns the wire name of the kind ("node", "incumbent", ...).
func (k FlightKind) String() string {
	if k < 0 || int(k) >= len(flightKindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return flightKindNames[k]
}

// MarshalJSON encodes the kind as its string name.
func (k FlightKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes either the string name or a legacy integer.
func (k *FlightKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		for i, name := range flightKindNames {
			if name == s {
				*k = FlightKind(i)
				return nil
			}
		}
		return fmt.Errorf("telemetry: unknown flight kind %q", s)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("telemetry: flight kind: %w", err)
	}
	*k = FlightKind(n)
	return nil
}

// FlightEvent is one record in the flight recorder. It is a flat,
// fixed-size struct so recording is a single ring-slot copy under a short
// critical section; which fields are meaningful depends on Kind.
type FlightEvent struct {
	// Seq is the 1-based global sequence number; TUS is microseconds since
	// the recorder started. Both are assigned by Record.
	Seq  uint64     `json:"seq"`
	TUS  int64      `json:"t_us"`
	Kind FlightKind `json:"kind"`

	// Target and Dir identify the Algorithm 1 subproblem (attacked line
	// index and manipulation direction ±1); Round is the row-generation
	// round, 1-based.
	Target int `json:"target,omitempty"`
	Dir    int `json:"dir,omitempty"`
	Round  int `json:"round,omitempty"`

	// Node and Parent are 1-based B&B node ids (Parent 0 = root); Depth is
	// the number of branching fixes on the node's path. Strategy names the
	// node-selection order the search ran under ("dfs", "best-first",
	// "hybrid") and Frontier the number of open nodes left after this one —
	// together they let tree renderings distinguish a plunge from a
	// best-first hop.
	Node     int    `json:"node,omitempty"`
	Parent   int    `json:"parent,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Frontier int    `json:"frontier,omitempty"`

	// Pivots counts simplex pivots (per LP solve, node, or round); Warm
	// marks a warm-started solve; Sparse marks the sparse revised-simplex
	// engine (false = dense tableau).
	Pivots int  `json:"pivots,omitempty"`
	Warm   bool `json:"warm,omitempty"`
	Sparse bool `json:"sparse,omitempty"`

	// Monitored and Violated are row-generation set sizes.
	Monitored int `json:"monitored,omitempty"`
	Violated  int `json:"violated,omitempty"`

	// Bound is the local relaxation bound (or LP objective); Incumbent is
	// the best known integral objective / attack gain at the time.
	Bound     float64 `json:"bound,omitempty"`
	Incumbent float64 `json:"incumbent,omitempty"`

	// DurUS is the event duration in microseconds, when timed.
	DurUS int64 `json:"dur_us,omitempty"`

	// Label carries the event-specific disposition: for FlightNode one of
	// "branch", "integral", "incumbent", "pruned", "infeasible",
	// "conflict"; for FlightSubproblem the outcome ("optimal",
	// "truncated", "pruned", "infeasible", "error"); for FlightLP the
	// solve status; for FlightIncumbent the source ("seed", "heuristic",
	// "integral", "shared", "result").
	Label string `json:"label,omitempty"`
}

// DefaultFlightCapacity is the ring size used when NewFlight is given a
// non-positive capacity: 65536 events ≈ 10 MB, enough for every node of a
// budgeted case118 attack with room to spare.
const DefaultFlightCapacity = 1 << 16

// Flight is a bounded in-memory event recorder for solver runs. Recording
// appends to a fixed-capacity ring: once full, the oldest events are
// overwritten, so a recorder never grows and the most recent window of
// solver activity is always available. Flight is safe for concurrent use,
// and — like the rest of this package — nil-safe: Record on a nil *Flight
// is a no-op, so instrumented solvers pay one nil check when recording is
// off.
//
// The recorder is purely observational: it never feeds back into solver
// decisions, so enabling it cannot change any computed attack.
type Flight struct {
	mu    sync.Mutex
	start time.Time
	buf   []FlightEvent
	total uint64
}

// NewFlight returns a recorder holding up to capacity events
// (DefaultFlightCapacity when capacity ≤ 0).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Flight{start: time.Now(), buf: make([]FlightEvent, 0, capacity)}
}

// Record stamps ev with the next sequence number and the elapsed time and
// stores it, overwriting the oldest event when the ring is full. No-op on a
// nil recorder.
func (f *Flight) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.total++
	ev.Seq = f.total
	ev.TUS = time.Since(f.start).Microseconds()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[int((f.total-1)%uint64(cap(f.buf)))] = ev
	}
	f.mu.Unlock()
}

// Len returns the number of retained events (≤ capacity).
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Total returns the number of events ever recorded, including overwritten
// ones.
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Events returns the retained events in recording order (oldest first).
// Safe on a nil recorder (returns nil).
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if f.total <= uint64(cap(f.buf)) {
		return append(out, f.buf...)
	}
	head := int(f.total % uint64(cap(f.buf)))
	out = append(out, f.buf[head:]...)
	return append(out, f.buf[:head]...)
}

// FlightRecord is the JSON envelope written by WriteJSON and read back by
// ReadFlight.
type FlightRecord struct {
	// Start is the recorder start time in RFC3339Nano.
	Start string `json:"start"`
	// Total counts all recorded events; Dropped is how many were
	// overwritten by the ring (Total - len(Events)).
	Total   uint64        `json:"total"`
	Dropped uint64        `json:"dropped"`
	Events  []FlightEvent `json:"events"`
}

// Snapshot returns the recorder state as a FlightRecord envelope.
func (f *Flight) Snapshot() FlightRecord {
	rec := FlightRecord{Events: f.Events()}
	if f != nil {
		f.mu.Lock()
		rec.Start = f.start.UTC().Format(time.RFC3339Nano)
		rec.Total = f.total
		f.mu.Unlock()
		rec.Dropped = rec.Total - uint64(len(rec.Events))
	}
	return rec
}

// WriteJSON writes the retained events as an indented JSON envelope.
func (f *Flight) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}

// ReadFlight parses a flight dump produced by WriteJSON. It also accepts a
// bare JSON array of events for hand-assembled fixtures.
func ReadFlight(r io.Reader) (FlightRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return FlightRecord{}, fmt.Errorf("telemetry: read flight: %w", err)
	}
	var rec FlightRecord
	if err := json.Unmarshal(data, &rec); err == nil {
		return rec, nil
	}
	var events []FlightEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return FlightRecord{}, fmt.Errorf("telemetry: parse flight: %w", err)
	}
	rec = FlightRecord{Total: uint64(len(events)), Events: events}
	return rec, nil
}
