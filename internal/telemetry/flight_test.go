package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestFlightNilRecorder proves the "recording off" path: every method on a
// nil recorder is a no-op and never panics.
func TestFlightNilRecorder(t *testing.T) {
	var f *Flight
	f.Record(FlightEvent{Kind: FlightNode})
	if f.Len() != 0 || f.Total() != 0 || f.Events() != nil {
		t.Errorf("nil flight not empty: len=%d total=%d", f.Len(), f.Total())
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestFlightOrderAndStamps checks sequence numbers, monotone timestamps,
// and recording order below capacity.
func TestFlightOrderAndStamps(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{Kind: FlightNode, Node: i + 1})
	}
	evs := f.Events()
	if len(evs) != 10 || f.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 10/10", len(evs), f.Total())
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Node != i+1 {
			t.Errorf("event %d: seq=%d node=%d", i, ev.Seq, ev.Node)
		}
		if i > 0 && ev.TUS < evs[i-1].TUS {
			t.Errorf("event %d: timestamp went backwards (%d < %d)", i, ev.TUS, evs[i-1].TUS)
		}
	}
}

// TestFlightRingWrap checks that an over-capacity recorder keeps exactly
// the newest events, still in order.
func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 1; i <= 11; i++ {
		f.Record(FlightEvent{Kind: FlightNode, Node: i})
	}
	evs := f.Events()
	if len(evs) != 4 || f.Total() != 11 {
		t.Fatalf("len=%d total=%d, want 4/11", len(evs), f.Total())
	}
	for i, want := range []int{8, 9, 10, 11} {
		if evs[i].Node != want || evs[i].Seq != uint64(want) {
			t.Errorf("slot %d: node=%d seq=%d, want %d", i, evs[i].Node, evs[i].Seq, want)
		}
	}
	if snap := f.Snapshot(); snap.Dropped != 7 {
		t.Errorf("dropped = %d, want 7", snap.Dropped)
	}
}

// TestFlightConcurrentRecord hammers one recorder from many goroutines;
// under -race this is the concurrency-safety proof.
func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(FlightEvent{Kind: FlightLP, Pivots: i})
			}
		}()
	}
	wg.Wait()
	if f.Total() != 1600 || f.Len() != 64 {
		t.Errorf("total=%d len=%d, want 1600/64", f.Total(), f.Len())
	}
	seen := map[uint64]bool{}
	for _, ev := range f.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestFlightJSONRoundTrip writes a dump and reads it back, covering the
// FlightKind string codec.
func TestFlightJSONRoundTrip(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightEvent{Kind: FlightNode, Target: 5, Dir: -1, Depth: 3, Bound: 1.25, Warm: true, Label: "branch"})
	f.Record(FlightEvent{Kind: FlightIncumbent, Incumbent: 4.5, Label: "seed"})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"kind": "node"`)) {
		t.Errorf("kind not serialized as string:\n%s", buf.String())
	}
	rec, err := ReadFlight(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total != 2 || len(rec.Events) != 2 {
		t.Fatalf("round trip: total=%d events=%d", rec.Total, len(rec.Events))
	}
	got := rec.Events[0]
	if got.Kind != FlightNode || got.Target != 5 || got.Dir != -1 || got.Depth != 3 || got.Bound != 1.25 || !got.Warm || got.Label != "branch" {
		t.Errorf("event drifted through JSON: %+v", got)
	}
	if rec.Events[1].Kind != FlightIncumbent {
		t.Errorf("second event kind = %v", rec.Events[1].Kind)
	}
}

// TestFlightReadBareArray accepts hand-written fixture files that are just
// an event array.
func TestFlightReadBareArray(t *testing.T) {
	rec, err := ReadFlight(bytes.NewReader([]byte(`[{"seq":1,"t_us":0,"kind":"lp","pivots":7}]`)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 1 || rec.Events[0].Kind != FlightLP || rec.Events[0].Pivots != 7 {
		t.Errorf("bare array parse: %+v", rec)
	}
}

// TestFlightKindCodec covers unknown names and legacy integer kinds.
func TestFlightKindCodec(t *testing.T) {
	for k := FlightNode; k <= FlightAttack; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back FlightKind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Errorf("kind %v: round trip got %v err %v", k, back, err)
		}
	}
	var k FlightKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Error("unknown kind name accepted")
	}
	if err := json.Unmarshal([]byte(`2`), &k); err != nil || k != FlightRound {
		t.Errorf("legacy integer kind: %v err %v", k, err)
	}
	if s := fmt.Sprint(FlightKind(99)); s != "kind(99)" {
		t.Errorf("out-of-range kind string = %q", s)
	}
}
