package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
)

// ReadSpans parses a JSONL trace (as written by Tracer) into span events.
// Blank lines are skipped; a malformed line is an error, since a trace is
// machine-written and corruption should not be papered over.
func ReadSpans(r io.Reader) ([]SpanEvent, error) {
	var spans []SpanEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		spans = append(spans, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read trace: %w", err)
	}
	return spans, nil
}

// Report fuses the three observability artifacts of one solver run — the
// flight record, a metrics snapshot, and an optional span trace — into a
// self-contained Markdown or HTML document. Any of the three inputs may be
// empty; the corresponding sections are then omitted or abbreviated.
type Report struct {
	Title   string
	Events  []FlightEvent
	Metrics Snapshot
	Spans   []SpanEvent
}

// SearchTree is the branch-and-bound tree of one MILP solve, grouped from
// FlightNode events by (Target, Dir, Round).
type SearchTree struct {
	Target int           `json:"target"`
	Dir    int           `json:"dir"`
	Round  int           `json:"round"`
	Nodes  []FlightEvent `json:"nodes"`
}

// FlightTrees groups a flight record's node events into per-solve search
// trees, largest first.
func FlightTrees(events []FlightEvent) []*SearchTree {
	type key struct{ target, dir, round int }
	byKey := map[key]*SearchTree{}
	var order []key
	for _, ev := range events {
		if ev.Kind != FlightNode {
			continue
		}
		k := key{ev.Target, ev.Dir, ev.Round}
		t := byKey[k]
		if t == nil {
			t = &SearchTree{Target: k.target, Dir: k.dir, Round: k.round}
			byKey[k] = t
			order = append(order, k)
		}
		t.Nodes = append(t.Nodes, ev)
	}
	trees := make([]*SearchTree, 0, len(order))
	for _, k := range order {
		trees = append(trees, byKey[k])
	}
	sort.SliceStable(trees, func(i, j int) bool {
		return len(trees[i].Nodes) > len(trees[j].Nodes)
	})
	return trees
}

// LargestTree returns the search tree with the most nodes, or nil when the
// flight record holds no node events.
func (r *Report) LargestTree() *SearchTree {
	trees := FlightTrees(r.Events)
	if len(trees) == 0 {
		return nil
	}
	return trees[0]
}

func (t *SearchTree) title() string {
	s := fmt.Sprintf("target %d dir %+d round %d — %d nodes", t.Target, t.Dir, t.Round, len(t.Nodes))
	if st := t.Strategy(); st != "" {
		s += " (" + st + ")"
	}
	return s
}

// Strategy returns the node-selection strategy the solve ran under, taken
// from the first node event that recorded one ("" for pre-strategy dumps).
func (t *SearchTree) Strategy() string {
	for _, ev := range t.Nodes {
		if ev.Strategy != "" {
			return ev.Strategy
		}
	}
	return ""
}

// WriteDOT renders the tree in Graphviz DOT: one box per node with its
// bound, pivot count, warm/cold marker, and open-frontier size, colored by
// disposition (incumbents green, pruned gray, infeasible red). Edges where
// the child was popped immediately after its parent (a continuing plunge)
// are solid; edges where the search later hopped back to the child from the
// frontier are dashed — under best-first and hybrid orders this makes the
// pop schedule readable from the drawing.
func (t *SearchTree) WriteDOT(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph bnb {\n")
	p("  label=%q;\n", t.title())
	p("  node [shape=box, fontsize=9, fontname=\"monospace\"];\n")
	for _, ev := range t.Nodes {
		start := "cold"
		if ev.Warm {
			start = "warm"
		}
		label := fmt.Sprintf("#%d d%d %s\\nbound %.4g\\n%d pivots %s",
			ev.Node, ev.Depth, ev.Label, ev.Bound, ev.Pivots, start)
		if ev.Strategy != "" {
			label += fmt.Sprintf("\\nfrontier %d", ev.Frontier)
		}
		color := "black"
		switch ev.Label {
		case "incumbent", "integral":
			color = "forestgreen"
		case "pruned":
			color = "gray50"
		case "infeasible", "conflict":
			color = "firebrick"
		}
		p("  n%d [label=\"%s\", color=%s];\n", ev.Node, label, color)
		if ev.Parent > 0 {
			style := ""
			if ev.Node != ev.Parent+1 {
				style = " [style=dashed]"
			}
			p("  n%d -> n%d%s;\n", ev.Parent, ev.Node, style)
		}
	}
	p("}\n")
	return err
}

// WriteJSON renders the tree as indented JSON.
func (t *SearchTree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// timelineRow is one entry of the convergence timeline: incumbent updates
// interleaved with subproblem completions, in recording order.
type timelineRow struct {
	tMS   float64
	what  string
	where string
	value string
	note  string
}

func (r *Report) timeline() []timelineRow {
	var rows []timelineRow
	for _, ev := range r.Events {
		switch ev.Kind {
		case FlightIncumbent:
			rows = append(rows, timelineRow{
				tMS:   float64(ev.TUS) / 1000,
				what:  "incumbent",
				where: subproblemName(ev),
				value: fmt.Sprintf("%.6g", ev.Incumbent),
				note:  ev.Label,
			})
		case FlightSubproblem:
			note := ev.Label
			if ev.Round > 0 {
				note += fmt.Sprintf(", %d rounds", ev.Round)
			}
			rows = append(rows, timelineRow{
				tMS:   float64(ev.TUS) / 1000,
				what:  "subproblem",
				where: subproblemName(ev),
				value: fmt.Sprintf("%.6g", ev.Bound),
				note:  note,
			})
		case FlightAttack:
			rows = append(rows, timelineRow{
				tMS:   float64(ev.TUS) / 1000,
				what:  "attack",
				where: subproblemName(ev),
				value: fmt.Sprintf("%.6g", ev.Incumbent),
				note:  ev.Label,
			})
		}
	}
	return rows
}

func subproblemName(ev FlightEvent) string {
	if ev.Target == 0 && ev.Dir == 0 {
		return "—"
	}
	return fmt.Sprintf("line %d %+d", ev.Target, ev.Dir)
}

// phaseRow is one row of the per-phase wall breakdown, aggregated from
// trace spans (exact quantiles over the recorded durations).
type phaseRow struct {
	name                       string
	count                      int
	totalMS                    float64
	p50MS, p95MS, p99MS, maxMS float64
}

func (r *Report) phases() []phaseRow {
	byName := map[string][]float64{}
	var order []string
	for _, sp := range r.Spans {
		if _, ok := byName[sp.Name]; !ok {
			order = append(order, sp.Name)
		}
		byName[sp.Name] = append(byName[sp.Name], float64(sp.DurUS)/1000)
	}
	rows := make([]phaseRow, 0, len(order))
	for _, name := range order {
		durs := byName[name]
		sort.Float64s(durs)
		var total float64
		for _, d := range durs {
			total += d
		}
		rows = append(rows, phaseRow{
			name:    name,
			count:   len(durs),
			totalMS: total,
			p50MS:   exactQuantile(durs, 0.50),
			p95MS:   exactQuantile(durs, 0.95),
			p99MS:   exactQuantile(durs, 0.99),
			maxMS:   durs[len(durs)-1],
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].totalMS > rows[j].totalMS })
	return rows
}

// exactQuantile returns the q-quantile of sorted (nearest-rank).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// latencyLine summarizes one latency histogram from the metrics snapshot.
type latencyLine struct {
	name                string
	count               int64
	p50, p95, p99, mean float64 // seconds
}

// latencyHistograms are the solver latency surfaces introduced with the
// flight recorder, reported when present in the snapshot.
var latencyHistograms = []string{
	"lp_solve_seconds",
	"milp_node_seconds",
	"core_rowgen_round_seconds",
}

func (r *Report) latencies() []latencyLine {
	var lines []latencyLine
	for _, name := range latencyHistograms {
		h, ok := r.Metrics.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		lines = append(lines, latencyLine{
			name:  name,
			count: h.Count,
			p50:   h.P50,
			p95:   h.P95,
			p99:   h.P99,
			mean:  h.Sum / float64(h.Count),
		})
	}
	return lines
}

// summary aggregates flight-record counts by kind and node disposition.
func (r *Report) summary() []string {
	var nodes, lps, incumbents, rounds, subs int
	byLabel := map[string]int{}
	outcomes := map[string]int{}
	var warmLP, sparseLP int
	var result *FlightEvent
	for i, ev := range r.Events {
		switch ev.Kind {
		case FlightNode:
			nodes++
			byLabel[ev.Label]++
		case FlightLP:
			lps++
			if ev.Warm {
				warmLP++
			}
			if ev.Sparse {
				sparseLP++
			}
		case FlightIncumbent:
			incumbents++
		case FlightRound:
			rounds++
		case FlightSubproblem:
			subs++
			outcomes[ev.Label]++
		case FlightAttack:
			result = &r.Events[i]
		}
	}
	var out []string
	if result != nil {
		out = append(out, fmt.Sprintf("result: %s on %s, gain %.6g%%",
			result.Label, subproblemName(*result), result.Incumbent))
	}
	if subs > 0 {
		out = append(out, fmt.Sprintf("subproblems: %d (%s)", subs, countMap(outcomes)))
	}
	if rounds > 0 {
		out = append(out, fmt.Sprintf("row-generation rounds: %d", rounds))
	}
	if nodes > 0 {
		out = append(out, fmt.Sprintf("B&B nodes: %d (%s)", nodes, countMap(byLabel)))
	}
	if lps > 0 {
		out = append(out, fmt.Sprintf("LP solves: %d (%d warm, %d sparse, %d dense)",
			lps, warmLP, sparseLP, lps-sparseLP))
	}
	if incumbents > 0 {
		out = append(out, fmt.Sprintf("incumbent updates: %d", incumbents))
	}
	if len(out) == 0 {
		out = append(out, "no flight events recorded")
	}
	return out
}

func countMap(m map[string]int) string {
	keys := sortedKeys(m)
	parts := make([]string, 0, len(m))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d %s", m[k], k))
	}
	return strings.Join(parts, ", ")
}

// WriteMarkdown renders the report as GitHub-flavored Markdown. The DOT
// search tree is embedded in a fenced code block, ready for `dot -Tsvg`.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	title := r.Title
	if title == "" {
		title = "Solver run report"
	}
	p("# %s\n\n## Summary\n\n", title)
	for _, line := range r.summary() {
		p("- %s\n", line)
	}

	if rows := r.timeline(); len(rows) > 0 {
		p("\n## Convergence timeline\n\n")
		p("| t (ms) | event | subproblem | value | note |\n")
		p("|-------:|-------|------------|------:|------|\n")
		for _, row := range rows {
			p("| %.1f | %s | %s | %s | %s |\n", row.tMS, row.what, row.where, row.value, row.note)
		}
	}

	if rows := r.phases(); len(rows) > 0 {
		p("\n## Per-phase wall breakdown\n\n")
		p("| phase | count | total (ms) | p50 | p95 | p99 | max |\n")
		p("|-------|------:|-----------:|----:|----:|----:|----:|\n")
		for _, row := range rows {
			p("| %s | %d | %.1f | %.2f | %.2f | %.2f | %.2f |\n",
				row.name, row.count, row.totalMS, row.p50MS, row.p95MS, row.p99MS, row.maxMS)
		}
	}

	if lines := r.latencies(); len(lines) > 0 {
		p("\n## Latency quantiles\n\n")
		p("| histogram | count | p50 (ms) | p95 (ms) | p99 (ms) | mean (ms) |\n")
		p("|-----------|------:|---------:|---------:|---------:|----------:|\n")
		for _, l := range lines {
			p("| %s | %d | %.3f | %.3f | %.3f | %.3f |\n",
				l.name, l.count, l.p50*1000, l.p95*1000, l.p99*1000, l.mean*1000)
		}
	}

	if t := r.LargestTree(); t != nil {
		p("\n## Search tree (%s)\n\n```dot\n", t.title())
		if err == nil {
			err = t.WriteDOT(w)
		}
		p("```\n")
	}
	return err
}

// WriteHTML renders the report as a dependency-free standalone HTML page
// (the DOT source is included in a <pre> block).
func (r *Report) WriteHTML(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	title := r.Title
	if title == "" {
		title = "Solver run report"
	}
	p("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n", html.EscapeString(title))
	p("<style>body{font-family:sans-serif;max-width:72em;margin:2em auto;padding:0 1em}" +
		"table{border-collapse:collapse;margin:1em 0}td,th{border:1px solid #ccc;padding:.25em .6em;font-size:.9em}" +
		"th{background:#f3f3f3}td.num{text-align:right}pre{background:#f7f7f7;padding:1em;overflow-x:auto}</style>\n")
	p("</head><body>\n<h1>%s</h1>\n<h2>Summary</h2>\n<ul>\n", html.EscapeString(title))
	for _, line := range r.summary() {
		p("<li>%s</li>\n", html.EscapeString(line))
	}
	p("</ul>\n")

	if rows := r.timeline(); len(rows) > 0 {
		p("<h2>Convergence timeline</h2>\n<table>\n<tr><th>t (ms)</th><th>event</th><th>subproblem</th><th>value</th><th>note</th></tr>\n")
		for _, row := range rows {
			p("<tr><td class=\"num\">%.1f</td><td>%s</td><td>%s</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
				row.tMS, html.EscapeString(row.what), html.EscapeString(row.where),
				html.EscapeString(row.value), html.EscapeString(row.note))
		}
		p("</table>\n")
	}

	if rows := r.phases(); len(rows) > 0 {
		p("<h2>Per-phase wall breakdown</h2>\n<table>\n<tr><th>phase</th><th>count</th><th>total (ms)</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n")
		for _, row := range rows {
			p("<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%.1f</td><td class=\"num\">%.2f</td><td class=\"num\">%.2f</td><td class=\"num\">%.2f</td><td class=\"num\">%.2f</td></tr>\n",
				html.EscapeString(row.name), row.count, row.totalMS, row.p50MS, row.p95MS, row.p99MS, row.maxMS)
		}
		p("</table>\n")
	}

	if lines := r.latencies(); len(lines) > 0 {
		p("<h2>Latency quantiles</h2>\n<table>\n<tr><th>histogram</th><th>count</th><th>p50 (ms)</th><th>p95 (ms)</th><th>p99 (ms)</th><th>mean (ms)</th></tr>\n")
		for _, l := range lines {
			p("<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%.3f</td><td class=\"num\">%.3f</td><td class=\"num\">%.3f</td><td class=\"num\">%.3f</td></tr>\n",
				html.EscapeString(l.name), l.count, l.p50*1000, l.p95*1000, l.p99*1000, l.mean*1000)
		}
		p("</table>\n")
	}

	if t := r.LargestTree(); t != nil {
		p("<h2>Search tree (%s)</h2>\n<pre>", html.EscapeString(t.title()))
		var dot strings.Builder
		if err == nil {
			err = t.WriteDOT(&dot)
		}
		p("%s</pre>\n", html.EscapeString(dot.String()))
	}
	p("</body></html>\n")
	return err
}
