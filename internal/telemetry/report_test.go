package telemetry

import (
	"strings"
	"testing"
)

// reportFixture builds a small but fully populated report: two search
// trees, an incumbent trail, subproblem completions, trace spans, and the
// three latency histograms.
func reportFixture() *Report {
	f := NewFlight(64)
	// Subproblem (3, +1, round 1): a 3-node tree that finds an incumbent.
	f.Record(FlightEvent{Kind: FlightNode, Target: 3, Dir: 1, Round: 1, Node: 1, Depth: 0, Bound: 8.0, Pivots: 12, Label: "branch", Strategy: "hybrid", Frontier: 2})
	f.Record(FlightEvent{Kind: FlightNode, Target: 3, Dir: 1, Round: 1, Node: 2, Parent: 1, Depth: 1, Bound: 6.5, Pivots: 4, Warm: true, Label: "incumbent", Strategy: "hybrid", Frontier: 1})
	f.Record(FlightEvent{Kind: FlightIncumbent, Target: 3, Dir: 1, Incumbent: 6.5, Label: "integral"})
	f.Record(FlightEvent{Kind: FlightNode, Target: 3, Dir: 1, Round: 1, Node: 3, Parent: 1, Depth: 1, Bound: 5.0, Pivots: 2, Warm: true, Label: "pruned", Strategy: "hybrid", Frontier: 0})
	f.Record(FlightEvent{Kind: FlightRound, Target: 3, Dir: 1, Round: 1, Monitored: 5, Violated: 2, Label: "grow"})
	f.Record(FlightEvent{Kind: FlightSubproblem, Target: 3, Dir: 1, Round: 2, Bound: 6.5, Label: "optimal"})
	// Subproblem (7, -1): a lone infeasible root.
	f.Record(FlightEvent{Kind: FlightNode, Target: 7, Dir: -1, Round: 1, Node: 1, Label: "infeasible"})
	f.Record(FlightEvent{Kind: FlightSubproblem, Target: 7, Dir: -1, Round: 1, Label: "infeasible"})
	f.Record(FlightEvent{Kind: FlightLP, Sparse: true, Warm: true, Pivots: 9, Label: "optimal"})
	f.Record(FlightEvent{Kind: FlightAttack, Target: 3, Dir: 1, Incumbent: 6.5, Label: "optimal"})

	reg := NewRegistry()
	for _, v := range []float64{0.002, 0.004, 0.02} {
		reg.Histogram("lp_solve_seconds", SecondsBuckets).Observe(v)
	}
	reg.Histogram("milp_node_seconds", SecondsBuckets).Observe(0.01)

	return &Report{
		Title:   "fixture run",
		Events:  f.Events(),
		Metrics: reg.Snapshot(),
		Spans: []SpanEvent{
			{ID: 1, Name: "core.subproblem", Start: "2026-08-08T00:00:00Z", DurUS: 12000},
			{ID: 2, Parent: 1, Name: "milp.solve", Start: "2026-08-08T00:00:00Z", DurUS: 9000},
			{ID: 3, Name: "core.subproblem", Start: "2026-08-08T00:00:01Z", DurUS: 3000},
		},
	}
}

func TestReadSpans(t *testing.T) {
	in := `{"id":1,"name":"a","start":"2026-08-08T00:00:00Z","dur_us":100}

{"id":2,"parent":1,"name":"b","start":"2026-08-08T00:00:00Z","dur_us":50,"attrs":{"case":"case9"}}
`
	spans, err := ReadSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Parent != 1 || spans[1].Attrs["case"] != "case9" {
		t.Errorf("parsed spans: %+v", spans)
	}
	if _, err := ReadSpans(strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed trace line accepted")
	}
	if spans, err := ReadSpans(strings.NewReader("")); err != nil || len(spans) != 0 {
		t.Errorf("empty trace: %v, %d spans", err, len(spans))
	}
}

func TestFlightTrees(t *testing.T) {
	r := reportFixture()
	trees := FlightTrees(r.Events)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	// Largest first: the 3-node tree of subproblem (3, +1).
	if trees[0].Target != 3 || trees[0].Dir != 1 || len(trees[0].Nodes) != 3 {
		t.Errorf("largest tree: target=%d dir=%d nodes=%d", trees[0].Target, trees[0].Dir, len(trees[0].Nodes))
	}
	if trees[1].Target != 7 || len(trees[1].Nodes) != 1 {
		t.Errorf("second tree: target=%d nodes=%d", trees[1].Target, len(trees[1].Nodes))
	}
	if got := r.LargestTree(); got.Target != 3 {
		t.Errorf("LargestTree target = %d", got.Target)
	}
	if (&Report{}).LargestTree() != nil {
		t.Error("empty report grew a tree")
	}
}

func TestWriteDOT(t *testing.T) {
	var b strings.Builder
	if err := reportFixture().LargestTree().WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{
		"digraph bnb {",
		"n1 -> n2;",
		// Node 3 was popped off the frontier later than its sibling, so
		// its edge renders dashed — the hop marker.
		"n1 -> n3 [style=dashed];",
		"color=forestgreen", // incumbent node
		"color=gray50",      // pruned node
		"warm",
		"frontier 2",
		"target 3 dir +1 round 1 — 3 nodes (hybrid)",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := reportFixture().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	md := b.String()
	for _, want := range []string{
		"# fixture run",
		"## Summary",
		"result: optimal on line 3 +1, gain 6.5%",
		"subproblems: 2 (1 infeasible, 1 optimal)",
		"## Convergence timeline",
		"| incumbent | line 3 +1 | 6.5 | integral |",
		"## Per-phase wall breakdown",
		"| core.subproblem | 2 | 15.0 |",
		"## Latency quantiles",
		"| lp_solve_seconds | 3 |",
		"| milp_node_seconds | 1 |",
		"## Search tree",
		"```dot",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestWriteMarkdownEmpty(t *testing.T) {
	var b strings.Builder
	if err := (&Report{}).WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	md := b.String()
	if !strings.Contains(md, "no flight events recorded") {
		t.Errorf("empty report summary:\n%s", md)
	}
	for _, absent := range []string{"Convergence", "Per-phase", "Latency", "Search tree"} {
		if strings.Contains(md, absent) {
			t.Errorf("empty report should omit the %s section:\n%s", absent, md)
		}
	}
}

func TestWriteHTML(t *testing.T) {
	r := reportFixture()
	r.Title = `run <script>alert("x")</script>`
	var b strings.Builder
	if err := r.WriteHTML(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if strings.Contains(page, "<script>alert") {
		t.Error("title not HTML-escaped")
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"&lt;script&gt;",
		"<h2>Convergence timeline</h2>",
		"<h2>Per-phase wall breakdown</h2>",
		"<h2>Latency quantiles</h2>",
		"digraph bnb {",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestSearchTreeJSON(t *testing.T) {
	var b strings.Builder
	if err := reportFixture().LargestTree().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"target": 3`, `"kind": "node"`, `"label": "incumbent"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("tree JSON missing %q:\n%s", want, b.String())
		}
	}
}
