package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestTelemetryJournalChain appends a realistic EMS event stream and
// verifies the full chain.
func TestTelemetryJournalChain(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	events := []struct {
		typ   string
		attrs map[string]any
	}{
		{"exploit.scan_started", map[string]any{"line": 1, "value": "0x3FC00000"}},
		{"exploit.candidate_disambiguated", map[string]any{"line": 1, "addr": "0x7f0012a0"}},
		{"exploit.rating_overwritten", map[string]any{"line": 1, "old_mva": 150.0, "new_mva": 240.0}},
		{"ems.redispatch", map[string]any{"cost": 4125.5, "feasible": true}},
	}
	for _, ev := range events {
		if err := j.Append(ev.typ, ev.attrs); err != nil {
			t.Fatal(err)
		}
	}
	n, err := VerifyJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if n != len(events) {
		t.Fatalf("verified %d records, want %d", n, len(events))
	}
}

// TestTelemetryJournalResume extends an existing chain across a simulated
// process restart and verifies the combined journal as one chain.
func TestTelemetryJournalResume(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i := 0; i < 3; i++ {
		if err := j.Append("ems.redispatch", map[string]any{"step": i}); err != nil {
			t.Fatal(err)
		}
	}
	seq, last, err := VerifyJournalTail(bytes.NewReader(buf.Bytes()))
	if err != nil || seq != 3 || last == "" {
		t.Fatalf("tail: seq=%d last=%q err=%v", seq, last, err)
	}
	j2 := ResumeJournal(&buf, uint64(seq), last)
	if err := j2.Append("ems.redispatch", map[string]any{"step": 3}); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyJournal(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 4 {
		t.Fatalf("resumed chain: n=%d err=%v", n, err)
	}

	// Resuming an empty journal starts a fresh chain from genesis.
	var empty bytes.Buffer
	seq, last, err = VerifyJournalTail(bytes.NewReader(empty.Bytes()))
	if err != nil || seq != 0 || last != "" {
		t.Fatalf("empty tail: seq=%d last=%q err=%v", seq, last, err)
	}
	j3 := ResumeJournal(&empty, 0, "")
	if err := j3.Append("ems.redispatch", nil); err != nil {
		t.Fatal(err)
	}
	if n, err := VerifyJournal(bytes.NewReader(empty.Bytes())); err != nil || n != 1 {
		t.Fatalf("fresh-from-empty: n=%d err=%v", n, err)
	}
}

// TestTelemetryJournalTamper flips content and ordering and checks the
// chain catches both.
func TestTelemetryJournalTamper(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i := 0; i < 4; i++ {
		if err := j.Append("ems.redispatch", map[string]any{"step": i}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")

	// Content edit: rewrite an attribute value in record 2.
	edited := append([]string(nil), lines...)
	edited[1] = strings.Replace(edited[1], `"step":1`, `"step":9`, 1)
	if _, err := VerifyJournal(strings.NewReader(strings.Join(edited, "\n"))); !errors.Is(err, ErrJournalTampered) {
		t.Errorf("content edit: err = %v, want ErrJournalTampered", err)
	}

	// Deletion: drop record 2 entirely.
	dropped := append(append([]string(nil), lines[0]), lines[2:]...)
	if _, err := VerifyJournal(strings.NewReader(strings.Join(dropped, "\n"))); !errors.Is(err, ErrJournalTampered) {
		t.Errorf("deletion: err = %v, want ErrJournalTampered", err)
	}

	// Reordering: swap records 2 and 3.
	swapped := append([]string(nil), lines...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if _, err := VerifyJournal(strings.NewReader(strings.Join(swapped, "\n"))); !errors.Is(err, ErrJournalTampered) {
		t.Errorf("reorder: err = %v, want ErrJournalTampered", err)
	}

	// A truncated prefix is still a valid journal.
	if n, err := VerifyJournal(strings.NewReader(strings.Join(lines[:2], "\n"))); err != nil || n != 2 {
		t.Errorf("prefix: n=%d err=%v", n, err)
	}
}
