package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTelemetryRegistryRace hammers one registry from many goroutines; run
// under -race this is the concurrency-safety proof for counters, gauges,
// and histograms (including first-use registration races).
func TestTelemetryRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("shared_total").Add(2)
				r.Gauge("level").Set(float64(i))
				r.Gauge("peak").SetMax(float64(w*perWorker + i))
				r.Histogram("samples", IterBuckets).Observe(float64(i % 97))
			}
		}(w)
	}
	wg.Wait()

	if got, want := r.Counter("shared_total").Value(), int64(3*workers*perWorker); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := r.Histogram("samples", nil).Count(), int64(workers*perWorker); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got, want := r.Gauge("peak").Value(), float64(workers*perWorker-1); got != want {
		t.Errorf("peak gauge = %g, want %g", got, want)
	}
	var sum float64
	for i := 0; i < perWorker; i++ {
		sum += float64(i % 97)
	}
	if got, want := r.Histogram("samples", nil).Sum(), sum*workers; got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestTelemetryNilRegistry proves the "telemetry off" path: every operation
// on nil receivers is a no-op and never panics.
func TestTelemetryNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Gauge("b").SetMax(4)
	r.Histogram("c", nil).Observe(1)
	if v := r.Counter("a").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	var tracer *Tracer
	sp := tracer.Start("x")
	sp.SetAttr("k", 1)
	sp.Child("y").End()
	sp.End()
	var j *Journal
	if err := j.Append("e", nil); err != nil {
		t.Fatalf("nil journal append: %v", err)
	}
}

// TestTelemetryHistogramLayout checks that the first registration fixes the
// bucket layout and observations land in the right buckets.
func TestTelemetryHistogramLayout(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iters", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	// A second registration with a different layout must not reset it.
	if h2 := r.Histogram("iters", []float64{5}); h2 != h {
		t.Fatal("second registration returned a different histogram")
	}
	s := r.Snapshot().Histograms["iters"]
	if want := []int64{2, 1, 1}; len(s.Counts) != 3 || s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Sum != 1022 || s.Count != 4 {
		t.Errorf("sum/count = %g/%d, want 1022/4", s.Sum, s.Count)
	}
}

// buildGoldenRegistry populates a registry deterministically for the export
// tests.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("lp_pivots_total").Add(1234)
	r.Counter("milp_nodes_total").Add(57)
	r.Gauge("core_bigm_max_ratio").Set(0.125)
	h := r.Histogram("lp_pivots", []float64{10, 100, 1000})
	for _, v := range []float64{3, 42, 40, 700, 2500} {
		h.Observe(v)
	}
	return r
}

// TestTelemetryPrometheusGolden locks the Prometheus text exposition format
// against a golden file: scrape-format regressions show up as a diff.
func TestTelemetryPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus export drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestTelemetryJSONExport round-trips the JSON exposition.
func TestTelemetryJSONExport(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Counters["lp_pivots_total"] != 1234 {
		t.Errorf("counters = %v", s.Counters)
	}
	if h := s.Histograms["lp_pivots"]; h.Count != 5 || len(h.Counts) != 4 {
		t.Errorf("histogram snapshot = %+v", h)
	}
}
