package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer serializes writes for concurrent tracer tests.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func parseSpans(t *testing.T, raw string) []SpanEvent {
	t.Helper()
	var out []SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestTelemetryTraceTree checks parent links, attributes, and duration
// accounting of the JSONL span stream.
func TestTelemetryTraceTree(t *testing.T) {
	var buf lockedBuffer
	tr := NewTracer(&buf)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tick := 0
	tr.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	}

	root := tr.Start("algorithm")
	root.SetAttr("case", "case3")
	child := root.Child("subproblem")
	child.SetAttr("target", 1)
	child.SetAttr("dir", -1)
	child.End()
	child.End() // idempotent: must not emit twice
	root.End()

	events := parseSpans(t, buf.String())
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (child then root)", len(events))
	}
	sub, alg := events[0], events[1]
	if sub.Name != "subproblem" || alg.Name != "algorithm" {
		t.Fatalf("event order = %q, %q", sub.Name, alg.Name)
	}
	if sub.Parent != alg.ID {
		t.Errorf("child parent = %d, want root id %d", sub.Parent, alg.ID)
	}
	if alg.Parent != 0 {
		t.Errorf("root parent = %d, want 0", alg.Parent)
	}
	if got := sub.Attrs["target"]; got != float64(1) {
		t.Errorf("target attr = %v", got)
	}
	if sub.DurUS <= 0 || alg.DurUS <= sub.DurUS {
		t.Errorf("durations: sub %dus, root %dus", sub.DurUS, alg.DurUS)
	}
}

// TestTelemetryTraceConcurrent runs spans from many goroutines and checks
// every line is intact (no interleaved writes) — the -race companion for
// the tracer.
func TestTelemetryTraceConcurrent(t *testing.T) {
	var buf lockedBuffer
	tr := NewTracer(&buf)
	root := tr.Start("root")
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("worker")
			sp.SetAttr("i", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	events := parseSpans(t, buf.String())
	if len(events) != n+1 {
		t.Fatalf("got %d events, want %d", len(events), n+1)
	}
	ids := map[uint64]bool{}
	for _, ev := range events {
		if ids[ev.ID] {
			t.Fatalf("duplicate span id %d", ev.ID)
		}
		ids[ev.ID] = true
	}
}
