package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer serializes writes for concurrent tracer tests.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func parseSpans(t *testing.T, raw string) []SpanEvent {
	t.Helper()
	var out []SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestTelemetryTraceTree checks parent links, attributes, and duration
// accounting of the JSONL span stream.
func TestTelemetryTraceTree(t *testing.T) {
	var buf lockedBuffer
	tr := NewTracer(&buf)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tick := 0
	tr.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	}

	root := tr.Start("algorithm")
	root.SetAttr("case", "case3")
	child := root.Child("subproblem")
	child.SetAttr("target", 1)
	child.SetAttr("dir", -1)
	child.End()
	child.End() // idempotent: must not emit twice
	root.End()

	events := parseSpans(t, buf.String())
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (child then root)", len(events))
	}
	sub, alg := events[0], events[1]
	if sub.Name != "subproblem" || alg.Name != "algorithm" {
		t.Fatalf("event order = %q, %q", sub.Name, alg.Name)
	}
	if sub.Parent != alg.ID {
		t.Errorf("child parent = %d, want root id %d", sub.Parent, alg.ID)
	}
	if alg.Parent != 0 {
		t.Errorf("root parent = %d, want 0", alg.Parent)
	}
	if got := sub.Attrs["target"]; got != float64(1) {
		t.Errorf("target attr = %v", got)
	}
	if sub.DurUS <= 0 || alg.DurUS <= sub.DurUS {
		t.Errorf("durations: sub %dus, root %dus", sub.DurUS, alg.DurUS)
	}
}

// TestTelemetryTraceConcurrent runs spans from many goroutines and checks
// every line is intact (no interleaved writes) — the -race companion for
// the tracer.
func TestTelemetryTraceConcurrent(t *testing.T) {
	var buf lockedBuffer
	tr := NewTracer(&buf)
	root := tr.Start("root")
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("worker")
			sp.SetAttr("i", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	events := parseSpans(t, buf.String())
	if len(events) != n+1 {
		t.Fatalf("got %d events, want %d", len(events), n+1)
	}
	ids := map[uint64]bool{}
	for _, ev := range events {
		if ids[ev.ID] {
			t.Fatalf("duplicate span id %d", ev.ID)
		}
		ids[ev.ID] = true
	}
}

// TestTelemetryTraceConcurrentChildren is the parallel-solver usage pattern:
// many workers call StartSpan(nil, root, ...) against one root span, set
// attributes on their children AND on the shared root, while the root may
// End concurrently. Run under -race this pins down the Span contract: child
// creation and SetAttr must never race on the parent's state, and attributes
// set after End are dropped rather than racing with event serialization.
func TestTelemetryTraceConcurrentChildren(t *testing.T) {
	var buf lockedBuffer
	tr := NewTracer(&buf)
	root := StartSpan(tr, nil, "core.find_optimal_attack")
	var wg sync.WaitGroup
	const workers = 16
	const spansPerWorker = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < spansPerWorker; s++ {
				sub := StartSpan(nil, root, "core.subproblem")
				sub.SetAttr("worker", w)
				grand := StartSpan(nil, sub, "milp.solve")
				grand.SetAttr("nodes", s)
				grand.End()
				sub.End()
				// Deliberately poke the shared parent from every worker,
				// including after some goroutine may have ended it.
				root.SetAttr("last_worker", w)
			}
		}(w)
	}
	// End the root while workers are still running: late SetAttr calls on
	// it must be silently dropped, not race with the emitter.
	root.End()
	wg.Wait()
	events := parseSpans(t, buf.String())
	want := workers*spansPerWorker*2 + 1
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	byID := map[uint64]SpanEvent{}
	for _, ev := range events {
		if _, dup := byID[ev.ID]; dup {
			t.Fatalf("duplicate span id %d", ev.ID)
		}
		byID[ev.ID] = ev
	}
	// Every non-root span's parent chain must resolve to the root.
	for _, ev := range events {
		if ev.Parent == 0 {
			continue
		}
		if _, ok := byID[ev.Parent]; !ok {
			t.Fatalf("span %d has unknown parent %d", ev.ID, ev.Parent)
		}
	}
}
