package telemetry

import (
	"runtime"
	"sort"
)

// MemSnapshot is one runtime.MemStats reading reduced to the memory-health
// signals the serving and benchmark layers track: how much heap is live, how
// hard the collector is working, and the tail pause cost the GC imposes on
// request latency.
type MemSnapshot struct {
	// HeapLiveBytes is the heap occupied by reachable-or-unswept objects
	// (runtime HeapAlloc) — the figure allocation pooling is meant to hold
	// flat under load.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// HeapSysBytes is the heap address space obtained from the OS.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
	// GCCycles is the cumulative completed GC cycle count.
	GCCycles uint32 `json:"gc_cycles"`
	// GCPauseP99Seconds is the 99th-percentile stop-the-world pause over the
	// runtime's recent-pause ring (up to the last 256 cycles).
	GCPauseP99Seconds float64 `json:"gc_pause_p99_seconds"`
	// Mallocs is the cumulative count of heap objects allocated; deltas per
	// unit of work are the allocation-rate metric the bench gates pin.
	Mallocs uint64 `json:"mallocs"`
}

// CaptureMemStats reads runtime.MemStats once, publishes the derived gauges
// (mem_heap_live_bytes, mem_heap_sys_bytes, mem_gc_cycles,
// mem_gc_pause_p99_seconds) on the registry, and returns the snapshot. A nil
// registry just returns the snapshot. ReadMemStats briefly stops the world,
// so call this at reporting cadence (stats endpoints, bench epilogues), not
// on solve hot paths.
func CaptureMemStats(r *Registry) MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := MemSnapshot{
		HeapLiveBytes:     ms.HeapAlloc,
		HeapSysBytes:      ms.HeapSys,
		GCCycles:          ms.NumGC,
		GCPauseP99Seconds: pauseP99Seconds(&ms),
		Mallocs:           ms.Mallocs,
	}
	if r != nil {
		r.Gauge("mem_heap_live_bytes").Set(float64(snap.HeapLiveBytes))
		r.Gauge("mem_heap_sys_bytes").Set(float64(snap.HeapSysBytes))
		r.Gauge("mem_gc_cycles").Set(float64(snap.GCCycles))
		r.Gauge("mem_gc_pause_p99_seconds").Set(snap.GCPauseP99Seconds)
	}
	return snap
}

// pauseP99Seconds computes the 99th-percentile pause from the MemStats
// PauseNs ring, which holds the most recent min(NumGC, 256) cycle pauses.
func pauseP99Seconds(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	buf := make([]uint64, n)
	for i := 0; i < n; i++ {
		buf[i] = ms.PauseNs[(int(ms.NumGC)-1-i+2*len(ms.PauseNs))%len(ms.PauseNs)]
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	idx := (99*n+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return float64(buf[idx]) / 1e9
}
