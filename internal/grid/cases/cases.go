// Package cases provides the benchmark networks used throughout the
// repository: the paper's 3-bus example (Fig. 3), the classic WSCC 9-bus
// system, and deterministic synthetic meshed networks up to the 118-bus
// scale used for the paper's scalability study (Section IV-B).
//
// The original evaluation used the IEEE 118-bus MATPOWER case; its exact
// parameter tables are not redistributable here, so Case118 builds a
// 118-bus synthetic system of the same size class whose ratings are
// calibrated against an economic dispatch so congestion patterns are
// realistic (see DESIGN.md, substitution table).
package cases

import (
	"math"
	"sort"

	"github.com/edsec/edattack/internal/grid"
)

// Case3Options parameterize the paper's three-bus example.
type Case3Options struct {
	// Rating is the common line rating in MW (paper uses 160 in Section
	// IV-A and 150 in the Fig. 8 case study).
	Rating float64
	// Demand is the load at bus 3 in MW (paper: 300).
	Demand float64
	// DLRMin and DLRMax bound manipulated dynamic ratings (paper: 100,
	// 200).
	DLRMin, DLRMax float64
	// B2Cost is the linear cost of generator 2; generator 1 costs twice
	// as much per MWh (paper: b1 = 2·b2 = 2b > 0).
	B2Cost float64
	// QdRatio is the reactive demand as a fraction of real demand
	// (default 0.328, i.e. power factor ≈ 0.95).
	QdRatio float64
}

func (o Case3Options) withDefaults() Case3Options {
	if o.Rating == 0 {
		o.Rating = 160
	}
	if o.Demand == 0 {
		o.Demand = 300
	}
	if o.DLRMin == 0 {
		o.DLRMin = 100
	}
	if o.DLRMax == 0 {
		o.DLRMax = 200
	}
	if o.B2Cost == 0 {
		o.B2Cost = 10
	}
	if o.QdRatio == 0 {
		o.QdRatio = 0.328
	}
	return o
}

// Case3 builds the paper's three-bus network (Fig. 3): generators G1, G2 at
// buses 1 and 2, a 300 MW load at bus 3, three identical lines with
// z = 0.002 + j0.05 pu, and DLR devices on lines {1,3} and {2,3}.
func Case3(opts Case3Options) (*grid.Network, error) {
	o := opts.withDefaults()
	n := &grid.Network{
		Name:    "case3",
		BaseMVA: 100,
		Buses: []grid.Bus{
			{ID: 1, Name: "B1", Type: grid.Slack, VnomKV: 230, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 2, Name: "B2", Type: grid.PV, VnomKV: 230, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 3, Name: "B3", Type: grid.PQ, Pd: o.Demand, Qd: o.Demand * o.QdRatio, VnomKV: 230, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
		},
		Lines: []grid.Line{
			{ID: 1, From: 1, To: 2, R: 0.002, X: 0.05, RateMVA: o.Rating},
			{ID: 2, From: 1, To: 3, R: 0.002, X: 0.05, RateMVA: o.Rating,
				HasDLR: true, DLRMin: o.DLRMin, DLRMax: o.DLRMax},
			{ID: 3, From: 2, To: 3, R: 0.002, X: 0.05, RateMVA: o.Rating,
				HasDLR: true, DLRMin: o.DLRMin, DLRMax: o.DLRMax},
		},
		Gens: []grid.Generator{
			{ID: 1, Bus: 1, Pmin: 0, Pmax: 300, Qmin: -200, Qmax: 200, CostB: 2 * o.B2Cost},
			{ID: 2, Bus: 2, Pmin: 0, Pmax: 300, Qmin: -200, Qmax: 200, CostB: o.B2Cost},
		},
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Case9 builds the classic WSCC/IEEE 9-bus system with MATPOWER-style
// quadratic generation costs. Lines 4–5 and 8–9 carry DLR devices.
func Case9() (*grid.Network, error) {
	rate := 250.0
	n := &grid.Network{
		Name:    "case9",
		BaseMVA: 100,
		Buses: []grid.Bus{
			{ID: 1, Type: grid.Slack, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 2, Type: grid.PV, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 3, Type: grid.PV, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 4, Type: grid.PQ, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 5, Type: grid.PQ, Pd: 90, Qd: 30, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 6, Type: grid.PQ, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 7, Type: grid.PQ, Pd: 100, Qd: 35, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 8, Type: grid.PQ, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
			{ID: 9, Type: grid.PQ, Pd: 125, Qd: 50, VnomKV: 345, Vmin: 0.9, Vmax: 1.1, Vset: 1.0},
		},
		Lines: []grid.Line{
			{ID: 1, From: 1, To: 4, R: 0, X: 0.0576, RateMVA: rate},
			{ID: 2, From: 4, To: 5, R: 0.017, X: 0.092, B: 0.158, RateMVA: rate,
				HasDLR: true, DLRMin: 0.6 * rate, DLRMax: 1.4 * rate},
			{ID: 3, From: 5, To: 6, R: 0.039, X: 0.17, B: 0.358, RateMVA: rate},
			{ID: 4, From: 3, To: 6, R: 0, X: 0.0586, RateMVA: rate},
			{ID: 5, From: 6, To: 7, R: 0.0119, X: 0.1008, B: 0.209, RateMVA: rate},
			{ID: 6, From: 7, To: 8, R: 0.0085, X: 0.072, B: 0.149, RateMVA: rate},
			{ID: 7, From: 8, To: 2, R: 0, X: 0.0625, RateMVA: rate},
			{ID: 8, From: 8, To: 9, R: 0.032, X: 0.161, B: 0.306, RateMVA: rate,
				HasDLR: true, DLRMin: 0.6 * rate, DLRMax: 1.4 * rate},
			{ID: 9, From: 9, To: 4, R: 0.01, X: 0.085, B: 0.176, RateMVA: rate},
		},
		Gens: []grid.Generator{
			{ID: 1, Bus: 1, Pmin: 10, Pmax: 250, Qmin: -300, Qmax: 300, CostA: 0.11, CostB: 5, CostC: 150},
			{ID: 2, Bus: 2, Pmin: 10, Pmax: 300, Qmin: -300, Qmax: 300, CostA: 0.085, CostB: 1.2, CostC: 600},
			{ID: 3, Bus: 3, Pmin: 10, Pmax: 270, Qmin: -300, Qmax: 300, CostA: 0.1225, CostB: 1, CostC: 335},
		},
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// meritOrderDispatch solves the flow-unconstrained economic dispatch by
// equal-marginal-cost (λ) bisection: each unit produces
// clamp((λ − b)/(2a), [Pmin, Pmax]), with linear-cost units treated as
// merit-order blocks. It is used for rating calibration in the synthetic
// case generator.
func meritOrderDispatch(gens []grid.Generator, demand float64) []float64 {
	out := make([]float64, len(gens))
	atLambda := func(lambda float64) float64 {
		var total float64
		for i := range gens {
			g := &gens[i]
			var p float64
			if g.CostA > 0 {
				p = (lambda - g.CostB) / (2 * g.CostA)
			} else if lambda >= g.CostB {
				p = g.Pmax
			} else {
				p = g.Pmin
			}
			p = math.Max(g.Pmin, math.Min(g.Pmax, p))
			out[i] = p
			total += p
		}
		return total
	}
	lo, hi := 0.0, 1.0
	for atLambda(hi) < demand && hi < 1e9 {
		hi *= 2
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if atLambda(mid) < demand {
			lo = mid
		} else {
			hi = mid
		}
	}
	total := atLambda(hi)
	// Linear-cost blocks make atLambda a step function; shed any excess
	// from the most expensive marginal units so supply matches demand.
	excess := total - demand
	if excess > 1e-9 {
		order := make([]int, len(gens))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ga, gb := &gens[order[a]], &gens[order[b]]
			return ga.MarginalCost(out[order[a]]) > gb.MarginalCost(out[order[b]])
		})
		for _, i := range order {
			if excess <= 1e-9 {
				break
			}
			red := math.Min(excess, out[i]-gens[i].Pmin)
			if red > 0 {
				out[i] -= red
				excess -= red
			}
		}
	}
	return out
}
