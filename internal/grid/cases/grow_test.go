package cases

import (
	"reflect"
	"testing"

	"github.com/edsec/edattack/internal/grid"
)

// TestGrowDeterministic pins the growgrid generator's reproducibility: the
// same GrowOptions must yield a bit-identical network on every call (the
// MILP scaling baselines in BENCH_milp.json assume grow300 is a fixed
// instance), and a different seed must yield a different one.
func TestGrowDeterministic(t *testing.T) {
	opts := GrowOptions{Buses: 300, Seed: 300}
	a, err := Grow(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Grow(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two Grow calls with identical options produced different networks")
	}
	c, err := Grow(GrowOptions{Buses: 300, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Lines, c.Lines) {
		t.Error("different seeds produced identical line sets")
	}
}

// TestGrowShapes pins the exact shapes of the named scaling instances:
// the benchmarks and gates reference grow300/grow1000 by name, so a
// change in the generator that moves these counts silently invalidates
// every recorded baseline.
func TestGrowShapes(t *testing.T) {
	for _, tc := range []struct {
		name                    string
		build                   func() (*grid.Network, error)
		buses, lines, gens, dlr int
	}{
		{"grow300", Grow300, 300, 479, 138, 12},
		{"grow1000", Grow1000, 1000, 1606, 461, 41},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			net, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if got := len(net.Buses); got != tc.buses {
				t.Errorf("buses = %d, want %d", got, tc.buses)
			}
			if got := len(net.Lines); got != tc.lines {
				t.Errorf("lines = %d, want %d", got, tc.lines)
			}
			if got := len(net.Gens); got != tc.gens {
				t.Errorf("generators = %d, want %d", got, tc.gens)
			}
			if got := len(net.DLRLines()); got != tc.dlr {
				t.Errorf("DLR lines = %d, want %d", got, tc.dlr)
			}
			if net.Name != tc.name {
				t.Errorf("name = %q, want %q", net.Name, tc.name)
			}
		})
	}
}
