package cases

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/grid"
)

func TestCase3Defaults(t *testing.T) {
	n, err := Case3(Case3Options{})
	if err != nil {
		t.Fatalf("Case3: %v", err)
	}
	if len(n.Buses) != 3 || len(n.Lines) != 3 || len(n.Gens) != 2 {
		t.Fatalf("dims: %d buses %d lines %d gens", len(n.Buses), len(n.Lines), len(n.Gens))
	}
	if n.TotalDemand() != 300 {
		t.Fatalf("demand = %v", n.TotalDemand())
	}
	// b1 = 2·b2 per the paper.
	if n.Gens[0].CostB != 2*n.Gens[1].CostB {
		t.Fatalf("cost relation broken: %v vs %v", n.Gens[0].CostB, n.Gens[1].CostB)
	}
	// DLR on lines {1,3} and {2,3} only.
	dlr := n.DLRLines()
	if len(dlr) != 2 || dlr[0] != 1 || dlr[1] != 2 {
		t.Fatalf("DLR lines = %v, want [1 2]", dlr)
	}
	// β = 1/0.05 = 20.
	if math.Abs(n.Lines[0].Susceptance()-20) > 1e-12 {
		t.Fatalf("susceptance = %v", n.Lines[0].Susceptance())
	}
}

func TestCase3Fig8Variant(t *testing.T) {
	n, err := Case3(Case3Options{Rating: 150})
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Lines {
		if n.Lines[i].RateMVA != 150 {
			t.Fatalf("rating[%d] = %v", i, n.Lines[i].RateMVA)
		}
	}
}

func TestCase9(t *testing.T) {
	n, err := Case9()
	if err != nil {
		t.Fatalf("Case9: %v", err)
	}
	if len(n.Buses) != 9 || len(n.Lines) != 9 || len(n.Gens) != 3 {
		t.Fatalf("dims: %d/%d/%d", len(n.Buses), len(n.Lines), len(n.Gens))
	}
	if n.TotalDemand() != 315 {
		t.Fatalf("demand = %v, want 315", n.TotalDemand())
	}
	if got := len(n.DLRLines()); got != 2 {
		t.Fatalf("DLR lines = %d, want 2", got)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Case118()
	if err != nil {
		t.Fatalf("Case118: %v", err)
	}
	b, err := Case118()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Lines) != len(b.Lines) {
		t.Fatal("non-deterministic line count")
	}
	for i := range a.Lines {
		if a.Lines[i].RateMVA != b.Lines[i].RateMVA || a.Lines[i].X != b.Lines[i].X {
			t.Fatalf("line %d differs between runs", i)
		}
	}
}

func TestCase118Shape(t *testing.T) {
	n, err := Case118()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Buses) != 118 {
		t.Fatalf("buses = %d", len(n.Buses))
	}
	if len(n.Gens) < 54 {
		t.Fatalf("gens = %d, want ≥ 54", len(n.Gens))
	}
	if len(n.Lines) != 118+68 {
		t.Fatalf("lines = %d, want 186", len(n.Lines))
	}
	if got := len(n.DLRLines()); got != 8 {
		t.Fatalf("DLR lines = %d, want 8", got)
	}
	// Quadratic costs on every unit (Section IV-B).
	for i := range n.Gens {
		if n.Gens[i].CostA <= 0 {
			t.Fatalf("generator %d has non-quadratic cost", i)
		}
	}
	// Capacity must exceed demand with margin.
	if n.TotalCapacity() < 1.2*n.TotalDemand() {
		t.Fatalf("capacity %v too tight for demand %v", n.TotalCapacity(), n.TotalDemand())
	}
}

func TestCase30AndCase57(t *testing.T) {
	for _, build := range []func() (*grid.Network, error){Case30, Case57} {
		n, err := build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
}

func TestSyntheticRejectsBadOptions(t *testing.T) {
	if _, err := Synthetic(SyntheticOptions{Buses: 2, Gens: 1}); err == nil {
		t.Fatal("want bus count error")
	}
	if _, err := Synthetic(SyntheticOptions{Buses: 5, Gens: 0}); err == nil {
		t.Fatal("want gen count error")
	}
	if _, err := Synthetic(SyntheticOptions{Buses: 5, Gens: 9}); err == nil {
		t.Fatal("want gen count error")
	}
}

func TestMeritOrderDispatch(t *testing.T) {
	gens := []grid.Generator{
		{Pmin: 0, Pmax: 100, CostA: 0.1, CostB: 10},
		{Pmin: 0, Pmax: 100, CostA: 0.1, CostB: 20},
	}
	d := meritOrderDispatch(gens, 100)
	if math.Abs(d[0]+d[1]-100) > 1e-6 {
		t.Fatalf("dispatch sum = %v", d[0]+d[1])
	}
	// The cheaper unit must carry more.
	if d[0] <= d[1] {
		t.Fatalf("merit order violated: %v", d)
	}
	// Equal marginal cost at the interior optimum.
	mc0 := 2*0.1*d[0] + 10
	mc1 := 2*0.1*d[1] + 20
	if math.Abs(mc0-mc1) > 1e-3 {
		t.Fatalf("marginal costs differ: %v vs %v", mc0, mc1)
	}
}

func TestMeritOrderLinearCosts(t *testing.T) {
	gens := []grid.Generator{
		{Pmin: 0, Pmax: 100, CostB: 10},
		{Pmin: 0, Pmax: 100, CostB: 20},
	}
	d := meritOrderDispatch(gens, 150)
	if math.Abs(d[0]-100) > 1e-3 || math.Abs(d[1]-50) > 1 {
		t.Fatalf("linear merit order = %v, want [100 ~50]", d)
	}
}

func TestSyntheticDLRLinesAreTight(t *testing.T) {
	// DLR lines are calibrated close to their economic flows, so their
	// rating headroom must be materially smaller than non-DLR lines'.
	n, err := Case118()
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range n.DLRLines() {
		l := &n.Lines[li]
		if l.DLRMin >= l.RateMVA || l.DLRMax <= l.RateMVA {
			t.Fatalf("line %d: static rating %v outside DLR band [%v, %v]",
				li, l.RateMVA, l.DLRMin, l.DLRMax)
		}
	}
}
