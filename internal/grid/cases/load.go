package cases

import (
	"fmt"
	"strings"

	"github.com/edsec/edattack/internal/grid"
)

// Load returns the named benchmark case. Names are case-insensitive and
// trimmed; Names lists the valid ones. This is the one name-to-network
// mapping in the repository — the root facade and the serving layer both
// delegate here, so a new case registers once.
func Load(name string) (*grid.Network, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "case3":
		return Case3(Case3Options{})
	case "case3-fig8":
		// The Fig. 8 case study: 150 MVA ratings with enough real and
		// reactive headroom that the pre-attack AC state is safe.
		return Case3(Case3Options{Rating: 150, Demand: 280, QdRatio: 0.15})
	case "case9":
		return Case9()
	case "case30":
		return Case30()
	case "case57":
		return Case57()
	case "case118":
		return Case118()
	case "grow300":
		return Grow300()
	case "grow1000":
		return Grow1000()
	default:
		return nil, fmt.Errorf("cases: unknown case %q (want one of %s)", name, strings.Join(Names(), ", "))
	}
}

// Names lists the loadable benchmark cases.
func Names() []string {
	return []string{"case3", "case3-fig8", "case9", "case30", "case57", "case118", "grow300", "grow1000"}
}
