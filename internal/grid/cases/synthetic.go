package cases

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid"
)

// SyntheticOptions parameterize the deterministic synthetic case generator.
type SyntheticOptions struct {
	// Name labels the generated network.
	Name string
	// Buses is the number of buses (≥ 3).
	Buses int
	// Gens is the number of generators (≥ 1, ≤ Buses).
	Gens int
	// ExtraLines is the number of chord lines added on top of the
	// connectivity ring.
	ExtraLines int
	// DLRLines is how many of the most-loaded lines get DLR devices.
	DLRLines int
	// Seed makes generation deterministic.
	Seed int64
	// LoadFactor scales total demand relative to total generation
	// capacity (default 0.55).
	LoadFactor float64
	// RatingMargin scales non-DLR line ratings relative to the calibrated
	// economic flows (default 1.45).
	RatingMargin float64
	// DLRTightness scales DLR line static ratings relative to their
	// calibrated economic flows (default 1.08, i.e. nearly congested).
	DLRTightness float64
}

func (o SyntheticOptions) withDefaults() SyntheticOptions {
	if o.LoadFactor == 0 {
		o.LoadFactor = 0.55
	}
	if o.RatingMargin == 0 {
		o.RatingMargin = 1.45
	}
	if o.DLRTightness == 0 {
		o.DLRTightness = 1.08
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("synthetic%d", o.Buses)
	}
	return o
}

// Synthetic generates a deterministic, connected, meshed network whose line
// ratings are calibrated against a flow-unconstrained economic dispatch so
// that the system is ED-feasible at nominal demand while the DLR lines run
// close to their limits (congestion-prone, as the paper assumes for DLR
// deployment sites).
func Synthetic(opts SyntheticOptions) (*grid.Network, error) {
	o := opts.withDefaults()
	if o.Buses < 3 {
		return nil, fmt.Errorf("cases: synthetic network needs ≥ 3 buses, got %d", o.Buses)
	}
	if o.Gens < 1 || o.Gens > o.Buses {
		return nil, fmt.Errorf("cases: invalid generator count %d for %d buses", o.Gens, o.Buses)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	n := &grid.Network{Name: o.Name, BaseMVA: 100}

	// Buses: IDs 1..Buses, bus 1 slack.
	genBuses := pickDistinct(rng, o.Buses, o.Gens)
	isGenBus := make(map[int]bool, o.Gens)
	for _, b := range genBuses {
		isGenBus[b] = true
	}
	for i := 1; i <= o.Buses; i++ {
		typ := grid.PQ
		if i == 1 {
			typ = grid.Slack
		} else if isGenBus[i] {
			typ = grid.PV
		}
		n.Buses = append(n.Buses, grid.Bus{
			ID: i, Type: typ, VnomKV: 138, Vmin: 0.94, Vmax: 1.06, Vset: 1.0,
		})
	}

	// Generators with quadratic costs (Section IV-B uses convex quadratic
	// costs for the 118-bus study).
	var totalCap float64
	for gi, b := range genBuses {
		pmax := 100 + 350*rng.Float64()
		totalCap += pmax
		n.Gens = append(n.Gens, grid.Generator{
			ID: gi + 1, Bus: b,
			Pmin: 0, Pmax: pmax,
			Qmin: -0.6 * pmax, Qmax: 0.6 * pmax,
			CostA: 0.004 + 0.045*rng.Float64(),
			CostB: 5 + 30*rng.Float64(),
			CostC: 50 + 400*rng.Float64(),
		})
	}
	// Make bus 1 a generator bus if the draw missed it, so the slack can
	// balance AC losses.
	if !isGenBus[1] {
		pmax := 250.0
		totalCap += pmax
		n.Gens = append(n.Gens, grid.Generator{
			ID: len(n.Gens) + 1, Bus: 1,
			Pmin: 0, Pmax: pmax, Qmin: -150, Qmax: 150,
			CostA: 0.02, CostB: 18, CostC: 100,
		})
	}

	// Loads: every non-generator bus plus roughly a third of generator
	// buses, scaled to LoadFactor × capacity.
	weights := make([]float64, o.Buses)
	var wsum float64
	for i := 0; i < o.Buses; i++ {
		id := i + 1
		if !isGenBus[id] || rng.Float64() < 0.35 {
			weights[i] = 0.3 + rng.Float64()
			wsum += weights[i]
		}
	}
	totalLoad := o.LoadFactor * totalCap
	for i := 0; i < o.Buses; i++ {
		if weights[i] == 0 {
			continue
		}
		pd := totalLoad * weights[i] / wsum
		n.Buses[i].Pd = pd
		n.Buses[i].Qd = pd * (0.25 + 0.15*rng.Float64())
	}

	// Topology: connectivity ring plus random chords, no duplicates.
	type edge struct{ f, t int }
	seen := make(map[edge]bool)
	addLine := func(f, t int) bool {
		if f == t {
			return false
		}
		if f > t {
			f, t = t, f
		}
		e := edge{f, t}
		if seen[e] {
			return false
		}
		seen[e] = true
		x := 0.02 + 0.13*rng.Float64()
		n.Lines = append(n.Lines, grid.Line{
			ID: len(n.Lines) + 1, From: f, To: t,
			R: x / 10, X: x, B: 0.02 + 0.05*rng.Float64(),
		})
		return true
	}
	for i := 1; i <= o.Buses; i++ {
		next := i%o.Buses + 1
		addLine(i, next)
	}
	// Chord supply is finite on small networks; cap attempts so a request
	// for more chords than exist degrades to "as many as possible".
	added, attempts := 0, 0
	for added < o.ExtraLines && attempts < 50*(o.ExtraLines+1) {
		attempts++
		f := 1 + rng.Intn(o.Buses)
		span := 2 + rng.Intn(o.Buses/2)
		t := (f+span-1)%o.Buses + 1
		if addLine(f, t) {
			added++
		}
	}

	if err := calibrateRatings(n, o.DLRLines, o.RatingMargin, o.DLRTightness); err != nil {
		return nil, err
	}
	return n, nil
}

// calibrateRatings sizes every line rating against the flow-unconstrained
// economic dispatch so the network is ED-feasible at nominal demand, and
// places DLR devices on the dlrLines most-loaded lines: "These lines will be
// the ones that are routinely prone to congestion and hence receive priority
// DLR implementation" (Section II-B). Shared by Synthetic and Grow.
func calibrateRatings(n *grid.Network, dlrLines int, ratingMargin, dlrTightness float64) error {
	// Temporarily unlimited ratings for calibration.
	for i := range n.Lines {
		n.Lines[i].RateMVA = 0
	}
	if err := n.Validate(); err != nil {
		return fmt.Errorf("cases: synthetic network invalid before calibration: %w", err)
	}

	dispatch := meritOrderDispatch(n.Gens, n.TotalDemand())
	inj, err := dcflow.InjectionsFromDispatch(n, dispatch)
	if err != nil {
		return fmt.Errorf("cases: calibration injections: %w", err)
	}
	res, err := dcflow.Solve(n, inj)
	if err != nil {
		return fmt.Errorf("cases: calibration power flow: %w", err)
	}
	absFlows := make([]float64, len(res.Flows))
	var maxFlow float64
	for i, f := range res.Flows {
		absFlows[i] = math.Abs(f)
		if absFlows[i] > maxFlow {
			maxFlow = absFlows[i]
		}
	}
	floor := 0.12 * maxFlow

	order := make([]int, len(n.Lines))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return absFlows[order[a]] > absFlows[order[b]] })
	dlrSet := make(map[int]bool, dlrLines)
	for k := 0; k < dlrLines && k < len(order); k++ {
		dlrSet[order[k]] = true
	}
	for i := range n.Lines {
		base := math.Max(absFlows[i]*ratingMargin, floor)
		if dlrSet[i] {
			base = math.Max(absFlows[i]*dlrTightness, floor)
			n.Lines[i].HasDLR = true
			n.Lines[i].DLRMin = 0.75 * base
			n.Lines[i].DLRMax = 1.6 * base
		}
		n.Lines[i].RateMVA = base
	}
	if err := n.Validate(); err != nil {
		return fmt.Errorf("cases: synthetic network invalid after calibration: %w", err)
	}
	return nil
}

// pickDistinct returns count distinct bus IDs in [1, nBuses], deterministic
// for a given rng state.
func pickDistinct(rng *rand.Rand, nBuses, count int) []int {
	perm := rng.Perm(nBuses)
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = perm[i] + 1
	}
	sort.Ints(out)
	return out
}

// Case30 builds a 30-bus synthetic meshed system.
func Case30() (*grid.Network, error) {
	return Synthetic(SyntheticOptions{
		Name: "case30sy", Buses: 30, Gens: 6, ExtraLines: 12, DLRLines: 4, Seed: 30,
	})
}

// Case57 builds a 57-bus synthetic meshed system.
func Case57() (*grid.Network, error) {
	return Synthetic(SyntheticOptions{
		Name: "case57sy", Buses: 57, Gens: 7, ExtraLines: 24, DLRLines: 5, Seed: 57,
	})
}

// Case118 builds the 118-bus synthetic system used for the paper's
// scalability study (Section IV-B): 54 generators with convex quadratic
// costs and 186 lines, with DLR devices on the eight most congestion-prone
// lines.
func Case118() (*grid.Network, error) {
	return Synthetic(SyntheticOptions{
		Name: "case118sy", Buses: 118, Gens: 54, ExtraLines: 68, DLRLines: 8, Seed: 118,
	})
}
