package cases

import (
	"fmt"
	"math/rand"

	"github.com/edsec/edattack/internal/grid"
)

// GrowOptions parameterize the tiled synthetic-grid generator. Grow stitches
// case118-style districts into one interconnection, which is how the
// budgeted-attack benchmarks reach 300 and 1000+ buses without abandoning
// the calibrated congestion structure of the base case.
type GrowOptions struct {
	// Name labels the generated network (default "growN").
	Name string
	// Buses is the exact total bus count (≥ 6).
	Buses int
	// Seed makes generation deterministic.
	Seed int64
	// DLRLines is how many of the most-loaded lines get DLR devices
	// (default Buses/24, minimum 4). Each DLR line is two bilevel
	// subproblems, so this is also the attack-search fan-out.
	DLRLines int
	// TileSize is the target district size (default 100; the last tile
	// absorbs the remainder so the total is exactly Buses).
	TileSize int
	// LoadFactor, RatingMargin, DLRTightness mirror SyntheticOptions.
	LoadFactor   float64
	RatingMargin float64
	DLRTightness float64
}

func (o GrowOptions) withDefaults() GrowOptions {
	if o.Name == "" {
		o.Name = fmt.Sprintf("grow%d", o.Buses)
	}
	if o.DLRLines == 0 {
		o.DLRLines = o.Buses / 24
		if o.DLRLines < 4 {
			o.DLRLines = 4
		}
	}
	if o.TileSize <= 0 {
		o.TileSize = 100
	}
	if o.LoadFactor == 0 {
		o.LoadFactor = 0.55
	}
	if o.RatingMargin == 0 {
		o.RatingMargin = 1.45
	}
	if o.DLRTightness == 0 {
		o.DLRTightness = 1.08
	}
	return o
}

// Grow builds a deterministic synthetic interconnection of the requested
// size by tiling case118-style districts and stitching them with tie lines:
//
//   - each district is a connectivity ring plus preferential-attachment
//     chords, so bus degrees follow the heavy-tailed distribution of real
//     transmission grids (most buses degree 2–3, a few regional hubs);
//   - each district draws its own fuel-price multiplier, giving the
//     cross-district cost spread that pushes economic flow onto the tie
//     lines (the congestion the paper's attacker exploits);
//   - tie lines connect adjacent districts (two per border, plus a long
//     chord to a random earlier district from the third tile on) so the
//     interconnection is meshed, not a chain;
//   - ratings and the DLR set are then calibrated globally by the same
//     economic-dispatch pass Synthetic uses, so congestion-prone tie and
//     trunk lines receive the DLR devices.
//
// The result is ED-feasible at nominal demand and bit-reproducible for a
// given GrowOptions value.
func Grow(opts GrowOptions) (*grid.Network, error) {
	o := opts.withDefaults()
	if o.Buses < 6 {
		return nil, fmt.Errorf("cases: grown network needs ≥ 6 buses, got %d", o.Buses)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	n := &grid.Network{Name: o.Name, BaseMVA: 100}

	// District sizes: as many TileSize districts as fit, remainder spread
	// over the first districts so every size is within one bus of even.
	nTiles := o.Buses / o.TileSize
	if nTiles < 1 {
		nTiles = 1
	}
	sizes := make([]int, nTiles)
	base, rem := o.Buses/nTiles, o.Buses%nTiles
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}

	type edge struct{ f, t int }
	seen := make(map[edge]bool)
	degree := make(map[int]int)
	addLine := func(f, t int, long bool) bool {
		if f == t {
			return false
		}
		if f > t {
			f, t = t, f
		}
		e := edge{f, t}
		if seen[e] {
			return false
		}
		seen[e] = true
		x := 0.02 + 0.13*rng.Float64()
		if long {
			// Tie lines span districts: longer, so higher impedance.
			x = 0.08 + 0.18*rng.Float64()
		}
		n.Lines = append(n.Lines, grid.Line{
			ID: len(n.Lines) + 1, From: f, To: t,
			R: x / 10, X: x, B: 0.02 + 0.05*rng.Float64(),
		})
		degree[f]++
		degree[t]++
		return true
	}

	// prefPick draws a bus from [lo, hi] with probability proportional to
	// degree+1, the preferential-attachment rule that produces hubs.
	prefPick := func(lo, hi int) int {
		total := 0
		for b := lo; b <= hi; b++ {
			total += degree[b] + 1
		}
		r := rng.Intn(total)
		for b := lo; b <= hi; b++ {
			r -= degree[b] + 1
			if r < 0 {
				return b
			}
		}
		return hi
	}

	var totalCap float64
	first := 1 // first bus ID of the current district
	starts := make([]int, nTiles)
	for ti, size := range sizes {
		starts[ti] = first
		last := first + size - 1
		// Districts have the case118 generator density (54/118 ≈ 0.46)
		// and share one regional fuel-price multiplier.
		nGens := size * 46 / 100
		if nGens < 2 {
			nGens = 2
		}
		fuel := 0.8 + 0.5*rng.Float64()
		genBuses := pickDistinct(rng, size, nGens)
		isGenBus := make(map[int]bool, nGens)
		for _, b := range genBuses {
			isGenBus[first+b-1] = true
		}
		for id := first; id <= last; id++ {
			typ := grid.PQ
			if ti == 0 && id == first {
				typ = grid.Slack
			} else if isGenBus[id] {
				typ = grid.PV
			}
			n.Buses = append(n.Buses, grid.Bus{
				ID: id, Type: typ, VnomKV: 138, Vmin: 0.94, Vmax: 1.06, Vset: 1.0,
			})
		}
		for _, b := range genBuses {
			bus := first + b - 1
			pmax := 100 + 350*rng.Float64()
			totalCap += pmax
			n.Gens = append(n.Gens, grid.Generator{
				ID: len(n.Gens) + 1, Bus: bus,
				Pmin: 0, Pmax: pmax,
				Qmin: -0.6 * pmax, Qmax: 0.6 * pmax,
				CostA: fuel * (0.004 + 0.045*rng.Float64()),
				CostB: fuel * (5 + 30*rng.Float64()),
				CostC: 50 + 400*rng.Float64(),
			})
		}
		// Guarantee the slack bus can balance losses.
		if ti == 0 && !isGenBus[first] {
			pmax := 250.0
			totalCap += pmax
			n.Gens = append(n.Gens, grid.Generator{
				ID: len(n.Gens) + 1, Bus: first,
				Pmin: 0, Pmax: pmax, Qmin: -150, Qmax: 150,
				CostA: fuel * 0.02, CostB: fuel * 18, CostC: 100,
			})
		}
		// District topology: ring for connectivity, then chords whose
		// endpoints are degree-biased (case118 density: 68/118 ≈ 0.58
		// chords per bus).
		for id := first; id <= last; id++ {
			next := id + 1
			if next > last {
				next = first
			}
			addLine(id, next, false)
		}
		chords := size * 58 / 100
		added, attempts := 0, 0
		for added < chords && attempts < 50*(chords+1) {
			attempts++
			if addLine(prefPick(first, last), prefPick(first, last), false) {
				added++
			}
		}
		first = last + 1
	}

	// Stitch: two ties to the previous district, plus (from the third
	// district on) one long chord to a uniformly chosen earlier district.
	for ti := 1; ti < nTiles; ti++ {
		lo, hi := starts[ti], starts[ti]+sizes[ti]-1
		plo, phi := starts[ti-1], starts[ti-1]+sizes[ti-1]-1
		for k := 0; k < 2; k++ {
			for attempts := 0; attempts < 50; attempts++ {
				if addLine(prefPick(lo, hi), prefPick(plo, phi), true) {
					break
				}
			}
		}
		if ti >= 2 {
			back := rng.Intn(ti - 1)
			blo, bhi := starts[back], starts[back]+sizes[back]-1
			for attempts := 0; attempts < 50; attempts++ {
				if addLine(prefPick(lo, hi), prefPick(blo, bhi), true) {
					break
				}
			}
		}
	}

	// Loads: every non-generator bus plus roughly a third of generator
	// buses, scaled to LoadFactor × capacity (same rule as Synthetic).
	isGen := make(map[int]bool, len(n.Gens))
	for _, g := range n.Gens {
		isGen[g.Bus] = true
	}
	weights := make([]float64, len(n.Buses))
	var wsum float64
	for i := range n.Buses {
		if !isGen[n.Buses[i].ID] || rng.Float64() < 0.35 {
			weights[i] = 0.3 + rng.Float64()
			wsum += weights[i]
		}
	}
	totalLoad := o.LoadFactor * totalCap
	for i := range n.Buses {
		if weights[i] == 0 {
			continue
		}
		pd := totalLoad * weights[i] / wsum
		n.Buses[i].Pd = pd
		n.Buses[i].Qd = pd * (0.25 + 0.15*rng.Float64())
	}

	if err := calibrateRatings(n, o.DLRLines, o.RatingMargin, o.DLRTightness); err != nil {
		return nil, err
	}
	return n, nil
}

// Grow300 builds the 300-bus tiled interconnection used by the MILP scaling
// benchmarks: three ~100-bus districts, 12 DLR lines.
func Grow300() (*grid.Network, error) {
	return Grow(GrowOptions{Buses: 300, Seed: 300})
}

// Grow1000 builds the 1000-bus tiled interconnection: ten districts, 41 DLR
// lines.
func Grow1000() (*grid.Network, error) {
	return Grow(GrowOptions{Buses: 1000, Seed: 1000})
}
