// Package matpower reads and writes MATPOWER case files (the `mpc` struct
// format used by the paper's evaluation toolchain and by most of the power
// systems research community). Only the standard matrices are handled —
// bus, gen, branch, gencost — which is what the attack studies need.
package matpower

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/edsec/edattack/internal/grid"
)

// ErrBadFormat is returned for structurally invalid case text.
var ErrBadFormat = errors.New("matpower: malformed case file")

// MATPOWER bus-type codes.
const (
	busPQ    = 1
	busPV    = 2
	busSlack = 3
)

// Parse converts MATPOWER case text to a validated Network.
func Parse(src string) (*grid.Network, error) {
	base, err := scalarField(src, "baseMVA")
	if err != nil {
		return nil, err
	}
	busRows, err := matrixField(src, "bus")
	if err != nil {
		return nil, err
	}
	genRows, err := matrixField(src, "gen")
	if err != nil {
		return nil, err
	}
	branchRows, err := matrixField(src, "branch")
	if err != nil {
		return nil, err
	}
	costRows, _ := matrixField(src, "gencost") // optional

	n := &grid.Network{Name: caseName(src), BaseMVA: base}
	for i, r := range busRows {
		if len(r) < 13 {
			return nil, fmt.Errorf("%w: bus row %d has %d columns, want ≥ 13", ErrBadFormat, i, len(r))
		}
		typ := grid.PQ
		switch int(r[1]) {
		case busPV:
			typ = grid.PV
		case busSlack:
			typ = grid.Slack
		}
		n.Buses = append(n.Buses, grid.Bus{
			ID: int(r[0]), Type: typ,
			Pd: r[2], Qd: r[3],
			VnomKV: r[9], Vmax: r[11], Vmin: r[12], Vset: 1.0,
		})
	}
	for i, r := range genRows {
		if len(r) < 10 {
			return nil, fmt.Errorf("%w: gen row %d has %d columns, want ≥ 10", ErrBadFormat, i, len(r))
		}
		g := grid.Generator{
			ID: i + 1, Bus: int(r[0]),
			Qmax: r[3], Qmin: r[4],
			Pmax: r[8], Pmin: r[9],
		}
		if i < len(costRows) {
			c := costRows[i]
			// Polynomial model: [2 startup shutdown n cN … c0].
			if len(c) >= 4 && int(c[0]) == 2 {
				nc := int(c[3])
				if len(c) >= 4+nc {
					coeffs := c[4 : 4+nc]
					// Highest order first; accept up to quadratic.
					switch nc {
					case 3:
						g.CostA, g.CostB, g.CostC = coeffs[0], coeffs[1], coeffs[2]
					case 2:
						g.CostB, g.CostC = coeffs[0], coeffs[1]
					case 1:
						g.CostC = coeffs[0]
					}
				}
			}
		}
		n.Gens = append(n.Gens, g)
	}
	for i, r := range branchRows {
		if len(r) < 11 {
			return nil, fmt.Errorf("%w: branch row %d has %d columns, want ≥ 11", ErrBadFormat, i, len(r))
		}
		if int(r[10]) == 0 {
			continue // out-of-service branch
		}
		n.Lines = append(n.Lines, grid.Line{
			ID: len(n.Lines) + 1, From: int(r[0]), To: int(r[1]),
			R: r[2], X: r[3], B: r[4], RateMVA: r[5],
		})
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("matpower: parsed network invalid: %w", err)
	}
	return n, nil
}

// Format renders a Network as a MATPOWER case file.
func Format(n *grid.Network) string {
	var b strings.Builder
	name := n.Name
	if name == "" {
		name = "case"
	}
	fmt.Fprintf(&b, "function mpc = %s\n", name)
	b.WriteString("mpc.version = '2';\n")
	fmt.Fprintf(&b, "mpc.baseMVA = %g;\n\n", n.BaseMVA)

	b.WriteString("%% bus data\n%\tbus_i\ttype\tPd\tQd\tGs\tBs\tarea\tVm\tVa\tbaseKV\tzone\tVmax\tVmin\n")
	b.WriteString("mpc.bus = [\n")
	for i := range n.Buses {
		bus := &n.Buses[i]
		typ := busPQ
		switch bus.Type {
		case grid.PV:
			typ = busPV
		case grid.Slack:
			typ = busSlack
		}
		fmt.Fprintf(&b, "\t%d\t%d\t%g\t%g\t0\t0\t1\t1\t0\t%g\t1\t%g\t%g;\n",
			bus.ID, typ, bus.Pd, bus.Qd, bus.VnomKV, bus.Vmax, bus.Vmin)
	}
	b.WriteString("];\n\n")

	b.WriteString("%% generator data\n%\tbus\tPg\tQg\tQmax\tQmin\tVg\tmBase\tstatus\tPmax\tPmin\n")
	b.WriteString("mpc.gen = [\n")
	gens := sortedGens(n)
	for _, g := range gens {
		fmt.Fprintf(&b, "\t%d\t0\t0\t%g\t%g\t1\t%g\t1\t%g\t%g;\n",
			g.Bus, g.Qmax, g.Qmin, n.BaseMVA, g.Pmax, g.Pmin)
	}
	b.WriteString("];\n\n")

	b.WriteString("%% branch data\n%\tfbus\ttbus\tr\tx\tb\trateA\trateB\trateC\tratio\tangle\tstatus\tangmin\tangmax\n")
	b.WriteString("mpc.branch = [\n")
	for i := range n.Lines {
		l := &n.Lines[i]
		fmt.Fprintf(&b, "\t%d\t%d\t%g\t%g\t%g\t%g\t0\t0\t0\t0\t1\t-360\t360;\n",
			l.From, l.To, l.R, l.X, l.B, l.RateMVA)
	}
	b.WriteString("];\n\n")

	b.WriteString("%% generator cost data\n%\tmodel\tstartup\tshutdown\tn\tc2\tc1\tc0\n")
	b.WriteString("mpc.gencost = [\n")
	for _, g := range gens {
		fmt.Fprintf(&b, "\t2\t0\t0\t3\t%g\t%g\t%g;\n", g.CostA, g.CostB, g.CostC)
	}
	b.WriteString("];\n")
	return b.String()
}

// sortedGens returns generators in a stable order for deterministic output.
func sortedGens(n *grid.Network) []grid.Generator {
	out := make([]grid.Generator, len(n.Gens))
	copy(out, n.Gens)
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// caseName extracts the function name, defaulting to "case".
func caseName(src string) string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "function") {
			if i := strings.Index(line, "="); i >= 0 {
				return strings.TrimSpace(strings.Trim(line[i+1:], " ;"))
			}
		}
	}
	return "case"
}

// scalarField finds `mpc.<name> = <value>;`.
func scalarField(src, name string) (float64, error) {
	key := "mpc." + name
	idx := strings.Index(src, key)
	if idx < 0 {
		return 0, fmt.Errorf("%w: missing field %q", ErrBadFormat, name)
	}
	rest := src[idx+len(key):]
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return 0, fmt.Errorf("%w: field %q has no assignment", ErrBadFormat, name)
	}
	semi := strings.Index(rest, ";")
	if semi < 0 || semi < eq {
		return 0, fmt.Errorf("%w: field %q not terminated", ErrBadFormat, name)
	}
	val := strings.TrimSpace(rest[eq+1 : semi])
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: field %q value %q", ErrBadFormat, name, val)
	}
	return f, nil
}

// matrixField finds `mpc.<name> = [ rows ];` and parses the numeric rows.
func matrixField(src, name string) ([][]float64, error) {
	key := "mpc." + name
	idx := 0
	for {
		j := strings.Index(src[idx:], key)
		if j < 0 {
			return nil, fmt.Errorf("%w: missing matrix %q", ErrBadFormat, name)
		}
		idx += j
		// Reject prefixes like mpc.gencost when looking for mpc.gen.
		after := src[idx+len(key):]
		trimmed := strings.TrimLeft(after, " \t")
		if strings.HasPrefix(trimmed, "=") {
			break
		}
		idx += len(key)
	}
	open := strings.Index(src[idx:], "[")
	if open < 0 {
		return nil, fmt.Errorf("%w: matrix %q has no opening bracket", ErrBadFormat, name)
	}
	closeIdx := strings.Index(src[idx+open:], "]")
	if closeIdx < 0 {
		return nil, fmt.Errorf("%w: matrix %q not terminated", ErrBadFormat, name)
	}
	body := src[idx+open+1 : idx+open+closeIdx]
	var rows [][]float64
	for _, rawLine := range strings.Split(body, "\n") {
		// Strip comments, then split rows on ';'.
		if c := strings.Index(rawLine, "%"); c >= 0 {
			rawLine = rawLine[:c]
		}
		for _, rawRow := range strings.Split(rawLine, ";") {
			fields := strings.Fields(rawRow)
			if len(fields) == 0 {
				continue
			}
			row := make([]float64, 0, len(fields))
			for _, f := range fields {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: matrix %q token %q", ErrBadFormat, name, f)
				}
				row = append(row, v)
			}
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: matrix %q is empty", ErrBadFormat, name)
	}
	return rows, nil
}
