package matpower_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/grid/matpower"
)

// _case9m is the classic WSCC 9-bus case in MATPOWER format.
const _case9m = `function mpc = case9
% WSCC 9-bus test case
mpc.version = '2';
mpc.baseMVA = 100;

mpc.bus = [
	1	3	0	0	0	0	1	1	0	345	1	1.1	0.9;
	2	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	3	2	0	0	0	0	1	1	0	345	1	1.1	0.9;
	4	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	5	1	90	30	0	0	1	1	0	345	1	1.1	0.9;
	6	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	7	1	100	35	0	0	1	1	0	345	1	1.1	0.9;
	8	1	0	0	0	0	1	1	0	345	1	1.1	0.9;
	9	1	125	50	0	0	1	1	0	345	1	1.1	0.9;
];

mpc.gen = [
	1	72.3	27.03	300	-300	1.04	100	1	250	10;
	2	163	6.54	300	-300	1.025	100	1	300	10;
	3	85	-10.95	300	-300	1.025	100	1	270	10;
];

mpc.branch = [
	1	4	0	0.0576	0	250	250	250	0	0	1	-360	360;
	4	5	0.017	0.092	0.158	250	250	250	0	0	1	-360	360;
	5	6	0.039	0.17	0.358	150	150	150	0	0	1	-360	360;
	3	6	0	0.0586	0	300	300	300	0	0	1	-360	360;
	6	7	0.0119	0.1008	0.209	150	150	150	0	0	1	-360	360;
	7	8	0.0085	0.072	0.149	250	250	250	0	0	1	-360	360;
	8	2	0	0.0625	0	250	250	250	0	0	1	-360	360;
	8	9	0.032	0.161	0.306	250	250	250	0	0	1	-360	360;
	9	4	0.01	0.085	0.176	250	250	250	0	0	1	-360	360;
];

mpc.gencost = [
	2	1500	0	3	0.11	5	150;
	2	2000	0	3	0.085	1.2	600;
	2	3000	0	3	0.1225	1	335;
];
`

func TestParseCase9(t *testing.T) {
	n, err := matpower.Parse(_case9m)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n.Name != "case9" {
		t.Fatalf("name = %q", n.Name)
	}
	if n.BaseMVA != 100 {
		t.Fatalf("baseMVA = %v", n.BaseMVA)
	}
	if len(n.Buses) != 9 || len(n.Lines) != 9 || len(n.Gens) != 3 {
		t.Fatalf("dims %d/%d/%d", len(n.Buses), len(n.Lines), len(n.Gens))
	}
	if n.TotalDemand() != 315 {
		t.Fatalf("demand = %v", n.TotalDemand())
	}
	slack, err := n.SlackIndex()
	if err != nil || n.Buses[slack].ID != 1 {
		t.Fatalf("slack: %v %v", slack, err)
	}
	// Branch 3 (5-6) carries the 150 MVA rating and gen 2's cost is the
	// quadratic from gencost row 2.
	if n.Lines[2].RateMVA != 150 {
		t.Fatalf("rate = %v", n.Lines[2].RateMVA)
	}
	if n.Gens[1].CostA != 0.085 || n.Gens[1].CostB != 1.2 || n.Gens[1].CostC != 600 {
		t.Fatalf("gencost: %+v", n.Gens[1])
	}
}

func TestParsedCaseDispatches(t *testing.T) {
	n, err := matpower.Parse(_case9m)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatalf("dispatch on parsed case: %v", err)
	}
	var total float64
	for _, p := range res.P {
		total += p
	}
	if math.Abs(total-315) > 1e-5 {
		t.Fatalf("supply = %v", total)
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	text := matpower.Format(orig)
	back, err := matpower.Parse(text)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if len(back.Buses) != len(orig.Buses) || len(back.Lines) != len(orig.Lines) || len(back.Gens) != len(orig.Gens) {
		t.Fatalf("round-trip dims: %d/%d/%d vs %d/%d/%d",
			len(back.Buses), len(back.Lines), len(back.Gens),
			len(orig.Buses), len(orig.Lines), len(orig.Gens))
	}
	if math.Abs(back.TotalDemand()-orig.TotalDemand()) > 1e-6 {
		t.Fatalf("demand drifted: %v vs %v", back.TotalDemand(), orig.TotalDemand())
	}
	for li := range orig.Lines {
		if math.Abs(back.Lines[li].X-orig.Lines[li].X) > 1e-12 {
			t.Fatalf("line %d X drifted", li)
		}
		if math.Abs(back.Lines[li].RateMVA-orig.Lines[li].RateMVA) > 1e-9 {
			t.Fatalf("line %d rating drifted", li)
		}
	}
	for gi := range orig.Gens {
		if math.Abs(back.Gens[gi].CostA-orig.Gens[gi].CostA) > 1e-12 ||
			math.Abs(back.Gens[gi].CostB-orig.Gens[gi].CostB) > 1e-12 {
			t.Fatalf("gen %d cost drifted", gi)
		}
	}
	// Note: HasDLR/DLR bands are edattack extensions with no MATPOWER
	// column; they are expected to be lost in this format.
}

func TestParseOutOfServiceBranchSkipped(t *testing.T) {
	// Flip branch 2's status to 0: it must not appear, and the network
	// must stay connected via the rest of the ring.
	text := strings.Replace(_case9m,
		"4	5	0.017	0.092	0.158	250	250	250	0	0	1",
		"4	5	0.017	0.092	0.158	250	250	250	0	0	0", 1)
	n, err := matpower.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Lines) != 8 {
		t.Fatalf("lines = %d, want 8", len(n.Lines))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"function mpc = x\nmpc.baseMVA = 100;\n", // no matrices
		"function mpc = x\nmpc.baseMVA = oops;\nmpc.bus = [1];\n",
		strings.Replace(_case9m, "mpc.baseMVA = 100;", "", 1),
		strings.Replace(_case9m, "345	1	1.1	0.9;", "345	1	1.1	bogus;", 1),
	}
	for i, src := range bad {
		if _, err := matpower.Parse(src); !errors.Is(err, matpower.ErrBadFormat) {
			t.Fatalf("case %d: want ErrBadFormat, got %v", i, err)
		}
	}
}

func TestParseRejectsInvalidNetwork(t *testing.T) {
	// Two slack buses parse fine but fail network validation.
	text := strings.Replace(_case9m,
		"2	2	0	0	0	0	1	1	0	345	1	1.1	0.9;",
		"2	3	0	0	0	0	1	1	0	345	1	1.1	0.9;", 1)
	if _, err := matpower.Parse(text); err == nil {
		t.Fatal("want validation error")
	}
}

func TestFormatPreservesDLRFreeSemantics(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := matpower.Format(n)
	if !strings.Contains(text, "function mpc = case3") {
		t.Fatal("missing header")
	}
	back, err := matpower.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	// b1 = 2·b2 preserved through gencost.
	if back.Gens[0].CostB != 2*back.Gens[1].CostB {
		t.Fatalf("costs drifted: %v vs %v", back.Gens[0].CostB, back.Gens[1].CostB)
	}
}
