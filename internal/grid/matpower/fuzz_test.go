package matpower_test

import (
	"strings"
	"testing"

	"github.com/edsec/edattack/internal/grid/matpower"
)

// FuzzParse ensures arbitrary input never panics the parser and that
// successful parses always yield validated networks.
func FuzzParse(f *testing.F) {
	f.Add(_case9m)
	f.Add("")
	f.Add("function mpc = x\nmpc.baseMVA = 100;\nmpc.bus = [1 3 0 0 0 0 1 1 0 100 1 1.1 0.9];\nmpc.gen = [1 0 0 1 -1 1 100 1 10 0];\nmpc.branch = [1 1 0 0.1 0 10 0 0 0 0 1];\n")
	f.Add(strings.Replace(_case9m, "0.0576", "NaN", 1))
	f.Fuzz(func(t *testing.T, src string) {
		n, err := matpower.Parse(src)
		if err != nil {
			return
		}
		// A parse success must be a valid network.
		if err := n.Validate(); err != nil {
			t.Fatalf("Parse returned invalid network: %v", err)
		}
	})
}
