// Package grid models transmission networks: buses, lines (branches),
// generators, per-unit conventions, and the dynamic-line-rating (DLR)
// metadata the attack in this repository targets. It is the shared
// vocabulary of the power-flow, dispatch, and attack packages.
package grid

import (
	"errors"
	"fmt"
	"math"
)

// BusType classifies a bus for power-flow purposes.
type BusType int

// Bus types.
const (
	PQ BusType = iota + 1 // load bus: P and Q specified
	PV                    // generator bus: P and |V| specified
	Slack
)

func (t BusType) String() string {
	switch t {
	case PQ:
		return "PQ"
	case PV:
		return "PV"
	case Slack:
		return "slack"
	default:
		return fmt.Sprintf("BusType(%d)", int(t))
	}
}

// Bus is one network node.
type Bus struct {
	// ID is the external (case-file) identifier, typically 1-based.
	ID int
	// Name is an optional human label.
	Name string
	// Type is the power-flow role of the bus.
	Type BusType
	// Pd and Qd are the real (MW) and reactive (MVAr) demand.
	Pd, Qd float64
	// VnomKV is the nominal voltage in kV.
	VnomKV float64
	// Vmin and Vmax are per-unit voltage bounds.
	Vmin, Vmax float64
	// Vset is the per-unit voltage setpoint for PV/slack buses.
	Vset float64
}

// Line is one transmission branch between two buses.
type Line struct {
	// ID is the external identifier.
	ID int
	// From and To are external bus IDs.
	From, To int
	// R, X, and B are the per-unit series resistance, series reactance,
	// and total line-charging susceptance.
	R, X, B float64
	// RateMVA is the static thermal rating uˢ in MVA (MW under the DC
	// approximation). Zero means unlimited.
	RateMVA float64
	// HasDLR marks the line as equipped with dynamic line rating sensors;
	// these are the ratings the paper's attacker may overwrite.
	HasDLR bool
	// DLRMin and DLRMax are the plausibility bounds [u_min, u_max]
	// enforced by the EMS on dynamic ratings; an attacker must stay
	// inside them to remain stealthy. Ignored when HasDLR is false.
	DLRMin, DLRMax float64
}

// Susceptance returns the DC susceptance β = 1/X of the line.
func (l *Line) Susceptance() float64 {
	if l.X == 0 {
		return 0
	}
	return 1 / l.X
}

// Generator is one dispatchable unit.
type Generator struct {
	// ID is the external identifier.
	ID int
	// Bus is the external ID of the bus the unit connects to.
	Bus int
	// Pmin and Pmax bound real power output in MW.
	Pmin, Pmax float64
	// Qmin and Qmax bound reactive power output in MVAr.
	Qmin, Qmax float64
	// CostA, CostB, CostC define the generation cost
	// C(p) = CostA·p² + CostB·p + CostC in $/h with p in MW.
	CostA, CostB, CostC float64
}

// Cost evaluates the unit's cost function at output p (MW).
func (g *Generator) Cost(p float64) float64 {
	return g.CostA*p*p + g.CostB*p + g.CostC
}

// MarginalCost evaluates dC/dp at output p (MW).
func (g *Generator) MarginalCost(p float64) float64 {
	return 2*g.CostA*p + g.CostB
}

// Network is a complete transmission system model.
type Network struct {
	// Name identifies the case (e.g. "case3", "case118sy").
	Name string
	// BaseMVA is the per-unit power base.
	BaseMVA float64
	// Buses, Lines, and Gens are the model components. Do not mutate the
	// slices while concurrently reading the network.
	Buses []Bus
	Lines []Line
	Gens  []Generator

	busIdx map[int]int
}

// Validation errors.
var (
	ErrNoSlack      = errors.New("grid: network has no slack bus")
	ErrNotConnected = errors.New("grid: network is not connected")
)

// Validate checks structural invariants: unique IDs, resolvable references,
// exactly one slack bus, positive reactances, and connectedness. It also
// (re)builds the internal index maps and must be called after construction
// or mutation before using index-based lookups.
func (n *Network) Validate() error {
	if n.BaseMVA <= 0 {
		return fmt.Errorf("grid: BaseMVA must be positive, got %g", n.BaseMVA)
	}
	if len(n.Buses) == 0 {
		return errors.New("grid: network has no buses")
	}
	n.busIdx = make(map[int]int, len(n.Buses))
	slackCount := 0
	for i := range n.Buses {
		b := &n.Buses[i]
		if _, dup := n.busIdx[b.ID]; dup {
			return fmt.Errorf("grid: duplicate bus ID %d", b.ID)
		}
		n.busIdx[b.ID] = i
		if b.Type == Slack {
			slackCount++
		}
		if b.Vmin > b.Vmax && b.Vmax != 0 {
			return fmt.Errorf("grid: bus %d has Vmin %g > Vmax %g", b.ID, b.Vmin, b.Vmax)
		}
	}
	if slackCount == 0 {
		return ErrNoSlack
	}
	if slackCount > 1 {
		return fmt.Errorf("grid: %d slack buses, want exactly 1", slackCount)
	}
	lineIDs := make(map[int]bool, len(n.Lines))
	for i := range n.Lines {
		l := &n.Lines[i]
		if lineIDs[l.ID] {
			return fmt.Errorf("grid: duplicate line ID %d", l.ID)
		}
		lineIDs[l.ID] = true
		if _, ok := n.busIdx[l.From]; !ok {
			return fmt.Errorf("grid: line %d references unknown bus %d", l.ID, l.From)
		}
		if _, ok := n.busIdx[l.To]; !ok {
			return fmt.Errorf("grid: line %d references unknown bus %d", l.ID, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("grid: line %d is a self-loop at bus %d", l.ID, l.From)
		}
		if l.X <= 0 {
			return fmt.Errorf("grid: line %d has non-positive reactance %g", l.ID, l.X)
		}
		if l.HasDLR {
			if l.DLRMin < 0 || l.DLRMax < l.DLRMin {
				return fmt.Errorf("grid: line %d has invalid DLR bounds [%g, %g]", l.ID, l.DLRMin, l.DLRMax)
			}
		}
	}
	genIDs := make(map[int]bool, len(n.Gens))
	for i := range n.Gens {
		g := &n.Gens[i]
		if genIDs[g.ID] {
			return fmt.Errorf("grid: duplicate generator ID %d", g.ID)
		}
		genIDs[g.ID] = true
		if _, ok := n.busIdx[g.Bus]; !ok {
			return fmt.Errorf("grid: generator %d references unknown bus %d", g.ID, g.Bus)
		}
		if g.Pmin > g.Pmax {
			return fmt.Errorf("grid: generator %d has Pmin %g > Pmax %g", g.ID, g.Pmin, g.Pmax)
		}
		if g.CostA < 0 {
			return fmt.Errorf("grid: generator %d has negative quadratic cost %g", g.ID, g.CostA)
		}
	}
	if !n.connected() {
		return ErrNotConnected
	}
	return nil
}

// connected reports whether every bus is reachable over the line set.
func (n *Network) connected() bool {
	if len(n.Buses) == 0 {
		return true
	}
	adj := make([][]int, len(n.Buses))
	for i := range n.Lines {
		f := n.busIdx[n.Lines[i].From]
		t := n.busIdx[n.Lines[i].To]
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	seen := make([]bool, len(n.Buses))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == len(n.Buses)
}

// BusIndex returns the dense 0-based index for an external bus ID.
func (n *Network) BusIndex(id int) (int, error) {
	if n.busIdx == nil {
		return 0, errors.New("grid: Validate must be called before index lookups")
	}
	i, ok := n.busIdx[id]
	if !ok {
		return 0, fmt.Errorf("grid: unknown bus ID %d", id)
	}
	return i, nil
}

// SlackIndex returns the dense index of the slack bus.
func (n *Network) SlackIndex() (int, error) {
	for i := range n.Buses {
		if n.Buses[i].Type == Slack {
			return i, nil
		}
	}
	return 0, ErrNoSlack
}

// DLRLines returns the indices (into Lines) of DLR-equipped lines, i.e. the
// attack surface E_D of the paper.
func (n *Network) DLRLines() []int {
	var out []int
	for i := range n.Lines {
		if n.Lines[i].HasDLR {
			out = append(out, i)
		}
	}
	return out
}

// GensAtBus returns the indices (into Gens) of units at the given external
// bus ID.
func (n *Network) GensAtBus(busID int) []int {
	var out []int
	for i := range n.Gens {
		if n.Gens[i].Bus == busID {
			out = append(out, i)
		}
	}
	return out
}

// TotalDemand returns the aggregate real-power demand in MW.
func (n *Network) TotalDemand() float64 {
	var s float64
	for i := range n.Buses {
		s += n.Buses[i].Pd
	}
	return s
}

// TotalCapacity returns the aggregate Pmax over all generators in MW.
func (n *Network) TotalCapacity() float64 {
	var s float64
	for i := range n.Gens {
		s += n.Gens[i].Pmax
	}
	return s
}

// Clone returns a deep copy of the network. The copy must be Validated
// before index lookups.
func (n *Network) Clone() *Network {
	c := &Network{
		Name:    n.Name,
		BaseMVA: n.BaseMVA,
		Buses:   make([]Bus, len(n.Buses)),
		Lines:   make([]Line, len(n.Lines)),
		Gens:    make([]Generator, len(n.Gens)),
	}
	copy(c.Buses, n.Buses)
	copy(c.Lines, n.Lines)
	copy(c.Gens, n.Gens)
	return c
}

// Ratings returns the effective rating of every line: the static rating for
// non-DLR lines and the supplied dynamic values for DLR lines. dlr maps line
// index → dynamic rating; DLR lines absent from the map fall back to their
// static rating.
func (n *Network) Ratings(dlr map[int]float64) []float64 {
	out := make([]float64, len(n.Lines))
	for i := range n.Lines {
		out[i] = n.Lines[i].RateMVA
		if n.Lines[i].HasDLR {
			if v, ok := dlr[i]; ok {
				out[i] = v
			}
		}
	}
	return out
}

// CheckDLRBounds verifies that each proposed dynamic rating lies within the
// line's plausibility band. This is the EMS-side "out-of-bound" check the
// paper's attacker must pass to stay stealthy. It returns the indices of
// offending lines.
func (n *Network) CheckDLRBounds(dlr map[int]float64) []int {
	var bad []int
	for i, v := range dlr {
		if i < 0 || i >= len(n.Lines) {
			bad = append(bad, i)
			continue
		}
		l := &n.Lines[i]
		if !l.HasDLR || v < l.DLRMin-1e-9 || v > l.DLRMax+1e-9 || math.IsNaN(v) {
			bad = append(bad, i)
		}
	}
	return bad
}
