package grid

import (
	"errors"
	"math"
	"testing"
)

// twoBus returns a minimal valid network for mutation-based tests.
func twoBus() *Network {
	return &Network{
		Name:    "twobus",
		BaseMVA: 100,
		Buses: []Bus{
			{ID: 1, Type: Slack, VnomKV: 138, Vmin: 0.9, Vmax: 1.1},
			{ID: 2, Type: PQ, Pd: 50, VnomKV: 138, Vmin: 0.9, Vmax: 1.1},
		},
		Lines: []Line{
			{ID: 1, From: 1, To: 2, X: 0.1, RateMVA: 100, HasDLR: true, DLRMin: 50, DLRMax: 150},
		},
		Gens: []Generator{
			{ID: 1, Bus: 1, Pmin: 0, Pmax: 100, CostB: 10},
		},
	}
}

func TestValidateOK(t *testing.T) {
	n := twoBus()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Network)
	}{
		{"zero base", func(n *Network) { n.BaseMVA = 0 }},
		{"no buses", func(n *Network) { n.Buses = nil; n.Lines = nil; n.Gens = nil }},
		{"dup bus", func(n *Network) { n.Buses = append(n.Buses, Bus{ID: 1, Type: PQ}) }},
		{"no slack", func(n *Network) { n.Buses[0].Type = PQ }},
		{"two slacks", func(n *Network) { n.Buses[1].Type = Slack }},
		{"dup line", func(n *Network) { n.Lines = append(n.Lines, Line{ID: 1, From: 1, To: 2, X: 0.1}) }},
		{"line bad from", func(n *Network) { n.Lines[0].From = 99 }},
		{"line bad to", func(n *Network) { n.Lines[0].To = 99 }},
		{"self loop", func(n *Network) { n.Lines[0].To = 1 }},
		{"zero reactance", func(n *Network) { n.Lines[0].X = 0 }},
		{"bad DLR bounds", func(n *Network) { n.Lines[0].DLRMax = 10 }},
		{"dup gen", func(n *Network) { n.Gens = append(n.Gens, Generator{ID: 1, Bus: 1}) }},
		{"gen bad bus", func(n *Network) { n.Gens[0].Bus = 99 }},
		{"gen inverted P", func(n *Network) { n.Gens[0].Pmin = 200 }},
		{"gen negative a", func(n *Network) { n.Gens[0].CostA = -1 }},
		{"bus inverted V", func(n *Network) { n.Buses[0].Vmin = 1.2 }},
		{"disconnected", func(n *Network) {
			n.Buses = append(n.Buses, Bus{ID: 3, Type: PQ, VnomKV: 138, Vmin: 0.9, Vmax: 1.1})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := twoBus()
			tt.mutate(n)
			if err := n.Validate(); err == nil {
				t.Fatalf("Validate accepted invalid network (%s)", tt.name)
			}
		})
	}
}

func TestBusIndex(t *testing.T) {
	n := twoBus()
	if _, err := n.BusIndex(1); err == nil {
		t.Fatal("BusIndex before Validate must error")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	i, err := n.BusIndex(2)
	if err != nil || i != 1 {
		t.Fatalf("BusIndex(2) = %d, %v", i, err)
	}
	if _, err := n.BusIndex(42); err == nil {
		t.Fatal("BusIndex(42) must error")
	}
}

func TestSlackIndex(t *testing.T) {
	n := twoBus()
	i, err := n.SlackIndex()
	if err != nil || i != 0 {
		t.Fatalf("SlackIndex = %d, %v", i, err)
	}
	n.Buses[0].Type = PQ
	if _, err := n.SlackIndex(); !errors.Is(err, ErrNoSlack) {
		t.Fatalf("want ErrNoSlack, got %v", err)
	}
}

func TestDLRLinesAndGensAtBus(t *testing.T) {
	n := twoBus()
	if got := n.DLRLines(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("DLRLines = %v", got)
	}
	if got := n.GensAtBus(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("GensAtBus(1) = %v", got)
	}
	if got := n.GensAtBus(2); len(got) != 0 {
		t.Fatalf("GensAtBus(2) = %v", got)
	}
}

func TestTotals(t *testing.T) {
	n := twoBus()
	if n.TotalDemand() != 50 {
		t.Fatalf("TotalDemand = %v", n.TotalDemand())
	}
	if n.TotalCapacity() != 100 {
		t.Fatalf("TotalCapacity = %v", n.TotalCapacity())
	}
}

func TestClone(t *testing.T) {
	n := twoBus()
	c := n.Clone()
	c.Buses[0].Pd = 999
	c.Lines[0].RateMVA = 1
	c.Gens[0].Pmax = 1
	if n.Buses[0].Pd == 999 || n.Lines[0].RateMVA == 1 || n.Gens[0].Pmax == 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestRatings(t *testing.T) {
	n := twoBus()
	r := n.Ratings(nil)
	if r[0] != 100 {
		t.Fatalf("static fallback = %v", r[0])
	}
	r = n.Ratings(map[int]float64{0: 123})
	if r[0] != 123 {
		t.Fatalf("dlr override = %v", r[0])
	}
}

func TestCheckDLRBounds(t *testing.T) {
	n := twoBus()
	if bad := n.CheckDLRBounds(map[int]float64{0: 100}); len(bad) != 0 {
		t.Fatalf("in-bounds rating rejected: %v", bad)
	}
	if bad := n.CheckDLRBounds(map[int]float64{0: 200}); len(bad) != 1 {
		t.Fatal("out-of-bounds rating accepted")
	}
	if bad := n.CheckDLRBounds(map[int]float64{0: math.NaN()}); len(bad) != 1 {
		t.Fatal("NaN rating accepted")
	}
	if bad := n.CheckDLRBounds(map[int]float64{7: 100}); len(bad) != 1 {
		t.Fatal("unknown line accepted")
	}
}

func TestGeneratorCost(t *testing.T) {
	g := Generator{CostA: 2, CostB: 3, CostC: 5}
	if g.Cost(10) != 2*100+3*10+5 {
		t.Fatalf("Cost = %v", g.Cost(10))
	}
	if g.MarginalCost(10) != 43 {
		t.Fatalf("MarginalCost = %v", g.MarginalCost(10))
	}
}

func TestLineSusceptance(t *testing.T) {
	l := Line{X: 0.05}
	if math.Abs(l.Susceptance()-20) > 1e-12 {
		t.Fatalf("Susceptance = %v", l.Susceptance())
	}
	l.X = 0
	if l.Susceptance() != 0 {
		t.Fatal("zero-X susceptance must be 0")
	}
}

func TestBusTypeString(t *testing.T) {
	for _, bt := range []BusType{PQ, PV, Slack, BusType(9)} {
		if bt.String() == "" {
			t.Fatal("empty BusType string")
		}
	}
}
