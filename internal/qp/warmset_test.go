package qp

import (
	"math"
	"math/rand"
	"testing"
)

// buildWarmQP is a strictly convex QP whose optimum pins two of the three
// user inequality rows: min Σ(xᵢ-tᵢ)² with rows x₀+x₁ ≤ 1, x₁+x₂ ≤ 1,
// x₀-x₂ ≤ 10 and targets pushing into the first two.
func buildWarmQP() *Problem {
	p := NewProblem(3)
	for j, target := range []float64{2, 2, 2} {
		_ = p.SetQuadCoeff(j, j, 2)
		_ = p.SetLinCoeff(j, -2*target)
	}
	_, _ = p.AddInequality([]float64{1, 1, 0}, 1)
	_, _ = p.AddInequality([]float64{0, 1, 1}, 1)
	_, _ = p.AddInequality([]float64{1, 0, -1}, 10)
	return p
}

// The solver reports which user rows are active at the optimum, and feeding
// that set back as WarmSet reproduces the same optimum in no more
// iterations — the active-set analogue of the lp package's warm basis.
func TestWarmSetRoundTrip(t *testing.T) {
	p := buildWarmQP()
	cold, err := Solve(p)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if len(cold.ActiveSet) == 0 {
		t.Fatal("optimum pins user rows but ActiveSet is empty")
	}
	for _, i := range cold.ActiveSet {
		if i < 0 || i >= 3 {
			t.Fatalf("ActiveSet entry %d out of range", i)
		}
	}
	warm, err := SolveWith(p, Options{WarmSet: cold.ActiveSet})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if math.Abs(warm.Objective-cold.Objective) > tol {
		t.Fatalf("warm objective %v, cold %v", warm.Objective, cold.Objective)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm solve took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
}

// A garbage warm set (out-of-range and inactive rows) must not change the
// answer: warm seeding only biases the order in which active rows are tried.
func TestWarmSetIgnoresStaleHints(t *testing.T) {
	p := buildWarmQP()
	cold, err := Solve(p)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	for _, ws := range [][]int{{-1, 99}, {2}, {2, 1, 0, 0, 1, 2}} {
		warm, err := SolveWith(p, Options{WarmSet: ws})
		if err != nil {
			t.Fatalf("warm solve with %v: %v", ws, err)
		}
		if math.Abs(warm.Objective-cold.Objective) > tol {
			t.Fatalf("warm set %v changed objective: %v vs %v", ws, warm.Objective, cold.Objective)
		}
		for j := range cold.X {
			if math.Abs(warm.X[j]-cold.X[j]) > 1e-5 {
				t.Fatalf("warm set %v changed x[%d]: %v vs %v", ws, j, warm.X[j], cold.X[j])
			}
		}
	}
}

// Random strictly convex QPs: the warm set captured from a solve must
// reproduce the same optimum when the linear term is perturbed slightly —
// the successive-QP situation (e.g. re-dispatch after a small rating change).
func TestWarmSetAfterPerturbation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(4)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			_ = p.SetQuadCoeff(j, j, 1+r.Float64())
			_ = p.SetLinCoeff(j, -4*r.Float64())
			_ = p.SetBounds(j, 0, 1+r.Float64())
		}
		row := make([]float64, n)
		for j := range row {
			row[j] = r.Float64()
		}
		_, _ = p.AddInequality(row, 0.5)
		cold, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		for j := 0; j < n; j++ {
			_ = p.SetLinCoeff(j, p.c[j]+0.01*(r.Float64()-0.5))
		}
		ref, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d ref: %v", trial, err)
		}
		warm, err := SolveWith(p, Options{WarmSet: cold.ActiveSet})
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if math.Abs(warm.Objective-ref.Objective) > 1e-5*(1+math.Abs(ref.Objective)) {
			t.Fatalf("trial %d: warm objective %v, ref %v", trial, warm.Objective, ref.Objective)
		}
	}
}
