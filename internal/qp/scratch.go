package qp

import "github.com/edsec/edattack/internal/lp"

// qpScratch is the QP layer's slot in an lp.Workspace: every per-solve
// allocation of the active-set iteration — the folded inequality row list,
// the working set, the Schur right-hand-side vectors, the KKT-solution memo
// and its hand-out buffers, the step direction, and candidate working sets —
// lives here and is reused across solves. The cross-solve kktSchur itself
// (base LU, border columns, Schur factorizations) belongs to the KKTCache,
// not the scratch: it is shared by every solve of the structural family and
// must never be reset per solve.
//
// The activeSet struct embedded here is reused too, so a workspace-carrying
// steady-state solve allocates nothing for the iteration driver itself.
type qpScratch struct {
	as activeSet

	rows     []ineqRow
	work     []int
	keys     []int64
	w0       []float64
	rw0      []float64
	rw0ok    []bool
	keyBuf   []byte
	memoWork []int
	memoX    []float64
	memoNu   []float64
	memoLam  []float64
	uBuf     []float64
	rhsBuf   []float64
	retX     []float64
	retNu    []float64
	retLam   []float64
	dBuf     []float64
	cand     []int
}

// scratchFrom returns the workspace's QP scratch, creating it on first use;
// nil workspace means no pooling.
func scratchFrom(ws *lp.Workspace) *qpScratch {
	if ws == nil {
		return nil
	}
	if s, ok := ws.QP.(*qpScratch); ok {
		return s
	}
	s := &qpScratch{}
	ws.QP = s
	return s
}

// attach resets the embedded activeSet for a new solve and hands it the
// scratch-backed buffers (all length zero; growth reuses prior capacity).
func (sc *qpScratch) attach(p *Problem, rows []ineqRow, x []float64, opts Options) *activeSet {
	s := &sc.as
	*s = activeSet{p: p, rows: rows, x: x, opts: opts}
	s.work = sc.work[:0]
	s.keys = sc.keys[:0]
	s.w0 = sc.w0[:0]
	s.rw0 = sc.rw0[:0]
	s.rw0ok = sc.rw0ok[:0]
	s.keyBuf = sc.keyBuf[:0]
	s.memoWork = sc.memoWork[:0]
	s.memoX = sc.memoX[:0]
	s.memoNu = sc.memoNu[:0]
	s.memoLam = sc.memoLam[:0]
	s.uBuf = sc.uBuf[:0]
	s.rhsBuf = sc.rhsBuf[:0]
	s.retX = sc.retX[:0]
	s.retNu = sc.retNu[:0]
	s.retLam = sc.retLam[:0]
	s.dBuf = sc.dBuf[:0]
	s.cand = sc.cand[:0]
	return s
}

// reclaim takes the (possibly grown) buffers back after a solve so the next
// attach starts from the largest capacity seen.
func (sc *qpScratch) reclaim(s *activeSet) {
	sc.rows = s.rows[:0]
	sc.work = s.work[:0]
	sc.keys = s.keys[:0]
	sc.w0 = s.w0[:0]
	sc.rw0 = s.rw0[:0]
	sc.rw0ok = s.rw0ok[:0]
	sc.keyBuf = s.keyBuf[:0]
	sc.memoWork = s.memoWork[:0]
	sc.memoX = s.memoX[:0]
	sc.memoNu = s.memoNu[:0]
	sc.memoLam = s.memoLam[:0]
	sc.uBuf = s.uBuf[:0]
	sc.rhsBuf = s.rhsBuf[:0]
	sc.retX = s.retX[:0]
	sc.retNu = s.retNu[:0]
	sc.retLam = s.retLam[:0]
	sc.dBuf = s.dBuf[:0]
	sc.cand = s.cand[:0]
}

// cloneInto copies src into dst, reallocating only when dst's capacity is
// insufficient; with a nil dst it behaves exactly like mat.CloneVec.
func cloneInto(dst, src []float64) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	} else {
		dst = dst[:len(src)]
	}
	copy(dst, src)
	return dst
}

// growFloat/growBool/growInt64 reslice to length n, reallocating only when
// capacity is insufficient; contents are unspecified (callers write or clear).
func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
