package qp

import (
	"errors"
	"fmt"
	"sort"

	"github.com/edsec/edattack/internal/mat"
)

// activeSet runs the primal active-set iteration.
type activeSet struct {
	p    *Problem
	rows []ineqRow
	x    []float64
	opts Options
	work []int // indices into rows forming the working set
}

// run iterates: solve the equality-constrained QP on the working set, then
// either take a (possibly blocked) step, drop a constraint with a negative
// multiplier, or declare optimality.
func (s *activeSet) run() (*Solution, error) {
	tol := s.opts.Tol
	// Seed the working set with constraints active at the start point,
	// trying a caller-supplied warm set (a previous solve's active set)
	// before the generic scan. A warm row is adopted under exactly the
	// same conditions as a scanned one, so the warm set biases seeding
	// order without ever admitting an inactive or dependent row.
	trySeed := func(i int) {
		if len(s.work) >= s.p.n-len(s.p.aeq) || s.inWork(i) {
			return // keep the working set small enough for independence
		}
		if s.rows[i].h-s.rows[i].value(s.x) < tol {
			if s.tryKKT(append(append([]int{}, s.work...), i)) {
				s.work = append(s.work, i)
			}
		}
	}
	for _, w := range s.opts.WarmSet {
		// User inequality rows occupy rows[0:len(p.gin)] in add order.
		if w >= 0 && w < len(s.p.gin) {
			trySeed(w)
		}
	}
	for i := range s.rows {
		trySeed(i)
	}
	for iter := 0; iter < s.opts.MaxIter; iter++ {
		xStar, nu, lam, err := s.solveKKT(s.work)
		if err != nil {
			// Dependent working set: drop the newest row and retry.
			if len(s.work) == 0 {
				return nil, fmt.Errorf("qp: KKT solve failed with empty working set: %w", err)
			}
			s.work = s.work[:len(s.work)-1]
			continue
		}
		d := mat.Sub(xStar, s.x)
		if mat.NormInf(d) < tol {
			// Candidate optimum: check multiplier signs.
			minIdx, minVal := -1, -tol
			for k := range s.work {
				if lam[k] < minVal {
					minVal, minIdx = lam[k], k
				}
			}
			if minIdx < 0 {
				sol := s.assemble(nu, lam)
				sol.Iterations = iter + 1
				return sol, nil
			}
			s.work = append(s.work[:minIdx], s.work[minIdx+1:]...)
			continue
		}
		// Ratio test against rows not in the working set.
		alpha, blocking := 1.0, -1
		for i := range s.rows {
			if s.inWork(i) {
				continue
			}
			gd := s.rows[i].dirDot(d)
			if gd <= tol {
				continue
			}
			slack := s.rows[i].h - s.rows[i].value(s.x)
			if slack < 0 {
				slack = 0
			}
			if a := slack / gd; a < alpha {
				alpha, blocking = a, i
			}
		}
		for j := range s.x {
			s.x[j] += alpha * d[j]
		}
		if blocking >= 0 {
			cand := append(append([]int{}, s.work...), blocking)
			if s.tryKKT(cand) {
				s.work = append(s.work, blocking)
			} else if len(s.work) > 0 {
				// The blocking gradient is dependent on the working
				// set; make room by dropping the oldest row.
				s.work = s.work[1:]
			}
		}
	}
	return nil, fmt.Errorf("%w (after %d iterations)", ErrIterLimit, s.opts.MaxIter)
}

func (s *activeSet) inWork(i int) bool {
	for _, w := range s.work {
		if w == i {
			return true
		}
	}
	return false
}

// tryKKT reports whether the KKT matrix for the given working set is
// nonsingular.
func (s *activeSet) tryKKT(work []int) bool {
	_, _, _, err := s.solveKKT(work)
	return err == nil
}

// solveKKT solves the equality-constrained QP
//
//	min ½xᵀHx + cᵀx   s.t.  Aeq·x = beq,  rows[w]·x = h[w] for w ∈ work
//
// returning the minimizer and the multipliers (ν for equalities, λ for
// working-set rows).
func (s *activeSet) solveKKT(work []int) (x, nu, lam []float64, err error) {
	n := s.p.n
	me := len(s.p.aeq)
	mw := len(work)
	dim := n + me + mw
	kkt := mat.New(dim, dim)
	rhs := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, s.p.h.At(i, j))
		}
		rhs[i] = -s.p.c[i]
	}
	for e := 0; e < me; e++ {
		for j, v := range s.p.aeq[e] {
			kkt.Set(n+e, j, v)
			kkt.Set(j, n+e, v)
		}
		rhs[n+e] = s.p.beq[e]
	}
	for k, w := range work {
		r := &s.rows[w]
		if r.g != nil {
			for j, v := range r.g {
				kkt.Set(n+me+k, j, v)
				kkt.Set(j, n+me+k, v)
			}
		} else {
			kkt.Set(n+me+k, r.idx, r.sign)
			kkt.Set(r.idx, n+me+k, r.sign)
		}
		rhs[n+me+k] = r.h
	}
	sol, err := mat.Solve(kkt, rhs)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return nil, nil, nil, err
		}
		return nil, nil, nil, fmt.Errorf("qp: KKT solve: %w", err)
	}
	return sol[:n], sol[n : n+me], sol[n+me:], nil
}

// assemble scatters working-set multipliers back to per-row duals.
func (s *activeSet) assemble(nu, lam []float64) *Solution {
	p := s.p
	sol := &Solution{
		X:         mat.CloneVec(s.x),
		EqDual:    mat.CloneVec(nu),
		IneqDual:  make([]float64, len(p.gin)),
		LowerDual: make([]float64, p.n),
		UpperDual: make([]float64, p.n),
	}
	for k, w := range s.work {
		r := &s.rows[w]
		l := lam[k]
		if l < 0 {
			l = 0 // within tolerance of zero
		}
		switch r.kind {
		case kindUser:
			sol.IneqDual[r.idx] = l
			sol.ActiveSet = append(sol.ActiveSet, r.idx)
		case kindLower:
			sol.LowerDual[r.idx] = l
		case kindUpper:
			sol.UpperDual[r.idx] = l
		}
	}
	sort.Ints(sol.ActiveSet)
	hx, _ := p.h.MulVec(sol.X)
	sol.Objective = 0.5*mat.Dot(sol.X, hx) + mat.Dot(p.c, sol.X)
	return sol
}
