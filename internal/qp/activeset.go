package qp

import (
	"errors"
	"fmt"
	"sort"

	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/sparse"
)

// Base KKT matrices at or above this dimension with at most this density
// are factorized with the sparse LU and working sets handled by bordering;
// smaller or denser systems keep the dense path (which also serves as the
// differential oracle).
const (
	kktSparseMinDim     = 16
	kktSparseMaxDensity = 0.3
)

// activeSet runs the primal active-set iteration.
type activeSet struct {
	p    *Problem
	rows []ineqRow
	x    []float64
	opts Options
	work []int // indices into rows forming the working set

	// Hessian and equality-row sparsity, extracted once per solve.
	hInd   [][]int
	hVal   [][]float64
	hNNZ   int
	aeqNNZ int

	// Bordered sparse KKT machinery; nil when the base matrix is too small,
	// too dense, or singular, in which case every solve takes the dense path.
	schur      *kktSchur
	schurTried bool

	// keys[i] identifies rows[i] across solves sharing a KKTCache (stable
	// scheme) or within this solve only (positional scheme).
	keys []int64
	// w0 = B⁻¹·[−c; beq] and the per-row dots ĝ_wᵀ·w0, per solve (the
	// objective and right-hand sides may differ between cached solves).
	w0    []float64
	rw0   []float64
	rw0ok []bool
	// keyBuf is scratch for packing working sets into map keys.
	keyBuf []byte

	// Memoized last successful solve: the KKT solution depends only on the
	// working set (the iterate moves neither the matrix nor the right-hand
	// side), and run() solves each candidate set twice — once probing
	// independence in tryKKT, once for the step in the next iteration — so
	// remembering the last result halves the work. memoOK gates validity so
	// the buffers themselves can persist in a qpScratch across solves.
	memoOK   bool
	memoWork []int
	memoX    []float64
	memoNu   []float64
	memoLam  []float64

	// Reused per-call buffers (scratch-backed under a Workspace): the
	// bordered solution vector, Schur right-hand side, memo hand-out copies,
	// step direction, and candidate working set. A KKT solution handed out
	// from uBuf/ret* is valid until the next solveKKT call, which is how
	// run() already consumes it.
	uBuf   []float64
	rhsBuf []float64
	retX   []float64
	retNu  []float64
	retLam []float64
	dBuf   []float64
	cand   []int
}

// KKTCache carries factorization work reusable across solves of structurally
// identical QPs: same Hessian, same equality rows, same bound structure, and
// the same gradient behind every stable inequality-row key (see
// Options.RowKeys). Objective vectors and all right-hand sides — beq,
// inequality limits, bound values — may differ freely between solves; those
// enter only through per-solve vectors. The canonical client is repeated
// economic dispatch under varying line ratings, where every KKT matrix is
// drawn from one fixed family.
//
// The zero value is ready to use. A KKTCache is not safe for concurrent use;
// per-worker model clones must each own one.
type KKTCache struct {
	n, me int
	tried bool
	sc    *kktSchur
}

// kktSchur solves working-set KKT systems by bordering: the base matrix
//
//	B = ⎡H  Aeqᵀ⎤
//	    ⎣Aeq  0 ⎦
//
// is fixed for the whole active-set run and factorized sparsely once; a
// working set {w₁…w_mw} extends it with border columns ĝ_w (the row
// gradients, zero-padded over the equality block). The bordered system
//
//	⎡B  G⎤ ⎡u⎤ = ⎡r⎤        G = [ĝ_w₁ … ĝ_w_mw]
//	⎣Gᵀ 0⎦ ⎣λ⎦   ⎣h⎦
//
// reduces to the mw×mw dense Schur complement S = GᵀB⁻¹G:
//
//	S·λ = GᵀB⁻¹r − h,   u = B⁻¹r − (B⁻¹G)·λ
//
// B⁻¹ĝ_w is cached per row key, every Schur entry ĝ_vᵀB⁻¹ĝ_w is cached per
// key pair, and Schur factorizations are cached per working set — all of
// which depend only on the gradients, so with a cross-solve KKTCache a
// steady-state KKT solve costs one small triangular solve instead of the
// dense (n+me+mw)³ factorization it replaced.
type kktSchur struct {
	dim0 int        // n + me
	base *sparse.LU // factorization of B

	cols  map[int64][]float64 // row key → B⁻¹·ĝ_w
	dots  map[uint64]float64  // packed key pair → ĝ_vᵀ·B⁻¹·ĝ_w
	sfact map[string]*mat.LU  // packed working set → Schur factorization
	sbad  map[string]bool     // packed working set → singular (dependent)
}

// run iterates: solve the equality-constrained QP on the working set, then
// either take a (possibly blocked) step, drop a constraint with a negative
// multiplier, or declare optimality.
func (s *activeSet) run() (*Solution, error) {
	tol := s.opts.Tol
	// Seed the working set with constraints active at the start point,
	// trying a caller-supplied warm set (a previous solve's active set)
	// before the generic scan. A warm row is adopted under exactly the
	// same conditions as a scanned one, so the warm set biases seeding
	// order without ever admitting an inactive or dependent row.
	trySeed := func(i int) {
		if len(s.work) >= s.p.n-len(s.p.aeq) || s.inWork(i) {
			return // keep the working set small enough for independence
		}
		if s.rows[i].h-s.rows[i].value(s.x) < tol {
			cand := append(append(s.cand[:0], s.work...), i)
			s.cand = cand
			if s.tryKKT(cand) {
				s.work = append(s.work, i)
			}
		}
	}
	for _, w := range s.opts.WarmSet {
		// User inequality rows occupy rows[0:len(p.gin)] in add order.
		if w >= 0 && w < len(s.p.gin) {
			trySeed(w)
		}
	}
	for i := range s.rows {
		trySeed(i)
	}
	for iter := 0; iter < s.opts.MaxIter; iter++ {
		xStar, nu, lam, err := s.solveKKT(s.work)
		if err != nil {
			// Dependent working set: drop the newest row and retry.
			if len(s.work) == 0 {
				return nil, fmt.Errorf("qp: KKT solve failed with empty working set: %w", err)
			}
			s.work = s.work[:len(s.work)-1]
			continue
		}
		d := growFloat(s.dBuf, len(s.x))
		s.dBuf = d
		for j := range d {
			d[j] = xStar[j] - s.x[j]
		}
		if mat.NormInf(d) < tol {
			// Candidate optimum: check multiplier signs.
			minIdx, minVal := -1, -tol
			for k := range s.work {
				if lam[k] < minVal {
					minVal, minIdx = lam[k], k
				}
			}
			if minIdx < 0 {
				sol := s.assemble(nu, lam)
				sol.Iterations = iter + 1
				return sol, nil
			}
			s.work = append(s.work[:minIdx], s.work[minIdx+1:]...)
			continue
		}
		// Ratio test against rows not in the working set.
		alpha, blocking := 1.0, -1
		for i := range s.rows {
			if s.inWork(i) {
				continue
			}
			gd := s.rows[i].dirDot(d)
			if gd <= tol {
				continue
			}
			slack := s.rows[i].h - s.rows[i].value(s.x)
			if slack < 0 {
				slack = 0
			}
			if a := slack / gd; a < alpha {
				alpha, blocking = a, i
			}
		}
		for j := range s.x {
			s.x[j] += alpha * d[j]
		}
		if blocking >= 0 {
			cand := append(append(s.cand[:0], s.work...), blocking)
			s.cand = cand
			if s.tryKKT(cand) {
				s.work = append(s.work, blocking)
			} else if len(s.work) > 0 {
				// The blocking gradient is dependent on the working
				// set; make room by dropping the oldest row.
				s.work = s.work[1:]
			}
		}
	}
	return nil, fmt.Errorf("%w (after %d iterations)", ErrIterLimit, s.opts.MaxIter)
}

func (s *activeSet) inWork(i int) bool {
	for _, w := range s.work {
		if w == i {
			return true
		}
	}
	return false
}

// tryKKT reports whether the KKT matrix for the given working set is
// nonsingular.
func (s *activeSet) tryKKT(work []int) bool {
	_, _, _, err := s.solveKKT(work)
	return err == nil
}

// solveKKT solves the equality-constrained QP
//
//	min ½xᵀHx + cᵀx   s.t.  Aeq·x = beq,  rows[w]·x = h[w] for w ∈ work
//
// returning the minimizer and the multipliers (ν for equalities, λ for
// working-set rows).
func (s *activeSet) solveKKT(work []int) (x, nu, lam []float64, err error) {
	if !s.opts.DenseKKT {
		if !s.schurTried {
			s.initSchur()
		}
		if s.schur != nil {
			return s.solveKKTSchur(work)
		}
	}
	n := s.p.n
	me := len(s.p.aeq)
	rhs := make([]float64, n+me+len(work))
	for i := 0; i < n; i++ {
		rhs[i] = -s.p.c[i]
	}
	for e := 0; e < me; e++ {
		rhs[n+e] = s.p.beq[e]
	}
	for k, w := range work {
		rhs[n+me+k] = s.rows[w].h
	}
	return s.solveKKTDense(work, rhs)
}

// initSchur decides once per solve whether the base KKT matrix is worth
// factorizing sparsely and, if so, factors it (or adopts a cached
// factorization) and computes B⁻¹r for this solve's right-hand side.
func (s *activeSet) initSchur() {
	s.schurTried = true
	n := s.p.n
	me := len(s.p.aeq)
	if n+me < kktSparseMinDim {
		return
	}
	cache := s.opts.Cache
	if !s.stableKeys() {
		cache = nil // no stable row identity: cross-solve reuse is unsound
		s.positionalKeys()
	}
	if cache != nil && cache.tried && cache.n == n && cache.me == me {
		if cache.sc != nil {
			s.schur = cache.sc
			s.initW0()
		}
		return
	}
	sc := s.buildSchur()
	if cache != nil {
		*cache = KKTCache{n: n, me: me, tried: true, sc: sc}
	}
	if sc != nil {
		s.schur = sc
		s.initW0()
	}
}

// stableKeys assigns cross-solve row identities: a caller-supplied key for
// each user inequality row and the variable index for each bound row. It
// reports false — leaving the keys unset — when the caller provided no (or
// malformed) keys, in which case cross-solve caching is disabled.
func (s *activeSet) stableKeys() bool {
	rk := s.opts.RowKeys
	if len(s.p.gin) > 0 && len(rk) != len(s.p.gin) {
		return false
	}
	keys := growInt64(s.keys, len(s.rows))
	for i := range s.rows {
		r := &s.rows[i]
		switch r.kind {
		case kindUser:
			k := rk[r.idx]
			if k < 0 || k >= 1<<28 {
				return false
			}
			keys[i] = k << 2
		case kindUpper:
			keys[i] = int64(r.idx)<<2 | 1
		case kindLower:
			keys[i] = int64(r.idx)<<2 | 2
		}
	}
	s.keys = keys
	return true
}

// positionalKeys identifies rows by position, valid within one solve only.
func (s *activeSet) positionalKeys() {
	s.keys = growInt64(s.keys, len(s.rows))
	for i := range s.keys {
		s.keys[i] = int64(i)<<2 | 3
	}
}

// buildSchur assembles and factors the base matrix B sparsely, returning nil
// when it is too dense or singular (H not positive definite on the equality
// null space), in which case the bordered reduction does not apply.
func (s *activeSet) buildSchur() *kktSchur {
	n := s.p.n
	me := len(s.p.aeq)
	dim0 := n + me
	if s.hInd == nil {
		s.scanSparsity()
	}
	nnz := s.hNNZ + 2*s.aeqNNZ
	if float64(nnz) > kktSparseMaxDensity*float64(dim0)*float64(dim0) {
		return nil
	}
	ind := make([][]int, dim0)
	val := make([][]float64, dim0)
	for j := 0; j < n; j++ {
		rs := make([]int, 0, len(s.hInd[j])+me)
		vs := make([]float64, 0, len(s.hVal[j])+me)
		rs = append(rs, s.hInd[j]...)
		vs = append(vs, s.hVal[j]...)
		for e := 0; e < me; e++ {
			if v := s.p.aeq[e][j]; v != 0 {
				rs = append(rs, n+e)
				vs = append(vs, v)
			}
		}
		ind[j], val[j] = rs, vs
	}
	for e := 0; e < me; e++ {
		var rs []int
		var vs []float64
		for j, v := range s.p.aeq[e] {
			if v != 0 {
				rs = append(rs, j)
				vs = append(vs, v)
			}
		}
		ind[n+e], val[n+e] = rs, vs
	}
	base, err := sparse.FactorColumns(dim0, ind, val)
	if err != nil {
		return nil
	}
	return &kktSchur{
		dim0:  dim0,
		base:  base,
		cols:  make(map[int64][]float64),
		dots:  make(map[uint64]float64),
		sfact: make(map[string]*mat.LU),
		sbad:  make(map[string]bool),
	}
}

// initW0 computes this solve's B⁻¹·[−c; beq] and resets the per-solve
// right-hand-side dot cache.
func (s *activeSet) initW0() {
	n := s.p.n
	w0 := growFloat(s.w0, s.schur.dim0)
	for i := 0; i < n; i++ {
		w0[i] = -s.p.c[i]
	}
	for e := 0; e < len(s.p.aeq); e++ {
		w0[n+e] = s.p.beq[e]
	}
	for i := n + len(s.p.aeq); i < len(w0); i++ {
		w0[i] = 0
	}
	s.schur.base.Solve(w0)
	s.w0 = w0
	s.rw0 = growFloat(s.rw0, len(s.rows))
	s.rw0ok = growBool(s.rw0ok, len(s.rows))
	for i := range s.rw0ok {
		s.rw0ok[i] = false
	}
}

// borderCol returns B⁻¹·ĝ_w, computing and caching it on first use. The
// cache never invalidates: B and the gradient behind a key are fixed for
// the cache's lifetime.
func (s *activeSet) borderCol(w int) []float64 {
	if c, ok := s.schur.cols[s.keys[w]]; ok {
		return c
	}
	v := make([]float64, s.schur.dim0)
	r := &s.rows[w]
	if r.g != nil {
		copy(v, r.g)
	} else {
		v[r.idx] = r.sign
	}
	s.schur.base.Solve(v)
	s.schur.cols[s.keys[w]] = v
	return v
}

// pairDot returns ĝ_vᵀ·B⁻¹·ĝ_w, cached per unordered key pair (the base is
// symmetric, so the dot is too; the canonical orientation makes the cached
// value — and hence the Schur matrix — exactly symmetric).
func (s *activeSet) pairDot(wi, wj int) float64 {
	a, b := s.keys[wi], s.keys[wj]
	if a > b {
		a, b = b, a
		wi, wj = wj, wi
	}
	key := uint64(a)<<32 | uint64(b)
	if v, ok := s.schur.dots[key]; ok {
		return v
	}
	v := rowDot(&s.rows[wi], s.borderCol(wj))
	s.schur.dots[key] = v
	return v
}

// rhsDot returns ĝ_wᵀ·w0, cached per row for this solve.
func (s *activeSet) rhsDot(w int) float64 {
	if s.rw0ok[w] {
		return s.rw0[w]
	}
	v := rowDot(&s.rows[w], s.w0)
	s.rw0[w], s.rw0ok[w] = v, true
	return v
}

// workKey packs a working set's row keys into a map key.
func (s *activeSet) workKey(work []int) string {
	buf := s.keyBuf[:0]
	for _, w := range work {
		k := uint32(s.keys[w])
		buf = append(buf, byte(k), byte(k>>8), byte(k>>16), byte(k>>24))
	}
	s.keyBuf = buf
	return string(buf)
}

// rowDot is ĝ_wᵀ·v for a vector over the base dimension (the gradient is
// zero over the equality block).
func rowDot(r *ineqRow, v []float64) float64 {
	if r.g == nil {
		return r.sign * v[r.idx]
	}
	d := 0.0
	for j, g := range r.g {
		if g != 0 {
			d += g * v[j]
		}
	}
	return d
}

// solveKKTSchur solves the working-set KKT system through the bordered
// reduction. A singular Schur complement means the working-set gradients
// are dependent (given the nonsingular base), exactly the condition the
// dense path reports as ErrSingular.
func (s *activeSet) solveKKTSchur(work []int) (x, nu, lam []float64, err error) {
	if s.memoOK && sameWorkSet(s.memoWork, work) {
		s.retX = cloneInto(s.retX, s.memoX)
		s.retNu = cloneInto(s.retNu, s.memoNu)
		s.retLam = cloneInto(s.retLam, s.memoLam)
		return s.retX, s.retNu, s.retLam, nil
	}
	n := s.p.n
	k := s.schur
	mw := len(work)
	u := cloneInto(s.uBuf, s.w0)
	s.uBuf = u
	var lmb []float64
	if mw > 0 {
		wk := s.workKey(work)
		if k.sbad[wk] {
			return nil, nil, nil, mat.ErrSingular
		}
		f := k.sfact[wk]
		if f == nil {
			sc := mat.New(mw, mw)
			for i := range work {
				for j := i; j < mw; j++ {
					d := s.pairDot(work[i], work[j])
					sc.Set(i, j, d)
					sc.Set(j, i, d)
				}
			}
			var ferr error
			f, ferr = mat.Factor(sc)
			if ferr != nil {
				// A dependent set stays dependent: the Schur entries are
				// fixed for the cache's lifetime.
				if len(k.sbad) >= 1024 {
					clear(k.sbad)
				}
				k.sbad[wk] = true
				return nil, nil, nil, ferr
			}
			if len(k.sfact) >= 1024 {
				clear(k.sfact)
			}
			k.sfact[wk] = f
		}
		rhs := growFloat(s.rhsBuf, mw)
		s.rhsBuf = rhs
		for i, w := range work {
			rhs[i] = s.rhsDot(w) - s.rows[w].h
		}
		lmb, err = f.Solve(rhs)
		if err != nil {
			return nil, nil, nil, err
		}
		for i, w := range work {
			li := lmb[i]
			if li == 0 {
				continue
			}
			ci := s.borderCol(w)
			for t := range u {
				u[t] -= li * ci[t]
			}
		}
	}
	s.memoWork = append(s.memoWork[:0], work...)
	s.memoX = cloneInto(s.memoX, u[:n])
	s.memoNu = cloneInto(s.memoNu, u[n:])
	s.memoLam = cloneInto(s.memoLam, lmb)
	s.memoOK = true
	return u[:n], u[n:], lmb, nil
}

// scanSparsity extracts the Hessian's nonzero pattern (by column) and the
// equality-row nonzero count, once per solve.
func (s *activeSet) scanSparsity() {
	n := s.p.n
	s.hInd = make([][]int, n)
	s.hVal = make([][]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if v := s.p.h.At(i, j); v != 0 {
				s.hInd[j] = append(s.hInd[j], i)
				s.hVal[j] = append(s.hVal[j], v)
				s.hNNZ++
			}
		}
	}
	for _, row := range s.p.aeq {
		for _, v := range row {
			if v != 0 {
				s.aeqNNZ++
			}
		}
	}
}

// solveKKTDense is the original dense assembly and LU solve, kept for small
// or dense systems and as the differential-testing oracle.
func (s *activeSet) solveKKTDense(work []int, rhs []float64) (x, nu, lam []float64, err error) {
	n := s.p.n
	me := len(s.p.aeq)
	dim := len(rhs)
	kkt := mat.New(dim, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, s.p.h.At(i, j))
		}
	}
	for e := 0; e < me; e++ {
		for j, v := range s.p.aeq[e] {
			kkt.Set(n+e, j, v)
			kkt.Set(j, n+e, v)
		}
	}
	for k, w := range work {
		r := &s.rows[w]
		if r.g != nil {
			for j, v := range r.g {
				kkt.Set(n+me+k, j, v)
				kkt.Set(j, n+me+k, v)
			}
		} else {
			kkt.Set(n+me+k, r.idx, r.sign)
			kkt.Set(r.idx, n+me+k, r.sign)
		}
	}
	sol, err := mat.Solve(kkt, rhs)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return nil, nil, nil, err
		}
		return nil, nil, nil, fmt.Errorf("qp: KKT solve: %w", err)
	}
	return sol[:n], sol[n : n+me], sol[n+me:], nil
}

// sameWorkSet reports whether two working sets are identical including
// order (order determines multiplier rows).
func sameWorkSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assemble scatters working-set multipliers back to per-row duals.
func (s *activeSet) assemble(nu, lam []float64) *Solution {
	p := s.p
	sol := &Solution{
		X:         mat.CloneVec(s.x),
		EqDual:    mat.CloneVec(nu),
		IneqDual:  make([]float64, len(p.gin)),
		LowerDual: make([]float64, p.n),
		UpperDual: make([]float64, p.n),
	}
	for k, w := range s.work {
		r := &s.rows[w]
		l := lam[k]
		if l < 0 {
			l = 0 // within tolerance of zero
		}
		switch r.kind {
		case kindUser:
			sol.IneqDual[r.idx] = l
			sol.ActiveSet = append(sol.ActiveSet, r.idx)
		case kindLower:
			sol.LowerDual[r.idx] = l
		case kindUpper:
			sol.UpperDual[r.idx] = l
		}
	}
	sort.Ints(sol.ActiveSet)
	hx, _ := p.h.MulVec(sol.X)
	sol.Objective = 0.5*mat.Dot(sol.X, hx) + mat.Dot(p.c, sol.X)
	return sol
}
