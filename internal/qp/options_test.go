package qp

import (
	"errors"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIter != 2000 || o.Tol != 1e-8 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{MaxIter: 3, Tol: 1e-5}.withDefaults()
	if o.MaxIter != 3 || o.Tol != 1e-5 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

func TestIterLimitSurfaces(t *testing.T) {
	// With a one-iteration budget on a constrained problem the solver
	// must report ErrIterLimit.
	p := NewProblem(3)
	for i := 0; i < 3; i++ {
		_ = p.SetQuadCoeff(i, i, 2)
		_ = p.SetLinCoeff(i, -4)
		_ = p.SetBounds(i, 0, 1)
	}
	_, _ = p.AddInequality([]float64{1, 1, 1}, 1.5)
	_, err := SolveWith(p, Options{MaxIter: 1})
	if err == nil {
		t.Skip("solved in one iteration; nothing to assert")
	}
	if !errors.Is(err, ErrIterLimit) {
		t.Fatalf("want ErrIterLimit, got %v", err)
	}
}
