package qp

import (
	"math"
	"math/rand"
	"testing"
)

// randomConvexQP builds a strictly convex QP shaped like economic dispatch:
// diagonal positive-definite Hessian, one dense equality (the balance row),
// finite bounds, and sparse-gradient inequality rows, sized past
// kktSparseMinDim so the Schur path engages.
func randomConvexQP(r *rand.Rand) (*Problem, []int64) {
	n := kktSparseMinDim + r.Intn(16)
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		_ = p.SetQuadCoeff(j, j, 0.5+2*r.Float64())
		_ = p.SetLinCoeff(j, -3+6*r.Float64())
		lo := -1 + 2*r.Float64()
		_ = p.SetBounds(j, lo, lo+1+3*r.Float64())
	}
	ones := make([]float64, n)
	total := 0.0
	for j := 0; j < n; j++ {
		ones[j] = 1
		lo, hi := p.lower[j], p.upper[j]
		total += lo + (hi-lo)*r.Float64()
	}
	_, _ = p.AddEquality(ones, total)
	var keys []int64
	m := 2 + r.Intn(6)
	for i := 0; i < m; i++ {
		g := make([]float64, n)
		for j := 0; j < n; j++ {
			if r.Float64() < 0.3 {
				g[j] = -1 + 2*r.Float64()
			}
		}
		// Anchor the limit loosely above the box midpoint activity so rows
		// are plausible but not trivially slack.
		act := 0.0
		for j := 0; j < n; j++ {
			act += g[j] * (p.lower[j] + p.upper[j]) / 2
		}
		_, _ = p.AddInequality(g, act+0.2+r.Float64())
		keys = append(keys, int64(i))
	}
	return p, keys
}

// TestDifferentialSchurVsDenseKKT drives the bordered sparse KKT path and
// the dense factorization over randomized dispatch-shaped QPs: both must
// agree on feasibility, objective (1e-7), and the primal point.
func TestDifferentialSchurVsDenseKKT(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	solved := 0
	for trial := 0; trial < 150; trial++ {
		p, _ := randomConvexQP(r)
		dense, derr := SolveWith(p, Options{DenseKKT: true})
		sparse, serr := SolveWith(p, Options{})
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err %v vs sparse err %v", trial, derr, serr)
		}
		if derr != nil {
			continue
		}
		solved++
		if d := math.Abs(dense.Objective - sparse.Objective); d > 1e-7*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objective gap %g (dense %.12g sparse %.12g)",
				trial, d, dense.Objective, sparse.Objective)
		}
		for j := range dense.X {
			if math.Abs(dense.X[j]-sparse.X[j]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %.12g dense vs %.12g sparse", trial, j, dense.X[j], sparse.X[j])
			}
		}
	}
	if solved < 50 {
		t.Fatalf("only %d/150 trials solved; generator is degenerate", solved)
	}
	t.Logf("%d QPs differentially verified", solved)
}

// TestKKTCacheTransparency is the bit-level regression test for cross-solve
// factorization reuse: solving a sequence of problems that share structure
// but vary right-hand sides through one KKTCache must give results
// bit-identical to solving each with a fresh cache. Cached border columns,
// Schur dots, and Schur factorizations are all computed once and reused, so
// any drift here means the cache is not the pure memoization it claims.
func TestKKTCacheTransparency(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	build := func(shift float64) (*Problem, []int64) {
		// Same structure every call: n, H, bounds, gradients fixed by a
		// dedicated rng; only the inequality limits move with shift.
		rs := rand.New(rand.NewSource(99))
		p, keys := randomConvexQP(rs)
		for i := range p.hin {
			p.hin[i] += shift
		}
		return p, keys
	}
	shared := &KKTCache{}
	for trial := 0; trial < 30; trial++ {
		shift := 0.5 * r.Float64()
		pa, keys := build(shift)
		a, aerr := SolveWith(pa, Options{Cache: shared, RowKeys: keys})
		pb, keysB := build(shift)
		b, berr := SolveWith(pb, Options{Cache: &KKTCache{}, RowKeys: keysB})
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("trial %d: cached err %v vs fresh err %v", trial, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		if a.Objective != b.Objective {
			t.Fatalf("trial %d: cached objective %.17g != fresh %.17g", trial, a.Objective, b.Objective)
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("trial %d: cached x[%d] %.17g != fresh %.17g", trial, j, a.X[j], b.X[j])
			}
		}
		if a.Iterations != b.Iterations {
			t.Fatalf("trial %d: cached iterations %d != fresh %d", trial, a.Iterations, b.Iterations)
		}
	}
}

// TestKKTCacheShapeReset checks the cache self-invalidates when the problem
// shape changes (a misuse guard, not a supported workflow).
func TestKKTCacheShapeReset(t *testing.T) {
	shared := &KKTCache{}
	r := rand.New(rand.NewSource(5))
	p1, k1 := randomConvexQP(r)
	if _, err := SolveWith(p1, Options{Cache: shared, RowKeys: k1}); err != nil {
		t.Fatalf("first solve: %v", err)
	}
	var p2 *Problem
	var k2 []int64
	for {
		p2, k2 = randomConvexQP(r)
		if p2.n != p1.n {
			break
		}
	}
	sol2, err := SolveWith(p2, Options{Cache: shared, RowKeys: k2})
	if err != nil {
		t.Fatalf("second solve after shape change: %v", err)
	}
	ref, err := SolveWith(p2, Options{DenseKKT: true})
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if d := math.Abs(sol2.Objective - ref.Objective); d > 1e-7*(1+math.Abs(ref.Objective)) {
		t.Fatalf("objective after cache reset off by %g", d)
	}
}
