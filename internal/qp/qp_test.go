package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/mat"
)

const tol = 1e-6

func TestUnconstrainedMin(t *testing.T) {
	// min (x-3)² + (y+1)² → x=3, y=-1. H = 2I, c = (-6, 2).
	p := NewProblem(2)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetQuadCoeff(1, 1, 2)
	_ = p.SetLinCoeff(0, -6)
	_ = p.SetLinCoeff(1, 2)
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.X[0]-3) > tol || math.Abs(sol.X[1]+1) > tol {
		t.Fatalf("x = %v, want [3 -1]", sol.X)
	}
}

func TestBoundHitsOptimum(t *testing.T) {
	// min (x-3)² with x ≤ 2 → x=2.
	p := NewProblem(1)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetLinCoeff(0, -6)
	_ = p.SetBounds(0, math.Inf(-1), 2)
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.X[0]-2) > tol {
		t.Fatalf("x = %v, want 2", sol.X[0])
	}
	if sol.UpperDual[0] < tol {
		t.Fatalf("upper bound dual = %v, want > 0", sol.UpperDual[0])
	}
}

func TestEqualityConstrained(t *testing.T) {
	// min x² + y² s.t. x + y = 2 → x=y=1, duals ν = -2.
	p := NewProblem(2)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetQuadCoeff(1, 1, 2)
	if _, err := p.AddEquality([]float64{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.X[0]-1) > tol || math.Abs(sol.X[1]-1) > tol {
		t.Fatalf("x = %v, want [1 1]", sol.X)
	}
	if math.Abs(sol.Objective-2) > tol {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
	// Stationarity: Hx + c + Aᵀν = 0 → 2·1 + ν = 0 → ν = -2.
	if math.Abs(sol.EqDual[0]+2) > tol {
		t.Fatalf("eq dual = %v, want -2", sol.EqDual[0])
	}
}

func TestInequalityActive(t *testing.T) {
	// min (x-2)² + (y-2)² s.t. x + y ≤ 2 → x=y=1.
	p := NewProblem(2)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetQuadCoeff(1, 1, 2)
	_ = p.SetLinCoeff(0, -4)
	_ = p.SetLinCoeff(1, -4)
	if _, err := p.AddInequality([]float64{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.X[0]-1) > tol || math.Abs(sol.X[1]-1) > tol {
		t.Fatalf("x = %v, want [1 1]", sol.X)
	}
	if sol.IneqDual[0] < tol {
		t.Fatalf("ineq dual = %v, want > 0", sol.IneqDual[0])
	}
}

func TestInequalityInactive(t *testing.T) {
	// min (x-1)² s.t. x ≤ 100 → x=1 with zero dual.
	p := NewProblem(1)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetLinCoeff(0, -2)
	_, _ = p.AddInequality([]float64{1}, 100)
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.X[0]-1) > tol || sol.IneqDual[0] > tol {
		t.Fatalf("x = %v dual = %v", sol.X, sol.IneqDual)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetBounds(0, 0, 1)
	_, _ = p.AddInequality([]float64{-1}, -5) // x >= 5
	if _, err := Solve(p); err == nil {
		t.Fatal("want infeasibility error")
	}
}

func TestDispatchShapedQP(t *testing.T) {
	// Two generators with quadratic costs serving demand 10 under a tie
	// line limit: min p1² + 2p2² s.t. p1 + p2 = 10, 0 ≤ p ≤ 8.
	// Unconstrained split: p1 = 20/3, p2 = 10/3 (marginal costs equal).
	p := NewProblem(2)
	_ = p.SetQuadCoeff(0, 0, 2)
	_ = p.SetQuadCoeff(1, 1, 4)
	_ = p.SetBounds(0, 0, 8)
	_ = p.SetBounds(1, 0, 8)
	_, _ = p.AddEquality([]float64{1, 1}, 10)
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.X[0]-20.0/3) > 1e-5 || math.Abs(sol.X[1]-10.0/3) > 1e-5 {
		t.Fatalf("x = %v, want [6.667 3.333]", sol.X)
	}
}

func TestAPIErrors(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetQuadCoeff(5, 0, 1); err == nil {
		t.Fatal("want quad index error")
	}
	if err := p.SetLinCoeff(-1, 1); err == nil {
		t.Fatal("want lin index error")
	}
	if err := p.SetBounds(0, 2, 1); err == nil {
		t.Fatal("want inverted bound error")
	}
	if err := p.SetBounds(7, 0, 1); err == nil {
		t.Fatal("want bound index error")
	}
	if _, err := p.AddEquality([]float64{1}, 0); err == nil {
		t.Fatal("want equality length error")
	}
	if _, err := p.AddInequality([]float64{1}, 0); err == nil {
		t.Fatal("want inequality length error")
	}
	if p.NumVars() != 2 {
		t.Fatal("NumVars")
	}
}

// kktResidual measures stationarity: Hx + c + Aᵀν + Gᵀλ − μˡ + μᵘ.
func kktResidual(p *Problem, s *Solution) float64 {
	hx, _ := p.h.MulVec(s.X)
	r := mat.AxPlusY(1, hx, p.c)
	for e, a := range p.aeq {
		for j, v := range a {
			r[j] += s.EqDual[e] * v
		}
	}
	for i, g := range p.gin {
		for j, v := range g {
			r[j] += s.IneqDual[i] * v
		}
	}
	for j := 0; j < p.n; j++ {
		r[j] -= s.LowerDual[j]
		r[j] += s.UpperDual[j]
	}
	return mat.NormInf(r)
}

// randomQP builds a random strictly convex QP anchored at a feasible point.
func randomQP(r *rand.Rand) *Problem {
	n := 2 + r.Intn(5)
	p := NewProblem(n)
	for i := 0; i < n; i++ {
		_ = p.SetQuadCoeff(i, i, 0.5+2*r.Float64())
		_ = p.SetLinCoeff(i, -2+4*r.Float64())
		lo := -4 + 4*r.Float64()
		_ = p.SetBounds(i, lo, lo+1+4*r.Float64())
	}
	x0 := make([]float64, n)
	for i := range x0 {
		lo, hi := p.lower[i], p.upper[i]
		x0[i] = lo + (hi-lo)*r.Float64()
	}
	for k := 0; k < 1+r.Intn(3); k++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = -1 + 2*r.Float64()
		}
		act := mat.Dot(row, x0)
		if r.Intn(2) == 0 {
			_, _ = p.AddInequality(row, act+r.Float64())
		} else {
			_, _ = p.AddEquality(row, act)
		}
	}
	return p
}

// Property: solutions satisfy KKT stationarity, primal feasibility, dual
// feasibility, and complementary slackness.
func TestPropertyKKT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomQP(r)
		sol, err := Solve(p)
		if err != nil {
			return true // rare random infeasibility is acceptable
		}
		if kktResidual(p, sol) > 1e-5 {
			return false
		}
		for j := 0; j < p.n; j++ {
			if sol.X[j] < p.lower[j]-1e-6 || sol.X[j] > p.upper[j]+1e-6 {
				return false
			}
			if sol.LowerDual[j] < -1e-9 || sol.UpperDual[j] < -1e-9 {
				return false
			}
		}
		for i, g := range p.gin {
			act := mat.Dot(g, sol.X)
			if act > p.hin[i]+1e-6 {
				return false
			}
			if sol.IneqDual[i] < -1e-9 {
				return false
			}
			// Complementary slackness.
			if sol.IneqDual[i] > 1e-5 && p.hin[i]-act > 1e-4 {
				return false
			}
		}
		for e, a := range p.aeq {
			if math.Abs(mat.Dot(a, sol.X)-p.beq[e]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the QP optimum dominates random feasible perturbations projected
// back into the box (local optimality spot-check).
func TestPropertyOptimalityAgainstBoxPoints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		p := NewProblem(n)
		for i := 0; i < n; i++ {
			_ = p.SetQuadCoeff(i, i, 1+r.Float64())
			_ = p.SetLinCoeff(i, -1+2*r.Float64())
			_ = p.SetBounds(i, -2, 2)
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		obj := func(x []float64) float64 {
			hx, _ := p.h.MulVec(x)
			return 0.5*mat.Dot(x, hx) + mat.Dot(p.c, x)
		}
		for k := 0; k < 20; k++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = -2 + 4*r.Float64()
			}
			if obj(x) < sol.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
