// Package qp implements a primal active-set solver for convex quadratic
// programs:
//
//	minimize    ½·xᵀHx + cᵀx
//	subject to  A x  = b      (equality rows)
//	            G x ≤ h       (inequality rows)
//	            l ≤ x ≤ u     (bounds, folded into G internally)
//
// H must be symmetric positive semidefinite and positive definite on the
// feasible directions (true for economic dispatch with strictly convex
// generation costs). A feasible starting point is found with the lp package;
// subsequent iterations solve equality-constrained KKT systems via LU.
package qp

import (
	"errors"
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/telemetry"
)

// ErrIterLimit is returned when the active-set loop exceeds its budget.
var ErrIterLimit = errors.New("qp: iteration limit exceeded")

// ErrInfeasible is returned when no point satisfies the constraints.
var ErrInfeasible = errors.New("qp: infeasible")

// Problem is a convex QP under construction. Create with NewProblem.
type Problem struct {
	n     int
	h     *mat.Matrix
	c     []float64
	aeq   [][]float64
	beq   []float64
	gin   [][]float64
	hin   []float64
	lower []float64
	upper []float64
}

// NewProblem returns a QP with n variables, zero objective, and free bounds.
func NewProblem(n int) *Problem {
	p := &Problem{
		n:     n,
		h:     mat.New(n, n),
		c:     make([]float64, n),
		lower: make([]float64, n),
		upper: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.lower[i] = math.Inf(-1)
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// SetQuadCoeff sets H[i][j] (and H[j][i], keeping H symmetric).
func (p *Problem) SetQuadCoeff(i, j int, v float64) error {
	if i < 0 || i >= p.n || j < 0 || j >= p.n {
		return fmt.Errorf("qp: quad index (%d,%d) out of range", i, j)
	}
	p.h.Set(i, j, v)
	p.h.Set(j, i, v)
	return nil
}

// SetLinCoeff sets the linear objective coefficient of variable j.
func (p *Problem) SetLinCoeff(j int, v float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("qp: linear index %d out of range", j)
	}
	p.c[j] = v
	return nil
}

// SetBounds sets the bounds of variable j.
func (p *Problem) SetBounds(j int, lo, hi float64) error {
	if j < 0 || j >= p.n {
		return fmt.Errorf("qp: bound index %d out of range", j)
	}
	if lo > hi {
		return fmt.Errorf("qp: variable %d has lower bound %g > upper bound %g", j, lo, hi)
	}
	p.lower[j] = lo
	p.upper[j] = hi
	return nil
}

// AddEquality appends an equality row aᵀx = b and returns its index.
func (p *Problem) AddEquality(a []float64, b float64) (int, error) {
	if len(a) != p.n {
		return 0, fmt.Errorf("qp: equality row has %d coefficients, want %d", len(a), p.n)
	}
	row := make([]float64, p.n)
	copy(row, a)
	p.aeq = append(p.aeq, row)
	p.beq = append(p.beq, b)
	return len(p.aeq) - 1, nil
}

// AddInequality appends an inequality row gᵀx ≤ h and returns its index.
func (p *Problem) AddInequality(g []float64, h float64) (int, error) {
	if len(g) != p.n {
		return 0, fmt.Errorf("qp: inequality row has %d coefficients, want %d", len(g), p.n)
	}
	row := make([]float64, p.n)
	copy(row, g)
	p.gin = append(p.gin, row)
	p.hin = append(p.hin, h)
	return len(p.gin) - 1, nil
}

// Solution is the result of a successful Solve.
type Solution struct {
	// X is the optimal point.
	X []float64
	// Objective is ½xᵀHx + cᵀx at X.
	Objective float64
	// EqDual holds one multiplier per equality row (ν in H x + c + Aᵀν +
	// Gᵀλ = 0).
	EqDual []float64
	// IneqDual holds one non-negative multiplier per user inequality row.
	IneqDual []float64
	// LowerDual and UpperDual hold the non-negative multipliers of active
	// variable bounds.
	LowerDual []float64
	UpperDual []float64
	// Iterations is the number of active-set iterations performed.
	Iterations int
	// ActiveSet lists the user inequality rows (indices into the order
	// they were added) that are in the final working set, ascending. It
	// can seed a later solve of a nearby problem via Options.WarmSet —
	// the QP analogue of the lp package's basis reuse.
	ActiveSet []int
}

// Options tune the solver.
type Options struct {
	// MaxIter caps active-set iterations (default 2000).
	MaxIter int
	// Tol is the numeric tolerance (default 1e-8).
	Tol float64
	// Metrics, when non-nil, receives qp_* solve/iteration counters and
	// forwards to the feasibility LP's lp_* counters.
	Metrics *telemetry.Registry
	// WarmSet, when non-empty, lists user inequality rows to try first
	// when seeding the working set (e.g. Solution.ActiveSet from a
	// previous solve of a nearby problem). Rows are adopted only if they
	// are active at the feasible start point and keep the KKT system
	// nonsingular, so a stale warm set degrades to the cold seeding
	// order, never to a wrong answer. Note that within a single solve the
	// working set always carries over between iterations; WarmSet only
	// adds reuse across solves.
	WarmSet []int
	// DenseKKT forces every KKT system onto the dense factorization
	// instead of letting the solver pick the sparse LU by system size and
	// density; used for A/B measurement against dense baselines.
	DenseKKT bool
	// Cache, when non-nil, lets the sparse KKT path reuse factorization
	// work across solves of structurally identical problems: the caller
	// asserts that the Hessian, the equality-row gradients, the bound
	// structure, and the gradient behind every RowKeys identity are
	// unchanged since the cache was filled. Objective vectors and all
	// right-hand sides may differ. Requires RowKeys when user inequality
	// rows are present; ignored otherwise. Not safe for concurrent use.
	Cache *KKTCache
	// RowKeys assigns a stable identity in [0, 2²⁸) to each user
	// inequality row, parallel to AddInequality order, so the Cache can
	// recognize the same constraint across solves even when the row set
	// (and hence row positions) changes.
	RowKeys []int64
	// Workspace, when non-nil, supplies the active-set iteration's working
	// storage (row list, Schur right-hand-side and memo buffers, step
	// direction), reused across solves so a steady-state QP re-solve under a
	// warm KKTCache stays off the allocator. The feasibility LP deliberately
	// does not use it: its solution vector becomes the iterate and is
	// mutated in place, so it must own its storage. Results are
	// bit-identical with and without a workspace. Not safe for concurrent
	// use.
	Workspace *lp.Workspace
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// Solve solves the QP with default options.
func Solve(p *Problem) (*Solution, error) {
	return SolveWith(p, Options{})
}

// ineqRow is one generalized inequality (user row or bound) in gᵀx ≤ h form.
type ineqRow struct {
	g    []float64 // nil means a bound row described by (idx, sign)
	idx  int
	sign float64 // +1: x_idx ≤ h, −1: −x_idx ≤ h
	h    float64
	kind rowKind
}

type rowKind int

const (
	kindUser rowKind = iota + 1
	kindLower
	kindUpper
)

func (r *ineqRow) value(x []float64) float64 {
	if r.g != nil {
		return mat.Dot(r.g, x)
	}
	return r.sign * x[r.idx]
}

func (r *ineqRow) dirDot(d []float64) float64 {
	if r.g != nil {
		return mat.Dot(r.g, d)
	}
	return r.sign * d[r.idx]
}

// SolveWith solves the QP with explicit options.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	m := opts.Metrics
	if m != nil {
		m.Counter("qp_solves_total").Inc()
	}
	sc := scratchFrom(opts.Workspace)
	var rowBuf []ineqRow
	if sc != nil {
		rowBuf = sc.rows
	}
	rows := gatherIneqsInto(p, rowBuf)
	x, err := feasibleStart(p, opts)
	if err != nil {
		if sc != nil {
			sc.rows = rows
		}
		if m != nil && errors.Is(err, ErrInfeasible) {
			m.Counter("qp_infeasible_total").Inc()
		}
		return nil, err
	}
	var s *activeSet
	if sc != nil {
		s = sc.attach(p, rows, x, opts)
	} else {
		s = &activeSet{p: p, rows: rows, x: x, opts: opts}
	}
	sol, err := s.run()
	if sc != nil {
		sc.reclaim(s)
	}
	if m != nil {
		if sol != nil {
			m.Counter("qp_iterations_total").Add(int64(sol.Iterations))
			m.Histogram("qp_iterations", telemetry.IterBuckets).Observe(float64(sol.Iterations))
		}
		if err != nil {
			m.Counter("qp_errors_total").Inc()
		}
	}
	return sol, err
}

// gatherIneqs folds user inequalities and finite bounds into one row list.
func gatherIneqs(p *Problem) []ineqRow { return gatherIneqsInto(p, nil) }

// gatherIneqsInto is gatherIneqs appending into buf's backing array.
func gatherIneqsInto(p *Problem, buf []ineqRow) []ineqRow {
	rows := buf[:0]
	if cap(rows) == 0 {
		rows = make([]ineqRow, 0, len(p.gin)+2*p.n)
	}
	for i, g := range p.gin {
		rows = append(rows, ineqRow{g: g, h: p.hin[i], kind: kindUser, idx: i})
	}
	for j := 0; j < p.n; j++ {
		if !math.IsInf(p.upper[j], 1) {
			rows = append(rows, ineqRow{idx: j, sign: 1, h: p.upper[j], kind: kindUpper})
		}
		if !math.IsInf(p.lower[j], -1) {
			rows = append(rows, ineqRow{idx: j, sign: -1, h: -p.lower[j], kind: kindLower})
		}
	}
	return rows
}

// feasibleStart finds any point satisfying the constraints via the LP solver.
func feasibleStart(p *Problem, opts Options) ([]float64, error) {
	lpOpts := lp.Options{Metrics: opts.Metrics}
	prob := lp.NewProblem(p.n)
	for j := 0; j < p.n; j++ {
		if err := prob.SetBounds(j, p.lower[j], p.upper[j]); err != nil {
			return nil, fmt.Errorf("qp: %w", err)
		}
	}
	for i, a := range p.aeq {
		if _, err := prob.AddConstraint(a, lp.EQ, p.beq[i]); err != nil {
			return nil, fmt.Errorf("qp: %w", err)
		}
	}
	for i, g := range p.gin {
		if _, err := prob.AddConstraint(g, lp.LE, p.hin[i]); err != nil {
			return nil, fmt.Errorf("qp: %w", err)
		}
	}
	// Minimizing the linear part of the QP objective gives a start point
	// that is usually close to the QP optimum's active set.
	_ = prob.SetObjective(p.c, false)
	sol, err := lp.SolveWith(prob, lpOpts)
	if err != nil {
		// A cᵀx phase can be unbounded even when the QP is well posed;
		// retry with a pure feasibility objective.
		prob.SetMaximize(false)
		zero := make([]float64, p.n)
		_ = prob.SetObjective(zero, false)
		sol, err = lp.SolveWith(prob, lpOpts)
		if err != nil {
			return nil, fmt.Errorf("qp: feasibility LP failed: %w", err)
		}
	}
	switch sol.Status {
	case lp.Optimal:
		return sol.X, nil
	case lp.Unbounded:
		zero := make([]float64, p.n)
		_ = prob.SetObjective(zero, false)
		sol, err = lp.SolveWith(prob, lpOpts)
		if err != nil {
			return nil, fmt.Errorf("qp: feasibility LP failed: %w", err)
		}
		if sol.Status != lp.Optimal {
			return nil, ErrInfeasible
		}
		return sol.X, nil
	default:
		return nil, ErrInfeasible
	}
}
