package ems

import "fmt"

// IngestDLR is the EMS's legitimate update path: SCADA-delivered dynamic
// ratings (MVA, keyed by line index) are written into the line objects. The
// write set is taint-tracked — the offline analysis uses exactly this to
// narrow the sensitive-region search (the "memory taint tracking" stage of
// the paper's Fig. 6).
func (p *Process) IngestDLR(values map[int]float64) error {
	width := 4
	if p.Profile.Rating64 {
		width = 8
	}
	for li, v := range values {
		if li < 0 || li >= len(p.ratingAddrs) {
			return fmt.Errorf("ems: IngestDLR: line index %d out of range", li)
		}
		addr := p.ratingAddrs[li]
		if err := p.storeRating(addr, v); err != nil {
			return fmt.Errorf("ems: IngestDLR: %w", err)
		}
		p.taint = append(p.taint, taintRange{start: addr, end: addr + uint64(width)})
	}
	return nil
}

// Tainted reports whether an address lies inside any input-derived range.
func (p *Process) Tainted(addr uint64) bool {
	for _, t := range p.taint {
		if addr >= t.start && addr < t.end {
			return true
		}
	}
	return false
}

// TaintCount returns the number of recorded taint ranges.
func (p *Process) TaintCount() int { return len(p.taint) }

// ClearTaint forgets the recorded ranges (e.g. between analysis phases).
func (p *Process) ClearTaint() { p.taint = nil }
