package ems

import "fmt"

// StorageKind is how a vendor's EMS organizes its component objects.
type StorageKind int

// Storage kinds.
const (
	// StorageLinkedList keeps objects on a doubly linked list (PowerWorld
	// style — the paper's Fig. 7b).
	StorageLinkedList StorageKind = iota + 1
	// StoragePtrArray keeps a contiguous array of object pointers.
	StoragePtrArray
)

func (s StorageKind) String() string {
	switch s {
	case StorageLinkedList:
		return "linked-list"
	case StoragePtrArray:
		return "pointer-array"
	default:
		return fmt.Sprintf("StorageKind(%d)", int(s))
	}
}

// Profile describes one vendor's memory organization: class layouts, rating
// encoding, container choice, and the amount of unrelated state that makes
// naive value scanning noisy.
type Profile struct {
	// Name identifies the EMS package.
	Name string
	// LineClass, BusClass, and GenClass are the vendor's object layouts.
	LineClass, BusClass, GenClass Class
	// Rating64 selects float64 rating storage (float32 otherwise).
	Rating64 bool
	// Storage selects the object container.
	Storage StorageKind
	// ChunkBytes is the heap-chunk allocation size (PowerWorld allocates
	// 0x13FFF0-byte blocks via VirtualAlloc per the paper); 0 means one
	// object per allocation region cluster.
	ChunkBytes int
	// DecoyVTables is how many unrelated classes the loaded binary
	// carries (Table IV's vfTable column).
	DecoyVTables int
	// DecoyInstances is how many heap objects of decoy classes exist.
	DecoyInstances int
	// DecoyValueCopies is how many stray copies of rating-like float
	// patterns litter the heap (drives Table III's #Hits ≫ #Relevant).
	DecoyValueCopies int
}

// lineClass builds a vendor line-object layout with the rating at the given
// offset.
func lineClass(name string, size, ratingOff, ratingSize, numVirt int, withList bool, nameOff int) Class {
	c := Class{
		Name: name, Size: size, NumVirtuals: numVirt,
		Fields: []Field{
			{Name: "vfptr", Kind: FieldVfptr, Offset: 0, Size: _ptrSize},
			{Name: "rating", Kind: FieldRating, Offset: ratingOff, Size: ratingSize},
		},
	}
	if withList {
		c.Fields = append(c.Fields,
			Field{Name: "prev", Kind: FieldPrev, Offset: _ptrSize, Size: _ptrSize},
			Field{Name: "next", Kind: FieldNext, Offset: 2 * _ptrSize, Size: _ptrSize},
		)
	}
	if nameOff > 0 {
		c.Fields = append(c.Fields,
			Field{Name: "name", Kind: FieldNamePtr, Offset: nameOff, Size: _ptrSize})
	}
	// A fixed status word gives the intra-class predicate something to
	// pin (the paper's "candidate_addr + 0x08 stores 0x00000001").
	c.Fields = append(c.Fields,
		Field{Name: "status", Kind: FieldConstU32, Offset: size - 8, Size: 4, Const: 1})
	return c
}

func simpleClass(name string, size, numVirt int) Class {
	return Class{
		Name: name, Size: size, NumVirtuals: numVirt,
		Fields: []Field{
			{Name: "vfptr", Kind: FieldVfptr, Offset: 0, Size: _ptrSize},
			{Name: "status", Kind: FieldConstU32, Offset: size - 8, Size: 4, Const: 1},
		},
	}
}

// Profiles returns the five vendor profiles evaluated in the paper
// (Section VI, Tables III–IV), each with a distinct memory organization.
func Profiles() []Profile {
	return []Profile{
		PowerWorldProfile(),
		NEPLANProfile(),
		PowerFactoryProfile(),
		PowerToolsProfile(),
		SmartGridToolboxProfile(),
	}
}

// PowerWorldProfile mimics the paper's primary target: float32 ratings at
// offset 0x24 of TTRLine objects on a doubly linked list, with large
// VirtualAlloc'd heap chunks and a very large program-wide vtable count.
func PowerWorldProfile() Profile {
	return Profile{
		Name:      "PowerWorld",
		LineClass: lineClass("TTRLine", 0x60, 0x24, 4, 8, true, 0x30),
		BusClass:  lineClass("TBus", 0x50, 0x20, 4, 6, true, 0x28),
		GenClass:  lineClass("TGen", 0x58, 0x28, 4, 6, true, 0x30),
		Rating64:  false,
		Storage:   StorageLinkedList,
		// The paper reports 0x13FFF0-byte VirtualAlloc blocks; scaled
		// down so tests stay light while preserving multi-object chunks.
		ChunkBytes:       0x4000,
		DecoyVTables:     8527 - 3,
		DecoyInstances:   600,
		DecoyValueCopies: 140,
	}
}

// NEPLANProfile uses float64 ratings in larger objects on a linked list.
func NEPLANProfile() Profile {
	return Profile{
		Name:             "NEPLAN",
		LineClass:        lineClass("CNepLine", 0x80, 0x30, 8, 10, true, 0x48),
		BusClass:         lineClass("CNepNode", 0x70, 0x28, 8, 8, true, 0x40),
		GenClass:         lineClass("CNepGen", 0x78, 0x38, 8, 8, true, 0x48),
		Rating64:         true,
		Storage:          StorageLinkedList,
		ChunkBytes:       0x8000,
		DecoyVTables:     6549 - 3,
		DecoyInstances:   400,
		DecoyValueCopies: 90,
	}
}

// PowerFactoryProfile stores objects behind a pointer array.
func PowerFactoryProfile() Profile {
	return Profile{
		Name:             "PowerFactory",
		LineClass:        lineClass("ElmLne", 0x70, 0x18, 8, 12, false, 0x50),
		BusClass:         lineClass("ElmTerm", 0x60, 0x20, 8, 10, false, 0x48),
		GenClass:         lineClass("ElmSym", 0x68, 0x28, 8, 10, false, 0x50),
		Rating64:         true,
		Storage:          StoragePtrArray,
		ChunkBytes:       0,
		DecoyVTables:     110 - 3,
		DecoyInstances:   120,
		DecoyValueCopies: 60,
	}
}

// PowerToolsProfile mimics the open-source Powertools package: lean C++
// objects, few virtuals, float64 matrices (the paper's Fig. 8c corrupts its
// branch-table doubles).
func PowerToolsProfile() Profile {
	return Profile{
		Name:             "Powertools",
		LineClass:        lineClass("Arc", 0x48, 0x20, 8, 2, true, 0),
		BusClass:         lineClass("Node", 0x40, 0x18, 8, 2, true, 0),
		GenClass:         lineClass("Gen", 0x40, 0x20, 8, 2, true, 0),
		Rating64:         true,
		Storage:          StorageLinkedList,
		ChunkBytes:       0x2000,
		DecoyVTables:     0, // the paper reports only 3 vtables total
		DecoyInstances:   30,
		DecoyValueCopies: 25,
	}
}

// SmartGridToolboxProfile is the open-source C++14 library target.
func SmartGridToolboxProfile() Profile {
	return Profile{
		Name:             "SmartGridToolbox",
		LineClass:        lineClass("CommonBranch", 0x68, 0x28, 8, 6, false, 0x40),
		BusClass:         lineClass("Bus", 0x58, 0x20, 8, 6, false, 0x38),
		GenClass:         lineClass("GenericGen", 0x60, 0x30, 8, 6, false, 0x40),
		Rating64:         true,
		Storage:          StoragePtrArray,
		ChunkBytes:       0,
		DecoyVTables:     194 - 3,
		DecoyInstances:   150,
		DecoyValueCopies: 45,
	}
}

// ProfileByName resolves a vendor profile by (case-sensitive) name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("ems: unknown EMS profile %q", name)
}
