package ems

import (
	"crypto/sha256"
	"fmt"

	"github.com/edsec/edattack/internal/dispatch"
)

// IntegrityMonitor implements the paper's first mitigation (Section VII-i,
// "protection of sensitive data"): the sensitive parameter block is
// fingerprinted after each *legitimate* update, and the control loop
// verifies the fingerprint before consuming the parameters. A memory
// corruption that bypasses the update path — exactly what the exploit does
// — breaks the fingerprint.
//
// The monitor watches the line-rating fields of a process. In a hardened
// deployment the baseline would live in an enclave (the paper suggests
// SGX); here it lives outside the simulated address space, which models the
// same trust split.
type IntegrityMonitor struct {
	proc     *Process
	baseline [32]byte
	armed    bool
}

// NewIntegrityMonitor attaches a monitor to a process. Call Arm after every
// legitimate parameter update.
func NewIntegrityMonitor(p *Process) *IntegrityMonitor {
	return &IntegrityMonitor{proc: p}
}

// snapshot hashes the current bytes of every rating field.
func (m *IntegrityMonitor) snapshot() ([32]byte, error) {
	h := sha256.New()
	width := 4
	if m.proc.Profile.Rating64 {
		width = 8
	}
	for _, addr := range m.proc.ratingAddrs {
		b, err := m.proc.Image.Read(addr, width)
		if err != nil {
			return [32]byte{}, fmt.Errorf("ems: integrity snapshot: %w", err)
		}
		h.Write(b)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// Arm records the current parameter block as the trusted baseline.
func (m *IntegrityMonitor) Arm() error {
	s, err := m.snapshot()
	if err != nil {
		return err
	}
	m.baseline = s
	m.armed = true
	return nil
}

// Check reports whether the parameter block still matches the baseline.
// It returns an error when the monitor was never armed.
func (m *IntegrityMonitor) Check() (intact bool, err error) {
	if !m.armed {
		return false, fmt.Errorf("ems: integrity monitor not armed")
	}
	s, err := m.snapshot()
	if err != nil {
		return false, err
	}
	return s == m.baseline, nil
}

// GuardedStep is the hardened control loop: verify the parameter block,
// then dispatch. It refuses to dispatch on a fingerprint mismatch.
func (c *Controller) GuardedStep(m *IntegrityMonitor) (*ControllerStepResult, error) {
	intact, err := m.Check()
	if err != nil {
		return nil, err
	}
	if !intact {
		return &ControllerStepResult{TamperDetected: true}, nil
	}
	res, err := c.Step()
	if err != nil {
		return nil, err
	}
	return &ControllerStepResult{Dispatch: res}, nil
}

// ControllerStepResult is the outcome of a guarded control cycle.
type ControllerStepResult struct {
	// TamperDetected means the integrity check failed and no dispatch was
	// issued.
	TamperDetected bool
	// Dispatch is the issued dispatch when the check passed.
	Dispatch *dispatch.Result
}
