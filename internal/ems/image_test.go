package ems

import (
	"bytes"
	"errors"
	"testing"
)

func TestMapAndRW(t *testing.T) {
	im := NewImage()
	r, err := im.Map("heap", 0x1000, 0x100, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 0x100 || r.End() != 0x1100 {
		t.Fatalf("region geometry: %d %#x", r.Size(), r.End())
	}
	if err := im.WriteU32(0x1010, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := im.ReadU32(0x1010)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("roundtrip: %#x %v", v, err)
	}
}

func TestMapOverlapRejected(t *testing.T) {
	im := NewImage()
	if _, err := im.Map("a", 0x1000, 0x100, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Map("b", 0x1080, 0x100, PermRead); !errors.Is(err, ErrRegionExists) {
		t.Fatalf("want ErrRegionExists, got %v", err)
	}
	if _, err := im.Map("c", 0x1000, -1, PermRead); err == nil {
		t.Fatal("want size error")
	}
}

func TestUnmappedAccess(t *testing.T) {
	im := NewImage()
	if _, err := im.Read(0x5000, 4); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("want ErrBadAddress, got %v", err)
	}
	if err := im.Write(0x5000, []byte{1}); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("want ErrBadAddress, got %v", err)
	}
}

func TestWXPermissions(t *testing.T) {
	im := NewImage()
	if _, err := im.Map(".text", 0x1000, 0x100, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	// Code is not writable — W^X holds.
	if err := im.WriteU32(0x1000, 1); !errors.Is(err, ErrPermission) {
		t.Fatalf("want ErrPermission writing code, got %v", err)
	}
	// Unreadable region cannot be read.
	if _, err := im.Map("guard", 0x3000, 0x100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Read(0x3000, 4); !errors.Is(err, ErrPermission) {
		t.Fatalf("want ErrPermission, got %v", err)
	}
}

func TestReadSpanningEnd(t *testing.T) {
	im := NewImage()
	if _, err := im.Map("a", 0x1000, 0x10, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Read(0x100C, 8); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("cross-boundary read must fail, got %v", err)
	}
}

func TestFloatRoundtrips(t *testing.T) {
	im := NewImage()
	if _, err := im.Map("h", 0x1000, 0x40, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := im.WriteF32(0x1000, 1.5); err != nil {
		t.Fatal(err)
	}
	f32, err := im.ReadF32(0x1000)
	if err != nil || f32 != 1.5 {
		t.Fatalf("f32 roundtrip: %v %v", f32, err)
	}
	// The paper's canonical example: 1.5f is 0x3FC00000.
	u, _ := im.ReadU32(0x1000)
	if u != 0x3FC00000 {
		t.Fatalf("1.5f bits = %#x, want 0x3FC00000", u)
	}
	if err := im.WriteF64(0x1008, 2.4); err != nil {
		t.Fatal(err)
	}
	f64, err := im.ReadF64(0x1008)
	if err != nil || f64 != 2.4 {
		t.Fatalf("f64 roundtrip: %v %v", f64, err)
	}
	if err := im.WriteU64(0x1010, 0x123456789A); err != nil {
		t.Fatal(err)
	}
	u64, err := im.ReadU64(0x1010)
	if err != nil || u64 != 0x123456789A {
		t.Fatalf("u64 roundtrip: %#x %v", u64, err)
	}
}

func TestScan(t *testing.T) {
	im := NewImage()
	if _, err := im.Map("rw", 0x1000, 0x100, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Map("ro", 0x3000, 0x100, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Map("na", 0x5000, 0x100, 0); err != nil {
		t.Fatal(err)
	}
	pat := F32Bytes(1.5)
	_ = im.WriteF32(0x1004, 1.5)
	_ = im.WriteF32(0x1050, 1.5)
	// Plant a copy in the read-only region directly.
	ro := im.Regions()[1]
	copy(ro.data[0x10:], pat)

	hits := im.Scan(pat)
	if len(hits) != 3 {
		t.Fatalf("Scan hits = %v, want 3", hits)
	}
	w := im.ScanWritable(pat)
	if len(w) != 2 {
		t.Fatalf("ScanWritable hits = %v, want 2", w)
	}
	if len(im.Scan(nil)) != 0 {
		t.Fatal("empty pattern must yield nothing")
	}
}

func TestF32F64Bytes(t *testing.T) {
	if !bytes.Equal(F32Bytes(1.5), []byte{0x00, 0x00, 0xC0, 0x3F}) {
		t.Fatalf("F32Bytes(1.5) = % X", F32Bytes(1.5))
	}
	if len(F64Bytes(2.5)) != 8 {
		t.Fatal("F64Bytes width")
	}
}

func TestPermString(t *testing.T) {
	if (PermRead | PermWrite).String() != "rw-" {
		t.Fatalf("Perm string = %q", (PermRead | PermWrite).String())
	}
	if (PermRead | PermExec).String() != "r-x" {
		t.Fatalf("Perm string = %q", (PermRead | PermExec).String())
	}
}
