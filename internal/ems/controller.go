package ems

import (
	"fmt"

	"github.com/edsec/edattack/internal/dispatch"
)

// Controller is the EMS's economic-dispatch loop: each Step reads the line
// ratings out of the process's live objects — the memory the exploit
// corrupts — and dispatches against them. It is the victim side of the
// paper's Fig. 8 case study: after corruption, the *legitimate, unmodified*
// control code produces unsafe setpoints because its in-memory parameters
// lie.
type Controller struct {
	proc  *Process
	model *dispatch.Model
}

// NewController builds the dispatch loop over a process.
func NewController(p *Process) (*Controller, error) {
	model, err := dispatch.BuildModel(p.Net)
	if err != nil {
		return nil, fmt.Errorf("ems: controller model: %w", err)
	}
	return &Controller{proc: p, model: model}, nil
}

// Model exposes the controller's dispatch model (for evaluation harnesses).
func (c *Controller) Model() *dispatch.Model { return c.model }

// Step runs one economic-dispatch cycle using the ratings currently in
// process memory.
func (c *Controller) Step() (*dispatch.Result, error) {
	ratings, err := c.proc.ReadRatings()
	if err != nil {
		return nil, fmt.Errorf("ems: controller rating read: %w", err)
	}
	res, err := c.model.Solve(ratings)
	if err != nil {
		_ = c.proc.Journal.Append("ems.redispatch", map[string]any{
			"feasible": false, "error": err.Error(),
		})
		return nil, fmt.Errorf("ems: controller dispatch: %w", err)
	}
	_ = c.proc.Journal.Append("ems.redispatch", map[string]any{
		"feasible": true, "cost": res.Cost, "binding_lines": len(res.Binding),
	})
	return res, nil
}

// StepAndEvaluate runs one cycle and then measures the dispatch against the
// supplied true ratings under the nonlinear (AC) model — the pre/post
// comparison of Fig. 8.
func (c *Controller) StepAndEvaluate(trueRatings []float64) (*dispatch.Result, *dispatch.ACEvaluation, error) {
	res, err := c.Step()
	if err != nil {
		return nil, nil, err
	}
	ev, err := dispatch.EvaluateAC(c.proc.Net, res.P, trueRatings)
	if err != nil {
		return res, nil, err
	}
	return res, ev, nil
}

// StepACAware runs the production dispatch loop — DC dispatch iteratively
// tightened against AC feedback so realized loadings respect whatever
// ratings the process memory currently holds — and then scores the result
// against the supplied true ratings. This is the Fig. 8 comparison: the
// pre-attack state is safe by construction; after memory corruption the
// same loop keeps the system "safe" only against the lying ratings.
func (c *Controller) StepACAware(trueRatings []float64) (*dispatch.Result, *dispatch.ACEvaluation, error) {
	believed, err := c.proc.ReadRatings()
	if err != nil {
		return nil, nil, fmt.Errorf("ems: controller rating read: %w", err)
	}
	res, _, err := c.model.SolveACAware(c.proc.Net, believed, 0)
	if err != nil {
		_ = c.proc.Journal.Append("ems.redispatch", map[string]any{
			"feasible": false, "ac_aware": true, "error": err.Error(),
		})
		return nil, nil, fmt.Errorf("ems: AC-aware dispatch: %w", err)
	}
	_ = c.proc.Journal.Append("ems.redispatch", map[string]any{
		"feasible": true, "ac_aware": true, "cost": res.Cost,
	})
	ev, err := dispatch.EvaluateAC(c.proc.Net, res.P, trueRatings)
	if err != nil {
		return res, nil, err
	}
	return res, ev, nil
}
