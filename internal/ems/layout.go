package ems

import (
	"fmt"
	"math/rand"
)

// FieldKind describes the role of one class member.
type FieldKind int

// Field kinds.
const (
	// FieldVfptr is the virtual-function-table pointer (always offset 0
	// in our single-inheritance layouts).
	FieldVfptr FieldKind = iota + 1
	// FieldRating is the target parameter: the line's dynamic rating.
	FieldRating
	// FieldPrev and FieldNext are doubly-linked-list pointers.
	FieldPrev
	FieldNext
	// FieldNamePtr points to a NUL-terminated identifier string.
	FieldNamePtr
	// FieldConstU32 holds a fixed 32-bit constant (status flags etc.).
	FieldConstU32
	// FieldScratch is uninitialized/irrelevant storage.
	FieldScratch
)

// Field is one member of a class layout.
type Field struct {
	// Name is the member identifier (for diagnostics).
	Name string
	// Kind is the member role.
	Kind FieldKind
	// Offset is the byte offset within the object.
	Offset int
	// Size is the member size in bytes.
	Size int
	// Const is the value for FieldConstU32 members.
	Const uint32
}

// Class is an object layout, the unit the forensics pass recovers.
type Class struct {
	// Name is the (reverse-engineered) class name, e.g. "TTRLine".
	Name string
	// Size is the instance size in bytes.
	Size int
	// NumVirtuals is the vtable entry count.
	NumVirtuals int
	// Fields are the member layouts.
	Fields []Field
}

// FieldByKind returns the first field of the given kind, or nil.
func (c *Class) FieldByKind(k FieldKind) *Field {
	for i := range c.Fields {
		if c.Fields[i].Kind == k {
			return &c.Fields[i]
		}
	}
	return nil
}

// validate checks field bounds and overlaps loosely (fields must fit).
func (c *Class) validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("ems: class %q has size %d", c.Name, c.Size)
	}
	if c.NumVirtuals <= 0 {
		return fmt.Errorf("ems: class %q has no virtual functions", c.Name)
	}
	for _, f := range c.Fields {
		if f.Offset < 0 || f.Offset+f.Size > c.Size {
			return fmt.Errorf("ems: class %q field %q [%d,%d) outside size %d",
				c.Name, f.Name, f.Offset, f.Offset+f.Size, c.Size)
		}
	}
	if c.FieldByKind(FieldVfptr) == nil {
		return fmt.Errorf("ems: class %q has no vfptr", c.Name)
	}
	return nil
}

// Binary is the simulated loaded executable: read-only code and read-only
// vtable data, with the symbol-level ground truth an offline analyst would
// reconstruct.
type Binary struct {
	// Text and RData are the executable and read-only data regions.
	Text, RData *Region
	// VTables maps class name → vtable address in RData.
	VTables map[string]uint64
	// VTableAddrs is every vtable address (including decoy classes), the
	// denominator of Table IV's vfTable column.
	VTableAddrs []uint64
	// FuncPrologue maps function address → its first instruction bytes
	// (the content a code-pointer predicate pins).
	FuncPrologue map[uint64][]byte
}

// prologues are realistic IA-32/x86-64 function openings; the paper's
// example pins "53 56 8B F2" (push ebx; push esi; mov esi, edx).
var _prologues = [][]byte{
	{0x53, 0x56, 0x8B, 0xF2},             // push ebx; push esi; mov esi,edx
	{0x55, 0x8B, 0xEC},                   // push ebp; mov ebp,esp
	{0x53, 0x56, 0x57, 0x8B, 0xD8},       // push ebx/esi/edi; mov ebx,eax
	{0x48, 0x83, 0xEC, 0x28},             // sub rsp, 0x28
	{0x40, 0x53, 0x48, 0x83, 0xEC, 0x20}, // push rbx; sub rsp,0x20
	{0x56, 0x57, 0x8B, 0xF9},             // push esi; push edi; mov edi,ecx
}

const (
	_ptrSize      = 8
	_funcBlobSize = 48
)

// buildBinary lays out a code section with a pool of functions and one
// vtable per class (real and decoy) in read-only data.
func buildBinary(im *Image, rng *rand.Rand, textBase, rdataBase uint64, classes []Class, decoyVTables int) (*Binary, error) {
	// Function pool: enough for every class to draw distinct-ish entries,
	// shared across decoy vtables like real programs share impls.
	poolSize := 64
	for _, c := range classes {
		poolSize += c.NumVirtuals
	}
	textSize := poolSize * _funcBlobSize
	text, err := im.Map(".text", textBase, textSize, PermRead|PermExec)
	if err != nil {
		return nil, err
	}
	funcAddrs := make([]uint64, poolSize)
	prologue := make(map[uint64][]byte, poolSize)
	for i := 0; i < poolSize; i++ {
		addr := text.Base + uint64(i*_funcBlobSize)
		p := _prologues[rng.Intn(len(_prologues))]
		blob := make([]byte, _funcBlobSize)
		copy(blob, p)
		for k := len(p); k < _funcBlobSize; k++ {
			blob[k] = byte(rng.Intn(256))
		}
		copy(text.data[i*_funcBlobSize:], blob)
		funcAddrs[i] = addr
		prologue[addr] = append([]byte(nil), p...)
	}

	// Vtables: the named classes first, then decoys.
	totalVT := len(classes) + decoyVTables
	entries := 0
	for _, c := range classes {
		entries += c.NumVirtuals
	}
	entries += decoyVTables * 4
	// One RTTI/offset-to-top slot precedes each vtable's function array,
	// as in real C++ ABIs; it also delimits adjacent vtables.
	entries += totalVT
	rdata, err := im.Map(".rdata", rdataBase, entries*_ptrSize+16, PermRead)
	if err != nil {
		return nil, err
	}
	bin := &Binary{
		Text: text, RData: rdata,
		VTables:      make(map[string]uint64, len(classes)),
		VTableAddrs:  make([]uint64, 0, totalVT),
		FuncPrologue: prologue,
	}
	off := 0
	writePtr := func(p uint64) {
		for k := 0; k < _ptrSize; k++ {
			rdata.data[off+k] = byte(p >> (8 * k))
		}
		off += _ptrSize
	}
	for _, c := range classes {
		writePtr(0) // RTTI slot
		vt := rdata.Base + uint64(off)
		bin.VTables[c.Name] = vt
		bin.VTableAddrs = append(bin.VTableAddrs, vt)
		for v := 0; v < c.NumVirtuals; v++ {
			writePtr(funcAddrs[rng.Intn(poolSize)])
		}
	}
	for d := 0; d < decoyVTables; d++ {
		writePtr(0) // RTTI slot
		vt := rdata.Base + uint64(off)
		bin.VTableAddrs = append(bin.VTableAddrs, vt)
		for v := 0; v < 4; v++ {
			writePtr(funcAddrs[rng.Intn(poolSize)])
		}
	}
	return bin, nil
}
