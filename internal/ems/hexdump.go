package ems

import (
	"fmt"
	"strings"
)

// This file renders the forensic artifacts the paper presents in Fig. 8:
// hexdump panels of the memory regions holding the sensitive parameters,
// before and after corruption, with the changed words highlighted.

// HexDump renders n bytes at addr in the classic 16-byte-row format used by
// the paper's figures. Unreadable ranges render as an error note rather
// than failing, since dump tooling must degrade gracefully.
func HexDump(im *Image, addr uint64, n int) string {
	var b strings.Builder
	for row := 0; row < n; row += 16 {
		rowAddr := addr + uint64(row)
		fmt.Fprintf(&b, "%012x ", rowAddr)
		count := 16
		if n-row < 16 {
			count = n - row
		}
		data, err := im.Read(rowAddr, count)
		if err != nil {
			fmt.Fprintf(&b, " <unmapped: %v>\n", err)
			continue
		}
		for i := 0; i < 16; i++ {
			if i == 8 {
				b.WriteByte(' ')
			}
			if i < len(data) {
				fmt.Fprintf(&b, " %02x", data[i])
			} else {
				b.WriteString("   ")
			}
		}
		b.WriteString("  |")
		for _, c := range data {
			if c >= 0x20 && c <= 0x7E {
				b.WriteByte(c)
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Snapshot captures the bytes of a range for later diffing.
type Snapshot struct {
	// Addr is the captured range's start.
	Addr uint64
	// Data is the captured content.
	Data []byte
}

// Capture snapshots n bytes at addr.
func Capture(im *Image, addr uint64, n int) (*Snapshot, error) {
	data, err := im.Read(addr, n)
	if err != nil {
		return nil, fmt.Errorf("ems: capture: %w", err)
	}
	return &Snapshot{Addr: addr, Data: data}, nil
}

// DiffEntry is one changed byte range between two snapshots.
type DiffEntry struct {
	// Addr is the start of the changed run.
	Addr uint64
	// Before and After are the differing bytes.
	Before, After []byte
}

// Diff compares a snapshot against the current memory content and returns
// the changed runs — the paper's Fig. 8 presentation reduces to exactly
// this: which words of the parameter block moved.
func (s *Snapshot) Diff(im *Image) ([]DiffEntry, error) {
	now, err := im.Read(s.Addr, len(s.Data))
	if err != nil {
		return nil, fmt.Errorf("ems: diff: %w", err)
	}
	var out []DiffEntry
	i := 0
	for i < len(s.Data) {
		if s.Data[i] == now[i] {
			i++
			continue
		}
		start := i
		for i < len(s.Data) && s.Data[i] != now[i] {
			i++
		}
		out = append(out, DiffEntry{
			Addr:   s.Addr + uint64(start),
			Before: append([]byte(nil), s.Data[start:i]...),
			After:  append([]byte(nil), now[start:i]...),
		})
	}
	return out, nil
}

// FormatDiff renders diff entries as paper-style annotations.
func FormatDiff(entries []DiffEntry) string {
	if len(entries) == 0 {
		return "(no changes)\n"
	}
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%012x: % x → % x\n", e.Addr, e.Before, e.After)
	}
	return b.String()
}
