package ems

import (
	"fmt"
	"math/rand"

	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/telemetry"
)

// Process is a simulated running EMS: a randomized address space populated
// with the vendor's object graph for a loaded network model, plus the
// ground truth that tests and accuracy tables are scored against.
type Process struct {
	// Image is the simulated address space.
	Image *Image
	// Profile is the vendor memory organization.
	Profile Profile
	// Bin is the loaded binary (code + vtables).
	Bin *Binary
	// Net is the power system model the EMS operates on.
	Net *grid.Network
	// Journal, when non-nil, receives an append-only hash-chained record
	// of exploit and dispatch events against this process (scan started,
	// candidate disambiguated, rating overwritten, operator re-dispatch).
	// Appends are best-effort: journal write failures never abort the
	// substrate they observe.
	Journal *telemetry.Journal

	// Ground truth (what offline analysis recovers, and what accuracy is
	// measured against).
	lineObjs, busObjs, genObjs []uint64
	decoyObjs                  []uint64
	ratingAddrs                []uint64 // per line index
	listHead                   uint64
	ptrArray                   uint64

	heap      []*Region
	heapOff   int
	rng       *rand.Rand
	taint     []taintRange
	stringsRg *Region
	strOff    int
}

type taintRange struct{ start, end uint64 }

const _heapAlign = 16

// profileSeed derives a stable per-vendor seed (FNV-1a) for binary content.
func profileSeed(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7FFF_FFFF_FFFF_FFFF)
}

// NewProcess builds a randomized EMS process image for the given vendor
// profile and network. Distinct seeds yield distinct address layouts
// (ASLR), which is precisely why the paper's exploit cannot use absolute
// addresses.
func NewProcess(profile Profile, net *grid.Network, seed int64) (*Process, error) {
	for _, c := range []Class{profile.LineClass, profile.BusClass, profile.GenClass} {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Process{
		Image:   NewImage(),
		Profile: profile,
		Net:     net,
		rng:     rng,
	}
	page := func(v uint64) uint64 { return v &^ 0xFFF }
	textBase := page(0x0000_0001_4000_0000 + uint64(rng.Int63n(1<<28)))
	rdataBase := page(textBase + 0x0100_0000 + uint64(rng.Int63n(1<<24)))
	classes := []Class{profile.LineClass, profile.BusClass, profile.GenClass}
	// The binary's *content* (function bodies, vtable slot assignment) is
	// fixed per vendor — only its load address varies run to run. Derive
	// it from a profile-keyed seed so signatures extracted offline
	// transfer to any future run, exactly as with a real executable.
	binRng := rand.New(rand.NewSource(profileSeed(profile.Name)))
	bin, err := buildBinary(p.Image, binRng, textBase, rdataBase, classes, profile.DecoyVTables)
	if err != nil {
		return nil, fmt.Errorf("ems: loading binary: %w", err)
	}
	p.Bin = bin

	// Strings region (read-only, like .rdata string literals).
	strBase := page(rdataBase + uint64(bin.RData.Size()) + 0x10_0000 + uint64(rng.Int63n(1<<22)))
	strSize := 32 * (len(net.Lines) + len(net.Buses) + len(net.Gens) + 4)
	p.stringsRg, err = p.Image.Map(".strings", strBase, strSize, PermRead)
	if err != nil {
		return nil, fmt.Errorf("ems: strings region: %w", err)
	}

	// Instantiate the component objects in interleaved order, as a real
	// model-loading pass would.
	if err := p.populate(); err != nil {
		return nil, err
	}
	if err := p.scatterDecoyValues(); err != nil {
		return nil, err
	}
	return p, nil
}

// alloc carves an aligned object from the chunked heap, mapping new chunks
// on demand at randomized addresses (the paper's VirtualAlloc behavior).
func (p *Process) alloc(size int) (uint64, error) {
	chunk := p.Profile.ChunkBytes
	if chunk == 0 {
		chunk = 0x1000
	}
	if size > chunk {
		return 0, fmt.Errorf("ems: allocation of %d exceeds chunk size %d", size, chunk)
	}
	need := (size + _heapAlign - 1) &^ (_heapAlign - 1)
	if len(p.heap) == 0 || p.heapOff+need > p.heap[len(p.heap)-1].Size() {
		base := (0x0000_0002_0000_0000 + uint64(p.rng.Int63n(1<<33))) &^ 0xFFFF
		rg, err := p.Image.Map(fmt.Sprintf("heap%d", len(p.heap)), base, chunk, PermRead|PermWrite)
		if err != nil {
			// Extremely unlikely overlap: retry once at another base.
			base = (0x0000_0003_0000_0000 + uint64(p.rng.Int63n(1<<33))) &^ 0xFFFF
			rg, err = p.Image.Map(fmt.Sprintf("heap%d", len(p.heap)), base, chunk, PermRead|PermWrite)
			if err != nil {
				return 0, fmt.Errorf("ems: heap chunk: %w", err)
			}
		}
		p.heap = append(p.heap, rg)
		p.heapOff = 0
	}
	rg := p.heap[len(p.heap)-1]
	addr := rg.Base + uint64(p.heapOff)
	p.heapOff += need
	return addr, nil
}

// newObject allocates and initializes an instance of a class.
func (p *Process) newObject(c *Class, name string) (uint64, error) {
	addr, err := p.alloc(c.Size)
	if err != nil {
		return 0, err
	}
	// Scratch fill so uninitialized bytes look like real heap garbage.
	junk := make([]byte, c.Size)
	for i := range junk {
		junk[i] = byte(p.rng.Intn(256))
	}
	if err := p.Image.Write(addr, junk); err != nil {
		return 0, err
	}
	for _, f := range c.Fields {
		switch f.Kind {
		case FieldVfptr:
			if err := p.Image.WriteU64(addr+uint64(f.Offset), p.Bin.VTables[c.Name]); err != nil {
				return 0, err
			}
		case FieldConstU32:
			if err := p.Image.WriteU32(addr+uint64(f.Offset), f.Const); err != nil {
				return 0, err
			}
		case FieldPrev, FieldNext:
			if err := p.Image.WriteU64(addr+uint64(f.Offset), 0); err != nil {
				return 0, err
			}
		case FieldNamePtr:
			sAddr, err := p.internString(name)
			if err != nil {
				return 0, err
			}
			if err := p.Image.WriteU64(addr+uint64(f.Offset), sAddr); err != nil {
				return 0, err
			}
		}
	}
	return addr, nil
}

// internString stores a NUL-terminated string in the read-only strings
// region and returns its address.
func (p *Process) internString(s string) (uint64, error) {
	b := append([]byte(s), 0)
	off := p.strOff
	if off+len(b) > p.stringsRg.Size() {
		return 0, fmt.Errorf("ems: strings region exhausted")
	}
	copy(p.stringsRg.data[off:], b)
	p.strOff += len(b)
	return p.stringsRg.Base + uint64(off), nil
}

// populate builds the full object graph: lines, buses, generators, decoys,
// and the container (linked list or pointer array).
func (p *Process) populate() error {
	net := p.Net
	lineF := p.Profile.LineClass.FieldByKind(FieldRating)
	if lineF == nil {
		return fmt.Errorf("ems: line class %q has no rating field", p.Profile.LineClass.Name)
	}

	decoyClass := simpleClass("TDecoy", 0x40, 4)
	// Register a decoy vtable for instances by borrowing one of the
	// binary's decoy vtable addresses.
	decoyVT := uint64(0)
	if n := len(p.Bin.VTableAddrs); n > 3 {
		decoyVT = p.Bin.VTableAddrs[3]
	}

	var err error
	for i := range net.Lines {
		name := fmt.Sprintf("LINE_%d_%d", net.Lines[i].From, net.Lines[i].To)
		addr, e := p.newObject(&p.Profile.LineClass, name)
		if e != nil {
			return e
		}
		p.lineObjs = append(p.lineObjs, addr)
		rAddr := addr + uint64(lineF.Offset)
		p.ratingAddrs = append(p.ratingAddrs, rAddr)
		if e := p.storeRating(rAddr, net.Lines[i].RateMVA); e != nil {
			return e
		}
		// Interleave unrelated allocations so line objects are not
		// contiguous.
		if p.Profile.DecoyInstances > 0 && i%2 == 0 {
			if dAddr, e := p.newObject(&decoyClass, ""); e == nil && decoyVT != 0 {
				_ = p.Image.WriteU64(dAddr, decoyVT)
				p.decoyObjs = append(p.decoyObjs, dAddr)
			}
		}
	}
	for i := range net.Buses {
		addr, e := p.newObject(&p.Profile.BusClass, fmt.Sprintf("BUS_%d", net.Buses[i].ID))
		if e != nil {
			return e
		}
		p.busObjs = append(p.busObjs, addr)
	}
	for i := range net.Gens {
		addr, e := p.newObject(&p.Profile.GenClass, fmt.Sprintf("GEN_%d", net.Gens[i].ID))
		if e != nil {
			return e
		}
		p.genObjs = append(p.genObjs, addr)
	}
	for d := len(p.decoyObjs); d < p.Profile.DecoyInstances; d++ {
		dAddr, e := p.newObject(&decoyClass, "")
		if e != nil {
			return e
		}
		if decoyVT != 0 {
			_ = p.Image.WriteU64(dAddr, decoyVT)
		}
		p.decoyObjs = append(p.decoyObjs, dAddr)
	}

	switch p.Profile.Storage {
	case StorageLinkedList:
		err = p.linkObjects(p.lineObjs, &p.Profile.LineClass)
		if err == nil {
			err = p.linkObjects(p.busObjs, &p.Profile.BusClass)
		}
		if err == nil {
			err = p.linkObjects(p.genObjs, &p.Profile.GenClass)
		}
		if len(p.lineObjs) > 0 {
			p.listHead = p.lineObjs[0]
		}
	case StoragePtrArray:
		arrAddr, e := p.alloc(_ptrSize * (len(p.lineObjs) + 1))
		if e != nil {
			return e
		}
		p.ptrArray = arrAddr
		for i, o := range p.lineObjs {
			if e := p.Image.WriteU64(arrAddr+uint64(i*_ptrSize), o); e != nil {
				return e
			}
		}
	default:
		return fmt.Errorf("ems: unknown storage kind %v", p.Profile.Storage)
	}
	return err
}

// linkObjects wires a circular doubly linked list through prev/next fields.
func (p *Process) linkObjects(objs []uint64, c *Class) error {
	prevF, nextF := c.FieldByKind(FieldPrev), c.FieldByKind(FieldNext)
	if prevF == nil || nextF == nil || len(objs) == 0 {
		return nil
	}
	n := len(objs)
	for i, o := range objs {
		prev := objs[(i-1+n)%n]
		next := objs[(i+1)%n]
		if err := p.Image.WriteU64(o+uint64(prevF.Offset), prev); err != nil {
			return err
		}
		if err := p.Image.WriteU64(o+uint64(nextF.Offset), next); err != nil {
			return err
		}
	}
	return nil
}

// storeRating writes a rating (in MVA) to an address in the vendor's
// encoding (per-unit float, 32- or 64-bit).
func (p *Process) storeRating(addr uint64, mva float64) error {
	pu := mva / p.Net.BaseMVA
	if p.Profile.Rating64 {
		return p.Image.WriteF64(addr, pu)
	}
	return p.Image.WriteF32(addr, float32(pu))
}

// loadRating reads a rating back in MVA.
func (p *Process) loadRating(addr uint64) (float64, error) {
	if p.Profile.Rating64 {
		v, err := p.Image.ReadF64(addr)
		return v * p.Net.BaseMVA, err
	}
	v, err := p.Image.ReadF32(addr)
	return float64(v) * p.Net.BaseMVA, err
}

// scatterDecoyValues copies rating byte patterns into unrelated writable
// memory: stale buffers, report caches, UI state — the reason a naive value
// scan returns hundreds of hits (Table III).
func (p *Process) scatterDecoyValues() error {
	if p.Profile.DecoyValueCopies == 0 || len(p.ratingAddrs) == 0 {
		return nil
	}
	noiseSize := 0x8000
	base := (0x0000_0007_0000_0000 + uint64(p.rng.Int63n(1<<32))) &^ 0xFFFF
	noise, err := p.Image.Map("noise", base, noiseSize, PermRead|PermWrite)
	if err != nil {
		return fmt.Errorf("ems: noise region: %w", err)
	}
	for i := range noise.data {
		noise.data[i] = byte(p.rng.Intn(256))
	}
	width := 4
	if p.Profile.Rating64 {
		width = 8
	}
	for c := 0; c < p.Profile.DecoyValueCopies; c++ {
		src := p.ratingAddrs[p.rng.Intn(len(p.ratingAddrs))]
		b, err := p.Image.Read(src, width)
		if err != nil {
			return err
		}
		off := p.rng.Intn(noiseSize - width)
		copy(noise.data[off:], b)
	}
	return nil
}

// RatingAddr returns the ground-truth address of a line's rating (tests and
// accuracy scoring only — the exploit must find it itself).
func (p *Process) RatingAddr(lineIdx int) (uint64, error) {
	if lineIdx < 0 || lineIdx >= len(p.ratingAddrs) {
		return 0, fmt.Errorf("ems: line index %d out of range", lineIdx)
	}
	return p.ratingAddrs[lineIdx], nil
}

// ReadRatings returns the rating of every line as the EMS software itself
// would read them from its objects (post-corruption these are the attacked
// values).
func (p *Process) ReadRatings() ([]float64, error) {
	out := make([]float64, len(p.ratingAddrs))
	for i, addr := range p.ratingAddrs {
		v, err := p.loadRating(addr)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ObjectCounts returns the ground-truth instance counts (line, bus, gen,
// decoy) for accuracy scoring.
func (p *Process) ObjectCounts() (lines, buses, gens, decoys int) {
	return len(p.lineObjs), len(p.busObjs), len(p.genObjs), len(p.decoyObjs)
}
