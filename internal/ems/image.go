// Package ems simulates the victim side of the paper's attack
// implementation (Sections V–VI): a running Energy Management System
// process whose heap holds the power-system model — line objects with
// vfptrs into read-only code, doubly linked lists, per-vendor memory
// layouts — together with the offline forensics (object recognition,
// structural signature extraction) and the online exploit (value scan,
// predicate filtering, targeted corruption of DLR values).
//
// The original work targeted PowerWorld, NEPLAN, PowerFactory, PowerTools,
// and SmartGridToolbox binaries on Windows. Reproducing that requires the
// proprietary binaries, so this package builds a process substrate
// exhibiting every structural property the paper's signatures rely on:
// per-run address randomization, read-only code and vtables, writable data,
// chunked heap allocation, and vendor-specific object layouts. See
// DESIGN.md's substitution table.
package ems

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Perm is a page-permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access errors.
var (
	ErrBadAddress   = errors.New("ems: address not mapped")
	ErrPermission   = errors.New("ems: permission denied")
	ErrRegionExists = errors.New("ems: region overlaps an existing mapping")
)

// Region is one contiguous mapped range of the simulated address space.
type Region struct {
	// Name labels the region (".text", ".rdata", "heap0", ...).
	Name string
	// Base is the starting virtual address.
	Base uint64
	// Perm is the page protection.
	Perm Perm
	data []byte
}

// Size returns the region length in bytes.
func (r *Region) Size() int { return len(r.data) }

// End returns one past the last mapped address.
func (r *Region) End() uint64 { return r.Base + uint64(len(r.data)) }

// Image is a simulated process address space.
type Image struct {
	regions []*Region
}

// NewImage returns an empty address space.
func NewImage() *Image { return &Image{} }

// Map adds a region of the given size; the content starts zeroed.
func (im *Image) Map(name string, base uint64, size int, perm Perm) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ems: region %q has non-positive size %d", name, size)
	}
	end := base + uint64(size)
	for _, r := range im.regions {
		if base < r.End() && r.Base < end {
			return nil, fmt.Errorf("ems: %q at [%#x, %#x) overlaps %q: %w",
				name, base, end, r.Name, ErrRegionExists)
		}
	}
	reg := &Region{Name: name, Base: base, Perm: perm, data: make([]byte, size)}
	im.regions = append(im.regions, reg)
	sort.Slice(im.regions, func(a, b int) bool { return im.regions[a].Base < im.regions[b].Base })
	return reg, nil
}

// Regions returns the mapped regions in address order.
func (im *Image) Regions() []*Region {
	out := make([]*Region, len(im.regions))
	copy(out, im.regions)
	return out
}

// find locates the region containing [addr, addr+n).
func (im *Image) find(addr uint64, n int) (*Region, error) {
	for _, r := range im.regions {
		if addr >= r.Base && addr+uint64(n) <= r.End() {
			return r, nil
		}
	}
	return nil, fmt.Errorf("ems: [%#x, %#x): %w", addr, addr+uint64(n), ErrBadAddress)
}

// Read copies n bytes at addr. It requires read permission.
func (im *Image) Read(addr uint64, n int) ([]byte, error) {
	r, err := im.find(addr, n)
	if err != nil {
		return nil, err
	}
	if r.Perm&PermRead == 0 {
		return nil, fmt.Errorf("ems: read of %s region %q at %#x: %w", r.Perm, r.Name, addr, ErrPermission)
	}
	off := addr - r.Base
	out := make([]byte, n)
	copy(out, r.data[off:off+uint64(n)])
	return out, nil
}

// Write stores bytes at addr. It requires write permission — corrupting
// code or vtables fails exactly as W^X would make it fail on the real
// system.
func (im *Image) Write(addr uint64, b []byte) error {
	r, err := im.find(addr, len(b))
	if err != nil {
		return err
	}
	if r.Perm&PermWrite == 0 {
		return fmt.Errorf("ems: write to %s region %q at %#x: %w", r.Perm, r.Name, addr, ErrPermission)
	}
	copy(r.data[addr-r.Base:], b)
	return nil
}

// ReadU32 reads a little-endian uint32.
func (im *Image) ReadU32(addr uint64) (uint32, error) {
	b, err := im.Read(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// ReadU64 reads a little-endian uint64.
func (im *Image) ReadU64(addr uint64) (uint64, error) {
	b, err := im.Read(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ReadF32 reads a little-endian float32.
func (im *Image) ReadF32(addr uint64) (float32, error) {
	v, err := im.ReadU32(addr)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(v), nil
}

// ReadF64 reads a little-endian float64.
func (im *Image) ReadF64(addr uint64) (float64, error) {
	v, err := im.ReadU64(addr)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

// WriteU32 stores a little-endian uint32.
func (im *Image) WriteU32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return im.Write(addr, b[:])
}

// WriteU64 stores a little-endian uint64.
func (im *Image) WriteU64(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return im.Write(addr, b[:])
}

// WriteF32 stores a little-endian float32.
func (im *Image) WriteF32(addr uint64, v float32) error {
	return im.WriteU32(addr, math.Float32bits(v))
}

// WriteF64 stores a little-endian float64.
func (im *Image) WriteF64(addr uint64, v float64) error {
	return im.WriteU64(addr, math.Float64bits(v))
}

// Scan searches every readable region for the byte pattern and returns the
// addresses of all matches — the exploit's first, noisy step (Table III's
// "#Hits" column counts these).
func (im *Image) Scan(pattern []byte) []uint64 {
	var hits []uint64
	if len(pattern) == 0 {
		return hits
	}
	for _, r := range im.regions {
		if r.Perm&PermRead == 0 {
			continue
		}
		data := r.data
		for off := 0; off+len(pattern) <= len(data); off++ {
			if data[off] != pattern[0] {
				continue
			}
			match := true
			for k := 1; k < len(pattern); k++ {
				if data[off+k] != pattern[k] {
					match = false
					break
				}
			}
			if match {
				hits = append(hits, r.Base+uint64(off))
			}
		}
	}
	return hits
}

// ScanWritable is Scan restricted to writable regions — the only hits the
// exploit can act on.
func (im *Image) ScanWritable(pattern []byte) []uint64 {
	var hits []uint64
	for _, addr := range im.Scan(pattern) {
		if r, err := im.find(addr, 1); err == nil && r.Perm&PermWrite != 0 {
			hits = append(hits, addr)
		}
	}
	return hits
}

// F32Bytes returns the little-endian byte pattern of a float32 value —
// e.g. 1.5 → 00 00 C0 3F, the paper's 0x3FC00000 example.
func F32Bytes(v float32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	return b[:]
}

// F64Bytes returns the little-endian byte pattern of a float64 value.
func F64Bytes(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}
