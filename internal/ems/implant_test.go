package ems

import (
	"math"
	"strings"
	"testing"
)

func TestHexDumpFormat(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 71)
	addr, err := p.RatingAddr(0)
	if err != nil {
		t.Fatal(err)
	}
	dump := HexDump(p.Image, addr&^0xF, 0x40)
	if !strings.Contains(dump, "|") || len(strings.Split(dump, "\n")) < 4 {
		t.Fatalf("unexpected dump:\n%s", dump)
	}
	// Unmapped range degrades gracefully.
	bad := HexDump(p.Image, 0xDEAD0000, 16)
	if !strings.Contains(bad, "unmapped") {
		t.Fatalf("missing unmapped note:\n%s", bad)
	}
	// Partial trailing row.
	partial := HexDump(p.Image, addr&^0xF, 20)
	if len(partial) == 0 {
		t.Fatal("empty partial dump")
	}
}

func TestSnapshotDiffShowsCorruption(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 72)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := p.RatingAddr(1)
	base := addr &^ 0xF
	pre, err := Capture(p.Image, base, 0x30)
	if err != nil {
		t.Fatal(err)
	}
	// No changes yet.
	d, err := pre.Diff(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 {
		t.Fatalf("phantom diff: %+v", d)
	}
	if FormatDiff(d) != "(no changes)\n" {
		t.Fatal("no-change rendering")
	}
	if _, err := RunAttack(p, e, map[int]float64{1: 120}, nil); err != nil {
		t.Fatal(err)
	}
	d, err = pre.Diff(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("diff runs = %d, want exactly the rating word", len(d))
	}
	if d[0].Addr < addr || d[0].Addr >= addr+4 {
		t.Fatalf("diff at %#x, rating at %#x", d[0].Addr, addr)
	}
	if FormatDiff(d) == "" {
		t.Fatal("empty diff rendering")
	}
	// Capture of unmapped memory fails cleanly.
	if _, err := Capture(p.Image, 0xDEAD0000, 8); err == nil {
		t.Fatal("want capture error")
	}
}

func TestImplantSurvivesLegitimateUpdates(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 73)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := NewImplant(p, e, map[int]float64{1: 120, 2: 240}, nil)
	if err != nil {
		t.Fatalf("NewImplant: %v", err)
	}
	ratings, _ := p.ReadRatings()
	if math.Abs(ratings[1]-120) > 1e-3 || math.Abs(ratings[2]-240) > 1e-3 {
		t.Fatalf("initial corruption missing: %v", ratings)
	}
	// Idle tick: nothing to fix.
	fixed, err := imp.Tick()
	if err != nil || fixed != 0 {
		t.Fatalf("idle tick: %d %v", fixed, err)
	}
	// A legitimate DLR update overwrites the manipulation...
	if err := p.IngestDLR(map[int]float64{1: 155, 2: 150}); err != nil {
		t.Fatal(err)
	}
	ratings, _ = p.ReadRatings()
	if math.Abs(ratings[1]-120) < 1 {
		t.Fatal("ingest did not overwrite — test premise broken")
	}
	// ...and the resident implant restores it on the next beacon.
	fixed, err = imp.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 2 {
		t.Fatalf("fixed = %d, want 2", fixed)
	}
	ratings, _ = p.ReadRatings()
	if math.Abs(ratings[1]-120) > 1e-3 || math.Abs(ratings[2]-240) > 1e-3 {
		t.Fatalf("implant failed to re-apply: %v", ratings)
	}
	if imp.Applied != 2 {
		t.Fatalf("Applied = %d", imp.Applied)
	}
}

func TestImplantPlantingFailurePropagates(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 74)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewImplant(p, e, map[int]float64{42: 100}, nil); err == nil {
		t.Fatal("want planting error for unknown line")
	}
}
