package ems

import (
	"bytes"
	"fmt"
)

// Predicate is one structural memory invariant checked against a candidate
// rating address at attack time. Predicates are address-relative: they
// survive ASLR and run-to-run heap layout changes, which is the central
// point of the paper's Table II.
type Predicate interface {
	// Check reports whether the candidate address satisfies the invariant
	// in the given image.
	Check(im *Image, cand uint64) bool
	// String renders the predicate in the paper's pointer-expression
	// notation.
	String() string
}

// IntraClassPredicate pins a fixed-offset sibling member: "candidate_addr +
// off stores the 32-bit constant c" (Table II, left column).
type IntraClassPredicate struct {
	// Off is the byte offset from the candidate (rating) address.
	Off int64
	// Const is the expected 32-bit value.
	Const uint32
}

// Check implements Predicate.
func (p *IntraClassPredicate) Check(im *Image, cand uint64) bool {
	v, err := im.ReadU32(uint64(int64(cand) + p.Off))
	return err == nil && v == p.Const
}

func (p *IntraClassPredicate) String() string {
	return fmt.Sprintf("*(cand%+#x) == %#x", p.Off, p.Const)
}

// StringFieldPredicate pins a sibling char* member: the pointer at the
// given offset must land in readable memory holding printable ASCII
// ("type(&line-rating + 0x0C) == string" in Table II).
type StringFieldPredicate struct {
	// Off is the byte offset from the candidate to the char* member.
	Off int64
	// MinLen is the minimum printable run demanded.
	MinLen int
}

// Check implements Predicate.
func (p *StringFieldPredicate) Check(im *Image, cand uint64) bool {
	ptr, err := im.ReadU64(uint64(int64(cand) + p.Off))
	if err != nil {
		return false
	}
	n := p.MinLen
	if n <= 0 {
		n = 3
	}
	b, err := im.Read(ptr, n)
	if err != nil {
		return false
	}
	for _, c := range b {
		if c < 0x20 || c > 0x7E {
			return false
		}
	}
	return true
}

func (p *StringFieldPredicate) String() string {
	return fmt.Sprintf("type(*(cand%+#x)) == string", p.Off)
}

// CodePointerPredicate follows the object's vfptr into its vtable and
// demands that a virtual-function slot point at known instruction bytes:
// "*(*(cand - ratingOff) + idx·8) starts with the function prologue"
// (Table II, middle column). Code is read-only, so the pinned bytes are
// stable across runs while every address involved is relative.
type CodePointerPredicate struct {
	// RatingOff is the rating field's offset within the object (so the
	// object base is cand − RatingOff).
	RatingOff int64
	// Slot is the vtable entry index.
	Slot int
	// Prologue is the expected leading instruction bytes.
	Prologue []byte
}

// Check implements Predicate.
func (p *CodePointerPredicate) Check(im *Image, cand uint64) bool {
	objBase := uint64(int64(cand) - p.RatingOff)
	vt, err := im.ReadU64(objBase)
	if err != nil {
		return false
	}
	fn, err := im.ReadU64(vt + uint64(p.Slot*_ptrSize))
	if err != nil {
		return false
	}
	got, err := im.Read(fn, len(p.Prologue))
	if err != nil {
		return false
	}
	return bytes.Equal(got, p.Prologue)
}

func (p *CodePointerPredicate) String() string {
	return fmt.Sprintf("*(*(cand-%#x)+%#x) == % X", p.RatingOff, p.Slot*_ptrSize, p.Prologue)
}

// ListCyclePredicate is the data-pointer pattern (Table II, right column):
// with the object base A = cand − RatingOff, it verifies the doubly
// linked-list invariants A.prev.next == A and A.next.prev == A.
type ListCyclePredicate struct {
	// RatingOff is the rating field's offset within the object.
	RatingOff int64
	// PrevOff and NextOff are the list-pointer offsets within the object.
	PrevOff, NextOff int64
}

// Check implements Predicate.
func (p *ListCyclePredicate) Check(im *Image, cand uint64) bool {
	a := uint64(int64(cand) - p.RatingOff)
	prev, err := im.ReadU64(uint64(int64(a) + p.PrevOff))
	if err != nil {
		return false
	}
	next, err := im.ReadU64(uint64(int64(a) + p.NextOff))
	if err != nil {
		return false
	}
	prevNext, err := im.ReadU64(uint64(int64(prev) + p.NextOff))
	if err != nil {
		return false
	}
	nextPrev, err := im.ReadU64(uint64(int64(next) + p.PrevOff))
	if err != nil {
		return false
	}
	return prevNext == a && nextPrev == a
}

func (p *ListCyclePredicate) String() string {
	return fmt.Sprintf("A=cand-%#x: *(*(A%+#x)%+#x)==A && *(*(A%+#x)%+#x)==A",
		p.RatingOff, p.PrevOff, p.NextOff, p.NextOff, p.PrevOff)
}

// Signature is the conjunction of structural predicates identifying the
// true rating among value-scan candidates.
type Signature struct {
	// Class is the object class the signature targets.
	Class string
	// Preds are checked conjunctively.
	Preds []Predicate
}

// Check reports whether every predicate holds.
func (s *Signature) Check(im *Image, cand uint64) bool {
	for _, p := range s.Preds {
		if !p.Check(im, cand) {
			return false
		}
	}
	return true
}

// String lists the predicates.
func (s *Signature) String() string {
	out := fmt.Sprintf("signature(%s):", s.Class)
	for _, p := range s.Preds {
		out += "\n  " + p.String()
	}
	return out
}

// BuildLineSignature performs the offline signature-extraction stage: from
// the vendor layout and the loaded binary it derives address-relative
// predicates around the line-rating field. In the paper this knowledge
// comes from binary reverse engineering ([26]); here it comes from the
// process's class metadata, which plays the same role.
func BuildLineSignature(p *Process) (*Signature, error) {
	c := &p.Profile.LineClass
	rating := c.FieldByKind(FieldRating)
	if rating == nil {
		return nil, fmt.Errorf("ems: class %q has no rating field", c.Name)
	}
	sig := &Signature{Class: c.Name}

	// Intra-class: the fixed status word.
	if f := c.FieldByKind(FieldConstU32); f != nil {
		sig.Preds = append(sig.Preds, &IntraClassPredicate{
			Off:   int64(f.Offset - rating.Offset),
			Const: f.Const,
		})
	}
	// Intra-class: the name string member, when present.
	if f := c.FieldByKind(FieldNamePtr); f != nil {
		sig.Preds = append(sig.Preds, &StringFieldPredicate{
			Off:    int64(f.Offset - rating.Offset),
			MinLen: 4,
		})
	}
	// Code-pointer: pin the first virtual function's prologue. The
	// prologue bytes are read from the (read-only) binary now, at
	// analysis time — at attack time only the predicate runs.
	vt, ok := p.Bin.VTables[c.Name]
	if !ok {
		return nil, fmt.Errorf("ems: no vtable for class %q", c.Name)
	}
	fn, err := p.Image.ReadU64(vt)
	if err != nil {
		return nil, fmt.Errorf("ems: reading vtable slot 0: %w", err)
	}
	prologue, ok := p.Bin.FuncPrologue[fn]
	if !ok {
		return nil, fmt.Errorf("ems: unknown function at %#x", fn)
	}
	sig.Preds = append(sig.Preds, &CodePointerPredicate{
		RatingOff: int64(rating.Offset),
		Slot:      0,
		Prologue:  prologue,
	})
	// Data-pointer: linked-list cycle, when the vendor uses lists.
	if prevF, nextF := c.FieldByKind(FieldPrev), c.FieldByKind(FieldNext); prevF != nil && nextF != nil {
		sig.Preds = append(sig.Preds, &ListCyclePredicate{
			RatingOff: int64(rating.Offset),
			PrevOff:   int64(prevF.Offset),
			NextOff:   int64(nextF.Offset),
		})
	}
	return sig, nil
}
