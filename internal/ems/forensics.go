package ems

import (
	"fmt"
	"sort"
	"strings"
)

// ObjectInfo is one heap instance recognized by the offline analysis.
type ObjectInfo struct {
	// Addr is the object base address.
	Addr uint64
	// Class is the recovered class name ("" for unknown-vtable objects).
	Class string
}

// Analysis is the result of the offline memory-forensics pass (the paper's
// Table IV evaluates its accuracy): recovered vtables and classified heap
// instances.
type Analysis struct {
	// VTableCount is the number of virtual-function tables discovered in
	// read-only data.
	VTableCount int
	// Objects lists classified heap instances.
	Objects []ObjectInfo
	// ByClass counts instances per recovered class name.
	ByClass map[string]int
}

// Analyze performs offline forensics on a process image, using only what a
// real analyst has: the readable address space and the loaded binary's
// read-only sections. It discovers vtables (pointer arrays in read-only
// data whose entries land in executable memory) and classifies heap objects
// by their leading vfptr.
func Analyze(p *Process) (*Analysis, error) {
	im := p.Image

	// 1. Discover vtables: scan read-only data for runs of ≥2 pointers
	// into executable regions.
	var exec []*Region
	var rodata []*Region
	var writable []*Region
	for _, r := range im.Regions() {
		switch {
		case r.Perm&PermExec != 0:
			exec = append(exec, r)
		case r.Perm&PermWrite != 0:
			writable = append(writable, r)
		case r.Perm&PermRead != 0:
			rodata = append(rodata, r)
		}
	}
	inExec := func(addr uint64) bool {
		for _, r := range exec {
			if addr >= r.Base && addr < r.End() {
				return true
			}
		}
		return false
	}
	vtables := make(map[uint64]bool)
	for _, r := range rodata {
		n := r.Size() / _ptrSize
		runStart, runLen := -1, 0
		for i := 0; i <= n; i++ {
			ok := false
			if i < n {
				addr := r.Base + uint64(i*_ptrSize)
				if v, err := im.ReadU64(addr); err == nil && inExec(v) {
					ok = true
				}
			}
			if ok {
				if runStart < 0 {
					runStart = i
				}
				runLen++
				continue
			}
			if runLen >= 2 {
				vtables[r.Base+uint64(runStart*_ptrSize)] = true
			}
			runStart, runLen = -1, 0
		}
	}

	// 2. Classify heap objects: aligned slots whose first quadword is a
	// discovered vtable address.
	classOf := make(map[uint64]string, len(p.Bin.VTables))
	for name, addr := range p.Bin.VTables {
		classOf[addr] = name
	}
	a := &Analysis{VTableCount: len(vtables), ByClass: make(map[string]int)}
	for _, r := range writable {
		for off := 0; off+_ptrSize <= r.Size(); off += _heapAlign {
			addr := r.Base + uint64(off)
			v, err := im.ReadU64(addr)
			if err != nil || !vtables[v] {
				continue
			}
			name := classOf[v]
			a.Objects = append(a.Objects, ObjectInfo{Addr: addr, Class: name})
			key := name
			if key == "" {
				key = "<unknown>"
			}
			a.ByClass[key]++
		}
	}
	sort.Slice(a.Objects, func(i, j int) bool { return a.Objects[i].Addr < a.Objects[j].Addr })
	return a, nil
}

// AccuracyReport scores an analysis against the process ground truth — one
// row of the paper's Table IV.
type AccuracyReport struct {
	// EMS is the vendor name.
	EMS string
	// VTables is the number of vtables discovered.
	VTables int
	// Lines, Buses, Gens are the recognized instance counts.
	Lines, Buses, Gens int
	// TrueLines, TrueBuses, TrueGens are the ground-truth counts.
	TrueLines, TrueBuses, TrueGens int
	// AccuracyPct is the fraction of line/bus/gen instances whose class
	// was correctly recovered, in percent.
	AccuracyPct float64
}

// Accuracy runs Analyze and scores it against the ground truth.
func Accuracy(p *Process) (*AccuracyReport, error) {
	a, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	rep := &AccuracyReport{
		EMS:     p.Profile.Name,
		VTables: a.VTableCount,
	}
	rep.TrueLines, rep.TrueBuses, rep.TrueGens, _ = p.ObjectCounts()
	rep.Lines = a.ByClass[p.Profile.LineClass.Name]
	rep.Buses = a.ByClass[p.Profile.BusClass.Name]
	rep.Gens = a.ByClass[p.Profile.GenClass.Name]

	// Accuracy: recognized ∧ correctly placed, against ground truth.
	truth := make(map[uint64]string, len(p.lineObjs)+len(p.busObjs)+len(p.genObjs))
	for _, o := range p.lineObjs {
		truth[o] = p.Profile.LineClass.Name
	}
	for _, o := range p.busObjs {
		truth[o] = p.Profile.BusClass.Name
	}
	for _, o := range p.genObjs {
		truth[o] = p.Profile.GenClass.Name
	}
	correct := 0
	for _, obj := range a.Objects {
		if want, ok := truth[obj.Addr]; ok && want == obj.Class {
			correct++
		}
	}
	total := len(truth)
	if total > 0 {
		rep.AccuracyPct = 100 * float64(correct) / float64(total)
	}
	return rep, nil
}

// String renders the report as a Table IV-style row.
func (r *AccuracyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s vfTable=%-6d Line=%d/%d Bus=%d/%d Gen=%d/%d Accuracy=%.0f%%",
		r.EMS, r.VTables, r.Lines, r.TrueLines, r.Buses, r.TrueBuses, r.Gens, r.TrueGens, r.AccuracyPct)
	return b.String()
}
