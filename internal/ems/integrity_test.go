package ems

import (
	"testing"
)

func TestIntegrityMonitorDetectsCorruption(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 61)
	mon := NewIntegrityMonitor(p)
	if _, err := mon.Check(); err == nil {
		t.Fatal("unarmed monitor must error")
	}
	if err := mon.Arm(); err != nil {
		t.Fatal(err)
	}
	intact, err := mon.Check()
	if err != nil || !intact {
		t.Fatalf("fresh process flagged: %v %v", intact, err)
	}

	ctrl, err := NewController(p)
	if err != nil {
		t.Fatal(err)
	}
	step, err := ctrl.GuardedStep(mon)
	if err != nil {
		t.Fatal(err)
	}
	if step.TamperDetected || step.Dispatch == nil {
		t.Fatalf("clean guarded step failed: %+v", step)
	}

	// Legitimate DLR update + re-arm keeps the loop running.
	if err := p.IngestDLR(map[int]float64{1: 158}); err != nil {
		t.Fatal(err)
	}
	intact, err = mon.Check()
	if err != nil {
		t.Fatal(err)
	}
	if intact {
		t.Fatal("update without re-arm must change the fingerprint")
	}
	if err := mon.Arm(); err != nil {
		t.Fatal(err)
	}

	// The exploit's out-of-band write is caught before dispatch.
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAttack(p, e, map[int]float64{2: 240}, nil); err != nil {
		t.Fatal(err)
	}
	step, err = ctrl.GuardedStep(mon)
	if err != nil {
		t.Fatal(err)
	}
	if !step.TamperDetected {
		t.Fatal("guarded controller dispatched on corrupted parameters")
	}
	if step.Dispatch != nil {
		t.Fatal("dispatch issued despite tampering")
	}
}
