package ems

import "fmt"

// Implant models the dormancy aspect of the paper's threat: the corruption
// "can remain dormant in controller's memory and can produce the intended
// consequences … before the last line of defense [is] triggered"
// (Section I). A one-shot overwrite is undone by the next legitimate DLR
// ingest (which writes fresh values over the same fields); a resident
// implant instead re-applies the manipulation whenever the parameter block
// changes — exactly what a thread planted by the exploit would do.
type Implant struct {
	proc    *Process
	exploit *Exploit
	// attack maps line index → the rating (MVA) to maintain.
	attack map[int]float64
	// addrs caches the located rating addresses.
	addrs map[int]uint64
	// Applied counts the (re-)corruption events.
	Applied int
}

// NewImplant plants a resident manipulation: it locates each target line's
// rating once (scan + signature + name disambiguation, via the exploit) and
// remembers the addresses for cheap re-application.
func NewImplant(p *Process, e *Exploit, attack map[int]float64, knownRatings map[int]float64) (*Implant, error) {
	rep, err := RunAttack(p, e, attack, knownRatings)
	if err != nil {
		return nil, fmt.Errorf("ems: planting implant: %w", err)
	}
	addrs := make(map[int]uint64, len(rep.Lines))
	for _, lr := range rep.Lines {
		addrs[lr.Report.Line] = lr.Addr
	}
	imp := &Implant{
		proc:    p,
		exploit: e,
		attack:  cloneDLRMap(attack),
		addrs:   addrs,
		Applied: 1,
	}
	return imp, nil
}

func cloneDLRMap(in map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Tick is the implant's beacon: called periodically (the paper's exploit
// restarts the control loop via CreateThread; ours runs inline), it checks
// whether a legitimate update overwrote the manipulation and re-applies it.
// It returns how many fields it had to fix this tick.
func (imp *Implant) Tick() (int, error) {
	fixed := 0
	for li, want := range imp.attack {
		addr, ok := imp.addrs[li]
		if !ok {
			return fixed, fmt.Errorf("ems: implant has no address for line %d", li)
		}
		cur, err := imp.proc.loadRating(addr)
		if err != nil {
			return fixed, fmt.Errorf("ems: implant read: %w", err)
		}
		// Tolerance must exceed float32 storage quantization, or the
		// implant would rewrite its own value forever.
		tol := 1e-4 * (1 + want)
		if diffMVA := cur - want; diffMVA > tol || diffMVA < -tol {
			if err := imp.exploit.Corrupt(imp.proc, addr, want); err != nil {
				return fixed, fmt.Errorf("ems: implant rewrite: %w", err)
			}
			fixed++
		}
	}
	if fixed > 0 {
		imp.Applied++
	}
	return fixed, nil
}
