package ems

import (
	"errors"
	"math"
	"testing"

	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
)

func case3Net(t testing.TB) *grid.Network {
	t.Helper()
	n, err := cases.Case3(cases.Case3Options{Rating: 150})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newProc(t testing.TB, profile Profile, seed int64) *Process {
	t.Helper()
	p, err := NewProcess(profile, case3Net(t), seed)
	if err != nil {
		t.Fatalf("NewProcess(%s): %v", profile.Name, err)
	}
	return p
}

func TestProcessGroundTruth(t *testing.T) {
	for _, profile := range Profiles() {
		p := newProc(t, profile, 1)
		lines, buses, gens, _ := p.ObjectCounts()
		if lines != 3 || buses != 3 || gens != 2 {
			t.Fatalf("%s: counts %d/%d/%d, want 3/3/2", profile.Name, lines, buses, gens)
		}
		ratings, err := p.ReadRatings()
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range ratings {
			if math.Abs(r-150) > 1e-4 {
				t.Fatalf("%s: rating[%d] = %v, want 150", profile.Name, i, r)
			}
		}
	}
}

func TestASLRChangesAddresses(t *testing.T) {
	profile := PowerWorldProfile()
	p1 := newProc(t, profile, 1)
	p2 := newProc(t, profile, 2)
	a1, _ := p1.RatingAddr(0)
	a2, _ := p2.RatingAddr(0)
	if a1 == a2 {
		t.Fatal("distinct seeds must randomize object addresses")
	}
	if p1.Bin.Text.Base == p2.Bin.Text.Base {
		t.Fatal("distinct seeds must randomize the binary load address")
	}
}

func TestBinaryContentStableAcrossRuns(t *testing.T) {
	// A vendor's binary content is fixed — only load addresses change.
	profile := PowerWorldProfile()
	p1 := newProc(t, profile, 1)
	p2 := newProc(t, profile, 2)
	vt1 := p1.Bin.VTables[profile.LineClass.Name] - p1.Bin.RData.Base
	vt2 := p2.Bin.VTables[profile.LineClass.Name] - p2.Bin.RData.Base
	if vt1 != vt2 {
		t.Fatalf("vtable layout differs across runs: %#x vs %#x", vt1, vt2)
	}
	fn1, _ := p1.Image.ReadU64(p1.Bin.VTables[profile.LineClass.Name])
	fn2, _ := p2.Image.ReadU64(p2.Bin.VTables[profile.LineClass.Name])
	if fn1-p1.Bin.Text.Base != fn2-p2.Bin.Text.Base {
		t.Fatal("vtable slot 0 must reference the same function across runs")
	}
}

func TestCodeIsNotWritable(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 3)
	if err := p.Image.WriteU32(p.Bin.Text.Base, 0x90909090); !errors.Is(err, ErrPermission) {
		t.Fatalf("code write must be denied, got %v", err)
	}
	vt := p.Bin.VTables[p.Profile.LineClass.Name]
	if err := p.Image.WriteU64(vt, 0x41414141); !errors.Is(err, ErrPermission) {
		t.Fatalf("vtable write must be denied, got %v", err)
	}
}

func TestValueScanIsNoisy(t *testing.T) {
	// The naive scan must return many more hits than true rating fields —
	// Table III's core observation.
	p := newProc(t, PowerWorldProfile(), 4)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	cands := e.FindCandidates(p, 150)
	if len(cands) <= 3 {
		t.Fatalf("value scan found only %d hits; decoys missing", len(cands))
	}
	recognized := e.Filter(p, cands)
	if len(recognized) != 3 {
		t.Fatalf("signature kept %d candidates, want exactly the 3 true ratings", len(recognized))
	}
	for _, c := range recognized {
		found := false
		for li := range p.Net.Lines {
			if a, _ := p.RatingAddr(li); a == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("recognized candidate %#x is not a true rating", c)
		}
	}
}

func TestSignatureTransfersAcrossRuns(t *testing.T) {
	// Build the signature offline on one process; apply it online to a
	// different run (different ASLR layout) — the paper's central claim.
	for _, profile := range Profiles() {
		offline := newProc(t, profile, 10)
		e, err := NewExploit(offline)
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		victim := newProc(t, profile, 99)
		cands := e.FindCandidates(victim, 150)
		recognized := e.Filter(victim, cands)
		if len(recognized) != 3 {
			t.Fatalf("%s: cross-run recognition = %d, want 3", profile.Name, len(recognized))
		}
	}
}

func TestRunAttackFig8(t *testing.T) {
	// The Fig. 8 case study: corrupt line {1,3} 150→120 and line {2,3}
	// 150→240 in PowerWorld memory, then watch the controller dispatch
	// into an unsafe state.
	p := newProc(t, PowerWorldProfile(), 8)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(p)
	if err != nil {
		t.Fatal(err)
	}
	trueRatings := []float64{150, 150, 150}

	// Pre-attack: dispatch respects the 150 MW ratings.
	pre, err := ctrl.Step()
	if err != nil {
		t.Fatalf("pre-attack step: %v", err)
	}
	for li, f := range pre.Flows {
		if math.Abs(f) > 150+1e-6 {
			t.Fatalf("pre-attack flow %v exceeds rating on line %d", f, li)
		}
	}

	rep, err := RunAttack(p, e, map[int]float64{1: 120, 2: 240}, nil)
	if err != nil {
		t.Fatalf("RunAttack: %v", err)
	}
	if len(rep.Lines) != 2 {
		t.Fatalf("attack touched %d lines, want 2", len(rep.Lines))
	}
	for _, lr := range rep.Lines {
		if lr.Report.Recognized != lr.Report.Correct {
			t.Fatalf("line %d: recognized %d != correct %d",
				lr.Report.Line, lr.Report.Recognized, lr.Report.Correct)
		}
		if lr.Report.Hits <= lr.Report.Relevant {
			t.Fatalf("line %d: expected noisy scan, hits=%d relevant=%d",
				lr.Report.Line, lr.Report.Hits, lr.Report.Relevant)
		}
	}

	// The EMS now reads the corrupted values...
	ratings, err := p.ReadRatings()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratings[1]-120) > 1e-4 || math.Abs(ratings[2]-240) > 1e-4 {
		t.Fatalf("post-attack ratings = %v, want [150 120 240]", ratings)
	}
	// ...and produces a dispatch that violates the true 150 MW limit.
	post, err := ctrl.Step()
	if err != nil {
		t.Fatalf("post-attack step: %v", err)
	}
	violated := false
	for li, f := range post.Flows {
		if math.Abs(f) > trueRatings[li]+1e-6 {
			violated = true
		}
	}
	if !violated {
		t.Fatalf("post-attack dispatch %v violates no true rating", post.Flows)
	}
}

func TestRunAttackUnknownLine(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 8)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAttack(p, e, map[int]float64{9: 100}, nil); err == nil {
		t.Fatal("want unknown-line error")
	}
}

func TestRunAttackWithKnownRatings(t *testing.T) {
	// After a DLR update the static value is stale; the attacker must
	// search for the *current* dynamic value.
	p := newProc(t, PowerWorldProfile(), 12)
	if err := p.IngestDLR(map[int]float64{1: 165}); err != nil {
		t.Fatal(err)
	}
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunAttack(p, e, map[int]float64{1: 130}, map[int]float64{1: 165})
	if err != nil {
		t.Fatalf("RunAttack: %v", err)
	}
	if rep.Lines[0].OldMVA != 165 {
		t.Fatalf("searched value %v, want 165", rep.Lines[0].OldMVA)
	}
	ratings, _ := p.ReadRatings()
	if math.Abs(ratings[1]-130) > 1e-4 {
		t.Fatalf("post-attack rating = %v, want 130", ratings[1])
	}
}

func TestTaintNarrowsScan(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 21)
	if err := p.IngestDLR(map[int]float64{0: 150, 1: 150, 2: 150}); err != nil {
		t.Fatal(err)
	}
	if p.TaintCount() != 3 {
		t.Fatalf("taint ranges = %d, want 3", p.TaintCount())
	}
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	noisy := e.FindCandidates(p, 150)
	e.UseTaint = true
	narrowed := e.FindCandidates(p, 150)
	if len(narrowed) != 3 {
		t.Fatalf("tainted scan = %d hits, want 3", len(narrowed))
	}
	if len(noisy) <= len(narrowed) {
		t.Fatalf("taint must narrow the scan: %d vs %d", len(noisy), len(narrowed))
	}
	p.ClearTaint()
	if p.TaintCount() != 0 {
		t.Fatal("ClearTaint")
	}
	if p.Tainted(0x1234) {
		t.Fatal("nothing is tainted after clear")
	}
}

func TestIngestDLRErrors(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 5)
	if err := p.IngestDLR(map[int]float64{42: 100}); err == nil {
		t.Fatal("want range error")
	}
}

func TestForensicsAccuracyAllProfiles(t *testing.T) {
	// Table IV: every profile's instances are recognized with 100%
	// accuracy, and the vtable counts match the vendor's program scale.
	for _, profile := range Profiles() {
		p := newProc(t, profile, 31)
		rep, err := Accuracy(p)
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		if rep.AccuracyPct != 100 {
			t.Fatalf("%s: accuracy %v%%, want 100%%", profile.Name, rep.AccuracyPct)
		}
		if rep.Lines != rep.TrueLines || rep.Buses != rep.TrueBuses || rep.Gens != rep.TrueGens {
			t.Fatalf("%s: %s", profile.Name, rep)
		}
		wantVT := profile.DecoyVTables + 3
		if rep.VTables != wantVT {
			t.Fatalf("%s: vtables %d, want %d", profile.Name, rep.VTables, wantVT)
		}
		if rep.String() == "" {
			t.Fatal("empty report string")
		}
	}
}

func TestSignatureString(t *testing.T) {
	p := newProc(t, PowerWorldProfile(), 7)
	sig, err := BuildLineSignature(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Preds) < 3 {
		t.Fatalf("PowerWorld signature has %d predicates, want ≥ 3 kinds", len(sig.Preds))
	}
	if sig.String() == "" {
		t.Fatal("empty signature rendering")
	}
	for _, pred := range sig.Preds {
		if pred.String() == "" {
			t.Fatal("empty predicate rendering")
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("PowerWorld"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("NoSuchEMS"); err == nil {
		t.Fatal("want unknown-profile error")
	}
	if StorageLinkedList.String() == "" || StoragePtrArray.String() == "" || StorageKind(9).String() == "" {
		t.Fatal("storage kind strings")
	}
}

func TestControllerRejectsInfeasibleMemoryState(t *testing.T) {
	// Corrupting ratings to absurdly low values makes the ED infeasible —
	// the EMS alarms, which is why the paper's attacker stays in-band.
	p := newProc(t, PowerWorldProfile(), 16)
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(p)
	if err != nil {
		t.Fatal(err)
	}
	cands := e.Filter(p, e.FindCandidates(p, 150))
	for _, c := range cands {
		if err := e.Corrupt(p, c, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctrl.Step(); err == nil {
		t.Fatal("controller must fail on infeasible corrupted ratings")
	}
}
