package ems

import (
	"testing"
)

// sigFixture builds a tiny hand-rolled image exercising each predicate kind
// in isolation.
type sigFixture struct {
	im      *Image
	obj     uint64 // object base
	rating  uint64 // rating address (obj + 8)
	vtable  uint64
	fn      uint64
	strAddr uint64
}

func newSigFixture(t *testing.T) *sigFixture {
	t.Helper()
	im := NewImage()
	text, err := im.Map(".text", 0x1000, 0x100, PermRead|PermExec)
	if err != nil {
		t.Fatal(err)
	}
	rdata, err := im.Map(".rdata", 0x3000, 0x100, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := im.Map("heap", 0x10000, 0x1000, PermRead|PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	_ = heap
	f := &sigFixture{
		im:      im,
		obj:     0x10040,
		vtable:  rdata.Base + 0x10,
		fn:      0x1000,
		strAddr: rdata.Base + 0x80,
	}
	f.rating = f.obj + 8
	// Function prologue bytes at fn (written at "load time", directly
	// into the region backing — the Image API rightly refuses W on r-x).
	copy(text.data, []byte{0x53, 0x56, 0x8B, 0xF2})
	// Vtable slot 0 → fn (write directly into the region data since
	// .rdata is read-only at the Image API level).
	copy(rdata.data[0x10:], leU64(f.fn))
	// Name string.
	copy(rdata.data[0x80:], append([]byte("LINE_1_3"), 0))
	// Object: vfptr at +0, rating at +8 (f32 1.5), const at +16,
	// name ptr at +24, prev at +32, next at +40.
	if err := im.WriteU64(f.obj, f.vtable); err != nil {
		t.Fatal(err)
	}
	if err := im.WriteF32(f.rating, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := im.WriteU32(f.obj+16, 0x00000001); err != nil {
		t.Fatal(err)
	}
	if err := im.WriteU64(f.obj+24, f.strAddr); err != nil {
		t.Fatal(err)
	}
	// Self-linked list node (prev = next = obj).
	if err := im.WriteU64(f.obj+32, f.obj); err != nil {
		t.Fatal(err)
	}
	if err := im.WriteU64(f.obj+40, f.obj); err != nil {
		t.Fatal(err)
	}
	return f
}

func leU64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func TestIntraClassPredicate(t *testing.T) {
	f := newSigFixture(t)
	p := &IntraClassPredicate{Off: 8, Const: 1} // rating+8 = obj+16
	if !p.Check(f.im, f.rating) {
		t.Fatal("predicate must hold at the true rating")
	}
	if p.Check(f.im, f.rating+4) {
		t.Fatal("predicate must fail off-target")
	}
	if p.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestStringFieldPredicate(t *testing.T) {
	f := newSigFixture(t)
	p := &StringFieldPredicate{Off: 16, MinLen: 4} // rating+16 = obj+24
	if !p.Check(f.im, f.rating) {
		t.Fatal("predicate must hold for a printable string")
	}
	// Point the name pointer at binary junk → fail.
	if err := f.im.WriteU64(f.obj+24, f.obj); err != nil { // vfptr bytes are not ASCII
		t.Fatal(err)
	}
	if p.Check(f.im, f.rating) {
		t.Fatal("predicate must fail on non-ASCII target")
	}
	// Dangling pointer → fail, not crash.
	if err := f.im.WriteU64(f.obj+24, 0xDEAD0000); err != nil {
		t.Fatal(err)
	}
	if p.Check(f.im, f.rating) {
		t.Fatal("predicate must fail on unmapped target")
	}
	if p.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestCodePointerPredicate(t *testing.T) {
	f := newSigFixture(t)
	p := &CodePointerPredicate{RatingOff: 8, Slot: 0, Prologue: []byte{0x53, 0x56, 0x8B, 0xF2}}
	if !p.Check(f.im, f.rating) {
		t.Fatal("predicate must hold")
	}
	wrong := &CodePointerPredicate{RatingOff: 8, Slot: 0, Prologue: []byte{0x90, 0x90}}
	if wrong.Check(f.im, f.rating) {
		t.Fatal("wrong prologue must fail")
	}
	// Candidate whose "object base" has no valid vfptr.
	if p.Check(f.im, f.rating+0x100) {
		t.Fatal("junk candidate must fail")
	}
	if p.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestListCyclePredicate(t *testing.T) {
	f := newSigFixture(t)
	p := &ListCyclePredicate{RatingOff: 8, PrevOff: 32, NextOff: 40}
	if !p.Check(f.im, f.rating) {
		t.Fatal("self-linked node must satisfy the cycle invariant")
	}
	// Break the cycle.
	if err := f.im.WriteU64(f.obj+40, f.obj+0x100); err != nil {
		t.Fatal(err)
	}
	if p.Check(f.im, f.rating) {
		t.Fatal("broken cycle must fail")
	}
	if p.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestSignatureConjunction(t *testing.T) {
	f := newSigFixture(t)
	sig := &Signature{
		Class: "T",
		Preds: []Predicate{
			&IntraClassPredicate{Off: 8, Const: 1},
			&CodePointerPredicate{RatingOff: 8, Slot: 0, Prologue: []byte{0x53, 0x56}},
		},
	}
	if !sig.Check(f.im, f.rating) {
		t.Fatal("conjunction must hold")
	}
	sig.Preds = append(sig.Preds, &IntraClassPredicate{Off: 8, Const: 99})
	if sig.Check(f.im, f.rating) {
		t.Fatal("one failing predicate must fail the conjunction")
	}
}

func TestCorruptDeniedOnReadOnly(t *testing.T) {
	// The exploit can only write to writable pages; attempting to corrupt
	// a value that happens to live in .rdata must fail.
	n := case3Net(t)
	p, err := NewProcess(PowerWorldProfile(), n, 44)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExploit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Corrupt(p, p.Bin.RData.Base, 120); err == nil {
		t.Fatal("corrupting read-only data must fail")
	}
}
