package dlr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSinusoidalRange(t *testing.T) {
	p := Sinusoidal(100, 200, 6)
	for h := 0.0; h < 24; h += 0.25 {
		v := p(h)
		if v < 100-1e-9 || v > 200+1e-9 {
			t.Fatalf("value %v at hour %v outside [100, 200]", v, h)
		}
	}
	// Peak one quarter-period after the phase offset.
	if math.Abs(p(12)-200) > 1e-9 {
		t.Fatalf("peak = %v at hour 12, want 200", p(12))
	}
	// At the phase offset the sinusoid crosses its midpoint; a quarter
	// period earlier it bottoms out.
	if math.Abs(p(6)-150) > 1e-9 {
		t.Fatalf("p(6) = %v, want 150 (phase 6)", p(6))
	}
	if math.Abs(p(0)-100) > 1e-9 {
		t.Fatalf("p(0) = %v, want 100", p(0))
	}
}

func TestTwoPeakDemandShape(t *testing.T) {
	p := TwoPeakDemand(200, 280, 300)
	// Two local maxima near 8:30 and 19:00.
	if p(8.5) <= p(3) || p(19) <= p(14) {
		t.Fatalf("demand peaks missing: %v@8.5 %v@3 %v@19 %v@14", p(8.5), p(3), p(19), p(14))
	}
	// Evening peak is the daily max.
	maxV := 0.0
	for h := 0.0; h < 24; h += 0.05 {
		maxV = math.Max(maxV, p(h))
	}
	if math.Abs(maxV-p(19)) > 1.0 {
		t.Fatalf("max %v not at evening peak %v", maxV, p(19))
	}
	// Midnight wrap-around continuity.
	if math.Abs(p(0.001)-p(23.999)) > 0.5 {
		t.Fatalf("discontinuity at midnight: %v vs %v", p(0.001), p(23.999))
	}
}

func TestConstantClampScale(t *testing.T) {
	c := Constant(50)
	if c(13) != 50 {
		t.Fatal("Constant")
	}
	cl := Sinusoidal(0, 300, 0).Clamp(100, 200)
	for h := 0.0; h < 24; h += 0.5 {
		if cl(h) < 100 || cl(h) > 200 {
			t.Fatalf("clamp failed at %v: %v", h, cl(h))
		}
	}
	s := Constant(50).Scale(2)
	if s(0) != 100 {
		t.Fatal("Scale")
	}
}

func TestSample(t *testing.T) {
	hours, values, err := Constant(7).Sample(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 96 || len(values) != 96 {
		t.Fatalf("15-minute day = %d samples, want 96", len(hours))
	}
	if hours[1] != 0.25 || values[95] != 7 {
		t.Fatalf("sample grid wrong: %v %v", hours[1], values[95])
	}
	if _, _, err := Constant(1).Sample(0); err == nil {
		t.Fatal("want step error")
	}
	if _, _, err := Constant(1).Sample(100000); err == nil {
		t.Fatal("want step error")
	}
}

func TestThermalRatingMonotonicity(t *testing.T) {
	p := DefaultConductor(230)
	cool := ThermalRatingMVA(Weather{AmbientC: 10, WindMS: 3}, p)
	hot := ThermalRatingMVA(Weather{AmbientC: 40, WindMS: 3}, p)
	calm := ThermalRatingMVA(Weather{AmbientC: 25, WindMS: 0}, p)
	windy := ThermalRatingMVA(Weather{AmbientC: 25, WindMS: 8}, p)
	if cool <= hot {
		t.Fatalf("cooler air must raise the rating: %v vs %v", cool, hot)
	}
	if windy <= calm {
		t.Fatalf("wind must raise the rating: %v vs %v", windy, calm)
	}
	// Sanity: a 230 kV line rates in the hundreds of MVA.
	if cool < 100 || cool > 3000 {
		t.Fatalf("implausible rating %v MVA", cool)
	}
}

func TestThermalRatingZeroAboveMaxTemp(t *testing.T) {
	p := DefaultConductor(230)
	if r := ThermalRatingMVA(Weather{AmbientC: 90, WindMS: 5}, p); r != 0 {
		t.Fatalf("rating must vanish when ambient exceeds conductor limit, got %v", r)
	}
}

func TestDiurnalWeather(t *testing.T) {
	w := DiurnalWeather(10, 35, 6, 10)
	dawn := w(5)
	noonish := w(17)
	if dawn.AmbientC >= noonish.AmbientC {
		t.Fatalf("afternoon must be warmer than dawn: %v vs %v", dawn.AmbientC, noonish.AmbientC)
	}
	for h := 0.0; h < 24; h += 0.5 {
		if w(h).WindMS < 0 {
			t.Fatalf("negative wind at %v", h)
		}
	}
}

func TestWeatherDrivenRating(t *testing.T) {
	pattern := WeatherDrivenRating(DiurnalWeather(10, 35, 6, 10), DefaultConductor(230))
	// Rating must vary over the day and stay positive.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for h := 0.0; h < 24; h += 0.25 {
		v := pattern(h)
		if v <= 0 {
			t.Fatalf("non-positive rating at hour %v", h)
		}
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV/minV < 1.1 {
		t.Fatalf("diurnal rating variation too small: [%v, %v]", minV, maxV)
	}
}

// Property: sinusoidal patterns stay within their band for random bands and
// phases, and are 24h periodic.
func TestPropertySinusoidal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := 50 + 100*r.Float64()
		hi := lo + 10 + 100*r.Float64()
		phase := 24 * r.Float64()
		p := Sinusoidal(lo, hi, phase)
		for i := 0; i < 50; i++ {
			h := 24 * r.Float64()
			v := p(h)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			if math.Abs(p(h)-p(h+24)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: thermal rating is monotone in ambient temperature and wind.
func TestPropertyThermalMonotone(t *testing.T) {
	params := DefaultConductor(345)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ta := 0 + 40*r.Float64()
		wind := 10 * r.Float64()
		base := ThermalRatingMVA(Weather{AmbientC: ta, WindMS: wind}, params)
		hotter := ThermalRatingMVA(Weather{AmbientC: ta + 5, WindMS: wind}, params)
		windier := ThermalRatingMVA(Weather{AmbientC: ta, WindMS: wind + 2}, params)
		return hotter <= base+1e-9 && windier >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
