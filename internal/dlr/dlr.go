// Package dlr models dynamic line ratings and daily demand: the time-varying
// inputs of the paper's 24-hour studies (Fig. 4a). It provides the sinusoidal
// rating patterns the paper uses directly, a simplified IEEE-738-style
// thermal model tying ratings to weather (ambient temperature and wind), and
// the classic two-peak daily demand curve.
package dlr

import (
	"fmt"
	"math"
)

// Pattern maps an hour of day (0 ≤ h < 24, fractional) to a value.
type Pattern func(hour float64) float64

// Sinusoidal returns the paper's Fig. 4a-style DLR pattern: a sinusoid
// between min and max with the given phase offset in hours. Favorable
// weather (wind, cool air) raises capacity during part of the day.
func Sinusoidal(min, max, phaseHours float64) Pattern {
	mid := (min + max) / 2
	amp := (max - min) / 2
	return func(hour float64) float64 {
		return mid + amp*math.Sin(2*math.Pi*(hour-phaseHours)/24)
	}
}

// TwoPeakDemand returns the canonical daily load curve with morning and
// evening peaks (the paper's aggregate demand pattern): a base load plus two
// Gaussian bumps centered at 8:30 and 19:00.
func TwoPeakDemand(base, morningPeak, eveningPeak float64) Pattern {
	bump := func(h, center, width float64) float64 {
		d := h - center
		// Wrap midnight so the curve is 24h-periodic.
		if d > 12 {
			d -= 24
		}
		if d < -12 {
			d += 24
		}
		return math.Exp(-d * d / (2 * width * width))
	}
	return func(hour float64) float64 {
		return base +
			(morningPeak-base)*bump(hour, 8.5, 2.2) +
			(eveningPeak-base)*bump(hour, 19, 2.8)
	}
}

// Constant returns a flat pattern.
func Constant(v float64) Pattern {
	return func(float64) float64 { return v }
}

// Clamp limits a pattern to [lo, hi].
func (p Pattern) Clamp(lo, hi float64) Pattern {
	return func(hour float64) float64 {
		v := p(hour)
		return math.Max(lo, math.Min(hi, v))
	}
}

// Scale multiplies a pattern by s.
func (p Pattern) Scale(s float64) Pattern {
	return func(hour float64) float64 { return s * p(hour) }
}

// Sample evaluates the pattern on a uniform grid with the given step in
// minutes, starting at hour 0. It returns the sampled hours and values.
func (p Pattern) Sample(stepMinutes float64) (hours, values []float64, err error) {
	if stepMinutes <= 0 || stepMinutes > 24*60 {
		return nil, nil, fmt.Errorf("dlr: invalid step %g minutes", stepMinutes)
	}
	n := int(24*60/stepMinutes + 1e-9)
	hours = make([]float64, 0, n)
	values = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		h := float64(i) * stepMinutes / 60
		hours = append(hours, h)
		values = append(values, p(h))
	}
	return hours, values, nil
}

// Weather is the ambient condition at a line.
type Weather struct {
	// AmbientC is air temperature in °C.
	AmbientC float64
	// WindMS is wind speed in m/s (perpendicular component).
	WindMS float64
}

// ThermalParams describe a conductor for the simplified IEEE-738-style
// rating computation.
type ThermalParams struct {
	// MaxConductorC is the maximum allowed conductor temperature in °C
	// (typically 75–100).
	MaxConductorC float64
	// ResistancePerKm is AC resistance in Ω/km at operating temperature.
	ResistancePerKm float64
	// VoltageKV is the line-to-line voltage.
	VoltageKV float64
	// DiameterM is the conductor diameter in meters.
	DiameterM float64
}

// DefaultConductor returns parameters of a typical 230 kV ACSR conductor.
func DefaultConductor(voltageKV float64) ThermalParams {
	return ThermalParams{
		MaxConductorC:   85,
		ResistancePerKm: 0.073e-3 * 1000, // 0.073 Ω/km
		VoltageKV:       voltageKV,
		DiameterM:       0.0281,
	}
}

// ThermalRatingMVA computes a simplified steady-state thermal rating: the
// ampacity at which Joule heating balances convective plus radiative
// cooling, converted to three-phase MVA. The model keeps the structure of
// IEEE Std 738 (forced convection grows with wind, cooling grows with the
// conductor–air temperature difference) without its full film-property
// tables; see DESIGN.md's substitution notes.
func ThermalRatingMVA(w Weather, p ThermalParams) float64 {
	dT := p.MaxConductorC - w.AmbientC
	if dT <= 0 {
		return 0
	}
	// Convective cooling coefficient (W/m·K): still-air floor plus a
	// wind-driven term ~ sqrt(v), the dominant sensitivity in IEEE 738.
	hConv := 3.0 + 5.5*math.Sqrt(math.Max(0, w.WindMS))
	qConv := hConv * dT * math.Pi * p.DiameterM // W/m
	// Radiative cooling, linearized around typical temperatures.
	qRad := 0.0178 * p.DiameterM * (math.Pow((p.MaxConductorC+273)/100, 4) - math.Pow((w.AmbientC+273)/100, 4))
	qTotal := qConv + qRad
	// Ampacity from I²R = qTotal per meter.
	rPerM := p.ResistancePerKm / 1000
	amps := math.Sqrt(qTotal / rPerM)
	// Three-phase MVA.
	return math.Sqrt(3) * p.VoltageKV * amps / 1000
}

// DiurnalWeather returns a deterministic 24-hour weather pattern: coolest
// just before dawn, hottest mid-afternoon; wind picking up in the afternoon
// with a phase controlled by windPhase.
func DiurnalWeather(minC, maxC, maxWindMS, windPhase float64) func(hour float64) Weather {
	return func(hour float64) Weather {
		t := (minC+maxC)/2 - (maxC-minC)/2*math.Cos(2*math.Pi*(hour-5)/24)
		w := maxWindMS / 2 * (1 + math.Sin(2*math.Pi*(hour-windPhase)/24))
		return Weather{AmbientC: t, WindMS: w}
	}
}

// WeatherDrivenRating composes a weather pattern with the thermal model to
// produce a physically grounded DLR pattern.
func WeatherDrivenRating(weather func(hour float64) Weather, params ThermalParams) Pattern {
	return func(hour float64) float64 {
		return ThermalRatingMVA(weather(hour), params)
	}
}
