package dispatch_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/mat"
)

func model3(t *testing.T) *dispatch.Model {
	t.Helper()
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	return m
}

func TestCase3NoAttackMatchesPaper(t *testing.T) {
	// Paper Section IV-A: with all ratings 160 and d = 300, the optimal
	// generation is (p1, p2) = (120, 180) with flows (-20, 140, 160).
	m := model3(t)
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.P[0]-120) > 1e-5 || math.Abs(res.P[1]-180) > 1e-5 {
		t.Fatalf("dispatch = %v, want [120 180]", res.P)
	}
	want := []float64{-20, 140, 160}
	for i, w := range want {
		if math.Abs(res.Flows[i]-w) > 1e-5 {
			t.Fatalf("flow[%d] = %v, want %v", i, res.Flows[i], w)
		}
	}
	// Line {2,3} is the congested one.
	found := false
	for _, li := range res.Binding {
		if li == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("line {2,3} not binding: %v", res.Binding)
	}
	if res.LineDuals[2] == 0 {
		t.Fatal("congested line must have a nonzero shadow price")
	}
	// Cost: b·p1·2 + b·p2 with b = 10 → 2·10·120 + 10·180 = 4200.
	if math.Abs(res.Cost-4200) > 1e-4 {
		t.Fatalf("cost = %v, want 4200", res.Cost)
	}
}

func TestCase3ManipulatedRatings(t *testing.T) {
	// Under attack ratings ua = (·, 100, 200) the cheap generator G2 is
	// allowed to push 200 MW down line {2,3}.
	m := model3(t)
	ratings := []float64{160, 100, 200}
	res, err := m.Solve(ratings)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.Flows[2]-200) > 1e-5 {
		t.Fatalf("flow on {2,3} = %v, want 200", res.Flows[2])
	}
	if math.Abs(res.Flows[1]-100) > 1e-5 {
		t.Fatalf("flow on {1,3} = %v, want 100", res.Flows[1])
	}
}

func TestInfeasibleWhenRatingsTooTight(t *testing.T) {
	m := model3(t)
	_, err := m.Solve([]float64{10, 10, 10})
	if !errors.Is(err, dispatch.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestQuadraticCase9(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var total float64
	for _, p := range res.P {
		total += p
	}
	if math.Abs(total-n.TotalDemand()) > 1e-5 {
		t.Fatalf("supply %v != demand %v", total, n.TotalDemand())
	}
	// With no congestion at this load level, marginal costs must be
	// (nearly) equal across interior units.
	var mcs []float64
	for i := range n.Gens {
		p := res.P[i]
		if p > n.Gens[i].Pmin+1e-4 && p < n.Gens[i].Pmax-1e-4 {
			mcs = append(mcs, n.Gens[i].MarginalCost(p))
		}
	}
	for i := 1; i < len(mcs); i++ {
		if math.Abs(mcs[i]-mcs[0]) > 1e-3 {
			t.Fatalf("marginal costs diverge: %v", mcs)
		}
	}
}

func TestSetDemands(t *testing.T) {
	m := model3(t)
	d := []float64{0, 0, 150}
	if err := m.SetDemands(d); err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range res.P {
		total += p
	}
	if math.Abs(total-150) > 1e-6 {
		t.Fatalf("supply %v != 150", total)
	}
	if err := m.SetDemands(nil); err != nil {
		t.Fatal(err)
	}
	if m.Demand != 300 {
		t.Fatalf("demand restore = %v", m.Demand)
	}
	if err := m.SetDemands([]float64{1}); err == nil {
		t.Fatal("want demand length error")
	}
}

func TestSolveErrors(t *testing.T) {
	m := model3(t)
	if _, err := m.Solve([]float64{1}); err == nil {
		t.Fatal("want ratings length error")
	}
	if _, err := m.SolveRobust(1.5); err == nil {
		t.Fatal("want margin range error")
	}
}

func TestSolveRobustTightensDLRLines(t *testing.T) {
	m := model3(t)
	// Note: case3 must deliver 300 MW over the two DLR lines into bus 3,
	// so any margin above 1/15 ≈ 6.7% is infeasible — itself a meaningful
	// observation about the cost of this mitigation.
	if _, err := m.SolveRobust(0.2); !errors.Is(err, dispatch.ErrInfeasible) {
		t.Fatalf("20%% margin should be infeasible on case3, got %v", err)
	}
	res, err := m.SolveRobust(0.05)
	if err != nil {
		t.Fatalf("SolveRobust: %v", err)
	}
	// DLR lines derated to 152; flows must respect that.
	for _, li := range m.Net.DLRLines() {
		if math.Abs(res.Flows[li]) > 152+1e-6 {
			t.Fatalf("robust dispatch exceeds derated rating on line %d: %v", li, res.Flows[li])
		}
	}
}

func TestFlowsForMatchesSolve(t *testing.T) {
	m := model3(t)
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := m.FlowsFor(res.P)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if math.Abs(flows[i]-res.Flows[i]) > 1e-9 {
			t.Fatal("FlowsFor mismatch")
		}
	}
	if _, err := m.FlowsFor([]float64{1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestEvaluateACCase3(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	// Attacked dispatch: ratings (160, 100, 200) push 200 MW down {2,3};
	// the true rating is 160, so the AC evaluation must flag a violation.
	res, err := m.Solve([]float64{160, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	trueRatings := []float64{160, 160, 160}
	ev, err := dispatch.EvaluateAC(n, res.P, trueRatings)
	if err != nil {
		t.Fatalf("EvaluateAC: %v", err)
	}
	if len(ev.Violations) == 0 {
		t.Fatal("attacked dispatch must violate true ratings under AC")
	}
	if ev.WorstPct < 20 {
		t.Fatalf("worst violation = %v%%, want ≥ 20%% (DC predicts 25%%)", ev.WorstPct)
	}
	// The AC-realized cost exceeds the DC estimate (losses are served by
	// the expensive slack unit).
	if ev.Cost <= res.Cost {
		t.Fatalf("AC cost %v must exceed DC cost %v", ev.Cost, res.Cost)
	}
	if _, err := dispatch.EvaluateAC(n, res.P, []float64{1}); err == nil {
		t.Fatal("want ratings length error")
	}
}

func TestEvaluateACNoViolationsNominal(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate against generous ratings: no violations expected.
	generous := []float64{300, 300, 300}
	ev, err := dispatch.EvaluateAC(n, res.P, generous)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Violations) != 0 || ev.WorstPct != 0 {
		t.Fatalf("unexpected violations: %+v", ev.Violations)
	}
}

func TestCase118Feasible(t *testing.T) {
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(nil)
	if err != nil {
		t.Fatalf("118-bus ED failed: %v", err)
	}
	var total float64
	for _, p := range res.P {
		total += p
	}
	if math.Abs(total-n.TotalDemand()) > 1e-4 {
		t.Fatalf("supply %v != demand %v", total, n.TotalDemand())
	}
	// Ratings respected.
	ratings := n.Ratings(nil)
	for li, f := range res.Flows {
		if u := ratings[li]; u > 0 && math.Abs(f) > u+1e-4 {
			t.Fatalf("line %d flow %v exceeds rating %v", li, f, u)
		}
	}
}

// Property: for random demands and rating scalings on case9, any returned
// dispatch is feasible (balance, bounds, flow limits), and cost decreases
// weakly as ratings are relaxed.
func TestPropertyDispatchFeasibilityAndMonotonicity(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	baseRatings := n.Ratings(nil)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		scale := 0.55 + 0.6*r.Float64()
		ratings := make([]float64, len(baseRatings))
		for i := range ratings {
			ratings[i] = baseRatings[i] * scale
		}
		res, err := m.Solve(ratings)
		if errors.Is(err, dispatch.ErrInfeasible) {
			return true // tight ratings may legitimately be infeasible
		}
		if err != nil {
			return false
		}
		var total float64
		for i, p := range res.P {
			if p < n.Gens[i].Pmin-1e-6 || p > n.Gens[i].Pmax+1e-6 {
				return false
			}
			total += p
		}
		if math.Abs(total-n.TotalDemand()) > 1e-5 {
			return false
		}
		for li, fl := range res.Flows {
			if u := ratings[li]; u > 0 && math.Abs(fl) > u+1e-5 {
				return false
			}
		}
		// Relaxing ratings cannot increase cost.
		relaxed := make([]float64, len(ratings))
		for i := range ratings {
			relaxed[i] = ratings[i] * 1.3
		}
		res2, err := m.Solve(relaxed)
		if err != nil {
			return false
		}
		return res2.Cost <= res.Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LP and QP agree when quadratic terms are (effectively) zero.
func TestPropertyLPQPConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		demand := 150 + 200*r.Float64()
		nLP, err := cases.Case3(cases.Case3Options{Demand: demand})
		if err != nil {
			return false
		}
		mLP, err := dispatch.BuildModel(nLP)
		if err != nil {
			return false
		}
		resLP, errLP := mLP.Solve(nil)

		nQP := nLP.Clone()
		for i := range nQP.Gens {
			nQP.Gens[i].CostA = 1e-7 // force the QP path
		}
		if err := nQP.Validate(); err != nil {
			return false
		}
		mQP, err := dispatch.BuildModel(nQP)
		if err != nil {
			return false
		}
		resQP, errQP := mQP.Solve(nil)
		if errLP != nil || errQP != nil {
			return errors.Is(errLP, dispatch.ErrInfeasible) == errors.Is(errQP, dispatch.ErrInfeasible)
		}
		return math.Abs(resLP.Cost-resQP.Cost) < 1e-2*(1+math.Abs(resLP.Cost)) &&
			mat.NormInf(mat.Sub(resLP.P, resQP.P)) < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
