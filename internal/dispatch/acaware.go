package dispatch

import (
	"fmt"

	"github.com/edsec/edattack/internal/grid"
)

// SolveACAware runs the operator's production dispatch loop: a DC economic
// dispatch iteratively tightened against AC feedback until the realized
// apparent-power loadings respect the (believed) line ratings. This stands
// in for the AC-OPF the commercial EMS packages run (PowerWorld in the
// paper's Fig. 8): the operating state it produces is safe *with respect to
// the ratings the EMS believes* — which is exactly the property the memory
// attack subverts.
//
// believedRatings are the MVA ratings the EMS is working with (possibly
// corrupted); entries ≤ 0 are unlimited. The returned evaluation is against
// those same believed ratings.
func (m *Model) SolveACAware(net *grid.Network, believedRatings []float64, maxIter int) (*Result, *ACEvaluation, error) {
	if len(believedRatings) != len(net.Lines) {
		return nil, nil, fmt.Errorf("dispatch: %d ratings for %d lines", len(believedRatings), len(net.Lines))
	}
	if maxIter <= 0 {
		maxIter = 6
	}
	eff := make([]float64, len(believedRatings))
	copy(eff, believedRatings)
	var lastRes *Result
	var lastEv *ACEvaluation
	for iter := 0; iter < maxIter; iter++ {
		res, err := m.Solve(eff)
		if err != nil {
			return nil, nil, err
		}
		ev, err := EvaluateAC(net, res.P, believedRatings)
		if err != nil {
			return nil, nil, err
		}
		lastRes, lastEv = res, ev
		if len(ev.Violations) == 0 {
			return res, ev, nil
		}
		// Tighten each violated line's DC limit by the MVA excess plus
		// a small margin, so the next dispatch leaves reactive headroom.
		for _, v := range ev.Violations {
			excess := v.LoadingMVA - v.RatingMVA
			eff[v.Line] -= 1.1 * excess
			if eff[v.Line] < 0.1*believedRatings[v.Line] {
				eff[v.Line] = 0.1 * believedRatings[v.Line]
			}
		}
	}
	return lastRes, lastEv, nil
}
