package dispatch

import (
	"fmt"
)

// LMPs computes locational marginal prices from a solved dispatch: the
// system energy price plus each bus's congestion component,
//
//	LMP_i = λ_energy − Σ_l μ_l · PTDF_{l,i},
//
// where μ_l is the (signed) shadow price of line l's rating constraint.
// The paper's introduction motivates a strategic market participant as one
// attacker persona; LMP shifts are how a rating manipulation turns into
// market advantage.
//
// The energy price λ is recovered from a marginal interior generator (one
// strictly inside its limits has marginal cost equal to its bus LMP).
func (m *Model) LMPs(res *Result) ([]float64, error) {
	if res == nil || len(res.P) != len(m.Net.Gens) {
		return nil, fmt.Errorf("dispatch: LMPs needs a result for %d generators", len(m.Net.Gens))
	}
	gens := m.Net.Gens

	// Recover the energy price from an interior unit: at optimality its
	// marginal cost equals LMP at its bus = λ − Σ μ·PTDF.
	lambda := 0.0
	found := false
	for i := range gens {
		p := res.P[i]
		if p > gens[i].Pmin+1e-6 && p < gens[i].Pmax-1e-6 {
			var cong float64
			for li := range m.Net.Lines {
				if res.LineDuals[li] != 0 {
					cong += res.LineDuals[li] * m.M.At(li, i)
				}
			}
			lambda = gens[i].MarginalCost(p) + cong
			found = true
			break
		}
	}
	if !found {
		// Every unit at a limit: fall back to the most expensive
		// dispatched unit's marginal cost as the price proxy.
		for i := range gens {
			if res.P[i] > gens[i].Pmin+1e-6 {
				if mc := gens[i].MarginalCost(res.P[i]); mc > lambda {
					lambda = mc
				}
			}
		}
	}

	nb := len(m.Net.Buses)
	lmp := make([]float64, nb)
	for bi := 0; bi < nb; bi++ {
		price := lambda
		for li := range m.Net.Lines {
			if mu := res.LineDuals[li]; mu != 0 {
				price -= mu * m.ptdf.At(li, bi)
			}
		}
		lmp[bi] = price
	}
	return lmp, nil
}

// CongestionRent computes the total congestion rent Σ_l μ_l·f_l of a
// dispatch — the merchandising surplus congestion creates, a compact
// market-impact scalar for attack studies.
func (m *Model) CongestionRent(res *Result) (float64, error) {
	if res == nil || len(res.Flows) != len(m.Net.Lines) {
		return 0, fmt.Errorf("dispatch: CongestionRent needs a result for %d lines", len(m.Net.Lines))
	}
	var rent float64
	for li := range m.Net.Lines {
		if mu := res.LineDuals[li]; mu != 0 {
			rent += mu * res.Flows[li]
		}
	}
	return rent, nil
}
