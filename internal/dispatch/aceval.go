package dispatch

import (
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/acflow"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/telemetry"
)

// Violation records one line whose realized loading exceeds a rating.
type Violation struct {
	// Line indexes Net.Lines.
	Line int
	// LoadingMVA is the realized apparent-power loading.
	LoadingMVA float64
	// RatingMVA is the rating that was exceeded.
	RatingMVA float64
	// Pct is the percentage overload, 100·(loading/rating − 1).
	Pct float64
}

// ACEvaluation is the nonlinear "ground truth" for a DC dispatch: what the
// paper measures with MATPOWER after the EMS issues the (possibly
// manipulated) setpoints.
type ACEvaluation struct {
	// Flow is the AC result underlying the evaluation.
	Flow *acflow.Result
	// ActualP is the realized per-generator output (slack-bus units
	// absorb losses and imbalance).
	ActualP []float64
	// Cost is the realized generation cost in $/h.
	Cost float64
	// Violations lists lines exceeding the supplied ratings, worst first
	// not guaranteed — iterate and compare Pct.
	Violations []Violation
	// WorstPct is the largest percentage overload (0 when none).
	WorstPct float64
}

// EvaluateAC runs an AC power flow with the given dispatch and checks the
// realized line loadings against ratings (MVA, indexed like Net.Lines;
// entries ≤ 0 are unlimited). This is the paper's measurement of attack
// impact: DC-optimal dispatches computed under manipulated ratings produce
// AC flows that exceed the true ratings.
func EvaluateAC(n *grid.Network, dispatch []float64, ratings []float64) (*ACEvaluation, error) {
	return EvaluateACWith(n, dispatch, ratings, nil)
}

// EvaluateACWith is EvaluateAC with an optional metrics registry that
// receives the AC solver's acflow_* counters.
func EvaluateACWith(n *grid.Network, dispatch []float64, ratings []float64, reg *telemetry.Registry) (*ACEvaluation, error) {
	if len(ratings) != len(n.Lines) {
		return nil, fmt.Errorf("dispatch: %d ratings for %d lines", len(ratings), len(n.Lines))
	}
	res, err := acflow.Solve(n, dispatch, acflow.Options{Metrics: reg})
	if err != nil {
		return nil, fmt.Errorf("dispatch: AC evaluation: %w", err)
	}
	slack, err := n.SlackIndex()
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	slackBusID := n.Buses[slack].ID

	actual := make([]float64, len(n.Gens))
	copy(actual, dispatch)
	// Slack-bus units jointly produce SlackP; split proportionally to
	// capacity.
	slackGens := n.GensAtBus(slackBusID)
	if len(slackGens) > 0 {
		var cap float64
		for _, gi := range slackGens {
			cap += n.Gens[gi].Pmax
		}
		for _, gi := range slackGens {
			share := 1.0 / float64(len(slackGens))
			if cap > 0 {
				share = n.Gens[gi].Pmax / cap
			}
			actual[gi] = res.SlackP * share
		}
	}
	ev := &ACEvaluation{Flow: res, ActualP: actual}
	for gi := range n.Gens {
		ev.Cost += n.Gens[gi].Cost(actual[gi])
	}
	for li := range n.Lines {
		u := ratings[li]
		if u <= 0 {
			continue
		}
		loading := res.LineLoadingMVA[li]
		if loading > u {
			pct := 100 * (loading/u - 1)
			ev.Violations = append(ev.Violations, Violation{
				Line: li, LoadingMVA: loading, RatingMVA: u, Pct: pct,
			})
			ev.WorstPct = math.Max(ev.WorstPct, pct)
		}
	}
	return ev, nil
}
