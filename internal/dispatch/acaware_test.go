package dispatch_test

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid/cases"
)

func TestSolveACAwareRespectsRatings(t *testing.T) {
	// With demand headroom, the AC-aware loop must converge to a state
	// whose realized loadings respect the believed ratings.
	n, err := cases.Case3(cases.Case3Options{Rating: 150, Demand: 280, QdRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	believed := []float64{150, 150, 150}
	res, ev, err := m.SolveACAware(n, believed, 0)
	if err != nil {
		t.Fatalf("SolveACAware: %v", err)
	}
	if len(ev.Violations) != 0 {
		t.Fatalf("AC-aware dispatch still violates: %+v", ev.Violations)
	}
	var total float64
	for _, p := range res.P {
		total += p
	}
	if math.Abs(total-280) > 1e-5 {
		t.Fatalf("balance broken: %v", total)
	}
}

func TestSolveACAwareCorruptedRatings(t *testing.T) {
	// Under corrupted ratings the loop keeps the system "safe" only
	// against the lie: true-rating violations appear.
	n, err := cases.Case3(cases.Case3Options{Rating: 150, Demand: 280, QdRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := []float64{150, 120, 240}
	res, evBelieved, err := m.SolveACAware(n, corrupted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evBelieved.Violations) != 0 {
		t.Fatalf("dispatch violates its own believed ratings: %+v", evBelieved.Violations)
	}
	evTrue, err := dispatch.EvaluateAC(n, res.P, []float64{150, 150, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(evTrue.Violations) == 0 {
		t.Fatal("corrupted ratings produced no true violation")
	}
}

func TestSolveACAwareBadInput(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SolveACAware(n, []float64{1}, 0); err == nil {
		t.Fatal("want ratings length error")
	}
}

func TestSolveRobustRatings(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	base := []float64{160, 160, 160}
	res, err := m.SolveRobustRatings(base, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range n.DLRLines() {
		if math.Abs(res.Flows[li]) > 160*0.97+1e-6 {
			t.Fatalf("derated limit exceeded on line %d: %v", li, res.Flows[li])
		}
	}
	if _, err := m.SolveRobustRatings([]float64{1}, 0.05); err == nil {
		t.Fatal("want length error")
	}
	if _, err := m.SolveRobustRatings(base, -0.1); err == nil {
		t.Fatal("want margin error")
	}
}

func TestConstraintGenerationWarmStartConsistency(t *testing.T) {
	// Re-solving the same model with different rating vectors must give
	// identical results whether the binding-set cache is warm or cold.
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	ratings := n.Ratings(nil)
	tight := make([]float64, len(ratings))
	for i := range ratings {
		tight[i] = ratings[i] * 0.97
	}
	// Warm path: nominal solve first, then the tight one.
	if _, err := warm.Solve(ratings); err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.Solve(tight)
	if err != nil {
		t.Fatal(err)
	}
	// Cold path: fresh model, tight solve directly.
	cold, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(tight)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmRes.Cost-coldRes.Cost) > 1e-6*(1+coldRes.Cost) {
		t.Fatalf("warm %v != cold %v", warmRes.Cost, coldRes.Cost)
	}
	for i := range warmRes.P {
		if math.Abs(warmRes.P[i]-coldRes.P[i]) > 1e-4 {
			t.Fatalf("dispatch differs at gen %d: %v vs %v", i, warmRes.P[i], coldRes.P[i])
		}
	}
}
