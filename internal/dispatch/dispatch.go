// Package dispatch implements the system operator's economic dispatch (ED):
// the DC optimal power flow of Section II of the paper, in both linear-cost
// (LP) and convex-quadratic-cost (QP) forms, plus the nonlinear (AC)
// evaluation pass used to measure what a dispatch actually does to the
// physical system.
//
// The DC-ED is formulated in PTDF (shift-factor) space: with nodal balance
// eliminated, line flows are affine in the generator outputs,
//
//	f = M·p + f₀,
//
// which keeps the KKT systems used by the bilevel attack generator small.
package dispatch

import (
	"errors"
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/lp"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/qp"
	"github.com/edsec/edattack/internal/telemetry"
)

// ErrInfeasible is returned when no dispatch satisfies the constraints —
// operationally, the condition under which the EMS raises an alarm instead
// of dispatching (the attacker must avoid triggering this).
var ErrInfeasible = errors.New("dispatch: economic dispatch infeasible")

// Model is the affine DC-ED model: flows as a function of generator output,
// plus cost data. Build once per (topology, demand) pair; ratings can vary
// per solve.
//
// A Model is NOT safe for concurrent Solve/SetDemands calls: Solve mutates
// the warm-start memory (lastBinding) and SetDemands rewrites Base/Demand.
// Concurrent workers should each hold a ShallowClone, which shares the
// expensive immutable inputs (Net, M, ptdf) and owns the mutable state.
type Model struct {
	// Net is the underlying network.
	Net *grid.Network
	// M is the lines×gens flow-sensitivity matrix (PTDF × generator
	// incidence).
	M *mat.Matrix
	// Base is the MW flow on each line when all generators are at zero
	// (load served implicitly by the slack, per PTDF reference).
	Base []float64
	// Demand is the total MW demand the dispatch must serve.
	Demand float64
	// ptdf is retained to rebuild Base under demand overrides.
	ptdf *mat.Matrix
	// lastBinding warm-starts constraint generation across solves.
	lastBinding []int
	// kkt carries QP factorization work across solves: the dispatch QP's
	// matrix family is fixed per model (only ratings and demand vary), so
	// base-KKT and Schur-complement factors are reusable. Like lastBinding
	// it is per-clone mutable state, never shared between workers.
	kkt qp.KKTCache
	// Metrics, when non-nil, receives dispatch_* counters and forwards to
	// the inner LP/QP solvers' lp_*/qp_* counters. Nil costs nothing.
	Metrics *telemetry.Registry
	// DenseSolver forces the inner LP and QP solves onto their dense
	// engines (tableau simplex, dense KKT factorization) instead of the
	// sparse ones; used for A/B measurement against dense baselines.
	DenseSolver bool
	// Workspace, when non-nil, supplies the inner LP/QP solvers' working
	// storage, reused across rowgen rounds and solves. Like lastBinding it
	// is per-clone mutable state: a workspace belongs to exactly one worker
	// at a time and is never shared concurrently. ShallowClone deliberately
	// leaves it nil — each worker attaches its own. Results are bit-identical
	// with and without one.
	Workspace *lp.Workspace
}

// BuildModel assembles the affine model for the network's nominal demand.
func BuildModel(n *grid.Network) (*Model, error) {
	ptdf, err := dcflow.PTDF(n)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	m := mat.New(len(n.Lines), len(n.Gens))
	for gi := range n.Gens {
		bi, err := n.BusIndex(n.Gens[gi].Bus)
		if err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		for li := 0; li < len(n.Lines); li++ {
			m.Set(li, gi, ptdf.At(li, bi))
		}
	}
	mod := &Model{Net: n, M: m, ptdf: ptdf}
	if err := mod.SetDemands(nil); err != nil {
		return nil, err
	}
	return mod, nil
}

// SetDemands overrides the per-bus demand (MW, indexed like Net.Buses) and
// recomputes the base flows. nil restores the network's nominal demand.
func (m *Model) SetDemands(demands []float64) error {
	n := m.Net
	d := make([]float64, len(n.Buses))
	if demands == nil {
		for i := range n.Buses {
			d[i] = n.Buses[i].Pd
		}
	} else {
		if len(demands) != len(n.Buses) {
			return fmt.Errorf("dispatch: %d demands for %d buses", len(demands), len(n.Buses))
		}
		copy(d, demands)
	}
	neg := make([]float64, len(d))
	var total float64
	for i, v := range d {
		neg[i] = -v
		total += v
	}
	base, err := m.ptdf.MulVec(neg)
	if err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	m.Base = base
	m.Demand = total
	return nil
}

// PTDF returns the lines×buses shift-factor matrix the model was built
// with. The matrix is shared, immutable model state: callers must treat it
// as read-only. It lets downstream consumers — LODF construction, the
// scenario-sweep engine — reuse the O(n³) factorization BuildModel already
// paid instead of recomputing it.
func (m *Model) PTDF() *mat.Matrix { return m.ptdf }

// ShallowClone returns a Model sharing this model's immutable inputs — the
// network, the flow-sensitivity matrix, and the PTDF — with its own copy of
// the demand state and empty warm-start memory. Clones are what parallel
// solver workers hold: building one costs a single Base-vector copy, versus
// the O(n³) PTDF factorization BuildModel pays.
func (m *Model) ShallowClone() *Model {
	c := &Model{
		Net:         m.Net,
		M:           m.M,
		Demand:      m.Demand,
		ptdf:        m.ptdf,
		Metrics:     m.Metrics,
		DenseSolver: m.DenseSolver,
	}
	c.Base = append([]float64(nil), m.Base...)
	return c
}

// ResetWarmStart clears the cross-solve warm-start memory (the
// constraint-generation binding set), putting the model in the state a
// fresh ShallowClone starts in. The KKT factorization cache is deliberately
// kept: cached factors are bit-identical to freshly computed ones (same
// matrices, deterministic factorization), so reuse never changes results —
// which is what lets a sequential fan-out share one model across tasks
// instead of cloning per task.
func (m *Model) ResetWarmStart() {
	m.lastBinding = m.lastBinding[:0]
}

// WarmStartState returns a copy of the warm-start memory, for callers that
// reset it per task and want to restore the pre-fan-out state afterwards.
func (m *Model) WarmStartState() []int {
	return append([]int(nil), m.lastBinding...)
}

// RestoreWarmStart overwrites the warm-start memory with a snapshot from
// WarmStartState.
func (m *Model) RestoreWarmStart(binding []int) {
	m.lastBinding = append(m.lastBinding[:0], binding...)
}

// ForDemands returns a ShallowClone with the per-bus demand overridden —
// the concurrency-safe counterpart of SetDemands for scenario workers that
// each dispatch a different load snapshot. When net is non-nil the clone is
// additionally pointed at that network (e.g. a per-scenario copy with scaled
// bus loads for AC evaluation); it must be topologically identical.
func (m *Model) ForDemands(demands []float64, net *grid.Network) (*Model, error) {
	c := m.ShallowClone()
	if net != nil {
		c.Net = net
	}
	if err := c.SetDemands(demands); err != nil {
		return nil, err
	}
	return c, nil
}

// FlowsFor evaluates the DC line flows for a dispatch p.
func (m *Model) FlowsFor(p []float64) ([]float64, error) {
	mp, err := m.M.MulVec(p)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	return mat.AxPlusY(1, mp, m.Base), nil
}

// Cost evaluates the total generation cost (including constant terms) for a
// dispatch p.
func (m *Model) Cost(p []float64) float64 {
	var c float64
	for i := range m.Net.Gens {
		c += m.Net.Gens[i].Cost(p[i])
	}
	return c
}

// HasQuadraticCost reports whether any unit has a strictly convex cost.
func (m *Model) HasQuadraticCost() bool {
	for i := range m.Net.Gens {
		if m.Net.Gens[i].CostA > 0 {
			return true
		}
	}
	return false
}

// Result is a solved economic dispatch.
type Result struct {
	// P is the MW output per generator.
	P []float64
	// Flows is the DC MW flow per line under P.
	Flows []float64
	// Cost is the total generation cost in $/h (including constant
	// terms).
	Cost float64
	// LineDuals holds the shadow price of each line's rating constraint
	// (λ⁺ − λ⁻, nonzero only when congested). Indexed like Net.Lines;
	// entries for unlimited lines are zero.
	LineDuals []float64
	// Binding lists indices of lines whose rating constraint is active
	// (within tolerance) in either direction.
	Binding []int
	// Iterations is the total inner-solver iteration count (simplex pivots
	// or active-set steps) across all constraint-generation rounds.
	Iterations int
	// Rounds is the number of constraint-generation rounds performed.
	Rounds int
}

// Solve runs the DC economic dispatch against the given effective line
// ratings (MW, indexed like Net.Lines; entries ≤ 0 mean unlimited). When
// ratings is nil the network's static/DLR defaults are used.
//
// Internally the flow constraints are generated lazily: the dispatch is
// solved over a growing subset of line limits until no omitted line is
// violated, which is equivalent to the full problem (omitted constraints
// are slack with zero multipliers) and far faster on meshed systems where
// few lines ever bind.
func (m *Model) Solve(ratings []float64) (*Result, error) {
	if ratings == nil {
		ratings = m.Net.Ratings(nil)
	}
	if len(ratings) != len(m.Net.Lines) {
		return nil, fmt.Errorf("dispatch: %d ratings for %d lines", len(ratings), len(m.Net.Lines))
	}
	solveSubset := m.solveLP
	if m.HasQuadraticCost() {
		solveSubset = m.solveQP
	}
	// Seed with the lines that bound the previous solve on this model —
	// across bilevel nodes and time steps the binding set is stable.
	included := make([]int, 0, len(m.lastBinding)+8)
	inSet := make([]bool, len(m.Net.Lines))
	for _, li := range m.lastBinding {
		if li < len(inSet) && !inSet[li] && ratings[li] > 0 {
			inSet[li] = true
			included = append(included, li)
		}
	}
	maxRounds := len(m.Net.Lines) + 2
	totalIters := 0
	for round := 0; round < maxRounds; round++ {
		res, err := solveSubset(ratings, included)
		if err != nil {
			if m.Metrics != nil && errors.Is(err, ErrInfeasible) {
				m.Metrics.Counter("dispatch_infeasible_total").Inc()
			}
			return nil, err
		}
		totalIters += res.Iterations
		violated := false
		for li, f := range res.Flows {
			u := ratings[li]
			if u > 0 && !inSet[li] && math.Abs(f) > u*(1+1e-9)+1e-9 {
				inSet[li] = true
				included = append(included, li)
				violated = true
			}
		}
		if !violated {
			m.lastBinding = append(m.lastBinding[:0], res.Binding...)
			res.Iterations = totalIters
			res.Rounds = round + 1
			if m.Metrics != nil {
				m.Metrics.Counter("dispatch_solves_total").Inc()
				m.Metrics.Counter("dispatch_rowgen_rounds_total").Add(int64(res.Rounds))
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("dispatch: constraint generation did not converge after %d rounds", maxRounds)
}

// solveLP handles purely linear costs via the simplex solver, enforcing
// flow limits only for the included line subset.
func (m *Model) solveLP(ratings []float64, included []int) (*Result, error) {
	gens := m.Net.Gens
	ng := len(gens)
	prob := lp.NewProblem(ng)
	c := make([]float64, ng)
	for i := range gens {
		c[i] = gens[i].CostB
		if err := prob.SetBounds(i, gens[i].Pmin, gens[i].Pmax); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
	}
	if err := prob.SetObjective(c, false); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	ones := make([]float64, ng)
	for i := range ones {
		ones[i] = 1
	}
	if _, err := prob.AddConstraint(ones, lp.EQ, m.Demand); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	type rowRef struct {
		line int
		dir  float64 // +1 upper, −1 lower
		row  int
	}
	var refs []rowRef
	for _, li := range included {
		u := ratings[li]
		if u <= 0 {
			continue
		}
		row := m.M.Row(li)
		r1, err := prob.AddConstraint(row, lp.LE, u-m.Base[li])
		if err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		refs = append(refs, rowRef{li, 1, r1})
		negRow := make([]float64, ng)
		for j, v := range row {
			negRow[j] = -v
		}
		r2, err := prob.AddConstraint(negRow, lp.LE, u+m.Base[li])
		if err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		refs = append(refs, rowRef{li, -1, r2})
	}
	sol, err := lp.SolveWith(prob, lp.Options{Metrics: m.Metrics, DenseSolver: m.DenseSolver, Workspace: m.Workspace})
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("dispatch: unexpected LP status %v", sol.Status)
	}
	res, err := m.assemble(sol.X, ratings)
	if err != nil {
		return nil, err
	}
	res.Iterations = sol.Iterations
	for _, ref := range refs {
		// Dual of the ≤ row is ≤ 0 under the lp sign convention; a
		// congested line has negative dual. Flip to a conventional
		// non-negative congestion price signed by direction.
		res.LineDuals[ref.line] += -sol.Dual[ref.row] * ref.dir
	}
	return res, nil
}

// solveQP handles convex quadratic costs via the active-set solver,
// enforcing flow limits only for the included line subset.
func (m *Model) solveQP(ratings []float64, included []int) (*Result, error) {
	gens := m.Net.Gens
	ng := len(gens)
	prob := qp.NewProblem(ng)
	for i := range gens {
		if err := prob.SetQuadCoeff(i, i, 2*gens[i].CostA); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		if err := prob.SetLinCoeff(i, gens[i].CostB); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		if err := prob.SetBounds(i, gens[i].Pmin, gens[i].Pmax); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
	}
	ones := make([]float64, ng)
	for i := range ones {
		ones[i] = 1
	}
	if _, err := prob.AddEquality(ones, m.Demand); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	type rowRef struct {
		line int
		dir  float64
		row  int
	}
	var refs []rowRef
	var rowKeys []int64
	for _, li := range included {
		u := ratings[li]
		if u <= 0 {
			continue
		}
		row := m.M.Row(li)
		r1, err := prob.AddInequality(row, u-m.Base[li])
		if err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		refs = append(refs, rowRef{li, 1, r1})
		rowKeys = append(rowKeys, int64(li)*2)
		negRow := make([]float64, ng)
		for j, v := range row {
			negRow[j] = -v
		}
		r2, err := prob.AddInequality(negRow, u+m.Base[li])
		if err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		refs = append(refs, rowRef{li, -1, r2})
		rowKeys = append(rowKeys, int64(li)*2+1)
	}
	// The QP family solved here is fixed per model up to right-hand sides:
	// the Hessian (cost curves), the balance row, the generator bounds, and
	// the ±PTDF gradient behind each (line, direction) key never change —
	// only ratings and demand do. That is exactly the contract qp.KKTCache
	// requires, so repeated dispatch solves share base factorizations.
	sol, err := qp.SolveWith(prob, qp.Options{
		Metrics:   m.Metrics,
		DenseKKT:  m.DenseSolver,
		Cache:     &m.kkt,
		RowKeys:   rowKeys,
		Workspace: m.Workspace,
	})
	if err != nil {
		if errors.Is(err, qp.ErrInfeasible) {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	res, err := m.assemble(sol.X, ratings)
	if err != nil {
		return nil, err
	}
	res.Iterations = sol.Iterations
	for _, ref := range refs {
		res.LineDuals[ref.line] += sol.IneqDual[ref.row] * ref.dir
	}
	return res, nil
}

// assemble computes flows, cost, and binding-set metadata for a dispatch.
func (m *Model) assemble(p []float64, ratings []float64) (*Result, error) {
	flows, err := m.FlowsFor(p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		P:         mat.CloneVec(p),
		Flows:     flows,
		Cost:      m.Cost(p),
		LineDuals: make([]float64, len(m.Net.Lines)),
	}
	const bindTol = 1e-5
	for li := range m.Net.Lines {
		u := ratings[li]
		if u <= 0 {
			continue
		}
		if math.Abs(flows[li])-u > -bindTol*(1+u) {
			res.Binding = append(res.Binding, li)
		}
	}
	return res, nil
}

// SolveRobust is the "attack-aware dispatch" mitigation sketched in Section
// VII: ratings on DLR lines are derated by the given margin (e.g. 0.15 for
// 15%) before dispatching, bounding the violation an in-band rating
// manipulation can cause. It derates the network's static/DLR defaults; use
// SolveRobustRatings to derate a specific rating snapshot.
func (m *Model) SolveRobust(margin float64) (*Result, error) {
	return m.SolveRobustRatings(m.Net.Ratings(nil), margin)
}

// SolveRobustRatings derates the DLR lines of an explicit rating snapshot
// by margin and dispatches against the result.
func (m *Model) SolveRobustRatings(ratings []float64, margin float64) (*Result, error) {
	if margin < 0 || margin >= 1 {
		return nil, fmt.Errorf("dispatch: robust margin %g outside [0, 1)", margin)
	}
	if len(ratings) != len(m.Net.Lines) {
		return nil, fmt.Errorf("dispatch: %d ratings for %d lines", len(ratings), len(m.Net.Lines))
	}
	derated := make([]float64, len(ratings))
	copy(derated, ratings)
	for _, li := range m.Net.DLRLines() {
		derated[li] *= 1 - margin
	}
	return m.Solve(derated)
}
