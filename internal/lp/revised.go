package lp

import (
	"fmt"
	"math"
	"sort"

	"github.com/edsec/edattack/internal/sparse"
)

// This file implements the sparse revised simplex engine. It follows the
// dense tableau solver's decision logic exactly — the same two phases, the
// same Dantzig pricing scan with Bland fallback, the same bound-flipping
// ratio tests, the same refresh cadence — but represents the basis inverse
// implicitly: the constraint matrix is stored once in compressed-column
// form, the basis is a sparse LU factorization (Markowitz pivoting, from
// internal/sparse), and each simplex pivot appends one product-form eta term
// instead of rewriting an m×total tableau. Entering columns come from FTRAN
// solves, pivot rows (for reduced-cost updates and dual pricing) from BTRAN
// solves. The eta file is folded back into a fresh LU factorization every
// etaRefactorLimit pivots, bounding both solve cost and drift.
//
// Warm starts skip the tableau-driving pivots of the dense path entirely:
// the warm basis seeds the initial LU factorization directly (or reuses the
// cached factorization when the basis is unchanged since the last capture),
// and the same dual-simplex/certification flow as the dense engine runs on
// top.

// etaRefactorLimit is the eta-file length at which the basis is
// refactorized. Each FTRAN/BTRAN applies every eta term, so long files make
// solves linear in pivot history; 64 keeps the product form short while
// amortizing the Markowitz factorization over many pivots.
const etaRefactorLimit = 64

// pivAgreeTol bounds the relative disagreement tolerated between the
// FTRAN-computed and BTRAN-computed values of one pivot element. The two are
// the same number in exact arithmetic; eta-file drift makes them diverge,
// and dividing primal updates by one while the ratio test accepted the other
// is exactly how a near-singular pivot slips through. On disagreement the
// basis is refactorized and both are recomputed.
const pivAgreeTol = 1e-7

func pivotsAgree(a, b float64) bool {
	return math.Abs(a-b) <= pivAgreeTol*(1+math.Abs(a)+math.Abs(b))
}

// rmatrix is the flipped constraint matrix [A'|S'] of one problem shape in
// compressed-column form (artificial columns are an implicit identity). Row
// sign flips mirror the dense engine's setup so both engines solve the same
// internal problem. The matrix is immutable after construction and is
// retained across warm solves with the engine cache.
type rmatrix struct {
	m, n, nslack, total, artOff int

	colPtr []int // len artOff+1: structural then slack columns
	rowInd []int
	colVal []float64

	rhsFlip []bool
	rhs     []float64 // sign-flipped RHS per row
}

// buildRMatrix compresses the problem's rows into column form, choosing row
// sign flips exactly like the dense engine does at tableau setup (so a cold
// sparse solve and a cold dense solve start from identical internal data).
func buildRMatrix(p *Problem) *rmatrix {
	return buildRMatrixInto(p, nil, nil)
}

// buildRMatrixInto is buildRMatrix writing into mt's existing arrays (grown
// as needed) with build temporaries drawn from ws. Either may be nil; all
// four combinations compute the identical matrix.
func buildRMatrixInto(p *Problem, mt *rmatrix, ws *Workspace) *rmatrix {
	m, n := len(p.rows), p.nvars
	nslack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nslack++
		}
	}
	if mt == nil {
		mt = &rmatrix{}
	}
	mt.m, mt.n, mt.nslack = m, n, nslack
	mt.total = n + nslack + m
	mt.artOff = n + nslack
	mt.rhsFlip = growBool(mt.rhsFlip, m)
	mt.rhs = growFloat(mt.rhs, m)
	// Initial nonbasic placement of structural variables (slacks start at
	// zero), needed only to reproduce the dense engine's flip decision.
	var x0 []float64
	var cnt, next []int
	if ws != nil {
		ws.bx0 = growFloat(ws.bx0, n)
		ws.bcnt = growInt(ws.bcnt, mt.artOff)
		ws.bnext = growInt(ws.bnext, mt.artOff)
		x0, cnt, next = ws.bx0, ws.bcnt, ws.bnext
		for i := range cnt {
			cnt[i] = 0
		}
	} else {
		x0 = make([]float64, n)
		cnt = make([]int, mt.artOff)
		next = make([]int, mt.artOff)
	}
	for j := 0; j < n; j++ {
		x0[j] = 0
		switch {
		case !math.IsInf(p.lower[j], -1):
			x0[j] = p.lower[j]
		case !math.IsInf(p.upper[j], 1):
			x0[j] = p.upper[j]
		}
	}
	for _, r := range p.rows {
		for _, j := range r.ind {
			cnt[j]++
		}
	}
	for j := n; j < mt.artOff; j++ {
		cnt[j] = 1
	}
	mt.colPtr = growInt(mt.colPtr, mt.artOff+1)
	mt.colPtr[0] = 0
	for j := 0; j < mt.artOff; j++ {
		mt.colPtr[j+1] = mt.colPtr[j] + cnt[j]
	}
	nnz := mt.colPtr[mt.artOff]
	mt.rowInd = growInt(mt.rowInd, nnz)
	mt.colVal = growFloat(mt.colVal, nnz)
	copy(next, mt.colPtr[:mt.artOff])

	slackAt := n
	for i, r := range p.rows {
		resid := r.rhs
		for k, j := range r.ind {
			resid -= r.val[k] * x0[j]
		}
		flip := resid < 0
		mt.rhsFlip[i] = flip
		sign := 1.0
		if flip {
			sign = -1
		}
		mt.rhs[i] = sign * r.rhs
		for k, j := range r.ind {
			mt.rowInd[next[j]] = i
			mt.colVal[next[j]] = sign * r.val[k]
			next[j]++
		}
		switch r.rel {
		case LE:
			mt.rowInd[next[slackAt]] = i
			mt.colVal[next[slackAt]] = sign
			next[slackAt]++
			slackAt++
		case GE:
			mt.rowInd[next[slackAt]] = i
			mt.colVal[next[slackAt]] = -sign
			next[slackAt]++
			slackAt++
		}
	}
	return mt
}

// revised is the working state of one sparse revised-simplex solve. Basis
// positions (the LU's column order) play the role the tableau engine's rows
// play: xB, the eta file, and FTRAN outputs are indexed by position.
type revised struct {
	opts Options

	m, n, nslack, total, artOff int
	mat                         *rmatrix

	lower, upper []float64 // per variable, incl. slack/artificial
	costII       []float64
	z            []float64
	basis        []int // basis[pos] = variable
	status       []varStatus
	xB           []float64 // per position
	xN           []float64 // per variable

	lu *sparse.LU
	// Product-form eta file: term k pivots position etaPiv[k] with diagonal
	// etaDiag[k] and off-diagonal entries etaPos/etaVal[etaPtr[k]:etaPtr[k+1]].
	etaPtr  []int
	etaPos  []int
	etaVal  []float64
	etaPiv  []int
	etaDiag []float64
	netas   int

	iters       int
	phase1Iters int
	degenPivots int
	boundFlips  int
	dualPivots  int
	ftran       int
	btran       int
	etaApps     int
	refactors   int
	bland       bool
	stall       int

	maximize bool
	userC    []float64

	col  []float64 // FTRAN scratch (row space in, position space out)
	rho  []float64 // BTRAN scratch (position space in, row space out)
	arow []float64 // pivot row over every column
	dv   []float64 // row-space accumulator for dual bound flips

	// cacheRev records Problem.rev when the finished engine was retained as
	// the next warm solve's starting state (see Problem.storeRCache and
	// Workspace.retain).
	cacheRev int

	// ws, when non-nil, is the workspace this engine draws factorization
	// scratch and solution buffers from (and is retained on between solves).
	ws *Workspace

	// Per-engine reusable scratch: phase-I cost vector, refactorization
	// column pointers, unit artificial columns (artRow[i:i+1]/artOne[i:i+1]
	// is column i of the identity), and the dual ratio-test candidate and
	// flip lists with their sorter.
	costI      []float64
	refInd     [][]int
	refVal     [][]float64
	artRow     []int
	artOne     []float64
	cands      []dualCand
	flips      []int
	candSorter dualCandSorter
}

// dualCandSorter orders dual ratio-test candidates by (ratio asc, |alpha|
// desc, j asc) — a strict total order (j is unique), so the sorted sequence
// is independent of the sort algorithm; the pointer receiver keeps sort.Sort
// allocation-free.
type dualCandSorter struct{ c []dualCand }

func (s *dualCandSorter) Len() int { return len(s.c) }
func (s *dualCandSorter) Less(a, b int) bool {
	ca, cb := s.c[a], s.c[b]
	if ca.ratio != cb.ratio {
		return ca.ratio < cb.ratio
	}
	aa, ab := math.Abs(ca.alpha), math.Abs(cb.alpha)
	if aa != ab {
		return aa > ab
	}
	return ca.j < cb.j
}
func (s *dualCandSorter) Swap(a, b int) { s.c[a], s.c[b] = s.c[b], s.c[a] }

// newRevised builds a cold-start engine: matrix rebuilt from the problem's
// current state, artificial basis, identity LU. With a workspace the
// retained engine's allocations are reused; the matrix is still rebuilt so a
// cold solve never depends on retained state (bound edits change the flip
// pattern without bumping rev).
func newRevised(p *Problem, opts Options) (*revised, error) {
	for j := 0; j < p.nvars; j++ {
		if p.lower[j] > p.upper[j] {
			return nil, fmt.Errorf("lp: variable %d has inconsistent bounds [%g, %g]", j, p.lower[j], p.upper[j])
		}
	}
	var e *revised
	if ws := opts.Workspace; ws != nil {
		e = ws.detach()
		if e == nil {
			e = &revised{ws: ws}
		}
		e.reinit(p, buildRMatrixInto(p, e.mat, ws), opts)
	} else {
		e = newRevisedSkeleton(p, buildRMatrix(p), opts)
	}

	// Initial nonbasic placement, exactly as the dense engine.
	for j := 0; j < e.total; j++ {
		switch {
		case !math.IsInf(e.lower[j], -1):
			e.status[j] = atLower
			e.xN[j] = e.lower[j]
		case !math.IsInf(e.upper[j], 1):
			e.status[j] = atUpper
			e.xN[j] = e.upper[j]
		default:
			e.status[j] = isFree
			e.xN[j] = 0
		}
	}
	// Artificial basis: position i holds artificial i, so B is the identity.
	for i := 0; i < e.m; i++ {
		e.basis[i] = e.artOff + i
	}
	if err := e.refactor(); err != nil {
		return nil, fmt.Errorf("lp: factorizing identity basis: %w", err)
	}
	e.refactors-- // the initial factorization is setup, not churn
	// Residuals the artificials absorb: v = b' − Σ A'_j·x_j over nonbasic
	// structural values (B = I, so xB = v directly).
	v := e.col
	for i := range v {
		v[i] = e.mat.rhs[i]
	}
	for j := 0; j < e.artOff; j++ {
		if x := e.xN[j]; x != 0 {
			for q := e.mat.colPtr[j]; q < e.mat.colPtr[j+1]; q++ {
				v[e.mat.rowInd[q]] -= e.mat.colVal[q] * x
			}
		}
	}
	for i := 0; i < e.m; i++ {
		art := e.artOff + i
		e.basis[i] = art
		e.status[art] = basic
		e.xB[i] = v[i]
		e.xN[art] = v[i]
	}
	return e, nil
}

// newRevisedSkeleton allocates an engine around a built matrix, with bounds
// and costs loaded but no basis state yet.
func newRevisedSkeleton(p *Problem, mt *rmatrix, opts Options) *revised {
	e := &revised{}
	e.reinit(p, mt, opts)
	return e
}

// reinit (re)initializes an engine around a built matrix, growing (or on a
// fresh engine, allocating) every working array, resetting counters and eta
// state, and recycling the previous LU's arrays into the workspace's
// factorization scratch. After reinit the engine is indistinguishable from a
// freshly constructed skeleton: no stale array content is ever read before
// being rewritten (the cold and warm setup paths write every slot they use).
func (e *revised) reinit(p *Problem, mt *rmatrix, opts Options) {
	e.opts = opts
	e.m, e.n, e.nslack = mt.m, mt.n, mt.nslack
	e.total, e.artOff = mt.total, mt.artOff
	e.mat = mt
	e.maximize, e.userC = p.maximize, p.c
	e.lower = growFloat(e.lower, mt.total)
	e.upper = growFloat(e.upper, mt.total)
	e.costII = growFloat(e.costII, mt.total)
	e.z = growFloat(e.z, mt.total)
	e.basis = growInt(e.basis, mt.m)
	if cap(e.status) < mt.total {
		e.status = make([]varStatus, mt.total)
	} else {
		e.status = e.status[:mt.total]
	}
	e.xB = growFloat(e.xB, mt.m)
	e.xN = growFloat(e.xN, mt.total)
	if cap(e.etaPtr) < etaRefactorLimit+1 {
		e.etaPtr = make([]int, 1, etaRefactorLimit+1)
	} else {
		e.etaPtr = e.etaPtr[:1]
	}
	e.etaPtr[0] = 0
	e.etaPos = e.etaPos[:0]
	e.etaVal = e.etaVal[:0]
	e.etaPiv = e.etaPiv[:0]
	e.etaDiag = e.etaDiag[:0]
	e.netas = 0
	if e.lu != nil {
		if e.ws != nil {
			e.ws.fact.Recycle(e.lu)
		}
		e.lu = nil
	}
	e.col = growFloat(e.col, mt.m)
	e.rho = growFloat(e.rho, mt.m)
	e.arow = growFloat(e.arow, mt.total)
	e.dv = growFloat(e.dv, mt.m)
	e.artRow = growInt(e.artRow, mt.m)
	e.artOne = growFloat(e.artOne, mt.m)
	for i := 0; i < mt.m; i++ {
		e.artRow[i] = i
		e.artOne[i] = 1
	}
	e.iters, e.phase1Iters, e.degenPivots, e.boundFlips, e.dualPivots = 0, 0, 0, 0, 0
	e.ftran, e.btran, e.etaApps, e.refactors = 0, 0, 0, 0
	e.bland, e.stall = false, 0
	e.cacheRev = 0
	e.loadBoundsAndCost(p)
}

// loadBoundsAndCost refreshes the per-variable bound and cost vectors from
// the problem (slacks [0,∞), artificials [0,∞) until pinned).
func (e *revised) loadBoundsAndCost(p *Problem) {
	copy(e.lower[:e.n], p.lower)
	copy(e.upper[:e.n], p.upper)
	for j := e.n; j < e.total; j++ {
		e.lower[j], e.upper[j] = 0, math.Inf(1)
	}
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	for j := 0; j < e.total; j++ {
		if j < e.n {
			e.costII[j] = sign * p.c[j]
		} else {
			e.costII[j] = 0
		}
	}
}

// scatterCol adds column j of the internal matrix [A'|S'|I] into out (row
// space).
func (e *revised) scatterCol(j int, out []float64) {
	if j >= e.artOff {
		out[j-e.artOff]++
		return
	}
	mt := e.mat
	for q := mt.colPtr[j]; q < mt.colPtr[j+1]; q++ {
		out[mt.rowInd[q]] += mt.colVal[q]
	}
}

// colEntries returns column j as (rows, values) slices for LU assembly.
// Artificial columns are served from the precomputed identity arrays so the
// hot refactorization path allocates nothing.
func (e *revised) colEntries(j int) ([]int, []float64) {
	if j >= e.artOff {
		i := j - e.artOff
		return e.artRow[i : i+1], e.artOne[i : i+1]
	}
	mt := e.mat
	return mt.rowInd[mt.colPtr[j]:mt.colPtr[j+1]], mt.colVal[mt.colPtr[j]:mt.colPtr[j+1]]
}

// ftranVec solves B·x = v in place: v enters in row space, leaves as the
// basic-position representation x = B⁻¹v.
func (e *revised) ftranVec(v []float64) {
	e.lu.Solve(v)
	for k := 0; k < e.netas; k++ {
		r := e.etaPiv[k]
		t := v[r] / e.etaDiag[k]
		if t != 0 {
			for q := e.etaPtr[k]; q < e.etaPtr[k+1]; q++ {
				v[e.etaPos[q]] -= e.etaVal[q] * t
			}
		}
		v[r] = t
	}
	e.ftran++
	e.etaApps += e.netas
}

// btranVec solves Bᵀ·y = w in place: w enters in basic-position space,
// leaves in row space. Eta transposes apply in reverse order before the LU.
func (e *revised) btranVec(w []float64) {
	for k := e.netas - 1; k >= 0; k-- {
		r := e.etaPiv[k]
		s := w[r]
		for q := e.etaPtr[k]; q < e.etaPtr[k+1]; q++ {
			s -= e.etaVal[q] * w[e.etaPos[q]]
		}
		w[r] = s / e.etaDiag[k]
	}
	e.lu.SolveT(w)
	e.btran++
	e.etaApps += e.netas
}

// ftranCol loads B⁻¹·(column j) into e.col.
func (e *revised) ftranCol(j int) {
	for i := range e.col {
		e.col[i] = 0
	}
	e.scatterCol(j, e.col)
	e.ftranVec(e.col)
}

// pivotRow loads row r of B⁻¹·[A'|S'|I] into e.arow via one BTRAN: the row
// is ρᵀ·N with ρ = B⁻ᵀe_r.
func (e *revised) pivotRow(r int) {
	for i := range e.rho {
		e.rho[i] = 0
	}
	e.rho[r] = 1
	e.btranVec(e.rho)
	mt := e.mat
	for j := 0; j < e.artOff; j++ {
		var s float64
		for q := mt.colPtr[j]; q < mt.colPtr[j+1]; q++ {
			s += mt.colVal[q] * e.rho[mt.rowInd[q]]
		}
		e.arow[j] = s
	}
	for i := 0; i < e.m; i++ {
		e.arow[e.artOff+i] = e.rho[i]
	}
}

// appendEta records the product-form term of a pivot at position r whose
// entering column (B_old⁻¹ A_enter) is currently in e.col.
func (e *revised) appendEta(r int) {
	for i, v := range e.col {
		if i != r && v != 0 {
			e.etaPos = append(e.etaPos, i)
			e.etaVal = append(e.etaVal, v)
		}
	}
	e.etaPiv = append(e.etaPiv, r)
	e.etaDiag = append(e.etaDiag, e.col[r])
	e.etaPtr = append(e.etaPtr, len(e.etaPos))
	e.netas++
}

// refactor rebuilds the LU from the current basis columns and clears the
// eta file. The column-pointer tables live on the engine and the Markowitz
// working set (plus the retired LU's arrays) on the workspace, so steady-
// state refactorizations allocate nothing.
func (e *revised) refactor() error {
	if cap(e.refInd) < e.m {
		e.refInd = make([][]int, e.m)
		e.refVal = make([][]float64, e.m)
	}
	ind := e.refInd[:e.m]
	val := e.refVal[:e.m]
	for pos, v := range e.basis {
		ind[pos], val[pos] = e.colEntries(v)
	}
	var fs *sparse.FactorScratch
	if e.ws != nil {
		fs = &e.ws.fact
	}
	lu, err := sparse.FactorColumnsWith(e.m, ind, val, fs)
	if err != nil {
		return err
	}
	// Recycle only after success: a failed factorization must leave the
	// current LU untouched (callers may keep pivoting on it or report).
	if fs != nil && e.lu != nil {
		fs.Recycle(e.lu)
	}
	e.lu = lu
	e.etaPtr = e.etaPtr[:1]
	e.etaPos = e.etaPos[:0]
	e.etaVal = e.etaVal[:0]
	e.etaPiv = e.etaPiv[:0]
	e.etaDiag = e.etaDiag[:0]
	e.netas = 0
	e.refactors++
	return nil
}

// refreshZ rebuilds the reduced-cost vector exactly: z = c − yᵀN with
// y = B⁻ᵀc_B from one BTRAN.
func (e *revised) refreshZ(cost []float64) {
	for pos := 0; pos < e.m; pos++ {
		e.rho[pos] = cost[e.basis[pos]]
	}
	e.btranVec(e.rho)
	mt := e.mat
	for j := 0; j < e.artOff; j++ {
		s := cost[j]
		for q := mt.colPtr[j]; q < mt.colPtr[j+1]; q++ {
			s -= mt.colVal[q] * e.rho[mt.rowInd[q]]
		}
		e.z[j] = s
	}
	for i := 0; i < e.m; i++ {
		e.z[e.artOff+i] = cost[e.artOff+i] - e.rho[i]
	}
	for _, v := range e.basis {
		e.z[v] = 0
	}
}

// run executes both phases and assembles the solution (cold path).
func (e *revised) run() (*Solution, error) {
	e.costI = growFloat(e.costI, e.total)
	costI := e.costI
	for j := 0; j < e.artOff; j++ {
		costI[j] = 0
	}
	for j := e.artOff; j < e.total; j++ {
		costI[j] = 1
	}
	st, err := e.optimize(costI)
	if err != nil {
		return nil, err
	}
	if st == Unbounded && e.phaseObjective(costI) > 1e-7 {
		// Phase I is bounded below by zero: a ray is a numerical artifact,
		// and with residual infeasibility no verdict can be certified.
		return nil, fmt.Errorf("lp: numerical failure: phase I reported unbounded at infeasibility %g",
			e.phaseObjective(costI))
	}
	e.phase1Iters = e.iters
	if e.phaseObjective(costI) > 1e-7 {
		return &Solution{Status: Infeasible, Iterations: e.iters}, nil
	}
	for j := e.artOff; j < e.total; j++ {
		e.upper[j] = 0
		e.lower[j] = 0
		if e.status[j] != basic {
			e.status[j] = atLower
			e.xN[j] = 0
		}
	}
	st, err = e.optimize(e.costII)
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: e.iters}, nil
	}
	return e.assemble(), nil
}

// phaseObjective evaluates cᵀx at the current point.
func (e *revised) phaseObjective(cost []float64) float64 {
	var obj float64
	for j := 0; j < e.total; j++ {
		if cost[j] != 0 {
			obj += cost[j] * e.xN[j]
		}
	}
	return obj
}

// optimize runs the primal simplex loop for one phase — the same loop as the
// dense engine, with FTRAN/BTRAN replacing tableau row access.
func (e *revised) optimize(cost []float64) (Status, error) {
	e.refreshZ(cost)
	tol := e.opts.Tol
	lastObj := math.Inf(1)
	sinceRefresh := 0
	for {
		if e.iters >= e.opts.MaxIter {
			return 0, fmt.Errorf("%w (after %d pivots)", ErrIterLimit, e.iters)
		}
		if sinceRefresh >= 200 {
			e.refreshZ(cost)
			sinceRefresh = 0
		}
		j, dir := e.price(tol)
		if j < 0 {
			return Optimal, nil
		}
		unbounded, err := e.step(j, dir, tol)
		if err != nil {
			return 0, err
		}
		if unbounded {
			// A ray must survive exact reduced costs before we certify it.
			if sinceRefresh > 0 {
				e.refreshZ(cost)
				sinceRefresh = 0
				continue
			}
			return Unbounded, nil
		}
		e.iters++
		sinceRefresh++
		obj := e.phaseObjective(cost)
		if obj < lastObj-tol {
			lastObj = obj
			e.stall = 0
		} else {
			e.stall++
			if e.stall > e.m+e.total {
				e.bland = true
			}
		}
	}
}

// price selects an entering variable and direction — identical logic to the
// dense engine's pricing scan.
func (e *revised) price(tol float64) (enter int, dir float64) {
	bestJ, bestScore, bestDir := -1, tol, 0.0
	for j := 0; j < e.total; j++ {
		st := e.status[j]
		if st == basic {
			continue
		}
		if e.upper[j]-e.lower[j] < tol && st != isFree {
			continue
		}
		zj := e.z[j]
		var score, d float64
		switch st {
		case atLower:
			if zj < -tol {
				score, d = -zj, 1
			}
		case atUpper:
			if zj > tol {
				score, d = zj, -1
			}
		case isFree:
			if zj < -tol {
				score, d = -zj, 1
			} else if zj > tol {
				score, d = zj, -1
			}
		}
		if d == 0 {
			continue
		}
		if e.bland {
			return j, d
		}
		if score > bestScore {
			bestJ, bestScore, bestDir = j, score, d
		}
	}
	if bestJ < 0 {
		return -1, 0
	}
	return bestJ, bestDir
}

// step performs the ratio test and either flips a bound, pivots (one FTRAN
// for the entering column, one BTRAN for the reduced-cost update, one eta
// term), or reports unboundedness.
func (e *revised) step(j int, dir, tol float64) (unbounded bool, err error) {
	e.ftranCol(j)
	span := e.upper[j] - e.lower[j]
	tMax := math.Inf(1)
	if !math.IsInf(span, 1) {
		tMax = span
	}
	leaveRow := -1
	leaveAtUpper := false
	for i := 0; i < e.m; i++ {
		alpha := e.col[i]
		if alpha == 0 {
			continue
		}
		delta := -dir * alpha
		b := e.basis[i]
		var t float64
		var hitsUpper bool
		switch {
		case delta > tol:
			ub := e.upper[b]
			if math.IsInf(ub, 1) {
				continue
			}
			t = (ub - e.xB[i]) / delta
			hitsUpper = true
		case delta < -tol:
			lb := e.lower[b]
			if math.IsInf(lb, -1) {
				continue
			}
			t = (lb - e.xB[i]) / delta
			hitsUpper = false
		default:
			continue
		}
		if t < -tol {
			t = 0
		}
		if t < tMax-tol || (t < tMax+tol && leaveRow < 0) {
			if t < 0 {
				t = 0
			}
			tMax = t
			leaveRow = i
			leaveAtUpper = hitsUpper
		}
	}
	if math.IsInf(tMax, 1) {
		return true, nil
	}
	if leaveRow < 0 {
		// Bound flip: the entering variable traverses its whole span.
		e.boundFlips++
		for i := 0; i < e.m; i++ {
			alpha := e.col[i]
			if alpha == 0 {
				continue
			}
			e.xB[i] -= dir * alpha * tMax
			e.xN[e.basis[i]] = e.xB[i]
		}
		if dir > 0 {
			e.status[j] = atUpper
			e.xN[j] = e.upper[j]
		} else {
			e.status[j] = atLower
			e.xN[j] = e.lower[j]
		}
		return false, nil
	}

	if tMax <= tol {
		e.degenPivots++
	}
	enterVal := e.xN[j] + dir*tMax
	for i := 0; i < e.m; i++ {
		alpha := e.col[i]
		if alpha == 0 {
			continue
		}
		e.xB[i] -= dir * alpha * tMax
		e.xN[e.basis[i]] = e.xB[i]
	}
	leaving := e.basis[leaveRow]
	if leaveAtUpper {
		e.status[leaving] = atUpper
		e.xN[leaving] = e.upper[leaving]
	} else {
		e.status[leaving] = atLower
		e.xN[leaving] = e.lower[leaving]
	}

	piv := e.col[leaveRow]
	if math.Abs(piv) < 1e-11 {
		return false, fmt.Errorf("lp: numerically zero pivot %g at row %d col %d", piv, leaveRow, j)
	}
	// Reduced-cost update needs the (pre-pivot) pivot row, priced by BTRAN.
	// The update divides by the row's own value of the pivot element, not
	// the FTRAN one, so the z vector stays internally consistent; if the
	// two sides of the basis disagree on that element, the eta file has
	// drifted and the basis is refactorized before trusting either.
	if zf := e.z[j]; zf != 0 {
		e.pivotRow(leaveRow)
		if !pivotsAgree(piv, e.arow[j]) {
			if err := e.refactor(); err != nil {
				return false, fmt.Errorf("lp: refactorizing basis: %w", err)
			}
			e.pivotRow(leaveRow)
			e.ftranCol(j)
			piv = e.col[leaveRow]
			if math.Abs(piv) < 1e-11 || !pivotsAgree(piv, e.arow[j]) {
				return false, fmt.Errorf("lp: unstable pivot %g/%g at row %d col %d", piv, e.arow[j], leaveRow, j)
			}
		}
		f := zf / e.arow[j]
		for k := 0; k < e.total; k++ {
			if a := e.arow[k]; a != 0 {
				e.z[k] -= f * a
			}
		}
	}
	e.z[j] = 0
	e.appendEta(leaveRow)
	e.basis[leaveRow] = j
	e.status[j] = basic
	e.xB[leaveRow] = enterVal
	e.xN[j] = enterVal
	if e.netas >= etaRefactorLimit {
		if err := e.refactor(); err != nil {
			return false, fmt.Errorf("lp: refactorizing basis: %w", err)
		}
	}
	return false, nil
}

// assemble builds the user-facing solution after a phase-II optimum, with
// the same dual extraction as the dense engine (the artificial column of
// row i carries B⁻¹e_i). Workspace-carrying solves write into the
// workspace's solution storage — valid until that workspace's next solve —
// instead of allocating; the numbers are identical either way.
func (e *revised) assemble() *Solution {
	var (
		sol         *Solution
		x, dual, rc []float64
	)
	if ws := e.ws; ws != nil {
		ws.solX = growFloat(ws.solX, e.n)
		ws.solDual = growFloat(ws.solDual, e.m)
		ws.solRC = growFloat(ws.solRC, e.n)
		x, dual, rc = ws.solX, ws.solDual, ws.solRC
		ws.sol = Solution{}
		sol = &ws.sol
	} else {
		x = make([]float64, e.n)
		dual = make([]float64, e.m)
		rc = make([]float64, e.n)
		sol = &Solution{}
	}
	copy(x, e.xN[:e.n])
	var obj float64
	for j := 0; j < e.n; j++ {
		obj += e.userC[j] * x[j]
	}
	sign := 1.0
	if e.maximize {
		sign = -1
	}
	for i := 0; i < e.m; i++ {
		y := -e.z[e.artOff+i]
		if e.mat.rhsFlip[i] {
			y = -y
		}
		dual[i] = sign * y
	}
	for j := 0; j < e.n; j++ {
		rc[j] = sign * e.z[j]
	}
	sol.Status = Optimal
	sol.X = x
	sol.Objective = obj
	sol.Dual = dual
	sol.ReducedCost = rc
	sol.Iterations = e.iters
	return sol
}

// captureBasisRevised snapshots the final basis of a solved engine.
func captureBasisRevised(e *revised) *Basis {
	st := make([]varStatus, len(e.status))
	copy(st, e.status)
	return &Basis{nvars: e.n, nrows: e.m, nslack: e.nslack, status: st}
}

// takeRCache detaches the retained engine of the previous sparse solve if it
// is still valid for the problem's current shape.
func (p *Problem) takeRCache(m, n, nslack int) *revised {
	e := p.rcache
	if e == nil {
		return nil
	}
	p.rcache = nil
	if e.cacheRev != p.rev || e.m != m || e.n != n || e.nslack != nslack {
		return nil
	}
	return e
}

// storeRCache retains a finished sparse engine for the next warm solve.
func (p *Problem) storeRCache(e *revised) {
	e.cacheRev = p.rev
	p.rcache = e
}

// solveSparse runs the sparse engine: warm attempt first when a basis hint
// is present, cold two-phase otherwise — mirroring solveDense.
func solveSparse(p *Problem, opts Options, stats *solveStats) (*Solution, error) {
	var (
		sol *Solution
		err error
		e   *revised
	)
	addStats := func(x *revised) {
		stats.iters += x.iters
		stats.degen += x.degenPivots
		stats.flips += x.boundFlips
		stats.dualPivs += x.dualPivots
		stats.ftran += x.ftran
		stats.btran += x.btran
		stats.etaApps += x.etaApps
		stats.refactors += x.refactors
	}
	if b := opts.WarmBasis; b != nil {
		stats.warmTried = true
		we, wsol := trySolveWarmSparse(p, opts, b)
		if we != nil {
			addStats(we)
		}
		if wsol != nil {
			sol, e, stats.warmUsed = wsol, we, true
		} else if we != nil && opts.Workspace != nil {
			// Failed warm attempt: hand the engine's allocations back so the
			// cold fallback below reuses them (uncertified — the cold path
			// rebuilds the matrix and refactorizes regardless).
			opts.Workspace.retain(p, we, false)
		}
	}
	if sol == nil {
		ce, cerr := newRevised(p, opts)
		if cerr != nil {
			return nil, cerr
		}
		sol, err = ce.run()
		if cerr == nil {
			addStats(ce)
			stats.phase1 += ce.phase1Iters
		}
		e = ce
	}
	if sol != nil && opts.CaptureBasis && sol.Status == Optimal {
		sol.Basis = captureBasisRevised(e)
	}
	if err == nil && e != nil {
		if ws := opts.Workspace; ws != nil {
			// The workspace, not the Problem, is the engine's home between
			// solves; certification (matrix/LU reuse next time) follows the
			// same CaptureBasis discipline as the rcache path.
			ws.retain(p, e, opts.CaptureBasis)
		} else if opts.CaptureBasis {
			p.storeRCache(e)
		}
	}
	return sol, err
}

// trySolveWarmSparse attempts a warm-started sparse solve from basis b: the
// warm basis seeds the LU factorization directly (reusing the cached
// factorization when the basis set is unchanged), then the bound-flipping
// dual simplex restores primal feasibility and the exact phase-II pass
// certifies. A nil Solution means the caller must cold-solve; the returned
// engine (when non-nil) carries the attempt's counters either way.
func trySolveWarmSparse(p *Problem, opts Options, b *Basis) (*revised, *Solution) {
	m, n := len(p.rows), p.nvars
	nslack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nslack++
		}
	}
	if !b.matches(n, m, nslack) {
		return nil, nil
	}
	for j := 0; j < n; j++ {
		if p.lower[j] > p.upper[j] {
			return nil, nil // cold path reports the inconsistent bounds
		}
	}
	var wanted []int
	if opts.Workspace != nil {
		wanted = opts.Workspace.wanted[:0]
	} else {
		wanted = make([]int, 0, m)
	}
	for j, st := range b.status {
		if st == basic {
			wanted = append(wanted, j)
		}
	}
	if opts.Workspace != nil {
		opts.Workspace.wanted = wanted
	}
	if len(wanted) != m {
		return nil, nil
	}

	// Engine acquisition: the workspace-retained engine when its matrix and
	// LU are certified for p's current state (same condition takeRCache
	// enforces), the Problem's own rcache otherwise. Both hits reuse the
	// factorization under the identical sameBasisSet test, so pooled and
	// unpooled solves pivot through the same numbers.
	var e *revised
	luValid := false
	if ws := opts.Workspace; ws != nil {
		e = ws.detach()
		if e != nil {
			luValid = ws.engProb == p && e.cacheRev == p.rev &&
				e.m == m && e.n == n && e.nslack == nslack
			ws.engProb = nil
		}
	} else {
		e = p.takeRCache(m, n, nslack)
		luValid = e != nil
	}
	if e != nil && luValid {
		e.opts = opts
		e.maximize, e.userC = p.maximize, p.c
		e.loadBoundsAndCost(p)
		// Reuse the retained factorization only when the wanted basis is
		// exactly the one it factors (the branch-and-bound fast path:
		// the child's warm basis is the parent's final basis).
		if !sameBasisSet(e, e.basis, wanted) {
			copy(e.basis, wanted)
			if err := e.refactor(); err != nil {
				return e, nil
			}
		}
	} else {
		if e != nil {
			e.reinit(p, buildRMatrixInto(p, e.mat, opts.Workspace), opts)
		} else if ws := opts.Workspace; ws != nil {
			e = &revised{ws: ws}
			e.reinit(p, buildRMatrixInto(p, nil, ws), opts)
		} else {
			e = newRevisedSkeleton(p, buildRMatrix(p), opts)
		}
		copy(e.basis, wanted)
		if err := e.refactor(); err != nil {
			return e, nil
		}
	}
	e.iters, e.phase1Iters, e.degenPivots, e.boundFlips, e.dualPivots = 0, 0, 0, 0, 0
	e.ftran, e.btran, e.etaApps, e.refactors = 0, 0, 0, 0
	e.bland, e.stall = false, 0
	e.warmRestore(b)
	if e.warmDualFeasible() {
		if !e.dualSimplex() {
			return e, nil
		}
	} else if !e.warmPrimalFeasible() {
		return e, nil
	}
	// Certification pass: exact reduced costs, primal pivots if the basis
	// is not yet optimal — the same optimality test the cold engine ends on.
	st, err := e.optimize(e.costII)
	if err != nil || st != Optimal {
		return e, nil
	}
	sol := e.assemble()
	sol.Warm = true
	return e, sol
}

// sameBasisSet reports whether cur (in position order) and wanted (sorted
// ascending) contain the same variables; e supplies sort scratch when it
// carries a workspace.
func sameBasisSet(e *revised, cur, wanted []int) bool {
	if len(cur) != len(wanted) {
		return false
	}
	var tmp []int
	if e != nil && e.ws != nil {
		e.ws.tmp = growInt(e.ws.tmp, len(cur))
		tmp = e.ws.tmp
	} else {
		tmp = make([]int, len(cur))
	}
	copy(tmp, cur)
	sort.Ints(tmp)
	for i, v := range tmp {
		if v != wanted[i] {
			return false
		}
	}
	return true
}

// warmRestore places every variable per the warm basis (artificials pinned
// to zero exactly as after a cold phase I), recomputes the basic values with
// one FTRAN, and rebuilds the reduced costs exactly.
func (e *revised) warmRestore(b *Basis) {
	for j := e.artOff; j < e.total; j++ {
		e.lower[j], e.upper[j] = 0, 0
	}
	for j := 0; j < e.total; j++ {
		st := b.status[j]
		lo, hi := e.lower[j], e.upper[j]
		switch {
		case st == basic:
			// placed below, once values are known
		case st == atUpper && !isPosInf(hi):
			e.status[j], e.xN[j] = atUpper, hi
		case st == isFree && isNegInf(lo) && isPosInf(hi):
			e.status[j], e.xN[j] = isFree, 0
		case !isNegInf(lo):
			e.status[j], e.xN[j] = atLower, lo
		case !isPosInf(hi):
			e.status[j], e.xN[j] = atUpper, hi
		default:
			e.status[j], e.xN[j] = isFree, 0
		}
	}
	// xB = B⁻¹(b' − Σ A'_j·x_j) over nonbasic variables off zero.
	v := e.col
	for i := range v {
		v[i] = e.mat.rhs[i]
	}
	for j := 0; j < e.total; j++ {
		if b.status[j] == basic || e.xN[j] == 0 {
			continue
		}
		x := e.xN[j]
		if j >= e.artOff {
			v[j-e.artOff] -= x
			continue
		}
		for q := e.mat.colPtr[j]; q < e.mat.colPtr[j+1]; q++ {
			v[e.mat.rowInd[q]] -= e.mat.colVal[q] * x
		}
	}
	e.ftranVec(v)
	for pos, vr := range e.basis {
		e.status[vr] = basic
		e.xB[pos] = v[pos]
		e.xN[vr] = v[pos]
	}
	e.refreshZ(e.costII)
}

// warmDualFeasible mirrors the dense engine's routing test: scaled reduced-
// cost signs decide between the dual simplex and a primal certify pass.
func (e *revised) warmDualFeasible() bool {
	maxC := 0.0
	for _, c := range e.costII {
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	dtol := e.opts.Tol * (1 + maxC)
	for j := 0; j < e.total; j++ {
		st := e.status[j]
		if st == basic {
			continue
		}
		if st != isFree && e.upper[j]-e.lower[j] < e.opts.Tol {
			continue
		}
		zj := e.z[j]
		switch st {
		case atLower:
			if zj < -dtol {
				return false
			}
		case atUpper:
			if zj > dtol {
				return false
			}
		case isFree:
			if zj < -dtol || zj > dtol {
				return false
			}
		}
	}
	return true
}

// warmPrimalFeasible reports whether every basic value sits within bounds.
func (e *revised) warmPrimalFeasible() bool {
	tol := e.opts.Tol
	for i := 0; i < e.m; i++ {
		v := e.basis[i]
		if e.xB[i] < e.lower[v]-tol || e.xB[i] > e.upper[v]+tol {
			return false
		}
	}
	return true
}

// dualSimplex runs bound-flipping dual pivots until every basic variable is
// back inside its bounds — the revised-form twin of the dense engine's dual
// simplex: the leaving row is priced with one BTRAN, accumulated bound flips
// cost one FTRAN, and the entering column one more.
func (e *revised) dualSimplex() bool {
	tol := e.opts.Tol
	sinceRefresh := 0
	cands := e.cands
	flips := e.flips
	defer func() {
		e.cands = cands[:0]
		e.flips = flips[:0]
	}()
	for {
		if e.iters >= e.opts.MaxIter {
			return false
		}
		if sinceRefresh >= 200 {
			e.refreshZ(e.costII)
			sinceRefresh = 0
		}
		r, viol, needUp := -1, tol, false
		for i := 0; i < e.m; i++ {
			v := e.basis[i]
			if d := e.lower[v] - e.xB[i]; d > viol {
				r, viol, needUp = i, d, true
			} else if d := e.xB[i] - e.upper[v]; d > viol {
				r, viol, needUp = i, d, false
			}
			if r >= 0 && e.bland {
				break
			}
		}
		if r < 0 {
			return true // primal feasible
		}
		e.pivotRow(r)
		cands = cands[:0]
		for j := 0; j < e.total; j++ {
			st := e.status[j]
			if st == basic {
				continue
			}
			span := e.upper[j] - e.lower[j]
			if st != isFree && span < tol {
				continue
			}
			a := e.arow[j]
			if a > -tol && a < tol {
				continue
			}
			var ok bool
			var ratio float64
			switch st {
			case atLower:
				if needUp {
					ok = a < 0
				} else {
					ok = a > 0
				}
				ratio = e.z[j] / math.Abs(a)
			case atUpper:
				if needUp {
					ok = a > 0
				} else {
					ok = a < 0
				}
				ratio = -e.z[j] / math.Abs(a)
			case isFree:
				ok = true
				ratio = math.Abs(e.z[j]) / math.Abs(a)
			}
			if !ok {
				continue
			}
			if ratio < 0 {
				ratio = 0
			}
			cands = append(cands, dualCand{j: j, alpha: a, ratio: ratio, span: span})
		}
		if len(cands) == 0 {
			return false // dual certificate of primal infeasibility
		}
		enter := -1
		flips = flips[:0]
		if e.bland {
			bestE := math.Inf(1)
			for i, c := range cands {
				if c.ratio < bestE {
					bestE, enter = c.ratio, i
				}
			}
		} else {
			e.candSorter.c = cands
			sort.Sort(&e.candSorter)
			e.candSorter.c = nil
			remain := viol
			for i, c := range cands {
				if isPosInf(c.span) || remain-math.Abs(c.alpha)*c.span <= tol {
					enter = i
					break
				}
				remain -= math.Abs(c.alpha) * c.span
				flips = append(flips, i)
			}
			if enter < 0 {
				return false // all candidates flip and violation remains
			}
		}
		if len(flips) > 0 {
			// Apply every flip's effect on xB with one combined FTRAN:
			// xB −= B⁻¹(Σ A'_j·δ_j).
			for i := range e.dv {
				e.dv[i] = 0
			}
			for _, fi := range flips {
				c := cands[fi]
				j := c.j
				var delta float64
				if e.status[j] == atLower {
					delta = c.span
					e.status[j], e.xN[j] = atUpper, e.upper[j]
				} else {
					delta = -c.span
					e.status[j], e.xN[j] = atLower, e.lower[j]
				}
				e.boundFlips++
				if j >= e.artOff {
					e.dv[j-e.artOff] += delta
					continue
				}
				for q := e.mat.colPtr[j]; q < e.mat.colPtr[j+1]; q++ {
					e.dv[e.mat.rowInd[q]] += e.mat.colVal[q] * delta
				}
			}
			e.ftranVec(e.dv)
			for i := 0; i < e.m; i++ {
				if d := e.dv[i]; d != 0 {
					e.xB[i] -= d
					e.xN[e.basis[i]] = e.xB[i]
				}
			}
		}
		c := cands[enter]
		j := c.j
		e.ftranCol(j)
		piv := e.col[r]
		if !pivotsAgree(piv, c.alpha) {
			// The ratio test accepted arow[j] but the entering column says
			// the pivot element is a different number: eta drift. Rebuild
			// the factorization and recompute both sides before pivoting on
			// it — dividing the primal step by the stale value is how
			// near-singular pivots produce runaway basic values.
			if e.refactor() != nil {
				return false
			}
			e.pivotRow(r)
			e.ftranCol(j)
			piv = e.col[r]
			c.alpha = e.arow[j]
			if !pivotsAgree(piv, c.alpha) {
				return false
			}
		}
		if math.Abs(piv) < 1e-11 {
			return false
		}
		leaving := e.basis[r]
		var beta float64
		if needUp {
			beta = e.lower[leaving]
		} else {
			beta = e.upper[leaving]
		}
		delta := (e.xB[r] - beta) / piv
		enterVal := e.xN[j] + delta
		for i := 0; i < e.m; i++ {
			if a := e.col[i]; a != 0 {
				e.xB[i] -= a * delta
				e.xN[e.basis[i]] = e.xB[i]
			}
		}
		if needUp {
			e.status[leaving], e.xN[leaving] = atLower, e.lower[leaving]
		} else {
			e.status[leaving], e.xN[leaving] = atUpper, e.upper[leaving]
		}
		if zf := e.z[j]; zf != 0 {
			f := zf / e.arow[j]
			for k := 0; k < e.total; k++ {
				if a := e.arow[k]; a != 0 {
					e.z[k] -= f * a
				}
			}
		}
		e.z[j] = 0
		e.appendEta(r)
		e.basis[r] = j
		e.status[j] = basic
		e.xB[r] = enterVal
		e.xN[j] = enterVal
		if e.netas >= etaRefactorLimit {
			if err := e.refactor(); err != nil {
				return false
			}
		}
		e.iters++
		e.dualPivots++
		sinceRefresh++
		if c.ratio <= tol {
			e.stall++
			if e.stall > e.m+e.total {
				e.bland = true
			}
		} else {
			e.stall = 0
		}
	}
}
