package lp

import "sync"

// arena is the reusable float64 scratch space for one simplex solve: the
// tableau rows plus every per-variable working vector are sub-sliced out of
// a single pooled buffer. The bilevel attack generator solves thousands of
// structurally identical LPs per subproblem (and, with parallel subproblems,
// from many goroutines at once), so recycling the tableau keeps the solver's
// steady-state allocation rate near zero; sync.Pool gives each concurrent
// solve its own buffer without any per-worker plumbing.
type arena struct {
	buf []float64
	off int
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// getArena fetches a pooled arena with capacity for need float64s.
func getArena(need int) *arena {
	a := arenaPool.Get().(*arena)
	if cap(a.buf) < need {
		a.buf = make([]float64, need)
	}
	a.buf = a.buf[:cap(a.buf)]
	a.off = 0
	return a
}

// take carves a zeroed length-n slice out of the arena. Pooled memory is
// dirty from earlier solves, so callers rely on take's clearing the slice.
func (a *arena) take(n int) []float64 {
	s := a.buf[a.off : a.off+n]
	a.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// release returns the arena to the pool. The caller must not retain any
// slice obtained from take — Solution vectors are always fresh copies.
func (a *arena) release() {
	arenaPool.Put(a)
}
