package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLP builds a random feasible bounded LP: box-bounded variables with a
// handful of ≤/≥/= rows anchored at a known interior point so feasibility is
// guaranteed.
func randomLP(r *rand.Rand) (*Problem, []float64) {
	n := 2 + r.Intn(6)
	m := 1 + r.Intn(5)
	p := NewProblem(n)
	x0 := make([]float64, n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := -5 + 10*r.Float64()
		hi := lo + 0.5 + 5*r.Float64()
		_ = p.SetBounds(j, lo, hi)
		x0[j] = lo + (hi-lo)*r.Float64()
		c[j] = -2 + 4*r.Float64()
	}
	_ = p.SetObjective(c, r.Intn(2) == 0)
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = -1 + 2*r.Float64()
		}
		act := Dot(row, x0)
		switch r.Intn(3) {
		case 0:
			_, _ = p.AddConstraint(row, LE, act+r.Float64())
		case 1:
			_, _ = p.AddConstraint(row, GE, act-r.Float64())
		default:
			_, _ = p.AddConstraint(row, EQ, act)
		}
	}
	return p, x0
}

// Dot is a tiny local helper (kept here to avoid an import cycle with mat).
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// activity evaluates a stored sparse row at x.
func activity(r conRow, x []float64) float64 {
	var s float64
	for k, j := range r.ind {
		s += r.val[k] * x[j]
	}
	return s
}

// Property: random anchored LPs are feasible and the solution satisfies all
// constraints and bounds.
func TestPropertyFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomLP(r)
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		for j := 0; j < p.NumVars(); j++ {
			lo, hi := p.Bounds(j)
			if sol.X[j] < lo-1e-6 || sol.X[j] > hi+1e-6 {
				return false
			}
		}
		for _, row := range p.rows {
			act := activity(row, sol.X)
			switch row.rel {
			case LE:
				if act > row.rhs+1e-6 {
					return false
				}
			case GE:
				if act < row.rhs-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(act-row.rhs) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the solver's optimum is at least as good as the feasible anchor
// point used to build the instance.
func TestPropertyAnchorDominated(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, x0 := randomLP(r)
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		anchorObj := Dot(p.c, x0)
		if p.maximize {
			return sol.Objective >= anchorObj-1e-6
		}
		return sol.Objective <= anchorObj+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (strong duality for the bounded simplex): for minimization,
//
//	cᵀx* = yᵀb + dᵀx* − Σᵢ yᵢ·(bᵢ − aᵢᵀx*)
//
// where y are the row duals and d the structural reduced costs. The last sum
// removes the slack contribution for inequality rows.
func TestPropertyDualIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomLP(r)
		p.SetMaximize(false)
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		lhs := Dot(p.c, sol.X)
		rhs := Dot(sol.ReducedCost, sol.X)
		for i, row := range p.rows {
			act := activity(row, sol.X)
			rhs += sol.Dual[i] * row.rhs
			rhs -= sol.Dual[i] * (row.rhs - act)
		}
		return math.Abs(lhs-rhs) <= 1e-5*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: complementary slackness — strictly slack rows carry (near-)zero
// duals and variables strictly inside their bounds carry (near-)zero reduced
// costs.
func TestPropertyComplementarySlackness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomLP(r)
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		for i, row := range p.rows {
			act := activity(row, sol.X)
			gap := math.Abs(row.rhs - act)
			if row.rel != EQ && gap > 1e-4 && math.Abs(sol.Dual[i]) > 1e-5 {
				return false
			}
		}
		for j := 0; j < p.NumVars(); j++ {
			lo, hi := p.Bounds(j)
			if sol.X[j] > lo+1e-4 && sol.X[j] < hi-1e-4 && math.Abs(sol.ReducedCost[j]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: dual feasibility signs — for a minimization, a ≤ row must have a
// non-positive effect when relaxed... concretely the dual of a ≤ row is ≤ 0
// and of a ≥ row is ≥ 0 under our sign convention (marginal objective per
// unit RHS increase).
func TestPropertyDualSigns(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomLP(r)
		p.SetMaximize(false)
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		for i, row := range p.rows {
			switch row.rel {
			case LE:
				// Raising the RHS of a ≤ row enlarges the feasible set:
				// the minimum cannot increase.
				if sol.Dual[i] > 1e-6 {
					return false
				}
			case GE:
				if sol.Dual[i] < -1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
