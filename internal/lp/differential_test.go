package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomSparseLP builds a larger anchored LP with sparse rows. The engines
// under test are forced explicitly (DenseSolver / ForceSparse), so the size
// is fixed rather than tied to the selection cutover: 8–27 rows keeps 250
// trials fast and the cross-engine float drift within the 1e-9 oracle
// tolerance, which larger systems would not.
func randomSparseLP(r *rand.Rand) *Problem {
	n := 10 + r.Intn(30)
	m := 8 + r.Intn(20)
	p := NewProblem(n)
	x0 := make([]float64, n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := -5 + 10*r.Float64()
		hi := lo + 0.5 + 5*r.Float64()
		_ = p.SetBounds(j, lo, hi)
		x0[j] = lo + (hi-lo)*r.Float64()
		c[j] = -2 + 4*r.Float64()
	}
	_ = p.SetObjective(c, r.Intn(2) == 0)
	for i := 0; i < m; i++ {
		nz := 2 + r.Intn(4)
		ind := make([]int, 0, nz)
		val := make([]float64, 0, nz)
		seen := make(map[int]bool, nz)
		for len(ind) < nz {
			j := r.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			ind = append(ind, j)
			val = append(val, -1+2*r.Float64())
		}
		act := 0.0
		for k, j := range ind {
			act += val[k] * x0[j]
		}
		switch r.Intn(3) {
		case 0:
			_, _ = p.AddSparseConstraint(ind, val, LE, act+r.Float64())
		case 1:
			_, _ = p.AddSparseConstraint(ind, val, GE, act-r.Float64())
		default:
			_, _ = p.AddSparseConstraint(ind, val, EQ, act)
		}
	}
	return p
}

// TestDifferentialSparseVsDense drives both engines over randomized bounded
// LPs: statuses must agree, objectives must match to 1e-9, and a basis
// captured by one engine must get the same warm verdict — accepted or
// rejected — from the other.
func TestDifferentialSparseVsDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	optimal, warmAgree := 0, 0
	for trial := 0; trial < 250; trial++ {
		p := randomSparseLP(r)
		dense, derr := SolveWith(p, Options{DenseSolver: true, CaptureBasis: true})
		sparse, serr := SolveWith(p, Options{ForceSparse: true, CaptureBasis: true})
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err %v vs sparse err %v", trial, derr, serr)
		}
		if derr != nil {
			continue
		}
		if dense.Status != sparse.Status {
			t.Fatalf("trial %d: dense status %v vs sparse status %v", trial, dense.Status, sparse.Status)
		}
		if dense.Status != Optimal {
			continue
		}
		optimal++
		if d := math.Abs(dense.Objective - sparse.Objective); d > 1e-9*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objective gap %g (dense %.15g sparse %.15g)",
				trial, d, dense.Objective, sparse.Objective)
		}
		// Warm verdicts: re-solving with the dense-captured basis must be
		// accepted or rejected identically by both engines, and either way
		// reproduce the optimum.
		dw, err := SolveWith(p, Options{DenseSolver: true, WarmBasis: dense.Basis})
		if err != nil {
			t.Fatalf("trial %d: dense warm resolve: %v", trial, err)
		}
		sw, err := SolveWith(p, Options{ForceSparse: true, WarmBasis: dense.Basis})
		if err != nil {
			t.Fatalf("trial %d: sparse warm resolve: %v", trial, err)
		}
		if dw.Warm != sw.Warm {
			t.Fatalf("trial %d: warm verdict dense=%v sparse=%v for the same basis", trial, dw.Warm, sw.Warm)
		}
		if dw.Warm {
			warmAgree++
		}
		for label, sol := range map[string]*Solution{"dense": dw, "sparse": sw} {
			if sol.Status != Optimal {
				t.Fatalf("trial %d: %s warm resolve status %v", trial, label, sol.Status)
			}
			if d := math.Abs(sol.Objective - dense.Objective); d > 1e-9*(1+math.Abs(dense.Objective)) {
				t.Fatalf("trial %d: %s warm objective gap %g", trial, label, d)
			}
		}
	}
	if optimal < 100 {
		t.Fatalf("only %d/250 trials reached Optimal; generator is degenerate", optimal)
	}
	if warmAgree == 0 {
		t.Fatal("no trial exercised an accepted warm basis on both engines")
	}
	t.Logf("%d optimal trials, %d accepted warm bases on both engines", optimal, warmAgree)
}

// TestDifferentialDegenerate pins the engines against each other on
// deliberately nasty cases: fixed variables, redundant equalities, and
// infeasible rows.
func TestDifferentialDegenerate(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(12)
		for j := 0; j < 12; j++ {
			_ = p.SetBounds(j, 0, 4)
		}
		_ = p.SetBounds(3, 2, 2) // fixed variable
		c := make([]float64, 12)
		for j := range c {
			c[j] = float64(j%3) - 1
		}
		_ = p.SetObjective(c, false)
		row := make([]float64, 12)
		for j := range row {
			row[j] = 1
		}
		_, _ = p.AddConstraint(row, LE, 30)
		_, _ = p.AddConstraint(row, LE, 30) // redundant duplicate
		_, _ = p.AddSparseConstraint([]int{0, 1}, []float64{1, 1}, EQ, 3)
		_, _ = p.AddSparseConstraint([]int{0, 1}, []float64{2, 2}, EQ, 6) // dependent equality
		for i := 0; i < 6; i++ {
			_, _ = p.AddSparseConstraint([]int{i, i + 4}, []float64{1, -1}, GE, -3)
		}
		return p
	}
	p1 := build()
	dense, derr := SolveWith(p1, Options{DenseSolver: true})
	p2 := build()
	sparse, serr := SolveWith(p2, Options{ForceSparse: true})
	if (derr == nil) != (serr == nil) {
		t.Fatalf("dense err %v vs sparse err %v", derr, serr)
	}
	if dense.Status != sparse.Status {
		t.Fatalf("dense status %v vs sparse %v", dense.Status, sparse.Status)
	}
	if math.Abs(dense.Objective-sparse.Objective) > 1e-9 {
		t.Fatalf("objective %g vs %g", dense.Objective, sparse.Objective)
	}

	// Infeasible system: both engines must prove it.
	p3 := build()
	_, _ = p3.AddSparseConstraint([]int{0, 1}, []float64{1, 1}, GE, 100)
	id, ierr := SolveWith(p3, Options{DenseSolver: true})
	p4 := build()
	_, _ = p4.AddSparseConstraint([]int{0, 1}, []float64{1, 1}, GE, 100)
	is, serr2 := SolveWith(p4, Options{ForceSparse: true})
	if ierr != nil || serr2 != nil {
		t.Fatalf("unexpected errors: %v / %v", ierr, serr2)
	}
	if id.Status != Infeasible || is.Status != Infeasible {
		t.Fatalf("want Infeasible/Infeasible, got %v/%v", id.Status, is.Status)
	}
}
