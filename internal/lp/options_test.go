package lp

import (
	"errors"
	"math"
	"testing"
)

func TestIterLimit(t *testing.T) {
	// A tiny budget must surface ErrIterLimit rather than wrong answers.
	n := 40
	p := NewProblem(n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = -1
		_ = p.SetBounds(j, 0, 10)
	}
	_ = p.SetObjective(c, false)
	for i := 0; i < 30; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = float64((i+j)%5) + 1
		}
		_, _ = p.AddConstraint(row, LE, 50)
	}
	_, err := SolveWith(p, Options{MaxIter: 2})
	if !errors.Is(err, ErrIterLimit) {
		t.Fatalf("want ErrIterLimit, got %v", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIter != 50000 || o.Tol != 1e-9 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{MaxIter: 7, Tol: 1e-6}.withDefaults()
	if o.MaxIter != 7 || o.Tol != 1e-6 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

func TestInconsistentBoundsAtSolve(t *testing.T) {
	// Bounds can only become inconsistent via internal misuse; construct
	// through the public API and confirm SetBounds guards it instead.
	p := NewProblem(1)
	if err := p.SetBounds(0, 2, 1); err == nil {
		t.Fatal("want bounds error")
	}
	// A valid fixed bound still solves.
	_ = p.SetBounds(0, 3, 3)
	_ = p.SetObjective([]float64{1}, false)
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal || math.Abs(sol.X[0]-3) > 1e-9 {
		t.Fatalf("fixed-variable solve: %+v %v", sol, err)
	}
}
