package lp

import "github.com/edsec/edattack/internal/sparse"

// Workspace owns the allocation-heavy scratch one solver worker reuses
// across sparse revised-simplex solves: the retained engine (dense vectors,
// eta file, pivot-row and pricing arrays, the compressed-column matrix), the
// Markowitz factorization working set (internal/sparse.FactorScratch,
// including a recycled spare LU), matrix-build temporaries, warm-basis
// scratch, and the solution vectors of workspace-owned solves. The QP layer
// parks its Schur scratch in QP (typed in internal/qp; `any` here avoids the
// import cycle).
//
// Ownership rules: a Workspace belongs to exactly one goroutine at a time —
// core's worker pool checks one out per task and returns it when the task
// ends; edserve's topology cache pins one per cached model under the entry
// lock. It is never shared concurrently, so no field needs synchronization.
//
// A Solution returned from a workspace-carrying solve aliases the
// workspace's buffers and is valid only until the next solve that uses the
// same workspace; callers that retain vectors (incumbents, heuristic points,
// captured bases) must copy, which every current caller already does.
// Pooling only moves where arrays live: every solve runs the identical code
// path with identical inputs, so results are bit-for-bit independent of
// whether a Workspace is attached.
type Workspace struct {
	// eng is the engine retained by the last sparse solve. engProb is non-nil
	// only when that solve ran with CaptureBasis — the same discipline as the
	// per-Problem rcache — and marks the engine's matrix, LU, and eta file as
	// still describing engProb (checked against Problem.rev at reuse time).
	// An uncertified retention reuses allocations only: the next solve
	// rebuilds the matrix and refactorizes, exactly like an unpooled solve.
	eng     *revised
	engProb *Problem

	fact sparse.FactorScratch

	// buildRMatrixInto temporaries.
	bx0   []float64
	bcnt  []int
	bnext []int

	// Warm-start scratch.
	wanted []int
	tmp    []int

	// Workspace-owned solution storage (see type comment for lifetime).
	sol     Solution
	solX    []float64
	solDual []float64
	solRC   []float64

	// QP is the qp package's Schur/active-set scratch slot.
	QP any
}

// NewWorkspace returns an empty workspace; all storage grows on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset drops the retained engine's association with its problem, so the
// next solve rebuilds from the problem's current state (allocations are
// kept). Useful when a caller knows the retained state can no longer be
// trusted, e.g. after handing the problem to unknown code.
func (ws *Workspace) Reset() {
	if ws == nil {
		return
	}
	ws.engProb = nil
}

// detach takes the retained engine (allocation reuse); nil when none.
func (ws *Workspace) detach() *revised {
	e := ws.eng
	ws.eng = nil
	return e
}

// retain stores a finished engine. certified marks the engine's matrix, LU,
// and eta file as valid for p's current rev — only CaptureBasis solves earn
// it, mirroring when an unpooled solve would populate p.rcache, so pooled
// and unpooled runs take the LU-reuse fast path under identical conditions.
func (ws *Workspace) retain(p *Problem, e *revised, certified bool) {
	ws.eng = e
	if certified {
		ws.engProb = p
		e.cacheRev = p.rev
	} else {
		ws.engProb = nil
	}
}

// growFloat/growInt/growBool reslice s to length n, reallocating only when
// capacity is insufficient. Contents are unspecified; callers write before
// reading (or clear explicitly).
func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
