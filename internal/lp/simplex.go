package lp

import (
	"fmt"
	"math"
)

// varStatus tracks where a variable currently sits.
type varStatus int8

const (
	atLower varStatus = iota + 1
	atUpper
	isFree // nonbasic free variable pinned at value 0
	basic
)

// simplex holds the working state of a bounded-variable two-phase tableau
// simplex. Variable layout: [0,n) structural, [n, n+nslack) slacks/surplus,
// [n+nslack, total) one artificial per row.
type simplex struct {
	opts Options

	m, n    int // constraint rows, structural variables
	nslack  int
	total   int // n + nslack + m
	artOff  int // index of first artificial
	tab     [][]float64
	rhsFlip []bool    // row sign was flipped during setup
	lower   []float64 // bounds for every variable, incl. slack/artificial
	upper   []float64
	costII  []float64 // phase-II cost over all variables (minimization)
	z       []float64 // reduced-cost row for the current phase
	basis   []int     // basis[i] = variable basic in row i
	status  []varStatus
	xB      []float64 // value of the basic variable in each row
	xN      []float64 // value of every variable (kept current for nonbasic)
	rhs     []float64 // B⁻¹b, maintained through every pivot for warm starts
	iters   int
	bland   bool
	stall   int

	maximize bool
	userC    []float64
	ar       *arena // pooled scratch backing tab and the working vectors

	// Pivot-accounting counters, kept after the hot fields so the layout
	// of the per-pivot working set matches the uninstrumented solver.
	phase1Iters int
	degenPivots int
	boundFlips  int
	dualPivots  int

	// cacheRev records Problem.rev at the moment the finished solver was
	// retained as a warm-start tableau cache (see Problem.storeCache).
	cacheRev int
}

func newSimplex(p *Problem, opts Options) (*simplex, error) {
	m := len(p.rows)
	n := p.nvars
	nslack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nslack++
		}
	}
	for j := 0; j < n; j++ {
		if p.lower[j] > p.upper[j] {
			return nil, fmt.Errorf("lp: variable %d has inconsistent bounds [%g, %g]", j, p.lower[j], p.upper[j])
		}
	}
	s := &simplex{
		opts:     opts,
		m:        m,
		n:        n,
		nslack:   nslack,
		total:    n + nslack + m,
		artOff:   n + nslack,
		maximize: p.maximize,
		userC:    p.c,
	}
	// One pooled buffer covers the tableau (m×total), the six per-variable
	// working vectors (lower, upper, costII, z, costI, xN), xB, and the
	// maintained B⁻¹b column.
	s.ar = getArena((m+6)*s.total + 2*m)
	s.lower = s.ar.take(s.total)
	s.upper = s.ar.take(s.total)
	copy(s.lower, p.lower)
	copy(s.upper, p.upper)
	for j := n; j < s.artOff; j++ { // slacks: [0, +Inf)
		s.upper[j] = math.Inf(1)
	}
	for j := s.artOff; j < s.total; j++ { // artificials: [0, +Inf) in phase I
		s.upper[j] = math.Inf(1)
	}

	s.costII = s.ar.take(s.total)
	s.z = s.ar.take(s.total)
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	for j := 0; j < n; j++ {
		s.costII[j] = sign * p.c[j]
	}

	// Build the tableau: structural coefficients, slack column per
	// inequality, artificial identity block.
	s.tab = make([][]float64, m)
	s.rhsFlip = make([]bool, m)
	s.basis = make([]int, m)
	s.xB = s.ar.take(m)
	s.rhs = s.ar.take(m)
	s.status = make([]varStatus, s.total)
	s.xN = s.ar.take(s.total)

	// Initial nonbasic placement: nearest finite bound, free at 0.
	for j := 0; j < s.total; j++ {
		switch {
		case !math.IsInf(s.lower[j], -1):
			s.status[j] = atLower
			s.xN[j] = s.lower[j]
		case !math.IsInf(s.upper[j], 1):
			s.status[j] = atUpper
			s.xN[j] = s.upper[j]
		default:
			s.status[j] = isFree
			s.xN[j] = 0
		}
	}

	slackAt := n
	for i, row := range p.rows {
		t := s.ar.take(s.total)
		for k, j := range row.ind {
			t[j] = row.val[k]
		}
		switch row.rel {
		case LE:
			t[slackAt] = 1
			slackAt++
		case GE:
			t[slackAt] = -1
			slackAt++
		}
		// Residual the artificial must absorb given initial nonbasic
		// values.
		resid := row.rhs
		for j := 0; j < s.artOff; j++ {
			if t[j] != 0 {
				resid -= t[j] * s.xN[j]
			}
		}
		if resid < 0 {
			for j := range t {
				t[j] = -t[j]
			}
			resid = -resid
			s.rhsFlip[i] = true
		}
		art := s.artOff + i
		t[art] = 1
		s.tab[i] = t
		s.basis[i] = art
		s.status[art] = basic
		s.xB[i] = resid
		s.xN[art] = resid
		s.rhs[i] = row.rhs
		if s.rhsFlip[i] {
			s.rhs[i] = -row.rhs
		}
	}
	return s, nil
}

// run executes both phases and assembles the solution.
func (s *simplex) run() (*Solution, error) {
	// Phase I: minimize the sum of artificials.
	costI := s.ar.take(s.total)
	for j := s.artOff; j < s.total; j++ {
		costI[j] = 1
	}
	st, err := s.optimize(costI)
	if err != nil {
		return nil, err
	}
	if st == Unbounded && s.phaseObjective(costI) > 1e-7 {
		// The phase-I objective is bounded below by zero, so a ray can
		// only be a numerical artifact; with residual infeasibility we
		// cannot certify either way.
		return nil, fmt.Errorf("lp: numerical failure: phase I reported unbounded at infeasibility %g",
			s.phaseObjective(costI))
	}
	s.phase1Iters = s.iters
	if s.phaseObjective(costI) > 1e-7 {
		return &Solution{Status: Infeasible, Iterations: s.iters}, nil
	}
	// Pin artificials to zero for phase II.
	for j := s.artOff; j < s.total; j++ {
		s.upper[j] = 0
		s.lower[j] = 0
		if s.status[j] != basic {
			s.status[j] = atLower
			s.xN[j] = 0
		}
	}

	st, err = s.optimize(s.costII)
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: s.iters}, nil
	}
	return s.assemble(), nil
}

// phaseObjective evaluates cᵀx at the current point.
func (s *simplex) phaseObjective(cost []float64) float64 {
	var obj float64
	for j := 0; j < s.total; j++ {
		if cost[j] != 0 {
			obj += cost[j] * s.xN[j]
		}
	}
	return obj
}

// initReducedCosts fills the z row for the given phase cost: z_j = c_j − yᵀA_j.
// The z vector lives in the pooled arena and is fully overwritten here.
func (s *simplex) initReducedCosts(cost []float64) {
	copy(s.z, cost)
	for i := 0; i < s.m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.tab[i]
		for j := 0; j < s.total; j++ {
			if row[j] != 0 {
				s.z[j] -= cb * row[j]
			}
		}
	}
	// Reduced cost of basic variables is exactly zero by construction.
	for i := 0; i < s.m; i++ {
		s.z[s.basis[i]] = 0
	}
}

// optimize runs the simplex loop for one phase.
func (s *simplex) optimize(cost []float64) (Status, error) {
	s.initReducedCosts(cost)
	tol := s.opts.Tol
	lastObj := math.Inf(1)
	sinceRefresh := 0
	for {
		if s.iters >= s.opts.MaxIter {
			return 0, fmt.Errorf("%w (after %d pivots)", ErrIterLimit, s.iters)
		}
		// The z row is updated incrementally on every pivot; rebuild it
		// from scratch periodically so drift cannot mislead pricing.
		if sinceRefresh >= 200 {
			s.initReducedCosts(cost)
			sinceRefresh = 0
		}
		j, dir := s.price(tol)
		if j < 0 {
			return Optimal, nil
		}
		unbounded, err := s.step(j, dir, tol)
		if err != nil {
			return 0, err
		}
		if unbounded {
			// An unbounded ray must survive exact reduced costs; a
			// stale z row can fabricate one on degenerate problems.
			if sinceRefresh > 0 {
				s.initReducedCosts(cost)
				sinceRefresh = 0
				continue
			}
			return Unbounded, nil
		}
		s.iters++
		sinceRefresh++
		// Cycling guard: if the objective stops improving for a long
		// stretch of degenerate pivots, switch to Bland's rule, which
		// guarantees termination.
		obj := s.phaseObjective(cost)
		if obj < lastObj-tol {
			lastObj = obj
			s.stall = 0
		} else {
			s.stall++
			if s.stall > s.m+s.total {
				s.bland = true
			}
		}
	}
}

// price selects an entering variable and movement direction (+1 increase,
// −1 decrease), or (-1, 0) at optimality.
func (s *simplex) price(tol float64) (enter int, dir float64) {
	bestJ, bestScore, bestDir := -1, tol, 0.0
	for j := 0; j < s.total; j++ {
		st := s.status[j]
		if st == basic {
			continue
		}
		if s.upper[j]-s.lower[j] < tol && st != isFree {
			continue // fixed variable can never move
		}
		zj := s.z[j]
		var score, d float64
		switch st {
		case atLower:
			if zj < -tol {
				score, d = -zj, 1
			}
		case atUpper:
			if zj > tol {
				score, d = zj, -1
			}
		case isFree:
			if zj < -tol {
				score, d = -zj, 1
			} else if zj > tol {
				score, d = zj, -1
			}
		}
		if d == 0 {
			continue
		}
		if s.bland {
			return j, d
		}
		if score > bestScore {
			bestJ, bestScore, bestDir = j, score, d
		}
	}
	if bestJ < 0 {
		return -1, 0
	}
	return bestJ, bestDir
}

// step performs the ratio test and either flips a bound, pivots, or reports
// unboundedness.
func (s *simplex) step(j int, dir, tol float64) (unbounded bool, err error) {
	// Maximum movement allowed by the entering variable's own span.
	span := s.upper[j] - s.lower[j]
	tMax := math.Inf(1)
	if !math.IsInf(span, 1) {
		tMax = span
	}
	leaveRow := -1
	leaveAtUpper := false
	for i := 0; i < s.m; i++ {
		alpha := s.tab[i][j]
		if alpha == 0 {
			continue
		}
		delta := -dir * alpha // rate of change of the basic variable
		b := s.basis[i]
		var t float64
		var hitsUpper bool
		switch {
		case delta > tol:
			ub := s.upper[b]
			if math.IsInf(ub, 1) {
				continue
			}
			t = (ub - s.xB[i]) / delta
			hitsUpper = true
		case delta < -tol:
			lb := s.lower[b]
			if math.IsInf(lb, -1) {
				continue
			}
			t = (lb - s.xB[i]) / delta
			hitsUpper = false
		default:
			continue
		}
		if t < -tol {
			t = 0 // numerical slip outside bounds: treat as degenerate
		}
		if t < tMax-tol || (t < tMax+tol && leaveRow < 0) {
			if t < 0 {
				t = 0
			}
			tMax = t
			leaveRow = i
			leaveAtUpper = hitsUpper
		}
	}
	if math.IsInf(tMax, 1) {
		return true, nil
	}
	if leaveRow < 0 {
		// Bound flip: the entering variable traverses its whole span.
		s.boundFlips++
		for i := 0; i < s.m; i++ {
			alpha := s.tab[i][j]
			if alpha == 0 {
				continue
			}
			s.xB[i] -= dir * alpha * tMax
			s.xN[s.basis[i]] = s.xB[i]
		}
		if dir > 0 {
			s.status[j] = atUpper
			s.xN[j] = s.upper[j]
		} else {
			s.status[j] = atLower
			s.xN[j] = s.lower[j]
		}
		return false, nil
	}

	// Pivot: variable j enters the basis in row leaveRow.
	if tMax <= tol {
		s.degenPivots++
	}
	enterVal := s.xN[j] + dir*tMax
	for i := 0; i < s.m; i++ {
		alpha := s.tab[i][j]
		if alpha == 0 {
			continue
		}
		s.xB[i] -= dir * alpha * tMax
		s.xN[s.basis[i]] = s.xB[i]
	}
	leaving := s.basis[leaveRow]
	if leaveAtUpper {
		s.status[leaving] = atUpper
		s.xN[leaving] = s.upper[leaving]
	} else {
		s.status[leaving] = atLower
		s.xN[leaving] = s.lower[leaving]
	}

	piv := s.tab[leaveRow][j]
	if math.Abs(piv) < 1e-11 {
		return false, fmt.Errorf("lp: numerically zero pivot %g at row %d col %d", piv, leaveRow, j)
	}
	prow := s.tab[leaveRow]
	inv := 1 / piv
	for k := range prow {
		prow[k] *= inv
	}
	s.rhs[leaveRow] *= inv
	for i := 0; i < s.m; i++ {
		if i == leaveRow {
			continue
		}
		f := s.tab[i][j]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for k := range row {
			row[k] -= f * prow[k]
		}
		row[j] = 0
		s.rhs[i] -= f * s.rhs[leaveRow]
	}
	zf := s.z[j]
	if zf != 0 {
		for k := range s.z {
			s.z[k] -= zf * prow[k]
		}
		s.z[j] = 0
	}
	s.basis[leaveRow] = j
	s.status[j] = basic
	s.xB[leaveRow] = enterVal
	s.xN[j] = enterVal
	return false, nil
}

// assemble builds the user-facing solution after a phase-II optimum.
func (s *simplex) assemble() *Solution {
	x := make([]float64, s.n)
	copy(x, s.xN[:s.n])
	var obj float64
	for j := 0; j < s.n; j++ {
		obj += s.userC[j] * x[j]
	}
	sign := 1.0
	if s.maximize {
		sign = -1
	}
	dual := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		// The artificial column of row i carries B⁻¹ e_i, so the dual
		// price is −z over that column (artificials have zero phase-II
		// cost). Undo the setup-time row sign flip.
		y := -s.z[s.artOff+i]
		if s.rhsFlip[i] {
			y = -y
		}
		dual[i] = sign * y
	}
	rc := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		rc[j] = sign * s.z[j]
	}
	return &Solution{
		Status:      Optimal,
		X:           x,
		Objective:   obj,
		Dual:        dual,
		ReducedCost: rc,
		Iterations:  s.iters,
	}
}
