package lp

import (
	"math"
	"sort"
)

// This file implements the warm-started solve path: given a Basis from an
// earlier solve of the same problem shape, rebuild the tableau in that basis
// (reusing the previous solve's final tableau when the problem retained one),
// and — because bound changes cannot disturb dual feasibility — restore
// primal feasibility with bound-flipping dual simplex pivots instead of a
// full phase-I/phase-II cold solve. Whenever any step of the warm path
// cannot be certified (singular refactorization, dual-infeasible basis with
// an infeasible primal start, suspected infeasibility or unboundedness,
// numerical trouble), the caller falls back to the unchanged cold two-phase
// primal solver, so every final verdict is produced by a certified path.

// refactorPivotTol is the minimum acceptable pivot magnitude (after partial
// pivoting across candidate rows) when driving a warm basis into the
// tableau; anything smaller means the basis is numerically singular for this
// problem and the warm path gives up.
const refactorPivotTol = 1e-8

func isNegInf(v float64) bool { return math.IsInf(v, -1) }
func isPosInf(v float64) bool { return math.IsInf(v, 1) }

// takeCache detaches and returns the retained final tableau of the previous
// solve if it is still valid for the problem's current shape; a stale cache
// is released. The caller owns the returned simplex (and its arena).
func (p *Problem) takeCache(m, n, nslack int) *simplex {
	c := p.cache
	if c == nil {
		return nil
	}
	p.cache = nil
	if c.cacheRev != p.rev || c.m != m || c.n != n || c.nslack != nslack {
		c.ar.release()
		return nil
	}
	return c
}

// storeCache retains a finished solver so the next warm solve on this
// problem can start from its final tableau instead of refactorizing from
// scratch. The arena is handed over rather than pooled.
func (p *Problem) storeCache(s *simplex) {
	if p.cache != nil {
		p.cache.ar.release()
	}
	s.cacheRev = p.rev
	p.cache = s
}

// ReleaseSolverCache returns the warm-start state retained by
// Options.CaptureBasis solves (if any): the dense tableau goes back to the
// internal scratch pool, the sparse engine state is dropped. Callers that
// run a sequence of capture-enabled solves — the MILP branch-and-bound loop
// does — should call this when the sequence ends.
func (p *Problem) ReleaseSolverCache() {
	if p.cache != nil {
		p.cache.ar.release()
		p.cache = nil
	}
	p.rcache = nil
}

// trySolveWarm attempts a warm-started solve from basis b. A nil Solution
// means the warm path could not certify a result and the caller must cold
// solve; the returned simplex (when non-nil) carries the pivot accounting of
// the attempt either way.
func trySolveWarm(p *Problem, opts Options, b *Basis) (*simplex, *Solution) {
	m, n := len(p.rows), p.nvars
	nslack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nslack++
		}
	}
	if !b.matches(n, m, nslack) {
		return nil, nil
	}
	for j := 0; j < n; j++ {
		if p.lower[j] > p.upper[j] {
			return nil, nil // cold path reports the inconsistent bounds
		}
	}
	s := p.takeCache(m, n, nslack)
	if s != nil {
		s.opts = opts
		s.maximize, s.userC = p.maximize, p.c
	} else {
		var err error
		s, err = newSimplex(p, opts)
		if err != nil {
			return nil, nil
		}
	}
	if !s.refactorTo(b) {
		return s, nil
	}
	s.warmRestore(p, b)
	if s.warmDualFeasible() {
		if !s.dualSimplex() {
			return s, nil
		}
	} else if !s.warmPrimalFeasible() {
		return s, nil
	}
	// Certification pass: exact reduced costs, primal pivots if the basis is
	// not yet optimal. This is the same phase-II loop (and the same
	// optimality test) the cold solver finishes with.
	st, err := s.optimize(s.costII)
	if err != nil || st != Optimal {
		// Unbounded verdicts (and any numerical failure) are re-derived by
		// the cold solver so they carry the same certificate as before.
		return s, nil
	}
	sol := s.assemble()
	sol.Warm = true
	return s, sol
}

// refactorTo drives the target basis into the tableau. Starting from
// whatever basis the tableau is currently in (the artificial identity after
// a fresh build, or the previous solve's final basis when the tableau was
// cached), each wanted-but-nonbasic variable is pivoted into a row whose
// current basic variable is not wanted, choosing the largest pivot across
// candidate rows. The cost is one pivot per basis difference, so re-solves
// in a depth-first branch-and-bound dive are nearly free. Returns false if
// the target basis is rank-deficient or numerically singular here.
func (s *simplex) refactorTo(b *Basis) bool {
	want := make([]bool, s.total)
	cnt := 0
	for j, st := range b.status {
		if st == basic {
			want[j] = true
			cnt++
		}
	}
	if cnt != s.m {
		return false
	}
	inBasis := make([]bool, s.total)
	rowFree := make([]bool, s.m)
	for i, v := range s.basis {
		inBasis[v] = true
		rowFree[i] = !want[v]
	}
	for v := 0; v < s.total; v++ {
		if !want[v] || inBasis[v] {
			continue
		}
		best, bestAbs := -1, refactorPivotTol
		for r := 0; r < s.m; r++ {
			if !rowFree[r] {
				continue
			}
			if a := math.Abs(s.tab[r][v]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return false
		}
		s.pivotTableau(best, v)
		rowFree[best] = false
	}
	return true
}

// pivotTableau performs a pure tableau pivot (rows and the B⁻¹b column, no
// value or reduced-cost updates) installing variable j as basic in row r.
func (s *simplex) pivotTableau(r, j int) {
	prow := s.tab[r]
	inv := 1 / prow[j]
	for k := range prow {
		prow[k] *= inv
	}
	s.rhs[r] *= inv
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.tab[i][j]
		if f == 0 {
			continue
		}
		row := s.tab[i]
		for k := range row {
			row[k] -= f * prow[k]
		}
		row[j] = 0
		s.rhs[i] -= f * s.rhs[r]
	}
	s.basis[r] = j
}

// warmRestore rebuilds every per-variable vector for the current problem
// bounds and objective around the already-refactorized tableau: nonbasic
// variables are placed on the bound the warm basis remembers (moved to the
// nearest finite bound when that side is now unbounded), artificials are
// pinned to zero exactly as after a cold phase I, basic values come from the
// maintained B⁻¹b column, and the reduced-cost row is rebuilt exactly.
func (s *simplex) warmRestore(p *Problem, b *Basis) {
	n := s.n
	copy(s.lower[:n], p.lower)
	copy(s.upper[:n], p.upper)
	for j := n; j < s.artOff; j++ { // slacks: [0, +Inf)
		s.lower[j], s.upper[j] = 0, math.Inf(1)
	}
	for j := s.artOff; j < s.total; j++ { // artificials stay pinned
		s.lower[j], s.upper[j] = 0, 0
	}
	sign := 1.0
	if s.maximize {
		sign = -1
	}
	for j := 0; j < s.total; j++ {
		if j < n {
			s.costII[j] = sign * s.userC[j]
		} else {
			s.costII[j] = 0
		}
	}
	if s.status == nil {
		s.status = make([]varStatus, s.total)
	}
	for j := 0; j < s.total; j++ {
		st := b.status[j]
		lo, hi := s.lower[j], s.upper[j]
		switch {
		case st == basic:
			// placed below, once values are known
		case st == atUpper && !isPosInf(hi):
			s.status[j], s.xN[j] = atUpper, hi
		case st == isFree && isNegInf(lo) && isPosInf(hi):
			s.status[j], s.xN[j] = isFree, 0
		case !isNegInf(lo):
			s.status[j], s.xN[j] = atLower, lo
		case !isPosInf(hi):
			s.status[j], s.xN[j] = atUpper, hi
		default:
			s.status[j], s.xN[j] = isFree, 0
		}
	}
	// xB = B⁻¹b − Σ (B⁻¹A)_j · x_j over nonbasic variables off zero.
	for i := 0; i < s.m; i++ {
		s.xB[i] = s.rhs[i]
	}
	for j := 0; j < s.total; j++ {
		if b.status[j] == basic || s.xN[j] == 0 {
			continue
		}
		v := s.xN[j]
		for i := 0; i < s.m; i++ {
			if a := s.tab[i][j]; a != 0 {
				s.xB[i] -= a * v
			}
		}
	}
	for i, v := range s.basis {
		s.status[v] = basic
		s.xN[v] = s.xB[i]
	}
	s.iters, s.phase1Iters, s.degenPivots, s.boundFlips, s.dualPivots = 0, 0, 0, 0, 0
	s.bland, s.stall = false, 0
	s.initReducedCosts(s.costII)
}

// warmDualFeasible reports whether every nonbasic variable prices out the
// right way. The threshold scales with the objective magnitude (big-M KKT
// problems carry costs around 1e5) because this is only a routing decision:
// optimality is still certified by the exact phase-II pass afterwards.
func (s *simplex) warmDualFeasible() bool {
	maxC := 0.0
	for _, c := range s.costII {
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	dtol := s.opts.Tol * (1 + maxC)
	for j := 0; j < s.total; j++ {
		st := s.status[j]
		if st == basic {
			continue
		}
		if st != isFree && s.upper[j]-s.lower[j] < s.opts.Tol {
			continue // fixed variables cannot move in any direction
		}
		zj := s.z[j]
		switch st {
		case atLower:
			if zj < -dtol {
				return false
			}
		case atUpper:
			if zj > dtol {
				return false
			}
		case isFree:
			if zj < -dtol || zj > dtol {
				return false
			}
		}
	}
	return true
}

// warmPrimalFeasible reports whether every basic value sits within its
// bounds, i.e. the warm basis can seed phase II directly.
func (s *simplex) warmPrimalFeasible() bool {
	tol := s.opts.Tol
	for i := 0; i < s.m; i++ {
		v := s.basis[i]
		if s.xB[i] < s.lower[v]-tol || s.xB[i] > s.upper[v]+tol {
			return false
		}
	}
	return true
}

// dualCand is one eligible entering column for a dual pivot.
type dualCand struct {
	j     int
	alpha float64 // tableau entry in the leaving row
	ratio float64 // dual ratio |z_j / alpha|
	span  float64 // distance between the variable's bounds
}

// dualSimplex runs bound-flipping dual pivots until every basic variable is
// back inside its bounds. Dual feasibility of the reduced costs is the loop
// invariant (maintained by the min-ratio rule), so no phase I is needed.
// Returns false when it cannot finish — no eligible entering column (the
// standard dual certificate of primal infeasibility, which the cold solver
// then re-derives) or an exhausted pivot budget.
func (s *simplex) dualSimplex() bool {
	tol := s.opts.Tol
	sinceRefresh := 0
	var cands []dualCand
	var flips []int
	for {
		if s.iters >= s.opts.MaxIter {
			return false
		}
		if sinceRefresh >= 200 {
			s.initReducedCosts(s.costII)
			sinceRefresh = 0
		}
		// Leaving row: the most violated basic variable (first violated row
		// under the anti-cycling rule).
		r, viol, needUp := -1, tol, false
		for i := 0; i < s.m; i++ {
			v := s.basis[i]
			if d := s.lower[v] - s.xB[i]; d > viol {
				r, viol, needUp = i, d, true
			} else if d := s.xB[i] - s.upper[v]; d > viol {
				r, viol, needUp = i, d, false
			}
			if r >= 0 && s.bland {
				break
			}
		}
		if r < 0 {
			return true // primal feasible
		}
		row := s.tab[r]
		cands = cands[:0]
		for j := 0; j < s.total; j++ {
			st := s.status[j]
			if st == basic {
				continue
			}
			span := s.upper[j] - s.lower[j]
			if st != isFree && span < tol {
				continue
			}
			a := row[j]
			if a > -tol && a < tol {
				continue
			}
			// The entering variable may move up from a lower bound, down
			// from an upper bound, or either way when free; it must move
			// the violated basic value toward the violated bound.
			var ok bool
			var e float64
			switch st {
			case atLower:
				if needUp {
					ok = a < 0
				} else {
					ok = a > 0
				}
				e = s.z[j] / math.Abs(a)
			case atUpper:
				if needUp {
					ok = a > 0
				} else {
					ok = a < 0
				}
				e = -s.z[j] / math.Abs(a)
			case isFree:
				ok = true
				e = math.Abs(s.z[j]) / math.Abs(a)
			}
			if !ok {
				continue
			}
			if e < 0 {
				e = 0
			}
			cands = append(cands, dualCand{j: j, alpha: a, ratio: e, span: span})
		}
		if len(cands) == 0 {
			return false // dual certificate of primal infeasibility
		}
		enter := -1
		flips = flips[:0]
		if s.bland {
			// Lowest-index minimum-ratio column, no bound flips: the dual
			// analogue of Bland's rule.
			bestE := math.Inf(1)
			for i, c := range cands {
				if c.ratio < bestE {
					bestE, enter = c.ratio, i
				}
			}
		} else {
			// Bound-flipping ratio test: walk the candidates in dual-ratio
			// order; as long as flipping the candidate to its other bound
			// still leaves violation to absorb, flip it and keep going, so
			// one dual pivot can retire many box variables at once.
			sort.Slice(cands, func(a, b int) bool {
				ca, cb := cands[a], cands[b]
				if ca.ratio != cb.ratio {
					return ca.ratio < cb.ratio
				}
				aa, ab := math.Abs(ca.alpha), math.Abs(cb.alpha)
				if aa != ab {
					return aa > ab
				}
				return ca.j < cb.j
			})
			remain := viol
			for i, c := range cands {
				if isPosInf(c.span) || remain-math.Abs(c.alpha)*c.span <= tol {
					enter = i
					break
				}
				remain -= math.Abs(c.alpha) * c.span
				flips = append(flips, i)
			}
			if enter < 0 {
				return false // all candidates flip and violation remains
			}
		}
		for _, fi := range flips {
			c := cands[fi]
			j := c.j
			var delta float64
			if s.status[j] == atLower {
				delta = c.span
				s.status[j], s.xN[j] = atUpper, s.upper[j]
			} else {
				delta = -c.span
				s.status[j], s.xN[j] = atLower, s.lower[j]
			}
			s.boundFlips++
			for i := 0; i < s.m; i++ {
				if a := s.tab[i][j]; a != 0 {
					s.xB[i] -= a * delta
					s.xN[s.basis[i]] = s.xB[i]
				}
			}
		}
		c := cands[enter]
		j := c.j
		piv := s.tab[r][j]
		if math.Abs(piv) < 1e-11 {
			return false
		}
		leaving := s.basis[r]
		var beta float64
		if needUp {
			beta = s.lower[leaving]
		} else {
			beta = s.upper[leaving]
		}
		delta := (s.xB[r] - beta) / piv
		enterVal := s.xN[j] + delta
		for i := 0; i < s.m; i++ {
			if a := s.tab[i][j]; a != 0 {
				s.xB[i] -= a * delta
				s.xN[s.basis[i]] = s.xB[i]
			}
		}
		if needUp {
			s.status[leaving], s.xN[leaving] = atLower, s.lower[leaving]
		} else {
			s.status[leaving], s.xN[leaving] = atUpper, s.upper[leaving]
		}
		inv := 1 / piv
		prow := s.tab[r]
		for k := range prow {
			prow[k] *= inv
		}
		s.rhs[r] *= inv
		for i := 0; i < s.m; i++ {
			if i == r {
				continue
			}
			f := s.tab[i][j]
			if f == 0 {
				continue
			}
			rowi := s.tab[i]
			for k := range rowi {
				rowi[k] -= f * prow[k]
			}
			rowi[j] = 0
			s.rhs[i] -= f * s.rhs[r]
		}
		if zf := s.z[j]; zf != 0 {
			for k := range s.z {
				s.z[k] -= zf * prow[k]
			}
			s.z[j] = 0
		}
		s.basis[r] = j
		s.status[j] = basic
		s.xB[r] = enterVal
		s.xN[j] = enterVal
		s.iters++
		s.dualPivots++
		sinceRefresh++
		if c.ratio <= tol {
			s.stall++
			if s.stall > s.m+s.total {
				s.bland = true
			}
		} else {
			s.stall = 0
		}
	}
}
