package lp

import (
	"math"
	"math/rand"
	"testing"
)

// allocLP builds a mid-size feasible LP: min Σx s.t. a random band of GE
// rows, x ≥ 0. Big enough that the sparse engine does real pivoting work,
// small enough to keep AllocsPerRun cheap.
func allocLP(t *testing.T) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	const n, m = 24, 16
	p := NewProblem(n)
	c := make([]float64, n)
	for j := range c {
		c[j] = 1 + rng.Float64()
		if err := p.SetBounds(j, 0, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetObjective(c, false); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < 5; k++ {
			row[(i*3+k*5)%n] = 1 + rng.Float64()
		}
		if _, err := p.AddConstraint(row, GE, 1+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestFTRANBTRANZeroAlloc pins the engine's FTRAN/BTRAN applications at zero
// allocations once a workspace-backed engine exists: the LU triangular
// solves and the eta-file sweep all run in place on the caller's vector.
func TestFTRANBTRANZeroAlloc(t *testing.T) {
	p := allocLP(t)
	ws := NewWorkspace()
	sol, err := SolveWith(p, Options{ForceSparse: true, Workspace: ws})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("seed solve: %v (status %v)", err, sol.Status)
	}
	e := ws.eng
	if e == nil {
		t.Fatal("workspace retained no engine after a sparse solve")
	}
	v := make([]float64, e.m)
	for i := range v {
		v[i] = float64(i%7) - 3
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.ftranVec(v)
		e.btranVec(v)
	})
	if allocs != 0 {
		t.Fatalf("FTRAN+BTRAN allocate %.1f objects per application, want 0", allocs)
	}
}

// TestWarmResolveZeroAlloc pins the steady-state branch-and-bound node shape
// — re-solving a problem from a captured basis through a checked-out
// workspace — at zero allocations. CaptureBasis is off in the measured loop
// (capturing hands the caller a fresh Basis by contract), matching how the
// MILP engine solves non-root nodes.
func TestWarmResolveZeroAlloc(t *testing.T) {
	p := allocLP(t)
	ws := NewWorkspace()
	sol, err := SolveWith(p, Options{ForceSparse: true, CaptureBasis: true, Workspace: ws})
	if err != nil || sol.Status != Optimal || sol.Basis == nil {
		t.Fatalf("seed solve: %v (status %v)", err, sol.Status)
	}
	basis := sol.Basis
	warm := Options{ForceSparse: true, WarmBasis: basis, Workspace: ws}
	// Warm-up passes grow every workspace buffer to its steady-state size.
	for i := 0; i < 3; i++ {
		if _, err := SolveWith(p, warm); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		s, err := SolveWith(p, warm)
		if err != nil || s.Status != Optimal {
			t.Fatalf("warm re-solve: %v (status %v)", err, s.Status)
		}
		if s.Objective != sol.Objective {
			t.Fatalf("warm objective %v, want %v", s.Objective, sol.Objective)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm workspace re-solve allocates %.1f objects per solve, want 0", allocs)
	}
}
