package lp

// Basis is a compact snapshot of a simplex basis. For every variable in the
// solver's internal layout — [0,nvars) structural, [nvars,nvars+nslack)
// slacks, then one artificial per row — it records whether the variable is
// basic or, when nonbasic, which bound it rests on.
//
// A Basis obtained from Solution.Basis (with Options.CaptureBasis set) can be
// passed as Options.WarmBasis to a later solve of a problem with the same
// rows and relations; bounds and objective coefficients may differ. That is
// exactly the branch-and-bound situation: a child node changes only variable
// bounds, which leaves the parent's basis dual-feasible, so the warm solve
// can skip phase I and restore primal feasibility with dual pivots.
//
// A Basis is immutable once captured: the solver only reads it, so one Basis
// may be shared by any number of concurrent solves (e.g. both children of a
// branch-and-bound node).
type Basis struct {
	nvars  int
	nrows  int
	nslack int
	status []varStatus
}

// matches reports whether the basis was captured from a problem with the
// given shape.
func (b *Basis) matches(n, m, nslack int) bool {
	return b != nil && b.nvars == n && b.nrows == m && b.nslack == nslack &&
		len(b.status) == n+nslack+m
}

// captureBasis snapshots the final basis of a solved simplex.
func captureBasis(s *simplex) *Basis {
	st := make([]varStatus, len(s.status))
	copy(st, s.status)
	return &Basis{nvars: s.n, nrows: s.m, nslack: s.nslack, status: st}
}

// slackIndex returns, per constraint row, the internal index of its slack
// variable (or -1 for an equality row), given the structural variable count.
func slackIndex(rows []conRow, n int) []int {
	idx := make([]int, len(rows))
	at := n
	for i, r := range rows {
		if r.rel == EQ {
			idx[i] = -1
			continue
		}
		idx[i] = at
		at++
	}
	return idx
}

// Remap translates a basis captured on an old problem onto a new problem
// that extends it, as produced by row generation: varMap[j] gives the new
// index of old structural variable j (or -1 if dropped) and rowMap[i] the
// new index of old constraint row i. Rows of the new problem that are not
// the image of an old row keep their artificial variable basic, which has
// zero cost and therefore cannot break dual feasibility; new structural
// variables start nonbasic on their nearest finite bound. Remap returns nil
// when the maps are inconsistent with either problem (wrong lengths, out of
// range, relation mismatch, or a dropped basic variable leaving the basis
// rank-deficient), in which case the caller should simply cold-solve.
func (b *Basis) Remap(old, new *Problem, varMap, rowMap []int) *Basis {
	if b == nil || old == nil || new == nil {
		return nil
	}
	oldSlackN, newSlackN := 0, 0
	for _, r := range old.rows {
		if r.rel != EQ {
			oldSlackN++
		}
	}
	for _, r := range new.rows {
		if r.rel != EQ {
			newSlackN++
		}
	}
	if !b.matches(old.nvars, len(old.rows), oldSlackN) {
		return nil
	}
	if len(varMap) != old.nvars || len(rowMap) != len(old.rows) {
		return nil
	}
	n2, m2 := new.nvars, len(new.rows)
	total2 := n2 + newSlackN + m2
	oldSlack := slackIndex(old.rows, old.nvars)
	newSlack := slackIndex(new.rows, n2)
	artOff := old.nvars + oldSlackN
	artOff2 := n2 + newSlackN

	st := make([]varStatus, total2)
	// Default placement for everything: nearest finite bound for new
	// structural variables, lower bound (zero) for slacks and artificials.
	for j := 0; j < n2; j++ {
		st[j] = defaultPlacement(new.lower[j], new.upper[j])
	}
	for j := n2; j < total2; j++ {
		st[j] = atLower
	}

	rowMapped := make([]bool, m2)
	seenVar := make([]bool, total2)
	assign := func(j2 int, s varStatus) bool {
		if j2 < 0 || j2 >= total2 || seenVar[j2] {
			return false
		}
		seenVar[j2] = true
		st[j2] = s
		return true
	}
	for j := 0; j < old.nvars; j++ {
		j2 := varMap[j]
		if j2 < 0 {
			if b.status[j] == basic {
				return nil // basic variable dropped: basis loses rank
			}
			continue
		}
		if j2 >= n2 || !assign(j2, b.status[j]) {
			return nil
		}
	}
	for i, i2 := range rowMap {
		if i2 < 0 || i2 >= m2 || rowMapped[i2] || old.rows[i].rel != new.rows[i2].rel {
			return nil
		}
		rowMapped[i2] = true
		if s := oldSlack[i]; s >= 0 {
			if !assign(newSlack[i2], b.status[s]) {
				return nil
			}
		}
		if !assign(artOff2+i2, b.status[artOff+i]) {
			return nil
		}
	}
	// Fresh rows keep their artificial basic so the basis stays square.
	for i2 := 0; i2 < m2; i2++ {
		if !rowMapped[i2] {
			st[artOff2+i2] = basic
		}
	}
	nbasic := 0
	for _, s := range st {
		if s == basic {
			nbasic++
		}
	}
	if nbasic != m2 {
		return nil
	}
	return &Basis{nvars: n2, nrows: m2, nslack: newSlackN, status: st}
}

// Extend translates a basis captured before rows were appended to the same
// problem onto the problem's current shape: the first b.nrows rows of p must
// be the rows the basis was captured on (append-only mutation guarantees
// this for cut generation). Appended inequality rows take their slack basic
// — zero cost, so dual feasibility of the old columns is untouched, and a
// violated cut simply leaves the slack primal-infeasible for the dual
// simplex to repair. Appended equality rows keep their artificial basic,
// like Remap's fresh rows. Returns b itself when no rows were appended and
// nil when the shapes are inconsistent (caller cold-solves).
func (b *Basis) Extend(p *Problem) *Basis {
	if b == nil || p == nil || b.nvars != p.nvars || b.nrows > len(p.rows) {
		return nil
	}
	oldSlackN := 0
	for _, r := range p.rows[:b.nrows] {
		if r.rel != EQ {
			oldSlackN++
		}
	}
	if !b.matches(p.nvars, b.nrows, oldSlackN) {
		return nil
	}
	if b.nrows == len(p.rows) {
		return b
	}
	newSlackN := oldSlackN
	for _, r := range p.rows[b.nrows:] {
		if r.rel != EQ {
			newSlackN++
		}
	}
	n, m2 := p.nvars, len(p.rows)
	st := make([]varStatus, n+newSlackN+m2)
	// Structural statuses carry over unchanged, as do the old rows' slacks
	// (old slack indices are a prefix of the new slack block).
	copy(st[:n+oldSlackN], b.status[:n+oldSlackN])
	at := n + oldSlackN
	for _, r := range p.rows[b.nrows:] {
		if r.rel != EQ {
			st[at] = basic
			at++
		}
	}
	artOff := n + newSlackN
	copy(st[artOff:artOff+b.nrows], b.status[n+oldSlackN:])
	for i := b.nrows; i < m2; i++ {
		if p.rows[i].rel == EQ {
			st[artOff+i] = basic
		} else {
			st[artOff+i] = atLower
		}
	}
	nbasic := 0
	for _, s := range st {
		if s == basic {
			nbasic++
		}
	}
	if nbasic != m2 {
		return nil
	}
	return &Basis{nvars: n, nrows: m2, nslack: newSlackN, status: st}
}

// defaultPlacement mirrors the cold solver's initial nonbasic placement.
func defaultPlacement(lo, hi float64) varStatus {
	switch {
	case !isNegInf(lo):
		return atLower
	case !isPosInf(hi):
		return atUpper
	default:
		return isFree
	}
}
