// Package lp implements a dense two-phase primal simplex solver for linear
// programs with general (two-sided) variable bounds:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ   for each constraint row i
//	            l ≤ x ≤ u         (entries may be ±Inf)
//
// It is the workhorse under the economic-dispatch, MILP, and bilevel attack
// packages. The implementation is a bounded-variable tableau simplex with
// artificial variables (so the basis inverse is always available for dual
// prices), Dantzig pricing, and a Bland's-rule fallback to guarantee
// termination on degenerate problems.
package lp

import (
	"errors"
	"fmt"
	"math"

	"github.com/edsec/edattack/internal/telemetry"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota + 1 // aᵀx ≤ b
	GE                     // aᵀx ≥ b
	EQ                     // aᵀx = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrIterLimit is returned when the simplex exceeds its iteration budget.
var ErrIterLimit = errors.New("lp: iteration limit exceeded")

// Constraint is one linear constraint row. Coeffs must have one entry per
// problem variable.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem. A Problem is not safe for
// concurrent solves.
type Problem struct {
	nvars    int
	c        []float64
	maximize bool
	lower    []float64
	upper    []float64
	rows     []Constraint

	// rev counts structural changes (added rows); a retained warm-start
	// tableau is only valid while rev is unchanged. Bound and objective
	// edits do not invalidate it — B⁻¹A does not depend on them.
	rev   int
	cache *simplex // final tableau of the last CaptureBasis solve, if kept
}

// NewProblem returns a problem with n variables, objective 0, and default
// bounds (-Inf, +Inf).
func NewProblem(n int) *Problem {
	p := &Problem{
		nvars: n,
		c:     make([]float64, n),
		lower: make([]float64, n),
		upper: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.lower[i] = math.Inf(-1)
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the linear objective. If maximize is true the problem is
// max cᵀx; internally it is negated.
func (p *Problem) SetObjective(c []float64, maximize bool) error {
	if len(c) != p.nvars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), p.nvars)
	}
	copy(p.c, c)
	p.maximize = maximize
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, v float64) error {
	if j < 0 || j >= p.nvars {
		return fmt.Errorf("lp: objective index %d out of range [0,%d)", j, p.nvars)
	}
	p.c[j] = v
	return nil
}

// SetMaximize toggles between maximization and minimization.
func (p *Problem) SetMaximize(maximize bool) { p.maximize = maximize }

// IsMaximize reports whether the problem maximizes its objective.
func (p *Problem) IsMaximize() bool { return p.maximize }

// SetBounds sets the bounds of variable j. Use ±Inf for unbounded sides.
func (p *Problem) SetBounds(j int, lo, hi float64) error {
	if j < 0 || j >= p.nvars {
		return fmt.Errorf("lp: bound index %d out of range [0,%d)", j, p.nvars)
	}
	if lo > hi {
		return fmt.Errorf("lp: variable %d has lower bound %g > upper bound %g", j, lo, hi)
	}
	p.lower[j] = lo
	p.upper[j] = hi
	return nil
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, hi float64) { return p.lower[j], p.upper[j] }

// AddConstraint appends a dense constraint row and returns its index.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) (int, error) {
	if len(coeffs) != p.nvars {
		return 0, fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), p.nvars)
	}
	switch rel {
	case LE, GE, EQ:
	default:
		return 0, fmt.Errorf("lp: invalid relation %v", rel)
	}
	row := make([]float64, p.nvars)
	copy(row, coeffs)
	p.rows = append(p.rows, Constraint{Coeffs: row, Rel: rel, RHS: rhs})
	p.rev++
	return len(p.rows) - 1, nil
}

// AddSparseConstraint appends a constraint given as index→coefficient pairs.
func (p *Problem) AddSparseConstraint(idx []int, coeffs []float64, rel Relation, rhs float64) (int, error) {
	if len(idx) != len(coeffs) {
		return 0, fmt.Errorf("lp: sparse constraint has %d indices but %d coefficients", len(idx), len(coeffs))
	}
	row := make([]float64, p.nvars)
	for k, j := range idx {
		if j < 0 || j >= p.nvars {
			return 0, fmt.Errorf("lp: sparse constraint index %d out of range [0,%d)", j, p.nvars)
		}
		row[j] += coeffs[k]
	}
	return p.AddConstraint(row, rel, rhs)
}

// Solution is the result of a successful Solve call.
type Solution struct {
	// Status reports whether the problem was solved to optimality, proven
	// infeasible, or proven unbounded.
	Status Status
	// X is the optimal primal point (valid only when Status == Optimal).
	X []float64
	// Objective is the optimal objective in the user's sense (maximized
	// objectives are reported as maximized).
	Objective float64
	// Dual holds one dual price per constraint row: the marginal change of
	// the minimized objective per unit increase of the row's RHS.
	Dual []float64
	// ReducedCost holds the reduced cost of each structural variable under
	// the minimization form.
	ReducedCost []float64
	// Iterations is the total simplex pivot count across both phases. When
	// a warm start was attempted and fell back, the attempt's pivots are
	// included, so the count reflects work done, not just the final path.
	// Finer-grained pivot accounting (phase-I share, degenerate pivots,
	// bound flips) is reported through Options.Metrics rather than here,
	// keeping the per-solve allocation in the same size class as the
	// uninstrumented solver.
	Iterations int
	// Warm reports that the solution was produced by the warm-started dual
	// simplex path rather than a cold two-phase solve.
	Warm bool
	// Basis is a snapshot of the optimal basis, captured only when
	// Options.CaptureBasis is set and Status == Optimal. It can seed a
	// later solve of the same problem shape via Options.WarmBasis.
	Basis *Basis
}

// Options tune the simplex.
type Options struct {
	// MaxIter caps total pivots across both phases (default 50000).
	MaxIter int
	// Tol is the numeric tolerance for pricing and feasibility
	// (default 1e-9).
	Tol float64
	// Metrics, when non-nil, receives lp_* solve/pivot counters and the
	// lp_pivots histogram. A nil registry costs one branch per solve.
	Metrics *telemetry.Registry
	// WarmBasis, when non-nil, seeds the solve with a basis captured from
	// an earlier solve of the same problem shape (bounds and objective may
	// differ). If the basis is still dual-feasible the solver skips phase I
	// and restores primal feasibility with bound-flipping dual pivots; in
	// every case where the warm path cannot certify a result it falls back
	// to the cold two-phase solve, so results never depend on the hint.
	WarmBasis *Basis
	// CaptureBasis records the optimal basis in Solution.Basis and retains
	// the final tableau on the Problem so the next warm solve can reuse it.
	// Callers running a capture-enabled sequence should finish with
	// Problem.ReleaseSolverCache.
	CaptureBasis bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 50000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Solve solves the problem with default options.
func Solve(p *Problem) (*Solution, error) {
	return SolveWith(p, Options{})
}

// SolveWith solves the problem with explicit options.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	var (
		sol                     *Solution
		err                     error
		warmTried, warmUsed     bool
		iters, p1, degen, flips int
		dualPivs                int
		s                       *simplex
	)
	if b := opts.WarmBasis; b != nil {
		warmTried = true
		ws, wsol := trySolveWarm(p, opts, b)
		if ws != nil {
			iters += ws.iters
			degen += ws.degenPivots
			flips += ws.boundFlips
			dualPivs += ws.dualPivots
		}
		if wsol != nil {
			sol, s, warmUsed = wsol, ws, true
		} else if ws != nil {
			// Failed attempt: its scratch goes back to the pool; any
			// pivots it burned stay in the totals below.
			ws.ar.release()
		}
	}
	if sol == nil {
		cs, cerr := newSimplex(p, opts)
		if cerr != nil {
			return nil, cerr
		}
		sol, err = cs.run()
		iters += cs.iters
		p1 += cs.phase1Iters
		degen += cs.degenPivots
		flips += cs.boundFlips
		s = cs
	}
	if sol != nil {
		sol.Iterations = iters
		sol.Warm = warmUsed
		if opts.CaptureBasis && sol.Status == Optimal {
			sol.Basis = captureBasis(s)
		}
	}
	// The solution vectors are fresh copies, so the scratch either goes
	// back to the pool or — on capture-enabled solves — is retained on the
	// Problem as the next warm start's tableau.
	if err == nil && opts.CaptureBasis {
		p.storeCache(s)
	} else {
		s.ar.release()
	}
	if m := opts.Metrics; m != nil {
		m.Counter("lp_solves_total").Inc()
		m.Counter("lp_pivots_total").Add(int64(iters))
		m.Counter("lp_phase1_pivots_total").Add(int64(p1))
		m.Counter("lp_degenerate_pivots_total").Add(int64(degen))
		m.Counter("lp_bound_flips_total").Add(int64(flips))
		m.Counter("lp_dual_pivots_total").Add(int64(dualPivs))
		if warmTried {
			if warmUsed {
				m.Counter("lp_warm_solves_total").Inc()
			} else {
				m.Counter("lp_warm_fallbacks_total").Inc()
			}
		}
		m.Histogram("lp_pivots", telemetry.IterBuckets).Observe(float64(iters))
		switch {
		case err != nil:
			m.Counter("lp_errors_total").Inc()
		case sol.Status == Infeasible:
			m.Counter("lp_infeasible_total").Inc()
		case sol.Status == Unbounded:
			m.Counter("lp_unbounded_total").Inc()
		}
	}
	return sol, err
}
