// Package lp implements the linear-programming layer shared by the
// economic-dispatch, MILP, and bilevel attack packages. Problems are
// bounded-variable LPs with general (two-sided) bounds:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx {≤,=,≥} bᵢ   for each constraint row i
//	            l ≤ x ≤ u         (entries may be ±Inf)
//
// Two solver engines share one contract. The sparse revised simplex stores
// the constraint matrix once in compressed-column form, keeps the basis as a
// sparse LU factorization updated per pivot with product-form eta terms, and
// prices through BTRAN/FTRAN solves — the right shape for the KKT systems of
// power networks, whose rows are overwhelmingly zero. The dense
// bounded-variable tableau simplex (two-phase, Dantzig pricing with a
// Bland's-rule fallback) remains both the engine for small or dense problems
// and the differential-testing oracle for the sparse path; Options.DenseSolver
// forces it. Both engines support warm starts from a Basis snapshot.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/edsec/edattack/internal/telemetry"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota + 1 // aᵀx ≤ b
	GE                     // aᵀx ≥ b
	EQ                     // aᵀx = b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrIterLimit is returned when the simplex exceeds its iteration budget.
var ErrIterLimit = errors.New("lp: iteration limit exceeded")

// Constraint is one linear constraint row in dense form, as accepted by
// AddConstraint and returned by Problem.ConstraintAt. Coeffs has one entry
// per problem variable.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// conRow is the native storage of one constraint: sorted sparse
// index/value pairs. Rows are stored sparse so KKT/big-M assembly and row
// generation append rows without copying dense slabs, and so the revised
// simplex can build its column file straight from the problem.
type conRow struct {
	ind []int // strictly increasing
	val []float64
	rel Relation
	rhs float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create problems with NewProblem. A Problem is not safe for
// concurrent solves.
type Problem struct {
	nvars    int
	c        []float64
	maximize bool
	lower    []float64
	upper    []float64
	rows     []conRow
	nnz      int // total stored coefficients across rows

	// rev counts structural changes (added rows); a retained warm-start
	// tableau is only valid while rev is unchanged. Bound and objective
	// edits do not invalidate it — B⁻¹A does not depend on them.
	rev    int
	cache  *simplex // final tableau of the last dense CaptureBasis solve, if kept
	rcache *revised // final state of the last sparse CaptureBasis solve, if kept
}

// NewProblem returns a problem with n variables, objective 0, and default
// bounds (-Inf, +Inf).
func NewProblem(n int) *Problem {
	p := &Problem{
		nvars: n,
		c:     make([]float64, n),
		lower: make([]float64, n),
		upper: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.lower[i] = math.Inf(-1)
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// NNZ returns the number of stored constraint coefficients across all rows.
func (p *Problem) NNZ() int { return p.nnz }

// Density returns NNZ divided by rows×vars — the fill fraction of the
// constraint matrix, used by the engine-selection heuristic and recorded by
// benchmark baselines. An empty problem has density 0.
func (p *Problem) Density() float64 {
	if len(p.rows) == 0 || p.nvars == 0 {
		return 0
	}
	return float64(p.nnz) / (float64(len(p.rows)) * float64(p.nvars))
}

// ConstraintAt returns row i in dense form (a fresh copy).
func (p *Problem) ConstraintAt(i int) Constraint {
	r := p.rows[i]
	coeffs := make([]float64, p.nvars)
	for k, j := range r.ind {
		coeffs[j] = r.val[k]
	}
	return Constraint{Coeffs: coeffs, Rel: r.rel, RHS: r.rhs}
}

// SetObjective sets the linear objective. If maximize is true the problem is
// max cᵀx; internally it is negated.
func (p *Problem) SetObjective(c []float64, maximize bool) error {
	if len(c) != p.nvars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), p.nvars)
	}
	copy(p.c, c)
	p.maximize = maximize
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, v float64) error {
	if j < 0 || j >= p.nvars {
		return fmt.Errorf("lp: objective index %d out of range [0,%d)", j, p.nvars)
	}
	p.c[j] = v
	return nil
}

// SetMaximize toggles between maximization and minimization.
func (p *Problem) SetMaximize(maximize bool) { p.maximize = maximize }

// IsMaximize reports whether the problem maximizes its objective.
func (p *Problem) IsMaximize() bool { return p.maximize }

// SetBounds sets the bounds of variable j. Use ±Inf for unbounded sides.
func (p *Problem) SetBounds(j int, lo, hi float64) error {
	if j < 0 || j >= p.nvars {
		return fmt.Errorf("lp: bound index %d out of range [0,%d)", j, p.nvars)
	}
	if lo > hi {
		return fmt.Errorf("lp: variable %d has lower bound %g > upper bound %g", j, lo, hi)
	}
	p.lower[j] = lo
	p.upper[j] = hi
	return nil
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lo, hi float64) { return p.lower[j], p.upper[j] }

// AddConstraint appends a dense constraint row and returns its index. Only
// the nonzero coefficients are stored.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) (int, error) {
	if len(coeffs) != p.nvars {
		return 0, fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), p.nvars)
	}
	if err := checkRelation(rel); err != nil {
		return 0, err
	}
	nz := 0
	for _, v := range coeffs {
		if v != 0 {
			nz++
		}
	}
	ind := make([]int, 0, nz)
	val := make([]float64, 0, nz)
	for j, v := range coeffs {
		if v != 0 {
			ind = append(ind, j)
			val = append(val, v)
		}
	}
	return p.appendRow(conRow{ind: ind, val: val, rel: rel, rhs: rhs}), nil
}

// AddSparseConstraint appends a constraint given as index→coefficient pairs,
// stored sparsely. Duplicate indices are summed; indices need not be sorted.
func (p *Problem) AddSparseConstraint(idx []int, coeffs []float64, rel Relation, rhs float64) (int, error) {
	if len(idx) != len(coeffs) {
		return 0, fmt.Errorf("lp: sparse constraint has %d indices but %d coefficients", len(idx), len(coeffs))
	}
	if err := checkRelation(rel); err != nil {
		return 0, err
	}
	for _, j := range idx {
		if j < 0 || j >= p.nvars {
			return 0, fmt.Errorf("lp: sparse constraint index %d out of range [0,%d)", j, p.nvars)
		}
	}
	ind := make([]int, len(idx))
	val := make([]float64, len(idx))
	copy(ind, idx)
	copy(val, coeffs)
	sortRowEntries(ind, val)
	// Merge duplicates and drop exact zeros in place.
	w := 0
	for k := range ind {
		if w > 0 && ind[w-1] == ind[k] {
			val[w-1] += val[k]
			continue
		}
		ind[w], val[w] = ind[k], val[k]
		w++
	}
	ind, val = ind[:w], val[:w]
	w = 0
	for k := range ind {
		if val[k] != 0 {
			ind[w], val[w] = ind[k], val[k]
			w++
		}
	}
	return p.appendRow(conRow{ind: ind[:w], val: val[:w], rel: rel, rhs: rhs}), nil
}

func (p *Problem) appendRow(r conRow) int {
	p.rows = append(p.rows, r)
	p.nnz += len(r.ind)
	p.rev++
	return len(p.rows) - 1
}

// RowInfo returns the relation, right-hand side, and stored coefficient
// count of row i without materializing a dense copy.
func (p *Problem) RowInfo(i int) (Relation, float64, int) {
	r := &p.rows[i]
	return r.rel, r.rhs, len(r.ind)
}

// VisitRow calls fn for every stored coefficient of row i in increasing
// column order. It is the O(nnz) row accessor presolve-style passes use
// instead of ConstraintAt's O(nvars) dense copies.
func (p *Problem) VisitRow(i int, fn func(j int, v float64)) {
	r := &p.rows[i]
	for k, j := range r.ind {
		fn(j, r.val[k])
	}
}

// SetConstraintCoeff overwrites the coefficient of variable j in row i,
// inserting a stored entry if one does not exist. Changing the matrix
// invalidates any retained warm-start state, so rev is bumped; captured
// Basis snapshots remain structurally valid (same rows and relations) and
// may still seed warm solves of the edited problem.
func (p *Problem) SetConstraintCoeff(i, j int, v float64) error {
	if i < 0 || i >= len(p.rows) {
		return fmt.Errorf("lp: constraint index %d out of range [0,%d)", i, len(p.rows))
	}
	if j < 0 || j >= p.nvars {
		return fmt.Errorf("lp: constraint coefficient index %d out of range [0,%d)", j, p.nvars)
	}
	r := &p.rows[i]
	k := sort.SearchInts(r.ind, j)
	if k < len(r.ind) && r.ind[k] == j {
		r.val[k] = v
	} else {
		r.ind = append(r.ind, 0)
		r.val = append(r.val, 0)
		copy(r.ind[k+1:], r.ind[k:])
		copy(r.val[k+1:], r.val[k:])
		r.ind[k], r.val[k] = j, v
		p.nnz++
	}
	p.rev++
	return nil
}

// SetConstraintRHS overwrites the right-hand side of row i. Like a
// coefficient edit it bumps rev: the retained tableau's factorization does
// not depend on b, but its primal point does, so the conservative choice is
// to drop it.
func (p *Problem) SetConstraintRHS(i int, rhs float64) error {
	if i < 0 || i >= len(p.rows) {
		return fmt.Errorf("lp: constraint index %d out of range [0,%d)", i, len(p.rows))
	}
	p.rows[i].rhs = rhs
	p.rev++
	return nil
}

// TruncateRows drops every constraint row from index n on. Rows are
// append-only otherwise, so this exactly undoes a run of AddConstraint /
// AddSparseConstraint calls — the mechanism cut-generating searches use to
// return a problem to its caller in its original shape.
func (p *Problem) TruncateRows(n int) error {
	if n < 0 || n > len(p.rows) {
		return fmt.Errorf("lp: truncation length %d out of range [0,%d]", n, len(p.rows))
	}
	if n == len(p.rows) {
		return nil
	}
	for _, r := range p.rows[n:] {
		p.nnz -= len(r.ind)
	}
	p.rows = p.rows[:n]
	p.rev++
	return nil
}

func checkRelation(rel Relation) error {
	switch rel {
	case LE, GE, EQ:
		return nil
	default:
		return fmt.Errorf("lp: invalid relation %v", rel)
	}
}

// sortRowEntries sorts parallel index/value slices by index.
func sortRowEntries(ind []int, val []float64) {
	sort.Sort(&rowSorter{ind: ind, val: val})
}

type rowSorter struct {
	ind []int
	val []float64
}

func (s *rowSorter) Len() int           { return len(s.ind) }
func (s *rowSorter) Less(i, j int) bool { return s.ind[i] < s.ind[j] }
func (s *rowSorter) Swap(i, j int) {
	s.ind[i], s.ind[j] = s.ind[j], s.ind[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// Solution is the result of a successful Solve call.
type Solution struct {
	// Status reports whether the problem was solved to optimality, proven
	// infeasible, or proven unbounded.
	Status Status
	// X is the optimal primal point (valid only when Status == Optimal).
	X []float64
	// Objective is the optimal objective in the user's sense (maximized
	// objectives are reported as maximized).
	Objective float64
	// Dual holds one dual price per constraint row: the marginal change of
	// the minimized objective per unit increase of the row's RHS.
	Dual []float64
	// ReducedCost holds the reduced cost of each structural variable under
	// the minimization form.
	ReducedCost []float64
	// Iterations is the total simplex pivot count across both phases. When
	// a warm start was attempted and fell back, the attempt's pivots are
	// included, so the count reflects work done, not just the final path.
	// Finer-grained pivot accounting (phase-I share, degenerate pivots,
	// bound flips) is reported through Options.Metrics rather than here,
	// keeping the per-solve allocation in the same size class as the
	// uninstrumented solver.
	Iterations int
	// Warm reports that the solution was produced by the warm-started dual
	// simplex path rather than a cold two-phase solve.
	Warm bool
	// Sparse reports which engine produced the solution: true for the
	// sparse revised simplex, false for the dense tableau.
	Sparse bool
	// Basis is a snapshot of the optimal basis, captured only when
	// Options.CaptureBasis is set and Status == Optimal. It can seed a
	// later solve of the same problem shape via Options.WarmBasis.
	Basis *Basis
}

// Options tune the simplex.
type Options struct {
	// MaxIter caps total pivots across both phases (default 50000).
	MaxIter int
	// Tol is the numeric tolerance for pricing and feasibility
	// (default 1e-9).
	Tol float64
	// Metrics, when non-nil, receives lp_* solve/pivot counters and the
	// lp_pivots histogram. A nil registry costs one branch per solve.
	Metrics *telemetry.Registry
	// WarmBasis, when non-nil, seeds the solve with a basis captured from
	// an earlier solve of the same problem shape (bounds and objective may
	// differ). If the basis is still dual-feasible the solver skips phase I
	// and restores primal feasibility with bound-flipping dual pivots; in
	// every case where the warm path cannot certify a result it falls back
	// to the cold two-phase solve, so results never depend on the hint.
	// Under the sparse engine the warm basis seeds the initial LU
	// factorization instead of a tableau refactorization.
	WarmBasis *Basis
	// CaptureBasis records the optimal basis in Solution.Basis and retains
	// the engine's final state on the Problem so the next warm solve can
	// reuse it. Callers running a capture-enabled sequence should finish
	// with Problem.ReleaseSolverCache.
	CaptureBasis bool
	// DenseSolver forces the dense tableau engine, overriding both the
	// selection heuristic and ForceSparse. The dense engine is the
	// differential-testing oracle for the sparse one.
	DenseSolver bool
	// ForceSparse forces the sparse revised simplex engine even on problems
	// the heuristic would route to the dense tableau (small or dense
	// constraint matrices).
	ForceSparse bool
	// Span, when non-nil, parents an "lp.solve" trace span per solve,
	// carrying the engine choice (sparse=true/false), status, and pivot
	// count. A nil Span emits nothing.
	Span *telemetry.Span
	// Flight, when non-nil, records one FlightLP event per solve (engine,
	// warm/cold, pivots, status, duration). Recording is observational
	// only and never alters the solve.
	Flight *telemetry.Flight
	// Ctx, when non-nil, is checked once at solve entry; a canceled or
	// expired context makes SolveWith return the context's error (wrapped,
	// so errors.Is(err, context.Canceled / context.DeadlineExceeded)
	// works) without touching the problem. Individual solves are short —
	// per-node/per-round granularity lives in the milp and core callers —
	// so there is no mid-pivot polling.
	Ctx context.Context
	// Workspace, when non-nil, supplies (and between solves retains) the
	// sparse engine's working storage, so steady-state re-solves touch the
	// allocator only on problem-size growth. The returned Solution's vectors
	// then alias the workspace and are valid only until its next solve.
	// Results are bit-identical with and without a workspace; the dense
	// engine ignores it (it has its own arena pool). A workspace must not be
	// used by two goroutines at once.
	Workspace *Workspace
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 50000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Engine-selection heuristic: the revised simplex wins when the constraint
// matrix is large and sparse enough that FTRAN/BTRAN solves beat dense
// tableau row operations. Dense PTDF-style rows (economic dispatch, QP
// subproblems) stay on the tableau engine.
// The row cutover is calibrated against BENCH_solver.json: the KKT systems
// of case9/30/57 (≲40 rows) ran 0.66–0.77× under the revised simplex —
// LU refactorization overhead dominates at that size — while case118
// (~180 rows, ~6% dense) runs 2.6× faster sparse. 64 rows splits the two
// regimes with margin on both sides.
const (
	sparseMinRows    = 64
	sparseMaxDensity = 0.3
)

// useSparseEngine decides which engine a solve runs on.
func useSparseEngine(p *Problem, opts Options) bool {
	if opts.DenseSolver {
		return false
	}
	if opts.ForceSparse {
		return true
	}
	return len(p.rows) >= sparseMinRows && p.Density() <= sparseMaxDensity
}

// solveStats aggregates per-solve counter deltas from either engine.
type solveStats struct {
	iters, phase1, degen, flips, dualPivs int
	warmTried, warmUsed                   bool
	ftran, btran, etaApps, refactors      int
}

// Solve solves the problem with default options.
func Solve(p *Problem) (*Solution, error) {
	return SolveWith(p, Options{})
}

// SolveWith solves the problem with explicit options.
func SolveWith(p *Problem, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("lp: solve aborted: %w", err)
		}
	}
	sparseEng := useSparseEngine(p, opts)
	span := telemetry.StartSpan(nil, opts.Span, "lp.solve")
	span.SetAttr("sparse", sparseEng)
	if opts.Metrics != nil {
		// High-water problem shape: the largest system seen and the densest
		// system seen (SetMax, so the gauges are order-independent).
		opts.Metrics.Gauge("lp_problem_nnz").SetMax(float64(p.NNZ()))
		opts.Metrics.Gauge("lp_problem_density").SetMax(p.Density())
	}

	// Wall-clock is only sampled when someone will consume it, keeping
	// the telemetry-off path free of clock calls.
	timed := opts.Metrics != nil || opts.Flight != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	var (
		sol   *Solution
		err   error
		stats solveStats
	)
	if sparseEng {
		sol, err = solveSparse(p, opts, &stats)
	} else {
		sol, err = solveDense(p, opts, &stats)
	}
	if sol != nil {
		sol.Iterations = stats.iters
		sol.Warm = stats.warmUsed
		sol.Sparse = sparseEng
	}
	var dur time.Duration
	if timed {
		dur = time.Since(t0)
	}
	emitSolveMetrics(opts.Metrics, sol, err, &stats, sparseEng, dur)
	if fl := opts.Flight; fl != nil {
		ev := telemetry.FlightEvent{
			Kind:   telemetry.FlightLP,
			Sparse: sparseEng,
			Warm:   stats.warmUsed,
			Pivots: stats.iters,
			DurUS:  dur.Microseconds(),
		}
		switch {
		case err != nil:
			ev.Label = "error"
		case sol != nil:
			ev.Label = sol.Status.String()
			ev.Bound = sol.Objective
		}
		fl.Record(ev)
	}
	if span != nil {
		if sol != nil {
			span.SetAttr("status", sol.Status.String())
			span.SetAttr("pivots", stats.iters)
			span.SetAttr("warm", stats.warmUsed)
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return sol, err
}

// solveDense runs the dense tableau engine: warm attempt first (when a basis
// hint is present), cold two-phase otherwise.
func solveDense(p *Problem, opts Options, stats *solveStats) (*Solution, error) {
	var (
		sol *Solution
		err error
		s   *simplex
	)
	if b := opts.WarmBasis; b != nil {
		stats.warmTried = true
		ws, wsol := trySolveWarm(p, opts, b)
		if ws != nil {
			stats.iters += ws.iters
			stats.degen += ws.degenPivots
			stats.flips += ws.boundFlips
			stats.dualPivs += ws.dualPivots
		}
		if wsol != nil {
			sol, s, stats.warmUsed = wsol, ws, true
		} else if ws != nil {
			// Failed attempt: its scratch goes back to the pool; any
			// pivots it burned stay in the totals.
			ws.ar.release()
		}
	}
	if sol == nil {
		cs, cerr := newSimplex(p, opts)
		if cerr != nil {
			return nil, cerr
		}
		sol, err = cs.run()
		stats.iters += cs.iters
		stats.phase1 += cs.phase1Iters
		stats.degen += cs.degenPivots
		stats.flips += cs.boundFlips
		s = cs
	}
	if sol != nil && opts.CaptureBasis && sol.Status == Optimal {
		sol.Basis = captureBasis(s)
	}
	// The solution vectors are fresh copies, so the scratch either goes
	// back to the pool or — on capture-enabled solves — is retained on the
	// Problem as the next warm start's tableau.
	if err == nil && opts.CaptureBasis {
		p.storeCache(s)
	} else {
		s.ar.release()
	}
	return sol, err
}

// emitSolveMetrics publishes one solve's counter deltas.
func emitSolveMetrics(m *telemetry.Registry, sol *Solution, err error, st *solveStats, sparseEng bool, dur time.Duration) {
	if m == nil {
		return
	}
	m.Counter("lp_solves_total").Inc()
	if sparseEng {
		m.Counter("lp_sparse_solves_total").Inc()
	} else {
		m.Counter("lp_dense_solves_total").Inc()
	}
	m.Histogram("lp_solve_seconds", telemetry.SecondsBuckets).Observe(dur.Seconds())
	m.Counter("lp_pivots_total").Add(int64(st.iters))
	m.Counter("lp_phase1_pivots_total").Add(int64(st.phase1))
	m.Counter("lp_degenerate_pivots_total").Add(int64(st.degen))
	m.Counter("lp_bound_flips_total").Add(int64(st.flips))
	m.Counter("lp_dual_pivots_total").Add(int64(st.dualPivs))
	m.Counter("lp_ftran_total").Add(int64(st.ftran))
	m.Counter("lp_btran_total").Add(int64(st.btran))
	m.Counter("lp_eta_length").Add(int64(st.etaApps))
	m.Counter("lp_refactorizations_total").Add(int64(st.refactors))
	if st.warmTried {
		if st.warmUsed {
			m.Counter("lp_warm_solves_total").Inc()
		} else {
			m.Counter("lp_warm_fallbacks_total").Inc()
		}
	}
	m.Histogram("lp_pivots", telemetry.IterBuckets).Observe(float64(st.iters))
	switch {
	case err != nil:
		m.Counter("lp_errors_total").Inc()
	case sol.Status == Infeasible:
		m.Counter("lp_infeasible_total").Inc()
	case sol.Status == Unbounded:
		m.Counter("lp_unbounded_total").Inc()
	}
}
