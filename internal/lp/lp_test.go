package lp

import (
	"math"
	"testing"
)

const tol = 1e-7

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimpleMin(t *testing.T) {
	// min x + y  s.t. x + y >= 2, x >= 0, y >= 0 → obj 2.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(0, 0, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(1, 0, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddConstraint([]float64{1, 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > tol {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → x=4, y=0, obj 12.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{3, 2}, true)
	_ = p.SetBounds(0, 0, math.Inf(1))
	_ = p.SetBounds(1, 0, math.Inf(1))
	_, _ = p.AddConstraint([]float64{1, 1}, LE, 4)
	_, _ = p.AddConstraint([]float64{1, 3}, LE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-12) > tol {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > tol || math.Abs(sol.X[1]) > tol {
		t.Fatalf("x = %v, want [4 0]", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x,y in [0, 8] → x=8, y=2, obj 22.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{2, 3}, false)
	_ = p.SetBounds(0, 0, 8)
	_ = p.SetBounds(1, 0, 8)
	_, _ = p.AddConstraint([]float64{1, 1}, EQ, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-22) > tol {
		t.Fatalf("objective = %v, want 22", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetBounds(0, 0, 1)
	_, _ = p.AddConstraint([]float64{1}, GE, 5)
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleConflictingRows(t *testing.T) {
	p := NewProblem(2)
	_, _ = p.AddConstraint([]float64{1, 1}, EQ, 1)
	_, _ = p.AddConstraint([]float64{1, 1}, EQ, 3)
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	_ = p.SetObjective([]float64{1}, true)
	_ = p.SetBounds(0, 0, math.Inf(1))
	_, _ = p.AddConstraint([]float64{-1}, LE, 0) // x >= 0, no upper limit
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5 via constraint (variable itself unbounded).
	p := NewProblem(1)
	_ = p.SetObjective([]float64{1}, false)
	_, _ = p.AddConstraint([]float64{1}, GE, -5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]+5) > tol {
		t.Fatalf("x = %v, want -5", sol.X[0])
	}
}

func TestNegativeBounds(t *testing.T) {
	// max x + y with x in [-3, -1], y in [-2, 5], x + y <= 1.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, true)
	_ = p.SetBounds(0, -3, -1)
	_ = p.SetBounds(1, -2, 5)
	_, _ = p.AddConstraint([]float64{1, 1}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-1) > tol {
		t.Fatalf("objective = %v, want 1", sol.Objective)
	}
}

func TestBoundFlipPath(t *testing.T) {
	// Degenerate little problem that exercises bound flips: maximize x
	// with x in [0, 1] and a constraint that never binds.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 0}, true)
	_ = p.SetBounds(0, 0, 1)
	_ = p.SetBounds(1, 0, 10)
	_, _ = p.AddConstraint([]float64{1, 1}, LE, 100)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-1) > tol {
		t.Fatalf("x = %v, want 1", sol.X[0])
	}
}

func TestDegenerateKleeMintyLike(t *testing.T) {
	// A small Klee–Minty-style problem; checks termination and optimum.
	n := 6
	p := NewProblem(n)
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = math.Pow(2, float64(n-1-j))
		_ = p.SetBounds(j, 0, math.Inf(1))
	}
	_ = p.SetObjective(c, true)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for j := 0; j < i; j++ {
			row[j] = math.Pow(2, float64(i-j+1))
		}
		row[i] = 1
		_, _ = p.AddConstraint(row, LE, math.Pow(5, float64(i+1)))
	}
	sol := solveOK(t, p)
	want := math.Pow(5, float64(n))
	if math.Abs(sol.Objective-want) > 1e-6*want {
		t.Fatalf("objective = %v, want %v", sol.Objective, want)
	}
}

func TestDualValues(t *testing.T) {
	// min 12x + 16y s.t. x + 2y >= 40, x + y >= 30, x,y >= 0.
	// Optimum x=20, y=10, obj 400; duals y1=4, y2=8.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{12, 16}, false)
	_ = p.SetBounds(0, 0, math.Inf(1))
	_ = p.SetBounds(1, 0, math.Inf(1))
	_, _ = p.AddConstraint([]float64{1, 2}, GE, 40)
	_, _ = p.AddConstraint([]float64{1, 1}, GE, 30)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-400) > tol {
		t.Fatalf("objective = %v, want 400", sol.Objective)
	}
	if math.Abs(sol.Dual[0]-4) > tol || math.Abs(sol.Dual[1]-8) > tol {
		t.Fatalf("duals = %v, want [4 8]", sol.Dual)
	}
}

func TestComplementarySlackness(t *testing.T) {
	p := NewProblem(2)
	_ = p.SetObjective([]float64{3, 2}, true)
	_ = p.SetBounds(0, 0, math.Inf(1))
	_ = p.SetBounds(1, 0, math.Inf(1))
	_, _ = p.AddConstraint([]float64{1, 1}, LE, 4)
	_, _ = p.AddConstraint([]float64{1, 3}, LE, 100) // slack at optimum
	sol := solveOK(t, p)
	act := sol.X[0] + 3*sol.X[1]
	if act > 100-1 && math.Abs(sol.Dual[1]) > tol {
		t.Fatalf("expected slack row, activity %v", act)
	}
	if math.Abs(sol.Dual[1]) > tol {
		t.Fatalf("dual of slack constraint = %v, want 0", sol.Dual[1])
	}
}

func TestSparseConstraint(t *testing.T) {
	p := NewProblem(5)
	_ = p.SetObjective([]float64{1, 0, 0, 0, 1}, false)
	for j := 0; j < 5; j++ {
		_ = p.SetBounds(j, 0, math.Inf(1))
	}
	if _, err := p.AddSparseConstraint([]int{0, 4}, []float64{1, 1}, GE, 3); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3) > tol {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestSparseConstraintErrors(t *testing.T) {
	p := NewProblem(2)
	if _, err := p.AddSparseConstraint([]int{0}, []float64{1, 2}, LE, 1); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := p.AddSparseConstraint([]int{5}, []float64{1}, LE, 1); err == nil {
		t.Fatal("want index range error")
	}
}

func TestAPIErrors(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}, false); err == nil {
		t.Fatal("want objective length error")
	}
	if err := p.SetObjectiveCoeff(7, 1); err == nil {
		t.Fatal("want objective index error")
	}
	if err := p.SetBounds(0, 3, 1); err == nil {
		t.Fatal("want inverted bounds error")
	}
	if err := p.SetBounds(9, 0, 1); err == nil {
		t.Fatal("want bound index error")
	}
	if _, err := p.AddConstraint([]float64{1}, LE, 0); err == nil {
		t.Fatal("want constraint length error")
	}
	if _, err := p.AddConstraint([]float64{1, 2}, Relation(9), 0); err == nil {
		t.Fatal("want relation error")
	}
}

func TestStrings(t *testing.T) {
	for _, r := range []Relation{LE, GE, EQ, Relation(42)} {
		if r.String() == "" {
			t.Fatal("empty Relation string")
		}
	}
	for _, s := range []Status{Optimal, Infeasible, Unbounded, Status(42)} {
		if s.String() == "" {
			t.Fatal("empty Status string")
		}
	}
}

func TestFixedVariable(t *testing.T) {
	// A variable fixed by equal bounds must keep its value.
	p := NewProblem(2)
	_ = p.SetObjective([]float64{1, 1}, false)
	_ = p.SetBounds(0, 5, 5)
	_ = p.SetBounds(1, 0, math.Inf(1))
	_, _ = p.AddConstraint([]float64{1, 1}, GE, 7)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-5) > tol || math.Abs(sol.X[1]-2) > tol {
		t.Fatalf("x = %v, want [5 2]", sol.X)
	}
}

func TestNumVarsNumConstraints(t *testing.T) {
	p := NewProblem(3)
	if p.NumVars() != 3 || p.NumConstraints() != 0 {
		t.Fatal("fresh problem dims")
	}
	_, _ = p.AddConstraint([]float64{1, 1, 1}, LE, 1)
	if p.NumConstraints() != 1 {
		t.Fatal("constraint count")
	}
	lo, hi := p.Bounds(0)
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Fatal("default bounds")
	}
}
