package lp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// objClose compares objectives with a relative tolerance; the warm path's
// certification pass ends at a vertex the cold solver would also accept, so
// the two may differ only by accumulated floating-point noise.
func objClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// tighten applies one random bound restriction to variable j, the same move
// branch and bound makes: either fix the variable to one of its bounds or
// shrink the box around a random interior point. Returns false if the box is
// already a point (nothing to tighten).
func tighten(p *Problem, r *rand.Rand, j int) bool {
	lo, hi := p.Bounds(j)
	if hi-lo < 1e-9 {
		return false
	}
	switch r.Intn(3) {
	case 0: // branch down: pin to lower
		_ = p.SetBounds(j, lo, lo)
	case 1: // branch up: pin to upper
		_ = p.SetBounds(j, hi, hi)
	default: // shrink the box
		a := lo + (hi-lo)*r.Float64()
		b := lo + (hi-lo)*r.Float64()
		if a > b {
			a, b = b, a
		}
		_ = p.SetBounds(j, a, b)
	}
	return true
}

// Property (cross-solver validation): after any chain of random bound
// tightenings, the warm-started dual simplex path and a cold two-phase solve
// of the same problem must agree on status, and on the objective whenever the
// problem stays feasible. This is the correctness contract for basis reuse
// across branch-and-bound nodes: results never depend on the warm hint.
func TestWarmMatchesColdAfterTightening(t *testing.T) {
	var resolves, warmHits int
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomLP(r)
		defer p.ReleaseSolverCache()
		sol, err := SolveWith(p, Options{CaptureBasis: true})
		if err != nil || sol.Status != Optimal || sol.Basis == nil {
			return false
		}
		basis := sol.Basis
		rounds := 1 + r.Intn(4)
		for k := 0; k < rounds; k++ {
			if !tighten(p, r, r.Intn(p.NumVars())) {
				continue
			}
			cold, cerr := SolveWith(p, Options{})
			warm, werr := SolveWith(p, Options{WarmBasis: basis, CaptureBasis: true})
			if (cerr == nil) != (werr == nil) {
				t.Logf("seed %d round %d: cold err %v, warm err %v", seed, k, cerr, werr)
				return false
			}
			if cerr != nil {
				return true // both hit the iteration cap: nothing to compare
			}
			if cold.Status != warm.Status {
				t.Logf("seed %d round %d: cold %v, warm %v", seed, k, cold.Status, warm.Status)
				return false
			}
			if cold.Status == Optimal {
				resolves++
				if warm.Warm {
					warmHits++
				}
				if !objClose(cold.Objective, warm.Objective) {
					t.Logf("seed %d round %d: cold obj %v, warm obj %v", seed, k, cold.Objective, warm.Objective)
					return false
				}
				if warm.Basis == nil {
					return false
				}
				basis = warm.Basis
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Bound tightenings preserve dual feasibility of the parent basis, so
	// the warm path should carry the bulk of feasible re-solves; a low hit
	// rate means warm starting silently degenerated into cold solving.
	if resolves > 0 && float64(warmHits) < 0.5*float64(resolves) {
		t.Fatalf("warm path certified only %d of %d feasible re-solves", warmHits, resolves)
	}
	t.Logf("warm hit rate: %d/%d feasible re-solves", warmHits, resolves)
}

// Property: a basis captured before AddConstraint, remapped onto the grown
// problem with identity maps (the row-generation situation), either warm
// starts to the same answer as a cold solve or is rejected cleanly by Remap.
func TestWarmRemapAfterAddConstraint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, x0 := randomLP(r)
		defer p.ReleaseSolverCache()
		sol, err := SolveWith(p, Options{CaptureBasis: true})
		if err != nil || sol.Status != Optimal {
			return false
		}
		n, m := p.NumVars(), p.NumConstraints()
		// Grow the problem by one anchored row, as row generation does.
		row := make([]float64, n)
		for j := range row {
			row[j] = -1 + 2*r.Float64()
		}
		act := Dot(row, x0)
		if _, err := p.AddConstraint(row, LE, act+r.Float64()); err != nil {
			return false
		}
		varMap := make([]int, n)
		rowMap := make([]int, m)
		for j := range varMap {
			varMap[j] = j
		}
		for i := range rowMap {
			rowMap[i] = i
		}
		warmBasis := sol.Basis.Remap(p, p, varMap, rowMap)
		cold, cerr := SolveWith(p, Options{})
		if warmBasis == nil {
			return cerr == nil // rejection is a legal outcome; cold still works
		}
		warm, werr := SolveWith(p, Options{WarmBasis: warmBasis})
		if (cerr == nil) != (werr == nil) {
			return false
		}
		if cerr != nil {
			return true
		}
		if cold.Status != warm.Status {
			t.Logf("seed %d: cold %v, warm %v", seed, cold.Status, warm.Status)
			return false
		}
		return cold.Status != Optimal || objClose(cold.Objective, warm.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Remap must reject maps that are inconsistent with the problems instead of
// producing a corrupt basis.
func TestRemapRejectsBadMaps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p, _ := randomLP(r)
	sol, err := SolveWith(p, Options{CaptureBasis: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("setup solve: %v (%v)", err, sol)
	}
	p.ReleaseSolverCache()
	n, m := p.NumVars(), p.NumConstraints()
	ident := func(k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if got := sol.Basis.Remap(p, p, ident(n-1), ident(m)); got != nil {
		t.Fatal("Remap accepted short varMap")
	}
	if got := sol.Basis.Remap(p, p, ident(n), ident(m-1)); got != nil {
		t.Fatal("Remap accepted short rowMap")
	}
	bad := ident(n)
	bad[0] = n + 100
	if got := sol.Basis.Remap(p, p, bad, ident(m)); got != nil {
		t.Fatal("Remap accepted out-of-range varMap")
	}
	dup := ident(m)
	if m >= 2 {
		dup[1] = dup[0]
		if got := sol.Basis.Remap(p, p, ident(n), dup); got != nil {
			t.Fatal("Remap accepted duplicate rowMap")
		}
	}
	q := NewProblem(n + 1) // different shape: basis does not match `old`
	if got := sol.Basis.Remap(q, p, ident(n+1), nil); got != nil {
		t.Fatal("Remap accepted mismatched old problem")
	}
}

// A Basis is immutable and may seed concurrent solves of identically shaped
// problems — both children of a branch share the parent's snapshot. Run under
// -race in make check.
func TestWarmBasisSharedAcrossGoroutines(t *testing.T) {
	const seed = 42
	build := func() *Problem {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomLP(r)
		return p
	}
	p0 := build()
	sol, err := SolveWith(p0, Options{CaptureBasis: true})
	p0.ReleaseSolverCache()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("setup solve: %v", err)
	}
	basis := sol.Basis
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := build()
			r := rand.New(rand.NewSource(int64(1000 + g)))
			tighten(p, r, r.Intn(p.NumVars()))
			warm, werr := SolveWith(p, Options{WarmBasis: basis})
			cold, cerr := SolveWith(p, Options{})
			if (werr == nil) != (cerr == nil) {
				t.Errorf("goroutine %d: warm err %v, cold err %v", g, werr, cerr)
				return
			}
			if werr == nil && warm.Status != cold.Status {
				t.Errorf("goroutine %d: warm %v, cold %v", g, warm.Status, cold.Status)
			}
		}(g)
	}
	wg.Wait()
}

// The cache retained by CaptureBasis must be invalidated by structural edits:
// a warm solve after AddConstraint with a stale (un-remapped) basis must not
// be accepted, and the solve must still succeed through the cold path.
func TestStaleCacheInvalidatedByAddConstraint(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p, x0 := randomLP(r)
	defer p.ReleaseSolverCache()
	sol, err := SolveWith(p, Options{CaptureBasis: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("setup solve: %v", err)
	}
	row := make([]float64, p.NumVars())
	row[0] = 1
	if _, err := p.AddConstraint(row, LE, x0[0]+1); err != nil {
		t.Fatal(err)
	}
	// The stale basis no longer matches the problem shape: the warm path
	// must reject it (sol2.Warm == false) and fall back cleanly.
	sol2, err := SolveWith(p, Options{WarmBasis: sol.Basis})
	if err != nil {
		t.Fatalf("re-solve after AddConstraint: %v", err)
	}
	if sol2.Warm {
		t.Fatal("stale basis accepted after structural edit")
	}
	if sol2.Status != Optimal && sol2.Status != Infeasible {
		t.Fatalf("unexpected status %v", sol2.Status)
	}
}
