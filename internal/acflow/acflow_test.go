package acflow_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/edsec/edattack/internal/acflow"
	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/grid/cases"
)

func TestYbusSymmetry(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	y, err := acflow.Ybus(n)
	if err != nil {
		t.Fatalf("Ybus: %v", err)
	}
	for i := 0; i < y.Rows(); i++ {
		for k := 0; k < y.Cols(); k++ {
			if y.At(i, k) != y.At(k, i) {
				t.Fatalf("Ybus not symmetric at (%d,%d)", i, k)
			}
		}
	}
}

func TestSolveCase9Converges(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	// Classic WSCC operating point: P2 = 163, P3 = 85; slack covers the
	// rest.
	res, err := acflow.Solve(n, []float64{0, 163, 85}, acflow.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Iterations > 10 {
		t.Fatalf("too many iterations: %d", res.Iterations)
	}
	// The slack must produce roughly load + losses − 163 − 85 ≈ 67–72 MW.
	if res.SlackP < 60 || res.SlackP > 80 {
		t.Fatalf("slack P = %v, want ≈ 67–72", res.SlackP)
	}
	// Losses are small and positive on this well-conditioned case.
	if res.LossMW < 0 || res.LossMW > 15 {
		t.Fatalf("losses = %v MW", res.LossMW)
	}
	// All voltages near nominal.
	for i, v := range res.Vm {
		if v < 0.9 || v > 1.1 {
			t.Fatalf("bus %d voltage %v out of range", i, v)
		}
	}
}

func TestSolveCase3(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := acflow.Solve(n, []float64{120, 180}, acflow.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// AC real flows must track the DC solution (f12 ≈ -20, f13 ≈ 140,
	// f23 ≈ 160) within a few MW.
	want := []float64{-20, 140, 160}
	for i, w := range want {
		if math.Abs(res.FromMW[i]-w) > 8 {
			t.Fatalf("AC flow[%d] = %v, want ≈ %v", i, res.FromMW[i], w)
		}
	}
	// Apparent power exceeds real power (reactive demand at bus 3).
	if res.FromMVA[1] <= math.Abs(res.FromMW[1]) {
		t.Fatalf("MVA %v must exceed |MW| %v", res.FromMVA[1], res.FromMW[1])
	}
}

func TestPowerBalance(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	res, err := acflow.Solve(n, []float64{0, 163, 85}, acflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sum of net bus injections equals total losses.
	var sum float64
	for _, p := range res.BusP {
		sum += p
	}
	if math.Abs(sum-res.LossMW) > 1e-6 {
		t.Fatalf("injection sum %v != losses %v", sum, res.LossMW)
	}
	// Generation = demand + losses.
	gen := res.SlackP + 163 + 85
	if math.Abs(gen-(n.TotalDemand()+res.LossMW)) > 1e-6 {
		t.Fatalf("generation %v != demand %v + losses %v", gen, n.TotalDemand(), res.LossMW)
	}
}

func TestSolveDispatchLengthError(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acflow.Solve(n, []float64{1}, acflow.Options{}); err == nil {
		t.Fatal("want dispatch length error")
	}
}

func TestNoConvergenceOnAbsurdLoad(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{Demand: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acflow.Solve(n, []float64{15000, 15000}, acflow.Options{MaxIter: 10}); err == nil {
		t.Fatal("want convergence failure on 100× overload")
	}
}

// Property: AC real flows converge to DC flows as reactive demand and
// resistance vanish.
func TestPropertyACApproachesDC(t *testing.T) {
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Strip resistance and reactive load.
	for i := range n.Lines {
		n.Lines[i].R = 0
	}
	n.Buses[2].Qd = 0
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p1 := 300 * r.Float64()
		dispatch := []float64{p1, 300 - p1}
		acRes, err := acflow.Solve(n, dispatch, acflow.Options{})
		if err != nil {
			return false
		}
		inj, _ := dcflow.InjectionsFromDispatch(n, dispatch)
		dcRes, err := dcflow.Solve(n, inj)
		if err != nil {
			return false
		}
		for i := range n.Lines {
			if math.Abs(acRes.FromMW[i]-dcRes.Flows[i]) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: line loading is consistent — loading is the max of the two end
// MVA values and is non-negative.
func TestPropertyLoadingConsistency(t *testing.T) {
	n, err := cases.Case9()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := []float64{0, 50 + 200*r.Float64(), 50 + 150*r.Float64()}
		res, err := acflow.Solve(n, d, acflow.Options{})
		if err != nil {
			return false
		}
		for i := range n.Lines {
			want := math.Max(res.FromMVA[i], res.ToMVA[i])
			if res.LineLoadingMVA[i] != want || res.LineLoadingMVA[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSynthetic118(t *testing.T) {
	n, err := cases.Case118()
	if err != nil {
		t.Fatal(err)
	}
	// Proportional dispatch.
	var cap float64
	for i := range n.Gens {
		cap += n.Gens[i].Pmax
	}
	d := make([]float64, len(n.Gens))
	for i := range n.Gens {
		d[i] = n.TotalDemand() * n.Gens[i].Pmax / cap
	}
	res, err := acflow.Solve(n, d, acflow.Options{MaxIter: 50})
	if err != nil {
		t.Fatalf("118-bus AC power flow failed: %v", err)
	}
	if res.LossMW < 0 {
		t.Fatalf("negative losses: %v", res.LossMW)
	}
}
