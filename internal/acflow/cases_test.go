package acflow_test

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/acflow"
	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
)

// TestAllCasesACDCConsistency drives every benchmark case through the full
// operator chain — economic dispatch, DC power flow, AC power flow — and
// checks the cross-model invariants that hold regardless of case data.
func TestAllCasesACDCConsistency(t *testing.T) {
	builders := map[string]func() (*grid.Network, error){
		"case3":  func() (*grid.Network, error) { return cases.Case3(cases.Case3Options{}) },
		"case9":  cases.Case9,
		"case30": cases.Case30,
		"case57": cases.Case57,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			n, err := build()
			if err != nil {
				t.Fatal(err)
			}
			m, err := dispatch.BuildModel(n)
			if err != nil {
				t.Fatal(err)
			}
			ed, err := m.Solve(nil)
			if err != nil {
				t.Fatal(err)
			}
			inj, err := dcflow.InjectionsFromDispatch(n, ed.P)
			if err != nil {
				t.Fatal(err)
			}
			dc, err := dcflow.Solve(n, inj)
			if err != nil {
				t.Fatal(err)
			}
			ac, err := acflow.Solve(n, ed.P, acflow.Options{MaxIter: 60})
			if err != nil {
				t.Fatalf("AC power flow: %v", err)
			}
			// 1. Dispatch and DC power flow agree on every line.
			for li := range n.Lines {
				if math.Abs(ed.Flows[li]-dc.Flows[li]) > 1e-6*(1+math.Abs(dc.Flows[li])) {
					t.Fatalf("line %d: ED flow %v vs DC flow %v", li, ed.Flows[li], dc.Flows[li])
				}
			}
			// 2. AC real flows track DC: per-line deviation bounded by a
			// loss/reactive-routing allowance proportional to the flow.
			for li := range n.Lines {
				tol := 20 + 0.2*math.Abs(dc.Flows[li])
				if math.Abs(ac.FromMW[li]-dc.Flows[li]) > tol {
					t.Fatalf("line %d: AC %v vs DC %v (tol %v)", li, ac.FromMW[li], dc.Flows[li], tol)
				}
			}
			// 3. Losses are positive and small relative to demand.
			if ac.LossMW < 0 || ac.LossMW > 0.08*n.TotalDemand() {
				t.Fatalf("losses %v MW implausible for %v MW demand", ac.LossMW, n.TotalDemand())
			}
			// 4. Voltages inside a broad band. The synthetic cases model
			// no shunt compensation, so remote load pockets sag harder
			// than a planned system would; the check guards against
			// collapse-level values, not operating-limit violations.
			for i, v := range ac.Vm {
				if v < 0.78 || v > 1.15 {
					t.Fatalf("bus %d voltage %v", i, v)
				}
			}
		})
	}
}
