// Package acflow implements a Newton–Raphson AC power flow in polar
// coordinates. The paper uses MATPOWER's nonlinear computations to measure
// what a DC-generated attack actually does to the physical system (apparent
// power flows exceed the DC estimates because of reactive flows and losses);
// this package plays that role here. See DESIGN.md's substitution table.
package acflow

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/mat"
	"github.com/edsec/edattack/internal/telemetry"
)

// ErrNoConverge is returned when Newton–Raphson fails to converge.
var ErrNoConverge = errors.New("acflow: power flow did not converge")

// Options tune the solver.
type Options struct {
	// MaxIter caps Newton iterations (default 30).
	MaxIter int
	// Tol is the per-unit mismatch tolerance (default 1e-8).
	Tol float64
	// Metrics, when non-nil, receives acflow_* solve/iteration counters.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// Result is a converged AC power flow.
type Result struct {
	// Vm and Va are per-unit voltage magnitudes and angles (radians),
	// indexed like Network.Buses.
	Vm, Va []float64
	// BusP and BusQ are the net real (MW) and reactive (MVAr) injections
	// at each bus.
	BusP, BusQ []float64
	// FromMVA and ToMVA are the apparent-power flows (MVA) at each line
	// end; FromMW is the real power entering the line at the From end.
	FromMVA, ToMVA, FromMW []float64
	// LineLoadingMVA is max(FromMVA, ToMVA) per line — the quantity
	// checked against thermal ratings.
	LineLoadingMVA []float64
	// LossMW is the total real-power loss.
	LossMW float64
	// SlackP is the real power (MW) produced at the slack bus.
	SlackP float64
	// Iterations is the Newton iteration count.
	Iterations int
}

// Ybus builds the bus admittance matrix in per-unit.
func Ybus(n *grid.Network) (*mat.CMatrix, error) {
	nb := len(n.Buses)
	y := mat.NewC(nb, nb)
	for li := range n.Lines {
		l := &n.Lines[li]
		fi, err := n.BusIndex(l.From)
		if err != nil {
			return nil, fmt.Errorf("acflow: %w", err)
		}
		ti, err := n.BusIndex(l.To)
		if err != nil {
			return nil, fmt.Errorf("acflow: %w", err)
		}
		ys := 1 / complex(l.R, l.X)
		sh := complex(0, l.B/2)
		y.Add(fi, fi, ys+sh)
		y.Add(ti, ti, ys+sh)
		y.Add(fi, ti, -ys)
		y.Add(ti, fi, -ys)
	}
	return y, nil
}

// Solve runs the power flow for a given per-generator real dispatch (MW).
// PV-bus units hold their dispatch; the slack bus absorbs losses and any
// imbalance. Reactive demand is taken from the network; generator reactive
// output is implicit (no Q-limit switching).
func Solve(n *grid.Network, dispatch []float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if len(dispatch) != len(n.Gens) {
		return nil, fmt.Errorf("acflow: %d dispatch values for %d generators", len(dispatch), len(n.Gens))
	}
	nb := len(n.Buses)
	ybus, err := Ybus(n)
	if err != nil {
		return nil, err
	}
	slack, err := n.SlackIndex()
	if err != nil {
		return nil, fmt.Errorf("acflow: %w", err)
	}

	// Scheduled injections in per-unit.
	pSched := make([]float64, nb)
	qSched := make([]float64, nb)
	for i := range n.Buses {
		pSched[i] = -n.Buses[i].Pd / n.BaseMVA
		qSched[i] = -n.Buses[i].Qd / n.BaseMVA
	}
	for gi := range n.Gens {
		bi, err := n.BusIndex(n.Gens[gi].Bus)
		if err != nil {
			return nil, fmt.Errorf("acflow: %w", err)
		}
		pSched[bi] += dispatch[gi] / n.BaseMVA
	}

	// Unknown ordering: angles for all non-slack buses, then magnitudes
	// for PQ buses.
	var angIdx, magIdx []int
	for i := range n.Buses {
		if i != slack {
			angIdx = append(angIdx, i)
		}
		if n.Buses[i].Type == grid.PQ {
			magIdx = append(magIdx, i)
		}
	}
	vm := make([]float64, nb)
	va := make([]float64, nb)
	for i := range n.Buses {
		vm[i] = 1
		if n.Buses[i].Type != grid.PQ && n.Buses[i].Vset > 0 {
			vm[i] = n.Buses[i].Vset
		}
	}

	g := func(i, k int) float64 { return real(ybus.At(i, k)) }
	b := func(i, k int) float64 { return imag(ybus.At(i, k)) }
	calcPQ := func() (p, q []float64) {
		p = make([]float64, nb)
		q = make([]float64, nb)
		for i := 0; i < nb; i++ {
			for k := 0; k < nb; k++ {
				gik, bik := g(i, k), b(i, k)
				if gik == 0 && bik == 0 {
					continue
				}
				th := va[i] - va[k]
				c, s := math.Cos(th), math.Sin(th)
				p[i] += vm[i] * vm[k] * (gik*c + bik*s)
				q[i] += vm[i] * vm[k] * (gik*s - bik*c)
			}
		}
		return p, q
	}

	nUnk := len(angIdx) + len(magIdx)
	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		p, q := calcPQ()
		mis := make([]float64, nUnk)
		for r, i := range angIdx {
			mis[r] = pSched[i] - p[i]
		}
		for r, i := range magIdx {
			mis[len(angIdx)+r] = qSched[i] - q[i]
		}
		if mat.NormInf(mis) < o.Tol {
			o.Metrics.Counter("acflow_solves_total").Inc()
			o.Metrics.Counter("acflow_newton_iterations_total").Add(int64(iter))
			return assemble(n, ybus, vm, va, slack, iter)
		}
		jac := mat.New(nUnk, nUnk)
		for r, i := range angIdx {
			for c, k := range angIdx {
				jac.Set(r, c, dPdTheta(i, k, vm, va, g, b, p, q))
			}
			for c, k := range magIdx {
				jac.Set(r, len(angIdx)+c, dPdV(i, k, vm, va, g, b, p))
			}
		}
		for r, i := range magIdx {
			for c, k := range angIdx {
				jac.Set(len(angIdx)+r, c, dQdTheta(i, k, vm, va, g, b, p))
			}
			for c, k := range magIdx {
				jac.Set(len(angIdx)+r, len(angIdx)+c, dQdV(i, k, vm, va, g, b, q))
			}
		}
		dx, err := mat.Solve(jac, mis)
		if err != nil {
			return nil, fmt.Errorf("acflow: Jacobian solve at iteration %d: %w", iter, err)
		}
		for r, i := range angIdx {
			va[i] += dx[r]
		}
		for r, i := range magIdx {
			vm[i] += dx[len(angIdx)+r]
			if vm[i] < 0.1 {
				vm[i] = 0.1 // keep magnitudes physical during iteration
			}
		}
	}
	o.Metrics.Counter("acflow_solves_total").Inc()
	o.Metrics.Counter("acflow_newton_iterations_total").Add(int64(o.MaxIter))
	o.Metrics.Counter("acflow_noconverge_total").Inc()
	return nil, fmt.Errorf("%w after %d iterations", ErrNoConverge, o.MaxIter)
}

func dPdTheta(i, k int, vm, va []float64, g, b func(int, int) float64, p, q []float64) float64 {
	if i == k {
		return -q[i] - b(i, i)*vm[i]*vm[i]
	}
	th := va[i] - va[k]
	return vm[i] * vm[k] * (g(i, k)*math.Sin(th) - b(i, k)*math.Cos(th))
}

func dPdV(i, k int, vm, va []float64, g, b func(int, int) float64, p []float64) float64 {
	if i == k {
		return p[i]/vm[i] + g(i, i)*vm[i]
	}
	th := va[i] - va[k]
	return vm[i] * (g(i, k)*math.Cos(th) + b(i, k)*math.Sin(th))
}

func dQdTheta(i, k int, vm, va []float64, g, b func(int, int) float64, p []float64) float64 {
	if i == k {
		return p[i] - g(i, i)*vm[i]*vm[i]
	}
	th := va[i] - va[k]
	return -vm[i] * vm[k] * (g(i, k)*math.Cos(th) + b(i, k)*math.Sin(th))
}

func dQdV(i, k int, vm, va []float64, g, b func(int, int) float64, q []float64) float64 {
	if i == k {
		return q[i]/vm[i] - b(i, i)*vm[i]
	}
	th := va[i] - va[k]
	return vm[i] * (g(i, k)*math.Sin(th) - b(i, k)*math.Cos(th))
}

// assemble computes bus injections, line flows, and losses from a converged
// voltage profile.
func assemble(n *grid.Network, ybus *mat.CMatrix, vm, va []float64, slack, iters int) (*Result, error) {
	nb := len(n.Buses)
	v := make([]complex128, nb)
	for i := 0; i < nb; i++ {
		v[i] = cmplx.Rect(vm[i], va[i])
	}
	iv, err := ybus.MulVec(v)
	if err != nil {
		return nil, fmt.Errorf("acflow: %w", err)
	}
	res := &Result{
		Vm: mat.CloneVec(vm), Va: mat.CloneVec(va),
		BusP: make([]float64, nb), BusQ: make([]float64, nb),
		FromMVA: make([]float64, len(n.Lines)), ToMVA: make([]float64, len(n.Lines)),
		FromMW: make([]float64, len(n.Lines)), LineLoadingMVA: make([]float64, len(n.Lines)),
		Iterations: iters,
	}
	var totalP float64
	for i := 0; i < nb; i++ {
		s := v[i] * cmplx.Conj(iv[i])
		res.BusP[i] = real(s) * n.BaseMVA
		res.BusQ[i] = imag(s) * n.BaseMVA
		totalP += res.BusP[i]
	}
	res.LossMW = totalP
	res.SlackP = res.BusP[slack] + n.Buses[slack].Pd
	for li := range n.Lines {
		l := &n.Lines[li]
		fi, _ := n.BusIndex(l.From)
		ti, _ := n.BusIndex(l.To)
		ys := 1 / complex(l.R, l.X)
		sh := complex(0, l.B/2)
		iFrom := ys*(v[fi]-v[ti]) + sh*v[fi]
		iTo := ys*(v[ti]-v[fi]) + sh*v[ti]
		sFrom := v[fi] * cmplx.Conj(iFrom) * complex(n.BaseMVA, 0)
		sTo := v[ti] * cmplx.Conj(iTo) * complex(n.BaseMVA, 0)
		res.FromMVA[li] = cmplx.Abs(sFrom)
		res.ToMVA[li] = cmplx.Abs(sTo)
		res.FromMW[li] = real(sFrom)
		res.LineLoadingMVA[li] = math.Max(res.FromMVA[li], res.ToMVA[li])
	}
	return res, nil
}
