package scada_test

import (
	"testing"

	"github.com/edsec/edattack/internal/dlr"
	"github.com/edsec/edattack/internal/scada"
)

// TestMonteCarloSeedDeterminism: same network + config + seed reproduces the
// draw stream bit-for-bit; a different seed diverges.
func TestMonteCarloSeedDeterminism(t *testing.T) {
	net := net3(t)
	a, err := scada.NewMonteCarlo(net, scada.MonteCarloConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := scada.NewMonteCarlo(net, scada.MonteCarloConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c, err := scada.NewMonteCarlo(net, scada.MonteCarloConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for i := 0; i < 20; i++ {
		hour := float64(i%24) + 0.5
		da, ra := a.Draw(hour)
		db, rb := b.Draw(hour)
		dc, rc := c.Draw(hour)
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("draw %d: demand[%d] %v vs %v for the same seed", i, j, da[j], db[j])
			}
			if da[j] != dc[j] {
				diverged = true
			}
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("draw %d: rating[%d] %v vs %v for the same seed", i, j, ra[j], rb[j])
			}
			if ra[j] != rc[j] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical streams")
	}
}

// TestMonteCarloDrawsStayPlausible: rating draws stay inside each DLR
// line's plausibility band (they would trip the EMS out-of-bound check
// otherwise) and non-DLR lines keep their static rating; demand draws stay
// non-negative.
func TestMonteCarloDrawsStayPlausible(t *testing.T) {
	net := net3(t)
	mc, err := scada.NewMonteCarlo(net, scada.MonteCarloConfig{Seed: 7, RatingNoisePct: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		demand, ratings := mc.Draw(float64(i) * 0.12)
		for j, d := range demand {
			if d < 0 {
				t.Fatalf("draw %d: demand[%d] = %v negative", i, j, d)
			}
		}
		for li := range net.Lines {
			l := &net.Lines[li]
			if !l.HasDLR {
				if ratings[li] != l.RateMVA {
					t.Fatalf("draw %d: non-DLR line %d rating %v, want static %v", i, li, ratings[li], l.RateMVA)
				}
				continue
			}
			if ratings[li] < l.DLRMin || ratings[li] > l.DLRMax {
				t.Fatalf("draw %d: line %d rating %v outside band [%v, %v]",
					i, li, ratings[li], l.DLRMin, l.DLRMax)
			}
		}
	}
}

// TestMonteCarloCustomPatterns: explicit demand/rating patterns and disabled
// noise make draws exactly the pattern values.
func TestMonteCarloCustomPatterns(t *testing.T) {
	net := net3(t)
	dlrLines := net.DLRLines()
	if len(dlrLines) == 0 {
		t.Fatal("test network has no DLR lines")
	}
	li := dlrLines[0]
	band := net.Lines[li].DLRMin + 1
	mc, err := scada.NewMonteCarlo(net, scada.MonteCarloConfig{
		Seed:           1,
		Demand:         dlr.Constant(0.5),
		DemandNoisePct: -1,
		Ratings:        map[int]dlr.Pattern{li: dlr.Constant(band)},
		RatingNoisePct: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	demand, ratings := mc.Draw(12)
	for i := range net.Buses {
		if want := net.Buses[i].Pd * 0.5; demand[i] != want {
			t.Fatalf("demand[%d] = %v, want %v", i, demand[i], want)
		}
	}
	if ratings[li] != band {
		t.Fatalf("rating[%d] = %v, want %v", li, ratings[li], band)
	}
}
