// Package scada simulates the telemetry path between field devices and the
// EMS — DLR sensors reporting dynamic ratings — plus the operator-side
// defenses discussed in Section VII of the paper: the out-of-bound
// plausibility check that the attacker must stay within, command
// verification (an extended TSV), and intrusion-tolerant replication
// (N-version redundancy).
package scada

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/edsec/edattack/internal/dcflow"
	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/dlr"
	"github.com/edsec/edattack/internal/grid"
)

// Measurement is one sensor report.
type Measurement struct {
	// Line is the reported line's index.
	Line int
	// Hour is the time of day.
	Hour float64
	// RatingMVA is the reported dynamic rating.
	RatingMVA float64
}

// DLRSensor simulates one field device computing a line's dynamic rating
// from local weather and reporting it over SCADA.
type DLRSensor struct {
	// Line is the instrumented line's index.
	Line int
	// Pattern is the true rating process.
	Pattern dlr.Pattern
	// NoisePct is the 1-sigma relative measurement noise (e.g. 0.01).
	NoisePct float64

	rng *rand.Rand
}

// NewDLRSensor builds a sensor with deterministic noise.
func NewDLRSensor(line int, pattern dlr.Pattern, noisePct float64, seed int64) *DLRSensor {
	return &DLRSensor{
		Line: line, Pattern: pattern, NoisePct: noisePct,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Report produces the measurement for a time of day.
func (s *DLRSensor) Report(hour float64) Measurement {
	v := s.Pattern(hour)
	if s.NoisePct > 0 {
		v *= 1 + s.NoisePct*s.rng.NormFloat64()
	}
	return Measurement{Line: s.Line, Hour: hour, RatingMVA: v}
}

// Feed aggregates the DLR sensors of a control area.
type Feed struct {
	sensors []*DLRSensor
}

// NewFeed bundles sensors.
func NewFeed(sensors ...*DLRSensor) *Feed {
	return &Feed{sensors: append([]*DLRSensor(nil), sensors...)}
}

// Snapshot reports every sensor at the given hour as a line→rating map —
// the u^d values the EMS ingests (and the attacker later overwrites).
func (f *Feed) Snapshot(hour float64) map[int]float64 {
	out := make(map[int]float64, len(f.sensors))
	for _, s := range f.sensors {
		m := s.Report(hour)
		out[m.Line] = m.RatingMVA
	}
	return out
}

// Alarm is one operator-side alert.
type Alarm struct {
	// Kind classifies the alert.
	Kind AlarmKind
	// Line is the affected line (-1 when not line-specific).
	Line int
	// Detail is a human-readable explanation.
	Detail string
}

// AlarmKind classifies alarms.
type AlarmKind int

// Alarm kinds.
const (
	// AlarmOutOfBound flags a rating outside the plausibility band.
	AlarmOutOfBound AlarmKind = iota + 1
	// AlarmCommandUnsafe flags a dispatch whose predicted flows violate
	// trusted ratings.
	AlarmCommandUnsafe
	// AlarmReplicaMismatch flags main/replica dispatch divergence.
	AlarmReplicaMismatch
)

func (k AlarmKind) String() string {
	switch k {
	case AlarmOutOfBound:
		return "out-of-bound"
	case AlarmCommandUnsafe:
		return "command-unsafe"
	case AlarmReplicaMismatch:
		return "replica-mismatch"
	default:
		return fmt.Sprintf("AlarmKind(%d)", int(k))
	}
}

// Validator is the EMS ingest check: dynamic ratings outside each line's
// plausibility band trip an alarm. The paper's attacker deliberately stays
// inside the band ("the in-memory parameter manipulations are still within
// acceptable limits and hence pass the typical out-of-bound checks").
type Validator struct {
	net    *grid.Network
	alarms []Alarm
}

// NewValidator builds a validator for a network.
func NewValidator(net *grid.Network) *Validator {
	return &Validator{net: net}
}

// Validate checks a rating snapshot; it returns true when everything is in
// band, recording alarms otherwise.
func (v *Validator) Validate(ratings map[int]float64) bool {
	bad := v.net.CheckDLRBounds(ratings)
	for _, li := range bad {
		detail := fmt.Sprintf("line %d rating out of plausibility band", li)
		v.alarms = append(v.alarms, Alarm{Kind: AlarmOutOfBound, Line: li, Detail: detail})
	}
	return len(bad) == 0
}

// Alarms returns the recorded alerts.
func (v *Validator) Alarms() []Alarm {
	return append([]Alarm(nil), v.alarms...)
}

// VerifyCommands is the Section VII "control command verification"
// mitigation: before setpoints reach the generators, predict their DC flows
// and check them against independently trusted ratings. It returns the
// violations found (empty means the command is safe).
func VerifyCommands(net *grid.Network, setpoints []float64, trustedRatings []float64) ([]Alarm, error) {
	if len(trustedRatings) != len(net.Lines) {
		return nil, fmt.Errorf("scada: %d ratings for %d lines", len(trustedRatings), len(net.Lines))
	}
	inj, err := dcflow.InjectionsFromDispatch(net, setpoints)
	if err != nil {
		return nil, fmt.Errorf("scada: %w", err)
	}
	res, err := dcflow.Solve(net, inj)
	if err != nil {
		return nil, fmt.Errorf("scada: %w", err)
	}
	var alarms []Alarm
	for li, f := range res.Flows {
		u := trustedRatings[li]
		if u > 0 && math.Abs(f) > u*(1+1e-9) {
			alarms = append(alarms, Alarm{
				Kind: AlarmCommandUnsafe, Line: li,
				Detail: fmt.Sprintf("predicted flow %.1f MW exceeds trusted rating %.1f MW", f, u),
			})
		}
	}
	return alarms, nil
}

// Replica is the Section VII intrusion-tolerant replication mitigation: an
// N-version controller that recomputes the dispatch from independently
// sourced inputs and compares against the main EMS's output. A material
// mismatch reveals that the main controller (or its memory) is compromised.
type Replica struct {
	model *dispatch.Model
	// TolMW is the per-generator mismatch tolerance.
	TolMW float64
}

// NewReplica builds the replica controller for a network.
func NewReplica(net *grid.Network, tolMW float64) (*Replica, error) {
	m, err := dispatch.BuildModel(net)
	if err != nil {
		return nil, fmt.Errorf("scada: replica model: %w", err)
	}
	if tolMW <= 0 {
		tolMW = 0.5
	}
	return &Replica{model: m, TolMW: tolMW}, nil
}

// Check recomputes the dispatch under trusted ratings and compares it with
// the main controller's setpoints. It returns a mismatch alarm when the two
// diverge beyond tolerance.
func (r *Replica) Check(trustedRatings []float64, mainSetpoints []float64) (*Alarm, error) {
	res, err := r.model.Solve(trustedRatings)
	if err != nil {
		return nil, fmt.Errorf("scada: replica dispatch: %w", err)
	}
	if len(mainSetpoints) != len(res.P) {
		return nil, fmt.Errorf("scada: %d setpoints for %d generators", len(mainSetpoints), len(res.P))
	}
	worst, worstIdx := 0.0, -1
	for i := range res.P {
		if d := math.Abs(res.P[i] - mainSetpoints[i]); d > worst {
			worst, worstIdx = d, i
		}
	}
	if worst > r.TolMW {
		return &Alarm{
			Kind: AlarmReplicaMismatch, Line: -1,
			Detail: fmt.Sprintf("generator %d setpoint differs by %.1f MW from replica", worstIdx, worst),
		}, nil
	}
	return nil, nil
}
