package scada

import (
	"fmt"
	"math/rand"

	"github.com/edsec/edattack/internal/dlr"
	"github.com/edsec/edattack/internal/grid"
)

// MonteCarloConfig parameterizes a seeded stream of operating-point draws.
// Every field has a usable default; the zero value only needs a Seed to be
// reproducible run-to-run and in CI.
type MonteCarloConfig struct {
	// Seed is the explicit rand.Source seed. Two MonteCarlo instances
	// built with the same network, config, and seed produce bit-identical
	// draw streams — sweep surfaces regenerate exactly.
	Seed int64
	// Demand is the system demand multiplier process (dimensionless, 1 =
	// nameplate Pd). Defaults to the canonical two-peak daily curve
	// between 0.80 and 1.12 of nameplate.
	Demand dlr.Pattern
	// DemandNoisePct is the 1-sigma per-bus relative noise on demand
	// draws (default 0.02). Negative disables noise.
	DemandNoisePct float64
	// Ratings maps DLR line index → true dynamic-rating process in MVA.
	// Lines absent from the map get a diurnal sinusoid spanning the
	// middle 80% of the plausibility band, peaking mid-afternoon.
	Ratings map[int]dlr.Pattern
	// RatingNoisePct is the 1-sigma relative weather/sensor noise on DLR
	// rating draws (default 0.03). Negative disables noise. Draws are
	// clamped back into the plausibility band, matching what the EMS
	// ingest check would admit.
	RatingNoisePct float64
}

// MonteCarlo draws plausible (demand, true-rating) operating points from
// the control area's demand and DLR processes. Draw order is fixed — buses
// ascending, then DLR lines ascending — so a draw stream is a pure function
// of (network, config, seed) and independent of how consumers batch or
// parallelize the evaluation of the drawn scenarios.
type MonteCarlo struct {
	net *grid.Network
	cfg MonteCarloConfig
	rng *rand.Rand

	demandPat  dlr.Pattern
	ratingPats []dlr.Pattern // per line; nil for non-DLR lines
	dlrLines   []int
}

// DefaultDemandPattern is the two-peak daily demand multiplier used when
// MonteCarloConfig.Demand is nil: 0.80 of nameplate overnight, a 1.00
// morning peak, and a 1.12 evening peak.
func DefaultDemandPattern() dlr.Pattern {
	return dlr.TwoPeakDemand(0.80, 1.00, 1.12)
}

// NewMonteCarlo builds a seeded draw stream for the network.
func NewMonteCarlo(net *grid.Network, cfg MonteCarloConfig) (*MonteCarlo, error) {
	if net == nil {
		return nil, fmt.Errorf("scada: MonteCarlo needs a network")
	}
	mc := &MonteCarlo{
		net:        net,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		ratingPats: make([]dlr.Pattern, len(net.Lines)),
		dlrLines:   net.DLRLines(),
	}
	if mc.cfg.Demand == nil {
		mc.demandPat = DefaultDemandPattern()
	} else {
		mc.demandPat = mc.cfg.Demand
	}
	if mc.cfg.DemandNoisePct == 0 {
		mc.cfg.DemandNoisePct = 0.02
	}
	if mc.cfg.RatingNoisePct == 0 {
		mc.cfg.RatingNoisePct = 0.03
	}
	for _, li := range mc.dlrLines {
		if p, ok := cfg.Ratings[li]; ok && p != nil {
			mc.ratingPats[li] = p
			continue
		}
		l := &net.Lines[li]
		span := l.DLRMax - l.DLRMin
		lo := l.DLRMin + 0.1*span
		hi := l.DLRMax - 0.1*span
		// Capacity peaks mid-afternoon (wind and cool air), the paper's
		// Fig. 4a shape.
		mc.ratingPats[li] = dlr.Sinusoidal(lo, hi, 9)
	}
	return mc, nil
}

// Draw produces one operating point at the given hour of day: per-bus real
// demand in MW (indexed like Network.Buses) and per-line true ratings in MW
// (indexed like Network.Lines; non-DLR lines carry their static rating,
// zero meaning unlimited). The caller owns the returned slices.
func (mc *MonteCarlo) Draw(hour float64) (demand, ratings []float64) {
	mult := mc.demandPat(hour)
	demand = make([]float64, len(mc.net.Buses))
	for i := range mc.net.Buses {
		m := mult
		if mc.cfg.DemandNoisePct > 0 {
			m *= 1 + mc.cfg.DemandNoisePct*mc.rng.NormFloat64()
		}
		if m < 0 {
			m = 0
		}
		demand[i] = mc.net.Buses[i].Pd * m
	}
	ratings = make([]float64, len(mc.net.Lines))
	for li := range mc.net.Lines {
		ratings[li] = mc.net.Lines[li].RateMVA
	}
	for _, li := range mc.dlrLines {
		l := &mc.net.Lines[li]
		v := mc.ratingPats[li](hour)
		if mc.cfg.RatingNoisePct > 0 {
			v *= 1 + mc.cfg.RatingNoisePct*mc.rng.NormFloat64()
		}
		if v < l.DLRMin {
			v = l.DLRMin
		}
		if v > l.DLRMax {
			v = l.DLRMax
		}
		ratings[li] = v
	}
	return demand, ratings
}
