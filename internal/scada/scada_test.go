package scada_test

import (
	"math"
	"testing"

	"github.com/edsec/edattack/internal/dispatch"
	"github.com/edsec/edattack/internal/dlr"
	"github.com/edsec/edattack/internal/grid"
	"github.com/edsec/edattack/internal/grid/cases"
	"github.com/edsec/edattack/internal/scada"
)

func net3(t *testing.T) *grid.Network {
	t.Helper()
	n, err := cases.Case3(cases.Case3Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSensorNoiseless(t *testing.T) {
	s := scada.NewDLRSensor(1, dlr.Constant(160), 0, 1)
	m := s.Report(12)
	if m.Line != 1 || m.Hour != 12 || m.RatingMVA != 160 {
		t.Fatalf("measurement = %+v", m)
	}
}

func TestSensorNoiseBounded(t *testing.T) {
	s := scada.NewDLRSensor(0, dlr.Constant(100), 0.01, 7)
	for i := 0; i < 100; i++ {
		m := s.Report(float64(i) / 4)
		if math.Abs(m.RatingMVA-100) > 6 {
			t.Fatalf("noise too large: %v", m.RatingMVA)
		}
	}
}

func TestFeedSnapshot(t *testing.T) {
	f := scada.NewFeed(
		scada.NewDLRSensor(1, dlr.Constant(150), 0, 1),
		scada.NewDLRSensor(2, dlr.Constant(170), 0, 2),
	)
	snap := f.Snapshot(9)
	if len(snap) != 2 || snap[1] != 150 || snap[2] != 170 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestValidatorPassesInBand(t *testing.T) {
	v := scada.NewValidator(net3(t))
	if !v.Validate(map[int]float64{1: 150, 2: 180}) {
		t.Fatal("in-band ratings rejected")
	}
	if len(v.Alarms()) != 0 {
		t.Fatal("unexpected alarms")
	}
}

func TestValidatorCatchesOutOfBand(t *testing.T) {
	v := scada.NewValidator(net3(t))
	if v.Validate(map[int]float64{1: 900}) {
		t.Fatal("out-of-band rating accepted")
	}
	alarms := v.Alarms()
	if len(alarms) != 1 || alarms[0].Kind != scada.AlarmOutOfBound || alarms[0].Line != 1 {
		t.Fatalf("alarms = %+v", alarms)
	}
}

func TestVerifyCommandsFlagsUnsafeDispatch(t *testing.T) {
	n := net3(t)
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	// Attacked ratings (160, 100, 200) produce a dispatch pushing 200 MW
	// down line {2,3}; trusted ratings say 160.
	res, err := m.Solve([]float64{160, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := scada.VerifyCommands(n, res.P, []float64{160, 160, 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Fatal("command verifier missed the unsafe dispatch")
	}
	if alarms[0].Kind != scada.AlarmCommandUnsafe {
		t.Fatalf("alarm kind = %v", alarms[0].Kind)
	}
	// The nominal dispatch is safe.
	nominal, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	alarms, err = scada.VerifyCommands(n, nominal.P, []float64{160, 160, 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 {
		t.Fatalf("nominal dispatch flagged: %+v", alarms)
	}
	if _, err := scada.VerifyCommands(n, nominal.P, []float64{1}); err == nil {
		t.Fatal("want ratings length error")
	}
}

func TestReplicaDetectsCompromise(t *testing.T) {
	n := net3(t)
	m, err := dispatch.BuildModel(n)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := scada.NewReplica(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	trusted := []float64{160, 160, 160}

	// Clean main controller: no mismatch.
	clean, err := m.Solve(trusted)
	if err != nil {
		t.Fatal(err)
	}
	alarm, err := replica.Check(trusted, clean.P)
	if err != nil {
		t.Fatal(err)
	}
	if alarm != nil {
		t.Fatalf("false positive: %+v", alarm)
	}

	// Compromised main controller (dispatched under corrupted ratings).
	bad, err := m.Solve([]float64{160, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	alarm, err = replica.Check(trusted, bad.P)
	if err != nil {
		t.Fatal(err)
	}
	if alarm == nil || alarm.Kind != scada.AlarmReplicaMismatch {
		t.Fatalf("replica missed the compromise: %+v", alarm)
	}

	if _, err := replica.Check(trusted, []float64{1}); err == nil {
		t.Fatal("want setpoint length error")
	}
}

func TestAlarmKindString(t *testing.T) {
	kinds := []scada.AlarmKind{
		scada.AlarmOutOfBound, scada.AlarmCommandUnsafe,
		scada.AlarmReplicaMismatch, scada.AlarmKind(9),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty alarm kind string")
		}
	}
}
