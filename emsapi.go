package edattack

import (
	"github.com/edsec/edattack/internal/ems"
)

// Re-exported EMS substrate types.
type (
	// EMSProfile describes one vendor's memory organization.
	EMSProfile = ems.Profile
	// EMSProcess is a simulated running EMS with a randomized address
	// space.
	EMSProcess = ems.Process
	// EMSExploit is the attack-time payload (value scan + structural
	// signature).
	EMSExploit = ems.Exploit
	// EMSAttackReport accounts for a full memory-corruption attack.
	EMSAttackReport = ems.AttackReport
	// EMSAccuracyReport is one Table IV-style forensics score.
	EMSAccuracyReport = ems.AccuracyReport
	// EMSController is the dispatch loop consuming (possibly corrupted)
	// process memory.
	EMSController = ems.Controller
)

// EMSProfiles returns the five vendor profiles evaluated in the paper.
func EMSProfiles() []EMSProfile {
	return ems.Profiles()
}

// EMSProfileByName resolves a vendor profile ("PowerWorld", "NEPLAN",
// "PowerFactory", "Powertools", "SmartGridToolbox").
func EMSProfileByName(name string) (EMSProfile, error) {
	return ems.ProfileByName(name)
}

// NewEMSProcess builds a randomized EMS process image for a vendor profile
// and network; distinct seeds model distinct runs (ASLR).
func NewEMSProcess(profile EMSProfile, net *Network, seed int64) (*EMSProcess, error) {
	return ems.NewProcess(profile, net, seed)
}

// NewEMSExploit performs the offline analysis against one process build and
// packages the structural signature for attack-time use against any run.
func NewEMSExploit(p *EMSProcess) (*EMSExploit, error) {
	return ems.NewExploit(p)
}

// RunMemoryAttack executes the online exploit pipeline: scan, filter with
// structural predicates, corrupt the DLR values (Section VI).
func RunMemoryAttack(p *EMSProcess, e *EMSExploit, attack, knownRatings map[int]float64) (*EMSAttackReport, error) {
	return ems.RunAttack(p, e, attack, knownRatings)
}

// EMSForensicsAccuracy runs the offline object-recognition pass and scores
// it against ground truth (one Table IV row).
func EMSForensicsAccuracy(p *EMSProcess) (*EMSAccuracyReport, error) {
	return ems.Accuracy(p)
}

// NewEMSController builds the EMS dispatch loop over a process.
func NewEMSController(p *EMSProcess) (*EMSController, error) {
	return ems.NewController(p)
}
