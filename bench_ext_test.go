package edattack_test

import (
	"testing"

	edattack "github.com/edsec/edattack"
	"github.com/edsec/edattack/internal/stateest"
)

// BenchmarkN1Screen118 measures the full N−1 contingency sweep on the
// 118-bus case (DESIGN.md experiment A4).
func BenchmarkN1Screen118(b *testing.B) {
	net, err := edattack.LoadCase("case118")
	if err != nil {
		b.Fatal(err)
	}
	model, err := edattack.NewDispatchModel(net)
	if err != nil {
		b.Fatal(err)
	}
	res, err := model.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	lodf, err := edattack.ComputeLODF(net)
	if err != nil {
		b.Fatal(err)
	}
	ratings := net.Ratings(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edattack.ScreenN1(lodf, res.Flows, ratings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLODF118 measures the factor-matrix build itself.
func BenchmarkLODF118(b *testing.B) {
	net, err := edattack.LoadCase("case118")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edattack.ComputeLODF(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCascade118 measures a full cascading-failure simulation from a
// stressed 118-bus operating point (DESIGN.md experiment A4).
func BenchmarkCascade118(b *testing.B) {
	net, err := edattack.LoadCase("case118")
	if err != nil {
		b.Fatal(err)
	}
	model, err := edattack.NewDispatchModel(net)
	if err != nil {
		b.Fatal(err)
	}
	res, err := model.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	ratings := net.Ratings(nil)
	for i := range ratings {
		ratings[i] *= 0.85
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edattack.SimulateCascade(net, res.P, ratings, edattack.CascadeOptions{TripThreshold: 1.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateEstimation118 measures a full-telemetry WLS estimation on
// the 118-bus case (DESIGN.md experiment A5).
func BenchmarkStateEstimation118(b *testing.B) {
	net, err := edattack.LoadCase("case118")
	if err != nil {
		b.Fatal(err)
	}
	model, err := edattack.NewDispatchModel(net)
	if err != nil {
		b.Fatal(err)
	}
	res, err := model.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := edattack.NewStateEstimator(net)
		if err != nil {
			b.Fatal(err)
		}
		for li, f := range res.Flows {
			if err := est.Add(edattack.StateMeasurement{
				Kind: stateest.MeasFlow, Index: li, ValueMW: f, SigmaMW: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := est.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDemandAttack measures the forecast-attack search on the
// congested 118-bus day (DESIGN.md experiment A3).
func BenchmarkDemandAttack(b *testing.B) {
	net, err := edattack.LoadCase("case118")
	if err != nil {
		b.Fatal(err)
	}
	model, err := edattack.NewDispatchModel(net)
	if err != nil {
		b.Fatal(err)
	}
	ud := map[int]float64{}
	for _, li := range net.DLRLines() {
		ud[li] = net.Lines[li].RateMVA * 0.94
	}
	k, err := edattack.NewKnowledge(model, ud)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edattack.FindDemandAttack(k, edattack.DemandAttackOptions{GammaPct: 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMATPOWERRoundTrip measures the case-file codec on the 118-bus
// case.
func BenchmarkMATPOWERRoundTrip(b *testing.B) {
	net, err := edattack.LoadCase("case118")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := edattack.FormatMATPOWER(net)
		if _, err := edattack.ParseMATPOWER(text); err != nil {
			b.Fatal(err)
		}
	}
}
